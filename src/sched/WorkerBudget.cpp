//===- sched/WorkerBudget.cpp - Global worker-slot budget ------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/WorkerBudget.h"

#include <cassert>

using namespace recap::sched;

WorkerBudget::WorkerBudget(size_t Total) : Slots(Total == 0 ? 1 : Total) {}

size_t WorkerBudget::acquire(size_t Max) {
  if (Max == 0)
    Max = 1;
  std::unique_lock<std::mutex> Lock(Mu);
  Freed.wait(Lock, [this] { return Used < Slots; });
  size_t Got = Slots - Used;
  if (Got > Max)
    Got = Max;
  Used += Got;
  if (Used > HighWater)
    HighWater = Used;
  Borrowed += Got - 1;
  return Got;
}

void WorkerBudget::release(size_t N) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    // An over-release would let later acquires exceed the budget — the
    // exact invariant this class exists to enforce — so fail loudly in
    // debug builds and saturate instead of underflowing in release.
    assert(N <= Used && "WorkerBudget::release of slots never acquired");
    Used -= N < Used ? N : Used;
  }
  Freed.notify_all();
}

size_t WorkerBudget::inUse() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Used;
}

size_t WorkerBudget::maxInUse() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return HighWater;
}

size_t WorkerBudget::borrowed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Borrowed;
}
