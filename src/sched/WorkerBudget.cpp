//===- sched/WorkerBudget.cpp - Global worker-slot budget ------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/WorkerBudget.h"

#include <cassert>

using namespace recap::sched;

WorkerBudget::WorkerBudget(size_t Total) : Slots(Total == 0 ? 1 : Total) {}

size_t WorkerBudget::acquire(size_t Max) {
  if (Max == 0)
    Max = 1;
  std::unique_lock<std::mutex> Lock(Mu);
  Freed.wait(Lock, [this] { return Used < Slots; });
  size_t Got = Slots - Used;
  if (Got > Max)
    Got = Max;
  Used += Got;
  if (Used > HighWater)
    HighWater = Used;
  Borrowed += Got - 1;
  return Got;
}

size_t WorkerBudget::acquire(size_t Max,
                             const std::function<size_t(size_t)> &Claim,
                             const std::atomic<bool> *Cancel) {
  if (Max == 0)
    Max = 1;
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return 0;
    if (Used < Slots) {
      size_t Avail = Slots - Used;
      if (Avail > Max)
        Avail = Max;
      size_t Got = Claim ? Claim(Avail) : Avail;
      if (Got > Avail)
        Got = Avail; // a buggy claim must not break the budget invariant
      if (Got > 0) {
        Used += Got;
        if (Used > HighWater)
          HighWater = Used;
        Borrowed += Got - 1;
        return Got;
      }
    }
    Freed.wait(Lock);
  }
}

void WorkerBudget::release(size_t N) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    // An over-release would let later acquires exceed the budget — the
    // exact invariant this class exists to enforce — so fail loudly in
    // debug builds and saturate instead of underflowing in release.
    assert(N <= Used && "WorkerBudget::release of slots never acquired");
    Used -= N < Used ? N : Used;
  }
  Freed.notify_all();
}

void WorkerBudget::release(size_t N, const std::function<void()> &Under) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(N <= Used && "WorkerBudget::release of slots never acquired");
    Used -= N < Used ? N : Used;
    if (Under)
      Under();
  }
  Freed.notify_all();
}

void WorkerBudget::wake() {
  // Empty critical section on purpose: it orders the notify after any
  // state change the caller just published, so a waiter mid-predicate
  // cannot miss it.
  { std::lock_guard<std::mutex> Lock(Mu); }
  Freed.notify_all();
}

size_t WorkerBudget::inUse() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Used;
}

size_t WorkerBudget::maxInUse() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return HighWater;
}

size_t WorkerBudget::borrowed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Borrowed;
}
