//===- sched/WorkerBudget.h - Global worker-slot budget ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accounting half of two-level scheduling (DESIGN.md §7): one counter
/// of worker slots shared by every task of a corpus job. A task holds one
/// slot while it runs serially and may borrow extra slots for intra-run
/// shards; the sum of slots ever outstanding never exceeds the budget, so
/// program-level and shard-level parallelism compose without
/// oversubscription. acquire() blocks (a parked task costs no CPU),
/// tryAcquire() is the opportunistic borrow that never waits.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SCHED_WORKERBUDGET_H
#define RECAP_SCHED_WORKERBUDGET_H

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace recap::sched {

class WorkerBudget {
public:
  /// \p Total slots (at least 1).
  explicit WorkerBudget(size_t Total);

  WorkerBudget(const WorkerBudget &) = delete;
  WorkerBudget &operator=(const WorkerBudget &) = delete;

  /// Blocks until at least one slot is free, then takes min(\p Max, free)
  /// slots in one step (so a task's base slot and its shard borrow are a
  /// single atomic grant, never a partial hold that could deadlock
  /// against another waiter). Returns the number taken (>= 1).
  size_t acquire(size_t Max = 1);

  /// Returns \p N slots and wakes waiters.
  void release(size_t N);

  size_t total() const { return Slots; }
  /// Snapshot of outstanding slots.
  size_t inUse() const;
  /// High-water mark of outstanding slots; never exceeds total() by
  /// construction — the invariant sched_test pins down.
  size_t maxInUse() const;
  /// Total borrow traffic: slots granted beyond the first of each
  /// acquire().
  size_t borrowed() const;

private:
  size_t Slots;
  mutable std::mutex Mu;
  std::condition_variable Freed;
  size_t Used = 0;
  size_t HighWater = 0;
  size_t Borrowed = 0;
};

} // namespace recap::sched

#endif // RECAP_SCHED_WORKERBUDGET_H
