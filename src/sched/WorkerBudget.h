//===- sched/WorkerBudget.h - Global worker-slot budget ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accounting half of two-level scheduling (DESIGN.md §7): one counter
/// of worker slots shared by every task of a corpus job. A task holds one
/// slot while it runs serially and may borrow extra slots for intra-run
/// shards; the sum of slots ever outstanding never exceeds the budget, so
/// program-level and shard-level parallelism compose without
/// oversubscription. acquire() blocks (a parked task costs no CPU),
/// tryAcquire() is the opportunistic borrow that never waits.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SCHED_WORKERBUDGET_H
#define RECAP_SCHED_WORKERBUDGET_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace recap::sched {

class WorkerBudget {
public:
  /// \p Total slots (at least 1).
  explicit WorkerBudget(size_t Total);

  WorkerBudget(const WorkerBudget &) = delete;
  WorkerBudget &operator=(const WorkerBudget &) = delete;

  /// Blocks until at least one slot is free, then takes min(\p Max, free)
  /// slots in one step (so a task's base slot and its shard borrow are a
  /// single atomic grant, never a partial hold that could deadlock
  /// against another waiter). Returns the number taken (>= 1).
  size_t acquire(size_t Max = 1);

  /// Slot-grant hook (service tier, DESIGN.md §10): a claim callback
  /// decides — and records, in the same critical section — how much of an
  /// available grant the caller may take. \p Claim runs under the budget
  /// lock with min(Max, free) and returns the slots actually claimed
  /// (0 parks the caller until the next release()/wake() re-evaluates);
  /// per-tenant accounting therefore can never race a concurrent grant.
  /// \p Cancel, when set and tripped, unparks the caller with a grant of
  /// 0 — the only case this returns 0 — so a cancelled job's parked
  /// shard acquisition drains instead of waiting for slots it will never
  /// use. Claim must not touch the budget re-entrantly.
  size_t acquire(size_t Max, const std::function<size_t(size_t)> &Claim,
                 const std::atomic<bool> *Cancel = nullptr);

  /// Returns \p N slots and wakes waiters.
  void release(size_t N);

  /// release() variant running \p Under beneath the budget lock before
  /// waiters re-evaluate their claims, so external (per-tenant) slot
  /// accounting and the budget's own counter move as one step.
  void release(size_t N, const std::function<void()> &Under);

  /// Wakes every parked acquire() so grant claims are re-evaluated after
  /// external state changed without a slot release (a tenant finished its
  /// last job, a job was cancelled).
  void wake();

  size_t total() const { return Slots; }
  /// Snapshot of outstanding slots.
  size_t inUse() const;
  /// High-water mark of outstanding slots; never exceeds total() by
  /// construction — the invariant sched_test pins down.
  size_t maxInUse() const;
  /// Total borrow traffic: slots granted beyond the first of each
  /// acquire().
  size_t borrowed() const;

private:
  size_t Slots;
  mutable std::mutex Mu;
  std::condition_variable Freed;
  size_t Used = 0;
  size_t HighWater = 0;
  size_t Borrowed = 0;
};

} // namespace recap::sched

#endif // RECAP_SCHED_WORKERBUDGET_H
