//===- sched/CupaScheduler.h - Partitioned CUPA work scheduler --*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling machinery of shard-per-worker search, factored out of
/// dse/Engine.cpp into a reusable substrate (DESIGN.md §7): per-shard CUPA
/// buckets partitioned by bucket-id hash, least-recently-served bucket
/// policy with a random pick inside the bucket, half-bucket work-stealing
/// when a shard's own buckets drain, a parked retry pool, and the
/// Pending/Active termination protocol under one scheduler mutex — every
/// transition (claim, enqueue, complete, retry flush) and the quiescence
/// check happen under it, so "Pending == 0 && Active == 0" is an exact
/// snapshot, never a racy two-read approximation.
///
/// The scheduler is generic over the queued item type; the DSE engine
/// instantiates it with its queued test inputs, and sched_test drives it
/// with plain integers (keeping the TSan target free of solver code).
/// Domain policy stays with the caller: what an item means, when the run
/// is over budget, and whether a drained queue may flush retries.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SCHED_CUPASCHEDULER_H
#define RECAP_SCHED_CUPASCHEDULER_H

#include <climits>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <vector>

namespace recap::sched {

/// Spreads CUPA bucket keys (small site ids, plus the -1 seed bucket)
/// over shards: a finalizer-style mix so consecutive sites do not all
/// land on consecutive shards of a small pool.
inline size_t cupaShardOf(int Bucket, size_t Shards) {
  uint64_t H = static_cast<uint64_t>(static_cast<int64_t>(Bucket));
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  return static_cast<size_t>(H % Shards);
}

template <typename T> class CupaScheduler {
public:
  /// Outcome of a claim attempt.
  enum class Claim {
    Claimed, ///< an item was handed out; call complete() when done
    Idle,    ///< nothing claimable now but other shards are active — back
             ///< off briefly and try again
    Stopped, ///< the run concluded (quiescent, or stop() was called)
  };

  /// \p Shards queues; \p Seed derives each shard's in-bucket pick RNG
  /// (shard I is seeded Seed + golden-ratio * (I + 1), matching the
  /// engine's historical per-shard streams).
  CupaScheduler(size_t Shards, uint64_t Seed) {
    Queues.reserve(Shards);
    for (size_t I = 0; I < Shards; ++I) {
      Queues.push_back(std::make_unique<ShardQueue>());
      Queues.back()->Rng.seed(Seed + 0x9e3779b97f4a7c15ull * (I + 1));
    }
  }

  size_t shards() const { return Queues.size(); }

  /// Queues \p Item under \p Bucket on the shard owning the bucket.
  void enqueue(T Item, int Bucket) {
    std::lock_guard<std::mutex> Lock(SchedMu);
    enqueueLocked(std::move(Item), Bucket);
  }

  /// Parks \p Item for the next retry flush: when the whole scheduler
  /// drains and the caller's MayRetry predicate allows it, parked items
  /// are re-queued under their buckets (the serial engine's retry round).
  void park(T Item, int Bucket) {
    std::lock_guard<std::mutex> Lock(SchedMu);
    RetryPool.push_back({std::move(Item), Bucket});
  }

  /// Claim-or-conclude for shard \p Shard, atomically under the scheduler
  /// mutex: pops from the shard's own least-served bucket, steals the
  /// back half of the fullest bucket of the first non-empty victim
  /// otherwise, and on an exact quiescent snapshot either flushes the
  /// retry pool (\p MayRetry true) or stops the run. On Claimed, \p Out
  /// and \p Bucket receive the item and its bucket key and the shard
  /// counts as Active until complete().
  Claim claim(size_t Shard, T &Out, int &Bucket,
              const std::function<bool()> &MayRetry) {
    std::lock_guard<std::mutex> Lock(SchedMu);
    if (StopFlag)
      return Claim::Stopped;
    std::optional<Queued> Q = popLocal(Shard);
    if (!Q)
      Q = steal(Shard);
    if (Q) {
      ++Active;
      Out = std::move(Q->Item);
      Bucket = Q->Bucket;
      return Claim::Claimed;
    }
    if (Pending == 0 && Active == 0) {
      if (!RetryPool.empty() && MayRetry && MayRetry()) {
        for (Queued &R : RetryPool)
          enqueueLocked(std::move(R.Item), R.Bucket);
        RetryPool.clear();
        return Claim::Idle; // re-claim next round
      }
      StopFlag = true;
      return Claim::Stopped;
    }
    return Claim::Idle;
  }

  /// Marks the shard's claimed item finished (Active--).
  void complete() {
    std::lock_guard<std::mutex> Lock(SchedMu);
    --Active;
  }

  /// Concludes the run for every shard (deadline / test budget hit).
  void stop() {
    std::lock_guard<std::mutex> Lock(SchedMu);
    StopFlag = true;
  }

  bool stopped() const {
    std::lock_guard<std::mutex> Lock(SchedMu);
    return StopFlag;
  }

  /// Items shard \p Shard took from other shards' buckets.
  uint64_t stolen(size_t Shard) const {
    std::lock_guard<std::mutex> Lock(Queues[Shard]->Mu);
    return Queues[Shard]->Stolen;
  }

  /// Total enqueue() calls (parked retries re-count when flushed).
  uint64_t enqueued() const {
    std::lock_guard<std::mutex> Lock(SchedMu);
    return Enqueued;
  }

private:
  struct Queued {
    T Item;
    int Bucket;
  };

  /// One shard's queue state. Only Mu-guarded members are touched by
  /// other shards (work-stealing); lock order: SchedMu, then a shard Mu.
  struct ShardQueue {
    mutable std::mutex Mu;
    std::map<int, std::vector<Queued>> Buckets;
    std::map<int, uint64_t> Access;
    std::mt19937_64 Rng;
    uint64_t Stolen = 0;
  };

  void enqueueLocked(T Item, int Bucket) {
    ShardQueue &S = *Queues[cupaShardOf(Bucket, Queues.size())];
    ++Pending;
    ++Enqueued;
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Buckets[Bucket].push_back({std::move(Item), Bucket});
  }

  /// Serial CUPA policy per shard: least-accessed non-empty local bucket,
  /// random pick within it. Called with SchedMu held (the claim path);
  /// the shard Mu still guards the bucket data against enqueues.
  std::optional<Queued> popLocal(size_t Shard) {
    ShardQueue &Me = *Queues[Shard];
    std::lock_guard<std::mutex> Lock(Me.Mu);
    int Best = INT_MIN;
    uint64_t BestAccess = UINT64_MAX;
    for (auto &[Site, Items] : Me.Buckets) {
      if (Items.empty())
        continue;
      uint64_t A = Me.Access[Site];
      if (A < BestAccess) {
        BestAccess = A;
        Best = Site;
      }
    }
    if (Best == INT_MIN)
      return std::nullopt;
    ++Me.Access[Best];
    std::vector<Queued> &Q = Me.Buckets[Best];
    size_t Pick = Me.Rng() % Q.size();
    Queued Item = std::move(Q[Pick]);
    Q.erase(Q.begin() + Pick);
    --Pending;
    return Item;
  }

  /// Work-stealing: the back half of the fullest bucket of the first
  /// non-empty victim migrates. Items keep their bucket key, so CUPA
  /// fairness is preserved — ownership of the site just moves.
  std::optional<Queued> steal(size_t Shard) {
    ShardQueue &Me = *Queues[Shard];
    size_t W = Queues.size();
    for (size_t K = 1; K < W; ++K) {
      ShardQueue &Victim = *Queues[(Shard + K) % W];
      std::vector<Queued> Loot;
      int Site = INT_MIN;
      {
        std::lock_guard<std::mutex> Lock(Victim.Mu);
        size_t Fullest = 0;
        for (auto &[S, Items] : Victim.Buckets)
          if (Items.size() > Fullest) {
            Fullest = Items.size();
            Site = S;
          }
        if (Site == INT_MIN)
          continue;
        std::vector<Queued> &Q = Victim.Buckets[Site];
        size_t Keep = Q.size() / 2;
        for (size_t I = Keep; I < Q.size(); ++I)
          Loot.push_back(std::move(Q[I]));
        Q.resize(Keep);
      }
      {
        std::lock_guard<std::mutex> Lock(Me.Mu);
        Me.Stolen += Loot.size();
        std::vector<Queued> &Q = Me.Buckets[Site];
        for (Queued &Item : Loot)
          Q.push_back(std::move(Item));
      }
      return popLocal(Shard);
    }
    return std::nullopt;
  }

  std::vector<std::unique_ptr<ShardQueue>> Queues;

  mutable std::mutex SchedMu;
  uint64_t Pending = 0; ///< queued, not yet claimed
  int Active = 0;       ///< shards executing a claimed item
  uint64_t Enqueued = 0;
  bool StopFlag = false;
  std::vector<Queued> RetryPool;
};

} // namespace recap::sched

#endif // RECAP_SCHED_CUPASCHEDULER_H
