//===- sched/CorpusScheduler.h - Program-level corpus scheduling -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program level of two-level scheduling (DESIGN.md §7): a corpus job
/// is a queue of tasks (one engine run, one survey slice) executed over
/// ONE shared WorkerPool whose size is the global worker budget. Each
/// task, as it starts, is granted between 1 and ShardsPerTask slots from
/// a WorkerBudget sized to the pool — it runs serially on its pool thread
/// with a grant of 1, or drives that many intra-run shards with a larger
/// grant (the engine runs one shard on the granted thread itself), so
/// worker threads actually executing never exceed the budget no matter
/// how the two levels mix. Grants are fair-share capped by the number
/// of unfinished tasks: while the queue is deeper than the budget every
/// task runs serially, and the shard borrow only widens as the corpus
/// drains — program-level parallelism comes first. Pool threads that
/// cannot get a slot park on the budget's condition variable; they burn
/// no CPU.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SCHED_CORPUSSCHEDULER_H
#define RECAP_SCHED_CORPUSSCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace recap::sched {

struct CorpusSchedulerOptions {
  /// Global worker budget: pool threads and budget slots. 0 = one per
  /// hardware thread.
  size_t Workers = 0;
  /// Maximum slots one task may hold (1 = every task runs serially).
  size_t ShardsPerTask = 1;
  /// Clamp the resolved budget to hardware_concurrency() instead of
  /// oversubscribing; stress tests that *want* oversubscription on small
  /// machines turn this off.
  bool ClampToHardware = true;
};

class CorpusScheduler {
public:
  /// A task receives its queue index and its slot grant (>= 1): the
  /// number of workers, including the calling thread, it may use.
  using Task = std::function<void(size_t Index, size_t Budget)>;

  struct Stats {
    size_t Workers = 0;       ///< resolved global budget
    bool Clamped = false;     ///< request exceeded hardware and was cut
    uint64_t Tasks = 0;       ///< tasks executed
    uint64_t SlotsBorrowed = 0; ///< grants beyond 1, summed over tasks
    size_t MaxSlotsInUse = 0; ///< high-water of outstanding slots
  };

  explicit CorpusScheduler(CorpusSchedulerOptions Opts = {});

  /// Appends a task; call before run().
  void add(Task T);
  size_t tasks() const { return Queue.size(); }
  size_t workers() const { return Workers; }
  bool clamped() const { return Clamped; }

  /// Executes every queued task over the shared pool and blocks until
  /// all finish. Tasks start in queue order (completion order is up to
  /// the budget and task durations). The queue is consumed: a second
  /// run() executes only tasks added since.
  Stats run();

private:
  size_t Workers;
  size_t ShardsPerTask;
  bool Clamped = false;
  std::vector<Task> Queue;
};

} // namespace recap::sched

#endif // RECAP_SCHED_CORPUSSCHEDULER_H
