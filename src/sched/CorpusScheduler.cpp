//===- sched/CorpusScheduler.cpp - Program-level corpus scheduling ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/CorpusScheduler.h"

#include "parallel/WorkerPool.h"
#include "sched/WorkerBudget.h"

#include <algorithm>
#include <atomic>

using namespace recap;
using namespace recap::sched;

CorpusScheduler::CorpusScheduler(CorpusSchedulerOptions Opts)
    : Workers(WorkerPool::resolveWorkers(Opts.Workers)),
      ShardsPerTask(Opts.ShardsPerTask == 0 ? 1 : Opts.ShardsPerTask) {
  size_t HW = WorkerPool::hardwareWorkers();
  if (Opts.ClampToHardware && Workers > HW) {
    Workers = HW;
    Clamped = true;
  }
}

void CorpusScheduler::add(Task T) { Queue.push_back(std::move(T)); }

CorpusScheduler::Stats CorpusScheduler::run() {
  std::vector<Task> Tasks;
  Tasks.swap(Queue);

  WorkerBudget Budget(Workers);
  std::atomic<size_t> Unfinished{Tasks.size()};
  {
    WorkerPool Pool(Workers);
    for (size_t Idx = 0; Idx < Tasks.size(); ++Idx)
      Pool.submit([&, Idx] {
        // One atomic grant covers the task's base slot and its shard
        // borrow; holding the grant for the task's whole run keeps the
        // two scheduling levels composed under the one budget. The
        // grant is fair-share capped: with more unfinished tasks than
        // workers every task runs serially (program-level parallelism
        // first), and the borrow widens only as the queue drains — a
        // greedy acquire(ShardsPerTask) would let the first task take
        // every slot and collapse the corpus to one program at a time.
        size_t Left = std::max<size_t>(1, Unfinished.load());
        size_t Fair =
            std::max<size_t>(1, Workers / std::min(Left, Workers));
        size_t Got = Budget.acquire(std::min(ShardsPerTask, Fair));
        Tasks[Idx](Idx, Got);
        Budget.release(Got);
        Unfinished.fetch_sub(1);
      });
    Pool.wait();
  }

  Stats S;
  S.Workers = Workers;
  S.Clamped = Clamped;
  S.Tasks = Tasks.size();
  S.SlotsBorrowed = Budget.borrowed();
  S.MaxSlotsInUse = Budget.maxInUse();
  return S;
}
