//===- api/StringMethods.cpp - String.prototype regex methods --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/StringMethods.h"

#include <cassert>

using namespace recap;

//===----------------------------------------------------------------------===//
// Symbolic models
//===----------------------------------------------------------------------===//

std::shared_ptr<RegexQuery> SymbolicStringMethods::match(TermRef Input) {
  // String.prototype.match resets lastIndex for global regexes and
  // otherwise behaves like exec on the first match; the full global match
  // array is not modeled (partial, §6.1).
  return Re.exec(std::move(Input), mkIntConst(0));
}

SymbolicSearch SymbolicStringMethods::search(TermRef Input) {
  SymbolicSearch Out;
  Out.Query = Re.exec(std::move(Input), mkIntConst(0));
  Out.FoundIndex = SymbolicRegExp::matchIndex(*Out.Query);
  Out.NotFound = mkIntConst(-1);
  return Out;
}

SymbolicReplace SymbolicStringMethods::replace(TermRef Input,
                                               const UString &Replacement) {
  SymbolicReplace Out;
  Out.Query = Re.exec(Input, mkIntConst(0));
  const SymbolicMatch &M = Out.Query->Model;

  // Substitute $$, $&, $`, $', $1..$9 and $<name> in the replacement
  // template. $` and $' are exactly the model's Prefix/Suffix terms.
  std::vector<TermRef> Parts;
  Parts.push_back(M.Prefix);
  UString Pending;
  auto Flush = [&] {
    if (!Pending.empty()) {
      Parts.push_back(mkStrConst(Pending));
      Pending.clear();
    }
  };
  for (size_t I = 0; I < Replacement.size(); ++I) {
    CodePoint C = Replacement[I];
    if (C != '$' || I + 1 >= Replacement.size()) {
      Pending.push_back(C);
      continue;
    }
    CodePoint N = Replacement[I + 1];
    if (N == '$') {
      Pending.push_back('$');
      ++I;
    } else if (N == '&') {
      Flush();
      Parts.push_back(M.C0.Value);
      ++I;
    } else if (N == '`') {
      Flush();
      Parts.push_back(M.Prefix);
      ++I;
    } else if (N == '\'') {
      Flush();
      Parts.push_back(M.Suffix);
      ++I;
    } else if (N == '<') {
      size_t Close = Replacement.find('>', I + 2);
      uint32_t Idx = 0;
      if (Close != UString::npos)
        Idx = Re.regex().groupIndex(
            toUTF8(Replacement.substr(I + 2, Close - I - 2)));
      if (Idx != 0 && Idx <= M.Captures.size()) {
        Flush();
        Parts.push_back(M.Captures[Idx - 1].Value);
        I = Close;
      } else {
        Pending.push_back(C);
      }
    } else if (N >= '1' && N <= '9' &&
               static_cast<size_t>(N - '0') <= M.Captures.size()) {
      Flush();
      // Undefined captures substitute as "" — the model pins Value to ε
      // whenever Defined is false, so the Value term is correct directly.
      Parts.push_back(M.Captures[N - '1'].Value);
      ++I;
    } else {
      Pending.push_back(C);
    }
  }
  Flush();
  Parts.push_back(M.Suffix);

  Out.Replaced = mkConcat(std::move(Parts));
  Out.Unchanged = Input;
  return Out;
}

SymbolicSplit SymbolicStringMethods::split(TermRef Input) {
  SymbolicSplit Out;
  Out.Query = Re.exec(std::move(Input), mkIntConst(0));
  Out.Head = Out.Query->Model.Prefix;
  Out.Tail = Out.Query->Model.Suffix;
  return Out;
}

//===----------------------------------------------------------------------===//
// Concrete counterparts
//===----------------------------------------------------------------------===//

/// The spec's GetSubstitution: $$, $&, $`, $', $n, $nn, $<name>.
static UString substituteTemplate(const UString &Replacement,
                                  const MatchResult &M, const Regex &R,
                                  const UString &Input) {
  UString Out;
  for (size_t I = 0; I < Replacement.size(); ++I) {
    CodePoint C = Replacement[I];
    if (C != '$' || I + 1 >= Replacement.size()) {
      Out.push_back(C);
      continue;
    }
    CodePoint N = Replacement[I + 1];
    if (N == '$') {
      Out.push_back('$');
      ++I;
      continue;
    }
    if (N == '&') {
      Out += M.Match;
      ++I;
      continue;
    }
    if (N == '`') {
      Out += Input.substr(0, M.Index);
      ++I;
      continue;
    }
    if (N == '\'') {
      Out += Input.substr(M.Index + M.matchLength());
      ++I;
      continue;
    }
    if (N == '<') {
      // $<name>: substitute the named capture; an unterminated or unknown
      // name renders literally, as GetSubstitution specifies for
      // patterns without that group.
      size_t Close = Replacement.find('>', I + 2);
      if (Close != UString::npos) {
        std::string Name = toUTF8(Replacement.substr(I + 2, Close - I - 2));
        uint32_t Idx = R.groupIndex(Name);
        if (Idx != 0) {
          if (Idx <= M.Captures.size() && M.Captures[Idx - 1])
            Out += *M.Captures[Idx - 1];
          I = Close;
          continue;
        }
      }
      Out.push_back(C);
      continue;
    }
    if (N >= '0' && N <= '9') {
      // Prefer the two-digit form when it names an existing group ($10
      // beats $1 followed by '0'), matching GetSubstitution.
      size_t OneDigit = N - '0';
      size_t TwoDigit =
          I + 2 < Replacement.size() && Replacement[I + 2] >= '0' &&
                  Replacement[I + 2] <= '9'
              ? OneDigit * 10 + (Replacement[I + 2] - '0')
              : 0;
      if (TwoDigit >= 1 && TwoDigit <= M.Captures.size()) {
        if (const auto &Cap = M.Captures[TwoDigit - 1])
          Out += *Cap;
        I += 2;
        continue;
      }
      if (OneDigit >= 1 && OneDigit <= M.Captures.size()) {
        if (const auto &Cap = M.Captures[OneDigit - 1])
          Out += *Cap;
        ++I;
        continue;
      }
    }
    Out.push_back(C);
  }
  return Out;
}

/// Shared replace loop; \p Global overrides the regex's own flag (used by
/// replaceAll).
static UString replaceImpl(RegExpObject &Re, const UString &Input,
                           const UString &Replacement, bool Global) {
  UString Out;
  size_t Pos = 0;
  int64_t SavedLastIndex = Re.LastIndex;
  Re.LastIndex = 0;
  while (Pos <= Input.size()) {
    MatchResult M;
    MatchStatus S = Re.matcher().search(Input, Pos, M);
    if (S != MatchStatus::Match)
      break;
    Out += Input.substr(Pos, M.Index - Pos);
    Out += substituteTemplate(Replacement, M, Re.regex(), Input);
    size_t Next = M.Index + M.matchLength();
    if (!Global) {
      Pos = Next;
      break;
    }
    // Empty matches advance by one to guarantee progress (spec).
    if (Next == M.Index) {
      if (Next < Input.size())
        Out.push_back(Input[Next]);
      ++Next;
    }
    Pos = Next;
  }
  if (Pos <= Input.size())
    Out += Input.substr(Pos);
  Re.LastIndex = SavedLastIndex;
  return Out;
}

UString recap::concreteReplace(RegExpObject &Re, const UString &Input,
                               const UString &Replacement) {
  return replaceImpl(Re, Input, Replacement, Re.regex().flags().Global);
}

UString recap::concreteReplaceAll(RegExpObject &Re, const UString &Input,
                                  const UString &Replacement) {
  return replaceImpl(Re, Input, Replacement, /*Global=*/true);
}

std::vector<UString> recap::concreteMatch(RegExpObject &Re,
                                          const UString &Input,
                                          bool &Matched) {
  std::vector<UString> Out;
  Matched = false;
  if (!Re.regex().flags().Global) {
    auto Exec = Re.exec(Input);
    if (Exec.Status != MatchStatus::Match)
      return Out;
    Matched = true;
    Out.push_back(Exec.Result->Match);
    return Out;
  }
  int64_t SavedLastIndex = Re.LastIndex;
  Re.LastIndex = 0;
  while (true) {
    auto Exec = Re.exec(Input);
    if (Exec.Status != MatchStatus::Match)
      break;
    Matched = true;
    Out.push_back(Exec.Result->Match);
    // AdvanceStringIndex for empty matches.
    if (Exec.Result->matchLength() == 0)
      ++Re.LastIndex;
  }
  Re.LastIndex = SavedLastIndex;
  return Out;
}

std::vector<MatchResult> recap::concreteMatchAll(RegExpObject &Re,
                                                 const UString &Input) {
  assert(Re.regex().flags().Global &&
         "matchAll requires a global regex (spec TypeError)");
  std::vector<MatchResult> Out;
  int64_t SavedLastIndex = Re.LastIndex;
  Re.LastIndex = 0;
  while (true) {
    auto Exec = Re.exec(Input);
    if (Exec.Status != MatchStatus::Match)
      break;
    Out.push_back(*Exec.Result);
    if (Exec.Result->matchLength() == 0)
      ++Re.LastIndex;
  }
  Re.LastIndex = SavedLastIndex;
  return Out;
}

int64_t recap::concreteSearch(RegExpObject &Re, const UString &Input) {
  MatchResult M;
  MatchStatus S = Re.matcher().search(Input, 0, M);
  return S == MatchStatus::Match ? static_cast<int64_t>(M.Index) : -1;
}

std::vector<UString> recap::concreteSplit(RegExpObject &Re,
                                          const UString &Input,
                                          size_t Limit) {
  std::vector<UString> Out;
  if (Limit == 0)
    return Out;
  if (Input.empty()) {
    // Spec: split of the empty string yields [""] unless the regex
    // matches the empty string.
    MatchResult M;
    if (Re.matcher().search(Input, 0, M) != MatchStatus::Match)
      Out.push_back(UString());
    return Out;
  }
  size_t FieldStart = 0, Pos = 0;
  while (Pos < Input.size()) {
    MatchResult M;
    MatchStatus S = Re.matcher().search(Input, Pos, M);
    if (S != MatchStatus::Match || M.Index >= Input.size())
      break;
    size_t End = M.Index + M.matchLength();
    if (End == FieldStart) {
      // Empty separator at the field start: no field yet, move on.
      Pos = M.Index + 1;
      continue;
    }
    Out.push_back(Input.substr(FieldStart, M.Index - FieldStart));
    if (Out.size() >= Limit)
      return Out;
    // Spec: capture values splice into the result.
    for (const auto &Cap : M.Captures) {
      Out.push_back(Cap ? *Cap : UString());
      if (Out.size() >= Limit)
        return Out;
    }
    FieldStart = End;
    Pos = End > M.Index ? End : M.Index + 1;
  }
  Out.push_back(Input.substr(FieldStart));
  return Out;
}
