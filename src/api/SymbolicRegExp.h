//===- api/SymbolicRegExp.h - Symbolic RegExp.exec/test ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2 of the paper: modeling RegExp.prototype.exec (and test) in
/// terms of capturing-language membership. The input is decorated with the
/// meta markers 〈 and 〉, the pattern is wrapped in lazy wildcards with an
/// outer capture group C0, flags are handled (ignore-case by class
/// rewriting inside the model, sticky/global by position constraints on
/// lastIndex), and the symbolic result object exposes index, captures and
/// the lastIndex update term.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_API_SYMBOLICREGEXP_H
#define RECAP_API_SYMBOLICREGEXP_H

#include "cegar/CegarSolver.h"
#include "runtime/CompiledRegex.h"

namespace recap {

/// The symbolic mirror of one RegExp object. Create one per regex literal;
/// each exec/test call site with a fresh input produces a RegexQuery.
///
/// Backed by a shared CompiledRegex: each query instantiates the cached
/// symbolic-match template (fresh variables, shared structure) and wraps
/// the shared concrete matcher as its oracle — the parser and model
/// generator run at most once per (pattern, flags, options).
class SymbolicRegExp {
public:
  /// \p VarPrefix namespaces the model's fresh variables; distinct call
  /// sites must use distinct prefixes.
  SymbolicRegExp(Regex R, std::string VarPrefix, ModelOptions Opts = {});

  /// Shares an interned compiled regex (e.g. from a RegexRuntime).
  SymbolicRegExp(std::shared_ptr<CompiledRegex> Compiled,
                 std::string VarPrefix, ModelOptions Opts = {});

  // Not copyable: a copy would duplicate CallCounter and mint the same
  // "prefix#N" fresh-variable names as the original, silently violating
  // the distinct-prefix invariant. Moves are fine.
  SymbolicRegExp(const SymbolicRegExp &) = delete;
  SymbolicRegExp &operator=(const SymbolicRegExp &) = delete;
  SymbolicRegExp(SymbolicRegExp &&) = default;
  SymbolicRegExp &operator=(SymbolicRegExp &&) = default;

  /// Symbolic RegExp.exec(Input) when lastIndex = LastIndex.
  /// The returned query exposes the full capture model.
  std::shared_ptr<RegexQuery> exec(TermRef Input, TermRef LastIndex);

  /// Symbolic RegExp.test(Input): same constraint, but CEGAR skips
  /// capture validation (the program cannot observe captures).
  std::shared_ptr<RegexQuery> test(TermRef Input, TermRef LastIndex);

  /// Match index in input coordinates (MatchStart - 1).
  static TermRef matchIndex(const RegexQuery &Q);
  /// The lastIndex value after a successful exec: index + |C0|.
  static TermRef lastIndexAfter(const RegexQuery &Q);
  /// Symbolic capture access: (defined, value) for capture \p I (0 = whole
  /// match).
  static CaptureVar capture(const RegexQuery &Q, size_t I);

  const Regex &regex() const { return C->regex(); }
  const std::shared_ptr<CompiledRegex> &compiled() const { return C; }

private:
  std::shared_ptr<RegexQuery> makeQuery(TermRef Input, TermRef LastIndex,
                                        bool ForExec);

  std::shared_ptr<CompiledRegex> C;
  std::string VarPrefix;
  ModelOptions Opts;
  unsigned CallCounter = 0;
};

} // namespace recap

#endif // RECAP_API_SYMBOLICREGEXP_H
