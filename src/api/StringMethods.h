//===- api/StringMethods.h - String.prototype regex methods -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial symbolic models for the String.prototype methods that take a
/// RegExp — match, search, replace, split — mirroring the paper's §6.1:
/// "Our implementation includes partial models for the remaining functions
/// that allow effective test generation in practice but are not
/// semantically complete."
///
/// Coverage (documented incompletenesses):
///  - match (non-global): exactly exec.
///  - match (global): modeled as the first match only; the result array
///    beyond index 0 is concretized.
///  - search: exec's index, or -1 encoded by a no-match branch.
///  - replace (first occurrence, string replacement): the output string is
///    prefix ++ replacement ++ suffix with $1..$9 substitution; global
///    replace is concretized after the first occurrence.
///  - split (by regex, no captures, first two fields): output fields are
///    the segments around one match; additional fields concretize.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_API_STRINGMETHODS_H
#define RECAP_API_STRINGMETHODS_H

#include "api/SymbolicRegExp.h"

namespace recap {

/// Symbolic result of String.prototype.replace(regex, replacement) for the
/// first occurrence.
struct SymbolicReplace {
  /// The underlying match query; assert positively for the "replacement
  /// happened" branch, negatively for the identity branch.
  std::shared_ptr<RegexQuery> Query;
  /// Output string when the regex matches (prefix ++ repl ++ suffix).
  TermRef Replaced;
  /// Output string when it does not (the input itself).
  TermRef Unchanged;
};

/// Symbolic result of String.prototype.search(regex).
struct SymbolicSearch {
  std::shared_ptr<RegexQuery> Query;
  /// Index term valid under the positive branch (match exists).
  TermRef FoundIndex;
  /// Value under the negative branch (-1).
  TermRef NotFound;
};

/// Symbolic result of String.prototype.split(regex) restricted to the
/// first separator occurrence.
struct SymbolicSplit {
  std::shared_ptr<RegexQuery> Query;
  /// Field before the separator (valid under the positive branch).
  TermRef Head;
  /// Remainder after the separator (everything past the first match;
  /// deeper splits are not modeled).
  TermRef Tail;
};

/// Factory for the partial method models; wraps one SymbolicRegExp.
class SymbolicStringMethods {
public:
  explicit SymbolicStringMethods(SymbolicRegExp &Re) : Re(Re) {}

  /// s.match(re): for non-global regexes identical to exec; for global
  /// regexes this models the *first* match (partial).
  std::shared_ptr<RegexQuery> match(TermRef Input);

  /// s.search(re): index of the first match.
  SymbolicSearch search(TermRef Input);

  /// s.replace(re, replacement): first occurrence, string replacement
  /// with $&, $1..$9 patterns substituted symbolically.
  SymbolicReplace replace(TermRef Input, const UString &Replacement);

  /// s.split(re): first separator only.
  SymbolicSplit split(TermRef Input);

private:
  SymbolicRegExp &Re;
};

/// Concrete counterparts (spec-faithful where implemented) used by the
/// DSE interpreter and by differential tests.
///
/// The replacement template supports the full GetSubstitution set: $$,
/// $&, $` (preceding portion), $' (following portion), $1..$99, and
/// $<name> for named groups (ES2018).
UString concreteReplace(RegExpObject &Re, const UString &Input,
                        const UString &Replacement);
int64_t concreteSearch(RegExpObject &Re, const UString &Input);
std::vector<UString> concreteSplit(RegExpObject &Re, const UString &Input,
                                   size_t Limit = SIZE_MAX);

/// String.prototype.match. For non-global regexes this is one exec; for
/// global regexes it returns every match's C0, resetting lastIndex first
/// (the spec's RegExpBuiltinExec loop).
std::vector<UString> concreteMatch(RegExpObject &Re, const UString &Input,
                                   bool &Matched);

/// String.prototype.matchAll (ES2020): every match with full capture
/// detail. Requires a global regex per the spec; asserts that here.
std::vector<MatchResult> concreteMatchAll(RegExpObject &Re,
                                          const UString &Input);

/// String.prototype.replaceAll (ES2021): replace every occurrence
/// regardless of the global flag (the spec demands g on RegExp arguments;
/// this helper implements the resulting behavior directly).
UString concreteReplaceAll(RegExpObject &Re, const UString &Input,
                           const UString &Replacement);

} // namespace recap

#endif // RECAP_API_STRINGMETHODS_H
