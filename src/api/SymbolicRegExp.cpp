//===- api/SymbolicRegExp.cpp - Symbolic RegExp.exec/test ------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

using namespace recap;

SymbolicRegExp::SymbolicRegExp(Regex R, std::string VarPrefix,
                               ModelOptions Opts)
    : C(std::make_shared<CompiledRegex>(std::move(R))),
      VarPrefix(std::move(VarPrefix)), Opts(Opts) {}

SymbolicRegExp::SymbolicRegExp(std::shared_ptr<CompiledRegex> Compiled,
                               std::string VarPrefix, ModelOptions Opts)
    : C(std::move(Compiled)), VarPrefix(std::move(VarPrefix)), Opts(Opts) {}

std::shared_ptr<RegexQuery> SymbolicRegExp::makeQuery(TermRef Input,
                                                      TermRef LastIndex,
                                                      bool ForExec) {
  std::string Prefix = VarPrefix + "#" + std::to_string(CallCounter++);
  const Regex &R = C->regex();

  auto Q = std::make_shared<RegexQuery>();
  Q->Oracle = std::make_shared<RegExpObject>(C);
  Q->Model = C->instantiate(Input, Prefix, Opts);
  Q->Input = Input;
  Q->LastIndex = LastIndex;
  Q->ValidateCaptures = ForExec;
  // Algorithm 2 lines 1 and 5 (decoration, wildcard wrapping) live in the
  // model builder; the query only adds flag-dependent position handling.
  Q->Decoration = Q->Model.Decoration;

  // Position handling for sticky/global (Algorithm 2 lines 2-4). Match
  // start is in decorated coordinates: input index + 1.
  if (R.flags().Sticky) {
    Q->Position = mkEq(Q->Model.MatchStart,
                       mkAdd(LastIndex, mkIntConst(1)));
  } else if (R.flags().Global) {
    Q->Position = mkLe(mkAdd(LastIndex, mkIntConst(1)),
                       Q->Model.MatchStart);
  } else {
    Q->Position = mkTrue();
  }
  return Q;
}

std::shared_ptr<RegexQuery> SymbolicRegExp::exec(TermRef Input,
                                                 TermRef LastIndex) {
  return makeQuery(std::move(Input), std::move(LastIndex), /*ForExec=*/true);
}

std::shared_ptr<RegexQuery> SymbolicRegExp::test(TermRef Input,
                                                 TermRef LastIndex) {
  return makeQuery(std::move(Input), std::move(LastIndex), /*ForExec=*/false);
}

TermRef SymbolicRegExp::matchIndex(const RegexQuery &Q) {
  return mkAdd(Q.Model.MatchStart, mkIntConst(-1));
}

TermRef SymbolicRegExp::lastIndexAfter(const RegexQuery &Q) {
  return mkAdd(matchIndex(Q), mkStrLen(Q.Model.C0.Value));
}

CaptureVar SymbolicRegExp::capture(const RegexQuery &Q, size_t I) {
  if (I == 0)
    return Q.Model.C0;
  assert(I <= Q.Model.Captures.size() && "capture index out of range");
  return Q.Model.Captures[I - 1];
}
