//===- parallel/WorkerPool.h - Shard-per-worker thread pool -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate for shard-per-worker scaling (DESIGN.md §6):
/// a small fixed-size thread pool with a task queue, plus the fork-join
/// helpers the DSE engine and the survey use to run one long-lived shard
/// loop per worker. Shards own all mutable solver state (backends,
/// sessions, CEGAR caches); the pool only moves closures onto threads —
/// everything shared between shards synchronizes on its own terms
/// (RegexRuntime interning, CompiledRegex stage mutexes, the engine's
/// scheduler locks).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_PARALLEL_WORKERPOOL_H
#define RECAP_PARALLEL_WORKERPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace recap {

class WorkerPool {
public:
  /// Spawns \p Workers threads (at least 1). Thread construction failure
  /// (resource exhaustion) is tolerated: the pool keeps whatever threads
  /// it got — spawnFailures() reports the shortfall — and with zero
  /// threads it degrades to inline mode, where submit() runs the job
  /// synchronously on the caller. Work is never dropped either way.
  explicit WorkerPool(size_t Workers);
  /// Drains the queue, then joins every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  size_t workers() const { return Threads.size(); }

  /// Threads requested but not spawned (std::thread construction threw).
  size_t spawnFailures() const { return SpawnFailures; }

  /// Enqueues \p Job; some worker runs it eventually. Exceptions escaping
  /// a job terminate (recap code reports failure through return values).
  /// With zero live threads (every spawn failed) the job runs inline,
  /// synchronously, on the calling thread instead.
  void submit(std::function<void()> Job);

  /// Blocks until the queue is empty and no job is running.
  void wait();

  /// max(1, std::thread::hardware_concurrency).
  static size_t hardwareWorkers();

  /// Maps a Workers option to an actual count: 0 = hardwareWorkers(),
  /// otherwise the request itself (floored at 1).
  static size_t resolveWorkers(size_t Requested);

  /// Cuts \p Workers down to hardwareWorkers(); sets *\p WasClamped when
  /// the request exceeded it. The policy half lives with the callers
  /// (EngineOptions::ClampWorkers, CorpusSchedulerOptions::ClampToHardware
  /// — both count the event instead of silently oversubscribing).
  static size_t clampToHardware(size_t Workers, bool *WasClamped = nullptr);

  /// Fork-join without a pool: runs Fn(0) on the calling thread and
  /// spawns N-1 threads for Fn(1..N-1), then joins them. This is what
  /// shard loops use — each shard is a long-lived loop that may
  /// idle-wait on other shards' queues, so it needs a dedicated thread,
  /// not a queue slot that could starve behind another shard. Running
  /// one shard on the caller keeps the thread count at exactly N, which
  /// is what lets a corpus task's slot grant equal its shard count
  /// (sched/CorpusScheduler budget accounting).
  ///
  /// Thread construction failure (real resource exhaustion, or the
  /// FaultSite::ThreadSpawn chaos site) degrades instead of throwing:
  /// the shards that could not get a thread run inline on the caller
  /// AFTER Fn(0) returns. That ordering is safe for shard loops — Fn(0)
  /// only returns at quiescence (scheduler stopped or drained), so a
  /// late inline shard observes the stop flag or steals leftovers, it
  /// never deadlocks waiting on itself. Returns the number of shards
  /// that fell back to inline execution (0 on a healthy run).
  static size_t runShards(size_t N, const std::function<void(size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Threads;
  size_t SpawnFailures = 0; ///< ctor-time thread construction failures
  std::mutex Mu;
  std::condition_variable HasWork; ///< queue non-empty or shutting down
  std::condition_variable Idle;    ///< queue empty and nothing running
  std::deque<std::function<void()>> Queue;
  size_t Running = 0;
  bool Shutdown = false;
};

} // namespace recap

#endif // RECAP_PARALLEL_WORKERPOOL_H
