//===- parallel/WorkerPool.cpp - Shard-per-worker thread pool --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parallel/WorkerPool.h"

#include "reliability/FaultInjector.h"

using namespace recap;

namespace {

/// One attempted thread spawn: consults the chaos harness first (a fired
/// FaultSite::ThreadSpawn models std::thread throwing system_error on
/// resource exhaustion), then the real construction. Returns false —
/// never throws — when the thread could not be built.
bool trySpawn(std::vector<std::thread> &Threads,
              std::function<void()> Body) {
  if (FaultInjector *FI = FaultInjector::active())
    if (FI->fire(FaultSite::ThreadSpawn, nullptr))
      return false;
  try {
    Threads.emplace_back(std::move(Body));
    return true;
  } catch (const std::exception &) {
    // std::system_error from thread construction: the process ran out of
    // threads/VM. The caller degrades to fewer workers instead of dying.
    return false;
  }
}

} // namespace

WorkerPool::WorkerPool(size_t Workers) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (size_t I = 0; I < Workers; ++I)
    if (!trySpawn(Threads, [this] { workerLoop(); }))
      ++SpawnFailures;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Shutdown = true;
  }
  HasWork.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::submit(std::function<void()> Job) {
  if (Threads.empty()) {
    // Inline mode: every spawn failed, so no worker will ever drain the
    // queue — run the job here. Slower, never stuck.
    Job();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Job));
  }
  HasWork.notify_one();
}

void WorkerPool::wait() {
  if (Threads.empty())
    return; // inline mode: submit() already ran everything
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void WorkerPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      HasWork.wait(Lock, [this] { return Shutdown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutdown with a drained queue
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Running;
      if (Queue.empty() && Running == 0)
        Idle.notify_all();
    }
  }
}

size_t WorkerPool::hardwareWorkers() {
  unsigned H = std::thread::hardware_concurrency();
  return H == 0 ? 1 : H;
}

size_t WorkerPool::resolveWorkers(size_t Requested) {
  return Requested == 0 ? hardwareWorkers() : Requested;
}

size_t WorkerPool::clampToHardware(size_t Workers, bool *WasClamped) {
  size_t HW = hardwareWorkers();
  bool Clamp = Workers > HW;
  if (WasClamped)
    *WasClamped = Clamp;
  return Clamp ? HW : Workers;
}

size_t WorkerPool::runShards(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return 0;
  if (N == 1) {
    Fn(0);
    return 0;
  }
  std::vector<std::thread> Shards;
  Shards.reserve(N - 1);
  std::vector<size_t> Inline;
  for (size_t I = 1; I < N; ++I)
    if (!trySpawn(Shards, [&Fn, I] { Fn(I); }))
      Inline.push_back(I);
  Fn(0);
  // Shards whose thread could not be built run here, after shard 0 has
  // reached quiescence (its loop only returns once the scheduler is
  // stopped or drained) — so an inline shard sees the stop flag or
  // steals leftovers instead of waiting on work only it could produce.
  for (size_t I : Inline)
    Fn(I);
  for (std::thread &T : Shards)
    T.join();
  return Inline.size();
}
