//===- parallel/WorkerPool.cpp - Shard-per-worker thread pool --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parallel/WorkerPool.h"

using namespace recap;

WorkerPool::WorkerPool(size_t Workers) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (size_t I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Shutdown = true;
  }
  HasWork.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Job));
  }
  HasWork.notify_one();
}

void WorkerPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void WorkerPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      HasWork.wait(Lock, [this] { return Shutdown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutdown with a drained queue
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Running;
      if (Queue.empty() && Running == 0)
        Idle.notify_all();
    }
  }
}

size_t WorkerPool::hardwareWorkers() {
  unsigned H = std::thread::hardware_concurrency();
  return H == 0 ? 1 : H;
}

size_t WorkerPool::resolveWorkers(size_t Requested) {
  return Requested == 0 ? hardwareWorkers() : Requested;
}

size_t WorkerPool::clampToHardware(size_t Workers, bool *WasClamped) {
  size_t HW = hardwareWorkers();
  bool Clamp = Workers > HW;
  if (WasClamped)
    *WasClamped = Clamp;
  return Clamp ? HW : Workers;
}

void WorkerPool::runShards(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (N == 1) {
    Fn(0);
    return;
  }
  std::vector<std::thread> Shards;
  Shards.reserve(N - 1);
  for (size_t I = 1; I < N; ++I)
    Shards.emplace_back([&Fn, I] { Fn(I); });
  Fn(0);
  for (std::thread &T : Shards)
    T.join();
}
