//===- wire/Protocol.h - Wire protocol vocabulary ---------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response vocabulary of the wire protocol (DESIGN.md §12.2,
/// docs/PROTOCOL.md): every frame is one JSON object carrying `"v":1`, a
/// caller-chosen `"id"`, and — on requests — an `"op"` naming one of the
/// eight verbs (submit, poll, nextResult, cancel, drain, shutdown,
/// statsz, healthz). Responses echo the id and carry `"ok"`; failures add
/// an `error` object from the taxonomy in docs/PROTOCOL.md.
///
/// This header is the serialization boundary between wire JSON and the
/// library's native types. Two asymmetries are deliberate:
///
///  - MiniJS programs have no text syntax, so a DSE spec names its
///    programs instead of embedding them: `{"workload": <table-6 name>}`,
///    `{"package_seed": N}` (the Table 7/8 generator), or
///    `{"pattern": "/re/flags"}` — the last synthesizes a *pattern
///    probe*: assert(false) guarded by `pattern.test(s)` over a symbolic
///    `s`, so the DSE engine finding the "bug" means it synthesized a
///    matching input (the paper's semantics made executable over a wire).
///
///  - Readers are unknown-field tolerant (Json::get returns null for
///    absent keys; extra keys are ignored), so a v1 peer survives
///    additive protocol growth — the compat policy docs/PROTOCOL.md §7
///    commits to.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_WIRE_PROTOCOL_H
#define RECAP_WIRE_PROTOCOL_H

#include "service/AnalysisService.h"
#include "support/Result.h"
#include "wire/Json.h"

namespace recap {
namespace wire {

/// Protocol version stamped on every frame. Version bumps are reserved
/// for breaking changes; additive fields do not bump it.
constexpr int64_t ProtocolVersion = 1;

/// Builds the shared response envelope {"v":1,"id":Id,"ok":true}.
Json okFrame(int64_t Id);

/// Builds {"v":1,"id":Id,"ok":false,"error":{"code":...,"message":...}}.
/// Codes are the stable taxonomy of docs/PROTOCOL.md §6 ("malformed",
/// "oversized", "version", "unknown-op", "bad-spec", "rejected",
/// "unknown-job", "registry-full", "internal").
Json errorFrame(int64_t Id, const std::string &Code,
                const std::string &Message);

/// Decodes a submit spec object (the `spec` member of a submit request)
/// into a JobSpec. Recognized fields: kind ("dse"|"survey"), tenant,
/// programs (array of program specs, see file comment), packages (array
/// of packages, each an array of JS source strings), engine
/// ({max_tests, max_seconds, seed, level, dispatch, dispatch_anchored,
/// dispatch_racing}), deadline_ms, priority, shards_per_unit. Unknown
/// fields are ignored; structurally invalid specs return the error.
Result<JobSpec> jobSpecFromJson(const Json &Spec);

// Native -> JSON. Shapes are documented field by field in
// docs/PROTOCOL.md §5 and kept stable (additive-only).
Json toJson(const EngineResult &R);
Json toJson(const Survey &S);
Json toJson(const RuntimeStats &S);
Json toJson(const ServiceStats &S);
Json toJson(const LatencyHistogram &H);
Json toJson(const ShutdownReport &R);
Json toJson(const JobUnitResult &U, JobKind Kind);
Json toJson(const JobResult &R, JobKind Kind);

/// The AnalysisService portion of a /statsz dump: service counters,
/// merged + per-tenant runtime windows, per-tenant latency histograms,
/// quarantine contents, health and occupancy gauges. The wire server
/// adds its own `wire` section on top (ServiceServer::statsz).
Json serviceStatszJson(const AnalysisService &Svc);

} // namespace wire
} // namespace recap

#endif // RECAP_WIRE_PROTOCOL_H
