//===- wire/ServiceClient.h - Wire protocol client --------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin synchronous client for the wire protocol (docs/PROTOCOL.md):
/// one connection, auto-assigned request ids, one call() = one request
/// frame out + one response frame in. Error handling folds the three
/// failure layers into one Result: transport failure ("wire: ..."),
/// protocol rejection (the server's error.code/message), and malformed
/// server output. Typed helpers cover the common lifecycle; anything
/// else goes through call() with a params object.
///
/// Not thread-safe: the protocol is strictly request/response per
/// connection, so share nothing or open one client per thread (the
/// server handles each connection independently).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_WIRE_SERVICECLIENT_H
#define RECAP_WIRE_SERVICECLIENT_H

#include "support/Result.h"
#include "wire/Framing.h"
#include "wire/Json.h"

#include <memory>

namespace recap {
namespace wire {

class ServiceClient {
public:
  ServiceClient() = default;
  ~ServiceClient() { close(); }

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects over a Unix socket / localhost TCP. False with \p Err on
  /// failure; the client is reusable after a failed connect.
  bool connectUnixSocket(const std::string &Path, std::string &Err);
  bool connectTcpSocket(const std::string &Host, uint16_t Port,
                        std::string &Err);
  /// Adopts an already-connected fd pair (stdio transport, tests over
  /// pipes). \p InFd receives responses, \p OutFd carries requests.
  void adoptFds(int InFd, int OutFd);

  bool connected() const { return InFd >= 0; }
  void close();

  /// Sends {"v":1,"id":<auto>,"op":Op,...Params} and reads one response.
  /// Success (ok:true) returns the whole response frame; ok:false
  /// returns "code: message"; transport trouble returns "wire: ...".
  Result<Json> call(const std::string &Op, Json Params = Json::object());

  // Lifecycle helpers (docs/PROTOCOL.md §4).
  /// Returns the new job id.
  Result<uint64_t> submit(const Json &Spec);
  Result<Json> poll(uint64_t Job);
  /// One streamed unit: the response frame carries `unit`, `exhausted`
  /// or `timeout` (see PROTOCOL.md §4.3).
  Result<Json> nextResult(uint64_t Job, uint64_t TimeoutMs = 0);
  Result<Json> cancel(uint64_t Job);
  Result<Json> drain();
  Result<Json> shutdown(uint32_t GraceMs = 0);
  Result<Json> statsz();
  Result<Json> healthz();

private:
  int InFd = -1;
  int OutFd = -1;
  bool OwnsFds = false;
  int64_t NextId = 1;
  std::unique_ptr<FrameReader> Reader;
};

} // namespace wire
} // namespace recap

#endif // RECAP_WIRE_SERVICECLIENT_H
