//===- wire/ServiceClient.cpp - Wire protocol client -----------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wire/ServiceClient.h"

#include "wire/Protocol.h"

using namespace recap;
using namespace recap::wire;

bool ServiceClient::connectUnixSocket(const std::string &Path,
                                      std::string &Err) {
  close();
  int Fd = connectUnix(Path, Err);
  if (Fd < 0)
    return false;
  InFd = OutFd = Fd;
  OwnsFds = true;
  Reader = std::make_unique<FrameReader>(InFd);
  return true;
}

bool ServiceClient::connectTcpSocket(const std::string &Host, uint16_t Port,
                                     std::string &Err) {
  close();
  int Fd = connectTcp(Host, Port, Err);
  if (Fd < 0)
    return false;
  InFd = OutFd = Fd;
  OwnsFds = true;
  Reader = std::make_unique<FrameReader>(InFd);
  return true;
}

void ServiceClient::adoptFds(int In, int Out) {
  close();
  InFd = In;
  OutFd = Out;
  OwnsFds = false;
  Reader = std::make_unique<FrameReader>(InFd);
}

void ServiceClient::close() {
  if (OwnsFds && InFd >= 0)
    closeFd(InFd); // InFd == OutFd when we own them (one socket)
  InFd = OutFd = -1;
  OwnsFds = false;
  Reader.reset();
}

Result<Json> ServiceClient::call(const std::string &Op, Json Params) {
  if (InFd < 0)
    return Result<Json>::error("wire: not connected");
  Json Req = std::move(Params);
  if (!Req.isObj())
    Req = Json::object();
  Req.set("v", ProtocolVersion);
  Req.set("id", NextId);
  Req.set("op", Op);
  int64_t Id = NextId++;
  if (!writeFrame(OutFd, Req.dump()))
    return Result<Json>::error("wire: send failed");

  std::string Line;
  for (;;) {
    switch (Reader->next(Line)) {
    case ReadResult::Frame: {
      std::string PErr;
      Json Resp = Json::parse(Line, PErr);
      if (!PErr.empty())
        return Result<Json>::error("wire: bad response frame: " + PErr);
      // A strict request/response client only ever sees its own id; a
      // mismatched one (e.g. an id-0 transport error report) surfaces
      // that frame's error instead of silently desynchronizing.
      if (!Resp.get("ok").asBool()) {
        const Json &E = Resp.get("error");
        return Result<Json>::error(E.get("code").asStr() + ": " +
                                   E.get("message").asStr());
      }
      if (Resp.get("id").asInt() != Id)
        return Result<Json>::error("wire: response id mismatch");
      return Resp;
    }
    case ReadResult::TooLarge:
      return Result<Json>::error("wire: oversized response frame");
    case ReadResult::Eof:
    case ReadResult::Error:
    case ReadResult::Fault:
      return Result<Json>::error("wire: connection lost");
    }
  }
}

Result<uint64_t> ServiceClient::submit(const Json &Spec) {
  Json P = Json::object();
  P.set("spec", Spec);
  Result<Json> R = call("submit", std::move(P));
  if (!R)
    return Result<uint64_t>::error(R.error());
  return R->get("job").asUInt();
}

Result<Json> ServiceClient::poll(uint64_t Job) {
  Json P = Json::object();
  P.set("job", Job);
  return call("poll", std::move(P));
}

Result<Json> ServiceClient::nextResult(uint64_t Job, uint64_t TimeoutMs) {
  Json P = Json::object();
  P.set("job", Job);
  P.set("timeout_ms", TimeoutMs);
  return call("nextResult", std::move(P));
}

Result<Json> ServiceClient::cancel(uint64_t Job) {
  Json P = Json::object();
  P.set("job", Job);
  return call("cancel", std::move(P));
}

Result<Json> ServiceClient::drain() { return call("drain"); }

Result<Json> ServiceClient::shutdown(uint32_t GraceMs) {
  Json P = Json::object();
  P.set("grace_ms", GraceMs);
  return call("shutdown", std::move(P));
}

Result<Json> ServiceClient::statsz() { return call("statsz"); }

Result<Json> ServiceClient::healthz() { return call("healthz"); }
