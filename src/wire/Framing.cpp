//===- wire/Framing.cpp - Line-delimited frames over fds -------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wire/Framing.h"

#include "reliability/FaultInjector.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace recap;
using namespace recap::wire;

namespace {

std::string errnoString(const std::string &What) {
  return What + ": " + std::strerror(errno);
}

/// send() for sockets, write() for pipes/files — decided per call so the
/// same framing serves socket and stdio transports. MSG_NOSIGNAL keeps a
/// dead peer from killing the process with SIGPIPE.
ssize_t writeSome(int Fd, const char *P, size_t N) {
  ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
  if (W < 0 && errno == ENOTSOCK)
    W = ::write(Fd, P, N);
  return W;
}

} // namespace

ReadResult FrameReader::next(std::string &Out,
                             const std::atomic<bool> *Cancel) {
  if (FaultInjector *FI = FaultInjector::active()) {
    static std::atomic<bool> NoCancel{false};
    try {
      if (FI->fire(FaultSite::WireRead, Cancel ? Cancel : &NoCancel))
        return ReadResult::Fault;
    } catch (const FaultInjected &) {
      return ReadResult::Fault;
    }
  }

  char Chunk[16384];
  for (;;) {
    // Scan what we already buffered.
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      if (Discarding) {
        // Tail of an oversized frame: drop through the newline and
        // report; the stream is re-synchronized.
        Buf.erase(0, NL + 1);
        Discarding = false;
        return ReadResult::TooLarge;
      }
      if (NL > MaxFrame) {
        // The whole oversized frame arrived before we hit the pre-read
        // cap check: drop it through its newline.
        Buf.erase(0, NL + 1);
        return ReadResult::TooLarge;
      }
      Out.assign(Buf, 0, NL);
      // Tolerate CRLF peers.
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      Buf.erase(0, NL + 1);
      return ReadResult::Frame;
    }
    if (!Discarding && Buf.size() > MaxFrame) {
      // Frame exceeded the cap before its newline arrived: switch to
      // discard mode so a hostile mega-frame cannot balloon memory.
      Buf.clear();
      Discarding = true;
    }

    ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
    if (R == 0)
      return Buf.empty() && !Discarding ? ReadResult::Eof
                                        : ReadResult::Error;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return ReadResult::Error;
    }
    if (Discarding) {
      // Keep only the part after a newline, if one arrived.
      const char *NLp =
          static_cast<const char *>(std::memchr(Chunk, '\n', R));
      if (NLp) {
        Buf.assign(NLp + 1, Chunk + R - (NLp + 1));
        Discarding = false;
        return ReadResult::TooLarge;
      }
      continue;
    }
    Buf.append(Chunk, static_cast<size_t>(R));
  }
}

bool wire::writeFrame(int Fd, const std::string &Frame,
                      const std::atomic<bool> *Cancel) {
  if (FaultInjector *FI = FaultInjector::active()) {
    static std::atomic<bool> NoCancel{false};
    try {
      if (FI->fire(FaultSite::WireWrite, Cancel ? Cancel : &NoCancel))
        return false;
    } catch (const FaultInjected &) {
      return false;
    }
  }

  std::string Line = Frame;
  Line.push_back('\n');
  const char *P = Line.data();
  size_t N = Line.size();
  while (N > 0) {
    ssize_t W = writeSome(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

int wire::listenUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "unix socket path too long: " + Path;
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return -1;
  }
  ::unlink(Path.c_str()); // stale socket from a previous run
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = errnoString("bind");
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 64) < 0) {
    Err = errnoString("listen");
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int wire::listenTcp(uint16_t Port, uint16_t &BoundPort, std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = errnoString("bind");
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 64) < 0) {
    Err = errnoString("listen");
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  else
    BoundPort = Port;
  return Fd;
}

int wire::acceptFd(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return Fd;
    if (errno == EINTR)
      continue;
    return -1;
  }
}

int wire::connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "unix socket path too long: " + Path;
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return -1;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = errnoString("connect " + Path);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int wire::connectTcp(const std::string &Host, uint16_t Port,
                     std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return -1;
  }
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad address: " + Host;
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = errnoString("connect");
    ::close(Fd);
    return -1;
  }
  return Fd;
}

void wire::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

void wire::shutdownFd(int Fd) {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}
