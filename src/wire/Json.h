//===- wire/Json.h - Hand-rolled JSON value, parser, writer -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one serialization currency of the wire layer (DESIGN.md §12): a
/// small JSON value type with a strict parser and a compact writer, no
/// dependencies beyond the standard library. Every wire frame, journal
/// payload, job-log line and /statsz dump is one of these values.
///
/// Deliberate properties:
///  - Objects preserve insertion order (stable, diffable output; lookup
///    is linear — wire objects are small by construction).
///  - Numbers are int64 when the literal is integral and fits, double
///    otherwise; counters serialize losslessly up to 2^63.
///  - The parser is total: any input either yields a value consuming the
///    whole text or a position-carrying error string — it never throws,
///    and nesting depth is capped so hostile frames cannot blow the
///    stack.
///  - Unknown-field tolerance is the *reader's* job: accessors return
///    null/defaults for absent keys, so a v1 peer skips fields it does
///    not know (docs/PROTOCOL.md compat policy).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_WIRE_JSON_H
#define RECAP_WIRE_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace recap {
namespace wire {

class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, Str, Arr, Obj };

  Json() : K(Kind::Null) {}
  /*implicit*/ Json(bool B) : K(Kind::Bool), B(B) {}
  /*implicit*/ Json(int64_t V) : K(Kind::Int), I(V) {}
  /*implicit*/ Json(uint64_t V) : K(Kind::Int), I(static_cast<int64_t>(V)) {}
  /*implicit*/ Json(int V) : K(Kind::Int), I(V) {}
  /*implicit*/ Json(unsigned V) : K(Kind::Int), I(V) {}
  /*implicit*/ Json(double V) : K(Kind::Double), D(V) {}
  /*implicit*/ Json(std::string S) : K(Kind::Str), S(std::move(S)) {}
  /*implicit*/ Json(const char *S) : K(Kind::Str), S(S) {}

  static Json array() {
    Json J;
    J.K = Kind::Arr;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Obj;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isStr() const { return K == Kind::Str; }
  bool isArr() const { return K == Kind::Arr; }
  bool isObj() const { return K == Kind::Obj; }

  /// Scalar accessors with defaults — never assert, never throw (the
  /// unknown-field-tolerant read style of the protocol).
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    if (K == Kind::Int)
      return I;
    if (K == Kind::Double)
      return static_cast<int64_t>(D);
    return Default;
  }
  uint64_t asUInt(uint64_t Default = 0) const {
    int64_t V = asInt(static_cast<int64_t>(Default));
    return V < 0 ? Default : static_cast<uint64_t>(V);
  }
  double asDouble(double Default = 0) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asStr() const {
    static const std::string Empty;
    return K == Kind::Str ? S : Empty;
  }

  // Array interface.
  size_t size() const {
    return K == Kind::Arr ? A.size() : (K == Kind::Obj ? O.size() : 0);
  }
  const Json &at(size_t Idx) const {
    static const Json Null;
    return K == Kind::Arr && Idx < A.size() ? A[Idx] : Null;
  }
  Json &push(Json V) {
    A.push_back(std::move(V));
    return A.back();
  }
  const std::vector<Json> &items() const { return A; }

  // Object interface. get() returns null for absent keys (tolerant
  // reads); set() replaces an existing key in place (stable order).
  const Json *find(const std::string &Key) const {
    if (K != Kind::Obj)
      return nullptr;
    for (const auto &[N, V] : O)
      if (N == Key)
        return &V;
    return nullptr;
  }
  const Json &get(const std::string &Key) const {
    static const Json Null;
    const Json *V = find(Key);
    return V ? *V : Null;
  }
  Json &set(const std::string &Key, Json V) {
    for (auto &[N, Val] : O)
      if (N == Key) {
        Val = std::move(V);
        return Val;
      }
    O.emplace_back(Key, std::move(V));
    return O.back().second;
  }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return O;
  }

  /// Compact single-line serialization (the frame format — LF-free by
  /// construction, so one value is always one frame).
  std::string dump() const;

  /// Strict whole-text parse; on failure returns a Null value and sets
  /// \p Err to "offset N: why". \p MaxDepth caps array/object nesting.
  static Json parse(const std::string &Text, std::string &Err,
                    size_t MaxDepth = 64);

private:
  Kind K;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> A;
  std::vector<std::pair<std::string, Json>> O;
};

} // namespace wire
} // namespace recap

#endif // RECAP_WIRE_JSON_H
