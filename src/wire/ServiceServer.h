//===- wire/ServiceServer.h - Wire front end of the service -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire front end of AnalysisService (DESIGN.md §12): a resident
/// server speaking the line-delimited JSON protocol of docs/PROTOCOL.md
/// over a Unix socket, localhost TCP, or a stdio/pipe pair, so a second
/// process can drive the full job lifecycle — submit, stream unit
/// results, poll, cancel, drain, shutdown — plus the observability
/// surface (statsz, healthz).
///
/// Architecture (DESIGN.md §12.2): one accept thread per listener, one
/// thread per connection, and handle() as the single transport-agnostic
/// router — stdio serving and in-process tests call the same router the
/// socket path does, so protocol behavior cannot fork by transport.
/// Failure containment mirrors the framing layer: a malformed or
/// oversized frame costs an error response, never the connection; a
/// faulted read/write (chaos sites WireRead/WireWrite) costs one
/// connection, never the server.
///
/// Durability (DESIGN.md §12.4): with a StateDir, every admitted submit
/// is journaled (JobJournal) *before* admission and marked done only
/// after its final result was published — so kill -9 anywhere between
/// admission and completion leaves a pending record, and the next boot
/// re-submits it (at-least-once; a replayed job re-runs from scratch and
/// never double-reports). Shutdown-cancelled jobs deliberately stay
/// pending: they were promised, not delivered. Finalized jobs also emit
/// one structured JSONL line each to StateDir/jobs.log.jsonl.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_WIRE_SERVICESERVER_H
#define RECAP_WIRE_SERVICESERVER_H

#include "service/JobJournal.h"
#include "wire/Framing.h"
#include "wire/Protocol.h"

#include <cstdio>
#include <thread>
#include <vector>

namespace recap {
namespace wire {

struct WireServerOptions {
  /// Unix socket path to listen on (empty = no Unix listener).
  std::string UnixPath;
  /// Also/instead listen on 127.0.0.1:TcpPort (0 = ephemeral; the bound
  /// port is readable via tcpPort()).
  bool Tcp = false;
  uint16_t TcpPort = 0;
  /// Per-frame byte cap (see Framing.h).
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Directory for the admission journal (JournalFile) and the per-job
  /// JSONL log (JobLogFile). Empty = neither.
  std::string StateDir;
  /// Re-submit the journal's pending jobs at start(). Off only in tests
  /// that inspect the backlog without running it.
  bool Replay = true;
  /// Completed jobs are kept pollable until the registry exceeds this
  /// cap, then evicted oldest-finished-first. New submits are rejected
  /// ("registry-full") only when the cap is hit with nothing evictable.
  size_t MaxTrackedJobs = 1024;
};

/// Wire-layer counters, reported as the `wire` section of /statsz
/// (docs/OPERATIONS.md §3).
struct WireServerStats {
  StatCounter Connections;
  StatCounter ConnectionsDropped; ///< closed on read/write error
  StatCounter FramesRead;
  StatCounter FramesWritten;
  StatCounter FramesMalformed; ///< unparseable JSON (error frame sent)
  StatCounter FramesOversized; ///< over MaxFrameBytes (discarded)
  StatCounter ReadFaults;      ///< injected WireRead faults
  StatCounter WriteFaults;     ///< write failures incl. WireWrite faults
  StatCounter Requests;        ///< well-formed requests routed
  StatCounter UnknownOps;
  StatCounter JobsReplayed;    ///< journal backlog re-submitted at boot
  StatCounter ReplaysRejected; ///< pending records dropped (bad/rejected)
};

/// The server. start() spawns the listeners; stop() (also the dtor)
/// closes them, drains connection threads and closes the journal. The
/// underlying AnalysisService is NOT owned: its own shutdown() semantics
/// (including over the wire via the shutdown verb) are unchanged.
class ServiceServer {
public:
  ServiceServer(AnalysisService &Svc, WireServerOptions Opts);
  ~ServiceServer();

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Opens journal + log, replays the pending backlog, binds listeners,
  /// spawns the accept and reaper threads. False with \p Err on any bind
  /// failure (journal trouble is contained, not fatal: the server runs
  /// without crash recovery and says so in statsz).
  bool start(std::string &Err);

  /// Idempotent teardown: stops accepting, unblocks and joins every
  /// connection, joins the reaper, closes journal/log. Tracked jobs keep
  /// running in the service; un-finalized ones simply stay journal-pending.
  void stop();

  /// Bound TCP port (after start() with Tcp).
  uint16_t tcpPort() const { return BoundTcpPort; }

  /// Serves one connection on \p InFd/\p OutFd (the stdio transport —
  /// recli serve --stdio, or a pipe pair in tests). Blocks until EOF or
  /// error. Requires start() for journal/replay; pass Listen=false
  /// options to serve stdio only.
  void serveStdio(int InFd, int OutFd);

  /// The router: one request frame in, one response frame out. Public so
  /// tests and the stdio path exercise the identical routing.
  Json handle(const Json &Req);

  /// Full observability dump: serviceStatszJson() plus the wire section.
  Json statsz() const;

  const WireServerStats &stats() const { return Stats; }

  static constexpr const char *JournalFile = "jobs.journal";
  static constexpr const char *JobLogFile = "jobs.log.jsonl";

private:
  struct TrackedJob {
    JobHandle Handle;
    JobKind Kind = JobKind::Dse;
    std::string Tenant;
    uint64_t JournalSeq = 0; ///< 0 = not journaled
    bool Closed = false;     ///< finalized: logged + journal-done
    uint64_t CloseOrder = 0; ///< eviction order among closed entries
  };

  void acceptLoop(int ListenFd);
  void runConnection(int Fd);
  void serveOn(int InFd, int OutFd);
  void reaperLoop();
  void closeTracked(TrackedJob &T);
  void replayBacklog();
  void logLine(const Json &Event);

  Json handleSubmit(int64_t Id, const Json &Req);
  Json handlePoll(int64_t Id, const Json &Req);
  Json handleNextResult(int64_t Id, const Json &Req);
  Json handleCancel(int64_t Id, const Json &Req);
  Json handleDrain(int64_t Id);
  Json handleShutdown(int64_t Id, const Json &Req);
  Json handleStatsz(int64_t Id) const;
  Json handleHealthz(int64_t Id) const;

  /// Looks up a tracked job; false + error frame when absent.
  bool findJob(int64_t Id, const Json &Req, TrackedJob &Out, Json &Err);

  AnalysisService &Svc;
  WireServerOptions Opts;
  mutable WireServerStats Stats;

  std::atomic<bool> StopFlag{false};
  int UnixFd = -1;
  int TcpFd = -1;
  uint16_t BoundTcpPort = 0;

  mutable std::mutex JMu; ///< journal (append/markDone are serialized)
  std::unique_ptr<JobJournal> Journal;
  std::mutex LogMu;
  std::FILE *Log = nullptr;

  mutable std::mutex RMu; ///< tracked-job registry
  std::map<uint64_t, TrackedJob> Jobs;
  uint64_t NextCloseOrder = 1;

  std::mutex CMu; ///< connection bookkeeping
  std::vector<std::thread> Acceptors;
  std::vector<std::pair<int, std::thread>> Connections;
  std::thread Reaper;
};

} // namespace wire
} // namespace recap

#endif // RECAP_WIRE_SERVICESERVER_H
