//===- wire/ServiceServer.cpp - Wire front end of the service --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wire/ServiceServer.h"

#include <chrono>

using namespace recap;
using namespace recap::wire;

namespace {

int64_t unixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const char *jobKindName(JobKind K) {
  return K == JobKind::Survey ? "survey" : "dse";
}

/// Jobs the service cancelled because *it* was stopping were promised but
/// not delivered — they stay journal-pending so the next boot re-runs
/// them (DESIGN.md §12.4). Caller cancels and deadlines are client-visible
/// outcomes and settle the journal entry.
bool isShutdownCancel(const JobResult &R) {
  for (const std::string &Reason : R.Reasons)
    if (Reason == "cancelled: service shutdown")
      return true;
  return false;
}

} // namespace

ServiceServer::ServiceServer(AnalysisService &Svc, WireServerOptions Opts)
    : Svc(Svc), Opts(std::move(Opts)) {}

ServiceServer::~ServiceServer() { stop(); }

bool ServiceServer::start(std::string &Err) {
  StopFlag.store(false);

  if (!Opts.StateDir.empty()) {
    Journal =
        std::make_unique<JobJournal>(Opts.StateDir + "/" + JournalFile);
    if (!Journal->open())
      Journal.reset(); // contained: no crash recovery, surfaced in statsz
    Log = std::fopen((Opts.StateDir + "/" + JobLogFile).c_str(), "ab");
  }
  if (Journal && Opts.Replay)
    replayBacklog();

  if (!Opts.UnixPath.empty()) {
    UnixFd = listenUnix(Opts.UnixPath, Err);
    if (UnixFd < 0)
      return false;
  }
  if (Opts.Tcp) {
    TcpFd = listenTcp(Opts.TcpPort, BoundTcpPort, Err);
    if (TcpFd < 0) {
      closeFd(UnixFd);
      UnixFd = -1;
      return false;
    }
  }

  if (int Fd = UnixFd; Fd >= 0)
    Acceptors.emplace_back([this, Fd] { acceptLoop(Fd); });
  if (int Fd = TcpFd; Fd >= 0)
    Acceptors.emplace_back([this, Fd] { acceptLoop(Fd); });
  Reaper = std::thread([this] { reaperLoop(); });
  return true;
}

void ServiceServer::stop() {
  if (StopFlag.exchange(true))
    return;

  // Closing the listeners pops the acceptors out of accept(2).
  shutdownFd(UnixFd);
  closeFd(UnixFd);
  UnixFd = -1;
  shutdownFd(TcpFd);
  closeFd(TcpFd);
  TcpFd = -1;
  for (std::thread &T : Acceptors)
    if (T.joinable())
      T.join();
  Acceptors.clear();

  // Shut down every live connection fd: blocked FrameReader::next calls
  // return, blocked nextResult waits notice StopFlag at their next slice.
  {
    std::lock_guard<std::mutex> Lock(CMu);
    for (auto &[Fd, T] : Connections)
      shutdownFd(Fd);
  }
  for (;;) {
    std::pair<int, std::thread> C{-1, std::thread()};
    {
      std::lock_guard<std::mutex> Lock(CMu);
      if (Connections.empty())
        break;
      C = std::move(Connections.back());
      Connections.pop_back();
    }
    if (C.second.joinable())
      C.second.join();
    closeFd(C.first);
  }

  if (Reaper.joinable())
    Reaper.join();

  // One final settle pass so jobs that finished during teardown get
  // their journal-done and log line.
  {
    std::lock_guard<std::mutex> Lock(RMu);
    for (auto &[Id, T] : Jobs)
      if (!T.Closed && T.Handle.done())
        closeTracked(T);
  }

  {
    std::lock_guard<std::mutex> Lock(JMu);
    if (Journal)
      Journal->close();
  }
  std::lock_guard<std::mutex> Lock(LogMu);
  if (Log) {
    std::fclose(Log);
    Log = nullptr;
  }
}

void ServiceServer::replayBacklog() {
  for (const JobJournal::PendingJob &P : Journal->pending()) {
    std::string PErr;
    Json Spec = Json::parse(P.Payload, PErr);
    Result<JobSpec> S =
        PErr.empty() ? jobSpecFromJson(Spec)
                     : Result<JobSpec>::error("journal payload: " + PErr);
    if (!S) {
      // A record this boot cannot run will not run next boot either:
      // settle it instead of poison-looping the journal forever.
      Journal->markDone(P.Seq);
      ++Stats.ReplaysRejected;
      continue;
    }
    Result<JobHandle> H = Svc.submit(S.take());
    if (!H) {
      Journal->markDone(P.Seq);
      ++Stats.ReplaysRejected;
      Json Ev = Json::object();
      Ev.set("event", "replay-rejected");
      Ev.set("unix_ms", unixMillis());
      Ev.set("reason", H.error());
      logLine(Ev);
      continue;
    }
    ++Stats.JobsReplayed;
    TrackedJob T;
    T.Handle = *H;
    T.Kind = Spec.get("kind").asStr() == "survey" ? JobKind::Survey
                                                  : JobKind::Dse;
    T.Tenant = Spec.get("tenant").asStr();
    T.JournalSeq = P.Seq;
    uint64_t Id = H->id();
    Json Ev = Json::object();
    Ev.set("event", "replayed");
    Ev.set("unix_ms", unixMillis());
    Ev.set("job", Id);
    Ev.set("tenant", T.Tenant);
    logLine(Ev);
    std::lock_guard<std::mutex> Lock(RMu);
    Jobs.emplace(Id, std::move(T));
  }
}

void ServiceServer::logLine(const Json &Event) {
  std::lock_guard<std::mutex> Lock(LogMu);
  if (!Log)
    return;
  std::string Line = Event.dump();
  std::fwrite(Line.data(), 1, Line.size(), Log);
  std::fputc('\n', Log);
  std::fflush(Log);
}

void ServiceServer::closeTracked(TrackedJob &T) {
  JobResult R = T.Handle.result();
  bool SettleJournal = T.JournalSeq != 0 && !isShutdownCancel(R);
  if (SettleJournal) {
    std::lock_guard<std::mutex> Lock(JMu);
    if (Journal)
      Journal->markDone(T.JournalSeq);
  }
  Json Ev = Json::object();
  Ev.set("event", "finished");
  Ev.set("unix_ms", unixMillis());
  Ev.set("job", T.Handle.id());
  Ev.set("tenant", T.Tenant);
  Ev.set("kind", jobKindName(T.Kind));
  Ev.set("status", jobStatusName(R.Status));
  Ev.set("seconds", R.Seconds);
  Ev.set("first_result_seconds", R.FirstResultSeconds);
  Json Reasons = Json::array();
  for (const std::string &S : R.Reasons)
    Reasons.push(S);
  Ev.set("reasons", std::move(Reasons));
  logLine(Ev);
  T.Closed = true;
  T.CloseOrder = NextCloseOrder++; // RMu is held by every caller
}

void ServiceServer::reaperLoop() {
  while (!StopFlag.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> Lock(RMu);
      for (auto &[Id, T] : Jobs)
        if (!T.Closed && T.Handle.done())
          closeTracked(T);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

void ServiceServer::acceptLoop(int ListenFd) {
  for (;;) {
    int Fd = acceptFd(ListenFd);
    if (Fd < 0)
      return; // listener closed by stop()
    if (StopFlag.load()) {
      closeFd(Fd);
      return;
    }
    ++Stats.Connections;
    std::lock_guard<std::mutex> Lock(CMu);
    Connections.emplace_back(
        Fd, std::thread([this, Fd] { runConnection(Fd); }));
  }
}

void ServiceServer::runConnection(int Fd) {
  serveOn(Fd, Fd);
  // Close eagerly so the peer sees EOF the moment this connection is
  // dropped (fault, error, or clean EOF) rather than at stop(). Marking
  // the registry entry -1 and closing under CMu keeps stop()'s shutdown
  // sweep from touching a recycled fd number.
  std::lock_guard<std::mutex> Lock(CMu);
  for (auto &[CFd, T] : Connections)
    if (CFd == Fd) {
      CFd = -1;
      break;
    }
  shutdownFd(Fd);
  closeFd(Fd);
}

void ServiceServer::serveStdio(int InFd, int OutFd) {
  ++Stats.Connections;
  serveOn(InFd, OutFd);
}

void ServiceServer::serveOn(int InFd, int OutFd) {
  FrameReader Reader(InFd, Opts.MaxFrameBytes);
  std::string Line;
  while (!StopFlag.load(std::memory_order_relaxed)) {
    ReadResult RR = Reader.next(Line, &StopFlag);
    Json Resp;
    switch (RR) {
    case ReadResult::Frame: {
      ++Stats.FramesRead;
      std::string PErr;
      Json Req = Json::parse(Line, PErr);
      if (!PErr.empty()) {
        ++Stats.FramesMalformed;
        Resp = errorFrame(0, "malformed", PErr);
      } else {
        Resp = handle(Req);
      }
      break;
    }
    case ReadResult::TooLarge:
      ++Stats.FramesOversized;
      Resp = errorFrame(0, "oversized",
                        "frame exceeded max_frame_bytes and was discarded");
      break;
    case ReadResult::Eof:
      return;
    case ReadResult::Error:
      ++Stats.ConnectionsDropped;
      return;
    case ReadResult::Fault:
      // Injected transport fault: this connection is sacrificed, the
      // server (and every other connection) lives.
      ++Stats.ReadFaults;
      ++Stats.ConnectionsDropped;
      return;
    }
    if (!writeFrame(OutFd, Resp.dump(), &StopFlag)) {
      ++Stats.WriteFaults;
      ++Stats.ConnectionsDropped;
      return;
    }
    ++Stats.FramesWritten;
  }
}

Json ServiceServer::handle(const Json &Req) {
  if (!Req.isObj()) {
    ++Stats.FramesMalformed;
    return errorFrame(0, "malformed", "request frame must be a JSON object");
  }
  int64_t Id = Req.get("id").asInt(0);
  const Json *V = Req.find("v");
  if (V && !V->isNull() && V->asInt() != ProtocolVersion)
    return errorFrame(Id, "version",
                      "unsupported protocol version (this server speaks 1)");
  ++Stats.Requests;
  const std::string &Op = Req.get("op").asStr();
  if (Op == "submit")
    return handleSubmit(Id, Req);
  if (Op == "poll")
    return handlePoll(Id, Req);
  if (Op == "nextResult")
    return handleNextResult(Id, Req);
  if (Op == "cancel")
    return handleCancel(Id, Req);
  if (Op == "drain")
    return handleDrain(Id);
  if (Op == "shutdown")
    return handleShutdown(Id, Req);
  if (Op == "statsz")
    return handleStatsz(Id);
  if (Op == "healthz")
    return handleHealthz(Id);
  ++Stats.UnknownOps;
  return errorFrame(Id, "unknown-op", "unknown op: " + Op);
}

Json ServiceServer::handleSubmit(int64_t Id, const Json &Req) {
  const Json &SpecJson = Req.get("spec");
  Result<JobSpec> Spec = jobSpecFromJson(SpecJson);
  if (!Spec)
    return errorFrame(Id, "bad-spec", Spec.error());

  // Make room: evict the oldest finished entries; never live ones.
  {
    std::lock_guard<std::mutex> Lock(RMu);
    while (Jobs.size() >= Opts.MaxTrackedJobs) {
      auto Victim = Jobs.end();
      for (auto It = Jobs.begin(); It != Jobs.end(); ++It)
        if (It->second.Closed &&
            (Victim == Jobs.end() ||
             It->second.CloseOrder < Victim->second.CloseOrder))
          Victim = It;
      if (Victim == Jobs.end())
        return errorFrame(Id, "registry-full",
                          "too many unfinished tracked jobs");
      Jobs.erase(Victim);
    }
  }

  // Journal BEFORE admission: a crash in the gap replays a job the
  // client never got acked (at-least-once), which beats acking a job a
  // crash then forgets. Rejections settle their record immediately.
  uint64_t Seq = 0;
  {
    std::lock_guard<std::mutex> Lock(JMu);
    if (Journal)
      Seq = Journal->append(SpecJson.dump());
  }

  JobKind Kind = Spec->Kind;
  std::string Tenant = Spec->Tenant;
  Result<JobHandle> H = Svc.submit(Spec.take());
  if (!H) {
    if (Seq) {
      std::lock_guard<std::mutex> Lock(JMu);
      if (Journal)
        Journal->markDone(Seq);
    }
    return errorFrame(Id, "rejected", H.error());
  }

  uint64_t JobId = H->id();
  {
    TrackedJob T;
    T.Handle = *H;
    T.Kind = Kind;
    T.Tenant = Tenant;
    T.JournalSeq = Seq;
    std::lock_guard<std::mutex> Lock(RMu);
    Jobs.emplace(JobId, std::move(T));
  }
  Json Ev = Json::object();
  Ev.set("event", "admitted");
  Ev.set("unix_ms", unixMillis());
  Ev.set("job", JobId);
  Ev.set("tenant", Tenant);
  Ev.set("kind", jobKindName(Kind));
  logLine(Ev);

  Json Resp = okFrame(Id);
  Resp.set("job", JobId);
  Resp.set("status", jobStatusName(H->status()));
  return Resp;
}

bool ServiceServer::findJob(int64_t Id, const Json &Req, TrackedJob &Out,
                            Json &Err) {
  uint64_t JobId = Req.get("job").asUInt(0);
  std::lock_guard<std::mutex> Lock(RMu);
  auto It = Jobs.find(JobId);
  if (It == Jobs.end()) {
    Err = errorFrame(Id, "unknown-job",
                     "no tracked job " + std::to_string(JobId));
    return false;
  }
  Out = It->second; // JobHandle copies share the job state
  return true;
}

Json ServiceServer::handlePoll(int64_t Id, const Json &Req) {
  TrackedJob T;
  Json Err;
  if (!findJob(Id, Req, T, Err))
    return Err;
  Json Resp = okFrame(Id);
  Resp.set("job", T.Handle.id());
  Resp.set("status", jobStatusName(T.Handle.status()));
  bool Done = T.Handle.done();
  Resp.set("done", Done);
  if (Done)
    Resp.set("result", toJson(T.Handle.result(), T.Kind));
  return Resp;
}

Json ServiceServer::handleNextResult(int64_t Id, const Json &Req) {
  TrackedJob T;
  Json Err;
  if (!findJob(Id, Req, T, Err))
    return Err;
  uint64_t TimeoutMs = Req.get("timeout_ms").asUInt(0); // 0 = forever
  // Chunked wait so stop() never blocks behind a parked client.
  constexpr uint32_t SliceMs = 100;
  uint64_t Waited = 0;
  for (;;) {
    uint32_t Slice = SliceMs;
    if (TimeoutMs != 0 && TimeoutMs - Waited < Slice)
      Slice = static_cast<uint32_t>(TimeoutMs - Waited);
    JobUnitResult U;
    if (T.Handle.nextResult(U, Slice ? Slice : 1)) {
      Json Resp = okFrame(Id);
      Resp.set("job", T.Handle.id());
      Resp.set("unit", toJson(U, T.Kind));
      return Resp;
    }
    if (T.Handle.done()) {
      // False + done = the stream is fully consumed.
      Json Resp = okFrame(Id);
      Resp.set("job", T.Handle.id());
      Resp.set("exhausted", true);
      return Resp;
    }
    Waited += Slice ? Slice : 1;
    if ((TimeoutMs != 0 && Waited >= TimeoutMs) || StopFlag.load()) {
      Json Resp = okFrame(Id);
      Resp.set("job", T.Handle.id());
      Resp.set("timeout", true);
      return Resp;
    }
  }
}

Json ServiceServer::handleCancel(int64_t Id, const Json &Req) {
  TrackedJob T;
  Json Err;
  if (!findJob(Id, Req, T, Err))
    return Err;
  T.Handle.cancel();
  Json Resp = okFrame(Id);
  Resp.set("job", T.Handle.id());
  return Resp;
}

Json ServiceServer::handleDrain(int64_t Id) {
  Svc.drain(); // blocks this connection thread until quiesced — by design
  Json Resp = okFrame(Id);
  Resp.set("health", serviceHealthName(Svc.health()));
  return Resp;
}

Json ServiceServer::handleShutdown(int64_t Id, const Json &Req) {
  uint32_t GraceMs =
      static_cast<uint32_t>(Req.get("grace_ms").asUInt(0));
  ShutdownReport R = Svc.shutdown(GraceMs);
  Json Resp = okFrame(Id);
  Resp.set("report", toJson(R));
  return Resp;
}

Json ServiceServer::statsz() const {
  Json J = serviceStatszJson(Svc);
  Json W = Json::object();
  auto Put = [&W](const char *Name, const StatCounter &C) {
    W.set(Name, C.load());
  };
  Put("connections", Stats.Connections);
  Put("connections_dropped", Stats.ConnectionsDropped);
  Put("frames_read", Stats.FramesRead);
  Put("frames_written", Stats.FramesWritten);
  Put("frames_malformed", Stats.FramesMalformed);
  Put("frames_oversized", Stats.FramesOversized);
  Put("read_faults", Stats.ReadFaults);
  Put("write_faults", Stats.WriteFaults);
  Put("requests", Stats.Requests);
  Put("unknown_ops", Stats.UnknownOps);
  Put("jobs_replayed", Stats.JobsReplayed);
  Put("replays_rejected", Stats.ReplaysRejected);
  {
    std::lock_guard<std::mutex> Lock(RMu);
    W.set("tracked_jobs", Jobs.size());
  }
  Json JJ = Json::object();
  {
    std::lock_guard<std::mutex> Lock(JMu);
    JJ.set("enabled", Journal != nullptr);
    if (Journal) {
      JJ.set("path", Journal->path());
      JJ.set("append_failures", Journal->appendFailures());
    }
  }
  W.set("journal", std::move(JJ));
  J.set("wire", std::move(W));
  return J;
}

Json ServiceServer::handleStatsz(int64_t Id) const {
  Json Resp = okFrame(Id);
  Resp.set("stats", statsz());
  return Resp;
}

Json ServiceServer::handleHealthz(int64_t Id) const {
  Json Resp = okFrame(Id);
  Resp.set("health", serviceHealthName(Svc.health()));
  Resp.set("active_jobs", Svc.activeJobs());
  Resp.set("queued_jobs", Svc.queuedJobs());
  Resp.set("workers", Svc.workers());
  return Resp;
}
