//===- wire/Protocol.cpp - Wire protocol vocabulary ------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wire/Protocol.h"

#include "dse/Workloads.h"

using namespace recap;
using namespace recap::wire;

Json wire::okFrame(int64_t Id) {
  Json F = Json::object();
  F.set("v", ProtocolVersion);
  F.set("id", Id);
  F.set("ok", true);
  return F;
}

Json wire::errorFrame(int64_t Id, const std::string &Code,
                      const std::string &Message) {
  Json F = Json::object();
  F.set("v", ProtocolVersion);
  F.set("id", Id);
  F.set("ok", false);
  Json E = Json::object();
  E.set("code", Code);
  E.set("message", Message);
  F.set("error", std::move(E));
  return F;
}

namespace {

/// `{"pattern":"/re/flags"}`: a probe program whose only bug is an input
/// matching the pattern — DSE "finding the bug" = synthesizing a member
/// of the regex's language through the solver (the paper's point, as a
/// wire-submittable demo).
Result<Program> patternProbe(const std::string &Literal) {
  if (Literal.size() < 2 || Literal.front() != '/')
    return Result<Program>::error(
        "pattern must be regex literal syntax, e.g. \"/ab+c/i\": " +
        Literal);
  using namespace mjs;
  Program P;
  P.Name = "pattern-probe:" + Literal;
  P.Params = {"s"};
  std::vector<StmtPtr> Body;
  Body.push_back(let_("m", test(Literal, var("s"))));
  Body.push_back(if_(var("m"), assert_(boolean(false))));
  P.Body = block(std::move(Body));
  P.finalize();
  return P;
}

Result<Program> programFromJson(const Json &PS) {
  if (!PS.isObj())
    return Result<Program>::error("program spec must be an object");
  if (const Json *W = PS.find("workload")) {
    const std::string &Name = W->asStr();
    if (Name == "listing1")
      return listing1Program();
    for (Program &P : table6Libraries())
      if (P.Name == Name)
        return std::move(P);
    return Result<Program>::error("unknown workload: " + Name);
  }
  if (const Json *Seed = PS.find("package_seed")) {
    if (!Seed->isNumber())
      return Result<Program>::error("package_seed must be a number");
    return generateMiniPackage(Seed->asUInt());
  }
  if (const Json *Pat = PS.find("pattern"))
    return patternProbe(Pat->asStr());
  return Result<Program>::error(
      "program spec needs workload, package_seed or pattern");
}

SupportLevel levelFromName(const std::string &Name, SupportLevel Default) {
  if (Name == "concrete")
    return SupportLevel::Concrete;
  if (Name == "model")
    return SupportLevel::Model;
  if (Name == "captures")
    return SupportLevel::Captures;
  if (Name == "refinement")
    return SupportLevel::Refinement;
  return Default;
}

const char *engineErrorKindName(EngineErrorKind K) {
  switch (K) {
  case EngineErrorKind::SolverThrow:
    return "solver-throw";
  case EngineErrorKind::ShardFailure:
    return "shard-failure";
  case EngineErrorKind::WorkerSpawn:
    return "worker-spawn";
  case EngineErrorKind::SnapshotError:
    return "snapshot-error";
  case EngineErrorKind::BackendConstruction:
    return "backend-construction";
  }
  return "unknown";
}

} // namespace

Result<JobSpec> wire::jobSpecFromJson(const Json &Spec) {
  if (!Spec.isObj())
    return Result<JobSpec>::error("spec must be an object");
  JobSpec S;

  const std::string &Kind = Spec.get("kind").asStr();
  if (Kind == "survey")
    S.Kind = JobKind::Survey;
  else if (Kind.empty() || Kind == "dse")
    S.Kind = JobKind::Dse;
  else
    return Result<JobSpec>::error("unknown kind: " + Kind);

  S.Tenant = Spec.get("tenant").asStr();

  for (const Json &PS : Spec.get("programs").items()) {
    Result<Program> P = programFromJson(PS);
    if (!P)
      return Result<JobSpec>::error(P.error());
    S.Programs.push_back(P.take());
  }

  for (const Json &Pkg : Spec.get("packages").items()) {
    if (!Pkg.isArr())
      return Result<JobSpec>::error(
          "each package must be an array of JS source strings");
    std::vector<std::string> Files;
    for (const Json &F : Pkg.items())
      Files.push_back(F.asStr());
    S.Packages.push_back(std::move(Files));
  }

  if (S.Kind == JobKind::Dse && S.Programs.empty())
    return Result<JobSpec>::error("dse spec has no programs");
  if (S.Kind == JobKind::Survey && S.Packages.empty())
    return Result<JobSpec>::error("survey spec has no packages");

  const Json &E = Spec.get("engine");
  if (E.isObj()) {
    S.Engine.MaxTests = E.get("max_tests").asUInt(S.Engine.MaxTests);
    S.Engine.MaxSeconds = E.get("max_seconds").asDouble(S.Engine.MaxSeconds);
    S.Engine.Seed = E.get("seed").asUInt(S.Engine.Seed);
    S.Engine.Level = levelFromName(E.get("level").asStr(), S.Engine.Level);
    S.Engine.Dispatch = E.get("dispatch").asBool(S.Engine.Dispatch);
    S.Engine.DispatchAnchored =
        E.get("dispatch_anchored").asBool(S.Engine.DispatchAnchored);
    S.Engine.DispatchRacing =
        E.get("dispatch_racing").asBool(S.Engine.DispatchRacing);
  }

  S.DeadlineMs = static_cast<uint32_t>(Spec.get("deadline_ms").asUInt(0));
  S.Priority = static_cast<int>(Spec.get("priority").asInt(0));
  S.ShardsPerUnit = Spec.get("shards_per_unit").asUInt(1);
  if (S.ShardsPerUnit == 0)
    S.ShardsPerUnit = 1;
  return S;
}

Json wire::toJson(const EngineResult &R) {
  Json J = Json::object();
  J.set("tests_run", R.TestsRun);
  J.set("covered_stmts", R.Covered.size());
  J.set("total_stmts", R.TotalStmts);
  J.set("coverage_percent", R.coveragePercent());
  J.set("seconds", R.Seconds);
  J.set("workers_used", R.WorkersUsed);
  J.set("bug_found", R.bugFound());
  Json FA = Json::array();
  for (int Id : R.FailedAsserts)
    FA.push(Id);
  J.set("failed_asserts", std::move(FA));
  Json Errs = Json::array();
  for (const EngineError &E : R.Errors) {
    Json EJ = Json::object();
    EJ.set("kind", engineErrorKindName(E.Kind));
    EJ.set("shard", E.Shard);
    EJ.set("detail", E.Detail);
    Errs.push(std::move(EJ));
  }
  J.set("errors", std::move(Errs));
  return J;
}

Json wire::toJson(const Survey &S) {
  Json J = Json::object();
  J.set("packages", S.Packages);
  J.set("with_source", S.WithSource);
  J.set("with_regex", S.WithRegex);
  J.set("with_captures", S.WithCaptures);
  J.set("with_backrefs", S.WithBackrefs);
  J.set("with_quantified_backrefs", S.WithQuantifiedBackrefs);
  J.set("total_regexes", S.TotalRegexes);
  J.set("unique_regexes", S.UniqueRegexes);
  Json F = Json::object();
  for (const auto &[Name, C] : S.Features) {
    Json Row = Json::object();
    Row.set("total", C.Total);
    Row.set("unique", C.Unique);
    F.set(Name, std::move(Row));
  }
  J.set("features", std::move(F));
  return J;
}

Json wire::toJson(const RuntimeStats &S) {
  Json J = Json::object();
  auto Put = [&J](const char *Name, const StatCounter &C) {
    J.set(Name, C.load());
  };
  Put("intern_hits", S.InternHits);
  Put("intern_misses", S.InternMisses);
  Put("intern_evictions", S.InternEvictions);
  Put("parse_errors", S.ParseErrors);
  Put("error_hits", S.ErrorHits);
  Put("feature_computes", S.FeatureComputes);
  Put("feature_hits", S.FeatureHits);
  Put("backref_computes", S.BackrefComputes);
  Put("backref_hits", S.BackrefHits);
  Put("approx_computes", S.ApproxComputes);
  Put("approx_hits", S.ApproxHits);
  Put("automaton_computes", S.AutomatonComputes);
  Put("automaton_hits", S.AutomatonHits);
  Put("matcher_computes", S.MatcherComputes);
  Put("matcher_hits", S.MatcherHits);
  Put("template_computes", S.TemplateComputes);
  Put("template_hits", S.TemplateHits);
  Put("dispatch_classical", S.DispatchClassical);
  Put("dispatch_general", S.DispatchGeneral);
  Put("dispatch_fallbacks", S.DispatchFallbacks);
  Put("anchored_lane_hit", S.AnchoredLaneHit);
  Put("race_classical_won", S.RaceClassicalWon);
  Put("race_z3_won", S.RaceZ3Won);
  Put("race_cancelled", S.RaceCancelled);
  Put("anchored_fallback", S.AnchoredFallback);
  Put("snapshot_loaded", S.SnapshotLoaded);
  Put("snapshot_rejected", S.SnapshotRejected);
  Put("artifacts_mapped", S.ArtifactsMapped);
  Put("artifacts_rejected", S.ArtifactsRejected);
  Put("artifact_bytes_shared", S.ArtifactBytesShared);
  Put("aged_out", S.AgedOut);
  Put("workers_clamped", S.WorkersClamped);
  Put("guard_timeouts", S.GuardTimeouts);
  Put("guard_retries", S.GuardRetries);
  Put("guard_throws", S.GuardThrows);
  Put("breaker_opens", S.BreakerOpens);
  Put("breaker_reroutes", S.BreakerReroutes);
  Put("breaker_short_circuits", S.BreakerShortCircuits);
  Put("quarantined", S.Quarantined);
  Put("quarantine_hits", S.QuarantineHits);
  Put("quarantine_expired", S.QuarantineExpired);
  Put("snapshot_recovered", S.SnapshotRecovered);
  Put("worker_spawn_fallbacks", S.WorkerSpawnFallbacks);
  return J;
}

Json wire::toJson(const ServiceStats &S) {
  Json J = Json::object();
  auto Put = [&J](const char *Name, const StatCounter &C) {
    J.set(Name, C.load());
  };
  Put("submitted", S.Submitted);
  Put("admitted", S.Admitted);
  Put("rejected_queue_full", S.RejectedQueueFull);
  Put("rejected_tenant_queue", S.RejectedTenantQueue);
  Put("rejected_draining", S.RejectedDraining);
  Put("rejected_invalid", S.RejectedInvalid);
  Put("rejected_fault", S.RejectedFault);
  Put("units_dispatched", S.UnitsDispatched);
  Put("units_skipped", S.UnitsSkipped);
  Put("units_faulted", S.UnitsFaulted);
  Put("jobs_completed", S.JobsCompleted);
  Put("jobs_cancelled", S.JobsCancelled);
  Put("jobs_deadline", S.JobsDeadline);
  Put("results_streamed", S.ResultsStreamed);
  Put("snapshot_saves", S.SnapshotSaves);
  Put("snapshot_save_failures", S.SnapshotSaveFailures);
  Put("quarantine_expired", S.QuarantineExpired);
  Put("warm_boots", S.WarmBoots);
  return J;
}

Json wire::toJson(const LatencyHistogram &H) {
  Json J = Json::object();
  J.set("count", H.count());
  J.set("sum_seconds", H.sumSeconds());
  J.set("min_seconds", H.minSeconds());
  J.set("max_seconds", H.maxSeconds());
  J.set("mean_seconds", H.meanSeconds());
  J.set("p50_seconds", H.quantileSeconds(0.50));
  J.set("p90_seconds", H.quantileSeconds(0.90));
  J.set("p99_seconds", H.quantileSeconds(0.99));
  // Sparse: only populated buckets, as [upper_edge_seconds, count].
  Json B = Json::array();
  for (size_t I = 0; I < LatencyHistogram::NumBuckets; ++I) {
    if (uint64_t N = H.bucketCount(I)) {
      Json Row = Json::array();
      Row.push(LatencyHistogram::bucketUpperSeconds(I));
      Row.push(N);
      B.push(std::move(Row));
    }
  }
  J.set("buckets", std::move(B));
  return J;
}

Json wire::toJson(const ShutdownReport &R) {
  Json J = Json::object();
  J.set("clean", R.Clean);
  J.set("cancelled_jobs", R.CancelledJobs);
  J.set("snapshots_saved", R.SnapshotsSaved);
  J.set("snapshot_failures", R.SnapshotFailures);
  J.set("seconds", R.Seconds);
  return J;
}

Json wire::toJson(const JobUnitResult &U, JobKind Kind) {
  Json J = Json::object();
  J.set("unit", U.Unit);
  if (Kind == JobKind::Dse)
    J.set("dse", toJson(U.Dse));
  else if (U.Slice)
    J.set("survey", toJson(*U.Slice));
  return J;
}

Json wire::toJson(const JobResult &R, JobKind Kind) {
  Json J = Json::object();
  J.set("status", jobStatusName(R.Status));
  J.set("health", serviceHealthName(R.Health));
  J.set("seconds", R.Seconds);
  J.set("first_result_seconds", R.FirstResultSeconds);
  Json Reasons = Json::array();
  for (const std::string &S : R.Reasons)
    Reasons.push(S);
  J.set("reasons", std::move(Reasons));
  if (Kind == JobKind::Dse) {
    Json Results = Json::array();
    for (const EngineResult &ER : R.Results)
      Results.push(toJson(ER));
    J.set("results", std::move(Results));
  } else if (R.SurveyOut) {
    J.set("survey", toJson(*R.SurveyOut));
  }
  return J;
}

Json wire::serviceStatszJson(const AnalysisService &Svc) {
  Json J = Json::object();
  J.set("health", serviceHealthName(Svc.health()));
  J.set("workers", Svc.workers());
  J.set("slots_in_use", Svc.slotsInUse());
  J.set("active_jobs", Svc.activeJobs());
  J.set("queued_jobs", Svc.queuedJobs());
  J.set("service", toJson(Svc.stats()));
  J.set("runtime", toJson(Svc.runtimeStats()));

  Json Tenants = Json::object();
  std::map<std::string, RuntimeStats> PerTenant = Svc.tenantRuntimeStats();
  std::map<std::string, AnalysisService::TenantLatency> Lat =
      Svc.latencyStats();
  for (const auto &[Name, RS] : PerTenant)
    Tenants.set(Name, Json::object()).set("runtime", toJson(RS));
  for (const auto &[Name, L] : Lat) {
    const Json *Existing = Tenants.find(Name);
    Json &T = Existing ? Tenants.set(Name, *Existing)
                       : Tenants.set(Name, Json::object());
    Json LJ = Json::object();
    LJ.set("first_result", toJson(L.FirstResult));
    LJ.set("job_duration", toJson(L.JobDuration));
    T.set("latency", std::move(LJ));
  }
  J.set("tenants", std::move(Tenants));

  if (const std::shared_ptr<Quarantine> &Q = Svc.quarantine()) {
    Json QJ = Json::object();
    QJ.set("threshold", Q->threshold());
    QJ.set("generation", Q->currentGeneration());
    QJ.set("tracked", Q->tracked());
    QJ.set("quarantined", Q->quarantined());
    QJ.set("expired", Q->expired());
    Json Entries = Json::array();
    for (const Quarantine::EntryView &E : Q->entries()) {
      Json EJ = Json::object();
      EJ.set("key", E.Key);
      EJ.set("burns", E.Burns);
      EJ.set("generation", E.Generation);
      EJ.set("quarantined", E.Quarantined);
      Entries.push(std::move(EJ));
    }
    QJ.set("entries", std::move(Entries));
    J.set("quarantine", std::move(QJ));
  }
  return J;
}
