//===- wire/Json.cpp - Hand-rolled JSON value, parser, writer --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wire/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace recap;
using namespace recap::wire;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        // Bytes >= 0x80 pass through: the payload is UTF-8 and JSON
        // strings carry raw UTF-8 unescaped.
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
}

void dumpInto(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += J.asBool() ? "true" : "false";
    break;
  case Json::Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(J.asInt()));
    Out += Buf;
    break;
  }
  case Json::Kind::Double: {
    double D = J.asDouble();
    if (!std::isfinite(D)) {
      // JSON has no Inf/NaN; degrade to null rather than emit an
      // unparseable frame.
      Out += "null";
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case Json::Kind::Str:
    appendEscaped(Out, J.asStr());
    break;
  case Json::Kind::Arr: {
    Out.push_back('[');
    bool First = true;
    for (const Json &V : J.items()) {
      if (!First)
        Out.push_back(',');
      First = false;
      dumpInto(V, Out);
    }
    Out.push_back(']');
    break;
  }
  case Json::Kind::Obj: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[N, V] : J.members()) {
      if (!First)
        Out.push_back(',');
      First = false;
      appendEscaped(Out, N);
      Out.push_back(':');
      dumpInto(V, Out);
    }
    Out.push_back('}');
    break;
  }
  }
}

} // namespace

std::string Json::dump() const {
  std::string Out;
  dumpInto(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const char *P;
  const char *End;
  const char *Begin;
  std::string Err;
  size_t MaxDepth;

  Parser(const std::string &Text, size_t MaxDepth)
      : P(Text.data()), End(Text.data() + Text.size()), Begin(Text.data()),
        MaxDepth(MaxDepth) {}

  bool fail(const std::string &Why) {
    if (Err.empty())
      Err = "offset " + std::to_string(P - Begin) + ": " + Why;
    return false;
  }

  void skipWs() {
    while (P < End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool parseValue(Json &Out, size_t Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (P >= End)
      return fail("unexpected end of input");
    switch (*P) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case 't':
      if (End - P >= 4 && std::memcmp(P, "true", 4) == 0) {
        P += 4;
        Out = Json(true);
        return true;
      }
      return fail("bad literal");
    case 'f':
      if (End - P >= 5 && std::memcmp(P, "false", 5) == 0) {
        P += 5;
        Out = Json(false);
        return true;
      }
      return fail("bad literal");
    case 'n':
      if (End - P >= 4 && std::memcmp(P, "null", 4) == 0) {
        P += 4;
        Out = Json();
        return true;
      }
      return fail("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Json &Out, size_t Depth) {
    ++P; // '{'
    Out = Json::object();
    skipWs();
    if (P < End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (P >= End || *P != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (P >= End || *P != ':')
        return fail("expected ':'");
      ++P;
      Json V;
      if (!parseValue(V, Depth + 1))
        return false;
      // Last-wins on duplicate keys (set() replaces in place).
      Out.set(Key, std::move(V));
      skipWs();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(Json &Out, size_t Depth) {
    ++P; // '['
    Out = Json::array();
    skipWs();
    if (P < End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      Json V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool hexDigit(char C, unsigned &V) {
    if (C >= '0' && C <= '9')
      V = C - '0';
    else if (C >= 'a' && C <= 'f')
      V = 10 + C - 'a';
    else if (C >= 'A' && C <= 'F')
      V = 10 + C - 'A';
    else
      return false;
    return true;
  }

  void appendUtf8(std::string &S, unsigned CP) {
    if (CP < 0x80) {
      S.push_back(static_cast<char>(CP));
    } else if (CP < 0x800) {
      S.push_back(static_cast<char>(0xC0 | (CP >> 6)));
      S.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    } else if (CP < 0x10000) {
      S.push_back(static_cast<char>(0xE0 | (CP >> 12)));
      S.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    } else {
      S.push_back(static_cast<char>(0xF0 | (CP >> 18)));
      S.push_back(static_cast<char>(0x80 | ((CP >> 12) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    }
  }

  bool parseU16(unsigned &U) {
    if (End - P < 4)
      return fail("truncated \\u escape");
    U = 0;
    for (int I = 0; I < 4; ++I) {
      unsigned V;
      if (!hexDigit(P[I], V))
        return fail("bad \\u escape");
      U = (U << 4) | V;
    }
    P += 4;
    return true;
  }

  bool parseString(std::string &S) {
    ++P; // '"'
    for (;;) {
      if (P >= End)
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(*P);
      if (C == '"') {
        ++P;
        return true;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        S.push_back(static_cast<char>(C));
        ++P;
        continue;
      }
      ++P;
      if (P >= End)
        return fail("truncated escape");
      switch (*P) {
      case '"':
        S.push_back('"');
        ++P;
        break;
      case '\\':
        S.push_back('\\');
        ++P;
        break;
      case '/':
        S.push_back('/');
        ++P;
        break;
      case 'n':
        S.push_back('\n');
        ++P;
        break;
      case 't':
        S.push_back('\t');
        ++P;
        break;
      case 'r':
        S.push_back('\r');
        ++P;
        break;
      case 'b':
        S.push_back('\b');
        ++P;
        break;
      case 'f':
        S.push_back('\f');
        ++P;
        break;
      case 'u': {
        ++P;
        unsigned U;
        if (!parseU16(U))
          return false;
        if (U >= 0xD800 && U <= 0xDBFF) {
          // Surrogate pair: require the low half.
          if (End - P < 6 || P[0] != '\\' || P[1] != 'u')
            return fail("unpaired surrogate");
          P += 2;
          unsigned Lo;
          if (!parseU16(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail("bad low surrogate");
          appendUtf8(S, 0x10000 + ((U - 0xD800) << 10) + (Lo - 0xDC00));
        } else if (U >= 0xDC00 && U <= 0xDFFF) {
          return fail("unpaired surrogate");
        } else {
          appendUtf8(S, U);
        }
        break;
      }
      default:
        return fail("bad escape");
      }
    }
  }

  bool parseNumber(Json &Out) {
    const char *Start = P;
    if (P < End && *P == '-')
      ++P;
    if (P >= End || *P < '0' || *P > '9')
      return fail("bad number");
    if (*P == '0') // strict grammar: no leading zeros
      ++P;
    else
      while (P < End && *P >= '0' && *P <= '9')
        ++P;
    bool Integral = true;
    if (P < End && *P == '.') {
      Integral = false;
      ++P;
      if (P >= End || *P < '0' || *P > '9')
        return fail("bad number (fraction)");
      while (P < End && *P >= '0' && *P <= '9')
        ++P;
    }
    if (P < End && (*P == 'e' || *P == 'E')) {
      Integral = false;
      ++P;
      if (P < End && (*P == '+' || *P == '-'))
        ++P;
      if (P >= End || *P < '0' || *P > '9')
        return fail("bad number (exponent)");
      while (P < End && *P >= '0' && *P <= '9')
        ++P;
    }
    std::string Lit(Start, P);
    if (Integral) {
      errno = 0;
      char *EndPtr = nullptr;
      long long V = std::strtoll(Lit.c_str(), &EndPtr, 10);
      if (errno == 0 && EndPtr && *EndPtr == '\0') {
        Out = Json(static_cast<int64_t>(V));
        return true;
      }
      // Out-of-int64-range integral literal: fall through to double.
    }
    Out = Json(std::strtod(Lit.c_str(), nullptr));
    return true;
  }
};

} // namespace

Json Json::parse(const std::string &Text, std::string &Err,
                 size_t MaxDepth) {
  Err.clear();
  Parser Pr(Text, MaxDepth);
  Json Out;
  if (!Pr.parseValue(Out, 0)) {
    Err = Pr.Err.empty() ? "parse error" : Pr.Err;
    return Json();
  }
  Pr.skipWs();
  if (Pr.P != Pr.End) {
    Pr.fail("trailing garbage after value");
    Err = Pr.Err;
    return Json();
  }
  return Out;
}
