//===- wire/Framing.h - Line-delimited frames over fds ----------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport floor of the wire protocol (DESIGN.md §12,
/// docs/PROTOCOL.md): one frame = one LF-terminated line of UTF-8 JSON
/// over a byte stream (Unix socket, localhost TCP, or a pipe/stdio
/// pair). Framing self-synchronizes at newlines, so a malformed or
/// oversized frame costs exactly that frame, never the connection's
/// framing.
///
/// FrameReader buffers reads and splits frames; writeFrame appends the
/// LF and loops a full send. Both consult the chaos injector
/// (FaultSite::WireRead / FaultSite::WireWrite) so the chaos CI job can
/// cover transport failure the same way it covers solver failure: a
/// faulted read/write degrades the one connection, the server survives.
///
/// Socket helpers (listenUnix/listenTcp/acceptFd/connectUnix/connectTcp)
/// keep the server and client free of raw sockaddr plumbing. TCP binds
/// and connects 127.0.0.1 only — the protocol is an operator loopback
/// surface, not an internet listener (docs/OPERATIONS.md).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_WIRE_FRAMING_H
#define RECAP_WIRE_FRAMING_H

#include <atomic>
#include <cstdint>
#include <string>

namespace recap {
namespace wire {

/// Default cap on one frame's byte length (excluding the LF). A frame
/// larger than the cap is discarded up to its terminating newline and
/// reported as TooLarge; the connection keeps working.
constexpr size_t DefaultMaxFrameBytes = 8u << 20;

enum class ReadResult : uint8_t {
  Frame,    ///< \p Out holds one complete frame (LF stripped)
  Eof,      ///< peer closed cleanly between frames
  TooLarge, ///< frame exceeded the cap; it was discarded, stream is live
  Error,    ///< read error (errno) or EOF mid-frame — connection is dead
  Fault,    ///< FaultSite::WireRead injected a failure (chaos only)
};

/// Buffered frame splitter over one fd. Not thread-safe (one reader per
/// connection by construction).
class FrameReader {
public:
  explicit FrameReader(int Fd, size_t MaxFrame = DefaultMaxFrameBytes)
      : Fd(Fd), MaxFrame(MaxFrame) {}

  /// Blocks for the next complete frame. \p Cancel (optional) is the
  /// flag a chaos Hang polls — the server passes its stop flag so an
  /// injected wedged read never outlives shutdown.
  ReadResult next(std::string &Out,
                  const std::atomic<bool> *Cancel = nullptr);

private:
  int Fd;
  size_t MaxFrame;
  std::string Buf;
  bool Discarding = false; ///< inside an oversized frame, seeking LF
};

/// Writes \p Frame plus the terminating LF, looping until all bytes are
/// out. \p Frame must not contain LF (Json::dump never emits one).
/// Returns false on send failure or an injected WireWrite fault.
bool writeFrame(int Fd, const std::string &Frame,
                const std::atomic<bool> *Cancel = nullptr);

/// Socket plumbing. All return a valid fd or -1 with \p Err set.
int listenUnix(const std::string &Path, std::string &Err);
/// Binds 127.0.0.1:\p Port (0 = ephemeral); the bound port lands in
/// \p BoundPort.
int listenTcp(uint16_t Port, uint16_t &BoundPort, std::string &Err);
/// Accepts one connection; -1 when the listener was closed/shut down.
int acceptFd(int ListenFd);
int connectUnix(const std::string &Path, std::string &Err);
int connectTcp(const std::string &Host, uint16_t Port, std::string &Err);
void closeFd(int Fd);
/// shutdown(2) both directions — unblocks a peer's blocking read.
void shutdownFd(int Fd);

} // namespace wire
} // namespace recap

#endif // RECAP_WIRE_FRAMING_H
