//===- support/Result.h - Lightweight expected-or-error type ---*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result<T> carries either a value or an error message. recap library code
/// never throws; fallible operations return Result (mirroring LLVM's
/// Expected<T> without the checked-flag machinery).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SUPPORT_RESULT_H
#define RECAP_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace recap {

template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Value(std::move(Value)) {}

  static Result error(std::string Message) {
    Result R;
    R.Message = std::move(Message);
    return R;
  }

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing error Result");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing error Result");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Error message; empty for success values.
  const std::string &error() const { return Message; }

  /// Moves the value out (success values only).
  T take() {
    assert(Value && "taking error Result");
    return std::move(*Value);
  }

private:
  Result() = default;
  std::optional<T> Value;
  std::string Message;
};

} // namespace recap

#endif // RECAP_SUPPORT_RESULT_H
