//===- support/LruMap.h - String-keyed LRU cache ----------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small bounded map with least-recently-used eviction, shared by the
/// runtime's pattern interning and the CEGAR query-result cache. Keys are
/// stored once (the recency list points into the map's nodes).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SUPPORT_LRUMAP_H
#define RECAP_SUPPORT_LRUMAP_H

#include <cassert>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace recap {

template <typename V> class LruMap {
public:
  /// \p Capacity 0 = unbounded.
  explicit LruMap(size_t Capacity = 0) : Capacity(Capacity) {}

  /// Value for \p Key or null; a hit refreshes the entry's recency.
  V *find(const std::string &Key) {
    auto It = Map.find(Key);
    if (It == Map.end())
      return nullptr;
    if (It->second.LruIt != Lru.begin())
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return &It->second.Value;
  }

  /// Inserts a new entry (\p Key must not be present). Returns true when
  /// the insertion evicted the least-recently-used entry.
  bool insert(std::string Key, V Val) {
    auto [It, New] =
        Map.emplace(std::move(Key), Entry{std::move(Val), Lru.end()});
    assert(New && "LruMap::insert on an existing key");
    Lru.push_front(&It->first);
    It->second.LruIt = Lru.begin();
    if (Capacity != 0 && Map.size() > Capacity) {
      std::string Victim = *Lru.back(); // copy: the node dies in erase
      Lru.pop_back();
      Map.erase(Victim);
      return true;
    }
    return false;
  }

  size_t size() const { return Map.size(); }

  /// Visits every entry from least- to most-recently used without
  /// touching recency. Snapshot writers rely on this order: re-inserting
  /// entries in visit order reproduces the recency ranking, so a bounded
  /// reload evicts the same cold tail (runtime/RuntimeSnapshot.cpp).
  template <typename Fn> void forEachLru(Fn &&F) const {
    for (auto It = Lru.rbegin(); It != Lru.rend(); ++It) {
      auto MIt = Map.find(**It);
      F(MIt->first, MIt->second.Value);
    }
  }

  void clear() {
    Map.clear();
    Lru.clear();
  }

private:
  struct Entry {
    V Value;
    typename std::list<const std::string *>::iterator LruIt;
  };

  size_t Capacity;
  std::unordered_map<std::string, Entry> Map;
  std::list<const std::string *> Lru; ///< front = most recently used
};

} // namespace recap

#endif // RECAP_SUPPORT_LRUMAP_H
