//===- support/UString.h - Code points and unicode strings -----*- C++ -*-===//
//
// Part of recap, a reproduction of "Sound Regular Expression Semantics for
// Dynamic Symbolic Execution of JavaScript" (Loring, Mitchell, Kinder,
// PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code-point level string utilities. All recap strings are sequences of
/// Unicode code points (std::u32string), matching the paper's treatment of
/// words as character sequences; surrogate-pair handling only matters at the
/// UTF-8/UTF-16 boundary and is confined to the conversion helpers here.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SUPPORT_USTRING_H
#define RECAP_SUPPORT_USTRING_H

#include <cstdint>
#include <string>
#include <string_view>

namespace recap {

using CodePoint = char32_t;
using UString = std::u32string;

/// Largest valid Unicode code point.
constexpr CodePoint MaxCodePoint = 0x10FFFF;

/// Reserved markers for the start and end of input: the paper's
/// meta-characters 〈 and 〉 (§6.1). We map them onto STX/ETX so that typical
/// solver models stay within the ASCII range; they are excluded from every
/// character class the model can generate, so no user regex can match them.
constexpr CodePoint MetaStart = 0x02;
constexpr CodePoint MetaEnd = 0x03;

/// Converts a code-point string to UTF-8 (invalid code points are replaced
/// with U+FFFD).
std::string toUTF8(const UString &S);

/// Decodes UTF-8 into code points; invalid bytes decode to U+FFFD.
UString fromUTF8(std::string_view S);

/// Renders \p S for debug output, escaping non-printable characters as
/// \xHH / \u{HHHH}.
std::string escape(const UString &S);

/// Renders one code point for debug output.
std::string escapeChar(CodePoint C);

/// ES6 \w: [A-Za-z0-9_].
bool isWordChar(CodePoint C);

/// ES6 \d: [0-9].
bool isDigit(CodePoint C);

/// ES6 \s: WhiteSpace and LineTerminator productions.
bool isWhitespace(CodePoint C);

/// ES6 LineTerminator: \n, \r, U+2028, U+2029.
bool isLineTerminator(CodePoint C);

/// ES6 21.2.2.8.2 Canonicalize, used by the ignore-case flag. Implements
/// simple ASCII/Latin-1 folding (plus y-with-diaeresis); full Unicode case
/// folding tables are out of scope (see DESIGN.md substitutions).
CodePoint canonicalize(CodePoint C, bool Unicode);

/// Convenience literal builder used by tests: fromUTF8 with implicit size.
inline UString operator""_u(const char *S, size_t N) {
  return fromUTF8(std::string_view(S, N));
}

} // namespace recap

#endif // RECAP_SUPPORT_USTRING_H
