//===- support/CharSet.h - Interval sets of code points --------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CharSet represents a set of Unicode code points as sorted, disjoint,
/// non-adjacent closed intervals. It is the alphabet representation shared by
/// the regex AST, the concrete matcher, the automata library, and the SMT
/// translation (each interval lowers to one re.range in Z3).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SUPPORT_CHARSET_H
#define RECAP_SUPPORT_CHARSET_H

#include "support/UString.h"

#include <optional>
#include <utility>
#include <vector>

namespace recap {

class CharSet {
public:
  /// One closed interval [Lo, Hi] of code points.
  struct Interval {
    CodePoint Lo;
    CodePoint Hi;
    bool operator==(const Interval &O) const = default;
  };

  CharSet() = default;

  static CharSet single(CodePoint C) { return range(C, C); }
  static CharSet range(CodePoint Lo, CodePoint Hi);
  /// The full alphabet [0, MaxCodePoint] (includes the meta markers; callers
  /// that feed the solver must subtract CharSet::metas()).
  static CharSet all();

  /// ES6 \d.
  static CharSet digits();
  /// ES6 \w.
  static CharSet wordChars();
  /// ES6 \s.
  static CharSet whitespace();
  /// ES6 LineTerminator set.
  static CharSet lineTerminators();
  /// ES6 `.`: every character except line terminators.
  static CharSet dot();
  /// The two reserved input markers (paper's 〈 and 〉).
  static CharSet metas();

  bool isEmpty() const { return Intervals.empty(); }
  bool contains(CodePoint C) const;
  bool operator==(const CharSet &O) const = default;

  /// Inserts [Lo, Hi], merging intervals as needed.
  void addRange(CodePoint Lo, CodePoint Hi);
  void addChar(CodePoint C) { addRange(C, C); }
  void addSet(const CharSet &O);

  CharSet unionWith(const CharSet &O) const;
  CharSet intersectWith(const CharSet &O) const;
  /// Complement relative to [0, MaxCodePoint].
  CharSet complement() const;
  CharSet minus(const CharSet &O) const;

  /// Number of code points in the set (may be large; saturates at UINT64_MAX).
  uint64_t size() const;
  /// Smallest member if non-empty.
  std::optional<CodePoint> first() const;
  /// True if the sets share at least one code point.
  bool intersects(const CharSet &O) const;

  const std::vector<Interval> &intervals() const { return Intervals; }

  /// Closure under ES6 Canonicalize: adds, for every member, its case-folding
  /// partner. Used to implement the ignore-case flag (paper Alg. 2's
  /// rewriteForIgnoreCase).
  CharSet caseClosure(bool Unicode) const;

  /// Debug rendering like [a-z0-9\x02].
  std::string str() const;

private:
  std::vector<Interval> Intervals;
};

} // namespace recap

#endif // RECAP_SUPPORT_CHARSET_H
