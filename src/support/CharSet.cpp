//===- support/CharSet.cpp - Interval sets of code points ----------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CharSet.h"

#include <algorithm>
#include <cassert>

using namespace recap;

CharSet CharSet::range(CodePoint Lo, CodePoint Hi) {
  CharSet S;
  S.addRange(Lo, Hi);
  return S;
}

CharSet CharSet::all() { return range(0, MaxCodePoint); }

CharSet CharSet::digits() { return range('0', '9'); }

CharSet CharSet::wordChars() {
  CharSet S;
  S.addRange('0', '9');
  S.addRange('A', 'Z');
  S.addRange('_', '_');
  S.addRange('a', 'z');
  return S;
}

CharSet CharSet::whitespace() {
  CharSet S;
  S.addChar('\t');
  S.addChar('\n');
  S.addChar('\v');
  S.addChar('\f');
  S.addChar('\r');
  S.addChar(' ');
  S.addChar(0xA0);
  S.addChar(0x1680);
  S.addRange(0x2000, 0x200A);
  S.addChar(0x2028);
  S.addChar(0x2029);
  S.addChar(0x202F);
  S.addChar(0x205F);
  S.addChar(0x3000);
  S.addChar(0xFEFF);
  return S;
}

CharSet CharSet::lineTerminators() {
  CharSet S;
  S.addChar('\n');
  S.addChar('\r');
  S.addChar(0x2028);
  S.addChar(0x2029);
  return S;
}

CharSet CharSet::dot() { return lineTerminators().complement(); }

CharSet CharSet::metas() {
  CharSet S;
  S.addChar(MetaStart);
  S.addChar(MetaEnd);
  return S;
}

bool CharSet::contains(CodePoint C) const {
  // Binary search on interval lower bounds.
  auto It = std::upper_bound(
      Intervals.begin(), Intervals.end(), C,
      [](CodePoint V, const Interval &I) { return V < I.Lo; });
  if (It == Intervals.begin())
    return false;
  --It;
  return C >= It->Lo && C <= It->Hi;
}

void CharSet::addRange(CodePoint Lo, CodePoint Hi) {
  assert(Lo <= Hi && Hi <= MaxCodePoint && "malformed interval");
  Intervals.push_back({Lo, Hi});
  std::sort(Intervals.begin(), Intervals.end(),
            [](const Interval &A, const Interval &B) { return A.Lo < B.Lo; });
  // Coalesce overlapping or adjacent intervals.
  std::vector<Interval> Norm;
  Norm.reserve(Intervals.size());
  for (const Interval &I : Intervals) {
    if (!Norm.empty() && I.Lo <= Norm.back().Hi + 1)
      Norm.back().Hi = std::max(Norm.back().Hi, I.Hi);
    else
      Norm.push_back(I);
  }
  Intervals = std::move(Norm);
}

void CharSet::addSet(const CharSet &O) {
  for (const Interval &I : O.Intervals)
    addRange(I.Lo, I.Hi);
}

CharSet CharSet::unionWith(const CharSet &O) const {
  CharSet S = *this;
  S.addSet(O);
  return S;
}

CharSet CharSet::intersectWith(const CharSet &O) const {
  CharSet S;
  size_t I = 0, J = 0;
  while (I < Intervals.size() && J < O.Intervals.size()) {
    const Interval &A = Intervals[I];
    const Interval &B = O.Intervals[J];
    CodePoint Lo = std::max(A.Lo, B.Lo);
    CodePoint Hi = std::min(A.Hi, B.Hi);
    if (Lo <= Hi)
      S.Intervals.push_back({Lo, Hi});
    if (A.Hi < B.Hi)
      ++I;
    else
      ++J;
  }
  return S;
}

CharSet CharSet::complement() const {
  CharSet S;
  CodePoint Next = 0;
  bool Overflow = false;
  for (const Interval &I : Intervals) {
    if (I.Lo > Next)
      S.Intervals.push_back({Next, I.Lo - 1});
    if (I.Hi == MaxCodePoint) {
      Overflow = true;
      break;
    }
    Next = I.Hi + 1;
  }
  if (!Overflow && Next <= MaxCodePoint)
    S.Intervals.push_back({Next, MaxCodePoint});
  return S;
}

CharSet CharSet::minus(const CharSet &O) const {
  return intersectWith(O.complement());
}

uint64_t CharSet::size() const {
  uint64_t N = 0;
  for (const Interval &I : Intervals)
    N += static_cast<uint64_t>(I.Hi) - I.Lo + 1;
  return N;
}

std::optional<CodePoint> CharSet::first() const {
  if (Intervals.empty())
    return std::nullopt;
  return Intervals.front().Lo;
}

bool CharSet::intersects(const CharSet &O) const {
  return !intersectWith(O).isEmpty();
}

CharSet CharSet::caseClosure(bool Unicode) const {
  // Fold pairs are involutions (lower <-> upper); closing the set means
  // adding the partner of every member. Each pair below is
  // (lower-range-lo, lower-range-hi, distance-to-upper).
  struct FoldRange {
    CodePoint Lo, Hi;
    int32_t Delta; // upper = lower - Delta
  };
  static const FoldRange Folds[] = {
      {'a', 'z', 0x20},
      {0xE0, 0xF6, 0x20}, // Latin-1 letters before the division sign
      {0xF8, 0xFE, 0x20}, // ... after it
  };
  CharSet Out = *this;
  for (const FoldRange &F : Folds) {
    CharSet Lower = intersectWith(range(F.Lo, F.Hi));
    for (const Interval &I : Lower.intervals())
      Out.addRange(I.Lo - F.Delta, I.Hi - F.Delta);
    CharSet Upper =
        intersectWith(range(F.Lo - F.Delta, F.Hi - F.Delta));
    for (const Interval &I : Upper.intervals())
      Out.addRange(I.Lo + F.Delta, I.Hi + F.Delta);
  }
  if (contains(0xFF))
    Out.addChar(0x178);
  if (contains(0x178))
    Out.addChar(0xFF);
  (void)Unicode;
  return Out;
}

std::string CharSet::str() const {
  std::string Out = "[";
  for (const Interval &I : Intervals) {
    Out += escapeChar(I.Lo);
    if (I.Hi != I.Lo) {
      Out += "-";
      Out += escapeChar(I.Hi);
    }
  }
  Out += "]";
  return Out;
}
