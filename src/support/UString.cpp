//===- support/UString.cpp - Code points and unicode strings -------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/UString.h"

#include <array>
#include <cassert>
#include <cstdio>

using namespace recap;

std::string recap::toUTF8(const UString &S) {
  std::string Out;
  Out.reserve(S.size());
  for (CodePoint C : S) {
    if (C > MaxCodePoint)
      C = 0xFFFD;
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
    } else if (C < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (C >> 6)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    } else if (C < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (C >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((C >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (C >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((C >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((C >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    }
  }
  return Out;
}

UString recap::fromUTF8(std::string_view S) {
  UString Out;
  Out.reserve(S.size());
  size_t I = 0, N = S.size();
  while (I < N) {
    unsigned char B = static_cast<unsigned char>(S[I]);
    CodePoint C = 0xFFFD;
    size_t Len = 1;
    if (B < 0x80) {
      C = B;
    } else if ((B & 0xE0) == 0xC0 && I + 1 < N) {
      C = (B & 0x1F) << 6 | (S[I + 1] & 0x3F);
      Len = 2;
    } else if ((B & 0xF0) == 0xE0 && I + 2 < N) {
      C = (B & 0x0F) << 12 | (S[I + 1] & 0x3F) << 6 | (S[I + 2] & 0x3F);
      Len = 3;
    } else if ((B & 0xF8) == 0xF0 && I + 3 < N) {
      C = (B & 0x07) << 18 | (S[I + 1] & 0x3F) << 12 |
          (S[I + 2] & 0x3F) << 6 | (S[I + 3] & 0x3F);
      Len = 4;
    }
    Out.push_back(C);
    I += Len;
  }
  return Out;
}

std::string recap::escapeChar(CodePoint C) {
  if (C == MetaStart)
    return "\xE2\x8C\xA9"; // render the paper's 〈 for readability
  if (C == MetaEnd)
    return "\xE2\x8C\xAA"; // 〉
  if (C >= 0x20 && C < 0x7F) {
    if (C == '\\')
      return "\\\\";
    return std::string(1, static_cast<char>(C));
  }
  if (C == '\n')
    return "\\n";
  if (C == '\r')
    return "\\r";
  if (C == '\t')
    return "\\t";
  char Buf[16];
  if (C <= 0xFF)
    std::snprintf(Buf, sizeof(Buf), "\\x%02X", static_cast<unsigned>(C));
  else
    std::snprintf(Buf, sizeof(Buf), "\\u{%X}", static_cast<unsigned>(C));
  return Buf;
}

std::string recap::escape(const UString &S) {
  std::string Out;
  for (CodePoint C : S)
    Out += escapeChar(C);
  return Out;
}

bool recap::isWordChar(CodePoint C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

bool recap::isDigit(CodePoint C) { return C >= '0' && C <= '9'; }

bool recap::isLineTerminator(CodePoint C) {
  return C == '\n' || C == '\r' || C == 0x2028 || C == 0x2029;
}

bool recap::isWhitespace(CodePoint C) {
  switch (C) {
  case '\t':
  case '\n':
  case '\v':
  case '\f':
  case '\r':
  case ' ':
  case 0xA0:
  case 0x1680:
  case 0x202F:
  case 0x205F:
  case 0x3000:
  case 0xFEFF:
  case 0x2028:
  case 0x2029:
    return true;
  default:
    return C >= 0x2000 && C <= 0x200A;
  }
}

CodePoint recap::canonicalize(CodePoint C, bool Unicode) {
  // ASCII letters.
  if (C >= 'a' && C <= 'z')
    return C - 0x20;
  // Latin-1 letters with an upper-case partner (excluding the division
  // sign U+00F7).
  if (C >= 0xE0 && C <= 0xFE && C != 0xF7)
    return C - 0x20;
  // y with diaeresis folds outside Latin-1; allowed in both modes because
  // source and target are both non-ASCII.
  if (C == 0xFF)
    return 0x178;
  // In non-unicode mode ES6 forbids folding a non-Latin-1 character into the
  // Latin-1 range; our simple table never does that, so both modes agree.
  (void)Unicode;
  return C;
}
