//===- model/ModelBuilder.h - Capturing-language models ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (§4): translating capturing-language
/// membership (w, C0, ..., Cn) ∈ Lc(R) into string constraints plus
/// classical regular language membership.
///
/// The builder recurses over the ES6 AST emitting the Table-2 operator
/// models and Table-3 backreference models. Design notes relative to the
/// paper's presentation (semantics preserved, see DESIGN.md):
///
///  - Quantifiers are modeled natively: r{m,n} unrolls to m mandatory plus
///    (n-m) optional copies with monotone "engaged" markers, instead of the
///    exponential r^n|...|r^m alternation of Table 1; the §4.1 capture
///    correspondence (original capture = value in the last engaged copy)
///    is emitted as guarded equalities.
///  - Quantified subterms containing backreferences unroll boundedly,
///    which realizes Table 3's *sound* mutable-backreference rule up to
///    the bound (the paper's "all iterations equal" fallback is available
///    as ModelOptions::PaperMutableBackrefRule for ablation).
///  - Anchors, word boundaries and lookaheads are zero-width constraints
///    relating the accumulated left context to a fresh suffix variable
///    pinned by  word = prefix ++ rest.
///
/// Models are overapproximate w.r.t. matching precedence; Algorithm 1
/// (src/cegar) removes the slack.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_MODEL_MODELBUILDER_H
#define RECAP_MODEL_MODELBUILDER_H

#include "model/Approx.h"
#include "regex/Features.h"
#include "smt/Term.h"

namespace recap {

struct ModelOptions {
  /// Unroll bound for {m,n} repetition copies.
  size_t RepetitionUnrollLimit = 12;
  /// Unroll bound for quantifiers whose body contains backreferences.
  size_t BackrefQuantifierUnroll = 4;
  /// Use Table 3's unsound "all iterations equal" rule for mutable
  /// backreferences instead of bounded unrolling (ablation).
  bool PaperMutableBackrefRule = false;
  /// When false, capture groups are not modeled (DSE support level
  /// "+ Modeling RegEx" in Table 7): groups recurse transparently and
  /// backreferences widen to their group's language.
  bool ModelCaptures = true;

  // Solver-performance encoding choices (DESIGN.md "Solver-performance
  // design"); both default on, exposed for bench/ablation_encoding.
  /// Emit the redundant |w| = Σ|wᵢ| length equation beside every word
  /// equation, letting the arithmetic core prune string splits.
  bool EmitLengthEquations = true;
  /// Lower single-character literal atoms to string constants inside the
  /// enclosing word equation instead of fresh variables + memberships.
  bool FoldLiteralChars = true;
};

/// A capture variable pair: the paper's Ci with ⊥ (undefined) tracked as a
/// separate boolean, so that ⊥ is distinct from ε (§3.3).
struct CaptureVar {
  TermRef Defined; ///< Bool term
  TermRef Value;   ///< String term
};

/// The symbolic result of modeling one wrapped match
/// (?:.|\n)*? ( R ) (?:.|\n)*?  against a decorated word 〈input〉
/// (Algorithm 2's rewriting).
struct SymbolicMatch {
  /// The (undecorated) subject term the model was built over.
  TermRef Input;
  /// Decorated word variable, pinned by Decoration to 〈 ++ Input ++ 〉.
  TermRef Word;
  /// Word = 〈 ++ Input ++ 〉 plus "Input contains no meta markers".
  /// Must be asserted together with either constraint below.
  TermRef Decoration;
  /// (Word, C0..Cn) ∈ Lc(wrapped R).
  TermRef MatchConstraint;
  /// Position of the match start within the decorated word (= |w1|);
  /// the match starts at input index MatchStart - 1.
  TermRef MatchStart;
  /// Capture 0: the whole match (always defined on a match).
  CaptureVar C0;
  /// Captures 1..n.
  std::vector<CaptureVar> Captures;
  /// Input = Prefix ++ C0.Value ++ Suffix (used by the String.prototype
  /// method models: replace/split need the surrounding segments).
  TermRef Prefix;
  TermRef Suffix;
  /// True when NoMatchConstraint below is exact (no CEGAR needed for
  /// negative queries).
  bool NegationExact = false;
  /// (Word, *) ∉ Lc(wrapped R): exact pure-regular constraint when
  /// NegationExact, otherwise the paper's §4.4 negated model.
  TermRef NoMatchConstraint;
};

/// Builds capturing-language models for one regex. Fresh variables are
/// prefixed with \p VarPrefix so several models can share one problem.
class ModelBuilder {
public:
  ModelBuilder(const Regex &R, std::string VarPrefix, ModelOptions Opts = {});

  /// Models one match of the wrapped regex against 〈 ++ Input ++ 〉. The
  /// match is split directly on the input (Input = p1 ++ C0 ++ p3), which
  /// keeps the solver's word-equation reasoning shallow; the decorated
  /// word only carries anchor and boundary context.
  SymbolicMatch build(TermRef Input);

  const Regex &regex() const { return R; }

private:
  friend class ModelGen;
  const Regex &R;
  std::string VarPrefix;
  ModelOptions Opts;
};

/// Instantiates a cached symbolic-match template: every variable whose name
/// carries \p TemplatePrefix is renamed to carry \p VarPrefix instead (so
/// each instantiation gets fresh capture/segment variables), the
/// placeholder input variable \p TemplateInput is replaced by \p Input, and
/// inner nodes are rebuilt through the mk* term builders so the usual light
/// simplification applies. Constants and the classical-regex payloads of
/// membership atoms are shared with the template, which also lets
/// per-CRegex solver caches (TermEvaluator, Z3 translation) hit across
/// instantiations. The result is identical to running
/// ModelBuilder(R, VarPrefix, Opts).build(Input) from scratch — the
/// generator's fresh-name counters are deterministic — at a fraction of the
/// cost (no re-parse, no feature/backreference analysis, no regular
/// approximation).
SymbolicMatch instantiateSymbolicMatch(const SymbolicMatch &Template,
                                       const std::string &TemplatePrefix,
                                       const std::string &VarPrefix,
                                       const TermRef &TemplateInput,
                                       TermRef Input);

} // namespace recap

#endif // RECAP_MODEL_MODELBUILDER_H
