//===- model/ModelBuilder.cpp - Capturing-language models ------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/ModelBuilder.h"

#include <cassert>

using namespace recap;

namespace {

bool containsBackref(const RegexNode &N) {
  bool Found = false;
  forEachNode(N, [&](const RegexNode &M) {
    if (M.kind() == NodeKind::Backreference)
      Found = true;
  });
  return Found;
}

/// True when the subterm's language is classical-regular and carries no
/// observable state: no captures, backreferences, or zero-width
/// assertions. Such subterms can be modeled by a single membership.
bool isPlainRegular(const RegexNode &N) {
  bool Plain = true;
  forEachNode(N, [&](const RegexNode &M) {
    switch (M.kind()) {
    case NodeKind::Backreference:
    case NodeKind::Lookahead:
    case NodeKind::Anchor:
    case NodeKind::WordBoundary:
      Plain = false;
      break;
    case NodeKind::Group:
      if (cast<GroupNode>(M).isCapturing())
        Plain = false;
      break;
    default:
      break;
    }
  });
  return Plain;
}

} // namespace

namespace recap {

/// One build() invocation. Carries the accumulated left context
/// (PrefixParts) and the current capture-variable map (overridden inside
/// quantifier copies).
class ModelGen {
public:
  ModelGen(const Regex &R, const std::string &Prefix,
           const ModelOptions &Opts)
      : R(R), Prefix(Prefix), Opts(Opts) {
    BrTypes = classifyBackreferences(R);
    AOpts.IgnoreCase = R.flags().IgnoreCase;
    AOpts.Unicode = R.flags().Unicode;
    AOpts.RepetitionUnrollLimit = Opts.RepetitionUnrollLimit;
    Multiline = R.flags().Multiline;
  }

  SymbolicMatch run(TermRef Input) {
    SymbolicMatch Out;
    Word = mkStrVar(Prefix + "!W");
    Out.Word = Word;
    Out.Input = Input;

    if (Opts.ModelCaptures) {
      for (uint32_t I = 1; I <= R.numCaptures(); ++I) {
        std::string N = Prefix + "!c" + std::to_string(I);
        OrigCaps.push_back({mkBoolVar(N + "d"), mkStrVar(N + "v")});
      }
      CurCaps = OrigCaps;
    } else {
      CurCaps.assign(R.numCaptures(),
                     CaptureVar{mkFalse(), mkStrConst(UString())});
    }

    // Decoration (Algorithm 2 lines 1 and 5): the decorated word is
    // 〈 ++ Input ++ 〉 and the input cannot contain the reserved markers.
    TermRef MetaS = mkStrConst(UString(1, MetaStart));
    TermRef MetaE = mkStrConst(UString(1, MetaEnd));
    Out.Decoration = mkAnd(
        eqConcat(Word, {MetaS, Input, MetaE}),
        mkInRe(Input, cStar(cClass(CharSet::metas().complement()))));

    // Split the *input* around the match: the meta structure of the
    // wildcard segments is then implicit and the solver's word equations
    // stay shallow.
    TermRef P1 = freshStr("pre");
    TermRef C0 = freshStr("m");
    TermRef P3 = freshStr("post");

    std::vector<TermRef> Conj;
    Conj.push_back(eqConcat(Input, {P1, C0, P3}));
    PrefixParts.push_back(MetaS);
    PrefixParts.push_back(P1);
    Conj.push_back(model(R.root(), C0));
    PrefixParts.pop_back();
    PrefixParts.pop_back();

    Out.MatchConstraint = mkAnd(std::move(Conj));
    // Decorated coordinates: the match begins at input index |p1|,
    // decorated index |p1| + 1.
    Out.MatchStart = mkAdd(mkStrLen(P1), mkIntConst(1));
    Out.C0 = {mkTrue(), C0};
    Out.Prefix = P1;
    Out.Suffix = P3;
    Out.Captures = Opts.ModelCaptures ? OrigCaps : CurCaps;

    RegularApprox A = approximateRegularEx(R.root(), R, AOpts);
    Out.NegationExact = A.Exact;
    Out.NoMatchConstraint =
        A.Exact
            ? mkNotInRe(Input, cConcat({cAnyStar(), A.Re, cAnyStar()}))
            : mkNot(Out.MatchConstraint);
    return Out;
  }

private:
  const Regex &R;
  std::string Prefix;
  const ModelOptions &Opts;
  ApproxOptions AOpts;
  bool Multiline = false;
  std::map<const BackreferenceNode *, BackrefType> BrTypes;

  TermRef Word;
  std::vector<CaptureVar> OrigCaps; // originals, indices 1..n at [i-1]
  std::vector<CaptureVar> CurCaps;  // current mapping (copy overrides)
  std::vector<TermRef> PrefixParts;
  unsigned Counter = 0;

  TermRef freshStr(const char *Tag) {
    return mkStrVar(Prefix + "!" + Tag + std::to_string(Counter++));
  }
  TermRef freshBool(const char *Tag) {
    return mkBoolVar(Prefix + "!" + Tag + std::to_string(Counter++));
  }
  static TermRef eps() { return mkStrConst(UString()); }

  /// W = part0 ++ part1 ++ ... plus the redundant length equation
  /// |W| = Σ|part|. The length fact is implied, but stating it lets the
  /// solver's arithmetic core prune splits that string reasoning alone
  /// discovers very slowly (measured >5x on backreference queries; see
  /// bench/ablation_encoding for the toggle).
  TermRef eqConcat(const TermRef &W,
                   const std::vector<TermRef> &Parts) const {
    TermRef Concat = mkEq(W, mkConcat(Parts));
    if (!Opts.EmitLengthEquations)
      return Concat;
    TermRef LenSum;
    for (const TermRef &P : Parts) {
      TermRef L = mkStrLen(P);
      LenSum = LenSum ? mkAdd(LenSum, L) : L;
    }
    return mkAnd(std::move(Concat),
                 mkEq(mkStrLen(W), LenSum ? LenSum : mkIntConst(0)));
  }

  TermRef prefixExpr() const {
    return mkConcat(std::vector<TermRef>(PrefixParts.begin(),
                                         PrefixParts.end()));
  }

  /// Fresh Rest variable pinned to the suffix of the whole word after the
  /// current position: Word = prefix ++ Rest.
  std::pair<TermRef, TermRef> restVar() {
    TermRef Rest = freshStr("rest");
    TermRef Pin = eqConcat(Word, {prefixExpr(), Rest});
    return {Rest, Pin};
  }

  CRegexRef approxNode(const RegexNode &N) {
    return approximateRegular(N, R, AOpts);
  }

  /// Undefined-capture assignment for original indices [Lo, Hi].
  TermRef undefRange(std::optional<std::pair<uint32_t, uint32_t>> Range) {
    if (!Range || !Opts.ModelCaptures)
      return mkTrue();
    std::vector<TermRef> Cs;
    for (uint32_t I = Range->first; I <= Range->second; ++I) {
      Cs.push_back(mkNot(CurCaps[I - 1].Defined));
      Cs.push_back(mkEq(CurCaps[I - 1].Value, eps()));
    }
    return mkAnd(std::move(Cs));
  }

  /// originals[range] := aux values (the §4.1 capture correspondence).
  TermRef bindRangeTo(std::pair<uint32_t, uint32_t> Range,
                      const std::vector<CaptureVar> &Aux) {
    std::vector<TermRef> Cs;
    for (uint32_t I = Range.first; I <= Range.second; ++I) {
      const CaptureVar &A = Aux[I - Range.first];
      Cs.push_back(mkEq(CurCaps[I - 1].Defined, A.Defined));
      Cs.push_back(mkEq(CurCaps[I - 1].Value, A.Value));
    }
    return mkAnd(std::move(Cs));
  }

  /// Models \p Body matching \p W with fresh (auxiliary) capture variables
  /// for every capture inside; fills \p Aux with them in index order.
  TermRef modelCopy(const RegexNode &Body, TermRef W,
                    std::vector<CaptureVar> &Aux) {
    auto Range = captureRange(Body);
    if (!Range || !Opts.ModelCaptures)
      return model(Body, std::move(W));
    std::vector<CaptureVar> Saved;
    for (uint32_t I = Range->first; I <= Range->second; ++I) {
      Saved.push_back(CurCaps[I - 1]);
      std::string N = Prefix + "!x" + std::to_string(Counter++);
      CaptureVar Fresh{mkBoolVar(N + "d"), mkStrVar(N + "v")};
      Aux.push_back(Fresh);
      CurCaps[I - 1] = Fresh;
    }
    TermRef C = model(Body, std::move(W));
    for (uint32_t I = Range->first; I <= Range->second; ++I)
      CurCaps[I - 1] = Saved[I - Range->first];
    return C;
  }

  //===------------------------------------------------------------------===//
  // Table 2 / Table 3 rules
  //===------------------------------------------------------------------===//

  /// The set of code points a CharClass atom can match in this regex.
  CharSet effectiveClass(const CharClassNode &C) const {
    return C.effectiveSet(R.flags().IgnoreCase, R.flags().Unicode)
        .minus(CharSet::metas());
  }

  /// For a part of a concatenation: a constant term when the node is a
  /// literal character (singleton class), so the word equation carries the
  /// constant directly instead of a variable plus a membership constraint.
  std::optional<TermRef> literalTerm(const RegexNode &N) const {
    if (!Opts.FoldLiteralChars)
      return std::nullopt;
    const auto *C = dynCast<CharClassNode>(&N);
    if (!C)
      return std::nullopt;
    CharSet S = effectiveClass(*C);
    if (S.size() != 1)
      return std::nullopt;
    return mkStrConst(UString(1, *S.first()));
  }

  TermRef model(const RegexNode &N, TermRef W) {
    switch (N.kind()) {
    case NodeKind::CharClass: {
      const auto &C = cast<CharClassNode>(N);
      CharSet S = effectiveClass(C);
      if (S.size() == 1)
        return mkEq(std::move(W), mkStrConst(UString(1, *S.first())));
      return mkInRe(std::move(W), cClass(std::move(S)));
    }
    case NodeKind::Concat: {
      const auto &C = cast<ConcatNode>(N);
      if (C.Parts.empty())
        return mkEq(std::move(W), eps());
      if (C.Parts.size() == 1)
        return model(*C.Parts[0], std::move(W));
      // Literal characters become constants in the word equation; only
      // structured parts get fresh segment variables.
      std::vector<TermRef> Parts;
      std::vector<size_t> Structured; // indices into C.Parts needing models
      for (size_t I = 0; I < C.Parts.size(); ++I) {
        if (std::optional<TermRef> Lit = literalTerm(*C.Parts[I])) {
          Parts.push_back(*Lit);
        } else {
          Parts.push_back(freshStr("w"));
          Structured.push_back(I);
        }
      }
      std::vector<TermRef> Conj;
      Conj.push_back(eqConcat(W, Parts));
      size_t NextStructured = 0;
      for (size_t I = 0; I < C.Parts.size(); ++I) {
        if (NextStructured < Structured.size() &&
            Structured[NextStructured] == I) {
          Conj.push_back(model(*C.Parts[I], Parts[I]));
          ++NextStructured;
        }
        PrefixParts.push_back(Parts[I]);
      }
      for (size_t I = 0; I < C.Parts.size(); ++I)
        PrefixParts.pop_back();
      return mkAnd(std::move(Conj));
    }
    case NodeKind::Alternation: {
      const auto &A = cast<AlternationNode>(N);
      std::vector<TermRef> Branches;
      for (size_t I = 0; I < A.Alternatives.size(); ++I) {
        std::vector<TermRef> B;
        B.push_back(model(*A.Alternatives[I], W));
        // Captures of the non-matching alternatives are undefined.
        for (size_t J = 0; J < A.Alternatives.size(); ++J)
          if (J != I)
            B.push_back(undefRange(captureRange(*A.Alternatives[J])));
        Branches.push_back(mkAnd(std::move(B)));
      }
      return mkOr(std::move(Branches));
    }
    case NodeKind::Group: {
      const auto &G = cast<GroupNode>(N);
      if (!G.isCapturing() || !Opts.ModelCaptures)
        return model(*G.Body, std::move(W));
      const CaptureVar &C = CurCaps[G.CaptureIndex - 1];
      return mkAnd({model(*G.Body, W), C.Defined, mkEq(C.Value, W)});
    }
    case NodeKind::Quantifier:
      return quantModel(cast<QuantifierNode>(N), std::move(W));
    case NodeKind::Backreference:
      return backrefModel(cast<BackreferenceNode>(N), std::move(W));
    case NodeKind::Anchor: {
      const auto &An = cast<AnchorNode>(N);
      CharSet Marks;
      if (An.Which == AnchorKind::Caret) {
        Marks.addChar(MetaStart);
        if (Multiline)
          Marks.addSet(CharSet::lineTerminators());
        return mkAnd(
            {mkEq(std::move(W), eps()),
             mkInRe(prefixExpr(), cConcat(cAnyStar(), cClass(Marks)))});
      }
      Marks.addChar(MetaEnd);
      if (Multiline)
        Marks.addSet(CharSet::lineTerminators());
      auto [Rest, Pin] = restVar();
      return mkAnd({mkEq(std::move(W), eps()), Pin,
                    mkInRe(Rest, cConcat(cClass(Marks), cAnyStar()))});
    }
    case NodeKind::WordBoundary: {
      const auto &B = cast<WordBoundaryNode>(N);
      auto [Rest, Pin] = restVar();
      CRegexRef WordC = cClass(CharSet::wordChars());
      CRegexRef NonWordC = cClass(CharSet::wordChars().complement());
      TermRef LW = mkInRe(prefixExpr(), cConcat(cAnyStar(), WordC));
      TermRef LN = mkInRe(prefixExpr(), cConcat(cAnyStar(), NonWordC));
      TermRef RW = mkInRe(Rest, cConcat(WordC, cAnyStar()));
      TermRef RN = mkInRe(Rest, cConcat(NonWordC, cAnyStar()));
      TermRef Cond = B.Negated ? mkOr(mkAnd(LW, RW), mkAnd(LN, RN))
                               : mkOr(mkAnd(LN, RW), mkAnd(LW, RN));
      return mkAnd({mkEq(std::move(W), eps()), Pin, Cond});
    }
    case NodeKind::Lookahead:
      return lookaheadModel(cast<LookaheadNode>(N), std::move(W));
    }
    assert(false && "unknown node kind");
    return mkFalse();
  }

  TermRef lookaheadModel(const LookaheadNode &L, TermRef W) {
    if (L.Behind)
      return lookbehindModel(L, std::move(W));
    auto [Rest, Pin] = restVar();
    auto Range = captureRange(*L.Body);
    if (!L.Negated) {
      // (?=t1): Rest ∈ Lc(t1 · Σ*), captures inside bind normally
      // (Table 2 Positive Lookahead).
      TermRef WA = freshStr("la");
      TermRef Tail = freshStr("lat");
      TermRef Split = eqConcat(Rest, {WA, Tail});
      TermRef Body = model(*L.Body, WA);
      return mkAnd({mkEq(std::move(W), eps()), Pin, Split, Body});
    }
    // (?!t1): Rest ∉ Lc(t1 · Σ*); captures inside are undefined (a
    // succeeding negative lookahead restores the original match state).
    TermRef Undef = undefRange(Range);
    RegularApprox A = approximateRegularEx(*L.Body, R, AOpts);
    if (A.Exact)
      return mkAnd({mkEq(std::move(W), eps()), Pin,
                    mkNotInRe(Rest, cConcat(A.Re, cAnyStar())), Undef});
    // Model the body against throwaway capture variables and negate
    // (§4.4: splits stay existential under negation; CEGAR repairs the
    // slack).
    TermRef WA = freshStr("la");
    TermRef Tail = freshStr("lat");
    std::vector<CaptureVar> Throwaway;
    TermRef Inner = mkAnd(eqConcat(Rest, {WA, Tail}),
                          modelCopy(*L.Body, WA, Throwaway));
    return mkAnd(
        {mkEq(std::move(W), eps()), Pin, mkNot(Inner), Undef});
  }

  /// ES2018 lookbehind, the mirror image of the Table-2 lookahead rules on
  /// the accumulated left context: (?<=t1) asserts prefix = Head ++ wb with
  /// (wb, C...) ∈ Lc(t1); (?<!t1) asserts prefix ∉ L(Σ* · t̂1). Matching
  /// precedence inside the assertion (the engine matches right-to-left) is
  /// restored by CEGAR exactly as for every other operator.
  TermRef lookbehindModel(const LookaheadNode &L, TermRef W) {
    assert(L.Behind && "not a lookbehind");
    auto Range = captureRange(*L.Body);
    TermRef Pre = prefixExpr();
    if (!L.Negated) {
      TermRef Head = freshStr("lbh");
      TermRef WB = freshStr("lb");
      TermRef Split = eqConcat(Pre, {Head, WB});
      // The body's own position constraints (anchors, nested boundaries)
      // see Head as the context to its left.
      std::vector<TermRef> SavedPrefix = std::move(PrefixParts);
      PrefixParts = {Head};
      TermRef Body = model(*L.Body, WB);
      PrefixParts = std::move(SavedPrefix);
      return mkAnd({mkEq(std::move(W), eps()), Split, Body});
    }
    TermRef Undef = undefRange(Range);
    RegularApprox A = approximateRegularEx(*L.Body, R, AOpts);
    if (A.Exact)
      return mkAnd({mkEq(std::move(W), eps()),
                    mkNotInRe(Pre, cConcat(cAnyStar(), A.Re)), Undef});
    TermRef Head = freshStr("lbh");
    TermRef WB = freshStr("lb");
    std::vector<CaptureVar> Throwaway;
    std::vector<TermRef> SavedPrefix = std::move(PrefixParts);
    PrefixParts = {Head};
    TermRef Inner = mkAnd(eqConcat(Pre, {Head, WB}),
                          modelCopy(*L.Body, WB, Throwaway));
    PrefixParts = std::move(SavedPrefix);
    return mkAnd({mkEq(std::move(W), eps()), mkNot(Inner), Undef});
  }

  TermRef backrefModel(const BackreferenceNode &B, TermRef W) {
    BackrefType Ty = BrTypes.count(&B) ? BrTypes.at(&B)
                                       : BackrefType::Empty;
    if (Ty == BackrefType::Empty || B.Index > R.numCaptures())
      return mkEq(std::move(W), eps());
    if (!Opts.ModelCaptures) {
      // Capture-free level: widen to the group's language (overapprox).
      const GroupNode *G = findGroup(B.Index);
      CRegexRef Lang = G ? cOpt(approxNode(*G->Body)) : cEpsilon();
      return mkInRe(std::move(W), std::move(Lang));
    }
    // Table 3 immutable rule; mutable references reach this point inside
    // unrolled copies where CurCaps holds the per-iteration variable, which
    // realizes the sound per-iteration semantics up to the unroll bound.
    const CaptureVar &C = CurCaps[B.Index - 1];
    if (R.flags().IgnoreCase) {
      // Under the i flag the backreference matches any case-folded variant
      // of the capture. Character-wise folding between two string
      // variables is not expressible in the string theory, so
      // overapproximate with length equality plus membership in the
      // case-closed group language; CEGAR removes the slack (§5).
      const GroupNode *G = findGroup(B.Index);
      TermRef Rel = mkEq(mkStrLen(W), mkStrLen(C.Value));
      if (G)
        Rel = mkAnd(Rel, mkInRe(W, approxNode(*G->Body)));
      return mkOr(mkAnd(mkNot(C.Defined), mkEq(W, eps())),
                  mkAnd(C.Defined, Rel));
    }
    return mkOr(mkAnd(mkNot(C.Defined), mkEq(W, eps())),
                mkAnd(C.Defined, mkEq(C.Value, W)));
  }

  const GroupNode *findGroup(uint32_t Index) {
    const GroupNode *Out = nullptr;
    forEachNode(R.root(), [&](const RegexNode &N) {
      if (const auto *G = dynCast<GroupNode>(&N))
        if (G->CaptureIndex == Index)
          Out = G;
    });
    return Out;
  }

  //===------------------------------------------------------------------===//
  // Quantifiers (Table 2 quantification + §4.1 capture correspondence)
  //===------------------------------------------------------------------===//

  TermRef quantModel(const QuantifierNode &Q, TermRef W) {
    uint64_t Min = Q.Min;
    bool Unbounded = Q.Max == QuantifierNode::Unbounded;
    bool HasBr = containsBackref(*Q.Body);
    auto Range = Opts.ModelCaptures ? captureRange(*Q.Body) : std::nullopt;

    if (Q.Max == 0)
      return mkAnd(mkEq(std::move(W), eps()), undefRange(Range));

    // Fast path: quantified plain-regular subterms (\w+, [0-9]*, (?:ab)+,
    // ...) need no decomposition at all — one classical membership is
    // exact and much cheaper for the solver.
    if ((!Range || !Opts.ModelCaptures) && isPlainRegular(*Q.Body))
      return mkInRe(std::move(W), approxNode(Q));

    if (HasBr && Unbounded && Opts.PaperMutableBackrefRule && Min <= 1)
      return paperMutableRule(Q, std::move(W), Range);

    size_t Limit = HasBr ? Opts.BackrefQuantifierUnroll
                         : Opts.RepetitionUnrollLimit;
    if (Min > Limit) {
      // Clamp; the star tail overapproximates the remaining mandatory
      // copies (CEGAR rejects too-short words via the concrete matcher).
      Min = Limit;
      Unbounded = true;
    }
    size_t OptCount = 0;
    bool StarTail = false;
    if (Unbounded) {
      if (HasBr)
        OptCount = Opts.BackrefQuantifierUnroll; // bounded (underapprox)
      else
        StarTail = true;
    } else {
      uint64_t Span = Q.Max - Min;
      if (Span > Limit) {
        if (HasBr)
          OptCount = Limit; // bounded (underapprox)
        else
          StarTail = true; // overapprox of the bounded tail
      } else {
        OptCount = Span;
      }
    }

    std::vector<TermRef> Conj;
    std::vector<TermRef> Parts;
    size_t Pushed = 0;
    std::vector<std::vector<CaptureVar>> MandAux;

    for (uint64_t I = 0; I < Min; ++I) {
      TermRef CW = freshStr("q");
      Parts.push_back(CW);
      std::vector<CaptureVar> Aux;
      Conj.push_back(modelCopy(*Q.Body, CW, Aux));
      MandAux.push_back(std::move(Aux));
      PrefixParts.push_back(CW);
      ++Pushed;
    }

    if (StarTail) {
      // Table 2 backreference-free quantification: w = w1 ++ w2 with
      // w1 ∈ L(t̂1*) and (w2, C...) ∈ Lc(t1 | ε), plus the emptiness
      // implication folded into the ε branch.
      TermRef StarVar = freshStr("qs");
      Parts.push_back(StarVar);
      Conj.push_back(mkInRe(StarVar, cStar(approxNode(*Q.Body))));
      PrefixParts.push_back(StarVar);
      ++Pushed;

      TermRef LastVar = freshStr("ql");
      Parts.push_back(LastVar);
      std::vector<CaptureVar> Aux;
      TermRef CopyC = modelCopy(*Q.Body, LastVar, Aux);
      TermRef Engage = CopyC;
      if (Range)
        Engage = mkAnd(Engage, bindRangeTo(*Range, Aux));
      TermRef Fallback =
          Min > 0 && Range ? bindRangeTo(*Range, MandAux.back())
                           : undefRange(Range);
      TermRef Skip = mkAnd({mkEq(LastVar, eps()), mkEq(StarVar, eps()),
                            Fallback});
      Conj.push_back(mkOr(std::move(Engage), std::move(Skip)));
      PrefixParts.push_back(LastVar);
      ++Pushed;
    } else {
      std::vector<TermRef> Engaged;
      std::vector<std::vector<CaptureVar>> OptAux;
      for (size_t J = 0; J < OptCount; ++J) {
        TermRef CW = freshStr("q");
        Parts.push_back(CW);
        TermRef E = freshBool("e");
        std::vector<CaptureVar> Aux;
        TermRef CopyC = modelCopy(*Q.Body, CW, Aux);
        TermRef SkipAux = mkTrue();
        if (Opts.ModelCaptures && Range) {
          std::vector<TermRef> U;
          for (const CaptureVar &A : Aux) {
            U.push_back(mkNot(A.Defined));
            U.push_back(mkEq(A.Value, eps()));
          }
          SkipAux = mkAnd(std::move(U));
        }
        Conj.push_back(mkOr(mkAnd(E, CopyC),
                            mkAnd({mkNot(E), mkEq(CW, eps()), SkipAux})));
        if (J > 0)
          Conj.push_back(mkImplies(E, Engaged.back()));
        Engaged.push_back(E);
        OptAux.push_back(std::move(Aux));
        PrefixParts.push_back(CW);
        ++Pushed;
      }
      if (Range) {
        TermRef Base = Min > 0 ? bindRangeTo(*Range, MandAux.back())
                               : undefRange(Range);
        if (OptCount == 0) {
          Conj.push_back(Base);
        } else {
          Conj.push_back(mkImplies(mkNot(Engaged.front()), Base));
          for (size_t J = 0; J < OptCount; ++J) {
            TermRef Guard =
                J + 1 < OptCount
                    ? mkAnd(Engaged[J], mkNot(Engaged[J + 1]))
                    : Engaged[J];
            Conj.push_back(
                mkImplies(Guard, bindRangeTo(*Range, OptAux[J])));
          }
        }
      }
    }

    for (size_t I = 0; I < Pushed; ++I)
      PrefixParts.pop_back();
    Conj.insert(Conj.begin(),
                Parts.empty() ? mkEq(W, eps()) : eqConcat(W, Parts));
    return mkAnd(std::move(Conj));
  }

  /// Table 3, last row: the paper's practical-but-unsound rule for mutable
  /// backreferences — every iteration matches the same word. Kept for the
  /// ablation bench; the default bounded unrolling realizes the sound rule
  /// up to the bound.
  TermRef paperMutableRule(const QuantifierNode &Q, TermRef W,
                           std::optional<std::pair<uint32_t, uint32_t>>
                               Range) {
    TermRef B = freshStr("mb");
    std::vector<CaptureVar> Aux;
    TermRef One = modelCopy(*Q.Body, B, Aux);
    TermRef Bind = Range ? bindRangeTo(*Range, Aux) : mkTrue();
    std::vector<TermRef> Reps;
    for (size_t K = 1; K <= Opts.BackrefQuantifierUnroll; ++K) {
      std::vector<TermRef> Copies(K, B);
      Reps.push_back(mkEq(W, mkConcat(Copies)));
    }
    TermRef NonEmpty = mkAnd({One, Bind, mkOr(std::move(Reps))});
    if (Q.Min >= 1)
      return NonEmpty;
    TermRef Empty = mkAnd(mkEq(std::move(W), eps()), undefRange(Range));
    return mkOr(std::move(Empty), std::move(NonEmpty));
  }
};

} // namespace recap

ModelBuilder::ModelBuilder(const Regex &R, std::string VarPrefix,
                           ModelOptions Opts)
    : R(R), VarPrefix(std::move(VarPrefix)), Opts(Opts) {}

SymbolicMatch ModelBuilder::build(TermRef Input) {
  ModelGen Gen(R, VarPrefix, Opts);
  return Gen.run(std::move(Input));
}

//===----------------------------------------------------------------------===//
// Template instantiation
//===----------------------------------------------------------------------===//

namespace {

/// Memoized rewrite over the term DAG: renames prefixed variables,
/// substitutes the placeholder input, shares constants, and rebuilds inner
/// nodes through the builders.
class TermInstantiator {
public:
  TermInstantiator(const std::string &OldPrefix, const std::string &NewPrefix,
                   const Term *OldInput, TermRef NewInput)
      : OldPrefix(OldPrefix), NewPrefix(NewPrefix), OldInput(OldInput),
        NewInput(std::move(NewInput)) {}

  TermRef rewrite(const TermRef &T) {
    if (!T)
      return nullptr;
    if (T.get() == OldInput)
      return NewInput;
    auto It = Memo.find(T.get());
    if (It != Memo.end())
      return It->second;
    TermRef Out = rewriteUncached(T);
    Memo.emplace(T.get(), Out);
    return Out;
  }

private:
  TermRef rewriteUncached(const TermRef &T) {
    if (T->isVar()) {
      if (T->Name.compare(0, OldPrefix.size(), OldPrefix) != 0)
        return T;
      std::string Fresh = NewPrefix + T->Name.substr(OldPrefix.size());
      switch (T->Kind) {
      case TermKind::BoolVar:
        return mkBoolVar(std::move(Fresh));
      case TermKind::StrVar:
        return mkStrVar(std::move(Fresh));
      default:
        return mkIntVar(std::move(Fresh));
      }
    }
    if (T->Kids.empty())
      return T;
    std::vector<TermRef> Kids;
    Kids.reserve(T->Kids.size());
    bool Changed = false;
    for (const TermRef &K : T->Kids) {
      Kids.push_back(rewrite(K));
      Changed |= Kids.back().get() != K.get();
    }
    if (!Changed)
      return T;
    switch (T->Kind) {
    case TermKind::Not:
      return mkNot(std::move(Kids[0]));
    case TermKind::And:
      return mkAnd(std::move(Kids));
    case TermKind::Or:
      return mkOr(std::move(Kids));
    case TermKind::Implies:
      return mkImplies(std::move(Kids[0]), std::move(Kids[1]));
    case TermKind::Eq:
      return mkEq(std::move(Kids[0]), std::move(Kids[1]));
    case TermKind::InRe:
      return mkInRe(std::move(Kids[0]), T->Re);
    case TermKind::Le:
      return mkLe(std::move(Kids[0]), std::move(Kids[1]));
    case TermKind::Lt:
      return mkLt(std::move(Kids[0]), std::move(Kids[1]));
    case TermKind::Concat:
      return mkConcat(std::move(Kids));
    case TermKind::Add:
      return mkAdd(std::move(Kids[0]), std::move(Kids[1]));
    case TermKind::StrLen:
      return mkStrLen(std::move(Kids[0]));
    default:
      assert(false && "unexpected term kind during instantiation");
      return T;
    }
  }

  const std::string &OldPrefix;
  const std::string &NewPrefix;
  const Term *OldInput;
  TermRef NewInput;
  std::map<const Term *, TermRef> Memo;
};

} // namespace

SymbolicMatch recap::instantiateSymbolicMatch(const SymbolicMatch &Template,
                                              const std::string &TemplatePrefix,
                                              const std::string &VarPrefix,
                                              const TermRef &TemplateInput,
                                              TermRef Input) {
  TermInstantiator Inst(TemplatePrefix, VarPrefix, TemplateInput.get(),
                        std::move(Input));
  SymbolicMatch Out;
  Out.Input = Inst.rewrite(Template.Input);
  Out.Word = Inst.rewrite(Template.Word);
  Out.Decoration = Inst.rewrite(Template.Decoration);
  Out.MatchConstraint = Inst.rewrite(Template.MatchConstraint);
  Out.MatchStart = Inst.rewrite(Template.MatchStart);
  Out.C0 = {Inst.rewrite(Template.C0.Defined),
            Inst.rewrite(Template.C0.Value)};
  Out.Captures.reserve(Template.Captures.size());
  for (const CaptureVar &C : Template.Captures)
    Out.Captures.push_back(
        {Inst.rewrite(C.Defined), Inst.rewrite(C.Value)});
  Out.Prefix = Inst.rewrite(Template.Prefix);
  Out.Suffix = Inst.rewrite(Template.Suffix);
  Out.NegationExact = Template.NegationExact;
  Out.NoMatchConstraint = Inst.rewrite(Template.NoMatchConstraint);
  return Out;
}
