//===- model/Approx.cpp - Regular overapproximation of ES6 regexes --------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/Approx.h"

#include "regex/Features.h"

#include <cassert>
#include <map>
#include <set>

using namespace recap;

namespace {

class Approximator {
public:
  Approximator(const Regex &R, const ApproxOptions &Opts)
      : R(R), Opts(Opts) {
    forEachNode(R.root(), [&](const RegexNode &N) {
      if (const auto *G = dynCast<GroupNode>(&N))
        if (G->isCapturing())
          Groups[G->CaptureIndex] = G;
    });
  }

  CRegexRef approx(const RegexNode &N) {
    switch (N.kind()) {
    case NodeKind::Alternation: {
      std::vector<CRegexRef> Kids;
      for (const NodePtr &A : cast<AlternationNode>(N).Alternatives)
        Kids.push_back(approx(*A));
      return cUnion(std::move(Kids));
    }
    case NodeKind::Concat: {
      std::vector<CRegexRef> Kids;
      for (const NodePtr &P : cast<ConcatNode>(N).Parts)
        Kids.push_back(approx(*P));
      return cConcat(std::move(Kids));
    }
    case NodeKind::Quantifier: {
      const auto &Q = cast<QuantifierNode>(N);
      CRegexRef Body = approx(*Q.Body);
      uint64_t Min = std::min<uint64_t>(Q.Min, Opts.RepetitionUnrollLimit);
      std::vector<CRegexRef> Parts;
      for (uint64_t I = 0; I < Min; ++I)
        Parts.push_back(Body);
      if (Q.Max == QuantifierNode::Unbounded ||
          Q.Min > Opts.RepetitionUnrollLimit ||
          Q.Max - Q.Min > Opts.RepetitionUnrollLimit) {
        // Unbounded (or clamped) tail: overapproximate with a star.
        if (Q.Max != QuantifierNode::Unbounded)
          Exact = false;
        Parts.push_back(cStar(Body));
      } else {
        for (uint64_t I = 0; I < Q.Max - Q.Min; ++I)
          Parts.push_back(cOpt(Body));
      }
      return cConcat(std::move(Parts));
    }
    case NodeKind::Group:
      return approx(*cast<GroupNode>(N).Body);
    case NodeKind::Lookahead:
      // Zero-width: dropping the constraint is the sound direction.
      Exact = false;
      return cEpsilon();
    case NodeKind::Backreference: {
      const auto &B = cast<BackreferenceNode>(N);
      auto It = Groups.find(B.Index);
      if (It == Groups.end())
        return cEpsilon(); // empty backreference (Definition 2)
      Exact = false;
      // The captured word lies in the group's language; an unset capture
      // contributes ε. Case-folded variants are covered because class
      // approximation applies the closure below.
      if (Active.count(B.Index))
        return cEpsilon(); // self-recursive reference is always unset
      Active.insert(B.Index);
      CRegexRef G = approx(*It->second->Body);
      Active.erase(B.Index);
      return cOpt(std::move(G));
    }
    case NodeKind::CharClass: {
      const auto &C = cast<CharClassNode>(N);
      CharSet S = C.effectiveSet(Opts.IgnoreCase, Opts.Unicode);
      if (Opts.ExcludeMetaChars)
        S = S.minus(CharSet::metas());
      return cClass(std::move(S));
    }
    case NodeKind::Anchor:
    case NodeKind::WordBoundary:
      Exact = false;
      return cEpsilon();
    }
    assert(false && "unknown node kind");
    return cEpsilon();
  }

  bool exact() const { return Exact; }

private:
  const Regex &R;
  const ApproxOptions &Opts;
  std::map<uint32_t, const GroupNode *> Groups;
  std::set<uint32_t> Active; // guards recursive backreference chains
  bool Exact = true;
};

} // namespace

RegularApprox recap::approximateRegularEx(const RegexNode &N,
                                          const Regex &WholeRegex,
                                          const ApproxOptions &Opts) {
  Approximator A(WholeRegex, Opts);
  RegularApprox Out;
  Out.Re = A.approx(N);
  Out.Exact = A.exact();
  return Out;
}

CRegexRef recap::approximateRegular(const RegexNode &N,
                                    const Regex &WholeRegex,
                                    const ApproxOptions &Opts) {
  return approximateRegularEx(N, WholeRegex, Opts).Re;
}

CRegexRef recap::approximateRegular(const Regex &R,
                                    size_t RepetitionUnrollLimit) {
  ApproxOptions Opts;
  Opts.IgnoreCase = R.flags().IgnoreCase;
  Opts.Unicode = R.flags().Unicode;
  Opts.RepetitionUnrollLimit = RepetitionUnrollLimit;
  return approximateRegular(R.root(), R, Opts);
}

std::optional<CRegexRef>
recap::anchoredExactLanguage(const Regex &R, const ApproxOptions &Opts) {
  // Under the m flag ^/$ also match at line breaks, so `^core$` no
  // longer pins the whole subject.
  if (R.flags().Multiline)
    return std::nullopt;
  const auto *C = dynCast<ConcatNode>(&R.root());
  if (!C || C->Parts.size() < 2)
    return std::nullopt;
  const auto *Head = dynCast<AnchorNode>(C->Parts.front().get());
  const auto *Tail = dynCast<AnchorNode>(C->Parts.back().get());
  if (!Head || Head->Which != AnchorKind::Caret || !Tail ||
      Tail->Which != AnchorKind::Dollar)
    return std::nullopt;

  // Approximate the core between the anchors and require exactness:
  // any nested anchor, lookaround, backreference, word boundary, or
  // clamped repetition flips Exact off, and each of those breaks the
  // match-anywhere ⟺ whole-string-membership equivalence.
  std::vector<CRegexRef> Core;
  Core.reserve(C->Parts.size() - 2);
  for (size_t I = 1; I + 1 < C->Parts.size(); ++I) {
    RegularApprox A = approximateRegularEx(*C->Parts[I], R, Opts);
    if (!A.Exact)
      return std::nullopt;
    Core.push_back(std::move(A.Re));
  }
  if (Core.empty())
    return cEpsilon(); // the /^$/ family: only the empty string
  return cConcat(std::move(Core));
}
