//===- model/Approx.h - Regular overapproximation of ES6 regexes -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// approximateRegular computes the paper's t̂ (§4.2): a *classical* regular
/// expression whose language contains every word the ES6 term can match.
/// Captures become plain grouping, backreferences widen to the referenced
/// group's language (closed under case folding when the i flag is set, so
/// folded backreference matches stay covered), and zero-width assertions
/// drop to ε. Overapproximation is the invariant the model's soundness
/// rests on: the Kleene-star rule (Table 2) feeds t̂₁* to the solver and
/// CEGAR eliminates the slack.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_MODEL_APPROX_H
#define RECAP_MODEL_APPROX_H

#include "automata/ClassicalRegex.h"
#include "regex/Regex.h"

namespace recap {

struct ApproxOptions {
  bool IgnoreCase = false;
  bool Unicode = false;
  /// {m,n} repetitions above this bound approximate the tail with a star.
  size_t RepetitionUnrollLimit = 24;
  /// Remove the meta markers from every character class (solver-side
  /// languages must not match them). Disable for tests that compare
  /// against the plain matcher.
  bool ExcludeMetaChars = true;
};

/// Result of the approximation: Exact is true when no overapproximating
/// step was taken (no assertion dropped, no backreference widened, no
/// repetition clamped) — in that case Re's language *equals* the term's.
struct RegularApprox {
  CRegexRef Re;
  bool Exact = true;
};

/// Overapproximates the language of \p N as a classical regex.
RegularApprox approximateRegularEx(const RegexNode &N,
                                   const Regex &WholeRegex,
                                   const ApproxOptions &Opts);

/// Overapproximates the language of \p N as a classical regex.
CRegexRef approximateRegular(const RegexNode &N, const Regex &WholeRegex,
                             const ApproxOptions &Opts);

/// Convenience wrapper for a whole regex (flags read from \p R).
CRegexRef approximateRegular(const Regex &R,
                             size_t RepetitionUnrollLimit = 24);

/// The anchored-exact language of \p R, if it has one: for a `^core$`
/// pattern (top-level concat bracketed by Caret/Dollar, no m flag)
/// whose core approximates *exactly* — no assertion dropped, no
/// backreference widened, no repetition clamped — match-anywhere
/// semantics collapse to whole-string membership, and the returned
/// classical regex satisfies  R matches s  ⟺  s ∈ L(core).  That
/// equivalence is what lets the anchored solver lane (DESIGN.md §8)
/// answer from a product DFA with no CEGAR refinement. Returns nullopt
/// for every shape where the equivalence does not hold; callers must
/// fall back to the wrapped overapproximation model.
std::optional<CRegexRef> anchoredExactLanguage(const Regex &R,
                                               const ApproxOptions &Opts);

} // namespace recap

#endif // RECAP_MODEL_APPROX_H
