//===- regex/Features.h - Regex feature analysis ----------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature analysis over regex ASTs: the per-feature flags behind the
/// paper's survey (Tables 4 and 5) and the backreference-type
/// classification of Definition 2 (empty / mutable / immutable) that the
/// model generator depends on.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_REGEX_FEATURES_H
#define RECAP_REGEX_FEATURES_H

#include "regex/Regex.h"

#include <map>
#include <vector>

namespace recap {

/// Definition 2 of the paper.
enum class BackrefType : uint8_t {
  Empty,     ///< refers to an unclosed/later group; always matches epsilon
  Immutable, ///< single value during any match
  Mutable,   ///< group and backref share a quantified ancestor
};

/// Feature presence flags for one regex (rows of Table 5 plus analysis
/// inputs). All counts are occurrence counts within a single pattern.
struct RegexFeatures {
  unsigned CaptureGroups = 0;
  unsigned NonCapturingGroups = 0;
  unsigned Backreferences = 0;
  unsigned QuantifiedBackreferences = 0; ///< backref itself under quantifier
  unsigned MutableBackreferences = 0;
  unsigned EmptyBackreferences = 0;
  unsigned Lookaheads = 0;  ///< positive and negative
  unsigned Lookbehinds = 0; ///< ES2018 extension, positive and negative
  unsigned NamedGroups = 0; ///< ES2018 (?<name>...) groups
  unsigned NamedBackreferences = 0; ///< ES2018 \k<name>
  unsigned WordBoundaries = 0;
  unsigned Anchors = 0;
  unsigned CharacterClasses = 0; ///< explicit [...] atoms
  unsigned ClassRanges = 0;      ///< classes containing an a-b range
  unsigned KleeneStar = 0;
  unsigned KleeneStarLazy = 0;
  unsigned KleenePlus = 0;
  unsigned KleenePlusLazy = 0;
  unsigned Optional = 0;
  unsigned Repetition = 0; ///< {m}/{m,}/{m,n}
  unsigned RepetitionLazy = 0;

  bool hasCaptureGroups() const { return CaptureGroups != 0; }
  bool hasBackreferences() const { return Backreferences != 0; }
  bool hasQuantifiedBackreferences() const {
    return QuantifiedBackreferences != 0;
  }
  /// True if the pattern stays within classical regular language territory
  /// (no captures needed, no backreferences, no lookarounds).
  bool isClassical() const {
    return Backreferences == 0 && Lookaheads == 0 && Lookbehinds == 0 &&
           WordBoundaries == 0;
  }

  /// Field-wise equality; snapshot loads verify recorded features against
  /// the recomputed analysis (runtime/RuntimeSnapshot.cpp).
  bool operator==(const RegexFeatures &O) const = default;
};

/// Computes feature counts for \p R.
RegexFeatures analyzeFeatures(const Regex &R);

/// Classifies every backreference occurrence in \p R per Definition 2.
/// The result maps each BackreferenceNode (by pointer) to its type.
std::map<const BackreferenceNode *, BackrefType>
classifyBackreferences(const Regex &R);

} // namespace recap

#endif // RECAP_REGEX_FEATURES_H
