//===- regex/Features.cpp - Regex feature analysis ------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Features.h"

#include <algorithm>

using namespace recap;

namespace {

/// Walks the AST tracking the stack of enclosing quantifiers so that
/// Definition 2's "both t and \k are subterms of some quantified term Q"
/// can be decided, and recording source order for the post-order condition.
class BackrefWalker {
public:
  explicit BackrefWalker(const Regex &R) : R(R) {}

  std::map<const BackreferenceNode *, BackrefType> run() {
    visit(R.root());
    std::map<const BackreferenceNode *, BackrefType> Out;
    for (const BackrefUse &U : Uses) {
      if (U.Index > R.numCaptures() ||
          !GroupEnd.count(U.Index) ||
          GroupEnd.at(U.Index) > U.SrcBegin) {
        // Group missing entirely, or its closing position comes after the
        // backreference: the backreference can only ever see an unset
        // capture -> empty.
        Out[U.Node] = BackrefType::Empty;
        continue;
      }
      // Mutable iff the use and the group share an enclosing quantifier.
      const std::vector<const QuantifierNode *> &GQ =
          GroupQuantifiers.at(U.Index);
      bool Shared = std::any_of(
          U.Quantifiers.begin(), U.Quantifiers.end(),
          [&](const QuantifierNode *Q) {
            return std::find(GQ.begin(), GQ.end(), Q) != GQ.end();
          });
      Out[U.Node] = Shared ? BackrefType::Mutable : BackrefType::Immutable;
    }
    return Out;
  }

private:
  struct BackrefUse {
    const BackreferenceNode *Node;
    uint32_t Index;
    uint32_t SrcBegin;
    std::vector<const QuantifierNode *> Quantifiers;
  };

  const Regex &R;
  std::vector<const QuantifierNode *> QuantStack;
  std::map<uint32_t, uint32_t> GroupEnd;
  std::map<uint32_t, std::vector<const QuantifierNode *>> GroupQuantifiers;
  std::vector<BackrefUse> Uses;

  void visit(const RegexNode &N) {
    switch (N.kind()) {
    case NodeKind::Alternation:
      for (const NodePtr &A : cast<AlternationNode>(N).Alternatives)
        visit(*A);
      break;
    case NodeKind::Concat:
      for (const NodePtr &P : cast<ConcatNode>(N).Parts)
        visit(*P);
      break;
    case NodeKind::Quantifier: {
      const auto &Q = cast<QuantifierNode>(N);
      // A quantifier with Max <= 1 cannot iterate, so it cannot make a
      // backreference mutable.
      bool Iterates = Q.Max > 1;
      if (Iterates)
        QuantStack.push_back(&Q);
      visit(*Q.Body);
      if (Iterates)
        QuantStack.pop_back();
      break;
    }
    case NodeKind::Group: {
      const auto &G = cast<GroupNode>(N);
      if (G.isCapturing()) {
        GroupEnd[G.CaptureIndex] = G.srcEnd();
        GroupQuantifiers[G.CaptureIndex] = QuantStack;
      }
      visit(*G.Body);
      break;
    }
    case NodeKind::Lookahead:
      visit(*cast<LookaheadNode>(N).Body);
      break;
    case NodeKind::Backreference: {
      const auto &B = cast<BackreferenceNode>(N);
      Uses.push_back({&B, B.Index, B.srcBegin(), QuantStack});
      break;
    }
    case NodeKind::CharClass:
    case NodeKind::Anchor:
    case NodeKind::WordBoundary:
      break;
    }
  }
};

} // namespace

std::map<const BackreferenceNode *, BackrefType>
recap::classifyBackreferences(const Regex &R) {
  return BackrefWalker(R).run();
}

RegexFeatures recap::analyzeFeatures(const Regex &R) {
  RegexFeatures F;
  // Quantified-backreference detection needs the quantifier stack; reuse
  // the classifier walk for mutable/empty and track "under any quantifier"
  // separately below.
  auto Types = classifyBackreferences(R);
  for (const auto &[Node, Type] : Types) {
    (void)Node;
    if (Type == BackrefType::Mutable)
      ++F.MutableBackreferences;
    if (Type == BackrefType::Empty)
      ++F.EmptyBackreferences;
  }

  // Pre-order walk with an "inside quantifier" depth counter.
  unsigned QuantDepth = 0;
  std::function<void(const RegexNode &)> Visit =
      [&](const RegexNode &N) {
        switch (N.kind()) {
        case NodeKind::Alternation:
          for (const NodePtr &A : cast<AlternationNode>(N).Alternatives)
            Visit(*A);
          break;
        case NodeKind::Concat:
          for (const NodePtr &P : cast<ConcatNode>(N).Parts)
            Visit(*P);
          break;
        case NodeKind::Quantifier: {
          const auto &Q = cast<QuantifierNode>(N);
          if (Q.isStar())
            Q.Greedy ? ++F.KleeneStar : ++F.KleeneStarLazy;
          else if (Q.isPlus())
            Q.Greedy ? ++F.KleenePlus : ++F.KleenePlusLazy;
          else if (Q.isOptional())
            ++F.Optional;
          else
            Q.Greedy ? ++F.Repetition : ++F.RepetitionLazy;
          QuantDepth += Q.Max > 1 ? 1 : 0;
          Visit(*Q.Body);
          QuantDepth -= Q.Max > 1 ? 1 : 0;
          break;
        }
        case NodeKind::Group: {
          const auto &G = cast<GroupNode>(N);
          G.isCapturing() ? ++F.CaptureGroups : ++F.NonCapturingGroups;
          if (G.isNamed())
            ++F.NamedGroups;
          Visit(*G.Body);
          break;
        }
        case NodeKind::Lookahead: {
          const auto &L = cast<LookaheadNode>(N);
          L.Behind ? ++F.Lookbehinds : ++F.Lookaheads;
          Visit(*L.Body);
          break;
        }
        case NodeKind::Backreference: {
          const auto &B = cast<BackreferenceNode>(N);
          ++F.Backreferences;
          if (!B.Name.empty())
            ++F.NamedBackreferences;
          if (QuantDepth > 0)
            ++F.QuantifiedBackreferences;
          break;
        }
        case NodeKind::CharClass: {
          const auto &C = cast<CharClassNode>(N);
          if (C.FromExplicitClass)
            ++F.CharacterClasses;
          if (C.HasRange)
            ++F.ClassRanges;
          break;
        }
        case NodeKind::Anchor:
          ++F.Anchors;
          break;
        case NodeKind::WordBoundary:
          ++F.WordBoundaries;
          break;
        }
      };
  Visit(R.root());
  return F;
}
