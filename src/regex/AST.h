//===- regex/AST.h - ES6 regex abstract syntax tree ------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for ES6 regexes (paper §2, Table 1). Nodes use LLVM-style kind tags
/// with classof/cast helpers instead of RTTI. The AST keeps the surface
/// structure (lazy quantifiers, {m,n} repetition, non-capturing groups);
/// the Table-1 rewriting into core terms happens in src/model/.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_REGEX_AST_H
#define RECAP_REGEX_AST_H

#include "support/CharSet.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace recap {

enum class NodeKind : uint8_t {
  Alternation,
  Concat,
  Quantifier,
  Group,
  Lookahead,
  Backreference,
  CharClass,
  Anchor,
  WordBoundary,
};

class RegexNode;
using NodePtr = std::unique_ptr<RegexNode>;

/// Base class of all regex AST nodes.
class RegexNode {
public:
  virtual ~RegexNode() = default;

  NodeKind kind() const { return Kind; }

  /// Source span [Begin, End) in the pattern, for diagnostics and the
  /// backreference-type analysis (Definition 2 uses source positions).
  uint32_t srcBegin() const { return SrcBegin; }
  uint32_t srcEnd() const { return SrcEnd; }
  void setSpan(uint32_t B, uint32_t E) {
    SrcBegin = B;
    SrcEnd = E;
  }

  /// Deep copy.
  virtual NodePtr clone() const = 0;

  /// Unparses the node back to (canonical) pattern syntax.
  std::string str() const;

protected:
  explicit RegexNode(NodeKind K) : Kind(K) {}

private:
  NodeKind Kind;
  uint32_t SrcBegin = 0;
  uint32_t SrcEnd = 0;

  virtual void anchor();
};

/// r1 | r2 | ... (two or more alternatives).
class AlternationNode : public RegexNode {
public:
  std::vector<NodePtr> Alternatives;

  explicit AlternationNode(std::vector<NodePtr> Alts)
      : RegexNode(NodeKind::Alternation), Alternatives(std::move(Alts)) {
    assert(Alternatives.size() >= 2 && "alternation needs >= 2 branches");
  }
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Alternation;
  }
};

/// r1 r2 ... rn; empty sequence denotes epsilon.
class ConcatNode : public RegexNode {
public:
  std::vector<NodePtr> Parts;

  explicit ConcatNode(std::vector<NodePtr> Parts = {})
      : RegexNode(NodeKind::Concat), Parts(std::move(Parts)) {}
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Concat;
  }
};

/// r*, r+, r?, r{m,n} and their lazy variants.
class QuantifierNode : public RegexNode {
public:
  static constexpr uint32_t Unbounded =
      std::numeric_limits<uint32_t>::max();

  NodePtr Body;
  uint32_t Min;
  uint32_t Max; ///< Unbounded for * + {m,}.
  bool Greedy;

  QuantifierNode(NodePtr Body, uint32_t Min, uint32_t Max, bool Greedy)
      : RegexNode(NodeKind::Quantifier), Body(std::move(Body)), Min(Min),
        Max(Max), Greedy(Greedy) {
    assert(Min <= Max && "quantifier range out of order");
  }
  bool isStar() const { return Min == 0 && Max == Unbounded; }
  bool isPlus() const { return Min == 1 && Max == Unbounded; }
  bool isOptional() const { return Min == 0 && Max == 1; }
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Quantifier;
  }
};

/// (r) with CaptureIndex >= 1, or (?:r) with CaptureIndex == 0. Named
/// capture groups (?<name>r) — an ES2018 extension, see DESIGN.md — carry
/// their name; unnamed groups have an empty Name.
class GroupNode : public RegexNode {
public:
  NodePtr Body;
  uint32_t CaptureIndex; ///< 0 for non-capturing groups.
  std::string Name;      ///< UTF-8 group name; empty when unnamed.

  GroupNode(NodePtr Body, uint32_t CaptureIndex, std::string Name = {})
      : RegexNode(NodeKind::Group), Body(std::move(Body)),
        CaptureIndex(CaptureIndex), Name(std::move(Name)) {}
  bool isCapturing() const { return CaptureIndex != 0; }
  bool isNamed() const { return !Name.empty(); }
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Group;
  }
};

/// Lookaround assertions: (?=r) / (?!r), and — as an ES2018 extension
/// beyond the paper's ES6 scope (§2.4 notes ES6 has no lookbehind) —
/// (?<=r) / (?<!r) when Behind is set.
class LookaheadNode : public RegexNode {
public:
  NodePtr Body;
  bool Negated;
  bool Behind; ///< true for lookbehind (?<= / (?<!

  LookaheadNode(NodePtr Body, bool Negated, bool Behind = false)
      : RegexNode(NodeKind::Lookahead), Body(std::move(Body)),
        Negated(Negated), Behind(Behind) {}
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Lookahead;
  }
};

/// \k referring to capture group k (1-based). Named backreferences
/// \k<name> are resolved to their group index by the parser; Name records
/// the surface syntax for printing.
class BackreferenceNode : public RegexNode {
public:
  uint32_t Index;
  std::string Name; ///< non-empty when written as \k<name>

  explicit BackreferenceNode(uint32_t Index, std::string Name = {})
      : RegexNode(NodeKind::Backreference), Index(Index),
        Name(std::move(Name)) {}
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Backreference;
  }
};

/// A literal character, ., \d, or a bracketed class. The set is stored
/// *before* negation and case folding; effectiveSet() applies both, which
/// matches ES6 semantics where negation applies after canonicalization
/// (e.g. /[^a]/i rejects both "a" and "A").
class CharClassNode : public RegexNode {
public:
  CharSet Base;
  bool Negated;
  bool FromExplicitClass; ///< came from [...] syntax (survey feature)
  bool HasRange;          ///< contained an a-b range (survey feature)

  CharClassNode(CharSet Base, bool Negated, bool FromExplicitClass = false,
                bool HasRange = false)
      : RegexNode(NodeKind::CharClass), Base(std::move(Base)),
        Negated(Negated), FromExplicitClass(FromExplicitClass),
        HasRange(HasRange) {}

  /// The set of code points this atom matches under the given flags.
  CharSet effectiveSet(bool IgnoreCase, bool Unicode) const {
    CharSet S = IgnoreCase ? Base.caseClosure(Unicode) : Base;
    return Negated ? S.complement() : S;
  }

  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::CharClass;
  }
};

enum class AnchorKind : uint8_t { Caret, Dollar };

/// ^ or $.
class AnchorNode : public RegexNode {
public:
  AnchorKind Which;

  explicit AnchorNode(AnchorKind Which)
      : RegexNode(NodeKind::Anchor), Which(Which) {}
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::Anchor;
  }
};

/// \b or \B.
class WordBoundaryNode : public RegexNode {
public:
  bool Negated;

  explicit WordBoundaryNode(bool Negated)
      : RegexNode(NodeKind::WordBoundary), Negated(Negated) {}
  NodePtr clone() const override;
  static bool classof(const RegexNode *N) {
    return N->kind() == NodeKind::WordBoundary;
  }
};

/// LLVM-style dyn_cast for regex nodes.
template <typename T> const T *dynCast(const RegexNode *N) {
  return N && T::classof(N) ? static_cast<const T *>(N) : nullptr;
}
template <typename T> T *dynCast(RegexNode *N) {
  return N && T::classof(N) ? static_cast<T *>(N) : nullptr;
}
template <typename T> const T &cast(const RegexNode &N) {
  assert(T::classof(&N) && "cast to wrong node kind");
  return static_cast<const T &>(N);
}

/// Calls \p F on \p N and every descendant, pre-order.
void forEachNode(const RegexNode &N,
                 const std::function<void(const RegexNode &)> &F);

/// Smallest and largest capture index inside \p N (inclusive), or
/// nullopt if N contains no capture groups.
std::optional<std::pair<uint32_t, uint32_t>>
captureRange(const RegexNode &N);

} // namespace recap

#endif // RECAP_REGEX_AST_H
