//===- regex/Flags.h - ES6 RegExp flags -------------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five ES6 RegExp flags (§2.1 of the paper): g, i, m, y, u — plus the
/// ES2018 dotAll flag s, which this library implements as one of the
/// paper's future-work extensions.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_REGEX_FLAGS_H
#define RECAP_REGEX_FLAGS_H

#include <string>

namespace recap {

struct RegexFlags {
  bool Global = false;     ///< g: all matches / sticky-like for exec (§2.1)
  bool IgnoreCase = false; ///< i: case-insensitive matching
  bool Multiline = false;  ///< m: anchors also match at line breaks
  bool Sticky = false;     ///< y: match exactly at lastIndex
  bool Unicode = false;    ///< u: code-point mode, \u{...} escapes
  bool DotAll = false;     ///< s (ES2018): `.` also matches line terminators

  /// Parses a flag string like "gi"; returns false on duplicate/unknown
  /// flags (ES6 SyntaxError).
  bool parse(const std::string &S) {
    for (char C : S) {
      bool *Slot = nullptr;
      switch (C) {
      case 'g':
        Slot = &Global;
        break;
      case 'i':
        Slot = &IgnoreCase;
        break;
      case 'm':
        Slot = &Multiline;
        break;
      case 'y':
        Slot = &Sticky;
        break;
      case 'u':
        Slot = &Unicode;
        break;
      case 's':
        Slot = &DotAll;
        break;
      default:
        return false;
      }
      if (*Slot)
        return false;
      *Slot = true;
    }
    return true;
  }

  std::string str() const {
    std::string S;
    if (Global)
      S += 'g';
    if (IgnoreCase)
      S += 'i';
    if (Multiline)
      S += 'm';
    if (DotAll)
      S += 's';
    if (Unicode)
      S += 'u';
    if (Sticky)
      S += 'y';
    return S;
  }

  bool operator==(const RegexFlags &O) const = default;
};

} // namespace recap

#endif // RECAP_REGEX_FLAGS_H
