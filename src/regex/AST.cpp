//===- regex/AST.cpp - ES6 regex abstract syntax tree --------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/AST.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace recap;

void RegexNode::anchor() {}

static NodePtr withSpan(NodePtr N, const RegexNode &From) {
  N->setSpan(From.srcBegin(), From.srcEnd());
  return N;
}

NodePtr AlternationNode::clone() const {
  std::vector<NodePtr> Alts;
  Alts.reserve(Alternatives.size());
  for (const NodePtr &A : Alternatives)
    Alts.push_back(A->clone());
  return withSpan(std::make_unique<AlternationNode>(std::move(Alts)), *this);
}

NodePtr ConcatNode::clone() const {
  std::vector<NodePtr> Ps;
  Ps.reserve(Parts.size());
  for (const NodePtr &P : Parts)
    Ps.push_back(P->clone());
  return withSpan(std::make_unique<ConcatNode>(std::move(Ps)), *this);
}

NodePtr QuantifierNode::clone() const {
  return withSpan(
      std::make_unique<QuantifierNode>(Body->clone(), Min, Max, Greedy),
      *this);
}

NodePtr GroupNode::clone() const {
  return withSpan(
      std::make_unique<GroupNode>(Body->clone(), CaptureIndex, Name), *this);
}

NodePtr LookaheadNode::clone() const {
  return withSpan(
      std::make_unique<LookaheadNode>(Body->clone(), Negated, Behind), *this);
}

NodePtr BackreferenceNode::clone() const {
  return withSpan(std::make_unique<BackreferenceNode>(Index, Name), *this);
}

NodePtr CharClassNode::clone() const {
  return withSpan(std::make_unique<CharClassNode>(Base, Negated,
                                                  FromExplicitClass, HasRange),
                  *this);
}

NodePtr AnchorNode::clone() const {
  return withSpan(std::make_unique<AnchorNode>(Which), *this);
}

NodePtr WordBoundaryNode::clone() const {
  return withSpan(std::make_unique<WordBoundaryNode>(Negated), *this);
}

void recap::forEachNode(const RegexNode &N,
                        const std::function<void(const RegexNode &)> &F) {
  F(N);
  switch (N.kind()) {
  case NodeKind::Alternation:
    for (const NodePtr &A : cast<AlternationNode>(N).Alternatives)
      forEachNode(*A, F);
    break;
  case NodeKind::Concat:
    for (const NodePtr &P : cast<ConcatNode>(N).Parts)
      forEachNode(*P, F);
    break;
  case NodeKind::Quantifier:
    forEachNode(*cast<QuantifierNode>(N).Body, F);
    break;
  case NodeKind::Group:
    forEachNode(*cast<GroupNode>(N).Body, F);
    break;
  case NodeKind::Lookahead:
    forEachNode(*cast<LookaheadNode>(N).Body, F);
    break;
  case NodeKind::Backreference:
  case NodeKind::CharClass:
  case NodeKind::Anchor:
  case NodeKind::WordBoundary:
    break;
  }
}

std::optional<std::pair<uint32_t, uint32_t>>
recap::captureRange(const RegexNode &N) {
  std::optional<std::pair<uint32_t, uint32_t>> R;
  forEachNode(N, [&](const RegexNode &M) {
    const auto *G = dynCast<GroupNode>(&M);
    if (!G || !G->isCapturing())
      return;
    if (!R)
      R = {G->CaptureIndex, G->CaptureIndex};
    else {
      R->first = std::min(R->first, G->CaptureIndex);
      R->second = std::max(R->second, G->CaptureIndex);
    }
  });
  return R;
}

namespace {

/// Unparser. Produces canonical syntax; round-tripping through the parser
/// yields a structurally identical AST (tested).
class Printer {
public:
  std::string print(const RegexNode &N) {
    Out.clear();
    visit(N, /*TopLevel=*/true);
    return Out;
  }

private:
  std::string Out;

  void visit(const RegexNode &N, bool TopLevel = false) {
    switch (N.kind()) {
    case NodeKind::Alternation: {
      const auto &A = cast<AlternationNode>(N);
      if (!TopLevel)
        Out += "(?:";
      for (size_t I = 0; I < A.Alternatives.size(); ++I) {
        if (I)
          Out += "|";
        visit(*A.Alternatives[I]);
      }
      if (!TopLevel)
        Out += ")";
      break;
    }
    case NodeKind::Concat:
      for (const NodePtr &P : cast<ConcatNode>(N).Parts)
        visit(*P);
      break;
    case NodeKind::Quantifier: {
      const auto &Q = cast<QuantifierNode>(N);
      visitAtom(*Q.Body);
      if (Q.isStar())
        Out += "*";
      else if (Q.isPlus())
        Out += "+";
      else if (Q.isOptional())
        Out += "?";
      else {
        Out += "{" + std::to_string(Q.Min);
        if (Q.Max == QuantifierNode::Unbounded)
          Out += ",";
        else if (Q.Max != Q.Min)
          Out += "," + std::to_string(Q.Max);
        Out += "}";
      }
      if (!Q.Greedy)
        Out += "?";
      break;
    }
    case NodeKind::Group: {
      const auto &G = cast<GroupNode>(N);
      if (G.isNamed())
        Out += "(?<" + G.Name + ">";
      else
        Out += G.isCapturing() ? "(" : "(?:";
      // The group's own parentheses already delimit the body, so an
      // alternation needs no extra (?:...) wrapper.
      visit(*G.Body, /*TopLevel=*/true);
      Out += ")";
      break;
    }
    case NodeKind::Lookahead: {
      const auto &L = cast<LookaheadNode>(N);
      if (L.Behind)
        Out += L.Negated ? "(?<!" : "(?<=";
      else
        Out += L.Negated ? "(?!" : "(?=";
      visit(*L.Body, /*TopLevel=*/true);
      Out += ")";
      break;
    }
    case NodeKind::Backreference: {
      const auto &B = cast<BackreferenceNode>(N);
      if (!B.Name.empty())
        Out += "\\k<" + B.Name + ">";
      else
        Out += "\\" + std::to_string(B.Index);
      break;
    }
    case NodeKind::CharClass:
      printClass(cast<CharClassNode>(N));
      break;
    case NodeKind::Anchor:
      Out += cast<AnchorNode>(N).Which == AnchorKind::Caret ? "^" : "$";
      break;
    case NodeKind::WordBoundary:
      Out += cast<WordBoundaryNode>(N).Negated ? "\\B" : "\\b";
      break;
    }
  }

  /// Prints N wrapped so that a following quantifier binds to all of it.
  void visitAtom(const RegexNode &N) {
    bool NeedsWrap = false;
    switch (N.kind()) {
    case NodeKind::Alternation:
    case NodeKind::Quantifier:
      NeedsWrap = true;
      break;
    case NodeKind::Concat:
      NeedsWrap = cast<ConcatNode>(N).Parts.size() != 1;
      break;
    default:
      break;
    }
    if (NeedsWrap) {
      Out += "(?:";
      visit(N);
      Out += ")";
    } else {
      visit(N);
    }
  }

  void printClassChar(CodePoint C) {
    switch (C) {
    case '\\':
    case ']':
    case '^':
    case '-':
      Out += "\\";
      Out += static_cast<char>(C);
      return;
    default:
      break;
    }
    if (C >= 0x20 && C < 0x7F) {
      Out += static_cast<char>(C);
      return;
    }
    char Buf[16];
    if (C <= 0xFF)
      std::snprintf(Buf, sizeof(Buf), "\\x%02X", static_cast<unsigned>(C));
    else if (C <= 0xFFFF)
      // Four-digit form: valid with and without the u flag.
      std::snprintf(Buf, sizeof(Buf), "\\u%04X", static_cast<unsigned>(C));
    else
      // Astral code points are only expressible with the u flag; printed
      // output for such (rare) classes round-trips under "u" only.
      std::snprintf(Buf, sizeof(Buf), "\\u{%X}", static_cast<unsigned>(C));
    Out += Buf;
  }

  void printClass(const CharClassNode &CC) {
    // Single non-negated character prints as a bare literal when safe.
    const CharSet &S = CC.Base;
    if (!CC.Negated && S.size() == 1) {
      CodePoint C = *S.first();
      static const char *Special = "^$\\.*+?()[]{}|/";
      if (C >= 0x20 && C < 0x7F &&
          !strchr(Special, static_cast<char>(C))) {
        Out += static_cast<char>(C);
        return;
      }
      if (C == '\n') {
        Out += "\\n";
        return;
      }
    }
    if (!CC.Negated && S == CharSet::dot()) {
      Out += ".";
      return;
    }
    // The full alphabet (`.` under the dotAll flag) prints as the empty
    // negated class, which matches everything in both parsing modes.
    if (!CC.Negated && S == CharSet::all()) {
      Out += "[^]";
      return;
    }
    Out += "[";
    if (CC.Negated)
      Out += "^";
    for (const CharSet::Interval &I : S.intervals()) {
      printClassChar(I.Lo);
      if (I.Hi > I.Lo) {
        if (I.Hi > I.Lo + 1)
          Out += "-";
        printClassChar(I.Hi);
      }
    }
    Out += "]";
  }
};

} // namespace

std::string RegexNode::str() const { return Printer().print(*this); }
