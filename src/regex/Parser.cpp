//===- regex/Parser.cpp - ES6 regex pattern parser ------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the ES6 Pattern grammar (ECMA-262 2015,
/// §21.2.1), including the Annex B extensions active in non-unicode mode
/// (legacy octal escapes, literal braces, class-escape ranges). The parser
/// is two-pass: a pre-scan counts capture groups so that \N can be
/// classified as backreference vs. octal escape, as the spec requires.
///
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace recap;

namespace {

class Parser {
public:
  Parser(const UString &Pattern, RegexFlags Flags)
      : P(Pattern), Flags(Flags) {}

  Result<NodePtr> run() {
    if (!prescanGroups())
      return Result<NodePtr>::error(fmtError());
    NodePtr N = parseDisjunction();
    if (!Err.empty())
      return Result<NodePtr>::error(fmtError());
    if (!atEnd()) {
      fail("unmatched ')'");
      return Result<NodePtr>::error(fmtError());
    }
    return N;
  }

  uint32_t numCaptures() const { return GroupCount; }
  const std::map<std::string, uint32_t> &groupNames() const {
    return GroupNames;
  }

private:
  const UString &P;
  RegexFlags Flags;
  size_t Pos = 0;
  uint32_t GroupCount = 0;
  uint32_t NextCapture = 1;
  std::map<std::string, uint32_t> GroupNames;
  std::string Err;
  size_t ErrPos = 0;

  bool atEnd() const { return Pos >= P.size(); }
  CodePoint peek(size_t Off = 0) const {
    return Pos + Off < P.size() ? P[Pos + Off] : 0;
  }
  CodePoint next() { return P[Pos++]; }
  bool consume(CodePoint C) {
    if (atEnd() || P[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  void fail(const std::string &Message) {
    if (Err.empty()) {
      Err = Message;
      ErrPos = Pos;
    }
  }
  std::string fmtError() const {
    return "invalid regular expression at position " +
           std::to_string(ErrPos) + ": " + Err;
  }

  /// True for the characters we accept in a group name: the ASCII subset
  /// of RegExpIdentifierName (documented simplification, DESIGN.md).
  static bool isNameStart(CodePoint C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == '$';
  }
  static bool isNamePart(CodePoint C) {
    return isNameStart(C) || (C >= '0' && C <= '9');
  }

  /// Pre-scan counting '(' that open capture groups (skipping classes and
  /// escapes), per ES6 NcapturingParens, extended with ES2018 named
  /// groups: "(?<name>" both captures and registers a name (duplicates are
  /// a SyntaxError), while "(?<=" / "(?<!" are lookbehind assertions.
  /// Returns false (with Err set) on duplicate or malformed names.
  bool prescanGroups() {
    bool InClass = false;
    for (size_t I = 0; I < P.size(); ++I) {
      CodePoint C = P[I];
      if (C == '\\') {
        ++I;
        continue;
      }
      if (InClass) {
        if (C == ']')
          InClass = false;
        continue;
      }
      if (C == '[') {
        InClass = true;
        continue;
      }
      if (C != '(')
        continue;
      if (I + 1 >= P.size() || P[I + 1] != '?') {
        ++GroupCount;
        continue;
      }
      // "(?<" that is not a lookbehind opens a named capture group.
      if (I + 2 < P.size() && P[I + 2] == '<' &&
          (I + 3 >= P.size() || (P[I + 3] != '=' && P[I + 3] != '!'))) {
        size_t J = I + 3;
        std::string Name;
        if (J < P.size() && isNameStart(P[J])) {
          while (J < P.size() && isNamePart(P[J]))
            Name += static_cast<char>(P[J++]);
        }
        if (Name.empty() || J >= P.size() || P[J] != '>') {
          ErrPos = I + 3;
          Err = "invalid capture group name";
          return false;
        }
        ++GroupCount;
        if (!GroupNames.emplace(Name, GroupCount).second) {
          ErrPos = I + 3;
          Err = "duplicate capture group name '" + Name + "'";
          return false;
        }
      }
    }
    return true;
  }

  static NodePtr makeChar(CodePoint C) {
    return std::make_unique<CharClassNode>(CharSet::single(C),
                                           /*Negated=*/false);
  }

  NodePtr spanned(NodePtr N, size_t Begin) {
    if (N)
      N->setSpan(static_cast<uint32_t>(Begin), static_cast<uint32_t>(Pos));
    return N;
  }

  NodePtr parseDisjunction() {
    size_t Begin = Pos;
    std::vector<NodePtr> Alts;
    Alts.push_back(parseAlternative());
    while (!Err.empty() ? false : consume('|'))
      Alts.push_back(parseAlternative());
    if (!Err.empty())
      return nullptr;
    if (Alts.size() == 1)
      return std::move(Alts[0]);
    return spanned(std::make_unique<AlternationNode>(std::move(Alts)), Begin);
  }

  NodePtr parseAlternative() {
    size_t Begin = Pos;
    std::vector<NodePtr> Parts;
    while (!atEnd() && peek() != '|' && peek() != ')') {
      NodePtr T = parseTerm();
      if (!Err.empty())
        return nullptr;
      assert(T && "term parse must produce a node or set an error");
      Parts.push_back(std::move(T));
    }
    if (Parts.size() == 1)
      return std::move(Parts[0]);
    return spanned(std::make_unique<ConcatNode>(std::move(Parts)), Begin);
  }

  NodePtr parseTerm() {
    size_t Begin = Pos;
    CodePoint C = peek();

    // Assertions that can never be quantified.
    if (C == '^' || C == '$') {
      ++Pos;
      NodePtr A = spanned(std::make_unique<AnchorNode>(
                              C == '^' ? AnchorKind::Caret
                                       : AnchorKind::Dollar),
                          Begin);
      return rejectQuantifier(std::move(A));
    }
    if (C == '\\' && (peek(1) == 'b' || peek(1) == 'B')) {
      Pos += 2;
      NodePtr B = spanned(
          std::make_unique<WordBoundaryNode>(P[Pos - 1] == 'B'), Begin);
      return rejectQuantifier(std::move(B));
    }

    // Lookaheads: quantifiable in Annex B (non-unicode) mode only.
    if (C == '(' && peek(1) == '?' && (peek(2) == '=' || peek(2) == '!')) {
      bool Negated = peek(2) == '!';
      Pos += 3;
      NodePtr Body = parseDisjunction();
      if (!Err.empty())
        return nullptr;
      if (!consume(')')) {
        fail("unterminated lookahead group");
        return nullptr;
      }
      NodePtr L = spanned(
          std::make_unique<LookaheadNode>(std::move(Body), Negated), Begin);
      if (isQuantifierStart()) {
        if (Flags.Unicode) {
          fail("quantified assertion in unicode mode");
          return nullptr;
        }
        return parseQuantifier(std::move(L), Begin);
      }
      return L;
    }

    // Lookbehinds (ES2018 extension): never quantifiable.
    if (C == '(' && peek(1) == '?' && peek(2) == '<' &&
        (peek(3) == '=' || peek(3) == '!')) {
      bool Negated = peek(3) == '!';
      Pos += 4;
      NodePtr Body = parseDisjunction();
      if (!Err.empty())
        return nullptr;
      if (!consume(')')) {
        fail("unterminated lookbehind group");
        return nullptr;
      }
      NodePtr L = spanned(std::make_unique<LookaheadNode>(std::move(Body),
                                                          Negated,
                                                          /*Behind=*/true),
                          Begin);
      return rejectQuantifier(std::move(L));
    }

    NodePtr Atom = parseAtom();
    if (!Err.empty())
      return nullptr;
    if (isQuantifierStart())
      return parseQuantifier(std::move(Atom), Begin);
    return Atom;
  }

  NodePtr rejectQuantifier(NodePtr N) {
    if (isQuantifierStart()) {
      fail("nothing to repeat");
      return nullptr;
    }
    return N;
  }

  bool isQuantifierStart() {
    CodePoint C = peek();
    if (C == '*' || C == '+' || C == '?')
      return true;
    if (C != '{')
      return false;
    // '{' only starts a quantifier if it parses as one; otherwise it is a
    // literal in Annex B mode and an error in unicode mode.
    size_t Save = Pos;
    uint32_t Min, Max;
    bool Ok = scanBracedQuantifier(Min, Max);
    Pos = Save;
    return Ok;
  }

  /// Parses {m} / {m,} / {m,n} starting at '{'; leaves Pos after '}' on
  /// success.
  bool scanBracedQuantifier(uint32_t &Min, uint32_t &Max) {
    assert(peek() == '{');
    size_t Save = Pos;
    ++Pos;
    if (!isDigit(peek())) {
      Pos = Save;
      return false;
    }
    uint64_t M = 0;
    while (isDigit(peek()))
      M = std::min<uint64_t>(M * 10 + (next() - '0'), 1 << 30);
    Min = static_cast<uint32_t>(M);
    Max = Min;
    if (consume(',')) {
      if (peek() == '}') {
        Max = QuantifierNode::Unbounded;
      } else if (isDigit(peek())) {
        uint64_t N = 0;
        while (isDigit(peek()))
          N = std::min<uint64_t>(N * 10 + (next() - '0'), 1 << 30);
        Max = static_cast<uint32_t>(N);
      } else {
        Pos = Save;
        return false;
      }
    }
    if (!consume('}')) {
      Pos = Save;
      return false;
    }
    return true;
  }

  NodePtr parseQuantifier(NodePtr Atom, size_t Begin) {
    uint32_t Min = 0, Max = QuantifierNode::Unbounded;
    CodePoint C = next();
    switch (C) {
    case '*':
      break;
    case '+':
      Min = 1;
      break;
    case '?':
      Max = 1;
      break;
    case '{': {
      --Pos;
      if (!scanBracedQuantifier(Min, Max)) {
        fail("malformed repetition quantifier");
        return nullptr;
      }
      if (Min > Max) {
        fail("numbers out of order in {} quantifier");
        return nullptr;
      }
      break;
    }
    default:
      assert(false && "not a quantifier start");
    }
    bool Greedy = !consume('?');
    return spanned(std::make_unique<QuantifierNode>(std::move(Atom), Min, Max,
                                                    Greedy),
                   Begin);
  }

  NodePtr parseAtom() {
    size_t Begin = Pos;
    CodePoint C = peek();
    switch (C) {
    case '.':
      ++Pos;
      return spanned(std::make_unique<CharClassNode>(
                         Flags.DotAll ? CharSet::all() : CharSet::dot(),
                         /*Negated=*/false),
                     Begin);
    case '[':
      return parseCharacterClass();
    case '(': {
      ++Pos;
      uint32_t CaptureIndex = 0;
      std::string Name;
      if (consume('?')) {
        if (consume('<')) {
          // (?<name>...) — lookbehind was already handled in parseTerm,
          // so '<' here must open a group name (validated by the
          // pre-scan; re-parse it to advance).
          while (!atEnd() && peek() != '>')
            Name += static_cast<char>(next());
          if (!consume('>') || Name.empty()) {
            fail("invalid capture group name");
            return nullptr;
          }
          CaptureIndex = NextCapture++;
        } else if (!consume(':')) {
          fail("invalid group");
          return nullptr;
        }
      } else {
        CaptureIndex = NextCapture++;
      }
      NodePtr Body = parseDisjunction();
      if (!Err.empty())
        return nullptr;
      if (!consume(')')) {
        fail("unterminated group");
        return nullptr;
      }
      return spanned(std::make_unique<GroupNode>(std::move(Body),
                                                 CaptureIndex,
                                                 std::move(Name)),
                     Begin);
    }
    case '\\':
      ++Pos;
      return parseAtomEscape(Begin);
    case '*':
    case '+':
    case '?':
      fail("nothing to repeat");
      return nullptr;
    case ')':
    case '|':
      fail("unexpected token");
      return nullptr;
    case '{':
    case '}':
    case ']':
      // Annex B: literal braces/brackets allowed outside unicode mode.
      if (Flags.Unicode) {
        fail("lone quantifier bracket in unicode mode");
        return nullptr;
      }
      ++Pos;
      return spanned(makeChar(C), Begin);
    default:
      ++Pos;
      // Unicode-mode surrogate pair in the raw pattern text.
      if (Flags.Unicode && C >= 0xD800 && C <= 0xDBFF && peek() >= 0xDC00 &&
          peek() <= 0xDFFF) {
        CodePoint Low = next();
        C = 0x10000 + ((C - 0xD800) << 10) + (Low - 0xDC00);
      }
      return spanned(makeChar(C), Begin);
    }
  }

  //===--------------------------------------------------------------------===
  // Escapes
  //===--------------------------------------------------------------------===

  /// Parses the escape after '\\' in atom position.
  NodePtr parseAtomEscape(size_t Begin) {
    if (atEnd()) {
      fail("pattern may not end with a trailing backslash");
      return nullptr;
    }
    CodePoint C = peek();

    // Decimal escape: backreference or (Annex B) octal.
    if (C >= '1' && C <= '9') {
      size_t Save = Pos;
      uint64_t N = 0;
      while (isDigit(peek()) && N < (1 << 20))
        N = N * 10 + (next() - '0');
      if (N <= GroupCount)
        return spanned(std::make_unique<BackreferenceNode>(
                           static_cast<uint32_t>(N)),
                       Begin);
      if (Flags.Unicode) {
        fail("invalid backreference");
        return nullptr;
      }
      Pos = Save;
      return spanned(makeChar(parseLegacyOctalOrLiteral()), Begin);
    }
    if (C == '0') {
      ++Pos;
      if (!isDigit(peek()))
        return spanned(makeChar(0), Begin);
      if (Flags.Unicode) {
        fail("invalid decimal escape");
        return nullptr;
      }
      --Pos;
      return spanned(makeChar(parseLegacyOctalOrLiteral()), Begin);
    }

    // Named backreference \k<name> (ES2018). When the pattern contains
    // named groups (or in unicode mode) \k must resolve to one; otherwise
    // Annex B treats \k as an identity escape.
    if (C == 'k' && (!GroupNames.empty() || Flags.Unicode)) {
      ++Pos;
      if (!consume('<')) {
        fail("invalid named backreference");
        return nullptr;
      }
      std::string Name;
      while (!atEnd() && peek() != '>')
        Name += static_cast<char>(next());
      if (!consume('>') || Name.empty()) {
        fail("invalid named backreference");
        return nullptr;
      }
      auto It = GroupNames.find(Name);
      if (It == GroupNames.end()) {
        fail("backreference to undefined group name '" + Name + "'");
        return nullptr;
      }
      return spanned(
          std::make_unique<BackreferenceNode>(It->second, std::move(Name)),
          Begin);
    }

    // Character class escapes.
    if (CharSet S; classEscape(C, S)) {
      ++Pos;
      return spanned(std::make_unique<CharClassNode>(std::move(S),
                                                     /*Negated=*/false),
                     Begin);
    }

    std::optional<CodePoint> Ch = parseCharacterEscape();
    if (!Ch)
      return nullptr;
    return spanned(makeChar(*Ch), Begin);
  }

  /// \d \D \s \S \w \W. Returns the (possibly complemented) set directly;
  /// these sets never participate in case folding.
  bool classEscape(CodePoint C, CharSet &Out) {
    switch (C) {
    case 'd':
      Out = CharSet::digits();
      return true;
    case 'D':
      Out = CharSet::digits().complement();
      return true;
    case 's':
      Out = CharSet::whitespace();
      return true;
    case 'S':
      Out = CharSet::whitespace().complement();
      return true;
    case 'w':
      Out = CharSet::wordChars();
      return true;
    case 'W':
      Out = CharSet::wordChars().complement();
      return true;
    default:
      return false;
    }
  }

  /// Annex B legacy octal (\0-\377) or literal digit.
  CodePoint parseLegacyOctalOrLiteral() {
    CodePoint C = peek();
    if (C > '7') { // \8 or \9: identity escape
      ++Pos;
      return C;
    }
    uint32_t V = 0;
    int Digits = 0;
    while (Digits < 3 && peek() >= '0' && peek() <= '7') {
      uint32_t NewV = V * 8 + (peek() - '0');
      if (NewV > 0377)
        break;
      V = NewV;
      ++Pos;
      ++Digits;
    }
    return V;
  }

  /// ControlEscape, \c, \x, \u, identity escapes. Nullopt on error.
  std::optional<CodePoint> parseCharacterEscape() {
    CodePoint C = next();
    switch (C) {
    case 'f':
      return '\f';
    case 'n':
      return '\n';
    case 'r':
      return '\r';
    case 't':
      return '\t';
    case 'v':
      return '\v';
    case 'c': {
      CodePoint L = peek();
      if ((L >= 'a' && L <= 'z') || (L >= 'A' && L <= 'Z')) {
        ++Pos;
        return L % 32;
      }
      if (Flags.Unicode) {
        fail("invalid \\c escape");
        return std::nullopt;
      }
      // Annex B: \c followed by a non-letter matches a literal backslash,
      // and the 'c' is reparsed as an ordinary character.
      --Pos;
      return '\\';
    }
    case 'x': {
      std::optional<uint32_t> V = hexDigits(2);
      if (!V) {
        if (Flags.Unicode) {
          fail("invalid \\x escape");
          return std::nullopt;
        }
        return 'x'; // Annex B identity
      }
      return *V;
    }
    case 'u':
      return parseUnicodeEscape();
    default:
      // Identity escape. Unicode mode only allows SyntaxCharacter and '/';
      // Annex B allows nearly everything.
      if (Flags.Unicode) {
        static const char *Syntax = "^$\\.*+?()[]{}|/";
        if (C < 0x80 && strchr(Syntax, static_cast<char>(C)))
          return C;
        fail("invalid identity escape in unicode mode");
        return std::nullopt;
      }
      return C;
    }
  }

  std::optional<uint32_t> hexDigits(int N) {
    uint32_t V = 0;
    size_t Save = Pos;
    for (int I = 0; I < N; ++I) {
      CodePoint C = peek();
      int D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else {
        Pos = Save;
        return std::nullopt;
      }
      V = V * 16 + D;
      ++Pos;
    }
    return V;
  }

  std::optional<CodePoint> parseUnicodeEscape() {
    if (Flags.Unicode && consume('{')) {
      uint32_t V = 0;
      bool Any = false;
      while (!atEnd() && peek() != '}') {
        std::optional<uint32_t> D = hexDigits(1);
        if (!D) {
          fail("invalid \\u{} escape");
          return std::nullopt;
        }
        V = V * 16 + *D;
        Any = true;
        if (V > MaxCodePoint) {
          fail("code point out of range in \\u{} escape");
          return std::nullopt;
        }
      }
      if (!Any || !consume('}')) {
        fail("invalid \\u{} escape");
        return std::nullopt;
      }
      return V;
    }
    std::optional<uint32_t> V = hexDigits(4);
    if (!V) {
      if (Flags.Unicode) {
        fail("invalid \\u escape");
        return std::nullopt;
      }
      return 'u'; // Annex B identity
    }
    // Combine surrogate pairs in unicode mode.
    if (Flags.Unicode && *V >= 0xD800 && *V <= 0xDBFF && peek() == '\\' &&
        peek(1) == 'u') {
      size_t Save = Pos;
      Pos += 2;
      std::optional<uint32_t> Low = hexDigits(4);
      if (Low && *Low >= 0xDC00 && *Low <= 0xDFFF)
        return 0x10000 + ((*V - 0xD800) << 10) + (*Low - 0xDC00);
      Pos = Save;
    }
    return *V;
  }

  //===--------------------------------------------------------------------===
  // Character classes
  //===--------------------------------------------------------------------===

  NodePtr parseCharacterClass() {
    size_t Begin = Pos;
    assert(peek() == '[');
    ++Pos;
    bool Negated = consume('^');
    CharSet Set;
    bool HasRange = false;

    while (!atEnd() && peek() != ']') {
      // Parse one class atom; multi-char escapes (\d etc.) come back as a
      // set with no single code point.
      std::optional<CodePoint> A;
      CharSet ASet;
      if (!parseClassAtom(A, ASet))
        return nullptr;

      if (peek() == '-' && peek(1) != 0 && peek(1) != ']') {
        ++Pos; // consume '-'
        std::optional<CodePoint> B;
        CharSet BSet;
        if (!parseClassAtom(B, BSet))
          return nullptr;
        if (A && B) {
          if (*A > *B) {
            fail("range out of order in character class");
            return nullptr;
          }
          Set.addRange(*A, *B);
          HasRange = true;
          continue;
        }
        // Annex B: a range with a class escape endpoint treats '-' as a
        // literal; a SyntaxError in unicode mode.
        if (Flags.Unicode) {
          fail("invalid character class range");
          return nullptr;
        }
        Set.addSet(A ? CharSet::single(*A) : ASet);
        Set.addChar('-');
        Set.addSet(B ? CharSet::single(*B) : BSet);
        continue;
      }
      Set.addSet(A ? CharSet::single(*A) : ASet);
    }
    if (!consume(']')) {
      fail("unterminated character class");
      return nullptr;
    }
    return spanned(std::make_unique<CharClassNode>(std::move(Set), Negated,
                                                   /*FromExplicitClass=*/true,
                                                   HasRange),
                   Begin);
  }

  /// One ClassAtom. On success either Single has a code point or MultiSet
  /// holds a class-escape set. Returns false on error.
  bool parseClassAtom(std::optional<CodePoint> &Single, CharSet &MultiSet) {
    Single.reset();
    CodePoint C = next();
    if (C != '\\') {
      // Surrogate pair inside class in unicode mode.
      if (Flags.Unicode && C >= 0xD800 && C <= 0xDBFF && peek() >= 0xDC00 &&
          peek() <= 0xDFFF) {
        CodePoint Low = next();
        C = 0x10000 + ((C - 0xD800) << 10) + (Low - 0xDC00);
      }
      Single = C;
      return true;
    }
    if (atEnd()) {
      fail("pattern may not end with a trailing backslash");
      return false;
    }
    CodePoint E = peek();
    if (CharSet S; classEscape(E, S)) {
      ++Pos;
      MultiSet = std::move(S);
      return true;
    }
    if (E == 'b') { // \b inside a class is backspace
      ++Pos;
      Single = 0x08;
      return true;
    }
    if (E == '-') { // \- allowed in classes
      ++Pos;
      Single = '-';
      return true;
    }
    if (E >= '0' && E <= '9') {
      if (Flags.Unicode && E != '0') {
        fail("invalid class escape");
        return false;
      }
      Single = parseLegacyOctalOrLiteral();
      return true;
    }
    std::optional<CodePoint> Ch = parseCharacterEscape();
    if (!Ch)
      return false;
    Single = *Ch;
    return true;
  }
};

} // namespace

Result<Regex> Regex::parse(const UString &Pattern, RegexFlags Flags) {
  Parser Pr(Pattern, Flags);
  Result<NodePtr> Root = Pr.run();
  if (!Root)
    return Result<Regex>::error(Root.error());
  return Regex(Pattern, Flags, Root.take(), Pr.numCaptures(),
               Pr.groupNames());
}

Result<Regex> Regex::parse(const std::string &Pattern,
                           const std::string &FlagStr) {
  RegexFlags Flags;
  if (!Flags.parse(FlagStr))
    return Result<Regex>::error("invalid regular expression flags '" +
                                FlagStr + "'");
  return parse(fromUTF8(Pattern), Flags);
}

Result<std::pair<std::string, std::string>>
Regex::splitLiteral(const std::string &Literal) {
  using Split = std::pair<std::string, std::string>;
  if (Literal.size() < 2 || Literal.front() != '/')
    return Result<Split>::error("regex literal must start with '/'");
  // Find the closing unescaped '/' outside a character class.
  bool InClass = false;
  size_t End = std::string::npos;
  for (size_t I = 1; I < Literal.size(); ++I) {
    char C = Literal[I];
    if (C == '\\') {
      ++I;
      continue;
    }
    if (InClass) {
      if (C == ']')
        InClass = false;
      continue;
    }
    if (C == '[')
      InClass = true;
    else if (C == '/') {
      End = I;
      break;
    }
  }
  if (End == std::string::npos)
    return Result<Split>::error("unterminated regex literal");
  return Split{Literal.substr(1, End - 1), Literal.substr(End + 1)};
}

Result<Regex> Regex::parseLiteral(const std::string &Literal) {
  auto Split = splitLiteral(Literal);
  if (!Split)
    return Result<Regex>::error(Split.error());
  return parse(Split->first, Split->second);
}

std::string Regex::str() const {
  std::string S = toUTF8(Pattern);
  if (S.empty())
    S = "(?:)";
  return "/" + S + "/" + Flags.str();
}

Regex Regex::clone() const {
  return Regex(Pattern, Flags, Root->clone(), NumCaptures, GroupNames);
}
