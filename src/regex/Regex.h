//===- regex/Regex.h - Parsed ES6 regex -------------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regex bundles a parsed pattern with its flags and capture-group count;
/// Regex::parse is the library entry point for turning /pattern/flags
/// source into an AST.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_REGEX_REGEX_H
#define RECAP_REGEX_REGEX_H

#include "regex/AST.h"
#include "regex/Flags.h"
#include "support/Result.h"

#include <map>
#include <memory>
#include <string>
#include <utility>

namespace recap {

class Regex {
public:
  /// Parses \p Pattern (code points, without the surrounding slashes) under
  /// \p Flags. Returns a descriptive error for ES6 SyntaxError inputs.
  static Result<Regex> parse(const UString &Pattern, RegexFlags Flags = {});

  /// Convenience overload: UTF-8 pattern plus flag string, e.g.
  /// parse("goo+d", "iy").
  static Result<Regex> parse(const std::string &Pattern,
                             const std::string &Flags = "");

  /// Parses a full literal like "/goo+d/i".
  static Result<Regex> parseLiteral(const std::string &Literal);

  /// Splits a "/pattern/flags" literal into its pattern and flag strings
  /// without parsing either. Shared by parseLiteral and the runtime's
  /// interning so the two can never disagree on literal boundaries.
  static Result<std::pair<std::string, std::string>>
  splitLiteral(const std::string &Literal);

  const UString &pattern() const { return Pattern; }
  const RegexFlags &flags() const { return Flags; }
  const RegexNode &root() const { return *Root; }
  /// Number of capturing groups (the implicit whole-match group 0 is not
  /// counted, matching the ES6 specification).
  uint32_t numCaptures() const { return NumCaptures; }

  /// Named capture groups (ES2018 extension): UTF-8 name to 1-based
  /// capture index. Empty for patterns without (?<name>...) groups.
  const std::map<std::string, uint32_t> &groupNames() const {
    return GroupNames;
  }
  /// Capture index for \p Name, or 0 when no such group exists.
  uint32_t groupIndex(const std::string &Name) const {
    auto It = GroupNames.find(Name);
    return It == GroupNames.end() ? 0 : It->second;
  }

  /// Canonical source rendering "/pattern/flags".
  std::string str() const;

  Regex(Regex &&) = default;
  Regex &operator=(Regex &&) = default;
  Regex clone() const;

private:
  Regex(UString Pattern, RegexFlags Flags, NodePtr Root, uint32_t NumCaptures,
        std::map<std::string, uint32_t> GroupNames)
      : Pattern(std::move(Pattern)), Flags(Flags), Root(std::move(Root)),
        NumCaptures(NumCaptures), GroupNames(std::move(GroupNames)) {}

  UString Pattern;
  RegexFlags Flags;
  NodePtr Root;
  uint32_t NumCaptures;
  std::map<std::string, uint32_t> GroupNames;
};

} // namespace recap

#endif // RECAP_REGEX_REGEX_H
