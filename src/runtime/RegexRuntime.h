//===- runtime/RegexRuntime.h - Interned compiled-regex cache ---*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RegexRuntime interns (pattern, flags) pairs: the first request parses
/// and wraps the pattern in a CompiledRegex, every later request for the
/// same pair returns the *same* shared artifact, so the lazy pipeline
/// stages (features, approximation, automaton, matcher, model template)
/// are computed at most once per distinct pattern per runtime. A bounded
/// LRU policy caps memory for corpus-scale workloads; parse failures are
/// negatively cached so malformed literals (common in survey corpora) are
/// rejected without re-parsing.
///
/// One runtime is threaded through an execution (DSE engine run, survey
/// aggregation, bench loop); independent executions can share a runtime to
/// share compilation work. The table is concurrency-safe: interning is
/// serialized by an internal mutex and the CompiledRegex artifacts it
/// hands out synchronize their own lazy stages, so shard-per-worker
/// executions (parallel DSE, sliced survey) share one runtime directly
/// (DESIGN.md §6).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RUNTIME_REGEXRUNTIME_H
#define RECAP_RUNTIME_REGEXRUNTIME_H

#include "runtime/CompiledRegex.h"
#include "support/LruMap.h"

#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>

namespace recap {

class MappedArtifactStore;

/// Outcome of RegexRuntime::load()/loadOnce() (runtime/RuntimeSnapshot.cpp).
struct SnapshotLoadResult {
  /// Entries interned and pre-warmed from the snapshot.
  size_t Loaded = 0;
  /// Entries the load dropped: unparseable under the current parser, or
  /// recorded metadata disagreeing with the recomputed pipeline (a stale
  /// snapshot from an older build). The runtime stays correct either
  /// way — rejection only loses the warm start for that entry.
  size_t Rejected = 0;
  /// Artifact records adopted into entries (DFA/approximation/product
  /// stages installed from the snapshot instead of rebuilt).
  size_t ArtifactsMapped = 0;
  /// Artifact records that failed validation and were dropped; the entry
  /// itself still loads metadata-warm.
  size_t ArtifactsRejected = 0;
  /// Accept/transition-table bytes served as views into the shared file
  /// mapping (0 for stream loads or mmap-unavailable fallbacks).
  uint64_t BytesShared = 0;
  /// The artifact section was really mmapped (pages shared between
  /// processes), not privately read.
  bool ZeroCopy = false;
  /// The file was absent, truncated, corrupt, or version-mismatched: the
  /// runtime starts cold (nothing loaded, never an error thrown).
  bool Cold = false;
  /// loadOnce() found a prior loadOnce() already succeeded on this
  /// runtime and did nothing (cold attempts do not latch — they stay
  /// retryable).
  bool Skipped = false;
  std::string Error; ///< why Cold, empty otherwise

  bool warm() const { return Loaded > 0; }
};

/// Knobs for RegexRuntime::save().
struct SnapshotSaveOptions {
  /// Age out entries untouched for more than this many generations
  /// (see RegexRuntime::bumpGeneration()): they are skipped at save time
  /// and counted in RuntimeStats::AgedOut, so one-off patterns stop
  /// riding along in every future snapshot. 0 = keep everything.
  uint64_t MaxAgeGenerations = 0;
  /// Serialize the artifact arena (compiled DFAs, approximations,
  /// anchored products). Off = metadata-only v2 snapshot (still loads
  /// everywhere, just without zero-copy warm starts).
  bool IncludeArtifacts = true;
};

struct RuntimeOptions {
  /// Maximum interned patterns; least-recently-used entries are evicted
  /// beyond it. 0 = unbounded.
  size_t Capacity = 1024;
  /// Remember parse errors so repeated bad inputs skip the parser.
  bool CacheParseErrors = true;
  /// Bound for the negative cache (cleared wholesale when exceeded).
  size_t ErrorCapacity = 4096;
};

class RegexRuntime {
public:
  explicit RegexRuntime(RuntimeOptions Opts = {});

  /// Interned lookup; parses on first sight of the (pattern, flags) pair.
  Result<std::shared_ptr<CompiledRegex>> get(const UString &Pattern,
                                             RegexFlags Flags = {});
  /// UTF-8 pattern plus flag string, e.g. get("goo+d", "iy").
  Result<std::shared_ptr<CompiledRegex>> get(const std::string &Pattern,
                                             const std::string &Flags = "");
  /// Full literal like "/goo+d/i".
  Result<std::shared_ptr<CompiledRegex>> literal(const std::string &Literal);

  /// Interns an already-parsed regex (no parser involvement). Returns the
  /// existing entry when the (pattern, flags) pair is already present.
  std::shared_ptr<CompiledRegex> intern(Regex R);

  const RuntimeStats &stats() const { return *Stats; }
  /// The shared stats block itself — for components that contribute
  /// counters to this runtime's window (e.g. BackendDispatcher).
  const std::shared_ptr<RuntimeStats> &statsHandle() const { return Stats; }
  void resetStats() { *Stats = RuntimeStats(); }

  /// Interned entry count.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Entries.size();
  }
  /// Drops every interned entry and negative-cache entry (stats survive).
  void clear();

  /// Pre-warms \p Stages of an interned pattern from the calling thread
  /// (parse via get(); then features / approximation / automaton /
  /// matcher eagerly). Survey slices and DSE shards can warm the table
  /// before fan-out so workers start on fully built artifacts instead of
  /// contending on first-touch builds.
  enum WarmStages : unsigned {
    WarmFeatures = 1u << 0,
    WarmApprox = 1u << 1,
    WarmAutomaton = 1u << 2,
    WarmMatcher = 1u << 3,
    WarmAll = WarmFeatures | WarmApprox | WarmAutomaton | WarmMatcher,
  };
  void warm(const std::shared_ptr<CompiledRegex> &C,
            unsigned Stages = WarmAll);

  /// Persistent warm start (DESIGN.md §7.3, §11): save() serializes every
  /// interned entry's metadata — pattern, flags, RegexFeatures, approx
  /// exactness — plus an arena of compiled artifacts (DFAs, anchored
  /// products) behind a versioned, checksummed header; load() restores a
  /// saved table into this runtime, re-interning each entry, adopting its
  /// artifact record when valid (zero-copy via mmap for Path loads) and
  /// pre-building remaining stages through warm(), so a corpus job's
  /// first queries start on hot artifacts across process boundaries. A
  /// load is transactional against damage: bad magic, version mismatch,
  /// truncation, or a checksum failure loads nothing (SnapshotLoadResult
  /// ::Cold) instead of crashing or half-populating the table; damage
  /// confined to one artifact record drops only that record. Stats land
  /// in RuntimeStats::SnapshotLoaded / SnapshotRejected /
  /// ArtifactsMapped / ArtifactsRejected / ArtifactBytesShared.
  bool save(std::ostream &OS, const SnapshotSaveOptions &SOpts = {}) const;
  bool save(const std::string &Path,
            const SnapshotSaveOptions &SOpts = {}) const;
  SnapshotLoadResult load(std::istream &IS, unsigned Stages = WarmAll,
                          bool AdoptArtifacts = true);
  SnapshotLoadResult load(const std::string &Path, unsigned Stages = WarmAll,
                          bool AdoptArtifacts = true);
  /// load() at most once per runtime: corpus tasks sharing this runtime
  /// can all name the same EngineOptions::CacheSnapshot and only the
  /// first *successful* comer pays the load (the rest report Skipped);
  /// a cold attempt does not latch, so the snapshot can appear later.
  SnapshotLoadResult loadOnce(const std::string &Path,
                              unsigned Stages = WarmAll,
                              bool AdoptArtifacts = true);

  /// Snapshot-aging clock. Callers mark epochs (one corpus run, one
  /// service session) by bumping; every intern hit/miss stamps the entry
  /// with the current generation, and save() can age out entries
  /// untouched for SnapshotSaveOptions::MaxAgeGenerations epochs.
  void bumpGeneration() {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Generation;
  }
  uint64_t generation() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Generation;
  }

private:
  /// An interned entry plus the generation it was last touched
  /// (snapshot aging).
  struct Interned {
    std::shared_ptr<CompiledRegex> C;
    uint64_t LastGen = 0;
  };

  static std::string makeKey(const UString &Pattern,
                             const RegexFlags &Flags);
  Interned *lookup(const std::string &Key);
  std::shared_ptr<CompiledRegex> insert(std::string Key, Regex R);
  void rememberError(const std::string &Key, const std::string &Message);
  /// Restores a snapshot entry's saved LastGen without counting an
  /// intern hit (keeps save->load->save byte-identical).
  void setEntryGeneration(const std::string &Key, uint64_t Gen);
  /// Shared core of the stream and mmap load paths
  /// (runtime/RuntimeSnapshot.cpp).
  SnapshotLoadResult
  loadBuffer(const unsigned char *Data, size_t N, unsigned Stages,
             bool AdoptArtifacts,
             const std::shared_ptr<const MappedArtifactStore> &Store);

  RuntimeOptions Opts;
  std::shared_ptr<RuntimeStats> Stats;
  /// Guards Entries, Errors and Generation (the stats block is atomic per
  /// counter and CompiledRegex stages synchronize themselves). NOT held
  /// across a cold-miss parse — distinct patterns parse in parallel; a
  /// same-key race re-checks the table after parsing and adopts the
  /// winner's entry.
  mutable std::mutex Mu;
  LruMap<Interned> Entries;
  std::unordered_map<std::string, std::string> Errors;
  uint64_t Generation = 0;

  /// loadOnce() latch; separate from Mu because load() re-enters the
  /// interning path (which takes Mu per entry).
  std::mutex SnapMu;
  bool SnapshotDone = false;
  /// A loadOnce() attempt came back cold at some point; a later warm
  /// load then counts RuntimeStats::SnapshotRecovered (under SnapMu).
  bool SnapColdSeen = false;
};

} // namespace recap

#endif // RECAP_RUNTIME_REGEXRUNTIME_H
