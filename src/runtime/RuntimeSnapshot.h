//===- runtime/RuntimeSnapshot.h - Warm-start snapshot format ---*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk layout of the RegexRuntime warm-start snapshot (save()/load(),
/// DESIGN.md §7.3 and §11). All integers little-endian:
///
///   [0]   magic              "RECAPSNP" (8 bytes)
///   [8]   u32 version        SnapshotVersion
///   [12]  u32 featureWords   SnapshotFeatureWords — the number of u32
///                            RegexFeatures fields per entry; a layout
///                            change to RegexFeatures changes this and
///                            old snapshots load cold instead of
///                            misparsing
///   [16]  u64 count          interned entries, least- to most-recently
///                            used (so a bounded reload evicts the same
///                            cold tail)
///   [24]  u64 generation     the runtime's save-time generation counter
///                            (snapshot aging; see RegexRuntime)
///   [32]  u64 artifactOffset byte offset of the artifact arena, 8-aligned,
///                            0 when the snapshot carries no artifacts
///   [40]  u64 artifactBytes  arena length; artifactOffset+artifactBytes
///                            must land exactly on the checksum trailer
///   [48]  entries            per entry:
///                              u32 flagsLen, canonical flag string
///                              u32 patLen, UTF-8 pattern
///                              u32[featureWords] feature counts in
///                                RegexFeatures declaration order
///                              u8 approxExact (RegularApprox::Exact)
///                              u64 lastGen — generation the entry was
///                                last touched (aging)
///                              u64 artifactRelOffset — arena-relative
///                                offset of the entry's artifact record,
///                                ~0 when none
///   pad   up to 7 zero bytes aligning the arena to 8
///   arena 8-aligned artifact records (runtime/ArtifactStore.h); DFA
///         tables inside are positioned so an mmap of the file serves
///         them in place, zero-copy
///   [end-8] u64 checksum     FNV-1a 64 over file bytes [8, end-8) —
///                            everything after the magic, entries and
///                            arena included
///
/// Any structural damage — short file, bad magic, wrong version or word
/// count, bad arena bounds, checksum mismatch, entry overrunning the
/// buffer — makes load() return Cold without touching the runtime. Damage
/// confined to one artifact record only loses that record: the entry
/// still warm-starts from its metadata and ArtifactsRejected counts it.
/// The constants live here so tests can corrupt snapshots surgically.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RUNTIME_RUNTIMESNAPSHOT_H
#define RECAP_RUNTIME_RUNTIMESNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace recap::snapshot {

inline constexpr char Magic[8] = {'R', 'E', 'C', 'A', 'P', 'S', 'N', 'P'};
inline constexpr uint32_t SnapshotVersion = 2;
/// u32 fields serialized per RegexFeatures (its declaration-order count).
inline constexpr uint32_t SnapshotFeatureWords = 21;
/// magic + version + featureWords + count + generation + artifact bounds.
inline constexpr size_t HeaderBytes = 48;
/// FNV-1a 64 trailer.
inline constexpr size_t ChecksumBytes = 8;

/// Header field byte offsets (for surgical corruption in tests and for
/// MappedArtifactStore's pre-flight validation).
inline constexpr size_t OffVersion = 8;
inline constexpr size_t OffFeatureWords = 12;
inline constexpr size_t OffCount = 16;
inline constexpr size_t OffGeneration = 24;
inline constexpr size_t OffArtifactOffset = 32;
inline constexpr size_t OffArtifactBytes = 40;

/// Entry artifactRelOffset value meaning "no record".
inline constexpr uint64_t NoArtifact = ~0ull;

inline uint64_t fnv1a(const unsigned char *Data, size_t N) {
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I < N; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// File name (no directory) for one tenant's runtime snapshot under a
/// service state directory. Tenant ids are arbitrary strings; anything
/// outside [A-Za-z0-9_-] folds to '_', and an FNV-1a suffix of the raw
/// id keeps distinct tenants from colliding after the fold.
inline std::string tenantSnapshotFile(const std::string &Tenant) {
  std::string Safe;
  Safe.reserve(Tenant.size());
  for (char C : Tenant) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '-';
    Safe.push_back(Ok ? C : '_');
  }
  uint64_t H = fnv1a(reinterpret_cast<const unsigned char *>(Tenant.data()),
                     Tenant.size());
  char Hex[17];
  for (int I = 15; I >= 0; --I, H >>= 4)
    Hex[I] = "0123456789abcdef"[H & 0xf];
  Hex[16] = '\0';
  return "runtime_" + Safe + "_" + Hex + ".snap";
}

} // namespace recap::snapshot

#endif // RECAP_RUNTIME_RUNTIMESNAPSHOT_H
