//===- runtime/RuntimeSnapshot.h - Warm-start snapshot format ---*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk layout of the RegexRuntime warm-start snapshot (save()/load(),
/// DESIGN.md §7.3). All integers little-endian:
///
///   [0]   magic            "RECAPSNP" (8 bytes)
///   [8]   u32 version      SnapshotVersion
///   [12]  u32 featureWords SnapshotFeatureWords — the number of u32
///                          RegexFeatures fields per entry; a layout
///                          change to RegexFeatures changes this and old
///                          snapshots load cold instead of misparsing
///   [16]  u64 count        interned entries, least- to most-recently
///                          used (so a bounded reload evicts the same
///                          cold tail)
///   [24]  entries          per entry:
///                            u32 flagsLen, canonical flag string
///                            u32 patLen, UTF-8 pattern
///                            u32[featureWords] feature counts in
///                              RegexFeatures declaration order
///                            u8 approxExact (RegularApprox::Exact)
///   [end-8] u64 checksum   FNV-1a 64 over the entry bytes
///
/// Any structural damage — short file, bad magic, wrong version or word
/// count, checksum mismatch, entry overrunning the buffer — makes load()
/// return Cold without touching the runtime. The constants live here so
/// tests can corrupt snapshots surgically.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RUNTIME_RUNTIMESNAPSHOT_H
#define RECAP_RUNTIME_RUNTIMESNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace recap::snapshot {

inline constexpr char Magic[8] = {'R', 'E', 'C', 'A', 'P', 'S', 'N', 'P'};
inline constexpr uint32_t SnapshotVersion = 1;
/// u32 fields serialized per RegexFeatures (its declaration-order count).
inline constexpr uint32_t SnapshotFeatureWords = 21;
/// magic + version + featureWords + count.
inline constexpr size_t HeaderBytes = 24;
/// FNV-1a 64 trailer.
inline constexpr size_t ChecksumBytes = 8;

inline uint64_t fnv1a(const unsigned char *Data, size_t N) {
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I < N; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// File name (no directory) for one tenant's runtime snapshot under a
/// service state directory. Tenant ids are arbitrary strings; anything
/// outside [A-Za-z0-9_-] folds to '_', and an FNV-1a suffix of the raw
/// id keeps distinct tenants from colliding after the fold.
inline std::string tenantSnapshotFile(const std::string &Tenant) {
  std::string Safe;
  Safe.reserve(Tenant.size());
  for (char C : Tenant) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == '-';
    Safe.push_back(Ok ? C : '_');
  }
  uint64_t H = fnv1a(reinterpret_cast<const unsigned char *>(Tenant.data()),
                     Tenant.size());
  char Hex[17];
  for (int I = 15; I >= 0; --I, H >>= 4)
    Hex[I] = "0123456789abcdef"[H & 0xf];
  Hex[16] = '\0';
  return "runtime_" + Safe + "_" + Hex + ".snap";
}

} // namespace recap::snapshot

#endif // RECAP_RUNTIME_RUNTIMESNAPSHOT_H
