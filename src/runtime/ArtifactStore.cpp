//===- runtime/ArtifactStore.cpp - Zero-copy snapshot artifacts ------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArtifactStore.h"
#include "runtime/RuntimeSnapshot.h"

#include <cstring>
#include <fstream>
#include <iterator>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define RECAP_HAVE_MMAP 1
#else
#define RECAP_HAVE_MMAP 0
#endif

using namespace recap;
using namespace recap::snapshot;

namespace {

// Record flag bits.
constexpr uint32_t RecHasAutomaton = 1u << 0;
constexpr uint32_t RecAnchoredComputed = 1u << 1;
constexpr uint32_t RecAnchoredPresent = 1u << 2;
constexpr uint32_t RecHasProduct = 1u << 3;
constexpr uint32_t RecKnownFlags =
    RecHasAutomaton | RecAnchoredComputed | RecAnchoredPresent | RecHasProduct;

// Decode-side sanity caps. These are far above anything the pipeline
// produces (DFA StateLimit defaults to 100000, candidate words to 64),
// so they only ever reject corrupt or adversarial records — cheaply,
// before any allocation is sized from untrusted lengths.
constexpr uint32_t MaxClasses = 1u << 16;
constexpr uint32_t MaxStates = 1u << 24;
constexpr uint64_t MaxTransWords = 1ull << 28;
constexpr uint32_t MaxIntervals = 1u << 20;
constexpr size_t MaxRegexNodes = 1u << 20;
constexpr size_t MaxRegexDepth = 512;
constexpr uint32_t MaxWords = 1u << 16;
constexpr uint32_t MaxWordLen = 1u << 16;
constexpr uint64_t MaxLimitValue = 1ull << 32;

bool hostIsLittleEndian() {
  const uint32_t Probe = 1;
  return *reinterpret_cast<const unsigned char *>(&Probe) == 1;
}

//===----------------------------------------------------------------------===//
// Little-endian writers
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &Out, double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  putU64(Out, Bits);
}

//===----------------------------------------------------------------------===//
// Bounds-checked little-endian reader
//===----------------------------------------------------------------------===//

struct Reader {
  const unsigned char *Data;
  size_t N;
  size_t At = 0;
  bool Fail = false;

  bool need(size_t K) {
    if (Fail || N - At < K) {
      Fail = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[At++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[At++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[At++]) << (8 * I);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    return D;
  }
  /// Pointer to the next \p K raw bytes (null on underrun).
  const unsigned char *bytes(size_t K) {
    if (!need(K))
      return nullptr;
    const unsigned char *P = Data + At;
    At += K;
    return P;
  }
  /// Skips to the next 4-aligned position (relative to Data, whose base
  /// is 8-aligned within the arena); pad bytes must be zero.
  void align4() {
    while (!Fail && At % 4 != 0)
      if (u8() != 0)
        Fail = true;
  }
};

//===----------------------------------------------------------------------===//
// ClassicalRegex blobs: preorder, u8 kind tag per node
//===----------------------------------------------------------------------===//

void putCRegex(std::string &Out, const CRegexRef &R) {
  Out.push_back(static_cast<char>(R->K));
  switch (R->K) {
  case CRegex::Kind::Empty:
  case CRegex::Kind::Epsilon:
    break;
  case CRegex::Kind::Class: {
    const std::vector<CharSet::Interval> &Iv = R->Cls.intervals();
    putU32(Out, static_cast<uint32_t>(Iv.size()));
    for (const CharSet::Interval &I : Iv) {
      putU32(Out, static_cast<uint32_t>(I.Lo));
      putU32(Out, static_cast<uint32_t>(I.Hi));
    }
    break;
  }
  default:
    putU32(Out, static_cast<uint32_t>(R->Kids.size()));
    for (const CRegexRef &Kid : R->Kids)
      putCRegex(Out, Kid);
    break;
  }
}

/// Rebuilds raw CRegex nodes (no simplifying builders: the decoded tree
/// is bit-for-bit what the writer walked, so re-saving an adopted entry
/// round-trips). \p Budget bounds total nodes, \p Depth the recursion.
CRegexRef readCRegex(Reader &R, size_t Depth, size_t &Budget) {
  if (R.Fail || Depth > MaxRegexDepth || Budget == 0) {
    R.Fail = true;
    return nullptr;
  }
  --Budget;
  uint8_t KByte = R.u8();
  if (R.Fail || KByte > static_cast<uint8_t>(CRegex::Kind::Complement)) {
    R.Fail = true;
    return nullptr;
  }
  auto Node = std::make_shared<CRegex>(static_cast<CRegex::Kind>(KByte));
  switch (Node->K) {
  case CRegex::Kind::Empty:
  case CRegex::Kind::Epsilon:
    break;
  case CRegex::Kind::Class: {
    uint32_t NI = R.u32();
    if (R.Fail || NI > MaxIntervals) {
      R.Fail = true;
      return nullptr;
    }
    CharSet S;
    CodePoint PrevHi = 0;
    bool First = true;
    for (uint32_t I = 0; I < NI; ++I) {
      uint32_t Lo = R.u32();
      uint32_t Hi = R.u32();
      if (R.Fail)
        return nullptr;
      // Sorted, disjoint, non-adjacent — CharSet's normal form, so the
      // re-encoded set is byte-identical.
      if (Lo > Hi || Hi > static_cast<uint32_t>(MaxCodePoint) ||
          (!First && Lo <= static_cast<uint32_t>(PrevHi) + 1)) {
        R.Fail = true;
        return nullptr;
      }
      S.addRange(Lo, Hi);
      PrevHi = Hi;
      First = false;
    }
    Node->Cls = std::move(S);
    break;
  }
  default: {
    uint32_t NK = R.u32();
    if (R.Fail)
      return nullptr;
    bool ExactlyOne =
        Node->K == CRegex::Kind::Star || Node->K == CRegex::Kind::Complement;
    if (ExactlyOne ? NK != 1 : NK == 0) {
      R.Fail = true;
      return nullptr;
    }
    if (NK > Budget) {
      R.Fail = true;
      return nullptr;
    }
    Node->Kids.reserve(NK);
    for (uint32_t I = 0; I < NK; ++I) {
      CRegexRef Kid = readCRegex(R, Depth + 1, Budget);
      if (!Kid)
        return nullptr;
      Node->Kids.push_back(std::move(Kid));
    }
    break;
  }
  }
  if (R.Fail)
    return nullptr;
  return Node;
}

//===----------------------------------------------------------------------===//
// Automaton blobs
//===----------------------------------------------------------------------===//

bool automatonFitsRecord(const Automaton &A) {
  size_t NC = A.alphabet().numClasses();
  size_t NS = A.dfa().numStates();
  return NC <= MaxClasses && NS <= MaxStates &&
         static_cast<uint64_t>(NS) * NC <= MaxTransWords;
}

void putAutomaton(std::string &Out, const Automaton &A) {
  const Alphabet &AB = A.alphabet();
  const DFA &D = A.dfa();
  const size_t NC = AB.numClasses();
  const size_t NS = D.numStates();
  putU32(Out, static_cast<uint32_t>(NC));
  // Every minterm class is one contiguous range; its lower bound is the
  // whole partition's serialization (Alphabet::fromClassBounds).
  for (size_t C = 0; C < NC; ++C)
    putU32(Out, static_cast<uint32_t>(AB.charsOf(C).intervals().front().Lo));
  putU32(Out, static_cast<uint32_t>(NS));
  putU32(Out, D.Start);
  putF64(Out, A.transitionDensity());
  putU32(Out, static_cast<uint32_t>(A.liveStateCount()));
  std::vector<bool> Live = A.liveMask();
  for (size_t S = 0; S < NS; ++S)
    Out.push_back(D.accept(static_cast<uint32_t>(S)) ? 1 : 0);
  for (size_t S = 0; S < NS; ++S)
    Out.push_back(Live[S] ? 1 : 0);
  // The payload base is 8-aligned in the arena, so padding Out to a
  // multiple of 4 lands the transition table on a 4-byte boundary — the
  // alignment a view-mode DFA needs to serve it in place.
  while (Out.size() % 4 != 0)
    Out.push_back(0);
  for (size_t S = 0; S < NS; ++S)
    for (size_t C = 0; C < NC; ++C)
      putU32(Out, D.next(static_cast<uint32_t>(S), static_cast<uint32_t>(C)));
}

struct AutomatonParts {
  std::shared_ptr<const Automaton> A;
  bool StartLive = false;
};

/// Decodes and fully validates one automaton blob. With a non-null
/// \p Pin (and a little-endian host and 4-aligned table) the DFA serves
/// accept/transition data straight from the arena; otherwise it copies.
AutomatonParts readAutomaton(Reader &R, const std::shared_ptr<const void> &Pin,
                             uint64_t &SharedBytes, const char *&Err) {
  AutomatonParts Out;
  auto Bad = [&](const char *Why) {
    R.Fail = true;
    Err = Why;
    return AutomatonParts{};
  };
  uint32_t NC = R.u32();
  if (R.Fail || NC == 0 || NC > MaxClasses)
    return Bad("artifact alphabet class count out of range");
  std::vector<CodePoint> Bounds(NC);
  for (uint32_t C = 0; C < NC; ++C) {
    uint32_t Lo = R.u32();
    if (R.Fail || Lo > static_cast<uint32_t>(MaxCodePoint) ||
        (C == 0 ? Lo != 0 : Lo <= static_cast<uint32_t>(Bounds[C - 1])))
      return Bad("artifact alphabet bounds not strictly increasing from 0");
    Bounds[C] = Lo;
  }
  uint32_t NS = R.u32();
  if (R.Fail || NS == 0 || NS > MaxStates)
    return Bad("artifact state count out of range");
  uint32_t Start = R.u32();
  if (R.Fail || Start >= NS)
    return Bad("artifact start state out of range");
  double Density = R.f64();
  if (R.Fail || !(Density >= 0.0 && Density <= 1.0)) // NaN fails too
    return Bad("artifact density out of range");
  uint32_t LiveCount = R.u32();
  if (R.Fail || LiveCount > NS)
    return Bad("artifact live count exceeds state count");
  const unsigned char *AcceptB = R.bytes(NS);
  const unsigned char *LiveB = R.bytes(NS);
  R.align4();
  const uint64_t TW = static_cast<uint64_t>(NS) * NC;
  if (TW > MaxTransWords)
    return Bad("artifact transition table too large");
  const unsigned char *TransB = R.bytes(static_cast<size_t>(TW) * 4);
  if (R.Fail)
    return Bad("artifact automaton truncated");

  std::vector<bool> Live(NS);
  size_t LiveSeen = 0;
  for (uint32_t S = 0; S < NS; ++S) {
    if (AcceptB[S] > 1 || LiveB[S] > 1)
      return Bad("artifact state bitmap byte not 0/1");
    if (AcceptB[S] && !LiveB[S])
      return Bad("artifact accepting state marked dead");
    if (LiveB[S]) {
      Live[S] = true;
      ++LiveSeen;
    }
  }
  if (LiveSeen != LiveCount)
    return Bad("artifact live count mismatch");

  auto TransAt = [&](uint64_t I) {
    const unsigned char *P = TransB + I * 4;
    return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
           (static_cast<uint32_t>(P[2]) << 16) |
           (static_cast<uint32_t>(P[3]) << 24);
  };
  // Every target in range; live-set locally consistent: a live
  // non-accepting state must step towards acceptance, i.e. have at least
  // one live successor. (Full co-accessibility would need the reverse BFS
  // the record exists to avoid; local consistency is enough to keep the
  // enumeration pruner from wandering into a dead subgraph or, worse,
  // dropping words of a tampered record's language.)
  for (uint32_t S = 0; S < NS; ++S) {
    bool HasLiveSucc = false;
    for (uint32_t C = 0; C < NC; ++C) {
      uint32_t T = TransAt(static_cast<uint64_t>(S) * NC + C);
      if (T >= NS)
        return Bad("artifact transition target out of range");
      if (Live[T])
        HasLiveSucc = true;
    }
    if (Live[S] && !AcceptB[S] && !HasLiveSucc)
      return Bad("artifact live state has no live successor");
  }

  DFA D;
  D.Start = Start;
  D.NumClasses = NC;
  bool View = Pin != nullptr && hostIsLittleEndian() &&
              reinterpret_cast<uintptr_t>(TransB) % alignof(uint32_t) == 0;
  if (View) {
    D.ViewAccept = AcceptB;
    D.ViewTrans = reinterpret_cast<const uint32_t *>(TransB);
    D.ViewStates = NS;
    SharedBytes += NS + TW * 4;
  } else {
    D.Accept.resize(NS);
    for (uint32_t S = 0; S < NS; ++S)
      D.Accept[S] = AcceptB[S] != 0;
    D.Trans.resize(static_cast<size_t>(TW));
    for (uint64_t I = 0; I < TW; ++I)
      D.Trans[static_cast<size_t>(I)] = TransAt(I);
  }
  Out.StartLive = Live[Start];
  Out.A = std::make_shared<const Automaton>(
      Automaton::fromParts(Alphabet::fromClassBounds(Bounds), std::move(D),
                           Density, std::move(Live), LiveCount,
                           View ? Pin : nullptr));
  return Out;
}

//===----------------------------------------------------------------------===//
// Anchored product blobs
//===----------------------------------------------------------------------===//

void putProduct(std::string &Out, const AnchoredProduct &P,
                const ProductLimits &L) {
  uint8_t Flags = (P.Empty ? 1 : 0) | (P.Complete ? 2 : 0);
  Out.push_back(static_cast<char>(Flags));
  putF64(Out, P.Density);
  putU64(Out, P.Budget);
  putU64(Out, L.StateLimit);
  putU64(Out, L.MaxCandidates);
  putU64(Out, L.MaxWordLength);
  putU64(Out, L.BaseExplore);
  putU32(Out, static_cast<uint32_t>(P.Words.size()));
  for (const UString &W : P.Words) {
    putU32(Out, static_cast<uint32_t>(W.size()));
    for (CodePoint C : W)
      putU32(Out, static_cast<uint32_t>(C));
  }
  putAutomaton(Out, *P.A);
}

std::shared_ptr<const AnchoredProduct>
readProduct(Reader &R, const std::shared_ptr<const void> &Pin,
            uint64_t &SharedBytes, ProductLimits &Lims, const char *&Err) {
  auto Bad = [&](const char *Why) {
    R.Fail = true;
    Err = Why;
    return std::shared_ptr<const AnchoredProduct>();
  };
  uint8_t Flags = R.u8();
  if (R.Fail || (Flags & ~3u) != 0)
    return Bad("artifact product flags unknown");
  double Density = R.f64();
  if (R.Fail || !(Density >= 0.0 && Density <= 1.0))
    return Bad("artifact product density out of range");
  uint64_t Budget = R.u64();
  uint64_t RawLims[4];
  for (uint64_t &V : RawLims) {
    V = R.u64();
    if (R.Fail || V > MaxLimitValue)
      return Bad("artifact product limits out of range");
  }
  Lims.StateLimit = static_cast<size_t>(RawLims[0]);
  Lims.MaxCandidates = static_cast<size_t>(RawLims[1]);
  Lims.MaxWordLength = static_cast<size_t>(RawLims[2]);
  Lims.BaseExplore = RawLims[3];
  uint32_t NW = R.u32();
  if (R.Fail || NW > MaxWords)
    return Bad("artifact product word count out of range");
  std::vector<UString> Words;
  Words.reserve(NW);
  for (uint32_t W = 0; W < NW; ++W) {
    uint32_t Len = R.u32();
    if (R.Fail || Len > MaxWordLen)
      return Bad("artifact product word length out of range");
    UString S;
    S.reserve(Len);
    for (uint32_t I = 0; I < Len; ++I) {
      uint32_t C = R.u32();
      if (R.Fail || C > static_cast<uint32_t>(MaxCodePoint))
        return Bad("artifact product word code point out of range");
      S.push_back(static_cast<CodePoint>(C));
    }
    Words.push_back(std::move(S));
  }
  AutomatonParts AP = readAutomaton(R, Pin, SharedBytes, Err);
  if (R.Fail || !AP.A)
    return nullptr;

  auto P = std::make_shared<AnchoredProduct>();
  P->Compiled = true;
  P->Cancelled = false;
  P->Empty = (Flags & 1) != 0;
  P->Complete = (Flags & 2) != 0;
  P->Density = Density;
  P->Budget = Budget;
  P->A = AP.A;
  P->Words = std::move(Words);
  // Cross-checks tying the summary flags to the automaton they describe:
  // an "empty" product whose start state is live (or vice versa) is
  // tampered, as is a stored candidate its own DFA rejects — the product
  // lane's Unsat verdicts lean on exactly these invariants.
  if (P->Empty == AP.StartLive)
    return Bad("artifact product emptiness contradicts live set");
  if (P->Empty && !P->Words.empty())
    return Bad("artifact empty product carries candidate words");
  for (const UString &W : P->Words)
    if (!P->A->accepts(W))
      return Bad("artifact product candidate rejected by its DFA");
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Record framing
//===----------------------------------------------------------------------===//

uint64_t snapshot::appendArtifactRecord(std::string &Arena, CompiledRegex &C) {
  while (Arena.size() % 8 != 0)
    Arena.push_back('\0');
  const uint64_t Off = Arena.size();

  uint32_t Flags = 0;
  // The 8-byte record header (u32 size + u32 flags) keeps the payload
  // base at Off + 8, still 8-aligned — the invariant the automaton
  // padding math assumes.
  std::string P;
  const RegularApprox &Ap = C.classicalApprox();
  putCRegex(P, Ap.Re);
  P.push_back(Ap.Exact ? 1 : 0);
  if (std::shared_ptr<const Automaton> A = C.automaton();
      A && automatonFitsRecord(*A)) {
    Flags |= RecHasAutomaton;
    putAutomaton(P, *A);
  }
  Flags |= RecAnchoredComputed;
  const std::optional<CRegexRef> &Anch = C.anchoredLanguage();
  if (Anch) {
    Flags |= RecAnchoredPresent;
    putCRegex(P, *Anch);
    if (std::shared_ptr<const AnchoredProduct> Pr = C.anchoredProductIfBuilt();
        Pr && Pr->Compiled && !Pr->Cancelled && Pr->A &&
        automatonFitsRecord(*Pr->A) && Pr->Words.size() <= MaxWords) {
      Flags |= RecHasProduct;
      putProduct(P, *Pr, C.anchoredProductLimits());
    }
  }
  if (P.size() > (1u << 30)) // record would not frame in a u32; skip it
    return NoArtifact;
  putU32(Arena, static_cast<uint32_t>(8 + P.size()));
  putU32(Arena, Flags);
  Arena += P;
  return Off;
}

snapshot::DecodedArtifacts
snapshot::decodeArtifactRecord(const unsigned char *Arena, size_t ArenaBytes,
                               uint64_t Off, std::shared_ptr<const void> Pin) {
  auto Invalid = [](const char *Why) {
    DecodedArtifacts Bad;
    Bad.Error = Why;
    return Bad;
  };
  try {
    if (Arena == nullptr || Off % 8 != 0 || Off >= ArenaBytes ||
        ArenaBytes - Off < 8)
      return Invalid("artifact record offset out of bounds");
    Reader R{Arena, ArenaBytes, static_cast<size_t>(Off)};
    uint32_t RecBytes = R.u32();
    if (RecBytes < 8 || RecBytes > ArenaBytes - Off)
      return Invalid("artifact record size out of bounds");
    R.N = static_cast<size_t>(Off) + RecBytes; // sub-bound: record only
    uint32_t Flags = R.u32();
    if ((Flags & ~RecKnownFlags) != 0)
      return Invalid("artifact record flags unknown");
    if ((Flags & RecAnchoredPresent) && !(Flags & RecAnchoredComputed))
      return Invalid("artifact anchored flags inconsistent");
    if ((Flags & RecHasProduct) && !(Flags & RecAnchoredPresent))
      return Invalid("artifact product without anchored language");

    DecodedArtifacts Out;
    const char *Err = "artifact record truncated";
    size_t Budget = MaxRegexNodes;
    CRegexRef ApproxRe = readCRegex(R, 0, Budget);
    uint8_t Exact = R.u8();
    if (R.Fail || !ApproxRe || Exact > 1)
      return Invalid("artifact approximation malformed");
    Out.Stages.Approx = RegularApprox{ApproxRe, Exact != 0};

    uint64_t Shared = 0;
    if (Flags & RecHasAutomaton) {
      AutomatonParts AP = readAutomaton(R, Pin, Shared, Err);
      if (R.Fail || !AP.A)
        return Invalid(Err);
      Out.Stages.Dfa = AP.A;
    }
    Out.Stages.AnchoredComputed = (Flags & RecAnchoredComputed) != 0;
    if (Flags & RecAnchoredPresent) {
      Budget = MaxRegexNodes;
      CRegexRef Lang = readCRegex(R, 0, Budget);
      if (R.Fail || !Lang)
        return Invalid("artifact anchored language malformed");
      Out.Stages.Anchored = Lang;
    }
    if (Flags & RecHasProduct) {
      std::shared_ptr<const AnchoredProduct> Pr =
          readProduct(R, Pin, Shared, Out.Stages.ProductLimitsUsed, Err);
      if (R.Fail || !Pr)
        return Invalid(Err);
      Out.Stages.Product = Pr;
    }
    if (R.Fail || R.At != static_cast<size_t>(Off) + RecBytes)
      return Invalid("artifact record has trailing bytes");
    Out.SharedBytes = Shared;
    Out.Valid = true;
    return Out;
  } catch (const std::exception &) {
    return Invalid("artifact record decode failed");
  }
}

//===----------------------------------------------------------------------===//
// MappedArtifactStore
//===----------------------------------------------------------------------===//

MappedArtifactStore::OpenOutcome
MappedArtifactStore::open(const std::string &Path) {
  OpenOutcome Out;
  std::shared_ptr<MappedArtifactStore> S(new MappedArtifactStore());
#if RECAP_HAVE_MMAP
  int FD = ::open(Path.c_str(), O_RDONLY);
  if (FD < 0) {
    Out.Error = "cannot open snapshot '" + Path + "'";
    return Out; // absent file: not damage, the caller just goes cold
  }
  struct stat St = {};
  if (::fstat(FD, &St) == 0 && St.st_size > 0) {
    void *M = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                     MAP_SHARED, FD, 0);
    if (M != MAP_FAILED) {
      S->Base = static_cast<const unsigned char *>(M);
      S->Bytes = static_cast<size_t>(St.st_size);
      S->Mapped = true;
    }
  }
  ::close(FD);
#endif
  if (!S->Mapped) {
    std::ifstream IS(Path, std::ios::binary);
    if (!IS) {
      Out.Error = "cannot open snapshot '" + Path + "'";
      return Out;
    }
    S->Owned.assign(std::istreambuf_iterator<char>(IS),
                    std::istreambuf_iterator<char>());
    S->Base = reinterpret_cast<const unsigned char *>(S->Owned.data());
    S->Bytes = S->Owned.size();
  }

  auto Damaged = [&](std::string Why) {
    OpenOutcome D;
    D.Damaged = true;
    D.Error = std::move(Why);
    return D;
  };
  auto ReadU32 = [&](size_t At) {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(S->Base[At + I]) << (8 * I);
    return V;
  };
  auto ReadU64 = [&](size_t At) {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(S->Base[At + I]) << (8 * I);
    return V;
  };
  if (S->Bytes < HeaderBytes + ChecksumBytes)
    return Damaged("snapshot shorter than header");
  if (std::memcmp(S->Base, Magic, sizeof(Magic)) != 0)
    return Damaged("bad snapshot magic");
  if (ReadU32(OffVersion) != SnapshotVersion)
    return Damaged("snapshot version mismatch");
  uint64_t ArtOff = ReadU64(OffArtifactOffset);
  uint64_t ArtLen = ReadU64(OffArtifactBytes);
  if (ArtOff == 0) {
    if (ArtLen != 0)
      return Damaged("snapshot artifact section out of bounds");
  } else if (ArtOff % 8 != 0 || ArtOff < HeaderBytes ||
             ArtOff > S->Bytes - ChecksumBytes ||
             ArtLen != S->Bytes - ChecksumBytes - ArtOff) {
    return Damaged("snapshot artifact section out of bounds");
  }
  uint64_t Stored = ReadU64(S->Bytes - ChecksumBytes);
  if (fnv1a(S->Base + 8, S->Bytes - 8 - ChecksumBytes) != Stored)
    return Damaged("snapshot checksum mismatch");
  S->ArenaOff = ArtOff;
  S->ArenaLen = ArtLen;
  Out.Store = std::move(S);
  return Out;
}

MappedArtifactStore::~MappedArtifactStore() {
#if RECAP_HAVE_MMAP
  if (Mapped)
    ::munmap(const_cast<unsigned char *>(Base), Bytes);
#endif
}

snapshot::DecodedArtifacts MappedArtifactStore::decode(uint64_t RelOff) const {
  return snapshot::decodeArtifactRecord(arena(), arenaBytes(), RelOff,
                                        shared_from_this());
}
