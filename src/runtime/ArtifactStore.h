//===- runtime/ArtifactStore.h - Zero-copy snapshot artifacts --*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot v2 artifact arena (DESIGN.md §11): flat, offset-based
/// records serializing each interned pattern's heavy pipeline stages —
/// classical approximation, alphabet partition, compiled DFA (with the
/// saved transition density and live-state data), anchored-exact
/// language, and the memoized anchored product. The layout is designed to
/// be adopted straight out of an mmap: DFA accept/transition tables are
/// stored exactly as the in-memory representation expects them, so a
/// MappedArtifactStore hands out view-mode automata whose tables point
/// into the single shared file mapping instead of per-process copies.
///
/// Every decode validates the record it reads (kind tags, class/state
/// counts, transition targets, live-set invariants, bounds) and returns
/// Valid=false instead of throwing, so one damaged record costs one
/// entry's warm start, never the load.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RUNTIME_ARTIFACTSTORE_H
#define RECAP_RUNTIME_ARTIFACTSTORE_H

#include "runtime/CompiledRegex.h"

#include <memory>
#include <string>

namespace recap {

namespace snapshot {

/// One entry's decoded artifact record.
struct DecodedArtifacts {
  bool Valid = false;
  std::string Error; ///< why !Valid, empty otherwise
  /// The decoded stages, ready for CompiledRegex::adoptStages().
  AdoptedStages Stages;
  /// Bytes of accept/transition tables adopted as views into the backing
  /// storage (0 when everything was copied out).
  uint64_t SharedBytes = 0;
};

/// Serializes \p C's stages as one flat record appended to \p Arena
/// (8-aligned), forcing the approximation, automaton and anchored
/// language; the anchored product is recorded only if already built.
/// Returns the record's arena-relative offset.
uint64_t appendArtifactRecord(std::string &Arena, CompiledRegex &C);

/// Decodes and validates the record at arena-relative \p Off. With a
/// non-null \p Pin the DFA tables become views into \p Arena (zero-copy;
/// the pin is held by each adopted Automaton); with a null Pin everything
/// is copied out (stream loads). Never throws; damage => Valid=false.
DecodedArtifacts decodeArtifactRecord(const unsigned char *Arena,
                                      size_t ArenaBytes, uint64_t Off,
                                      std::shared_ptr<const void> Pin);

} // namespace snapshot

/// One process-wide read-only mapping of a v2 snapshot file. open()
/// validates the header, artifact-section bounds and the whole-file
/// checksum before any record is trusted; decode() then hands out
/// artifact views whose lifetime is pinned to this store via shared_ptr,
/// so the mapping stays valid for as long as any adopted automaton lives
/// — even after the store handle itself is dropped.
class MappedArtifactStore
    : public std::enable_shared_from_this<MappedArtifactStore> {
public:
  struct OpenOutcome {
    std::shared_ptr<MappedArtifactStore> Store; ///< null on any failure
    /// The file exists but is structurally bad (short, bad magic/version,
    /// checksum or bounds failure): the caller must go cold. False with a
    /// null Store means the file is simply absent/unreadable.
    bool Damaged = false;
    std::string Error;
  };
  static OpenOutcome open(const std::string &Path);

  ~MappedArtifactStore();
  MappedArtifactStore(const MappedArtifactStore &) = delete;
  MappedArtifactStore &operator=(const MappedArtifactStore &) = delete;

  const unsigned char *fileData() const { return Base; }
  size_t fileSize() const { return Bytes; }
  const unsigned char *arena() const { return Base + ArenaOff; }
  size_t arenaBytes() const { return static_cast<size_t>(ArenaLen); }

  /// True when the file is really mmapped (pages shared across every
  /// process mapping it); false when mmap was unavailable and open()
  /// fell back to a private read — views still work, nothing is shared.
  bool zeroCopy() const { return Mapped; }

  /// decodeArtifactRecord over this store's arena, views pinned to the
  /// mapping.
  snapshot::DecodedArtifacts decode(uint64_t RelOff) const;

private:
  MappedArtifactStore() = default;

  const unsigned char *Base = nullptr;
  size_t Bytes = 0;
  uint64_t ArenaOff = 0;
  uint64_t ArenaLen = 0;
  bool Mapped = false;
  std::string Owned; ///< fallback storage when !Mapped
};

} // namespace recap

#endif // RECAP_RUNTIME_ARTIFACTSTORE_H
