//===- runtime/CompiledRegex.cpp - Compile-once regex artifact -------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledRegex.h"

using namespace recap;

namespace {

/// Variable prefix reserved for cached model templates. \x01 cannot occur
/// in caller-chosen prefixes (they derive from identifiers and counters),
/// so renaming "<prefix>!..." template variables never captures a
/// caller-named variable.
const std::string TemplatePrefix = "\x01T";
const std::string TemplateInputName = "\x01in";

} // namespace

CompiledRegex::CompiledRegex(Regex R, std::shared_ptr<RuntimeStats> Stats)
    : R(std::move(R)), Stats(std::move(Stats)) {
  if (!this->Stats)
    this->Stats = std::make_shared<RuntimeStats>();
}

// Every stage accessor takes StageMu for the whole build-or-hit: a cold
// build publishes its artifact before the lock is released, so a
// concurrent first-toucher either does the build itself or blocks and
// then reads the finished artifact — never a duplicate, never a tear.
// The returned references point at immutable storage (optionals are set
// once and never reset), so callers may keep using them lock-free.

const RegexFeatures &CompiledRegex::features() {
  std::lock_guard<std::mutex> Lock(StageMu);
  if (Feats) {
    ++Stats->FeatureHits;
    return *Feats;
  }
  ++Stats->FeatureComputes;
  Feats = analyzeFeatures(R);
  return *Feats;
}

const std::map<const BackreferenceNode *, BackrefType> &
CompiledRegex::backrefTypes() {
  std::lock_guard<std::mutex> Lock(StageMu);
  if (BrTypes) {
    ++Stats->BackrefHits;
    return *BrTypes;
  }
  ++Stats->BackrefComputes;
  BrTypes = classifyBackreferences(R);
  return *BrTypes;
}

const RegularApprox &CompiledRegex::approxLocked() {
  if (Approx) {
    ++Stats->ApproxHits;
    return *Approx;
  }
  ++Stats->ApproxComputes;
  ApproxOptions AOpts;
  AOpts.IgnoreCase = R.flags().IgnoreCase;
  AOpts.Unicode = R.flags().Unicode;
  Approx = approximateRegularEx(R.root(), R, AOpts);
  return *Approx;
}

const RegularApprox &CompiledRegex::classicalApprox() {
  std::lock_guard<std::mutex> Lock(StageMu);
  return approxLocked();
}

std::shared_ptr<const Automaton> CompiledRegex::automaton(size_t StateLimit) {
  std::lock_guard<std::mutex> Lock(StageMu);
  if (DfaDone) {
    ++Stats->AutomatonHits;
    return Dfa;
  }
  ++Stats->AutomatonComputes;
  DfaDone = true;
  Result<Automaton> A = Automaton::compile(approxLocked().Re, StateLimit);
  if (A)
    Dfa = std::make_shared<const Automaton>(A.take());
  return Dfa;
}

const std::optional<CRegexRef> &CompiledRegex::anchoredLocked() {
  if (AnchDone)
    return AnchLang;
  AnchDone = true;
  ApproxOptions AOpts;
  AOpts.IgnoreCase = R.flags().IgnoreCase;
  AOpts.Unicode = R.flags().Unicode;
  AnchLang = anchoredExactLanguage(R, AOpts);
  return AnchLang;
}

const std::optional<CRegexRef> &CompiledRegex::anchoredLanguage() {
  std::lock_guard<std::mutex> Lock(StageMu);
  return anchoredLocked();
}

std::shared_ptr<const AnchoredProduct>
CompiledRegex::anchoredProduct(const ProductLimits &Limits) {
  std::lock_guard<std::mutex> Lock(StageMu);
  const std::optional<CRegexRef> &Lang = anchoredLocked();
  if (!Lang)
    return nullptr;
  auto SameLimits = [&](const ProductLimits &A, const ProductLimits &B) {
    return A.StateLimit == B.StateLimit &&
           A.MaxCandidates == B.MaxCandidates &&
           A.MaxWordLength == B.MaxWordLength &&
           A.BaseExplore == B.BaseExplore;
  };
  if (ProdDone)
    return SameLimits(ProdLims, Limits) ? Prod : nullptr;
  ProdDone = true;
  ProdLims = Limits;
  // Same alphabet as BackendDispatcher's product lane: Latin-1 minus the
  // meta markers, mirroring the Z3 backend's model space so verdicts
  // agree across lanes.
  CRegexRef Alpha =
      cStar(cClass(CharSet::range(0, 0xFF).minus(CharSet::metas())));
  Prod = std::make_shared<const AnchoredProduct>(
      buildAnchoredProduct({*Lang}, {}, Alpha, Limits));
  return Prod;
}

std::shared_ptr<const AnchoredProduct> CompiledRegex::anchoredProductIfBuilt() {
  std::lock_guard<std::mutex> Lock(StageMu);
  return ProdDone ? Prod : nullptr;
}

ProductLimits CompiledRegex::anchoredProductLimits() {
  std::lock_guard<std::mutex> Lock(StageMu);
  return ProdLims;
}

size_t CompiledRegex::adoptStages(const AdoptedStages &S) {
  std::lock_guard<std::mutex> Lock(StageMu);
  size_t Installed = 0;
  if (S.Approx && !Approx) {
    Approx = *S.Approx;
    ++Installed;
  }
  if (S.Dfa && !DfaDone) {
    DfaDone = true;
    Dfa = S.Dfa;
    ++Installed;
  }
  if (S.AnchoredComputed && !AnchDone) {
    AnchDone = true;
    AnchLang = S.Anchored;
    ++Installed;
  }
  if (S.Product && !ProdDone) {
    ProdDone = true;
    ProdLims = S.ProductLimitsUsed;
    Prod = S.Product;
    ++Installed;
  }
  return Installed;
}

std::shared_ptr<const Matcher> CompiledRegex::sharedMatcher() {
  std::lock_guard<std::mutex> Lock(StageMu);
  if (M) {
    ++Stats->MatcherHits;
    return M;
  }
  ++Stats->MatcherComputes;
  M = std::make_shared<const Matcher>(R);
  return M;
}

SymbolicMatch CompiledRegex::instantiate(TermRef Input,
                                         const std::string &VarPrefix,
                                         const ModelOptions &Opts) {
  // Only the template lookup/build needs StageMu. The instantiation —
  // a rename pass over the whole model term DAG, and the per-query hot
  // path under shard-per-worker DSE — runs outside the lock: entries
  // are never erased, std::map nodes are stable, and a built Template
  // is immutable, so the reference stays valid and safe to read while
  // other shards build templates for different ModelOptions.
  const Template *T;
  {
    std::lock_guard<std::mutex> Lock(StageMu);
    auto It = Templates.find(modelKey(Opts));
    if (It == Templates.end()) {
      ++Stats->TemplateComputes;
      Template NewT;
      NewT.Input = mkStrVar(TemplateInputName);
      NewT.Match = ModelBuilder(R, TemplatePrefix, Opts).build(NewT.Input);
      It = Templates.emplace(modelKey(Opts), std::move(NewT)).first;
    } else {
      ++Stats->TemplateHits;
    }
    T = &It->second;
  }
  return instantiateSymbolicMatch(T->Match, TemplatePrefix, VarPrefix,
                                  T->Input, std::move(Input));
}
