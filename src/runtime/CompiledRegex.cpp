//===- runtime/CompiledRegex.cpp - Compile-once regex artifact -------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CompiledRegex.h"

using namespace recap;

namespace {

/// Variable prefix reserved for cached model templates. \x01 cannot occur
/// in caller-chosen prefixes (they derive from identifiers and counters),
/// so renaming "<prefix>!..." template variables never captures a
/// caller-named variable.
const std::string TemplatePrefix = "\x01T";
const std::string TemplateInputName = "\x01in";

} // namespace

CompiledRegex::CompiledRegex(Regex R, std::shared_ptr<RuntimeStats> Stats)
    : R(std::move(R)), Stats(std::move(Stats)) {
  if (!this->Stats)
    this->Stats = std::make_shared<RuntimeStats>();
}

const RegexFeatures &CompiledRegex::features() {
  if (Feats) {
    ++Stats->FeatureHits;
    return *Feats;
  }
  ++Stats->FeatureComputes;
  Feats = analyzeFeatures(R);
  return *Feats;
}

const std::map<const BackreferenceNode *, BackrefType> &
CompiledRegex::backrefTypes() {
  if (BrTypes) {
    ++Stats->BackrefHits;
    return *BrTypes;
  }
  ++Stats->BackrefComputes;
  BrTypes = classifyBackreferences(R);
  return *BrTypes;
}

const RegularApprox &CompiledRegex::classicalApprox() {
  if (Approx) {
    ++Stats->ApproxHits;
    return *Approx;
  }
  ++Stats->ApproxComputes;
  ApproxOptions AOpts;
  AOpts.IgnoreCase = R.flags().IgnoreCase;
  AOpts.Unicode = R.flags().Unicode;
  Approx = approximateRegularEx(R.root(), R, AOpts);
  return *Approx;
}

std::shared_ptr<const Automaton> CompiledRegex::automaton(size_t StateLimit) {
  if (DfaDone) {
    ++Stats->AutomatonHits;
    return Dfa;
  }
  ++Stats->AutomatonComputes;
  DfaDone = true;
  Result<Automaton> A = Automaton::compile(classicalApprox().Re, StateLimit);
  if (A)
    Dfa = std::make_shared<const Automaton>(A.take());
  return Dfa;
}

std::shared_ptr<const Matcher> CompiledRegex::sharedMatcher() {
  if (M) {
    ++Stats->MatcherHits;
    return M;
  }
  ++Stats->MatcherComputes;
  M = std::make_shared<const Matcher>(R);
  return M;
}

SymbolicMatch CompiledRegex::instantiate(TermRef Input,
                                         const std::string &VarPrefix,
                                         const ModelOptions &Opts) {
  auto It = Templates.find(modelKey(Opts));
  if (It == Templates.end()) {
    ++Stats->TemplateComputes;
    Template T;
    T.Input = mkStrVar(TemplateInputName);
    T.Match = ModelBuilder(R, TemplatePrefix, Opts).build(T.Input);
    It = Templates.emplace(modelKey(Opts), std::move(T)).first;
  } else {
    ++Stats->TemplateHits;
  }
  return instantiateSymbolicMatch(It->second.Match, TemplatePrefix,
                                  VarPrefix, It->second.Input,
                                  std::move(Input));
}
