//===- runtime/RuntimeSnapshot.cpp - Warm-start snapshot save/load ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/RegexRuntime.h"
#include "runtime/RuntimeSnapshot.h"

#include "reliability/FaultInjector.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <vector>

using namespace recap;
using namespace recap::snapshot;

namespace {

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Bounds-checked little-endian reader over the loaded buffer; any
/// overrun flips Fail and sticks (the transactional-load contract).
struct Reader {
  const unsigned char *Data;
  size_t N;
  size_t At = 0;
  bool Fail = false;

  bool need(size_t K) {
    if (Fail || N - At < K) {
      Fail = true;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[At++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[At++]) << (8 * I);
    return V;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[At++];
  }
  std::string str(uint32_t Len) {
    if (!need(Len))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + At), Len);
    At += Len;
    return S;
  }
};

/// RegexFeatures fields in declaration order — the serialization contract
/// (SnapshotFeatureWords must equal this list's length).
std::vector<uint32_t> featureWords(const RegexFeatures &F) {
  return {F.CaptureGroups,   F.NonCapturingGroups,
          F.Backreferences,  F.QuantifiedBackreferences,
          F.MutableBackreferences, F.EmptyBackreferences,
          F.Lookaheads,      F.Lookbehinds,
          F.NamedGroups,     F.NamedBackreferences,
          F.WordBoundaries,  F.Anchors,
          F.CharacterClasses, F.ClassRanges,
          F.KleeneStar,      F.KleeneStarLazy,
          F.KleenePlus,      F.KleenePlusLazy,
          F.Optional,        F.Repetition,
          F.RepetitionLazy};
}

RegexFeatures featuresFromWords(const std::vector<uint32_t> &W) {
  RegexFeatures F;
  F.CaptureGroups = W[0];
  F.NonCapturingGroups = W[1];
  F.Backreferences = W[2];
  F.QuantifiedBackreferences = W[3];
  F.MutableBackreferences = W[4];
  F.EmptyBackreferences = W[5];
  F.Lookaheads = W[6];
  F.Lookbehinds = W[7];
  F.NamedGroups = W[8];
  F.NamedBackreferences = W[9];
  F.WordBoundaries = W[10];
  F.Anchors = W[11];
  F.CharacterClasses = W[12];
  F.ClassRanges = W[13];
  F.KleeneStar = W[14];
  F.KleeneStarLazy = W[15];
  F.KleenePlus = W[16];
  F.KleenePlusLazy = W[17];
  F.Optional = W[18];
  F.Repetition = W[19];
  F.RepetitionLazy = W[20];
  return F;
}

static_assert(SnapshotFeatureWords == 21,
              "keep featureWords()/featuresFromWords() and the constant "
              "in sync with RegexFeatures");

struct RawEntry {
  std::string Flags;
  std::string Pattern;
  RegexFeatures Features;
  bool ApproxExact = false;
};

} // namespace

bool RegexRuntime::save(std::ostream &OS) const {
  // Collect artifacts under the intern lock, then force the recorded
  // stages outside it (a cold features/approx build takes the artifact's
  // own stage mutex and must not serialize interning behind Mu).
  std::vector<std::shared_ptr<CompiledRegex>> Artifacts;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Artifacts.reserve(Entries.size());
    Entries.forEachLru(
        [&](const std::string &, const std::shared_ptr<CompiledRegex> &C) {
          Artifacts.push_back(C);
        });
  }

  std::string Body;
  for (const std::shared_ptr<CompiledRegex> &C : Artifacts) {
    std::string Flags = C->flags().str();
    std::string Pattern = toUTF8(C->pattern());
    const RegexFeatures &F = C->features();
    bool Exact = C->classicalApprox().Exact;
    putU32(Body, static_cast<uint32_t>(Flags.size()));
    Body += Flags;
    putU32(Body, static_cast<uint32_t>(Pattern.size()));
    Body += Pattern;
    for (uint32_t W : featureWords(F))
      putU32(Body, W);
    Body.push_back(Exact ? 1 : 0);
  }

  std::string Out;
  Out.append(Magic, sizeof(Magic));
  putU32(Out, SnapshotVersion);
  putU32(Out, SnapshotFeatureWords);
  putU64(Out, Artifacts.size());
  Out += Body;
  putU64(Out, fnv1a(reinterpret_cast<const unsigned char *>(Body.data()),
                    Body.size()));
  OS.write(Out.data(), static_cast<std::streamsize>(Out.size()));
  return static_cast<bool>(OS);
}

bool RegexRuntime::save(const std::string &Path) const {
  // Chaos harness: a scripted fault models an unwritable disk — the save
  // reports failure and Path keeps whatever good snapshot it had.
  if (FaultInjector *FI = FaultInjector::active()) {
    try {
      if (FI->fire(FaultSite::SnapshotSave, nullptr))
        return false;
    } catch (const FaultInjected &) {
      return false;
    }
  }

  // Write-then-rename: a crash (or disk-full) mid-save must never leave a
  // truncated file at Path where the next run's loadOnce() would find it —
  // the load would go cold and the previous good snapshot would be gone.
  // rename(2) on the same filesystem swaps the complete temp file in
  // atomically; any failure leaves Path untouched.
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS || !save(OS)) {
      std::remove(Tmp.c_str());
      return false;
    }
    // Flush before reporting success: a buffered write that only fails at
    // destruction (disk full) must not report a persisted snapshot.
    OS.flush();
    if (!OS) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

SnapshotLoadResult RegexRuntime::load(std::istream &IS, unsigned Stages) {
  SnapshotLoadResult Res;
  auto Cold = [&](const char *Why) {
    Res.Cold = true;
    Res.Error = Why;
    return Res;
  };

  // Chaos harness: a scripted fault models a corrupt/unreadable snapshot
  // (the load goes cold, exactly as a checksum mismatch would).
  if (FaultInjector *FI = FaultInjector::active()) {
    if (FI->fire(FaultSite::SnapshotLoad, nullptr))
      return Cold("injected snapshot fault");
  }

  std::string Buf((std::istreambuf_iterator<char>(IS)),
                  std::istreambuf_iterator<char>());
  if (Buf.size() < HeaderBytes + ChecksumBytes)
    return Cold("snapshot shorter than header");
  if (std::memcmp(Buf.data(), Magic, sizeof(Magic)) != 0)
    return Cold("bad snapshot magic");

  Reader R{reinterpret_cast<const unsigned char *>(Buf.data()),
           Buf.size() - ChecksumBytes, sizeof(Magic)};
  uint32_t Version = R.u32();
  uint32_t Words = R.u32();
  uint64_t Count = R.u64();
  if (Version != SnapshotVersion)
    return Cold("snapshot version mismatch");
  if (Words != SnapshotFeatureWords)
    return Cold("snapshot feature layout mismatch");

  uint64_t Stored = 0;
  {
    Reader Tail{reinterpret_cast<const unsigned char *>(Buf.data()),
                Buf.size(), Buf.size() - ChecksumBytes};
    Stored = Tail.u64();
  }
  if (fnv1a(reinterpret_cast<const unsigned char *>(Buf.data()) +
                HeaderBytes,
            Buf.size() - HeaderBytes - ChecksumBytes) != Stored)
    return Cold("snapshot checksum mismatch");

  // The count field sits in the header, outside the checksummed entry
  // region — validate it against the bytes actually present before
  // sizing anything (a corrupt count must load cold, not throw from
  // vector::reserve).
  constexpr uint64_t MinEntryBytes =
      4 + 4 + 4ull * SnapshotFeatureWords + 1;
  if (Count > (R.N - R.At) / MinEntryBytes)
    return Cold("snapshot entry count exceeds file size");

  // Decode everything before touching the table: a malformed entry midway
  // must not leave a half-loaded runtime.
  std::vector<RawEntry> Raw;
  Raw.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    RawEntry E;
    E.Flags = R.str(R.u32());
    E.Pattern = R.str(R.u32());
    std::vector<uint32_t> W(SnapshotFeatureWords);
    for (uint32_t &V : W)
      V = R.u32();
    E.ApproxExact = R.u8() != 0;
    if (R.Fail)
      return Cold("snapshot entries truncated");
    E.Features = featuresFromWords(W);
    Raw.push_back(std::move(E));
  }
  if (R.At != R.N)
    return Cold("snapshot has trailing bytes");

  for (const RawEntry &E : Raw) {
    Result<std::shared_ptr<CompiledRegex>> C = get(E.Pattern, E.Flags);
    if (!C) {
      ++Res.Rejected;
      ++Stats->SnapshotRejected;
      continue;
    }
    warm(*C, Stages);
    // The recorded metadata must agree with the recomputed pipeline; a
    // stale snapshot (older parser/analyzer) is rejected per entry. The
    // interned artifact itself is correct either way — only the warm
    // credit is withheld.
    if (!((*C)->features() == E.Features) ||
        (*C)->classicalApprox().Exact != E.ApproxExact) {
      ++Res.Rejected;
      ++Stats->SnapshotRejected;
      continue;
    }
    ++Res.Loaded;
    ++Stats->SnapshotLoaded;
  }
  return Res;
}

SnapshotLoadResult RegexRuntime::load(const std::string &Path,
                                      unsigned Stages) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    SnapshotLoadResult Res;
    Res.Cold = true;
    Res.Error = "cannot open snapshot '" + Path + "'";
    return Res;
  }
  try {
    return load(IS, Stages);
  } catch (const std::exception &E) {
    // A load must never take the run down (an injected Throw, or an
    // allocation failure on adversarial sizes): it goes cold instead —
    // the same contract as any other form of damage.
    SnapshotLoadResult Res;
    Res.Cold = true;
    Res.Error = E.what();
    return Res;
  }
}

SnapshotLoadResult RegexRuntime::loadOnce(const std::string &Path,
                                          unsigned Stages) {
  // Serializes concurrent first-comers: one loads, the rest wait on
  // SnapMu and then skip — so corpus tasks sharing this runtime see a
  // fully warm table, never a half-loaded race. Only a structurally
  // valid load latches: a cold attempt (file not written yet, corrupt)
  // stays retryable, so a long-lived runtime is not permanently locked
  // out of its warm start by one early miss.
  std::lock_guard<std::mutex> Lock(SnapMu);
  if (SnapshotDone) {
    SnapshotLoadResult Res;
    Res.Skipped = true;
    return Res;
  }
  SnapshotLoadResult Res = load(Path, Stages);
  if (!Res.Cold) {
    // A warm load after an earlier cold attempt is a recovery (the
    // snapshot appeared, or transient damage cleared): count it so runs
    // that healed are visible in the stats.
    if (SnapColdSeen)
      ++Stats->SnapshotRecovered;
    SnapshotDone = true;
  } else {
    SnapColdSeen = true;
  }
  return Res;
}
