//===- runtime/RuntimeSnapshot.cpp - Warm-start snapshot save/load ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArtifactStore.h"
#include "runtime/RegexRuntime.h"
#include "runtime/RuntimeSnapshot.h"

#include "reliability/FaultInjector.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <vector>

using namespace recap;
using namespace recap::snapshot;

namespace {

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Bounds-checked little-endian reader over the loaded buffer; any
/// overrun flips Fail and sticks (the transactional-load contract).
struct Reader {
  const unsigned char *Data;
  size_t N;
  size_t At = 0;
  bool Fail = false;

  bool need(size_t K) {
    if (Fail || N - At < K) {
      Fail = true;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[At++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[At++]) << (8 * I);
    return V;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[At++];
  }
  std::string str(uint32_t Len) {
    if (!need(Len))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + At), Len);
    At += Len;
    return S;
  }
};

/// RegexFeatures fields in declaration order — the serialization contract
/// (SnapshotFeatureWords must equal this list's length).
std::vector<uint32_t> featureWords(const RegexFeatures &F) {
  return {F.CaptureGroups,   F.NonCapturingGroups,
          F.Backreferences,  F.QuantifiedBackreferences,
          F.MutableBackreferences, F.EmptyBackreferences,
          F.Lookaheads,      F.Lookbehinds,
          F.NamedGroups,     F.NamedBackreferences,
          F.WordBoundaries,  F.Anchors,
          F.CharacterClasses, F.ClassRanges,
          F.KleeneStar,      F.KleeneStarLazy,
          F.KleenePlus,      F.KleenePlusLazy,
          F.Optional,        F.Repetition,
          F.RepetitionLazy};
}

RegexFeatures featuresFromWords(const std::vector<uint32_t> &W) {
  RegexFeatures F;
  F.CaptureGroups = W[0];
  F.NonCapturingGroups = W[1];
  F.Backreferences = W[2];
  F.QuantifiedBackreferences = W[3];
  F.MutableBackreferences = W[4];
  F.EmptyBackreferences = W[5];
  F.Lookaheads = W[6];
  F.Lookbehinds = W[7];
  F.NamedGroups = W[8];
  F.NamedBackreferences = W[9];
  F.WordBoundaries = W[10];
  F.Anchors = W[11];
  F.CharacterClasses = W[12];
  F.ClassRanges = W[13];
  F.KleeneStar = W[14];
  F.KleeneStarLazy = W[15];
  F.KleenePlus = W[16];
  F.KleenePlusLazy = W[17];
  F.Optional = W[18];
  F.Repetition = W[19];
  F.RepetitionLazy = W[20];
  return F;
}

static_assert(SnapshotFeatureWords == 21,
              "keep featureWords()/featuresFromWords() and the constant "
              "in sync with RegexFeatures");

struct RawEntry {
  std::string Flags;
  std::string Pattern;
  RegexFeatures Features;
  bool ApproxExact = false;
  uint64_t LastGen = 0;
  uint64_t RecOff = NoArtifact;
};

} // namespace

bool RegexRuntime::save(std::ostream &OS,
                        const SnapshotSaveOptions &SOpts) const {
  // Collect artifacts under the intern lock, then force the recorded
  // stages outside it (a cold features/approx build takes the artifact's
  // own stage mutex and must not serialize interning behind Mu).
  struct Saved {
    std::shared_ptr<CompiledRegex> C;
    uint64_t LastGen = 0;
  };
  std::vector<Saved> Artifacts;
  uint64_t Gen = 0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Gen = Generation;
    Artifacts.reserve(Entries.size());
    Entries.forEachLru([&](const std::string &, const Interned &E) {
      Artifacts.push_back({E.C, E.LastGen});
    });
  }

  // Aging happens before any stage forcing: an entry about to be dropped
  // must not cost an automaton build first.
  if (SOpts.MaxAgeGenerations != 0) {
    std::vector<Saved> Kept;
    Kept.reserve(Artifacts.size());
    for (Saved &S : Artifacts) {
      if (Gen - S.LastGen > SOpts.MaxAgeGenerations) {
        ++Stats->AgedOut;
        continue;
      }
      Kept.push_back(std::move(S));
    }
    Artifacts = std::move(Kept);
  }

  // Arena first: each entry's record offset goes into its body fields.
  // appendArtifactRecord forces the approximation / automaton / anchored
  // stages (the product only if already built), so a save doubles as a
  // full warm of the surviving entries.
  std::string Arena;
  std::vector<uint64_t> RecOffs(Artifacts.size(), NoArtifact);
  if (SOpts.IncludeArtifacts)
    for (size_t I = 0; I < Artifacts.size(); ++I)
      RecOffs[I] = appendArtifactRecord(Arena, *Artifacts[I].C);

  std::string Body;
  for (size_t I = 0; I < Artifacts.size(); ++I) {
    CompiledRegex &C = *Artifacts[I].C;
    std::string Flags = C.flags().str();
    std::string Pattern = toUTF8(C.pattern());
    const RegexFeatures &F = C.features();
    bool Exact = C.classicalApprox().Exact;
    putU32(Body, static_cast<uint32_t>(Flags.size()));
    Body += Flags;
    putU32(Body, static_cast<uint32_t>(Pattern.size()));
    Body += Pattern;
    for (uint32_t W : featureWords(F))
      putU32(Body, W);
    Body.push_back(Exact ? 1 : 0);
    putU64(Body, Artifacts[I].LastGen);
    putU64(Body, RecOffs[I]);
  }

  std::string Out;
  Out.append(Magic, sizeof(Magic));
  putU32(Out, SnapshotVersion);
  putU32(Out, SnapshotFeatureWords);
  putU64(Out, Artifacts.size());
  putU64(Out, Gen);
  uint64_t ArtOff = 0;
  if (!Arena.empty())
    ArtOff = (HeaderBytes + Body.size() + 7) & ~uint64_t(7);
  putU64(Out, ArtOff);
  putU64(Out, ArtOff == 0 ? 0 : Arena.size());
  Out += Body;
  if (ArtOff != 0) {
    while (Out.size() < ArtOff)
      Out.push_back(0);
    Out += Arena;
  }
  putU64(Out, fnv1a(reinterpret_cast<const unsigned char *>(Out.data()) + 8,
                    Out.size() - 8));
  OS.write(Out.data(), static_cast<std::streamsize>(Out.size()));
  return static_cast<bool>(OS);
}

bool RegexRuntime::save(const std::string &Path,
                        const SnapshotSaveOptions &SOpts) const {
  // Chaos harness: a scripted fault models an unwritable disk — the save
  // reports failure and Path keeps whatever good snapshot it had.
  if (FaultInjector *FI = FaultInjector::active()) {
    try {
      if (FI->fire(FaultSite::SnapshotSave, nullptr))
        return false;
    } catch (const FaultInjected &) {
      return false;
    }
  }

  // Write-then-rename: a crash (or disk-full) mid-save must never leave a
  // truncated file at Path where the next run's loadOnce() would find it —
  // the load would go cold and the previous good snapshot would be gone.
  // rename(2) on the same filesystem swaps the complete temp file in
  // atomically; any failure leaves Path untouched.
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS || !save(OS, SOpts)) {
      std::remove(Tmp.c_str());
      return false;
    }
    // Flush before reporting success: a buffered write that only fails at
    // destruction (disk full) must not report a persisted snapshot.
    OS.flush();
    if (!OS) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

SnapshotLoadResult RegexRuntime::loadBuffer(
    const unsigned char *Data, size_t N, unsigned Stages, bool AdoptArtifacts,
    const std::shared_ptr<const MappedArtifactStore> &Store) {
  SnapshotLoadResult Res;
  auto Cold = [&](const char *Why) {
    Res.Cold = true;
    Res.Error = Why;
    return Res;
  };

  // Chaos harness: a scripted fault models a corrupt/unreadable snapshot
  // (the load goes cold, exactly as a checksum mismatch would). Shared by
  // the stream and mmap paths.
  if (FaultInjector *FI = FaultInjector::active()) {
    if (FI->fire(FaultSite::SnapshotLoad, nullptr))
      return Cold("injected snapshot fault");
  }

  if (N < HeaderBytes + ChecksumBytes)
    return Cold("snapshot shorter than header");
  if (std::memcmp(Data, Magic, sizeof(Magic)) != 0)
    return Cold("bad snapshot magic");

  Reader H{Data, HeaderBytes, sizeof(Magic)};
  uint32_t Version = H.u32();
  uint32_t Words = H.u32();
  uint64_t Count = H.u64();
  uint64_t StoredGen = H.u64();
  uint64_t ArtOff = H.u64();
  uint64_t ArtLen = H.u64();
  if (Version != SnapshotVersion)
    return Cold("snapshot version mismatch");
  if (Words != SnapshotFeatureWords)
    return Cold("snapshot feature layout mismatch");

  // Arena bounds before anything is sized from them: the arena must butt
  // exactly against the checksum trailer (so a truncated file can never
  // pass as a shorter-but-valid one).
  if (ArtOff == 0) {
    if (ArtLen != 0)
      return Cold("snapshot artifact section out of bounds");
  } else if (ArtOff % 8 != 0 || ArtOff < HeaderBytes ||
             ArtOff > N - ChecksumBytes ||
             ArtLen != N - ChecksumBytes - ArtOff) {
    return Cold("snapshot artifact section out of bounds");
  }
  const size_t EntriesEnd =
      ArtOff != 0 ? static_cast<size_t>(ArtOff) : N - ChecksumBytes;

  // The count field must fit the bytes actually present before sizing
  // anything (a corrupt count must load cold, not throw from
  // vector::reserve). Checked before the checksum so the error names the
  // real problem.
  constexpr uint64_t MinEntryBytes =
      4 + 4 + 4ull * SnapshotFeatureWords + 1 + 8 + 8;
  if (Count > (EntriesEnd - HeaderBytes) / MinEntryBytes)
    return Cold("snapshot entry count exceeds file size");

  uint64_t Stored = 0;
  {
    Reader Tail{Data, N, N - ChecksumBytes};
    Stored = Tail.u64();
  }
  if (fnv1a(Data + 8, N - 8 - ChecksumBytes) != Stored)
    return Cold("snapshot checksum mismatch");

  // Decode everything before touching the table: a malformed entry midway
  // must not leave a half-loaded runtime.
  Reader R{Data, EntriesEnd, HeaderBytes};
  std::vector<RawEntry> Raw;
  Raw.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    RawEntry E;
    E.Flags = R.str(R.u32());
    E.Pattern = R.str(R.u32());
    std::vector<uint32_t> W(SnapshotFeatureWords);
    for (uint32_t &V : W)
      V = R.u32();
    E.ApproxExact = R.u8() != 0;
    E.LastGen = R.u64();
    E.RecOff = R.u64();
    if (R.Fail)
      return Cold("snapshot entries truncated");
    E.Features = featuresFromWords(W);
    Raw.push_back(std::move(E));
  }
  // Up to 7 zero bytes of arena alignment may follow the entries; more,
  // or non-zero bytes, is damage.
  if (EntriesEnd - R.At >= 8)
    return Cold("snapshot has trailing bytes");
  for (size_t I = R.At; I < EntriesEnd; ++I)
    if (Data[I] != 0)
      return Cold("snapshot has trailing bytes");

  Res.ZeroCopy = Store != nullptr && Store->zeroCopy();
  for (const RawEntry &E : Raw) {
    Result<std::shared_ptr<CompiledRegex>> C = get(E.Pattern, E.Flags);
    if (!C) {
      ++Res.Rejected;
      ++Stats->SnapshotRejected;
      continue;
    }
    // The recorded metadata must agree with the recomputed pipeline; a
    // stale snapshot (older parser/analyzer) is rejected per entry —
    // before any artifact adoption, so stale records can't be installed.
    // The interned artifact itself is correct either way — only the warm
    // credit is withheld.
    if (!((*C)->features() == E.Features)) {
      ++Res.Rejected;
      ++Stats->SnapshotRejected;
      continue;
    }
    bool Adopted = false;
    if (AdoptArtifacts && E.RecOff != NoArtifact) {
      DecodedArtifacts DA =
          Store ? Store->decode(E.RecOff)
                : decodeArtifactRecord(ArtLen != 0 ? Data + ArtOff : nullptr,
                                       static_cast<size_t>(ArtLen), E.RecOff,
                                       nullptr);
      // The record's own exactness bit must match the entry metadata —
      // one more cross-check tying arena and entry together.
      if (DA.Valid && DA.Stages.Approx &&
          DA.Stages.Approx->Exact == E.ApproxExact) {
        (*C)->adoptStages(DA.Stages);
        Adopted = true;
        ++Res.ArtifactsMapped;
        ++Stats->ArtifactsMapped;
        if (Res.ZeroCopy) {
          Res.BytesShared += DA.SharedBytes;
          Stats->ArtifactBytesShared += DA.SharedBytes;
        }
      } else {
        ++Res.ArtifactsRejected;
        ++Stats->ArtifactsRejected;
      }
    }
    warm(*C, Stages);
    if (!Adopted && (*C)->classicalApprox().Exact != E.ApproxExact) {
      ++Res.Rejected;
      ++Stats->SnapshotRejected;
      continue;
    }
    setEntryGeneration(makeKey((*C)->pattern(), (*C)->flags()), E.LastGen);
    ++Res.Loaded;
    ++Stats->SnapshotLoaded;
  }

  // Restored after the entry loop so every setEntryGeneration() above
  // wrote the saved stamp verbatim (save->load->save stays
  // byte-identical).
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (StoredGen > Generation)
      Generation = StoredGen;
  }
  return Res;
}

SnapshotLoadResult RegexRuntime::load(std::istream &IS, unsigned Stages,
                                      bool AdoptArtifacts) {
  std::string Buf((std::istreambuf_iterator<char>(IS)),
                  std::istreambuf_iterator<char>());
  return loadBuffer(reinterpret_cast<const unsigned char *>(Buf.data()),
                    Buf.size(), Stages, AdoptArtifacts, nullptr);
}

SnapshotLoadResult RegexRuntime::load(const std::string &Path,
                                      unsigned Stages, bool AdoptArtifacts) {
  try {
    if (AdoptArtifacts) {
      // mmap path: one shared mapping serves every process loading this
      // snapshot; adopted DFA tables are views into it.
      MappedArtifactStore::OpenOutcome O = MappedArtifactStore::open(Path);
      if (O.Store)
        return loadBuffer(O.Store->fileData(), O.Store->fileSize(), Stages,
                          true, O.Store);
      if (O.Damaged) {
        SnapshotLoadResult Res;
        Res.Cold = true;
        Res.Error = O.Error;
        return Res;
      }
      // Absent/unreadable: fall through for the canonical cold result.
    }
    std::ifstream IS(Path, std::ios::binary);
    if (!IS) {
      SnapshotLoadResult Res;
      Res.Cold = true;
      Res.Error = "cannot open snapshot '" + Path + "'";
      return Res;
    }
    return load(IS, Stages, AdoptArtifacts);
  } catch (const std::exception &E) {
    // A load must never take the run down (an injected Throw, or an
    // allocation failure on adversarial sizes): it goes cold instead —
    // the same contract as any other form of damage.
    SnapshotLoadResult Res;
    Res.Cold = true;
    Res.Error = E.what();
    return Res;
  }
}

SnapshotLoadResult RegexRuntime::loadOnce(const std::string &Path,
                                          unsigned Stages,
                                          bool AdoptArtifacts) {
  // Serializes concurrent first-comers: one loads, the rest wait on
  // SnapMu and then skip — so corpus tasks sharing this runtime see a
  // fully warm table, never a half-loaded race. Only a structurally
  // valid load latches: a cold attempt (file not written yet, corrupt)
  // stays retryable, so a long-lived runtime is not permanently locked
  // out of its warm start by one early miss.
  std::lock_guard<std::mutex> Lock(SnapMu);
  if (SnapshotDone) {
    SnapshotLoadResult Res;
    Res.Skipped = true;
    return Res;
  }
  SnapshotLoadResult Res = load(Path, Stages, AdoptArtifacts);
  if (!Res.Cold) {
    // A warm load after an earlier cold attempt is a recovery (the
    // snapshot appeared, or transient damage cleared): count it so runs
    // that healed are visible in the stats.
    if (SnapColdSeen)
      ++Stats->SnapshotRecovered;
    SnapshotDone = true;
  } else {
    SnapColdSeen = true;
  }
  return Res;
}
