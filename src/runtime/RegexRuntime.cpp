//===- runtime/RegexRuntime.cpp - Interned compiled-regex cache ------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/RegexRuntime.h"

using namespace recap;

RegexRuntime::RegexRuntime(RuntimeOptions Opts)
    : Opts(Opts), Stats(std::make_shared<RuntimeStats>()),
      Entries(Opts.Capacity) {}

std::string RegexRuntime::makeKey(const UString &Pattern,
                                  const RegexFlags &Flags) {
  // '\n' cannot occur in a flag string, so the key is unambiguous.
  return Flags.str() + "\n" + toUTF8(Pattern);
}

RegexRuntime::Interned *RegexRuntime::lookup(const std::string &Key) {
  Interned *E = Entries.find(Key);
  if (E) {
    ++Stats->InternHits;
    E->LastGen = Generation;
  }
  return E;
}

std::shared_ptr<CompiledRegex> RegexRuntime::insert(std::string Key,
                                                    Regex R) {
  ++Stats->InternMisses;
  auto C = std::make_shared<CompiledRegex>(std::move(R), Stats);
  if (Entries.insert(std::move(Key), Interned{C, Generation}))
    ++Stats->InternEvictions;
  return C;
}

void RegexRuntime::setEntryGeneration(const std::string &Key, uint64_t Gen) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Interned *E = Entries.find(Key))
    E->LastGen = Gen;
}

void RegexRuntime::rememberError(const std::string &Key,
                                 const std::string &Message) {
  ++Stats->ParseErrors;
  if (!Opts.CacheParseErrors)
    return;
  if (Errors.size() >= Opts.ErrorCapacity)
    Errors.clear();
  Errors.emplace(Key, Message);
}

Result<std::shared_ptr<CompiledRegex>>
RegexRuntime::get(const UString &Pattern, RegexFlags Flags) {
  std::string Key = makeKey(Pattern, Flags);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Interned *E = lookup(Key))
      return E->C;
    auto ErrIt = Errors.find(Key);
    if (ErrIt != Errors.end()) {
      ++Stats->ErrorHits;
      return Result<std::shared_ptr<CompiledRegex>>::error(ErrIt->second);
    }
  }
  // Parse outside the lock: distinct cold patterns must compile in
  // parallel across shards (holding Mu here would serialize the parse
  // fraction of a sharded survey at 1x). On a same-key race the loser
  // re-checks below and adopts the winner's artifact; the duplicated
  // parse is rare and benign.
  Result<Regex> R = Regex::parse(Pattern, Flags);
  std::lock_guard<std::mutex> Lock(Mu);
  if (Interned *E = lookup(Key))
    return E->C;
  if (!R) {
    auto ErrIt = Errors.find(Key);
    if (ErrIt != Errors.end()) {
      ++Stats->ErrorHits;
      return Result<std::shared_ptr<CompiledRegex>>::error(ErrIt->second);
    }
    rememberError(Key, R.error());
    return Result<std::shared_ptr<CompiledRegex>>::error(R.error());
  }
  return insert(std::move(Key), R.take());
}

Result<std::shared_ptr<CompiledRegex>>
RegexRuntime::get(const std::string &Pattern, const std::string &Flags) {
  RegexFlags F;
  if (!F.parse(Flags)) {
    // Negatively cached like pattern errors. The '\x01F' prefix cannot
    // collide with pattern keys (those start with canonical flags), and
    // the raw flag string is length-prefixed since it may contain '\n'.
    std::string Key = std::string("\x01F") + std::to_string(Flags.size()) +
                      ":" + Flags + "\n" + Pattern;
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Errors.find(Key);
    if (It != Errors.end()) {
      ++Stats->ErrorHits;
      return Result<std::shared_ptr<CompiledRegex>>::error(It->second);
    }
    std::string Msg = "invalid regular expression flags '" + Flags + "'";
    rememberError(Key, Msg);
    return Result<std::shared_ptr<CompiledRegex>>::error(Msg);
  }
  return get(fromUTF8(Pattern), F);
}

Result<std::shared_ptr<CompiledRegex>>
RegexRuntime::literal(const std::string &Literal) {
  // The parser's own splitter yields the interning key without running
  // the full parse.
  auto Split = Regex::splitLiteral(Literal);
  if (!Split)
    return Result<std::shared_ptr<CompiledRegex>>::error(Split.error());
  return get(Split->first, Split->second);
}

std::shared_ptr<CompiledRegex> RegexRuntime::intern(Regex R) {
  std::string Key = makeKey(R.pattern(), R.flags());
  std::lock_guard<std::mutex> Lock(Mu);
  if (Interned *E = lookup(Key))
    return E->C;
  return insert(std::move(Key), std::move(R));
}

void RegexRuntime::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
  Errors.clear();
}

void RegexRuntime::warm(const std::shared_ptr<CompiledRegex> &C,
                        unsigned Stages) {
  if (!C)
    return;
  // Each stage accessor is itself synchronized; warming just pays the
  // build cost here instead of at a worker's first touch.
  if (Stages & WarmFeatures)
    C->features();
  if (Stages & WarmApprox)
    C->classicalApprox();
  if (Stages & WarmAutomaton)
    C->automaton();
  if (Stages & WarmMatcher)
    C->sharedMatcher();
}
