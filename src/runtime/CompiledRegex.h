//===- runtime/CompiledRegex.h - Compile-once regex artifact ----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CompiledRegex owns the full per-pattern compilation pipeline
///
///   parse -> feature analysis -> classical approximation / Automaton
///         -> concrete Matcher -> SymbolicMatch template
///
/// with each stage built lazily on first use and memoized for the lifetime
/// of the object (cf. the compile-once/reuse `Reprog` pattern of real JS
/// engines). Every consumer layer — the concrete matcher oracle, the
/// symbolic RegExp model, the DSE interpreter, the survey — shares one
/// CompiledRegex per distinct (pattern, flags) pair instead of re-running
/// the pipeline per call site. Interning lives in RegexRuntime; a
/// CompiledRegex can also be constructed standalone from a parsed Regex.
///
/// Stage results are shared_ptr/shared-structure artifacts: handing them
/// out does not copy, and downstream per-pointer caches (TermEvaluator's
/// automaton cache, Z3Backend's translation memo) hit across queries
/// because instantiated models reuse the template's CRegexRef payloads.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RUNTIME_COMPILEDREGEX_H
#define RECAP_RUNTIME_COMPILEDREGEX_H

#include "matcher/Matcher.h"
#include "model/Approx.h"
#include "model/ModelBuilder.h"

#include <map>
#include <memory>
#include <optional>
#include <tuple>

namespace recap {

/// Cache hit/miss/eviction counters for the shared compilation pipeline.
/// One instance is shared by a RegexRuntime and every CompiledRegex it
/// interns; a standalone CompiledRegex owns a private instance.
struct RuntimeStats {
  // Interning (RegexRuntime::get/literal/intern).
  uint64_t InternHits = 0;
  uint64_t InternMisses = 0;
  uint64_t InternEvictions = 0;
  /// Parse failures, and repeated failures served from the error cache.
  uint64_t ParseErrors = 0;
  uint64_t ErrorHits = 0;

  // Per-stage lazy pipeline counters (Computes = cold builds, Hits =
  // memoized reuses).
  uint64_t FeatureComputes = 0;
  uint64_t FeatureHits = 0;
  uint64_t BackrefComputes = 0;
  uint64_t BackrefHits = 0;
  uint64_t ApproxComputes = 0;
  uint64_t ApproxHits = 0;
  uint64_t AutomatonComputes = 0;
  uint64_t AutomatonHits = 0;
  uint64_t MatcherComputes = 0;
  uint64_t MatcherHits = 0;
  uint64_t TemplateComputes = 0;
  uint64_t TemplateHits = 0;

  // Backend dispatch (cegar/BackendDispatcher): problems routed to the
  // classical (automata) lane vs the general (Z3) lane per the cached
  // RegexFeatures, and classical-lane Unknowns re-run on the general
  // backend.
  uint64_t DispatchClassical = 0;
  uint64_t DispatchGeneral = 0;
  uint64_t DispatchFallbacks = 0;

  uint64_t hits() const {
    return InternHits + FeatureHits + BackrefHits + ApproxHits +
           AutomatonHits + MatcherHits + TemplateHits;
  }
  uint64_t misses() const {
    return InternMisses + FeatureComputes + BackrefComputes +
           ApproxComputes + AutomatonComputes + MatcherComputes +
           TemplateComputes;
  }

  /// Counter-wise difference: this snapshot minus the earlier \p O. Use
  /// to report one run's window over a shared (cumulative) stats block.
  RuntimeStats since(const RuntimeStats &O) const {
    RuntimeStats D;
    D.InternHits = InternHits - O.InternHits;
    D.InternMisses = InternMisses - O.InternMisses;
    D.InternEvictions = InternEvictions - O.InternEvictions;
    D.ParseErrors = ParseErrors - O.ParseErrors;
    D.ErrorHits = ErrorHits - O.ErrorHits;
    D.FeatureComputes = FeatureComputes - O.FeatureComputes;
    D.FeatureHits = FeatureHits - O.FeatureHits;
    D.BackrefComputes = BackrefComputes - O.BackrefComputes;
    D.BackrefHits = BackrefHits - O.BackrefHits;
    D.ApproxComputes = ApproxComputes - O.ApproxComputes;
    D.ApproxHits = ApproxHits - O.ApproxHits;
    D.AutomatonComputes = AutomatonComputes - O.AutomatonComputes;
    D.AutomatonHits = AutomatonHits - O.AutomatonHits;
    D.MatcherComputes = MatcherComputes - O.MatcherComputes;
    D.MatcherHits = MatcherHits - O.MatcherHits;
    D.TemplateComputes = TemplateComputes - O.TemplateComputes;
    D.TemplateHits = TemplateHits - O.TemplateHits;
    D.DispatchClassical = DispatchClassical - O.DispatchClassical;
    D.DispatchGeneral = DispatchGeneral - O.DispatchGeneral;
    D.DispatchFallbacks = DispatchFallbacks - O.DispatchFallbacks;
    return D;
  }

  void merge(const RuntimeStats &O) {
    InternHits += O.InternHits;
    InternMisses += O.InternMisses;
    InternEvictions += O.InternEvictions;
    ParseErrors += O.ParseErrors;
    ErrorHits += O.ErrorHits;
    FeatureComputes += O.FeatureComputes;
    FeatureHits += O.FeatureHits;
    BackrefComputes += O.BackrefComputes;
    BackrefHits += O.BackrefHits;
    ApproxComputes += O.ApproxComputes;
    ApproxHits += O.ApproxHits;
    AutomatonComputes += O.AutomatonComputes;
    AutomatonHits += O.AutomatonHits;
    MatcherComputes += O.MatcherComputes;
    MatcherHits += O.MatcherHits;
    TemplateComputes += O.TemplateComputes;
    TemplateHits += O.TemplateHits;
    DispatchClassical += O.DispatchClassical;
    DispatchGeneral += O.DispatchGeneral;
    DispatchFallbacks += O.DispatchFallbacks;
  }
};

/// One compiled (pattern, flags) pair. Not thread-safe: a runtime (and its
/// compiled regexes) belongs to one execution; see DESIGN.md for the
/// sharding direction.
class CompiledRegex {
public:
  /// Wraps an already-parsed regex. \p Stats may be shared with an owning
  /// runtime; when null a private stats block is created.
  explicit CompiledRegex(Regex R,
                         std::shared_ptr<RuntimeStats> Stats = nullptr);

  const Regex &regex() const { return R; }
  const UString &pattern() const { return R.pattern(); }
  const RegexFlags &flags() const { return R.flags(); }
  /// Canonical "/pattern/flags" source form (the interning key).
  std::string source() const { return R.str(); }

  /// Feature analysis (Tables 4/5 counters), computed once.
  const RegexFeatures &features();

  /// Definition-2 backreference classification, computed once.
  const std::map<const BackreferenceNode *, BackrefType> &backrefTypes();

  /// The paper's t̂: classical regular overapproximation of the whole
  /// pattern (exactness flag included), computed once.
  const RegularApprox &classicalApprox();

  /// DFA for classicalApprox(), or null when subset construction exceeds
  /// \p StateLimit. Compiled once (the first call's limit applies).
  std::shared_ptr<const Automaton> automaton(size_t StateLimit = 100000);

  /// The shared concrete matcher (default step budget), built once. Safe
  /// to share between RegExpObjects: Matcher is stateless.
  std::shared_ptr<const Matcher> sharedMatcher();

  /// Instantiates the memoized SymbolicMatch template for \p Opts with
  /// fresh \p VarPrefix-prefixed variables over \p Input. The first call
  /// per distinct ModelOptions runs the model generator; later calls
  /// rename the cached template (identical result, no re-analysis).
  SymbolicMatch instantiate(TermRef Input, const std::string &VarPrefix,
                            const ModelOptions &Opts = {});

  const RuntimeStats &stats() const { return *Stats; }
  const std::shared_ptr<RuntimeStats> &statsHandle() const { return Stats; }

private:
  /// ModelOptions projected onto a comparable key.
  using ModelKey = std::tuple<size_t, size_t, bool, bool, bool, bool>;
  static ModelKey modelKey(const ModelOptions &O) {
    return {O.RepetitionUnrollLimit, O.BackrefQuantifierUnroll,
            O.PaperMutableBackrefRule, O.ModelCaptures,
            O.EmitLengthEquations, O.FoldLiteralChars};
  }

  struct Template {
    SymbolicMatch Match;
    TermRef Input; ///< the placeholder the template was built over
  };

  Regex R;
  std::shared_ptr<RuntimeStats> Stats;

  std::optional<RegexFeatures> Feats;
  std::optional<std::map<const BackreferenceNode *, BackrefType>> BrTypes;
  std::optional<RegularApprox> Approx;
  std::shared_ptr<const Automaton> Dfa;
  bool DfaDone = false;
  std::shared_ptr<const Matcher> M;
  std::map<ModelKey, Template> Templates;
};

} // namespace recap

#endif // RECAP_RUNTIME_COMPILEDREGEX_H
