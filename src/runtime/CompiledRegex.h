//===- runtime/CompiledRegex.h - Compile-once regex artifact ----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CompiledRegex owns the full per-pattern compilation pipeline
///
///   parse -> feature analysis -> classical approximation / Automaton
///         -> concrete Matcher -> SymbolicMatch template
///
/// with each stage built lazily on first use and memoized for the lifetime
/// of the object (cf. the compile-once/reuse `Reprog` pattern of real JS
/// engines). Every consumer layer — the concrete matcher oracle, the
/// symbolic RegExp model, the DSE interpreter, the survey — shares one
/// CompiledRegex per distinct (pattern, flags) pair instead of re-running
/// the pipeline per call site. Interning lives in RegexRuntime; a
/// CompiledRegex can also be constructed standalone from a parsed Regex.
///
/// Stage results are shared_ptr/shared-structure artifacts: handing them
/// out does not copy, and downstream per-pointer caches (TermEvaluator's
/// automaton cache, Z3Backend's translation memo) hit across queries
/// because instantiated models reuse the template's CRegexRef payloads.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RUNTIME_COMPILEDREGEX_H
#define RECAP_RUNTIME_COMPILEDREGEX_H

#include "automata/ProductLane.h"
#include "matcher/Matcher.h"
#include "model/Approx.h"
#include "model/ModelBuilder.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>

namespace recap {

/// A copyable relaxed atomic counter. RuntimeStats blocks are shared by
/// every CompiledRegex of a runtime, and under shard-per-worker execution
/// two shards bump the same field through *different* CompiledRegex
/// objects (guarded by different stage mutexes) — so the counters
/// themselves must be atomic. Relaxed ordering suffices: they are
/// monotonic tallies, never used for synchronization. Copying snapshots
/// the value, which keeps RuntimeStats a plain value type for since() /
/// merge() / EngineResult.
class StatCounter {
public:
  StatCounter(uint64_t V = 0) : V(V) {}
  StatCounter(const StatCounter &O) : V(O.load()) {}
  StatCounter &operator=(const StatCounter &O) {
    V.store(O.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter &operator=(uint64_t X) {
    V.store(X, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const { return load(); }
  uint64_t operator++() {
    return V.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  StatCounter &operator+=(uint64_t X) {
    V.fetch_add(X, std::memory_order_relaxed);
    return *this;
  }
  uint64_t load() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V;
};

/// Cache hit/miss/eviction counters for the shared compilation pipeline.
/// One instance is shared by a RegexRuntime and every CompiledRegex it
/// interns; a standalone CompiledRegex owns a private instance. Counters
/// are individually atomic (see StatCounter), so concurrent shards can
/// contribute to one shared block; reading while writers are live yields
/// a per-counter-consistent snapshot.
struct RuntimeStats {
  // Interning (RegexRuntime::get/literal/intern).
  StatCounter InternHits;
  StatCounter InternMisses;
  StatCounter InternEvictions;
  /// Parse failures, and repeated failures served from the error cache.
  StatCounter ParseErrors;
  StatCounter ErrorHits;

  // Per-stage lazy pipeline counters (Computes = cold builds, Hits =
  // memoized reuses).
  StatCounter FeatureComputes;
  StatCounter FeatureHits;
  StatCounter BackrefComputes;
  StatCounter BackrefHits;
  StatCounter ApproxComputes;
  StatCounter ApproxHits;
  StatCounter AutomatonComputes;
  StatCounter AutomatonHits;
  StatCounter MatcherComputes;
  StatCounter MatcherHits;
  StatCounter TemplateComputes;
  StatCounter TemplateHits;

  // Backend dispatch (cegar/BackendDispatcher): problems routed to the
  // classical (automata) lane vs the general (Z3) lane per the cached
  // RegexFeatures, and classical-lane Unknowns re-run on the general
  // backend.
  StatCounter DispatchClassical;
  StatCounter DispatchGeneral;
  StatCounter DispatchFallbacks;

  // Anchored-classical lane and lane racing (DESIGN.md §8): problems the
  // anchored product-DFA lane answered decisively; races won by each
  // side; checks a race coordinator cancelled on the losing side; and
  // anchored-lane Unknowns that fell back to the general lane.
  StatCounter AnchoredLaneHit;
  StatCounter RaceClassicalWon;
  StatCounter RaceZ3Won;
  StatCounter RaceCancelled;
  StatCounter AnchoredFallback;

  // Warm-start snapshots (RegexRuntime::save/load, DESIGN.md §7.3):
  // entries restored from a snapshot file, and entries a load rejected
  // (unparseable pattern or stale metadata disagreeing with the current
  // pipeline).
  StatCounter SnapshotLoaded;
  StatCounter SnapshotRejected;

  // Zero-copy artifact store (snapshot v2, DESIGN.md §11): serialized
  // artifact records adopted into CompiledRegex stages at load, records
  // dropped by the per-record validation pass (the entry still loads
  // metadata-warm), bytes of DFA accept/transition tables served as views
  // into the shared file mapping instead of per-process copies, and
  // entries the snapshot aging policy skipped at save
  // (SnapshotSaveOptions::MaxAgeGenerations).
  StatCounter ArtifactsMapped;
  StatCounter ArtifactsRejected;
  StatCounter ArtifactBytesShared;
  StatCounter AgedOut;

  // EngineOptions::Workers requests cut down to hardware_concurrency()
  // instead of silently oversubscribing (EngineOptions::ClampWorkers).
  StatCounter WorkersClamped;

  // Reliability layer (DESIGN.md §9). Guard*: checks whose watchdog
  // deadline fired / scratch retries launched / exceptions swallowed by
  // GuardedSession. Breaker*: lane breakers tripped open, problems
  // rerouted off an open lane, problems answered Unknown because every
  // lane was open. Quarantine*: keys newly quarantined, and problems
  // skipped because their key was quarantined. SnapshotRecovered: runs
  // where a snapshot load failed and a later load succeeded.
  // WorkerSpawnFallbacks: shards run inline because std::thread
  // construction failed.
  StatCounter GuardTimeouts;
  StatCounter GuardRetries;
  StatCounter GuardThrows;
  StatCounter BreakerOpens;
  StatCounter BreakerReroutes;
  StatCounter BreakerShortCircuits;
  StatCounter Quarantined;
  StatCounter QuarantineHits;
  // Quarantine entries evicted by generation aging on sidecar save
  // (Quarantine::Options::MaxAgeGenerations).
  StatCounter QuarantineExpired;
  StatCounter SnapshotRecovered;
  StatCounter WorkerSpawnFallbacks;

  uint64_t hits() const {
    return InternHits + FeatureHits + BackrefHits + ApproxHits +
           AutomatonHits + MatcherHits + TemplateHits;
  }
  uint64_t misses() const {
    return InternMisses + FeatureComputes + BackrefComputes +
           ApproxComputes + AutomatonComputes + MatcherComputes +
           TemplateComputes;
  }

  /// Counter-wise difference: this snapshot minus the earlier \p O. Use
  /// to report one run's window over a shared (cumulative) stats block.
  RuntimeStats since(const RuntimeStats &O) const {
    RuntimeStats D;
    D.InternHits = InternHits - O.InternHits;
    D.InternMisses = InternMisses - O.InternMisses;
    D.InternEvictions = InternEvictions - O.InternEvictions;
    D.ParseErrors = ParseErrors - O.ParseErrors;
    D.ErrorHits = ErrorHits - O.ErrorHits;
    D.FeatureComputes = FeatureComputes - O.FeatureComputes;
    D.FeatureHits = FeatureHits - O.FeatureHits;
    D.BackrefComputes = BackrefComputes - O.BackrefComputes;
    D.BackrefHits = BackrefHits - O.BackrefHits;
    D.ApproxComputes = ApproxComputes - O.ApproxComputes;
    D.ApproxHits = ApproxHits - O.ApproxHits;
    D.AutomatonComputes = AutomatonComputes - O.AutomatonComputes;
    D.AutomatonHits = AutomatonHits - O.AutomatonHits;
    D.MatcherComputes = MatcherComputes - O.MatcherComputes;
    D.MatcherHits = MatcherHits - O.MatcherHits;
    D.TemplateComputes = TemplateComputes - O.TemplateComputes;
    D.TemplateHits = TemplateHits - O.TemplateHits;
    D.DispatchClassical = DispatchClassical - O.DispatchClassical;
    D.DispatchGeneral = DispatchGeneral - O.DispatchGeneral;
    D.DispatchFallbacks = DispatchFallbacks - O.DispatchFallbacks;
    D.AnchoredLaneHit = AnchoredLaneHit - O.AnchoredLaneHit;
    D.RaceClassicalWon = RaceClassicalWon - O.RaceClassicalWon;
    D.RaceZ3Won = RaceZ3Won - O.RaceZ3Won;
    D.RaceCancelled = RaceCancelled - O.RaceCancelled;
    D.AnchoredFallback = AnchoredFallback - O.AnchoredFallback;
    D.SnapshotLoaded = SnapshotLoaded - O.SnapshotLoaded;
    D.SnapshotRejected = SnapshotRejected - O.SnapshotRejected;
    D.ArtifactsMapped = ArtifactsMapped - O.ArtifactsMapped;
    D.ArtifactsRejected = ArtifactsRejected - O.ArtifactsRejected;
    D.ArtifactBytesShared = ArtifactBytesShared - O.ArtifactBytesShared;
    D.AgedOut = AgedOut - O.AgedOut;
    D.WorkersClamped = WorkersClamped - O.WorkersClamped;
    D.GuardTimeouts = GuardTimeouts - O.GuardTimeouts;
    D.GuardRetries = GuardRetries - O.GuardRetries;
    D.GuardThrows = GuardThrows - O.GuardThrows;
    D.BreakerOpens = BreakerOpens - O.BreakerOpens;
    D.BreakerReroutes = BreakerReroutes - O.BreakerReroutes;
    D.BreakerShortCircuits = BreakerShortCircuits - O.BreakerShortCircuits;
    D.Quarantined = Quarantined - O.Quarantined;
    D.QuarantineHits = QuarantineHits - O.QuarantineHits;
    D.QuarantineExpired = QuarantineExpired - O.QuarantineExpired;
    D.SnapshotRecovered = SnapshotRecovered - O.SnapshotRecovered;
    D.WorkerSpawnFallbacks = WorkerSpawnFallbacks - O.WorkerSpawnFallbacks;
    return D;
  }

  void merge(const RuntimeStats &O) {
    InternHits += O.InternHits;
    InternMisses += O.InternMisses;
    InternEvictions += O.InternEvictions;
    ParseErrors += O.ParseErrors;
    ErrorHits += O.ErrorHits;
    FeatureComputes += O.FeatureComputes;
    FeatureHits += O.FeatureHits;
    BackrefComputes += O.BackrefComputes;
    BackrefHits += O.BackrefHits;
    ApproxComputes += O.ApproxComputes;
    ApproxHits += O.ApproxHits;
    AutomatonComputes += O.AutomatonComputes;
    AutomatonHits += O.AutomatonHits;
    MatcherComputes += O.MatcherComputes;
    MatcherHits += O.MatcherHits;
    TemplateComputes += O.TemplateComputes;
    TemplateHits += O.TemplateHits;
    DispatchClassical += O.DispatchClassical;
    DispatchGeneral += O.DispatchGeneral;
    DispatchFallbacks += O.DispatchFallbacks;
    AnchoredLaneHit += O.AnchoredLaneHit;
    RaceClassicalWon += O.RaceClassicalWon;
    RaceZ3Won += O.RaceZ3Won;
    RaceCancelled += O.RaceCancelled;
    AnchoredFallback += O.AnchoredFallback;
    SnapshotLoaded += O.SnapshotLoaded;
    SnapshotRejected += O.SnapshotRejected;
    ArtifactsMapped += O.ArtifactsMapped;
    ArtifactsRejected += O.ArtifactsRejected;
    ArtifactBytesShared += O.ArtifactBytesShared;
    AgedOut += O.AgedOut;
    WorkersClamped += O.WorkersClamped;
    GuardTimeouts += O.GuardTimeouts;
    GuardRetries += O.GuardRetries;
    GuardThrows += O.GuardThrows;
    BreakerOpens += O.BreakerOpens;
    BreakerReroutes += O.BreakerReroutes;
    BreakerShortCircuits += O.BreakerShortCircuits;
    Quarantined += O.Quarantined;
    QuarantineHits += O.QuarantineHits;
    QuarantineExpired += O.QuarantineExpired;
    SnapshotRecovered += O.SnapshotRecovered;
    WorkerSpawnFallbacks += O.WorkerSpawnFallbacks;
  }
};

/// Pre-built pipeline stages decoded from a snapshot v2 artifact record
/// (runtime/ArtifactStore), offered to CompiledRegex::adoptStages().
/// Every field is optional: absent stages are simply rebuilt lazily.
struct AdoptedStages {
  std::optional<RegularApprox> Approx;
  /// Automaton for Approx.Re (possibly a zero-copy view whose Pin keeps
  /// the mapped store alive). Null = the record carried none.
  std::shared_ptr<const Automaton> Dfa;
  /// The anchored-language stage was computed at save time; Anchored is
  /// its value (nullopt = the pattern has no anchored-exact language).
  bool AnchoredComputed = false;
  std::optional<CRegexRef> Anchored;
  /// The memoized single-pattern anchored product, with the limits it
  /// was built under (adoption keys the product cache on them).
  std::shared_ptr<const AnchoredProduct> Product;
  ProductLimits ProductLimitsUsed;
};

/// One compiled (pattern, flags) pair. Thread-safe: the lazy pipeline
/// stages are built under a per-object mutex, so shards sharing an
/// interned pattern table can first-touch any stage concurrently without
/// double construction or torn reads (DESIGN.md §6). Stage artifacts are
/// immutable once built; references handed out stay valid for the
/// object's lifetime and are safe to read without the lock.
class CompiledRegex {
public:
  /// Wraps an already-parsed regex. \p Stats may be shared with an owning
  /// runtime; when null a private stats block is created.
  explicit CompiledRegex(Regex R,
                         std::shared_ptr<RuntimeStats> Stats = nullptr);

  const Regex &regex() const { return R; }
  const UString &pattern() const { return R.pattern(); }
  const RegexFlags &flags() const { return R.flags(); }
  /// Canonical "/pattern/flags" source form (the interning key).
  std::string source() const { return R.str(); }

  /// Feature analysis (Tables 4/5 counters), computed once.
  const RegexFeatures &features();

  /// Definition-2 backreference classification, computed once.
  const std::map<const BackreferenceNode *, BackrefType> &backrefTypes();

  /// The paper's t̂: classical regular overapproximation of the whole
  /// pattern (exactness flag included), computed once.
  const RegularApprox &classicalApprox();

  /// DFA for classicalApprox(), or null when subset construction exceeds
  /// \p StateLimit. Compiled once (the first call's limit applies).
  std::shared_ptr<const Automaton> automaton(size_t StateLimit = 100000);

  /// The anchored-exact language (model/Approx.h anchoredExactLanguage)
  /// with solver-side options (meta markers excluded), or nullopt when
  /// the pattern has no such language. Computed once; the result feeds
  /// the dispatcher's anchored-lane eligibility test, so it shares the
  /// compile-once discipline of the other stages.
  const std::optional<CRegexRef> &anchoredLanguage();

  /// The shared concrete matcher (default step budget), built once. Safe
  /// to share between RegExpObjects: Matcher is stateless.
  std::shared_ptr<const Matcher> sharedMatcher();

  /// The single-pattern positive-polarity anchored product over the
  /// solver alphabet (Latin-1 minus the meta markers) — the dominant
  /// product-lane cache key, memoized here so every dispatcher shard and
  /// every snapshot-warmed process shares one build. The first call's
  /// \p Limits stick; a later call with different limits returns null and
  /// the caller builds its own (results must never silently change with
  /// the knobs). Null also when the pattern has no anchored language.
  std::shared_ptr<const AnchoredProduct>
  anchoredProduct(const ProductLimits &Limits);
  /// The memoized product if one exists (no build) — snapshot writers.
  std::shared_ptr<const AnchoredProduct> anchoredProductIfBuilt();
  /// The limits the memoized product was built under (meaningful only
  /// when anchoredProductIfBuilt() is non-null).
  ProductLimits anchoredProductLimits();

  /// Installs snapshot-decoded stages that are not already built (an
  /// existing stage always wins — first-call semantics are preserved, so
  /// warm and cold runs stay bit-identical). Returns the number of
  /// stages installed.
  size_t adoptStages(const AdoptedStages &S);

  /// Instantiates the memoized SymbolicMatch template for \p Opts with
  /// fresh \p VarPrefix-prefixed variables over \p Input. The first call
  /// per distinct ModelOptions runs the model generator; later calls
  /// rename the cached template (identical result, no re-analysis).
  SymbolicMatch instantiate(TermRef Input, const std::string &VarPrefix,
                            const ModelOptions &Opts = {});

  const RuntimeStats &stats() const { return *Stats; }
  const std::shared_ptr<RuntimeStats> &statsHandle() const { return Stats; }

private:
  /// classicalApprox() body with StageMu already held (automaton() needs
  /// the approximation while holding the lock).
  const RegularApprox &approxLocked();
  /// anchoredLanguage() body with StageMu already held (anchoredProduct()
  /// needs the language while holding the lock).
  const std::optional<CRegexRef> &anchoredLocked();

  /// ModelOptions projected onto a comparable key.
  using ModelKey = std::tuple<size_t, size_t, bool, bool, bool, bool>;
  static ModelKey modelKey(const ModelOptions &O) {
    return {O.RepetitionUnrollLimit, O.BackrefQuantifierUnroll,
            O.PaperMutableBackrefRule, O.ModelCaptures,
            O.EmitLengthEquations, O.FoldLiteralChars};
  }

  struct Template {
    SymbolicMatch Match;
    TermRef Input; ///< the placeholder the template was built over
  };

  Regex R;
  std::shared_ptr<RuntimeStats> Stats;

  /// Serializes lazy stage construction (and the stats bumps) across
  /// threads. Held for the duration of a cold build: concurrent
  /// first-touchers of the same pattern block until the artifact exists
  /// rather than duplicating the work.
  std::mutex StageMu;

  std::optional<RegexFeatures> Feats;
  std::optional<std::map<const BackreferenceNode *, BackrefType>> BrTypes;
  std::optional<RegularApprox> Approx;
  std::shared_ptr<const Automaton> Dfa;
  bool DfaDone = false;
  std::optional<CRegexRef> AnchLang;
  bool AnchDone = false;
  std::shared_ptr<const AnchoredProduct> Prod;
  bool ProdDone = false;
  ProductLimits ProdLims;
  std::shared_ptr<const Matcher> M;
  std::map<ModelKey, Template> Templates;
};

} // namespace recap

#endif // RECAP_RUNTIME_COMPILEDREGEX_H
