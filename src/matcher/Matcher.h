//===- matcher/Matcher.h - ES6-compliant regex matcher ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A specification-faithful backtracking matcher for ES6 regexes,
/// implementing the ECMA-262 2015 §21.2.2 matching algorithm: greedy/lazy
/// matching precedence, capture reset inside quantifiers, backreferences,
/// lookaheads, word boundaries, anchors, and the i/m/u flag semantics.
///
/// This is the paper's "ES6-compliant matcher" used as the concrete oracle
/// in the CEGAR loop (Algorithm 1) and as ground truth for the test suite.
/// The original system used Node.js/V8; see DESIGN.md substitutions.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_MATCHER_MATCHER_H
#define RECAP_MATCHER_MATCHER_H

#include "regex/Features.h"
#include "regex/Regex.h"

#include <map>
#include <optional>

namespace recap {

/// Captures and position of one successful match.
struct MatchResult {
  /// Start of the whole match, in code points.
  size_t Index = 0;
  /// Capture 0 (the whole match).
  UString Match;
  /// Captures 1..n; nullopt is the paper's undefined capture ⊥.
  std::vector<std::optional<UString>> Captures;

  /// Length of capture 0.
  size_t matchLength() const { return Match.size(); }
};

enum class MatchStatus : uint8_t {
  Match,
  NoMatch,
  Budget, ///< backtracking step budget exhausted; result unknown
};

/// Named-capture lookup (ES2018 extension): the value of the capture
/// group called \p Name in \p M, or nullopt when the group did not
/// participate in the match or no such name exists in \p R.
std::optional<UString> namedCapture(const Regex &R, const MatchResult &M,
                                    const std::string &Name);

class CompiledRegex;

/// Backtracking matcher for one compiled regex. Stateless and reusable;
/// the stateful exec/test API with lastIndex lives in RegExpObject.
class Matcher {
public:
  static constexpr uint64_t DefaultStepBudget = 4'000'000;

  explicit Matcher(const Regex &R, uint64_t StepBudget = DefaultStepBudget);

  /// Attempts a match starting exactly at \p Start (no searching).
  MatchStatus matchAt(const UString &Input, size_t Start,
                      MatchResult &Out) const;

  /// Finds the leftmost match starting at or after \p Start.
  MatchStatus search(const UString &Input, size_t Start,
                     MatchResult &Out) const;

  const Regex &regex() const { return *R; }
  uint64_t stepBudget() const { return StepBudget; }

private:
  const Regex *R;
  uint64_t StepBudget;
  /// Flag-resolved character sets, precomputed per CharClass node.
  std::map<const CharClassNode *, CharSet> Effective;

  friend class MatchRun;
};

/// Stateful ES6 RegExp object: exec/test with lastIndex per the spec's
/// RegExpBuiltinExec (used concretely by programs and as the CEGAR oracle,
/// Algorithm 2 of the paper models this function symbolically).
///
/// The object is a thin stateful view over a shared CompiledRegex: the AST
/// and (for the default step budget) the Matcher are compile-once
/// artifacts, so constructing a RegExpObject from an interned
/// CompiledRegex costs two shared_ptr copies — no AST clone, no per-node
/// class resolution.
class RegExpObject {
public:
  /// Wraps \p R in a standalone CompiledRegex (compatibility entry point;
  /// prefer the CompiledRegex overload to share compilation work).
  explicit RegExpObject(Regex R,
                        uint64_t StepBudget = Matcher::DefaultStepBudget);
  /// Shares \p Compiled's artifacts. With the default budget the matcher
  /// is shared too; a custom budget builds a private Matcher.
  explicit RegExpObject(std::shared_ptr<CompiledRegex> Compiled,
                        uint64_t StepBudget = Matcher::DefaultStepBudget);
  RegExpObject(RegExpObject &&) noexcept;
  RegExpObject &operator=(RegExpObject &&) noexcept;
  ~RegExpObject();

  /// RegExp.prototype.exec. Updates LastIndex for global/sticky regexes.
  /// Status Budget means the matcher gave up (treat as unknown).
  struct ExecOutcome {
    MatchStatus Status = MatchStatus::NoMatch;
    std::optional<MatchResult> Result;
  };
  ExecOutcome exec(const UString &Input);

  /// RegExp.prototype.test: exec(s) !== null.
  bool test(const UString &Input);

  const Regex &regex() const { return *R; }
  const Matcher &matcher() const { return *M; }
  const std::shared_ptr<CompiledRegex> &compiled() const { return C; }

  /// RegExp.lastIndex, user-visible and assignable as in JS.
  int64_t LastIndex = 0;

private:
  std::shared_ptr<CompiledRegex> C; ///< owns the AST
  const Regex *R = nullptr;         ///< C's regex
  std::shared_ptr<const Matcher> M;
};

} // namespace recap

#endif // RECAP_MATCHER_MATCHER_H
