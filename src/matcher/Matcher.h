//===- matcher/Matcher.h - ES6-compliant regex matcher ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A specification-faithful backtracking matcher for ES6 regexes,
/// implementing the ECMA-262 2015 §21.2.2 matching algorithm: greedy/lazy
/// matching precedence, capture reset inside quantifiers, backreferences,
/// lookaheads, word boundaries, anchors, and the i/m/u flag semantics.
///
/// This is the paper's "ES6-compliant matcher" used as the concrete oracle
/// in the CEGAR loop (Algorithm 1) and as ground truth for the test suite.
/// The original system used Node.js/V8; see DESIGN.md substitutions.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_MATCHER_MATCHER_H
#define RECAP_MATCHER_MATCHER_H

#include "regex/Features.h"
#include "regex/Regex.h"

#include <map>
#include <optional>

namespace recap {

/// Captures and position of one successful match.
struct MatchResult {
  /// Start of the whole match, in code points.
  size_t Index = 0;
  /// Capture 0 (the whole match).
  UString Match;
  /// Captures 1..n; nullopt is the paper's undefined capture ⊥.
  std::vector<std::optional<UString>> Captures;

  /// Length of capture 0.
  size_t matchLength() const { return Match.size(); }
};

enum class MatchStatus : uint8_t {
  Match,
  NoMatch,
  Budget, ///< backtracking step budget exhausted; result unknown
};

/// Named-capture lookup (ES2018 extension): the value of the capture
/// group called \p Name in \p M, or nullopt when the group did not
/// participate in the match or no such name exists in \p R.
std::optional<UString> namedCapture(const Regex &R, const MatchResult &M,
                                    const std::string &Name);

/// Backtracking matcher for one compiled regex. Stateless and reusable;
/// the stateful exec/test API with lastIndex lives in RegExpObject.
class Matcher {
public:
  explicit Matcher(const Regex &R, uint64_t StepBudget = 4'000'000);

  /// Attempts a match starting exactly at \p Start (no searching).
  MatchStatus matchAt(const UString &Input, size_t Start,
                      MatchResult &Out) const;

  /// Finds the leftmost match starting at or after \p Start.
  MatchStatus search(const UString &Input, size_t Start,
                     MatchResult &Out) const;

  const Regex &regex() const { return *R; }

private:
  const Regex *R;
  uint64_t StepBudget;
  /// Flag-resolved character sets, precomputed per CharClass node.
  std::map<const CharClassNode *, CharSet> Effective;

  friend class MatchRun;
};

/// Stateful ES6 RegExp object: exec/test with lastIndex per the spec's
/// RegExpBuiltinExec (used concretely by programs and as the CEGAR oracle,
/// Algorithm 2 of the paper models this function symbolically).
class RegExpObject {
public:
  explicit RegExpObject(Regex R, uint64_t StepBudget = 4'000'000)
      : R(std::move(R)), M(this->R, StepBudget) {}

  /// RegExp.prototype.exec. Updates LastIndex for global/sticky regexes.
  /// Status Budget means the matcher gave up (treat as unknown).
  struct ExecOutcome {
    MatchStatus Status = MatchStatus::NoMatch;
    std::optional<MatchResult> Result;
  };
  ExecOutcome exec(const UString &Input);

  /// RegExp.prototype.test: exec(s) !== null.
  bool test(const UString &Input);

  const Regex &regex() const { return R; }
  const Matcher &matcher() const { return M; }

  /// RegExp.lastIndex, user-visible and assignable as in JS.
  int64_t LastIndex = 0;

private:
  Regex R;
  Matcher M;
};

} // namespace recap

#endif // RECAP_MATCHER_MATCHER_H
