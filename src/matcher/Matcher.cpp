//===- matcher/Matcher.cpp - ES6-compliant regex matcher ------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Continuation-passing backtracking matcher following ECMA-262 2015
/// §21.2.2. Each grammar production's Matcher from the spec corresponds to
/// one case in MatchRun::match; continuations are std::function values, and
/// choice points snapshot (Pos, Caps) so that failed branches restore state
/// exactly as the spec's immutable State threading does.
///
/// Lookbehind (the ES2018 extension) follows the later spec revisions'
/// direction parameter: inside (?<= / (?<! the engine matches right to
/// left (Backward set), consuming positions leftward, iterating
/// concatenations in reverse, and recording capture spans with the entry
/// position as the *end*. Greediness therefore applies right-to-left, e.g.
/// /(?<=(\d+)(\d+))$/ on "1053" captures ("1", "053").
///
//===----------------------------------------------------------------------===//

#include "matcher/Matcher.h"

#include "runtime/CompiledRegex.h"

#include <cassert>

using namespace recap;

namespace recap {

/// One match attempt; holds the mutable state the spec threads through
/// continuations.
class MatchRun {
public:
  MatchRun(const Matcher &M, const UString &Input)
      : M(M), In(Input), Flags(M.regex().flags()) {
    Caps.assign(M.regex().numCaptures() + 1, std::nullopt);
  }

  MatchStatus runAt(size_t Start, MatchResult &Out) {
    Pos = Start;
    std::fill(Caps.begin(), Caps.end(), std::nullopt);
    OutOfBudget = false;
    bool Ok = match(&M.regex().root(), [](MatchRun &) { return true; });
    if (OutOfBudget)
      return MatchStatus::Budget;
    if (!Ok)
      return MatchStatus::NoMatch;
    Out.Index = Start;
    Out.Match = In.substr(Start, Pos - Start);
    Out.Captures.clear();
    for (size_t I = 1; I < Caps.size(); ++I) {
      if (Caps[I])
        Out.Captures.push_back(In.substr(Caps[I]->first,
                                         Caps[I]->second - Caps[I]->first));
      else
        Out.Captures.push_back(std::nullopt);
    }
    return MatchStatus::Match;
  }

private:
  using Span = std::pair<size_t, size_t>;
  using Cont = std::function<bool(MatchRun &)>;

  const Matcher &M;
  const UString &In;
  RegexFlags Flags;
  size_t Pos = 0;
  bool Backward = false; ///< matching right-to-left (inside lookbehind)
  std::vector<std::optional<Span>> Caps;
  uint64_t Steps = 0;
  bool OutOfBudget = false;

  bool step() {
    if (++Steps > M.StepBudget) {
      OutOfBudget = true;
      return false;
    }
    return true;
  }

  CodePoint canon(CodePoint C) const {
    return Flags.IgnoreCase ? canonicalize(C, Flags.Unicode) : C;
  }

  bool match(const RegexNode *N, const Cont &K) {
    if (!step())
      return false;
    switch (N->kind()) {
    case NodeKind::Alternation: {
      const auto &A = cast<AlternationNode>(*N);
      for (const NodePtr &Alt : A.Alternatives) {
        size_t SavePos = Pos;
        auto SaveCaps = Caps;
        if (match(Alt.get(), K))
          return true;
        if (OutOfBudget)
          return false;
        Pos = SavePos;
        Caps = std::move(SaveCaps);
      }
      return false;
    }
    case NodeKind::Concat: {
      const auto &C = cast<ConcatNode>(*N);
      return matchSeq(C.Parts, 0, K);
    }
    case NodeKind::Quantifier: {
      const auto &Q = cast<QuantifierNode>(*N);
      return repeat(Q, 0, K);
    }
    case NodeKind::Group: {
      const auto &G = cast<GroupNode>(*N);
      if (!G.isCapturing())
        return match(G.Body.get(), K);
      size_t Start = Pos;
      uint32_t Idx = G.CaptureIndex;
      return match(G.Body.get(), [&, Start, Idx](MatchRun &S) {
        auto Saved = S.Caps[Idx];
        // Backward matching enters at the right end of the span.
        S.Caps[Idx] =
            S.Backward ? Span{S.Pos, Start} : Span{Start, S.Pos};
        if (K(S))
          return true;
        S.Caps[Idx] = Saved;
        return false;
      });
    }
    case NodeKind::Lookahead: {
      const auto &L = cast<LookaheadNode>(*N);
      size_t SavePos = Pos;
      bool SaveDir = Backward;
      auto SaveCaps = Caps;
      Backward = L.Behind;
      bool R = match(L.Body.get(), [](MatchRun &) { return true; });
      Backward = SaveDir;
      if (OutOfBudget)
        return false;
      if (L.Negated) {
        // Failed negative lookaround restores everything (spec: continue
        // from the original State x).
        Pos = SavePos;
        Caps = std::move(SaveCaps);
        return R ? false : K(*this);
      }
      if (!R) {
        Pos = SavePos;
        Caps = std::move(SaveCaps);
        return false;
      }
      // Positive lookaround: keep captures from the sub-match, restore
      // the position (spec State(x.endIndex, y.captures)).
      Pos = SavePos;
      if (K(*this))
        return true;
      Caps = std::move(SaveCaps);
      return false;
    }
    case NodeKind::Backreference: {
      const auto &B = cast<BackreferenceNode>(*N);
      assert(B.Index < Caps.size() && "backreference out of range");
      const std::optional<Span> &Cap = Caps[B.Index];
      if (!Cap)
        return K(*this); // undefined capture matches epsilon
      size_t Len = Cap->second - Cap->first;
      if (Backward ? Pos < Len : Pos + Len > In.size())
        return false;
      size_t From = Backward ? Pos - Len : Pos; // start of compared range
      for (size_t I = 0; I < Len; ++I)
        if (canon(In[From + I]) != canon(In[Cap->first + I]))
          return false;
      Pos = Backward ? Pos - Len : Pos + Len;
      if (K(*this))
        return true;
      Pos = Backward ? Pos + Len : Pos - Len;
      return false;
    }
    case NodeKind::CharClass: {
      const auto &C = cast<CharClassNode>(*N);
      if (Backward ? Pos == 0 : Pos >= In.size())
        return false;
      if (!M.Effective.at(&C).contains(In[Backward ? Pos - 1 : Pos]))
        return false;
      Pos = Backward ? Pos - 1 : Pos + 1;
      if (K(*this))
        return true;
      Pos = Backward ? Pos + 1 : Pos - 1;
      return false;
    }
    case NodeKind::Anchor: {
      const auto &A = cast<AnchorNode>(*N);
      bool Ok;
      if (A.Which == AnchorKind::Caret)
        Ok = Pos == 0 ||
             (Flags.Multiline && isLineTerminator(In[Pos - 1]));
      else
        Ok = Pos == In.size() ||
             (Flags.Multiline && isLineTerminator(In[Pos]));
      return Ok && K(*this);
    }
    case NodeKind::WordBoundary: {
      const auto &B = cast<WordBoundaryNode>(*N);
      bool Before = Pos > 0 && isWordChar(In[Pos - 1]);
      bool After = Pos < In.size() && isWordChar(In[Pos]);
      bool Boundary = Before != After;
      return Boundary != B.Negated && K(*this);
    }
    }
    assert(false && "unknown node kind");
    return false;
  }

  /// \p I counts completed parts; backward matching consumes the sequence
  /// right to left.
  bool matchSeq(const std::vector<NodePtr> &Parts, size_t I, const Cont &K) {
    if (I == Parts.size())
      return K(*this);
    const RegexNode *Part =
        Parts[Backward ? Parts.size() - 1 - I : I].get();
    return match(Part,
                 [&, I](MatchRun &S) { return S.matchSeq(Parts, I + 1, K); });
  }

  /// Spec RepeatMatcher. \p Count iterations already matched.
  bool repeat(const QuantifierNode &Q, uint64_t Count, const Cont &K) {
    if (!step())
      return false;
    auto TryBody = [&]() {
      size_t SavePos = Pos;
      auto SaveCaps = Caps;
      // Spec: captures inside the body reset to undefined at each
      // iteration start.
      if (auto Range = captureRange(*Q.Body))
        for (uint32_t C = Range->first; C <= Range->second; ++C)
          Caps[C] = std::nullopt;
      bool Ok = match(Q.Body.get(), [&, SavePos, Count](MatchRun &S) {
        // Empty-iteration guard: once the minimum is satisfied, an
        // iteration that consumed nothing fails (spec step: if min is zero
        // and e = xe, return failure).
        if (Count >= Q.Min && S.Pos == SavePos)
          return false;
        return S.repeat(Q, Count + 1, K);
      });
      if (!Ok) {
        Pos = SavePos;
        Caps = std::move(SaveCaps);
      }
      return Ok;
    };

    if (Count < Q.Min)
      return TryBody();
    if (Count >= Q.Max)
      return K(*this);
    if (Q.Greedy) {
      if (TryBody())
        return true;
      if (OutOfBudget)
        return false;
      return K(*this);
    }
    if (K(*this))
      return true;
    if (OutOfBudget)
      return false;
    return TryBody();
  }
};

} // namespace recap

std::optional<UString> recap::namedCapture(const Regex &R,
                                           const MatchResult &M,
                                           const std::string &Name) {
  uint32_t Idx = R.groupIndex(Name);
  if (Idx == 0 || Idx > M.Captures.size())
    return std::nullopt;
  return M.Captures[Idx - 1];
}

Matcher::Matcher(const Regex &Re, uint64_t StepBudget)
    : R(&Re), StepBudget(StepBudget) {
  forEachNode(Re.root(), [&](const RegexNode &N) {
    if (const auto *C = dynCast<CharClassNode>(&N))
      Effective[C] = C->effectiveSet(Re.flags().IgnoreCase,
                                     Re.flags().Unicode);
  });
}

MatchStatus Matcher::matchAt(const UString &Input, size_t Start,
                             MatchResult &Out) const {
  if (Start > Input.size())
    return MatchStatus::NoMatch;
  MatchRun Run(*this, Input);
  return Run.runAt(Start, Out);
}

MatchStatus Matcher::search(const UString &Input, size_t Start,
                            MatchResult &Out) const {
  for (size_t I = Start; I <= Input.size(); ++I) {
    MatchStatus S = matchAt(Input, I, Out);
    if (S != MatchStatus::NoMatch)
      return S;
  }
  return MatchStatus::NoMatch;
}

RegExpObject::RegExpObject(Regex Re, uint64_t StepBudget)
    : RegExpObject(std::make_shared<CompiledRegex>(std::move(Re)),
                   StepBudget) {}

RegExpObject::RegExpObject(std::shared_ptr<CompiledRegex> Compiled,
                           uint64_t StepBudget)
    : C(std::move(Compiled)), R(&C->regex()) {
  M = StepBudget == Matcher::DefaultStepBudget
          ? C->sharedMatcher()
          : std::make_shared<const Matcher>(*R, StepBudget);
}

RegExpObject::RegExpObject(RegExpObject &&) noexcept = default;
RegExpObject &RegExpObject::operator=(RegExpObject &&) noexcept = default;
RegExpObject::~RegExpObject() = default;

RegExpObject::ExecOutcome RegExpObject::exec(const UString &Input) {
  ExecOutcome Out;
  bool Anchored = R->flags().Sticky;
  bool UsesLastIndex = R->flags().Global || R->flags().Sticky;
  int64_t Start = UsesLastIndex ? LastIndex : 0;
  if (Start < 0 || static_cast<size_t>(Start) > Input.size()) {
    if (UsesLastIndex)
      LastIndex = 0;
    Out.Status = MatchStatus::NoMatch;
    return Out;
  }
  MatchResult R1;
  MatchStatus S = Anchored
                      ? M->matchAt(Input, static_cast<size_t>(Start), R1)
                      : M->search(Input, static_cast<size_t>(Start), R1);
  Out.Status = S;
  if (S == MatchStatus::Match) {
    if (UsesLastIndex)
      LastIndex = static_cast<int64_t>(R1.Index + R1.matchLength());
    Out.Result = std::move(R1);
  } else if (UsesLastIndex) {
    LastIndex = 0;
  }
  return Out;
}

bool RegExpObject::test(const UString &Input) {
  return exec(Input).Status == MatchStatus::Match;
}
