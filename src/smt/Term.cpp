//===- smt/Term.cpp - String/regex constraint IR --------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Term.h"

#include <cassert>
#include <cstdio>
#include <functional>

using namespace recap;

TermRef recap::mkBoolConst(bool B) {
  auto T = std::make_shared<Term>(TermKind::BoolConst, SortKind::Bool);
  T->BoolVal = B;
  return T;
}

TermRef recap::mkTrue() {
  static const TermRef T = mkBoolConst(true);
  return T;
}

TermRef recap::mkFalse() {
  static const TermRef T = mkBoolConst(false);
  return T;
}

TermRef recap::mkBoolVar(std::string Name) {
  auto T = std::make_shared<Term>(TermKind::BoolVar, SortKind::Bool);
  T->Name = std::move(Name);
  return T;
}

TermRef recap::mkNot(TermRef T) {
  if (T->Kind == TermKind::BoolConst)
    return mkBoolConst(!T->BoolVal);
  if (T->Kind == TermKind::Not)
    return T->Kids[0];
  auto N = std::make_shared<Term>(TermKind::Not, SortKind::Bool);
  N->Kids.push_back(std::move(T));
  return N;
}

TermRef recap::mkAnd(std::vector<TermRef> Kids) {
  std::vector<TermRef> Flat;
  for (TermRef &K : Kids) {
    if (K->Kind == TermKind::BoolConst) {
      if (!K->BoolVal)
        return mkFalse();
      continue;
    }
    if (K->Kind == TermKind::And) {
      Flat.insert(Flat.end(), K->Kids.begin(), K->Kids.end());
      continue;
    }
    Flat.push_back(std::move(K));
  }
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  auto T = std::make_shared<Term>(TermKind::And, SortKind::Bool);
  T->Kids = std::move(Flat);
  return T;
}

TermRef recap::mkAnd(TermRef A, TermRef B) {
  return mkAnd(std::vector<TermRef>{std::move(A), std::move(B)});
}

TermRef recap::mkOr(std::vector<TermRef> Kids) {
  std::vector<TermRef> Flat;
  for (TermRef &K : Kids) {
    if (K->Kind == TermKind::BoolConst) {
      if (K->BoolVal)
        return mkTrue();
      continue;
    }
    if (K->Kind == TermKind::Or) {
      Flat.insert(Flat.end(), K->Kids.begin(), K->Kids.end());
      continue;
    }
    Flat.push_back(std::move(K));
  }
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  auto T = std::make_shared<Term>(TermKind::Or, SortKind::Bool);
  T->Kids = std::move(Flat);
  return T;
}

TermRef recap::mkOr(TermRef A, TermRef B) {
  return mkOr(std::vector<TermRef>{std::move(A), std::move(B)});
}

TermRef recap::mkImplies(TermRef A, TermRef B) {
  if (A->Kind == TermKind::BoolConst)
    return A->BoolVal ? B : mkTrue();
  if (B->Kind == TermKind::BoolConst && B->BoolVal)
    return mkTrue();
  auto T = std::make_shared<Term>(TermKind::Implies, SortKind::Bool);
  T->Kids = {std::move(A), std::move(B)};
  return T;
}

TermRef recap::mkEq(TermRef A, TermRef B) {
  assert(A->Sort == B->Sort && "equating different sorts");
  if (A->Kind == TermKind::StrConst && B->Kind == TermKind::StrConst)
    return mkBoolConst(A->StrVal == B->StrVal);
  if (A->Kind == TermKind::IntConst && B->Kind == TermKind::IntConst)
    return mkBoolConst(A->IntVal == B->IntVal);
  if (A.get() == B.get())
    return mkTrue();
  auto T = std::make_shared<Term>(TermKind::Eq, SortKind::Bool);
  T->Kids = {std::move(A), std::move(B)};
  return T;
}

TermRef recap::mkNe(TermRef A, TermRef B) {
  return mkNot(mkEq(std::move(A), std::move(B)));
}

TermRef recap::mkInRe(TermRef Str, CRegexRef Re) {
  assert(Str->Sort == SortKind::String && "InRe needs a string");
  auto T = std::make_shared<Term>(TermKind::InRe, SortKind::Bool);
  T->Kids.push_back(std::move(Str));
  T->Re = std::move(Re);
  return T;
}

TermRef recap::mkNotInRe(TermRef Str, CRegexRef Re) {
  return mkNot(mkInRe(std::move(Str), std::move(Re)));
}

TermRef recap::mkStrConst(UString S) {
  auto T = std::make_shared<Term>(TermKind::StrConst, SortKind::String);
  T->StrVal = std::move(S);
  return T;
}

TermRef recap::mkStrVar(std::string Name) {
  auto T = std::make_shared<Term>(TermKind::StrVar, SortKind::String);
  T->Name = std::move(Name);
  return T;
}

TermRef recap::mkConcat(std::vector<TermRef> Kids) {
  std::vector<TermRef> Flat;
  for (TermRef &K : Kids) {
    assert(K->Sort == SortKind::String && "concat of non-strings");
    if (K->Kind == TermKind::StrConst && K->StrVal.empty())
      continue;
    if (K->Kind == TermKind::Concat) {
      Flat.insert(Flat.end(), K->Kids.begin(), K->Kids.end());
      continue;
    }
    // Merge adjacent constants.
    if (!Flat.empty() && Flat.back()->Kind == TermKind::StrConst &&
        K->Kind == TermKind::StrConst) {
      auto Merged = std::make_shared<Term>(TermKind::StrConst,
                                           SortKind::String);
      Merged->StrVal = Flat.back()->StrVal + K->StrVal;
      Flat.back() = Merged;
      continue;
    }
    Flat.push_back(std::move(K));
  }
  if (Flat.empty())
    return mkStrConst(UString());
  if (Flat.size() == 1)
    return Flat[0];
  auto T = std::make_shared<Term>(TermKind::Concat, SortKind::String);
  T->Kids = std::move(Flat);
  return T;
}

TermRef recap::mkConcat(TermRef A, TermRef B) {
  return mkConcat(std::vector<TermRef>{std::move(A), std::move(B)});
}

TermRef recap::mkIntConst(int64_t V) {
  auto T = std::make_shared<Term>(TermKind::IntConst, SortKind::Int);
  T->IntVal = V;
  return T;
}

TermRef recap::mkIntVar(std::string Name) {
  auto T = std::make_shared<Term>(TermKind::IntVar, SortKind::Int);
  T->Name = std::move(Name);
  return T;
}

TermRef recap::mkAdd(TermRef A, TermRef B) {
  if (A->Kind == TermKind::IntConst && B->Kind == TermKind::IntConst)
    return mkIntConst(A->IntVal + B->IntVal);
  auto T = std::make_shared<Term>(TermKind::Add, SortKind::Int);
  T->Kids = {std::move(A), std::move(B)};
  return T;
}

TermRef recap::mkLe(TermRef A, TermRef B) {
  auto T = std::make_shared<Term>(TermKind::Le, SortKind::Bool);
  T->Kids = {std::move(A), std::move(B)};
  return T;
}

TermRef recap::mkLt(TermRef A, TermRef B) {
  auto T = std::make_shared<Term>(TermKind::Lt, SortKind::Bool);
  T->Kids = {std::move(A), std::move(B)};
  return T;
}

TermRef recap::mkStrLen(TermRef S) {
  if (S->Kind == TermKind::StrConst)
    return mkIntConst(static_cast<int64_t>(S->StrVal.size()));
  auto T = std::make_shared<Term>(TermKind::StrLen, SortKind::Int);
  T->Kids.push_back(std::move(S));
  return T;
}

namespace {

/// Injective serialization of a classical regex for cache keys. CRegex's
/// str() is a debug rendering whose class syntax is ambiguous (e.g. the
/// set {+,-,/} and the range +../ both print "[+-/]"); here classes are
/// serialized as their canonical interval lists (sorted, disjoint,
/// non-adjacent), so distinct languages cannot collide.
void renderCRegexKey(const CRegex &R, std::string &S) {
  switch (R.K) {
  case CRegex::Kind::Empty:
    S += 'E';
    return;
  case CRegex::Kind::Epsilon:
    S += 'e';
    return;
  case CRegex::Kind::Class: {
    S += 'C';
    for (const CharSet::Interval &I : R.Cls.intervals()) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "%x-%x,", I.Lo, I.Hi);
      S += Buf;
    }
    S += ';';
    return;
  }
  case CRegex::Kind::Concat:
    S += '&';
    break;
  case CRegex::Kind::Union:
    S += '|';
    break;
  case CRegex::Kind::Star:
    S += '*';
    break;
  case CRegex::Kind::Intersect:
    S += '^';
    break;
  case CRegex::Kind::Complement:
    S += '!';
    break;
  }
  S += '(';
  for (const CRegexRef &K : R.Kids)
    renderCRegexKey(*K, S);
  S += ')';
}

} // namespace

std::string recap::canonicalTermKey(const std::vector<TermRef> &Terms,
                                    std::vector<std::string> *VarOrder) {
  std::map<std::string, size_t> VarIds;
  std::map<const Term *, std::string> Memo;
  std::map<const CRegex *, std::string> ReMemo;

  std::function<const std::string &(const TermRef &)> Walk =
      [&](const TermRef &T) -> const std::string & {
    auto It = Memo.find(T.get());
    if (It != Memo.end())
      return It->second;
    std::string S;
    auto Nary = [&](const char *Op) {
      S = std::string("(") + Op;
      for (const TermRef &K : T->Kids) {
        S += ' ';
        S += Walk(K);
      }
      S += ')';
    };
    switch (T->Kind) {
    case TermKind::BoolConst:
      S = T->BoolVal ? "true" : "false";
      break;
    case TermKind::BoolVar:
    case TermKind::StrVar:
    case TermKind::IntVar: {
      auto [VIt, New] = VarIds.emplace(T->Name, VarIds.size());
      if (New && VarOrder)
        VarOrder->push_back(T->Name);
      char SortC = T->Kind == TermKind::BoolVar  ? 'b'
                   : T->Kind == TermKind::StrVar ? 's'
                                                 : 'i';
      S = '?';
      S += SortC;
      S += std::to_string(VIt->second);
      break;
    }
    case TermKind::StrConst:
      // Unambiguous rendering: escape() leaves '"' raw, which would let a
      // constant's content mimic token boundaries; hex-escape both quote
      // and backslash so the quoted segment is self-delimiting.
      S = '"';
      for (CodePoint C : T->StrVal) {
        if (C >= 0x20 && C < 0x7F && C != '"' && C != '\\') {
          S += static_cast<char>(C);
        } else {
          char Buf[16];
          std::snprintf(Buf, sizeof(Buf), "\\x%X;",
                        static_cast<unsigned>(C));
          S += Buf;
        }
      }
      S += '"';
      break;
    case TermKind::IntConst:
      S = std::to_string(T->IntVal);
      break;
    case TermKind::InRe: {
      auto RIt = ReMemo.find(T->Re.get());
      if (RIt == ReMemo.end()) {
        std::string Re;
        renderCRegexKey(*T->Re, Re);
        RIt = ReMemo.emplace(T->Re.get(), std::move(Re)).first;
      }
      S = "(in_re " + Walk(T->Kids[0]) + ' ' + RIt->second + ')';
      break;
    }
    case TermKind::Not:
      Nary("not");
      break;
    case TermKind::And:
      Nary("and");
      break;
    case TermKind::Or:
      Nary("or");
      break;
    case TermKind::Implies:
      Nary("=>");
      break;
    case TermKind::Eq:
      Nary("=");
      break;
    case TermKind::Le:
      Nary("<=");
      break;
    case TermKind::Lt:
      Nary("<");
      break;
    case TermKind::Concat:
      Nary("++");
      break;
    case TermKind::Add:
      Nary("+");
      break;
    case TermKind::StrLen:
      Nary("len");
      break;
    }
    return Memo.emplace(T.get(), std::move(S)).first->second;
  };

  std::string Out;
  for (const TermRef &T : Terms) {
    Out += Walk(T);
    Out += ';';
  }
  return Out;
}

VarSet recap::collectVars(const std::vector<TermRef> &Terms) {
  VarSet Out;
  std::set<std::string> SeenB, SeenS, SeenI;
  std::function<void(const TermRef &)> Walk = [&](const TermRef &T) {
    if (T->Kind == TermKind::BoolVar && SeenB.insert(T->Name).second)
      Out.Bools.push_back(T->Name);
    if (T->Kind == TermKind::StrVar && SeenS.insert(T->Name).second)
      Out.Strings.push_back(T->Name);
    if (T->Kind == TermKind::IntVar && SeenI.insert(T->Name).second)
      Out.Ints.push_back(T->Name);
    for (const TermRef &K : T->Kids)
      Walk(K);
  };
  for (const TermRef &T : Terms)
    Walk(T);
  return Out;
}

std::string Term::str() const {
  auto Nary = [&](const char *Op) {
    std::string S = std::string("(") + Op;
    for (const TermRef &K : Kids)
      S += " " + K->str();
    return S + ")";
  };
  switch (Kind) {
  case TermKind::BoolConst:
    return BoolVal ? "true" : "false";
  case TermKind::BoolVar:
  case TermKind::StrVar:
  case TermKind::IntVar:
    return Name;
  case TermKind::Not:
    return Nary("not");
  case TermKind::And:
    return Nary("and");
  case TermKind::Or:
    return Nary("or");
  case TermKind::Implies:
    return Nary("=>");
  case TermKind::Eq:
    return Nary("=");
  case TermKind::InRe:
    return "(str.in_re " + Kids[0]->str() + " " + Re->str() + ")";
  case TermKind::Le:
    return Nary("<=");
  case TermKind::Lt:
    return Nary("<");
  case TermKind::StrConst:
    return "\"" + escape(StrVal) + "\"";
  case TermKind::Concat:
    return Nary("str.++");
  case TermKind::IntConst:
    return std::to_string(IntVal);
  case TermKind::Add:
    return Nary("+");
  case TermKind::StrLen:
    return Nary("str.len");
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// TermEvaluator
//===----------------------------------------------------------------------===//

const Automaton *TermEvaluator::automatonFor(const CRegexRef &Re) {
  auto It = Cache.find(Re.get());
  if (It != Cache.end())
    return It->second.get();
  Result<Automaton> A = Automaton::compile(Re);
  if (!A) {
    Cache[Re.get()] = nullptr;
    return nullptr;
  }
  auto Ptr = std::make_shared<Automaton>(A.take());
  const Automaton *Raw = Ptr.get();
  Cache[Re.get()] = std::move(Ptr);
  return Raw;
}

std::optional<UString> TermEvaluator::evalString(const TermRef &T,
                                                 const Assignment &M) {
  switch (T->Kind) {
  case TermKind::StrConst:
    return T->StrVal;
  case TermKind::StrVar:
    return M.str(T->Name);
  case TermKind::Concat: {
    UString Out;
    for (const TermRef &K : T->Kids) {
      std::optional<UString> V = evalString(K, M);
      if (!V)
        return std::nullopt;
      Out += *V;
    }
    return Out;
  }
  default:
    return std::nullopt;
  }
}

std::optional<int64_t> TermEvaluator::evalInt(const TermRef &T,
                                              const Assignment &M) {
  switch (T->Kind) {
  case TermKind::IntConst:
    return T->IntVal;
  case TermKind::IntVar:
    return M.integer(T->Name);
  case TermKind::Add: {
    auto A = evalInt(T->Kids[0], M), B = evalInt(T->Kids[1], M);
    if (!A || !B)
      return std::nullopt;
    return *A + *B;
  }
  case TermKind::StrLen: {
    auto S = evalString(T->Kids[0], M);
    if (!S)
      return std::nullopt;
    return static_cast<int64_t>(S->size());
  }
  default:
    return std::nullopt;
  }
}

std::optional<bool> TermEvaluator::evalBool(const TermRef &T,
                                            const Assignment &M) {
  switch (T->Kind) {
  case TermKind::BoolConst:
    return T->BoolVal;
  case TermKind::BoolVar:
    return M.boolean(T->Name);
  case TermKind::Not: {
    auto V = evalBool(T->Kids[0], M);
    if (!V)
      return std::nullopt;
    return !*V;
  }
  case TermKind::And: {
    for (const TermRef &K : T->Kids) {
      auto V = evalBool(K, M);
      if (!V)
        return std::nullopt;
      if (!*V)
        return false;
    }
    return true;
  }
  case TermKind::Or: {
    for (const TermRef &K : T->Kids) {
      auto V = evalBool(K, M);
      if (!V)
        return std::nullopt;
      if (*V)
        return true;
    }
    return false;
  }
  case TermKind::Implies: {
    auto A = evalBool(T->Kids[0], M);
    if (!A)
      return std::nullopt;
    if (!*A)
      return true;
    return evalBool(T->Kids[1], M);
  }
  case TermKind::Eq: {
    switch (T->Kids[0]->Sort) {
    case SortKind::Bool: {
      auto A = evalBool(T->Kids[0], M), B = evalBool(T->Kids[1], M);
      if (!A || !B)
        return std::nullopt;
      return *A == *B;
    }
    case SortKind::String: {
      auto A = evalString(T->Kids[0], M), B = evalString(T->Kids[1], M);
      if (!A || !B)
        return std::nullopt;
      return *A == *B;
    }
    case SortKind::Int: {
      auto A = evalInt(T->Kids[0], M), B = evalInt(T->Kids[1], M);
      if (!A || !B)
        return std::nullopt;
      return *A == *B;
    }
    }
    return std::nullopt;
  }
  case TermKind::InRe: {
    auto S = evalString(T->Kids[0], M);
    if (!S)
      return std::nullopt;
    const Automaton *A = automatonFor(T->Re);
    if (!A)
      return std::nullopt;
    return A->accepts(*S);
  }
  case TermKind::Le:
  case TermKind::Lt: {
    auto A = evalInt(T->Kids[0], M), B = evalInt(T->Kids[1], M);
    if (!A || !B)
      return std::nullopt;
    return T->Kind == TermKind::Le ? *A <= *B : *A < *B;
  }
  default:
    return std::nullopt;
  }
}
