//===- smt/Term.h - String/regex constraint IR ------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint language of the paper's model (§3.3, §4): boolean
/// structure over string equalities, string concatenation, classical
/// regular language membership, and integer length arithmetic. Terms are
/// immutable shared trees; the builder functions perform light
/// simplification. Two backends solve these constraints: Z3Backend (the
/// paper's setup) and LocalBackend (automata-guided bounded search).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SMT_TERM_H
#define RECAP_SMT_TERM_H

#include "automata/Automaton.h"
#include "automata/ClassicalRegex.h"
#include "support/UString.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace recap {

enum class SortKind : uint8_t { Bool, String, Int };

enum class TermKind : uint8_t {
  // Bool sort
  BoolConst,
  BoolVar,
  Not,
  And,
  Or,
  Implies,
  Eq,   ///< kids of equal sort (String/Int/Bool)
  InRe, ///< Kids[0] : String, language payload in Re
  Le,
  Lt,
  // String sort
  StrConst,
  StrVar,
  Concat,
  // Int sort
  IntConst,
  IntVar,
  Add,
  StrLen, ///< Kids[0] : String
};

class Term;
using TermRef = std::shared_ptr<const Term>;

class Term {
public:
  TermKind Kind;
  SortKind Sort;
  bool BoolVal = false;
  int64_t IntVal = 0;
  UString StrVal;
  std::string Name; ///< variables only
  CRegexRef Re;     ///< InRe only
  std::vector<TermRef> Kids;

  Term(TermKind K, SortKind S) : Kind(K), Sort(S) {}

  bool isVar() const {
    return Kind == TermKind::BoolVar || Kind == TermKind::StrVar ||
           Kind == TermKind::IntVar;
  }

  /// SMT-LIB-flavoured rendering for debugging.
  std::string str() const;
};

// Builders (light simplification: And/Or flatten and drop units, double
// negation cancels, constant folding on Eq of constants).
TermRef mkBoolConst(bool B);
TermRef mkTrue();
TermRef mkFalse();
TermRef mkBoolVar(std::string Name);
TermRef mkNot(TermRef T);
TermRef mkAnd(std::vector<TermRef> Kids);
TermRef mkAnd(TermRef A, TermRef B);
TermRef mkOr(std::vector<TermRef> Kids);
TermRef mkOr(TermRef A, TermRef B);
TermRef mkImplies(TermRef A, TermRef B);
TermRef mkEq(TermRef A, TermRef B);
TermRef mkNe(TermRef A, TermRef B);
TermRef mkInRe(TermRef Str, CRegexRef Re);
TermRef mkNotInRe(TermRef Str, CRegexRef Re);

TermRef mkStrConst(UString S);
TermRef mkStrVar(std::string Name);
TermRef mkConcat(std::vector<TermRef> Kids);
TermRef mkConcat(TermRef A, TermRef B);

TermRef mkIntConst(int64_t V);
TermRef mkIntVar(std::string Name);
TermRef mkAdd(TermRef A, TermRef B);
TermRef mkLe(TermRef A, TermRef B);
TermRef mkLt(TermRef A, TermRef B);
TermRef mkStrLen(TermRef S);

/// Renders \p Terms into a canonical string that is invariant under
/// variable renaming (α-equivalence): every variable is printed as
/// "?<sort><index>" where the index is its first-occurrence position.
/// When \p VarOrder is non-null it receives the actual variable names in
/// that same order, so two α-equivalent term lists yield the same key and
/// a positional bijection between their variables. Rendering is memoized
/// per shared subterm and per classical-regex payload, so DAG-shaped
/// constraints render in time linear in their distinct nodes.
std::string canonicalTermKey(const std::vector<TermRef> &Terms,
                             std::vector<std::string> *VarOrder = nullptr);

/// Collects all variables (by name) per sort, in first-occurrence order.
struct VarSet {
  std::vector<std::string> Bools;
  std::vector<std::string> Strings;
  std::vector<std::string> Ints;
};
VarSet collectVars(const std::vector<TermRef> &Terms);

/// A model: values for variables. Missing entries default to false / "" / 0
/// (solver backends fill every variable they saw).
struct Assignment {
  std::map<std::string, bool> Bools;
  std::map<std::string, UString> Strings;
  std::map<std::string, int64_t> Ints;

  UString str(const std::string &Name) const {
    auto It = Strings.find(Name);
    return It == Strings.end() ? UString() : It->second;
  }
  bool boolean(const std::string &Name) const {
    auto It = Bools.find(Name);
    return It != Bools.end() && It->second;
  }
  int64_t integer(const std::string &Name) const {
    auto It = Ints.find(Name);
    return It == Ints.end() ? 0 : It->second;
  }
};

/// Evaluates ground terms under an assignment; used by LocalBackend's
/// final checking, by tests validating Z3 models, and by the CEGAR loop.
/// Membership tests compile the language once per distinct CRegex node.
class TermEvaluator {
public:
  /// Nullopt if an automaton hits its state limit.
  std::optional<bool> evalBool(const TermRef &T, const Assignment &M);
  std::optional<UString> evalString(const TermRef &T, const Assignment &M);
  std::optional<int64_t> evalInt(const TermRef &T, const Assignment &M);

private:
  std::map<const CRegex *, std::shared_ptr<Automaton>> Cache;
  const Automaton *automatonFor(const CRegexRef &Re);
};

} // namespace recap

#endif // RECAP_SMT_TERM_H
