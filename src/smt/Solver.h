//===- smt/Solver.h - Solver backend interface ------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SolverBackend abstracts "the external SMT solver with classical regular
/// expression and string support" of Algorithm 1. Z3Backend wraps the
/// system Z3 through its native C++ API; LocalBackend is a self-contained
/// automata-guided bounded search (see DESIGN.md) used as a dependency-free
/// substrate and ablation baseline.
///
/// Both backends additionally expose an incremental SolverSession
/// (push/pop/assertTerm/check): the CEGAR loop pushes each refinement
/// constraint instead of re-solving the whole conjunction, and the DSE
/// engine pins a session to the current path prefix so sibling clause
/// flips reuse accumulated backend state (DESIGN.md §5). Backends that do
/// not override openSession() get a stateless-compat shim that re-solves
/// the accumulated assertion set through solve() on every check, so the
/// session API is total across backends.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SMT_SOLVER_H
#define RECAP_SMT_SOLVER_H

#include "smt/Term.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>

namespace recap {

enum class SolveStatus : uint8_t { Sat, Unsat, Unknown };

struct SolverLimits {
  /// Per-query wall clock budget.
  uint32_t TimeoutMs = 10000;
  /// LocalBackend: maximum candidate word length per variable.
  size_t MaxWordLength = 16;
  /// LocalBackend: maximum candidate words per variable per length bound.
  size_t MaxCandidates = 64;
  /// LocalBackend: total search node budget.
  uint64_t MaxNodes = 200000;
  /// Cooperative cancellation flag, polled by LocalBackend inside its
  /// product-DFA walks (candidate automaton construction, word
  /// enumeration, branch search). Owned by the caller; null = never
  /// cancelled. Not part of any cache key: it describes the check, not
  /// the problem.
  const std::atomic<bool> *Cancel = nullptr;
};

struct SolverStats {
  uint64_t Queries = 0;
  uint64_t Sat = 0;
  uint64_t Unsat = 0;
  uint64_t Unknown = 0;
  double TotalSeconds = 0;
  double MaxSeconds = 0;
  // Incremental-session counters. Checks issued through sessions also
  // count into Queries/Sat/Unsat/Unknown above.
  uint64_t SessionsOpened = 0;
  uint64_t SessionChecks = 0;
  uint64_t SessionAsserts = 0;
  uint64_t SessionPops = 0;
  /// LocalBackend sessions: candidate-automaton cache effectiveness (the
  /// complement/product constructions persisted across checks).
  uint64_t SessionCandidateHits = 0;
  uint64_t SessionCandidateMisses = 0;
  /// Session checks that returned Unknown because a cancel() was pending
  /// (racing: the losing lane's aborted checks land here).
  uint64_t CancelledChecks = 0;

  /// Associative accumulation of per-shard windows (each shard owns its
  /// backends, so windows never overlap).
  void merge(const SolverStats &O) {
    Queries += O.Queries;
    Sat += O.Sat;
    Unsat += O.Unsat;
    Unknown += O.Unknown;
    TotalSeconds += O.TotalSeconds;
    MaxSeconds = MaxSeconds < O.MaxSeconds ? O.MaxSeconds : MaxSeconds;
    SessionsOpened += O.SessionsOpened;
    SessionChecks += O.SessionChecks;
    SessionAsserts += O.SessionAsserts;
    SessionPops += O.SessionPops;
    SessionCandidateHits += O.SessionCandidateHits;
    SessionCandidateMisses += O.SessionCandidateMisses;
    CancelledChecks += O.CancelledChecks;
  }
};

class SolverBackend;

/// One incremental solving scope stack over a backend. Assertions
/// accumulate per scope; pop(n) discards the n most recent scopes and
/// every assertion made inside them. check() solves the conjunction of
/// all live assertions.
///
/// The base class keeps the authoritative flattened assertion list and
/// scope marks; backends mirror state through the on* hooks (Z3 into a
/// native scoped solver, LocalBackend into persistent search caches, the
/// default shim nowhere — it re-solves the list per check).
///
/// Popped assertion trees are retained for the life of the session: the
/// backends' per-pointer memo tables (Z3 translation memo, automata
/// caches) key on Term/CRegex addresses, so releasing a tree could let
/// the allocator hand the same address to a different term.
///
/// Sessions are single-threaded and must not outlive their backend, with
/// one exception: while a checkAsync() is in flight the owning thread may
/// call cancel() — and nothing else — concurrently. A backend and its
/// sessions still belong to one thread overall; checkAsync moves the
/// check (and the stats recording it does) onto its worker thread, so
/// two sessions of the *same* backend must never have overlapping
/// checks from different threads.
class SolverSession {
public:
  virtual ~SolverSession() = default;

  /// Handle for one in-flight checkAsync(). Joins the worker on
  /// destruction, so dropping the handle is a safe way to abandon a
  /// cancelled check (the session outlives the handle by contract).
  class AsyncCheck {
  public:
    AsyncCheck(std::future<SolveStatus> F, std::unique_ptr<Assignment> M)
        : Fut(std::move(F)), Model(std::move(M)) {}

    /// True once the check finished (does not consume the result).
    bool ready(std::chrono::milliseconds Wait = {}) {
      return Fut.wait_for(Wait) == std::future_status::ready;
    }
    /// Blocks until the check finishes and returns its status
    /// (idempotent).
    SolveStatus get() {
      if (!Got) {
        Status = Fut.get();
        Got = true;
      }
      return Status;
    }
    /// The model of a Sat check; valid after get().
    const Assignment &model() const { return *Model; }

  private:
    std::future<SolveStatus> Fut;
    std::unique_ptr<Assignment> Model;
    bool Got = false;
    SolveStatus Status = SolveStatus::Unknown;
  };

  /// Opens a new scope.
  void push();
  /// Discards the \p N most recent scopes (clamped to depth()).
  void pop(unsigned N = 1);
  /// Asserts \p T in the current scope.
  void assertTerm(TermRef T);
  /// Solves the conjunction of all live assertions. On Sat, fills
  /// \p Model with values for every variable the session has seen (values
  /// for variables only mentioned in popped scopes are completion
  /// defaults and harmless). Returns Unknown without solving when a
  /// cancel() is pending (see cancel()).
  SolveStatus check(Assignment &Model, const SolverLimits &Limits);

  /// check() on a worker thread. The caller may only touch the session
  /// through cancel() (and the returned handle) until the handle reports
  /// ready; the session's scope stack is untouched by the in-flight
  /// check, so push/pop/assert resume normally afterwards. The handle
  /// joins the worker on destruction.
  std::unique_ptr<AsyncCheck> checkAsync(const SolverLimits &Limits);

  /// Requests cancellation of the in-flight (or next) check: the check
  /// returns Unknown as soon as the backend notices — Z3 via
  /// context interrupt, LocalBackend at its next cooperative poll. The
  /// flag is sticky until resetCancel(): a winner-decided race must stay
  /// cancelled even if the request lands between two refinement rounds.
  /// Cancellation never perturbs session state: the scope stack, the
  /// live assertions and every backend cache survive exactly as they
  /// were before the cancelled check (PR 2 session-state guarantees).
  void cancel();
  /// Re-arms the session for further checks after a cancel().
  void resetCancel() { CancelFlag.store(false, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return CancelFlag.load(std::memory_order_relaxed);
  }

  /// Number of open scopes.
  unsigned depth() const { return static_cast<unsigned>(Marks.size()); }
  /// Number of live assertions across all scopes.
  size_t assertionCount() const { return Assertions.size(); }
  const std::vector<TermRef> &assertions() const { return Assertions; }
  SolverBackend &backend() { return Owner; }

protected:
  /// \p Passthrough marks a wrapper session that forwards every operation
  /// to an inner session of the same backend (reliability/GuardedSession):
  /// the base class then skips its per-operation stats accounting and the
  /// fault-injection site, so each wrapped operation counts exactly once.
  explicit SolverSession(SolverBackend &Owner, bool Passthrough = false);

  virtual void onAssert(const TermRef &T) { (void)T; }
  virtual void onPush() {}
  /// Called after the base class dropped the popped assertions;
  /// \p NewSize is the surviving assertion count.
  virtual void onPop(unsigned N, size_t NewSize) {
    (void)N;
    (void)NewSize;
  }
  /// Backend-specific solve over the live assertion state. Implementations
  /// record Sat/Unsat/Unknown + timing into the owner's SolverStats (the
  /// shim does so via solve(); native sessions call recordQuery()).
  /// Limits.Cancel points at this session's flag when a cancel source
  /// exists (check() wires it), so cooperative backends poll it.
  virtual SolveStatus checkImpl(Assignment &Model,
                                const SolverLimits &Limits) = 0;
  /// Backend hook for cancel(): interrupt a natively blocking check
  /// (Z3Session calls the context interrupt). Cooperative backends need
  /// nothing — they poll Limits.Cancel. May be called from a thread
  /// other than the session's while a check is in flight.
  virtual void onCancel() {}

  /// Stats bridge for native sessions (mirrors SolverBackend::record).
  void recordQuery(SolveStatus S, double Seconds);
  SolverStats &ownerStats();

  SolverBackend &Owner;
  const bool Passthrough; ///< wrapper session: see the constructor
  std::vector<TermRef> Assertions; ///< live, in assertion order
  std::vector<size_t> Marks;       ///< Assertions.size() at each push
  std::vector<TermRef> Retained;   ///< popped trees kept alive (see above)
  std::set<const Term *> RetainedKeys; ///< dedups Retained
  /// Sticky cancellation request (see cancel()).
  std::atomic<bool> CancelFlag{false};
};

class SolverBackend {
public:
  virtual ~SolverBackend() = default;

  /// Solves the conjunction of \p Assertions. On Sat, fills \p Model with
  /// values for every variable occurring in the assertions.
  virtual SolveStatus solve(const std::vector<TermRef> &Assertions,
                            Assignment &Model, const SolverLimits &Limits) = 0;

  /// Opens an incremental session. The default implementation is a
  /// stateless-compat shim (re-solves the accumulated assertions through
  /// solve() on every check); Z3Backend and LocalBackend override it with
  /// natively incremental sessions.
  virtual std::unique_ptr<SolverSession> openSession();

  /// Whether sessions actually make this backend faster. CegarSolver's
  /// Auto session policy consults this: LocalBackend profits (persistent
  /// automata caches), while Z3's incremental core is measurably weaker
  /// on seq/re goals than a scratch solve (DESIGN.md §5.3), so Z3Backend
  /// returns false and Auto-mode CEGAR keeps solving it statelessly.
  /// Sessions opened explicitly through openSession() work either way.
  virtual bool prefersIncremental() const { return true; }

  virtual std::string name() const = 0;

  /// Cumulative statistics (updated by solve implementations).
  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }

protected:
  void record(SolveStatus S, double Seconds) {
    ++Stats.Queries;
    if (S == SolveStatus::Sat)
      ++Stats.Sat;
    else if (S == SolveStatus::Unsat)
      ++Stats.Unsat;
    else
      ++Stats.Unknown;
    Stats.TotalSeconds += Seconds;
    Stats.MaxSeconds = std::max(Stats.MaxSeconds, Seconds);
  }

  SolverStats Stats;

  friend class SolverSession;
};

/// Creates the Z3-based backend (the paper's configuration).
std::unique_ptr<SolverBackend> makeZ3Backend();

/// Creates the self-contained bounded backend.
std::unique_ptr<SolverBackend> makeLocalBackend();

} // namespace recap

#endif // RECAP_SMT_SOLVER_H
