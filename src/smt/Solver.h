//===- smt/Solver.h - Solver backend interface ------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SolverBackend abstracts "the external SMT solver with classical regular
/// expression and string support" of Algorithm 1. Z3Backend wraps the
/// system Z3 through its native C++ API; LocalBackend is a self-contained
/// automata-guided bounded search (see DESIGN.md) used as a dependency-free
/// substrate and ablation baseline.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SMT_SOLVER_H
#define RECAP_SMT_SOLVER_H

#include "smt/Term.h"

#include <chrono>
#include <memory>

namespace recap {

enum class SolveStatus : uint8_t { Sat, Unsat, Unknown };

struct SolverLimits {
  /// Per-query wall clock budget.
  uint32_t TimeoutMs = 10000;
  /// LocalBackend: maximum candidate word length per variable.
  size_t MaxWordLength = 16;
  /// LocalBackend: maximum candidate words per variable per length bound.
  size_t MaxCandidates = 64;
  /// LocalBackend: total search node budget.
  uint64_t MaxNodes = 200000;
};

struct SolverStats {
  uint64_t Queries = 0;
  uint64_t Sat = 0;
  uint64_t Unsat = 0;
  uint64_t Unknown = 0;
  double TotalSeconds = 0;
  double MaxSeconds = 0;
};

class SolverBackend {
public:
  virtual ~SolverBackend() = default;

  /// Solves the conjunction of \p Assertions. On Sat, fills \p Model with
  /// values for every variable occurring in the assertions.
  virtual SolveStatus solve(const std::vector<TermRef> &Assertions,
                            Assignment &Model, const SolverLimits &Limits) = 0;

  virtual std::string name() const = 0;

  /// Cumulative statistics (updated by solve implementations).
  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }

protected:
  void record(SolveStatus S, double Seconds) {
    ++Stats.Queries;
    if (S == SolveStatus::Sat)
      ++Stats.Sat;
    else if (S == SolveStatus::Unsat)
      ++Stats.Unsat;
    else
      ++Stats.Unknown;
    Stats.TotalSeconds += Seconds;
    Stats.MaxSeconds = std::max(Stats.MaxSeconds, Seconds);
  }

  SolverStats Stats;
};

/// Creates the Z3-based backend (the paper's configuration).
std::unique_ptr<SolverBackend> makeZ3Backend();

/// Creates the self-contained bounded backend.
std::unique_ptr<SolverBackend> makeLocalBackend();

} // namespace recap

#endif // RECAP_SMT_SOLVER_H
