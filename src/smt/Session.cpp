//===- smt/Session.cpp - Incremental session base + stateless shim ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SolverSession base bookkeeping (the authoritative scope stack of
/// assertions) and the stateless-compat shim returned by the default
/// SolverBackend::openSession(): every check re-solves the flattened
/// assertion list through solve(), so backends without native
/// incrementality still satisfy the session contract.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "reliability/FaultInjector.h"

using namespace recap;

SolverSession::SolverSession(SolverBackend &Owner, bool Passthrough)
    : Owner(Owner), Passthrough(Passthrough) {
  if (!Passthrough)
    ++Owner.Stats.SessionsOpened;
}

void SolverSession::push() {
  Marks.push_back(Assertions.size());
  onPush();
}

void SolverSession::pop(unsigned N) {
  if (N > Marks.size())
    N = static_cast<unsigned>(Marks.size());
  if (N == 0)
    return;
  size_t NewSize = Marks[Marks.size() - N];
  Marks.resize(Marks.size() - N);
  // Keep the popped trees alive: backend memo tables key on node
  // addresses (see class comment). Deduplicated — a pinned session pops
  // the same prefix assertions over and over, and retention only needs
  // each tree once.
  for (size_t I = NewSize; I < Assertions.size(); ++I)
    if (RetainedKeys.insert(Assertions[I].get()).second)
      Retained.push_back(std::move(Assertions[I]));
  Assertions.resize(NewSize);
  if (!Passthrough)
    Owner.Stats.SessionPops += N;
  onPop(N, NewSize);
}

void SolverSession::assertTerm(TermRef T) {
  Assertions.push_back(T);
  if (!Passthrough)
    ++Owner.Stats.SessionAsserts;
  onAssert(Assertions.back());
}

SolveStatus SolverSession::check(Assignment &Model,
                                 const SolverLimits &Limits) {
  if (!Passthrough)
    ++Owner.Stats.SessionChecks;
  // A pending cancel short-circuits before the backend runs: the racing
  // coordinator may decide a winner between two refinement rounds of the
  // loser, and the flag is sticky until resetCancel().
  if (cancelRequested()) {
    ++Owner.Stats.CancelledChecks;
    return SolveStatus::Unknown;
  }
  // Chaos harness: a scripted fault may force Unknown or stall here as if
  // the backend misbehaved. GuardedSession passthrough skips the site so a
  // guarded check draws exactly one fault (in the inner session).
  if (!Passthrough) {
    if (FaultInjector *FI = FaultInjector::active()) {
      if (FI->fire(FaultSite::SessionCheck, &CancelFlag)) {
        if (cancelRequested())
          ++Owner.Stats.CancelledChecks;
        return SolveStatus::Unknown;
      }
    }
  }
  SolverLimits L = Limits;
  if (!L.Cancel)
    L.Cancel = &CancelFlag;
  SolveStatus S = checkImpl(Model, L);
  if (S == SolveStatus::Unknown && cancelRequested())
    ++Owner.Stats.CancelledChecks;
  return S;
}

void SolverSession::cancel() {
  CancelFlag.store(true, std::memory_order_relaxed);
  onCancel();
}

std::unique_ptr<SolverSession::AsyncCheck>
SolverSession::checkAsync(const SolverLimits &Limits) {
  // The model lives on the heap so the handle can own it while the
  // worker fills it; the future's shared state sequences the write
  // (worker) before the read (AsyncCheck::model after get()).
  auto Model = std::make_unique<Assignment>();
  Assignment *M = Model.get();
  SolverLimits L = Limits;
  std::future<SolveStatus> F =
      std::async(std::launch::async, [this, M, L] { return check(*M, L); });
  return std::make_unique<AsyncCheck>(std::move(F), std::move(Model));
}

void SolverSession::recordQuery(SolveStatus S, double Seconds) {
  Owner.record(S, Seconds);
}

SolverStats &SolverSession::ownerStats() { return Owner.Stats; }

namespace {

/// The stateless-compat shim: no backend state survives between checks.
class StatelessSession : public SolverSession {
public:
  explicit StatelessSession(SolverBackend &Owner) : SolverSession(Owner) {}

  SolveStatus checkImpl(Assignment &Model,
                        const SolverLimits &Limits) override {
    // solve() records the query into the owner's stats itself.
    Model = Assignment();
    return Owner.solve(Assertions, Model, Limits);
  }
};

} // namespace

std::unique_ptr<SolverSession> SolverBackend::openSession() {
  return std::unique_ptr<SolverSession>(new StatelessSession(*this));
}
