//===- smt/Z3Backend.cpp - Z3 seq/re translation ---------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the recap constraint IR into Z3's sequence/regular-expression
/// theory through the native C++ API (z3++.h), solves, and reads models
/// back. To keep model extraction robust across Z3's unicode encoding, the
/// backend constrains every free string variable to the Latin-1 alphabet
/// [\x00-\xFF] and clamps character classes accordingly; the paper's meta
/// markers live at 0x02/0x03, well inside this range (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "reliability/FaultInjector.h"

#include <z3++.h>

#include <cassert>
#include <chrono>

using namespace recap;

namespace {

constexpr CodePoint SolverMaxChar = 0xFF;

/// Latin-1 bytes <-> code points (the backend's string encoding contract).
std::string toLatin1(const UString &S) {
  std::string Out;
  Out.reserve(S.size());
  for (CodePoint C : S) {
    assert(C <= SolverMaxChar && "non-Latin-1 constant reached Z3 backend");
    Out.push_back(static_cast<char>(C));
  }
  return Out;
}

UString fromLatin1(const std::string &S) {
  UString Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(static_cast<unsigned char>(C));
  return Out;
}

/// IR -> Z3 expression translation with memoization.
struct Translator {
    z3::context &Ctx;
    std::map<std::string, z3::expr> StrVars, BoolVars, IntVars;
    std::map<const Term *, z3::expr> Memo;
    std::map<const CRegex *, z3::expr> ReMemo;

    explicit Translator(z3::context &Ctx) : Ctx(Ctx) {}

    z3::expr toBool(const TermRef &T) {
      z3::expr E = trans(T);
      assert(E.is_bool() && "expected boolean term");
      return E;
    }

    z3::expr trans(const TermRef &T) {
      auto It = Memo.find(T.get());
      if (It != Memo.end())
        return It->second;
      z3::expr E = transNew(T);
      Memo.emplace(T.get(), E);
      return E;
    }

    z3::expr transNew(const TermRef &T) {
      switch (T->Kind) {
      case TermKind::BoolConst:
        return Ctx.bool_val(T->BoolVal);
      case TermKind::BoolVar: {
        auto It = BoolVars.find(T->Name);
        if (It == BoolVars.end())
          It = BoolVars.emplace(T->Name,
                                Ctx.bool_const(T->Name.c_str()))
                   .first;
        return It->second;
      }
      case TermKind::Not:
        return !trans(T->Kids[0]);
      case TermKind::And: {
        z3::expr_vector V(Ctx);
        for (const TermRef &K : T->Kids)
          V.push_back(trans(K));
        return z3::mk_and(V);
      }
      case TermKind::Or: {
        z3::expr_vector V(Ctx);
        for (const TermRef &K : T->Kids)
          V.push_back(trans(K));
        return z3::mk_or(V);
      }
      case TermKind::Implies:
        return z3::implies(trans(T->Kids[0]), trans(T->Kids[1]));
      case TermKind::Eq:
        return trans(T->Kids[0]) == trans(T->Kids[1]);
      case TermKind::InRe:
        return z3::in_re(trans(T->Kids[0]), transRe(T->Re));
      case TermKind::Le:
        return trans(T->Kids[0]) <= trans(T->Kids[1]);
      case TermKind::Lt:
        return trans(T->Kids[0]) < trans(T->Kids[1]);
      case TermKind::StrConst: {
        // Length-aware construction: embedded NULs and bytes >= 0x80 must
        // pass through uninterpreted.
        std::string Bytes = toLatin1(T->StrVal);
        return Ctx.string_val(Bytes.data(),
                              static_cast<unsigned>(Bytes.size()));
      }
      case TermKind::StrVar: {
        auto It = StrVars.find(T->Name);
        if (It == StrVars.end())
          It = StrVars.emplace(T->Name,
                               Ctx.constant(T->Name.c_str(),
                                            Ctx.string_sort()))
                   .first;
        return It->second;
      }
      case TermKind::Concat: {
        z3::expr_vector V(Ctx);
        for (const TermRef &K : T->Kids)
          V.push_back(trans(K));
        return z3::concat(V);
      }
      case TermKind::IntConst:
        return Ctx.int_val(static_cast<int64_t>(T->IntVal));
      case TermKind::IntVar: {
        auto It = IntVars.find(T->Name);
        if (It == IntVars.end())
          It = IntVars.emplace(T->Name, Ctx.int_const(T->Name.c_str()))
                   .first;
        return It->second;
      }
      case TermKind::Add:
        return trans(T->Kids[0]) + trans(T->Kids[1]);
      case TermKind::StrLen:
        return trans(T->Kids[0]).length();
      }
      assert(false && "unhandled term kind");
      return Ctx.bool_val(false);
    }

    z3::expr transRe(const CRegexRef &R) {
      auto It = ReMemo.find(R.get());
      if (It != ReMemo.end())
        return It->second;
      z3::expr E = transReNew(R);
      ReMemo.emplace(R.get(), E);
      return E;
    }

    z3::sort reSort() {
      z3::sort Str = Ctx.string_sort();
      return Ctx.re_sort(Str);
    }

    z3::expr reUnion(const z3::expr_vector &Parts) {
      assert(!Parts.empty() && "union of zero languages");
      if (Parts.size() == 1)
        return Parts[0];
      z3::array<Z3_ast> Args(Parts);
      z3::expr R(Ctx, Z3_mk_re_union(Ctx, Args.size(), Args.ptr()));
      Ctx.check_error();
      return R;
    }

    z3::expr transReNew(const CRegexRef &R) {
      switch (R->K) {
      case CRegex::Kind::Empty: {
        z3::sort RS = reSort();
        return z3::re_empty(RS);
      }
      case CRegex::Kind::Epsilon:
        return z3::to_re(Ctx.string_val(""));
      case CRegex::Kind::Class: {
        // Clamp to the Latin-1 solver alphabet.
        CharSet S = R->Cls.intersectWith(
            CharSet::range(0, SolverMaxChar));
        if (S.isEmpty()) {
          z3::sort RS = reSort();
          return z3::re_empty(RS);
        }
        z3::expr_vector Parts(Ctx);
        for (const CharSet::Interval &I : S.intervals()) {
          char LoC = static_cast<char>(I.Lo), HiC = static_cast<char>(I.Hi);
          Parts.push_back(z3::range(Ctx.string_val(&LoC, 1),
                                    Ctx.string_val(&HiC, 1)));
        }
        return reUnion(Parts);
      }
      case CRegex::Kind::Concat: {
        z3::expr_vector V(Ctx);
        for (const CRegexRef &K : R->Kids)
          V.push_back(transRe(K));
        return z3::concat(V);
      }
      case CRegex::Kind::Union: {
        z3::expr_vector V(Ctx);
        for (const CRegexRef &K : R->Kids)
          V.push_back(transRe(K));
        return reUnion(V);
      }
      case CRegex::Kind::Star:
        return z3::star(transRe(R->Kids[0]));
      case CRegex::Kind::Intersect: {
        z3::expr_vector V(Ctx);
        for (const CRegexRef &K : R->Kids)
          V.push_back(transRe(K));
        return z3::re_intersect(V);
      }
      case CRegex::Kind::Complement:
        return z3::re_complement(transRe(R->Kids[0]));
      }
      assert(false && "unhandled regex kind");
      return z3::to_re(Ctx.string_val(""));
    }
};

/// Σ_latin1* — the alphabet constraint language (see file comment).
z3::expr anyLatin1(z3::context &Ctx) {
  char Lo0 = '\0', Hi0 = static_cast<char>(0xFF);
  return z3::star(
      z3::range(Ctx.string_val(&Lo0, 1), Ctx.string_val(&Hi0, 1)));
}

/// Reads values for every variable the translator has seen out of \p M.
void extractModel(Translator &Tr, z3::model &M, Assignment &Model) {
  for (auto &[Name, Var] : Tr.StrVars) {
    z3::expr V = M.eval(Var, /*model_completion=*/true);
    Model.Strings[Name] = fromLatin1(V.get_string());
  }
  for (auto &[Name, Var] : Tr.BoolVars) {
    z3::expr V = M.eval(Var, true);
    Model.Bools[Name] = V.is_true();
  }
  for (auto &[Name, Var] : Tr.IntVars) {
    z3::expr V = M.eval(Var, true);
    int64_t I = 0;
    if (V.is_numeral_i64(I))
      Model.Ints[Name] = I;
    else
      Model.Ints[Name] = 0;
  }
}

class Z3Backend : public SolverBackend {
public:
  SolveStatus solve(const std::vector<TermRef> &Assertions, Assignment &Model,
                    const SolverLimits &Limits) override {
    auto T0 = std::chrono::steady_clock::now();
    SolveStatus Status = solveImpl(Assertions, Model, Limits);
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    record(Status, Sec);
    return Status;
  }

  std::unique_ptr<SolverSession> openSession() override;

  /// Measured on the DSE workloads: solving through the scoped solver
  /// costs throughput (the incremental core forgoes the preprocessing a
  /// fresh solve gets — see the scratch rescue in Z3Session::checkImpl),
  /// so Auto-policy callers should keep using solve().
  bool prefersIncremental() const override { return false; }

  std::string name() const override { return "z3"; }

  /// Scratch solve without stats recording — Z3Session's rescue path
  /// folds the attempt into its own single recordQuery.
  SolveStatus solveScratch(const std::vector<TermRef> &Assertions,
                           Assignment &Model, const SolverLimits &Limits) {
    return solveImpl(Assertions, Model, Limits);
  }

private:
  SolveStatus solveImpl(const std::vector<TermRef> &Assertions,
                        Assignment &Model, const SolverLimits &Limits) try {
    // Chaos harness: a scripted fault may force Unknown, stall, or throw
    // here. An injected Throw is a std::runtime_error, NOT a
    // z3::exception, so it deliberately escapes the catch below — that is
    // the unhardened-escape scenario the reliability layer must contain.
    if (FaultInjector *FI = FaultInjector::active()) {
      if (FI->fire(FaultSite::Z3Solve, Limits.Cancel))
        return SolveStatus::Unknown;
    }
    z3::context Ctx;
    z3::params P(Ctx);
    P.set("timeout", Limits.TimeoutMs);
    z3::solver S(Ctx);
    S.set(P);

    Translator Tr(Ctx);
    for (const TermRef &A : Assertions)
      S.add(Tr.toBool(A));
    // Latin-1 alphabet constraint on every free string variable (see file
    // comment).
    z3::expr AnyLatin1 = anyLatin1(Ctx);
    for (auto &[Name, Var] : Tr.StrVars)
      S.add(z3::in_re(Var, AnyLatin1));

    switch (S.check()) {
    case z3::unsat:
      return SolveStatus::Unsat;
    case z3::unknown:
      return SolveStatus::Unknown;
    case z3::sat:
      break;
    }
    z3::model M = S.get_model();
    extractModel(Tr, M, Model);
    return SolveStatus::Sat;
  } catch (const z3::exception &) {
    // Z3 raises (rather than returns unknown) on some interrupted or
    // resource-limited paths; a solver error is an Unknown, not a crash.
    return SolveStatus::Unknown;
  }
};

/// Native incremental session: one long-lived context + scoped solver.
/// The translator (and its memo tables) persists across push/pop — Z3
/// expressions stay valid for the context's lifetime, only *assertions*
/// are undone by pop. The Latin-1 alphabet constraint is an assertion, so
/// the session tracks per scope which variables it covered and re-asserts
/// it when a variable reappears after its constraining scope was popped.
///
/// The scoped solver is built from a tactic pipeline
/// (simplify | solve-eqs | smt) rather than the plain incremental
/// solver: a tactic-built solver re-applies its preprocessing to the
/// *whole* live assertion set on every check, which is exactly the
/// preprocessing Z3's incremental core forgoes on seq/re goals — so
/// re-checks after push/pop win inside Z3 instead of relying solely on
/// the scratch rescue below. Per-check params are selected from the live
/// assertion mix (see checkImpl).
///
/// cancel() maps to the context interrupt: the in-flight check returns
/// unknown within milliseconds, the solver and all scopes stay usable.
class Z3Session : public SolverSession {
public:
  explicit Z3Session(SolverBackend &Owner)
      : SolverSession(Owner),
        S((z3::tactic(Ctx, "simplify") & z3::tactic(Ctx, "solve-eqs") &
           z3::tactic(Ctx, "smt"))
              .mk_solver()),
        Tr(Ctx), AnyLatin1(anyLatin1(Ctx)) {
    AlphaByScope.emplace_back(); // base scope
    ReByScope.push_back(0);
  }

  void onAssert(const TermRef &T) override {
    // A z3 error mid-mirroring (translation or add) marks the session
    // Broken instead of escaping: the native solver can no longer be
    // trusted to track the base scope stack, so every further check is
    // Unknown and callers fall back (scratch retry / session drop). The
    // scope bookkeeping below the try still runs — it mirrors the base
    // class, not the solver, and must stay in sync for the pops to come.
    if (!Broken) {
      try {
        S.add(Tr.toBool(T));
        // Constrain any string variable this assertion introduced (or
        // whose previous constraint was popped away).
        for (auto &[Name, Var] : Tr.StrVars) {
          if (AlphaDone.count(Name))
            continue;
          S.add(z3::in_re(Var, AnyLatin1));
          AlphaDone.insert(Name);
          AlphaByScope.back().push_back(Name);
        }
      } catch (const z3::exception &) {
        Broken = true;
      }
    }
    if (containsInRe(T)) {
      ++ReLive;
      ++ReByScope.back();
    }
  }

  void onPush() override {
    if (!Broken) {
      try {
        S.push();
      } catch (const z3::exception &) {
        Broken = true;
      }
    }
    AlphaByScope.emplace_back();
    ReByScope.push_back(0);
  }

  void onPop(unsigned N, size_t) override {
    if (!Broken) {
      try {
        S.pop(N);
      } catch (const z3::exception &) {
        Broken = true;
      }
    }
    for (unsigned I = 0; I < N; ++I) {
      for (const std::string &Name : AlphaByScope.back())
        AlphaDone.erase(Name);
      AlphaByScope.pop_back();
      ReLive -= ReByScope.back();
      ReByScope.pop_back();
    }
  }

  void onCancel() override {
    // Safe from another thread while this session's check is in flight
    // (the documented Z3 use); the interrupted check returns unknown and
    // the scoped solver stays usable.
    Ctx.interrupt();
  }

  SolveStatus checkImpl(Assignment &Model,
                        const SolverLimits &Limits) override try {
    if (Broken) {
      // The native solver desynced from the scope stack on an earlier z3
      // error (see onAssert): answering anything but Unknown could
      // reflect the wrong assertion set.
      recordQuery(SolveStatus::Unknown, 0);
      return SolveStatus::Unknown;
    }
    auto T0 = std::chrono::steady_clock::now();
    // Per-check params, selected from the live assertion mix: regex
    // membership goals get the full budget plus length-based sequence
    // splitting pinned on (the decisive strategy for the model's
    // membership+length-arithmetic combination); re-free goals — pure
    // bool/int/string-equality path fragments — are cheap, so they are
    // clamped to a fraction of the budget rather than being allowed to
    // starve the regex checks behind them.
    z3::params P(Ctx);
    uint32_t Budget = ReLive > 0
                          ? Limits.TimeoutMs
                          : std::min<uint32_t>(Limits.TimeoutMs, 2000);
    P.set("timeout", Budget);
    if (ReLive > 0)
      P.set("seq.split_w_len", true);
    S.set(P);
    SolveStatus Status;
    switch (S.check()) {
    case z3::unsat:
      Status = SolveStatus::Unsat;
      break;
    case z3::unknown:
      Status = SolveStatus::Unknown;
      break;
    case z3::sat: {
      Status = SolveStatus::Sat;
      z3::model M = S.get_model();
      extractModel(Tr, M, Model);
      break;
    }
    }
    // Scratch rescue: even with the tactic pipeline re-preprocessing
    // every check, the smt core underneath still runs incrementally, so
    // an Unknown here does not yet mean the problem is hard — re-solve
    // the live assertion set from scratch (fresh context, no scopes)
    // before giving up. The rescue gets what is left of the per-check
    // budget, floored at 20% of it so an attempt that burned the whole
    // budget still buys a meaningful retry (worst case ~1.2x TimeoutMs
    // per check). The attempt and the rescue are one logical check:
    // recorded once, with the final status and the combined time.
    // A cancelled check skips the rescue — the caller decided this
    // answer no longer matters, and the rescue is not interruptible.
    if (Status == SolveStatus::Unknown && !cancelRequested()) {
      double ElapsedMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - T0)
                             .count();
      SolverLimits Rescue = Limits;
      Rescue.TimeoutMs = std::max<uint32_t>(
          Limits.TimeoutMs > ElapsedMs
              ? static_cast<uint32_t>(Limits.TimeoutMs - ElapsedMs)
              : 0,
          Limits.TimeoutMs / 5);
      Model = Assignment();
      Status = static_cast<Z3Backend &>(Owner).solveScratch(
          assertions(), Model, Rescue);
    }
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    recordQuery(Status, Sec);
    return Status;
  } catch (const z3::exception &) {
    // Interrupted or resource-limited paths can raise instead of
    // returning unknown; the session (and its scopes) stays usable.
    recordQuery(SolveStatus::Unknown, 0);
    return SolveStatus::Unknown;
  }

private:
  /// Whether \p T contains a regular-membership atom, memoized per node
  /// (assertions share subtrees across refinement rounds).
  bool containsInRe(const TermRef &T) {
    auto It = InReMemo.find(T.get());
    if (It != InReMemo.end())
      return It->second;
    bool Found = T->Kind == TermKind::InRe;
    for (const TermRef &K : T->Kids) {
      if (Found)
        break;
      Found = containsInRe(K);
    }
    InReMemo.emplace(T.get(), Found);
    return Found;
  }

  z3::context Ctx;
  z3::solver S;
  Translator Tr;
  z3::expr AnyLatin1;
  std::set<std::string> AlphaDone;
  /// Names whose alphabet constraint was asserted in each scope
  /// (index 0 = base, then one entry per open scope).
  std::vector<std::vector<std::string>> AlphaByScope;
  /// Live InRe-bearing assertions, total and per scope (same layout as
  /// AlphaByScope) — the input to per-check param selection.
  unsigned ReLive = 0;
  std::vector<unsigned> ReByScope;
  std::map<const Term *, bool> InReMemo;
  /// Set on the first z3 error during state mirroring; checks on a
  /// broken session answer Unknown without touching the solver.
  bool Broken = false;
};

std::unique_ptr<SolverSession> Z3Backend::openSession() {
  try {
    return std::unique_ptr<SolverSession>(new Z3Session(*this));
  } catch (const z3::exception &) {
    // Context or tactic construction failed (resource pressure): fall
    // back to the stateless shim, which defers every z3 touch to solve()
    // — where errors are already contained per check.
    return SolverBackend::openSession();
  }
}

} // namespace

std::unique_ptr<SolverBackend> recap::makeZ3Backend() {
  return std::make_unique<Z3Backend>();
}
