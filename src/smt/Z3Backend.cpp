//===- smt/Z3Backend.cpp - Z3 seq/re translation ---------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the recap constraint IR into Z3's sequence/regular-expression
/// theory through the native C++ API (z3++.h), solves, and reads models
/// back. To keep model extraction robust across Z3's unicode encoding, the
/// backend constrains every free string variable to the Latin-1 alphabet
/// [\x00-\xFF] and clamps character classes accordingly; the paper's meta
/// markers live at 0x02/0x03, well inside this range (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <z3++.h>

#include <cassert>
#include <chrono>

using namespace recap;

namespace {

constexpr CodePoint SolverMaxChar = 0xFF;

/// Latin-1 bytes <-> code points (the backend's string encoding contract).
std::string toLatin1(const UString &S) {
  std::string Out;
  Out.reserve(S.size());
  for (CodePoint C : S) {
    assert(C <= SolverMaxChar && "non-Latin-1 constant reached Z3 backend");
    Out.push_back(static_cast<char>(C));
  }
  return Out;
}

UString fromLatin1(const std::string &S) {
  UString Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(static_cast<unsigned char>(C));
  return Out;
}

class Z3Backend : public SolverBackend {
public:
  SolveStatus solve(const std::vector<TermRef> &Assertions, Assignment &Model,
                    const SolverLimits &Limits) override {
    auto T0 = std::chrono::steady_clock::now();
    SolveStatus Status = solveImpl(Assertions, Model, Limits);
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    record(Status, Sec);
    return Status;
  }

  std::string name() const override { return "z3"; }

private:
  SolveStatus solveImpl(const std::vector<TermRef> &Assertions,
                        Assignment &Model, const SolverLimits &Limits) {
    z3::context Ctx;
    z3::params P(Ctx);
    P.set("timeout", Limits.TimeoutMs);
    z3::solver S(Ctx);
    S.set(P);

    Translator Tr(Ctx);
    for (const TermRef &A : Assertions)
      S.add(Tr.toBool(A));
    // Latin-1 alphabet constraint on every free string variable (see file
    // comment).
    char Lo0 = '\0', Hi0 = static_cast<char>(0xFF);
    z3::expr AnyLatin1 = z3::star(
        z3::range(Ctx.string_val(&Lo0, 1), Ctx.string_val(&Hi0, 1)));
    for (auto &[Name, Var] : Tr.StrVars)
      S.add(z3::in_re(Var, AnyLatin1));

    switch (S.check()) {
    case z3::unsat:
      return SolveStatus::Unsat;
    case z3::unknown:
      return SolveStatus::Unknown;
    case z3::sat:
      break;
    }
    z3::model M = S.get_model();
    for (auto &[Name, Var] : Tr.StrVars) {
      z3::expr V = M.eval(Var, /*model_completion=*/true);
      Model.Strings[Name] = fromLatin1(V.get_string());
    }
    for (auto &[Name, Var] : Tr.BoolVars) {
      z3::expr V = M.eval(Var, true);
      Model.Bools[Name] = V.is_true();
    }
    for (auto &[Name, Var] : Tr.IntVars) {
      z3::expr V = M.eval(Var, true);
      int64_t I = 0;
      if (V.is_numeral_i64(I))
        Model.Ints[Name] = I;
      else
        Model.Ints[Name] = 0;
    }
    return SolveStatus::Sat;
  }

  /// IR -> Z3 expression translation with memoization.
  struct Translator {
    z3::context &Ctx;
    std::map<std::string, z3::expr> StrVars, BoolVars, IntVars;
    std::map<const Term *, z3::expr> Memo;
    std::map<const CRegex *, z3::expr> ReMemo;

    explicit Translator(z3::context &Ctx) : Ctx(Ctx) {}

    z3::expr toBool(const TermRef &T) {
      z3::expr E = trans(T);
      assert(E.is_bool() && "expected boolean term");
      return E;
    }

    z3::expr trans(const TermRef &T) {
      auto It = Memo.find(T.get());
      if (It != Memo.end())
        return It->second;
      z3::expr E = transNew(T);
      Memo.emplace(T.get(), E);
      return E;
    }

    z3::expr transNew(const TermRef &T) {
      switch (T->Kind) {
      case TermKind::BoolConst:
        return Ctx.bool_val(T->BoolVal);
      case TermKind::BoolVar: {
        auto It = BoolVars.find(T->Name);
        if (It == BoolVars.end())
          It = BoolVars.emplace(T->Name,
                                Ctx.bool_const(T->Name.c_str()))
                   .first;
        return It->second;
      }
      case TermKind::Not:
        return !trans(T->Kids[0]);
      case TermKind::And: {
        z3::expr_vector V(Ctx);
        for (const TermRef &K : T->Kids)
          V.push_back(trans(K));
        return z3::mk_and(V);
      }
      case TermKind::Or: {
        z3::expr_vector V(Ctx);
        for (const TermRef &K : T->Kids)
          V.push_back(trans(K));
        return z3::mk_or(V);
      }
      case TermKind::Implies:
        return z3::implies(trans(T->Kids[0]), trans(T->Kids[1]));
      case TermKind::Eq:
        return trans(T->Kids[0]) == trans(T->Kids[1]);
      case TermKind::InRe:
        return z3::in_re(trans(T->Kids[0]), transRe(T->Re));
      case TermKind::Le:
        return trans(T->Kids[0]) <= trans(T->Kids[1]);
      case TermKind::Lt:
        return trans(T->Kids[0]) < trans(T->Kids[1]);
      case TermKind::StrConst: {
        // Length-aware construction: embedded NULs and bytes >= 0x80 must
        // pass through uninterpreted.
        std::string Bytes = toLatin1(T->StrVal);
        return Ctx.string_val(Bytes.data(),
                              static_cast<unsigned>(Bytes.size()));
      }
      case TermKind::StrVar: {
        auto It = StrVars.find(T->Name);
        if (It == StrVars.end())
          It = StrVars.emplace(T->Name,
                               Ctx.constant(T->Name.c_str(),
                                            Ctx.string_sort()))
                   .first;
        return It->second;
      }
      case TermKind::Concat: {
        z3::expr_vector V(Ctx);
        for (const TermRef &K : T->Kids)
          V.push_back(trans(K));
        return z3::concat(V);
      }
      case TermKind::IntConst:
        return Ctx.int_val(static_cast<int64_t>(T->IntVal));
      case TermKind::IntVar: {
        auto It = IntVars.find(T->Name);
        if (It == IntVars.end())
          It = IntVars.emplace(T->Name, Ctx.int_const(T->Name.c_str()))
                   .first;
        return It->second;
      }
      case TermKind::Add:
        return trans(T->Kids[0]) + trans(T->Kids[1]);
      case TermKind::StrLen:
        return trans(T->Kids[0]).length();
      }
      assert(false && "unhandled term kind");
      return Ctx.bool_val(false);
    }

    z3::expr transRe(const CRegexRef &R) {
      auto It = ReMemo.find(R.get());
      if (It != ReMemo.end())
        return It->second;
      z3::expr E = transReNew(R);
      ReMemo.emplace(R.get(), E);
      return E;
    }

    z3::sort reSort() {
      z3::sort Str = Ctx.string_sort();
      return Ctx.re_sort(Str);
    }

    z3::expr reUnion(const z3::expr_vector &Parts) {
      assert(!Parts.empty() && "union of zero languages");
      if (Parts.size() == 1)
        return Parts[0];
      z3::array<Z3_ast> Args(Parts);
      z3::expr R(Ctx, Z3_mk_re_union(Ctx, Args.size(), Args.ptr()));
      Ctx.check_error();
      return R;
    }

    z3::expr transReNew(const CRegexRef &R) {
      switch (R->K) {
      case CRegex::Kind::Empty: {
        z3::sort RS = reSort();
        return z3::re_empty(RS);
      }
      case CRegex::Kind::Epsilon:
        return z3::to_re(Ctx.string_val(""));
      case CRegex::Kind::Class: {
        // Clamp to the Latin-1 solver alphabet.
        CharSet S = R->Cls.intersectWith(
            CharSet::range(0, SolverMaxChar));
        if (S.isEmpty()) {
          z3::sort RS = reSort();
          return z3::re_empty(RS);
        }
        z3::expr_vector Parts(Ctx);
        for (const CharSet::Interval &I : S.intervals()) {
          char LoC = static_cast<char>(I.Lo), HiC = static_cast<char>(I.Hi);
          Parts.push_back(z3::range(Ctx.string_val(&LoC, 1),
                                    Ctx.string_val(&HiC, 1)));
        }
        return reUnion(Parts);
      }
      case CRegex::Kind::Concat: {
        z3::expr_vector V(Ctx);
        for (const CRegexRef &K : R->Kids)
          V.push_back(transRe(K));
        return z3::concat(V);
      }
      case CRegex::Kind::Union: {
        z3::expr_vector V(Ctx);
        for (const CRegexRef &K : R->Kids)
          V.push_back(transRe(K));
        return reUnion(V);
      }
      case CRegex::Kind::Star:
        return z3::star(transRe(R->Kids[0]));
      case CRegex::Kind::Intersect: {
        z3::expr_vector V(Ctx);
        for (const CRegexRef &K : R->Kids)
          V.push_back(transRe(K));
        return z3::re_intersect(V);
      }
      case CRegex::Kind::Complement:
        return z3::re_complement(transRe(R->Kids[0]));
      }
      assert(false && "unhandled regex kind");
      return z3::to_re(Ctx.string_val(""));
    }
  };
};

} // namespace

std::unique_ptr<SolverBackend> recap::makeZ3Backend() {
  return std::make_unique<Z3Backend>();
}
