//===- smt/LocalBackend.cpp - Automata-guided bounded string solver --------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained bounded solver for the recap constraint IR. It exists
/// so the repository works with zero external solver dependencies and as an
/// ablation baseline against Z3 (bench/ablation_solver_backend).
///
/// Strategy (DESIGN.md §3):
///  1. Explore the boolean structure as a backtracking search over
///     disjunction choices (lazy DNF), collecting a conjunction of literals
///     per branch.
///  2. Within a branch, classify string variables as *derived* (defined by
///     a positive equality var = rhs) or *free*.
///  3. Free variables draw candidate words, shortest first, from the
///     product automaton of all their regular membership literals
///     (positive ones intersected, negative ones complemented).
///  4. Assign free variables depth-first, compute derived ones, and check
///     every literal with TermEvaluator.
///
/// The search is sound for Sat (models are checked before being returned);
/// Unsat is reported only when every branch is refuted by an emptiness
/// proof, otherwise the result is Unknown.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "reliability/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <tuple>

using namespace recap;

namespace {

struct Literal {
  TermRef Atom;
  bool Positive;
};

/// Search state that is expensive to build and safe to reuse: the product
/// automata of membership-literal sets and their enumerated candidate
/// words, plus the term evaluator's per-regex automaton cache. One
/// instance lives per solve() call (reuse across branches of one search)
/// or per LocalSession (reuse across checks — the point of incremental
/// sessions: push/pop never invalidates entries because they are keyed by
/// the language constraints themselves, not by scope).
struct LocalSearchCaches {
  struct CandidateSet {
    bool Compiled = false;  ///< automaton construction succeeded
    bool Empty = false;     ///< language proven empty
    bool Cancelled = false; ///< a cancel aborted the construction
    std::shared_ptr<Automaton> A;
    std::vector<UString> Words;
  };

  /// Membership constraint set for one variable: positive and negative
  /// regex payloads (by identity) plus the enumeration limits.
  using Key = std::tuple<std::vector<const CRegex *>,
                         std::vector<const CRegex *>, size_t, size_t>;

  TermEvaluator Eval;
  std::map<Key, CandidateSet> Candidates;
  /// Session counters (null for one-shot solves).
  SolverStats *Stats = nullptr;
  /// Holding slot for cancelled (uncacheable) builds; valid until the
  /// next candidates() call, which is as long as any caller uses it.
  CandidateSet Scratch;

  const CandidateSet &candidates(const std::vector<CRegexRef> &Pos,
                                 const std::vector<CRegexRef> &Neg,
                                 const SolverLimits &Limits) {
    Key K = makeKey(Pos, Neg, Limits);
    auto It = Candidates.find(K);
    if (It != Candidates.end()) {
      if (Stats)
        ++Stats->SessionCandidateHits;
      return It->second;
    }
    if (Stats)
      ++Stats->SessionCandidateMisses;
    CandidateSet CS = build(Pos, Neg, Limits);
    if (CS.Cancelled) {
      // A cancelled construction is not a fact about the language —
      // caching it would degrade this (possibly long-lived session's)
      // key to fallback candidates forever. Hand it back uncached; the
      // next uncancelled check rebuilds it for real.
      Scratch = std::move(CS);
      return Scratch;
    }
    return Candidates.emplace(std::move(K), std::move(CS)).first->second;
  }

private:
  static Key makeKey(const std::vector<CRegexRef> &Pos,
                     const std::vector<CRegexRef> &Neg,
                     const SolverLimits &Limits) {
    std::vector<const CRegex *> P, N;
    for (const CRegexRef &R : Pos)
      P.push_back(R.get());
    for (const CRegexRef &R : Neg)
      N.push_back(R.get());
    std::sort(P.begin(), P.end());
    std::sort(N.begin(), N.end());
    return {std::move(P), std::move(N), Limits.MaxCandidates,
            Limits.MaxWordLength};
  }

  static CandidateSet build(const std::vector<CRegexRef> &Pos,
                            const std::vector<CRegexRef> &Neg,
                            const SolverLimits &Limits) {
    CandidateSet Out;
    std::vector<CRegexRef> All = Pos;
    for (const CRegexRef &N : Neg)
      All.push_back(cComplement(N));
    // The product-DFA walk honors the check's cooperative cancel flag:
    // this construction is where a LocalBackend check spends unbounded
    // time, so it is the main cancellation point (Solver.h).
    Result<Automaton> A =
        Automaton::compile(cIntersect(All), 100000, Limits.Cancel);
    if (!A) {
      Out.Cancelled =
          Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed);
      return Out; // Compiled stays false -> caller falls back
    }
    Out.Compiled = true;
    Out.A = std::make_shared<Automaton>(A.take());
    if (Out.A->isEmptyLanguage()) {
      Out.Empty = true;
      return Out;
    }
    EnumOptions EO;
    EO.MaxCount = Limits.MaxCandidates;
    EO.MaxLen = Limits.MaxWordLength;
    EO.Cancel = Limits.Cancel;
    EnumResult ER = Out.A->enumerateWordsEx(EO);
    Out.Words = std::move(ER.Words);
    Out.Cancelled = ER.Cancelled;
    return Out;
  }
};

class BranchSolver {
public:
  BranchSolver(const SolverLimits &Limits, LocalSearchCaches &Caches,
               uint64_t &Nodes)
      : Limits(Limits), Caches(Caches), Eval(Caches.Eval), Nodes(Nodes) {}

  /// Attempts to satisfy the literal conjunction. Returns Sat and fills
  /// Model, or Unsat (with Exhaustive=true if this is a real emptiness
  /// proof), or Unknown.
  SolveStatus run(const std::vector<Literal> &Literals, Assignment &Model,
                  bool &Exhaustive) {
    Exhaustive = false;
    Lits = &Literals;

    // Boolean variables directly constrained by literals.
    for (const Literal &L : Literals) {
      if (L.Atom->Kind == TermKind::BoolVar) {
        auto [It, New] = Model.Bools.emplace(L.Atom->Name, L.Positive);
        if (!New && It->second != L.Positive) {
          Exhaustive = true;
          return SolveStatus::Unsat;
        }
      }
    }

    VarSet Vars = collectAllVars();
    for (const std::string &B : Vars.Bools)
      Model.Bools.emplace(B, false);

    // Derived variables: var = rhs with var not in rhs.
    std::map<std::string, TermRef> Defs;
    for (const Literal &L : Literals) {
      if (!L.Positive || L.Atom->Kind != TermKind::Eq)
        continue;
      const TermRef &A = L.Atom->Kids[0], &B = L.Atom->Kids[1];
      if (A->Sort != SortKind::String)
        continue;
      tryAddDef(Defs, A, B);
      tryAddDef(Defs, B, A);
    }
    // Iteratively peel derived variables whose definitions only mention
    // other derived/known variables later; order resolved at evaluation
    // time by fixpoint instead.
    std::vector<std::string> Free;
    for (const std::string &S : Vars.Strings)
      if (!Defs.count(S))
        Free.push_back(S);

    // Candidate generators for free variables.
    std::vector<std::vector<UString>> Candidates;
    for (const std::string &V : Free) {
      std::vector<CRegexRef> Pos, Neg;
      for (const Literal &L : Literals) {
        if (L.Atom->Kind != TermKind::InRe)
          continue;
        const TermRef &Arg = L.Atom->Kids[0];
        if (Arg->Kind != TermKind::StrVar || Arg->Name != V)
          continue;
        (L.Positive ? Pos : Neg).push_back(L.Atom->Re);
      }
      // Constants compared against V are always candidate seeds: word
      // enumeration explores one representative per character class, so
      // equality-relevant words could otherwise be missed.
      std::vector<UString> Seeds;
      for (const Literal &L : Literals) {
        if (L.Atom->Kind != TermKind::Eq)
          continue;
        for (int Side = 0; Side < 2; ++Side) {
          const TermRef &A = L.Atom->Kids[Side];
          const TermRef &B = L.Atom->Kids[1 - Side];
          if (A->Kind == TermKind::StrVar && A->Name == V &&
              B->Kind == TermKind::StrConst)
            Seeds.push_back(B->StrVal);
        }
      }

      std::vector<UString> Words;
      if (!Pos.empty() || !Neg.empty()) {
        // Product automaton + enumerated words, memoized across branches
        // and (in sessions) across checks.
        const LocalSearchCaches::CandidateSet &CS =
            Caches.candidates(Pos, Neg, Limits);
        if (CS.Compiled) {
          if (CS.Empty) {
            Exhaustive = true;
            return SolveStatus::Unsat;
          }
          Words = CS.Words;
          for (const UString &S : Seeds)
            if (CS.A->accepts(S) &&
                std::find(Words.begin(), Words.end(), S) == Words.end())
              Words.insert(Words.begin(), S);
        } else {
          Words = fallbackCandidates();
          Words.insert(Words.begin(), Seeds.begin(), Seeds.end());
        }
      } else {
        // No membership constraint: seeds plus a small default pool.
        Words = fallbackCandidates();
        Words.insert(Words.begin(), Seeds.begin(), Seeds.end());
      }
      Candidates.push_back(std::move(Words));
    }

    // Free integer variables get a small candidate range.
    std::vector<std::string> FreeInts = Vars.Ints;

    return assignFrom(0, Free, Candidates, FreeInts, Defs, Model);
  }

private:
  const SolverLimits &Limits;
  LocalSearchCaches &Caches;
  TermEvaluator &Eval;
  uint64_t &Nodes;
  const std::vector<Literal> *Lits = nullptr;

  static std::vector<UString> fallbackCandidates() {
    using namespace std::string_literals;
    return {UString(), fromUTF8("a"), fromUTF8("0"), fromUTF8("b"),
            fromUTF8("aa"), fromUTF8("ab"), fromUTF8("a0")};
  }

  static bool mentionsVar(const TermRef &T, const std::string &Name) {
    if (T->Kind == TermKind::StrVar && T->Name == Name)
      return true;
    for (const TermRef &K : T->Kids)
      if (mentionsVar(K, Name))
        return true;
    return false;
  }

  static void tryAddDef(std::map<std::string, TermRef> &Defs,
                        const TermRef &Lhs, const TermRef &Rhs) {
    if (Lhs->Kind != TermKind::StrVar)
      return;
    if (Defs.count(Lhs->Name))
      return;
    if (mentionsVar(Rhs, Lhs->Name))
      return;
    Defs.emplace(Lhs->Name, Rhs);
  }

  VarSet collectAllVars() const {
    std::vector<TermRef> Atoms;
    Atoms.reserve(Lits->size());
    for (const Literal &L : *Lits)
      Atoms.push_back(L.Atom);
    return collectVars(Atoms);
  }

  SolveStatus assignFrom(size_t Idx, const std::vector<std::string> &Free,
                         const std::vector<std::vector<UString>> &Candidates,
                         const std::vector<std::string> &FreeInts,
                         const std::map<std::string, TermRef> &Defs,
                         Assignment &Model) {
    if (++Nodes > Limits.MaxNodes)
      return SolveStatus::Unknown;
    if (Idx < Free.size()) {
      for (const UString &W : Candidates[Idx]) {
        Model.Strings[Free[Idx]] = W;
        SolveStatus S =
            assignFrom(Idx + 1, Free, Candidates, FreeInts, Defs, Model);
        if (S != SolveStatus::Unsat)
          return S;
      }
      Model.Strings.erase(Free[Idx]);
      return SolveStatus::Unsat; // bounded: caller downgrades to Unknown
    }

    // Compute derived string variables to fixpoint.
    std::map<std::string, TermRef> Pending = Defs;
    bool Progress = true;
    while (Progress && !Pending.empty()) {
      Progress = false;
      for (auto It = Pending.begin(); It != Pending.end();) {
        std::optional<UString> V = Eval.evalString(It->second, Model);
        bool Ready = V.has_value();
        if (Ready) {
          // Only accept if all mentioned vars are known; evalString treats
          // unknown vars as "", so verify mentions first.
          Ready = allVarsKnown(It->second, Model);
        }
        if (Ready) {
          Model.Strings[It->first] = *V;
          It = Pending.erase(It);
          Progress = true;
        } else {
          ++It;
        }
      }
    }
    // Any remaining (cyclic) definitions become filters; give the vars a
    // default value.
    for (auto &[Name, Rhs] : Pending)
      Model.Strings.emplace(Name, UString());

    return checkInts(FreeInts, 0, Model);
  }

  static bool allVarsKnown(const TermRef &T, const Assignment &M) {
    if (T->Kind == TermKind::StrVar && !M.Strings.count(T->Name))
      return false;
    for (const TermRef &K : T->Kids)
      if (!allVarsKnown(K, M))
        return false;
    return true;
  }

  SolveStatus checkInts(const std::vector<std::string> &FreeInts, size_t Idx,
                        Assignment &Model) {
    if (++Nodes > Limits.MaxNodes)
      return SolveStatus::Unknown;
    if (Idx < FreeInts.size()) {
      if (Model.Ints.count(FreeInts[Idx]))
        return checkInts(FreeInts, Idx + 1, Model);
      for (int64_t V = -1;
           V <= static_cast<int64_t>(Limits.MaxWordLength) + 2; ++V) {
        Model.Ints[FreeInts[Idx]] = V;
        SolveStatus S = checkInts(FreeInts, Idx + 1, Model);
        if (S != SolveStatus::Unsat)
          return S;
      }
      Model.Ints.erase(FreeInts[Idx]);
      return SolveStatus::Unsat;
    }
    return checkAll(Model) ? SolveStatus::Sat : SolveStatus::Unsat;
  }

  bool checkAll(const Assignment &Model) {
    for (const Literal &L : *Lits) {
      std::optional<bool> V = Eval.evalBool(L.Atom, Model);
      if (!V || *V != L.Positive)
        return false;
    }
    return true;
  }
};

class LocalBackend : public SolverBackend {
public:
  SolveStatus solve(const std::vector<TermRef> &Assertions, Assignment &Model,
                    const SolverLimits &Limits) override {
    // Private caches: reused across the branches of this one search only.
    LocalSearchCaches Caches;
    return solveWith(Assertions, Model, Limits, Caches);
  }

  /// The search over \p Assertions with externally-owned caches — the
  /// entry point shared by solve() (fresh caches) and LocalSession
  /// (persistent caches).
  SolveStatus solveWith(const std::vector<TermRef> &Assertions,
                        Assignment &Model, const SolverLimits &Limits,
                        LocalSearchCaches &Caches) {
    auto T0 = std::chrono::steady_clock::now();
    // Chaos harness: a scripted fault may force Unknown, stall (polling
    // Limits.Cancel exactly like the real search), or throw here.
    if (FaultInjector *FI = FaultInjector::active()) {
      if (FI->fire(FaultSite::LocalSolve, Limits.Cancel)) {
        double Sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
                .count();
        record(SolveStatus::Unknown, Sec);
        return SolveStatus::Unknown;
      }
    }
    Deadline = T0 + std::chrono::milliseconds(Limits.TimeoutMs);
    Nodes = 0;
    AllExhaustive = true;
    SawSatBranch = false;
    Cancel = Limits.Cancel;

    std::vector<std::pair<TermRef, bool>> Work;
    for (auto It = Assertions.rbegin(); It != Assertions.rend(); ++It)
      Work.push_back({*It, true});
    std::vector<Literal> Branch;
    Assignment Out;
    SolveStatus S = explore(Work, Branch, Out, Limits, Caches);
    if (S == SolveStatus::Sat)
      Model = std::move(Out);
    if (S == SolveStatus::Unsat && !AllExhaustive)
      S = SolveStatus::Unknown;

    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    record(S, Sec);
    return S;
  }

  std::unique_ptr<SolverSession> openSession() override;

  std::string name() const override { return "local"; }

private:
  std::chrono::steady_clock::time_point Deadline;
  uint64_t Nodes = 0;
  bool AllExhaustive = true;
  bool SawSatBranch = false;
  const std::atomic<bool> *Cancel = nullptr;

  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }

  bool timedOut() {
    // One poll covers both abort sources; a cancel is just an external
    // deadline. Checked every 256 nodes like the clock.
    if ((Nodes & 0xFF) == 0 &&
        (cancelled() || std::chrono::steady_clock::now() > Deadline)) {
      AllExhaustive = false;
      return true;
    }
    return false;
  }

  /// Lazy-DNF exploration. \p Work is a stack of (term, polarity) still to
  /// be decomposed; \p Branch collects atoms.
  SolveStatus explore(std::vector<std::pair<TermRef, bool>> Work,
                      std::vector<Literal> &Branch, Assignment &Model,
                      const SolverLimits &Limits,
                      LocalSearchCaches &Caches) {
    if (++Nodes > Limits.MaxNodes || timedOut()) {
      AllExhaustive = false;
      return SolveStatus::Unknown;
    }
    if (Work.empty()) {
      Assignment M;
      bool Exhaustive = false;
      BranchSolver BS(Limits, Caches, Nodes);
      SolveStatus S = BS.run(Branch, M, Exhaustive);
      if (S == SolveStatus::Sat) {
        Model = std::move(M);
        return SolveStatus::Sat;
      }
      if (S == SolveStatus::Unknown || !Exhaustive)
        AllExhaustive = false;
      return SolveStatus::Unsat;
    }

    auto [T, Pol] = Work.back();
    Work.pop_back();

    switch (T->Kind) {
    case TermKind::BoolConst:
      if (T->BoolVal == Pol)
        return explore(std::move(Work), Branch, Model, Limits, Caches);
      return SolveStatus::Unsat;
    case TermKind::Not:
      Work.push_back({T->Kids[0], !Pol});
      return explore(std::move(Work), Branch, Model, Limits, Caches);
    case TermKind::And:
    case TermKind::Or: {
      bool Conjunctive = (T->Kind == TermKind::And) == Pol;
      if (Conjunctive) {
        for (const TermRef &K : T->Kids)
          Work.push_back({K, Pol});
        return explore(std::move(Work), Branch, Model, Limits, Caches);
      }
      for (const TermRef &K : T->Kids) {
        std::vector<std::pair<TermRef, bool>> W2 = Work;
        W2.push_back({K, Pol});
        SolveStatus S = explore(std::move(W2), Branch, Model, Limits, Caches);
        if (S != SolveStatus::Unsat)
          return S;
      }
      return SolveStatus::Unsat;
    }
    case TermKind::Implies: {
      if (Pol) {
        for (int Case = 0; Case < 2; ++Case) {
          std::vector<std::pair<TermRef, bool>> W2 = Work;
          if (Case == 0)
            W2.push_back({T->Kids[0], false});
          else
            W2.push_back({T->Kids[1], true});
          SolveStatus S =
              explore(std::move(W2), Branch, Model, Limits, Caches);
          if (S != SolveStatus::Unsat)
            return S;
        }
        return SolveStatus::Unsat;
      }
      Work.push_back({T->Kids[0], true});
      Work.push_back({T->Kids[1], false});
      return explore(std::move(Work), Branch, Model, Limits, Caches);
    }
    case TermKind::Eq:
      if (T->Kids[0]->Sort == SortKind::Bool) {
        // Boolean iff: branch on both sides.
        for (int Case = 0; Case < 2; ++Case) {
          bool Val = Case == 0;
          std::vector<std::pair<TermRef, bool>> W2 = Work;
          W2.push_back({T->Kids[0], Val});
          W2.push_back({T->Kids[1], Val == Pol});
          SolveStatus S =
              explore(std::move(W2), Branch, Model, Limits, Caches);
          if (S != SolveStatus::Unsat)
            return S;
        }
        return SolveStatus::Unsat;
      }
      [[fallthrough]];
    default: {
      Branch.push_back({T, Pol});
      SolveStatus S = explore(std::move(Work), Branch, Model, Limits, Caches);
      Branch.pop_back();
      return S;
    }
    }
  }
};

/// Native incremental session: the scope stack lives in the base class;
/// what persists across checks is LocalSearchCaches — the compiled
/// product automata, their enumerated candidate words, and the term
/// evaluator's per-regex automata. A pop never invalidates the caches
/// (they are keyed by language identity), so re-checking after pop or
/// after asserting a refinement skips straight past the expensive
/// complement/product constructions.
class LocalSession : public SolverSession {
public:
  explicit LocalSession(LocalBackend &Owner) : SolverSession(Owner) {
    Caches.Stats = &ownerStats();
  }

  SolveStatus checkImpl(Assignment &Model,
                        const SolverLimits &Limits) override {
    Model = Assignment();
    // solveWith records the query into the owner's stats.
    return static_cast<LocalBackend &>(Owner).solveWith(Assertions, Model,
                                                        Limits, Caches);
  }

private:
  LocalSearchCaches Caches;
};

std::unique_ptr<SolverSession> LocalBackend::openSession() {
  return std::unique_ptr<SolverSession>(new LocalSession(*this));
}

} // namespace

std::unique_ptr<SolverBackend> recap::makeLocalBackend() {
  return std::make_unique<LocalBackend>();
}
