//===- service/Job.h - Analysis service job types ---------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job vocabulary of the resident analysis service (DESIGN.md §10):
/// what callers submit (JobSpec), what they hold while it runs
/// (JobHandle), what they get back (JobResult, streamed per-unit as
/// JobUnitResult), and the shared per-job state the service, queue and
/// handle all see (JobState). A "unit" is the dispatch granule — one
/// program of a DSE job, one package slice of a survey job — so results
/// stream as they finish and a heavy job interleaves with light ones on
/// the shared pool instead of holding it hostage.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SERVICE_JOB_H
#define RECAP_SERVICE_JOB_H

#include "dse/Engine.h"
#include "sched/WorkerBudget.h"
#include "survey/Survey.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace recap {

enum class JobKind : uint8_t {
  Dse,    ///< DSE over JobSpec::Programs (one unit per program)
  Survey, ///< survey over JobSpec::Packages (one unit per package slice)
};

/// One analysis job as submitted. The service overrides the fields that
/// are substrate policy (Engine.Runtime, Engine.Workers, snapshot paths);
/// everything else in Engine is the per-job knob surface the ROADMAP's
/// "one substrate, many policies" architecture calls for.
struct JobSpec {
  JobKind Kind = JobKind::Dse;
  /// Tenant id: quota accounting, fair-share caps and cache partitioning
  /// key. Empty folds to "default".
  std::string Tenant;
  /// DSE corpus (Kind == Dse); one unit per program.
  std::vector<Program> Programs;
  /// Survey corpus (Kind == Survey): outer index = package, inner = its
  /// JS file contents. Sliced deterministically like Survey::runParallel.
  std::vector<std::vector<std::string>> Packages;
  /// Per-job engine policy. BackendFactory defaults to the service's;
  /// with a deadline set, check deadlines and solver timeouts are
  /// clamped so in-flight work drains within the job deadline.
  EngineOptions Engine;
  /// End-to-end deadline from admission (queue wait included); 0 = none.
  /// Expiry cancels the job cooperatively and reports JobStatus::Deadline.
  uint32_t DeadlineMs = 0;
  /// Higher dispatches first; ties dispatch FIFO.
  int Priority = 0;
  /// Budget slots one unit may borrow for intra-unit shards (floored at
  /// 1; also capped by the tenant's fair-share slot cap at grant time).
  size_t ShardsPerUnit = 1;
};

enum class JobStatus : uint8_t {
  Queued,
  Running,
  Completed, ///< every unit ran (possibly with contained degradations)
  Cancelled, ///< caller cancel() or service shutdown
  Deadline,  ///< JobSpec::DeadlineMs expired first
};

const char *jobStatusName(JobStatus S);

/// Service health, derived from the reliability layer's counters
/// (breaker opens, worker-spawn fallbacks) observed in finished units.
enum class ServiceHealth : uint8_t { Healthy, Degraded, Draining };

const char *serviceHealthName(ServiceHealth H);

/// One finished unit, streamed through JobHandle::nextResult in
/// completion order.
struct JobUnitResult {
  size_t Unit = 0;
  /// Kind == Dse: the unit's engine window (empty when the unit was
  /// skipped or faulted — degradation is Unknown-with-reason, never a
  /// made-up verdict).
  EngineResult Dse;
  /// Kind == Survey: the unit's slice window.
  std::shared_ptr<Survey> Slice;
};

/// Final job outcome. Degraded edges keep the soundness contract: a
/// reject never produces a handle, a deadline/cancel leaves the finished
/// units' real verdicts plus a reason, and breaker/quarantine degradation
/// surfaces as Unknown verdicts inside the unit results with a reason
/// echoed here — never a wrong Sat/Unsat.
struct JobResult {
  JobStatus Status = JobStatus::Queued;
  ServiceHealth Health = ServiceHealth::Healthy;
  /// Human-readable degradation reasons ("deadline: ...", "cancelled:
  /// ...", "breaker-degraded", "quarantined", injected-fault notes, ...).
  /// Empty on a clean run.
  std::vector<std::string> Reasons;
  /// Kind == Dse: per-program results, indexed like JobSpec::Programs.
  /// Units that never ran stay empty (TestsRun == 0).
  std::vector<EngineResult> Results;
  /// Kind == Survey: the slice merge (slice order, so it equals a serial
  /// Survey over the same packages when nothing was cancelled).
  std::shared_ptr<Survey> SurveyOut;
  /// Admission to finalization.
  double Seconds = 0;
  /// Admission to first streamed unit; negative when nothing streamed.
  double FirstResultSeconds = -1;
};

/// Cross-thread wakeup hub shared by the service's dispatcher and every
/// job: submissions, unit completions, cancellations and deadline firings
/// all poke() it. Jobs hold it by shared_ptr so a JobHandle outliving the
/// service can still cancel() safely.
struct ServiceSignals {
  std::mutex Mu;
  std::condition_variable Cv;
  uint64_t Ticks = 0;

  void poke() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Ticks;
    }
    Cv.notify_all();
  }
};

/// Shared state of one job. Internal to the service machinery — callers
/// interact through JobHandle — but defined here so AnalysisService,
/// JobQueue and JobHandle agree on one object. Locking: the "dispatcher
/// state" block is owned by the service dispatcher under the service
/// mutex; the "result state" block is guarded by Mu (never held while
/// taking a service lock); the atomics are free-threaded.
struct JobState {
  // Immutable after admission.
  uint64_t Id = 0;
  JobSpec Spec;
  size_t Units = 0;
  std::chrono::steady_clock::time_point SubmitAt;
  std::shared_ptr<RegexRuntime> Runtime; ///< the tenant's runtime
  std::shared_ptr<ServiceSignals> Signals;
  std::shared_ptr<sched::WorkerBudget> Budget;

  // Dispatcher state (under the service mutex).
  size_t NextUnit = 0;      ///< units handed to the pool so far
  size_t SkippedUnits = 0;  ///< units never dispatched (cancel/expiry)
  bool Exhausted = false;   ///< no further units will be dispatched
  bool Started = false;     ///< left the queued state (first unit claimed)
  bool Finalized = false;
  uint64_t DeadlineToken = 0;
  bool DeadlineArmed = false;

  // Free-threaded.
  std::atomic<bool> CancelFlag{false};
  std::atomic<bool> DeadlineFired{false};
  std::atomic<bool> ShutdownCancel{false};
  std::atomic<size_t> UnitsLaunched{0};
  std::atomic<size_t> UnitsFinished{0};

  // Result state (under Mu).
  mutable std::mutex Mu;
  std::condition_variable Cv;
  JobStatus Status = JobStatus::Queued;
  bool Done = false;
  JobResult Result;
  std::deque<JobUnitResult> Stream;
  std::vector<std::shared_ptr<Survey>> Slices;
  std::set<std::string> ReasonSet;
  double FirstResultSeconds = -1;

  /// Requests cooperative cancellation and wakes everything that might be
  /// parked on this job's behalf. Idempotent; safe after the service died.
  void requestCancel() {
    CancelFlag.store(true, std::memory_order_relaxed);
    if (Budget)
      Budget->wake();
    if (Signals)
      Signals->poke();
    Cv.notify_all();
  }
};

/// Caller-side view of a submitted job: poll, wait, cancel, stream.
/// Copyable; all copies observe the same job. Thread-safe, except that
/// concurrent nextResult() callers race for stream elements (each unit
/// is delivered to exactly one of them).
class JobHandle {
public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<JobState> S) : S(std::move(S)) {}

  bool valid() const { return S != nullptr; }
  uint64_t id() const { return S->Id; }

  JobStatus status() const {
    std::lock_guard<std::mutex> Lock(S->Mu);
    return S->Status;
  }
  bool done() const {
    std::lock_guard<std::mutex> Lock(S->Mu);
    return S->Done;
  }

  /// Blocks until the job finalizes, at most \p TimeoutMs (0 = forever).
  /// Returns whether it finalized.
  bool wait(uint32_t TimeoutMs = 0) const;

  /// Requests cooperative cancellation: queued units are skipped, running
  /// units drain at their next poll point, and the job finalizes as
  /// Cancelled (or Deadline, if that raced and won). Idempotent; a job
  /// that already completed is unaffected.
  void cancel() { S->requestCancel(); }

  /// Pops the next finished unit, blocking up to \p TimeoutMs (0 =
  /// forever) for one to arrive. False when the stream is exhausted (job
  /// finalized and every streamed unit consumed) or the timeout expired.
  bool nextResult(JobUnitResult &Out, uint32_t TimeoutMs = 0);

  /// Snapshot of the final result; meaningful once wait() returned true
  /// (before that it reports the in-flight status with partial results).
  JobResult result() const {
    std::lock_guard<std::mutex> Lock(S->Mu);
    return S->Result;
  }

private:
  std::shared_ptr<JobState> S;
};

} // namespace recap

#endif // RECAP_SERVICE_JOB_H
