//===- service/AnalysisService.cpp - Resident analysis service -------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Concurrency layout (DESIGN.md §10). Threads: callers (submit, handle
// waits, cancel), ONE dispatcher (claims units, finalizes jobs), pool
// workers (run units), the shared watchdog (deadline callbacks). Locks,
// in acquisition order:
//
//   SMu          queue + active set + tenant runtimes + per-job
//                dispatcher state; may take Quota's or a job's mutex
//                beneath it, never the reverse
//   Budget lock  inside WorkerBudget; the claim/release hooks take
//                Quota's mutex beneath it
//   Quota / JMu  leaf mutexes — no callouts while held
//
// Watchdog disarm happens outside SMu (the callback takes no service
// lock, but disarm blocks on a mid-flight callback and must not do so
// while holding the lock the rest of the service needs). Deadline and
// cancel callbacks capture only shared_ptrs (JobState, which owns the
// signals and budget refs) — never the service — so a JobHandle that
// outlives the service stays safe to cancel.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "reliability/FaultInjector.h"
#include "reliability/Watchdog.h"
#include "runtime/RuntimeSnapshot.h"

#include <algorithm>

using namespace recap;

namespace {

/// Survey jobs fan out to at most this many units; slice boundaries
/// depend only on the corpus (Survey::runParallel's rule), so the merged
/// result equals a serial survey regardless of worker count.
constexpr size_t MaxSurveyUnits = 64;

int64_t steadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

} // namespace

AnalysisService::AnalysisService(ServiceOptions O) : Opts(std::move(O)) {
  Workers_ = WorkerPool::resolveWorkers(Opts.Workers);
  if (Opts.ClampWorkers)
    Workers_ = WorkerPool::clampToHardware(Workers_);
  Stats_ = std::make_shared<ServiceStats>();
  Sig = std::make_shared<ServiceSignals>();
  Budget_ = std::make_shared<sched::WorkerBudget>(Workers_);
  Pool = std::make_unique<WorkerPool>(Workers_);

  Quarantine::Options QPol = Opts.Engine.Cegar.Reliability.QuarantinePolicy;
  if (QPol.MaxAgeGenerations == 0)
    QPol.MaxAgeGenerations = Opts.QuarantineMaxAgeGenerations;
  Quar_ = std::make_shared<Quarantine>(QPol);
  if (!Opts.StateDir.empty() &&
      Quar_->load(Opts.StateDir + "/" + QuarantineSidecar))
    ++Stats_->WarmBoots;

  Dispatcher = std::thread([this] { dispatchLoop(); });
}

AnalysisService::~AnalysisService() {
  if (Phase_.load(std::memory_order_relaxed) != Stopped)
    shutdown(0);
}

std::shared_ptr<RegexRuntime>
AnalysisService::tenantRuntime(const std::string &T) {
  auto It = Runtimes.find(T);
  if (It != Runtimes.end())
    return It->second;
  auto RT = std::make_shared<RegexRuntime>(Opts.Runtime);
  if (!Opts.StateDir.empty()) {
    SnapshotLoadResult LR =
        RT->loadOnce(Opts.StateDir + "/" + snapshot::tenantSnapshotFile(T));
    if (LR.warm())
      ++Stats_->WarmBoots;
  }
  Runtimes.emplace(T, RT);
  return RT;
}

Result<JobHandle> AnalysisService::submit(JobSpec Spec) {
  ++Stats_->Submitted;
  if (Spec.Tenant.empty())
    Spec.Tenant = "default";
  if (!Spec.Engine.BackendFactory)
    Spec.Engine.BackendFactory = Opts.Engine.BackendFactory;

  size_t Units = Spec.Kind == JobKind::Dse
                     ? Spec.Programs.size()
                     : std::min(Spec.Packages.size(), MaxSurveyUnits);
  if (Units == 0) {
    ++Stats_->RejectedInvalid;
    return Result<JobHandle>::error(
        "rejected: empty job (no programs/packages)");
  }
  if (Spec.Kind == JobKind::Dse && !Spec.Engine.BackendFactory) {
    ++Stats_->RejectedInvalid;
    return Result<JobHandle>::error(
        "rejected: DSE job needs a BackendFactory (per spec or service "
        "default)");
  }

  // Chaos site: a faulted admission rejects with a reason — never a
  // half-admitted job (nothing exists yet at this point).
  if (FaultInjector *FI = FaultInjector::active()) {
    static std::atomic<bool> NoCancel{false};
    try {
      if (FI->fire(FaultSite::JobAdmit, &NoCancel)) {
        ++Stats_->RejectedFault;
        return Result<JobHandle>::error("rejected: admission fault");
      }
    } catch (const FaultInjected &E) {
      ++Stats_->RejectedFault;
      return Result<JobHandle>::error(std::string("rejected: ") + E.what());
    }
  }

  // Deadline clamps: a job that promises DeadlineMs must be able to
  // drain in-flight work within it. The engine's wall budget, the solver
  // timeout, and — through guarded checks, which null the caller's
  // cancel flag by design — the per-check watchdog deadline are all cut
  // to fit, so no single blocking primitive can outlive the deadline by
  // more than one check.
  if (Spec.DeadlineMs) {
    double DeadlineS = Spec.DeadlineMs / 1000.0;
    if (Spec.Engine.MaxSeconds > DeadlineS)
      Spec.Engine.MaxSeconds = DeadlineS;
    auto &Limits = Spec.Engine.Cegar.Limits;
    if (Limits.TimeoutMs == 0 || Limits.TimeoutMs > Spec.DeadlineMs)
      Limits.TimeoutMs = Spec.DeadlineMs;
    auto &Rel = Spec.Engine.Cegar.Reliability;
    if (Rel.Enabled) {
      uint32_t PerCheck =
          Spec.DeadlineMs / (Rel.MaxAttempts ? Rel.MaxAttempts : 1);
      if (PerCheck == 0)
        PerCheck = 1;
      if (Rel.CheckDeadlineMs > PerCheck)
        Rel.CheckDeadlineMs = PerCheck;
    }
  }

  std::shared_ptr<JobState> JS;
  {
    std::lock_guard<std::mutex> Lock(SMu);
    if (Phase_.load(std::memory_order_relaxed) != Running) {
      ++Stats_->RejectedDraining;
      return Result<JobHandle>::error("rejected: service draining");
    }
    if (Opts.MaxQueuedJobs && Queue.queuedJobs() >= Opts.MaxQueuedJobs) {
      ++Stats_->RejectedQueueFull;
      return Result<JobHandle>::error("rejected: queue full");
    }
    if (!Quota.tryAdmit(Spec.Tenant, Opts.TenantMaxQueued)) {
      ++Stats_->RejectedTenantQueue;
      return Result<JobHandle>::error(
          "rejected: tenant queued-job quota exhausted");
    }

    JS = std::make_shared<JobState>();
    JS->Id = NextJobId++;
    JS->Units = Units;
    JS->SubmitAt = std::chrono::steady_clock::now();
    JS->Runtime = tenantRuntime(Spec.Tenant);
    JS->Signals = Sig;
    JS->Budget = Budget_;
    JS->Spec = std::move(Spec);
    if (JS->Spec.Kind == JobKind::Dse)
      JS->Result.Results.resize(Units);
    else
      JS->Slices.resize(Units);

    if (JS->Spec.DeadlineMs) {
      std::shared_ptr<JobState> ForFire = JS;
      JS->DeadlineToken = Watchdog::global().arm(
          std::chrono::milliseconds(JS->Spec.DeadlineMs), [ForFire] {
            ForFire->DeadlineFired.store(true, std::memory_order_relaxed);
            ForFire->requestCancel();
          });
      JS->DeadlineArmed = true;
    }

    Queue.push(JS);
    Active.emplace(JS->Id, JS);
    ++Stats_->Admitted;
  }
  Sig->poke();
  return JobHandle(std::move(JS));
}

void AnalysisService::dispatchLoop() {
  uint64_t LastTick = 0;
  for (;;) {
    pump();
    std::unique_lock<std::mutex> Lock(Sig->Mu);
    Sig->Cv.wait(Lock, [&] {
      return Sig->Ticks != LastTick ||
             StopDispatch.load(std::memory_order_relaxed);
    });
    LastTick = Sig->Ticks;
    if (StopDispatch.load(std::memory_order_relaxed))
      return;
  }
}

void AnalysisService::pump() {
  std::vector<std::shared_ptr<JobState>> ToFinalize;
  {
    std::lock_guard<std::mutex> Lock(SMu);

    // Cancelled jobs leave the queue at once; they finalize below as
    // soon as their already-launched units drain.
    Queue.sweepCancelled();

    // Jobs stay in Active until finalize() completes (it erases them):
    // drain()/shutdown() must not observe an empty service before the
    // last job's result is written and its counters bumped.
    for (const auto &[Id, JSp] : Active) {
      JobState &JS = *JSp;
      if (JS.Exhausted && !JS.Finalized &&
          JS.UnitsFinished.load(std::memory_order_acquire) ==
              JS.UnitsLaunched.load(std::memory_order_acquire)) {
        JS.Finalized = true;
        ToFinalize.push_back(JSp);
      }
    }

    // Dispatch gating: at most Workers_ units occupy the pool, so a
    // parked budget acquire always has running slot-holders ahead of it
    // and the per-tenant unit cap bounds how much of the pool one
    // tenant's units can sit on.
    while (InflightUnits.load(std::memory_order_relaxed) < Workers_) {
      size_t Cap = tenantUnitCap();
      size_t Unit = 0;
      std::shared_ptr<JobState> JSp = Queue.claimUnit(
          [&](const JobState &J) {
            // Doomed units are claimed unconditionally: runUnit no-ops
            // them, which is how a cancelled job's queue share drains.
            return J.CancelFlag.load(std::memory_order_relaxed) ||
                   Quota.inflight(J.Spec.Tenant) < Cap;
          },
          Unit);
      if (!JSp)
        break;
      if (!JSp->Started) {
        JSp->Started = true;
        Quota.jobStarted(JSp->Spec.Tenant);
        std::lock_guard<std::mutex> JLock(JSp->Mu);
        JSp->Status = JobStatus::Running;
      }
      Quota.unitLaunched(JSp->Spec.Tenant);
      InflightUnits.fetch_add(1, std::memory_order_relaxed);
      JSp->UnitsLaunched.fetch_add(1, std::memory_order_release);
      ++Stats_->UnitsDispatched;
      Pool->submit([this, JSp, Unit] { runUnit(JSp, Unit); });
    }
  }
  for (const std::shared_ptr<JobState> &JS : ToFinalize)
    finalize(JS);
}

size_t AnalysisService::tenantUnitCap() const {
  if (Opts.TenantMaxInflight)
    return Opts.TenantMaxInflight;
  size_t A = Quota.activeTenants();
  size_t Cap = Workers_ / (A ? A : 1);
  return Cap ? Cap : 1;
}

size_t AnalysisService::tenantSlotCap() const {
  size_t UnitCap = tenantUnitCap();
  size_t Cap = Opts.TenantMaxSlots ? Opts.TenantMaxSlots : UnitCap;
  // Every dispatched unit must be able to hold its base slot, or a
  // tenant at its unit cap could park all of its units forever.
  return Cap > UnitCap ? Cap : UnitCap;
}

void AnalysisService::runUnit(std::shared_ptr<JobState> JS, size_t Unit) {
  const std::string &Tenant = JS->Spec.Tenant;
  const bool IsDse = JS->Spec.Kind == JobKind::Dse;

  bool Skipped = JS->CancelFlag.load(std::memory_order_relaxed);
  bool Faulted = false;
  std::set<std::string> UnitReasons;

  // Chaos site: dispatch faults degrade exactly one unit. A Hang here
  // polls the job's cancel flag — the wedged-dispatch shape the per-job
  // watchdog breaks — and a hang that ran its course is a transient
  // stall, not a fault.
  if (!Skipped) {
    if (FaultInjector *FI = FaultInjector::active()) {
      try {
        if (FI->fire(FaultSite::JobDispatch, &JS->CancelFlag))
          Faulted = true;
      } catch (const FaultInjected &) {
        Faulted = true;
      }
    }
    if (JS->CancelFlag.load(std::memory_order_relaxed)) {
      Skipped = true;
      Faulted = false;
    } else if (Faulted) {
      UnitReasons.insert("dispatch-fault");
    }
  }

  // Borrow slots: the claim hook charges the tenant atomically with the
  // grant; a cancelled job's parked acquire unparks with 0.
  size_t Got = 0;
  if (!Skipped && !Faulted) {
    size_t Want = JS->Spec.ShardsPerUnit ? JS->Spec.ShardsPerUnit : 1;
    size_t SlotCap = tenantSlotCap();
    Got = Budget_->acquire(
        Want,
        [&](size_t Avail) { return Quota.claimSlots(Tenant, Avail, SlotCap); },
        &JS->CancelFlag);
    if (Got == 0)
      Skipped = true;
  }

  EngineResult ER;
  std::shared_ptr<Survey> Slice;
  if (!Skipped && !Faulted) {
    if (IsDse) {
      EngineOptions EO = JS->Spec.Engine;
      EO.Runtime = JS->Runtime;
      EO.Workers = Got;
      EO.ClampWorkers = false; // Got is already within the budget
      EO.Cancel = &JS->CancelFlag;
      EO.CacheSnapshot.clear(); // the service warm-boots tenant runtimes
      EO.Cegar.Reliability.SharedQuarantine = Quar_;
      std::unique_ptr<SolverBackend> Backend;
      try {
        Backend = EO.BackendFactory();
      } catch (...) {
      }
      if (!Backend) {
        Faulted = true;
        UnitReasons.insert("backend-construction");
        noteDegraded();
      } else {
        DseEngine Engine(*Backend, EO);
        ER = Engine.run(JS->Spec.Programs[Unit]);
        const RuntimeStats &W = ER.Runtime;
        if (W.BreakerShortCircuits.load())
          UnitReasons.insert("breaker-degraded");
        if (W.QuarantineHits.load())
          UnitReasons.insert("quarantined");
        if (W.GuardTimeouts.load())
          UnitReasons.insert("guard-timeout");
        if (W.BreakerOpens.load() || W.WorkerSpawnFallbacks.load())
          noteDegraded();
        if (!ER.Errors.empty()) {
          UnitReasons.insert("engine-degraded");
          noteDegraded();
        }
      }
    } else {
      Slice = std::make_shared<Survey>(JS->Runtime);
      size_t N = JS->Spec.Packages.size();
      size_t Begin = N * Unit / JS->Units;
      size_t End = N * (Unit + 1) / JS->Units;
      size_t Added =
          Slice->addPackages(JS->Spec.Packages, Begin, End, &JS->CancelFlag);
      if (Added < End - Begin)
        Skipped = JS->CancelFlag.load(std::memory_order_relaxed);
    }
  }

  bool Streamed = !Skipped && !Faulted;
  bool WasFirst = false;
  double FirstAt = secondsSince(JS->SubmitAt);
  {
    std::lock_guard<std::mutex> JLock(JS->Mu);
    JS->ReasonSet.insert(UnitReasons.begin(), UnitReasons.end());
    if (Streamed) {
      JobUnitResult U;
      U.Unit = Unit;
      if (IsDse) {
        JS->Result.Results[Unit] = ER;
        U.Dse = std::move(ER);
      } else {
        JS->Slices[Unit] = Slice;
        U.Slice = std::move(Slice);
      }
      JS->Stream.push_back(std::move(U));
      if (JS->FirstResultSeconds < 0) {
        JS->FirstResultSeconds = FirstAt;
        WasFirst = true;
      }
      ++Stats_->ResultsStreamed;
    }
  }
  JS->Cv.notify_all();
  if (WasFirst) {
    std::lock_guard<std::mutex> HLock(HistMu);
    Hist_[JS->Spec.Tenant].FirstResult.record(FirstAt);
  }

  if (Got)
    Budget_->release(Got, [&] { Quota.releaseSlots(Tenant, Got); });
  Quota.unitFinished(Tenant);
  InflightUnits.fetch_sub(1, std::memory_order_relaxed);
  if (Skipped)
    ++Stats_->UnitsSkipped;
  if (Faulted)
    ++Stats_->UnitsFaulted;
  JS->UnitsFinished.fetch_add(1, std::memory_order_release);
  Sig->poke();
}

void AnalysisService::finalize(const std::shared_ptr<JobState> &JS) {
  // Outside SMu: disarm blocks on a mid-flight deadline callback, and
  // the callback path never takes a service lock.
  if (JS->DeadlineArmed) {
    Watchdog::global().disarm(JS->DeadlineToken);
    JS->DeadlineArmed = false;
  }

  JobStatus Final = JobStatus::Completed;
  if (JS->DeadlineFired.load(std::memory_order_relaxed))
    Final = JobStatus::Deadline;
  else if (JS->CancelFlag.load(std::memory_order_relaxed))
    Final = JobStatus::Cancelled;

  // Counters and quota move before Done is published: a caller whose
  // wait() returns must observe the finished job everywhere.
  switch (Final) {
  case JobStatus::Completed:
    ++Stats_->JobsCompleted;
    break;
  case JobStatus::Cancelled:
    ++Stats_->JobsCancelled;
    break;
  case JobStatus::Deadline:
    ++Stats_->JobsDeadline;
    break;
  default:
    break;
  }
  Quota.jobFinished(JS->Spec.Tenant, JS->Started);

  double Secs = secondsSince(JS->SubmitAt);
  ServiceHealth H = health();
  {
    std::lock_guard<std::mutex> JLock(JS->Mu);
    if (Final == JobStatus::Deadline)
      JS->ReasonSet.insert("deadline: job deadline expired");
    else if (Final == JobStatus::Cancelled)
      JS->ReasonSet.insert(JS->ShutdownCancel.load(std::memory_order_relaxed)
                               ? "cancelled: service shutdown"
                               : "cancelled: caller request");
    if (JS->Spec.Kind == JobKind::Survey) {
      // Slice-order merge: equal to a serial Survey over the same
      // packages when no slice was cut short.
      auto Out = std::make_shared<Survey>(JS->Runtime);
      for (const std::shared_ptr<Survey> &S : JS->Slices)
        if (S)
          Out->merge(*S);
      JS->Result.SurveyOut = std::move(Out);
    }
    JS->Result.Status = Final;
    JS->Result.Health = H;
    JS->Result.Reasons.assign(JS->ReasonSet.begin(), JS->ReasonSet.end());
    JS->Result.Seconds = Secs;
    JS->Result.FirstResultSeconds = JS->FirstResultSeconds;
    JS->Status = Final;
    JS->Done = true;
  }
  JS->Cv.notify_all();

  {
    std::lock_guard<std::mutex> HLock(HistMu);
    Hist_[JS->Spec.Tenant].JobDuration.record(Secs);
  }

  {
    std::lock_guard<std::mutex> Lock(SMu);
    Active.erase(JS->Id);
  }
  DrainCv.notify_all();
}

void AnalysisService::noteDegraded() {
  LastDegradedMs.store(steadyMs(), std::memory_order_relaxed);
}

ServiceHealth AnalysisService::health() const {
  if (Phase_.load(std::memory_order_relaxed) != Running)
    return ServiceHealth::Draining;
  int64_t Last = LastDegradedMs.load(std::memory_order_relaxed);
  if (Last >= 0 && steadyMs() - Last <
                       static_cast<int64_t>(Opts.DegradedCooldownMs))
    return ServiceHealth::Degraded;
  return ServiceHealth::Healthy;
}

size_t AnalysisService::activeJobs() const {
  std::lock_guard<std::mutex> Lock(SMu);
  return Active.size();
}

size_t AnalysisService::queuedJobs() const {
  std::lock_guard<std::mutex> Lock(SMu);
  return Queue.queuedJobs();
}

RuntimeStats AnalysisService::runtimeStats() const {
  std::lock_guard<std::mutex> Lock(SMu);
  RuntimeStats Out;
  for (const auto &[T, RT] : Runtimes)
    Out.merge(RT->stats());
  return Out;
}

std::map<std::string, RuntimeStats>
AnalysisService::tenantRuntimeStats() const {
  std::lock_guard<std::mutex> Lock(SMu);
  std::map<std::string, RuntimeStats> Out;
  for (const auto &[T, RT] : Runtimes)
    Out[T].merge(RT->stats());
  return Out;
}

std::map<std::string, AnalysisService::TenantLatency>
AnalysisService::latencyStats() const {
  std::lock_guard<std::mutex> Lock(HistMu);
  return Hist_;
}

void AnalysisService::drain() {
  std::lock_guard<std::mutex> LG(LifecycleMu);
  int Expected = Running;
  Phase_.compare_exchange_strong(Expected, Draining);
  Sig->poke();
  std::unique_lock<std::mutex> Lock(SMu);
  DrainCv.wait(Lock, [this] { return Active.empty(); });
}

ShutdownReport AnalysisService::shutdown(uint32_t GraceMs) {
  auto Start = std::chrono::steady_clock::now();
  ShutdownReport Rep;
  std::lock_guard<std::mutex> LG(LifecycleMu);
  if (Phase_.load(std::memory_order_relaxed) == Stopped)
    return Rep;
  Phase_.store(Draining, std::memory_order_relaxed);
  Sig->poke();

  if (GraceMs) {
    std::unique_lock<std::mutex> Lock(SMu);
    DrainCv.wait_for(Lock, std::chrono::milliseconds(GraceMs),
                     [this] { return Active.empty(); });
  }

  // Grace expired (or none): cancel the stragglers cooperatively. The
  // cancel lattice (engine/CEGAR/survey polls, clamped solver timeouts,
  // budget-park unparking) bounds how long the wait below can take.
  std::vector<std::shared_ptr<JobState>> Stragglers;
  {
    std::lock_guard<std::mutex> Lock(SMu);
    for (const auto &[Id, JS] : Active)
      Stragglers.push_back(JS);
  }
  Rep.CancelledJobs = Stragglers.size();
  Rep.Clean = Stragglers.empty();
  for (const std::shared_ptr<JobState> &JS : Stragglers) {
    JS->ShutdownCancel.store(true, std::memory_order_relaxed);
    JS->requestCancel();
  }
  {
    std::unique_lock<std::mutex> Lock(SMu);
    DrainCv.wait(Lock, [this] { return Active.empty(); });
  }

  StopDispatch.store(true, std::memory_order_relaxed);
  Sig->poke();
  if (Dispatcher.joinable())
    Dispatcher.join();
  Pool->wait();

  if (!Opts.StateDir.empty()) {
    std::vector<std::pair<std::string, std::shared_ptr<RegexRuntime>>> RTs;
    {
      std::lock_guard<std::mutex> Lock(SMu);
      RTs.assign(Runtimes.begin(), Runtimes.end());
    }
    SnapshotSaveOptions SaveOpts;
    SaveOpts.MaxAgeGenerations = Opts.SnapshotMaxAgeGenerations;
    for (const auto &[T, RT] : RTs) {
      // One service session = one snapshot generation, mirroring the
      // quarantine sidecar's aging clock below.
      RT->bumpGeneration();
      if (RT->save(Opts.StateDir + "/" + snapshot::tenantSnapshotFile(T),
                   SaveOpts)) {
        ++Stats_->SnapshotSaves;
        ++Rep.SnapshotsSaved;
      } else {
        ++Stats_->SnapshotSaveFailures;
        ++Rep.SnapshotFailures;
      }
    }
    // One generation per shutdown cycle: keys that stopped burning for
    // QuarantineMaxAgeGenerations cycles age out of the sidecar here.
    Quar_->bumpGeneration();
    uint64_t ExpiredBefore = Quar_->expired();
    bool SidecarOk = Quar_->save(Opts.StateDir + "/" + QuarantineSidecar);
    Stats_->QuarantineExpired += Quar_->expired() - ExpiredBefore;
    if (SidecarOk) {
      ++Stats_->SnapshotSaves;
      ++Rep.SnapshotsSaved;
    } else {
      ++Stats_->SnapshotSaveFailures;
      ++Rep.SnapshotFailures;
    }
  }

  Phase_.store(Stopped, std::memory_order_relaxed);
  Rep.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return Rep;
}
