//===- service/JobJournal.h - Crash-replay job journal ----------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission journal behind the wire server's crash recovery
/// (DESIGN.md §12.4): every job admitted over the wire appends one
/// *admit* record carrying the job's serialized wire spec, and appends a
/// *done* record when the job finalizes with a client-visible outcome.
/// On boot, pending() = admits without a matching done — exactly the
/// jobs a crash (kill -9 between admission and completion) still owes —
/// and the server re-submits them.
///
/// Soundness of replay (§12.4): a replayed job *re-runs from scratch*
/// through the normal submit path; it never resumes partial state, so it
/// can never double-count results. A job is only marked done once its
/// final result was published to the handle registry, so the crash
/// window errs toward re-running (duplicate work, at-least-once), never
/// toward losing admitted work — and never toward a wrong verdict,
/// because re-running is exactly what the caller asked for.
///
/// Format: a text file, one record per LF-terminated line:
///
///   RECAPJL1                          header (exact first line)
///   A <seq> <fnv64-hex> <payload>     admit; checksum covers "seq payload"
///   D <seq> <fnv64-hex>               done;  checksum covers "seq"
///
/// The payload is one line of opaque text (the wire layer stores the
/// frame-format JSON spec; it is LF-free by construction). Damage
/// tolerance: a torn tail line (crash mid-append) or a checksum-failing
/// line ends the scan — everything before it is kept, everything after
/// is ignored. open() compacts: the file is rewritten to only its
/// pending records (atomic tmp+rename), so a long-lived service's
/// journal stays proportional to its backlog, not its history.
///
/// The appender consults FaultSite::JournalAppend: an injected fault
/// loses that one append (availability over durability — the job still
/// runs, it just would not be replayed) and is surfaced through
/// appendFailures(). No lock: the wire server serializes access.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SERVICE_JOBJOURNAL_H
#define RECAP_SERVICE_JOBJOURNAL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace recap {

class JobJournal {
public:
  struct PendingJob {
    uint64_t Seq = 0;
    std::string Payload;
  };

  explicit JobJournal(std::string Path) : Path(std::move(Path)) {}
  ~JobJournal() { close(); }

  JobJournal(const JobJournal &) = delete;
  JobJournal &operator=(const JobJournal &) = delete;

  /// Loads the existing journal (tolerating torn/corrupt tails),
  /// compacts it down to pending records, and opens for append. Returns
  /// false when the file cannot be created/rewritten (journal disabled;
  /// appends will fail but nothing throws).
  bool open();

  /// Admit records still lacking a done record, in admission order.
  /// Valid after open(); replaying the backlog is the caller's job.
  const std::vector<PendingJob> &pending() const { return Pending; }

  /// Appends one admit record; returns its sequence number, or 0 on
  /// failure (I/O error, injected JournalAppend fault, or \p Payload
  /// containing a newline).
  uint64_t append(const std::string &Payload);

  /// Appends the done record for \p Seq. Idempotent in effect (a second
  /// done for the same seq is harmless). Returns false on write failure.
  bool markDone(uint64_t Seq);

  /// Appends lost to faults or I/O errors so far (observability).
  uint64_t appendFailures() const { return AppendFailures; }

  const std::string &path() const { return Path; }

  void close();

private:
  bool writeLine(const std::string &Line);

  std::string Path;
  std::FILE *F = nullptr;
  std::vector<PendingJob> Pending;
  uint64_t NextSeq = 1;
  uint64_t AppendFailures = 0;
};

} // namespace recap

#endif // RECAP_SERVICE_JOBJOURNAL_H
