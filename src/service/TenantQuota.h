//===- service/TenantQuota.h - Per-tenant admission accounting --*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant accounting for the analysis service: queued jobs, inflight
/// units and borrowed budget slots, keyed by tenant id. The quota table
/// has its own mutex and sits at the bottom of the service's lock order —
/// it never calls out while locked, so it is safe to consult from the
/// WorkerBudget claim hook (which runs under the budget lock) as well as
/// from the service mutex.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SERVICE_TENANTQUOTA_H
#define RECAP_SERVICE_TENANTQUOTA_H

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

namespace recap {

/// Tracks, per tenant: jobs waiting in the queue, jobs admitted overall,
/// units currently running, and budget slots currently borrowed. All
/// methods are thread-safe and non-blocking (one leaf mutex, no
/// callouts).
class TenantQuota {
public:
  /// Admission check: returns false when the tenant already has
  /// \p MaxQueued jobs queued (0 = unlimited); otherwise records the new
  /// queued job and returns true.
  bool tryAdmit(const std::string &T, size_t MaxQueued) {
    std::lock_guard<std::mutex> Lock(Mu);
    Row &R = Rows[T];
    if (MaxQueued && R.Queued >= MaxQueued)
      return false;
    ++R.Queued;
    return true;
  }

  /// The job's first unit was claimed: it moved from queued to running.
  void jobStarted(const std::string &T) {
    std::lock_guard<std::mutex> Lock(Mu);
    Row &R = Rows[T];
    if (R.Queued)
      --R.Queued;
    ++R.Running;
  }

  /// The job finalized. \p EverStarted says which counter it occupies.
  void jobFinished(const std::string &T, bool EverStarted) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Rows.find(T);
    if (It == Rows.end())
      return;
    Row &R = It->second;
    size_t &C = EverStarted ? R.Running : R.Queued;
    if (C)
      --C;
    eraseIfIdle(It);
  }

  void unitLaunched(const std::string &T) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Rows[T].Inflight;
  }

  void unitFinished(const std::string &T) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Rows.find(T);
    if (It == Rows.end())
      return;
    if (It->second.Inflight)
      --It->second.Inflight;
    eraseIfIdle(It);
  }

  /// Units of this tenant currently dispatched to the pool.
  size_t inflight(const std::string &T) const {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Rows.find(T);
    return It == Rows.end() ? 0 : It->second.Inflight;
  }

  /// Tenants with any queued or running presence — the denominator of
  /// the fair-share cap, so an idle tenant never dilutes active ones.
  size_t activeTenants() const {
    std::lock_guard<std::mutex> Lock(Mu);
    size_t N = 0;
    for (const auto &[T, R] : Rows)
      N += (R.Queued + R.Running + R.Inflight) > 0;
    return N;
  }

  /// Budget claim hook (runs under the WorkerBudget lock): grants
  /// min(\p Avail, room under \p SlotCap) slots to \p T and records the
  /// grant atomically with the decision, so concurrent claimants cannot
  /// jointly overshoot the cap. Returns the grant (0 = park).
  size_t claimSlots(const std::string &T, size_t Avail, size_t SlotCap) {
    std::lock_guard<std::mutex> Lock(Mu);
    Row &R = Rows[T];
    size_t Room = SlotCap > R.Slots ? SlotCap - R.Slots : 0;
    size_t Got = Avail < Room ? Avail : Room;
    R.Slots += Got;
    return Got;
  }

  /// Budget release hook (under the WorkerBudget lock, paired with
  /// claimSlots).
  void releaseSlots(const std::string &T, size_t N) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Rows.find(T);
    if (It == Rows.end())
      return;
    It->second.Slots = It->second.Slots > N ? It->second.Slots - N : 0;
    eraseIfIdle(It);
  }

  size_t slots(const std::string &T) const {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Rows.find(T);
    return It == Rows.end() ? 0 : It->second.Slots;
  }

private:
  struct Row {
    size_t Queued = 0;   ///< jobs admitted, not yet started
    size_t Running = 0;  ///< jobs started, not yet finalized
    size_t Inflight = 0; ///< units dispatched to the pool
    size_t Slots = 0;    ///< budget slots currently borrowed
  };

  void eraseIfIdle(std::unordered_map<std::string, Row>::iterator It) {
    const Row &R = It->second;
    if (R.Queued == 0 && R.Running == 0 && R.Inflight == 0 && R.Slots == 0)
      Rows.erase(It);
  }

  mutable std::mutex Mu;
  std::unordered_map<std::string, Row> Rows;
};

} // namespace recap

#endif // RECAP_SERVICE_TENANTQUOTA_H
