//===- service/JobJournal.cpp - Crash-replay job journal -------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/JobJournal.h"

#include "reliability/FaultInjector.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

using namespace recap;

namespace {

constexpr const char *Header = "RECAPJL1";

uint64_t fnv1a64(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Parses "A <seq> <crc> <payload>" / "D <seq> <crc>". Returns false on
/// any malformation — the scanner stops there (torn-tail tolerance).
bool parseRecord(const std::string &Line, char &Kind, uint64_t &Seq,
                 std::string &Payload) {
  if (Line.size() < 3 || (Line[0] != 'A' && Line[0] != 'D') ||
      Line[1] != ' ')
    return false;
  Kind = Line[0];
  size_t SeqEnd = Line.find(' ', 2);
  if (SeqEnd == std::string::npos)
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long S = std::strtoull(Line.c_str() + 2, &End, 10);
  if (errno != 0 || !End || End != Line.c_str() + SeqEnd || S == 0)
    return false;
  Seq = S;
  std::string SeqStr = Line.substr(2, SeqEnd - 2);
  if (Kind == 'A') {
    size_t CrcEnd = Line.find(' ', SeqEnd + 1);
    if (CrcEnd == std::string::npos || CrcEnd - (SeqEnd + 1) != 16)
      return false;
    std::string Crc = Line.substr(SeqEnd + 1, 16);
    Payload = Line.substr(CrcEnd + 1);
    return Crc == hex64(fnv1a64(SeqStr + " " + Payload));
  }
  // Done record: "D <seq> <crc>", nothing after the checksum.
  if (Line.size() - (SeqEnd + 1) != 16)
    return false;
  std::string Crc = Line.substr(SeqEnd + 1, 16);
  Payload.clear();
  return Crc == hex64(fnv1a64(SeqStr));
}

} // namespace

bool JobJournal::open() {
  close();
  Pending.clear();
  NextSeq = 1;

  // Scan the existing file. Records after the first malformed or
  // checksum-failing line are ignored: a torn tail is expected after a
  // crash, and everything before it is intact by construction
  // (append-only, LF-terminated).
  {
    std::ifstream In(Path, std::ios::binary);
    if (In) {
      std::string Line;
      bool First = true;
      std::map<uint64_t, std::string> Admits; // ordered by seq
      bool FileEndsWithNewline = false;
      {
        In.seekg(0, std::ios::end);
        std::streamoff N = In.tellg();
        if (N > 0) {
          In.seekg(N - 1);
          FileEndsWithNewline = In.get() == '\n';
        }
        In.seekg(0);
      }
      while (std::getline(In, Line)) {
        // A final line without its newline is a torn append: ignore it.
        if (In.eof() && !FileEndsWithNewline)
          break;
        if (First) {
          First = false;
          if (Line == Header)
            continue;
          break; // not our file (or pre-header damage): treat as empty
        }
        char Kind;
        uint64_t Seq;
        std::string Payload;
        if (!parseRecord(Line, Kind, Seq, Payload))
          break;
        if (Seq >= NextSeq)
          NextSeq = Seq + 1;
        if (Kind == 'A')
          Admits.emplace(Seq, std::move(Payload));
        else
          Admits.erase(Seq);
      }
      for (auto &[Seq, Payload] : Admits)
        Pending.push_back({Seq, std::move(Payload)});
    }
  }

  // Compact: rewrite header + pending admits, atomically.
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Header << "\n";
    for (const PendingJob &P : Pending) {
      std::string SeqStr = std::to_string(P.Seq);
      Out << "A " << SeqStr << " "
          << hex64(fnv1a64(SeqStr + " " + P.Payload)) << " " << P.Payload
          << "\n";
    }
    Out.flush();
    if (!Out)
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }

  F = std::fopen(Path.c_str(), "ab");
  return F != nullptr;
}

bool JobJournal::writeLine(const std::string &Line) {
  if (!F)
    return false;
  if (std::fwrite(Line.data(), 1, Line.size(), F) != Line.size())
    return false;
  if (std::fputc('\n', F) == EOF)
    return false;
  // Flush to the OS so a process crash (the scenario this file exists
  // for) loses nothing; fsync durability against power loss is out of
  // scope for an operator loopback service.
  return std::fflush(F) == 0;
}

uint64_t JobJournal::append(const std::string &Payload) {
  if (Payload.find('\n') != std::string::npos) {
    ++AppendFailures;
    return 0;
  }
  if (FaultInjector *FI = FaultInjector::active()) {
    static std::atomic<bool> NoCancel{false};
    try {
      if (FI->fire(FaultSite::JournalAppend, &NoCancel)) {
        ++AppendFailures;
        return 0;
      }
    } catch (const FaultInjected &) {
      ++AppendFailures;
      return 0;
    }
  }
  uint64_t Seq = NextSeq;
  std::string SeqStr = std::to_string(Seq);
  if (!writeLine("A " + SeqStr + " " +
                 hex64(fnv1a64(SeqStr + " " + Payload)) + " " + Payload)) {
    ++AppendFailures;
    return 0;
  }
  ++NextSeq;
  return Seq;
}

bool JobJournal::markDone(uint64_t Seq) {
  if (Seq == 0)
    return false;
  std::string SeqStr = std::to_string(Seq);
  return writeLine("D " + SeqStr + " " + hex64(fnv1a64(SeqStr)));
}

void JobJournal::close() {
  if (F) {
    std::fclose(F);
    F = nullptr;
  }
}
