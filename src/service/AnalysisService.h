//===- service/AnalysisService.h - Resident analysis service ----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident, multi-tenant front door of the library (DESIGN.md §10):
/// callers submit DSE or survey jobs and get a JobHandle; the service
/// multiplexes every job onto ONE worker pool + slot budget, with
/// admission control (bounded queue, per-tenant quotas, reject with
/// reason), end-to-end deadlines enforced by the shared watchdog plus the
/// cooperative cancel lattice (engine test/flip polls, CEGAR round polls,
/// survey package polls, budget-park unparking), per-tenant runtime-cache
/// partitioning, breaker/quarantine health surfacing, and graceful
/// drain/shutdown with snapshot-on-shutdown / warm-boot.
///
/// The robustness contract mirrors the reliability layer's: every
/// degraded edge is *contained and reported*, never a wrong answer — a
/// reject returns an error before any state exists, a deadline or cancel
/// finalizes with the finished units' real verdicts plus a reason, and
/// breaker/quarantine degradation inside a unit surfaces as Unknown
/// verdicts with the reason echoed on the job.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SERVICE_ANALYSISSERVICE_H
#define RECAP_SERVICE_ANALYSISSERVICE_H

#include "parallel/WorkerPool.h"
#include "service/Job.h"
#include "service/JobQueue.h"
#include "service/LatencyHistogram.h"
#include "service/TenantQuota.h"
#include "support/Result.h"

#include <map>
#include <memory>
#include <string>
#include <thread>

namespace recap {

struct ServiceOptions {
  /// Pool threads == budget slots (0 = one per hardware thread).
  size_t Workers = 0;
  /// Cut Workers down to hardware_concurrency() (tests oversubscribing on
  /// purpose turn this off, like EngineOptions::ClampWorkers).
  bool ClampWorkers = true;
  /// Jobs admitted but not yet started, across all tenants; the next
  /// submission is rejected (queue-full) beyond it. 0 = unbounded.
  size_t MaxQueuedJobs = 256;
  /// Same bound per tenant. 0 = unbounded.
  size_t TenantMaxQueued = 64;
  /// Units of one tenant dispatched concurrently. 0 = fair share:
  /// max(1, Workers / active tenants), recomputed at every claim.
  size_t TenantMaxInflight = 0;
  /// Budget slots one tenant may hold concurrently. 0 = fair share.
  /// Clamped up to the tenant's unit cap so every dispatched unit can
  /// hold its base slot (deadlock freedom).
  size_t TenantMaxSlots = 0;
  /// State directory for warm boots: per-tenant runtime snapshots
  /// (snapshot::tenantSnapshotFile) and the quarantine sidecar, loaded at
  /// construction and written by shutdown(). Empty = no persistence.
  std::string StateDir;
  /// Per-tenant runtime construction policy.
  RuntimeOptions Runtime;
  /// Engine defaults merged into each JobSpec::Engine at submit:
  /// BackendFactory fills in when the spec leaves it null; the
  /// reliability block seeds the shared quarantine policy. Runtime,
  /// Workers, ClampWorkers, Cancel and CacheSnapshot in here are
  /// ignored — those are substrate policy the service owns.
  EngineOptions Engine;
  /// Default applied to the quarantine policy's MaxAgeGenerations when
  /// the Engine template leaves it 0: one generation per service
  /// shutdown cycle, so keys that stop burning age out of the sidecar
  /// instead of pinning it forever.
  unsigned QuarantineMaxAgeGenerations = 8;
  /// Snapshot aging for the per-tenant runtime snapshots: one generation
  /// per service session (bumped at shutdown before the save), entries
  /// untouched longer than this many sessions are dropped from the write
  /// (RuntimeStats::AgedOut). 0 = keep everything.
  uint64_t SnapshotMaxAgeGenerations = 0;
  /// How long after the last observed degradation (breaker open, worker
  /// spawn fallback) health() keeps reporting Degraded.
  uint32_t DegradedCooldownMs = 5000;
};

/// Service-level counters (all atomic; see RuntimeStats for the engine
/// tiers below).
struct ServiceStats {
  StatCounter Submitted;
  StatCounter Admitted;
  StatCounter RejectedQueueFull;
  StatCounter RejectedTenantQueue;
  StatCounter RejectedDraining;
  StatCounter RejectedInvalid;
  StatCounter RejectedFault; ///< FaultSite::JobAdmit injections
  StatCounter UnitsDispatched;
  StatCounter UnitsSkipped; ///< claimed but never run (cancel/deadline)
  StatCounter UnitsFaulted; ///< FaultSite::JobDispatch injections
  StatCounter JobsCompleted;
  StatCounter JobsCancelled;
  StatCounter JobsDeadline;
  StatCounter ResultsStreamed;
  StatCounter SnapshotSaves;
  StatCounter SnapshotSaveFailures;
  StatCounter QuarantineExpired; ///< aged out on shutdown sidecar save
  StatCounter WarmBoots; ///< quarantine/runtime state restored at boot
};

/// What shutdown() did.
struct ShutdownReport {
  bool Clean = true;          ///< no job had to be cancelled
  size_t CancelledJobs = 0;   ///< jobs cancelled when the grace expired
  size_t SnapshotsSaved = 0;  ///< runtime snapshots + sidecar written
  size_t SnapshotFailures = 0;
  double Seconds = 0;         ///< shutdown() entry to completion
};

/// The resident service. Construction spawns the pool and the dispatcher
/// thread and (with a StateDir) warm-boots persisted state; destruction
/// runs shutdown(0) if the caller did not. All public methods are
/// thread-safe.
class AnalysisService {
public:
  explicit AnalysisService(ServiceOptions Opts = {});
  ~AnalysisService();

  AnalysisService(const AnalysisService &) = delete;
  AnalysisService &operator=(const AnalysisService &) = delete;

  /// Admission: validates the spec, applies engine defaults and deadline
  /// clamps, checks queue bounds and tenant quotas (and the JobAdmit
  /// chaos site), arms the deadline watchdog, and enqueues. Returns the
  /// handle, or the rejection reason — a reject has no side effects
  /// beyond its counter.
  Result<JobHandle> submit(JobSpec Spec);

  /// Stops admitting (health turns Draining) and blocks until every
  /// in-flight job finalizes naturally. Queued jobs still run: drain is
  /// "finish what was promised", shutdown is "stop now".
  void drain();

  /// Graceful stop: drains for up to \p GraceMs (0 = none), cancels
  /// whatever is still running, waits for the cancels to drain
  /// (cooperative polls bound this), joins the dispatcher and pool, and
  /// — with a StateDir — persists per-tenant runtime snapshots and the
  /// aged quarantine sidecar for the next boot. Idempotent.
  ShutdownReport shutdown(uint32_t GraceMs = 0);

  ServiceHealth health() const;
  /// True once shutdown() has completed — lets a hosting process (recli
  /// serve) exit after a wire-delivered shutdown verb.
  bool stopped() const {
    return Phase_.load(std::memory_order_relaxed) == Stopped;
  }
  const ServiceStats &stats() const { return *Stats_; }
  size_t activeJobs() const;
  size_t queuedJobs() const;
  size_t workers() const { return Workers_; }
  size_t slotsInUse() const { return Budget_->inUse(); }
  /// Merged runtime window across every tenant runtime.
  RuntimeStats runtimeStats() const;
  /// Per-tenant runtime windows (tenant name -> that runtime's counters),
  /// for the observability surface (/statsz `tenants` section).
  std::map<std::string, RuntimeStats> tenantRuntimeStats() const;
  const std::shared_ptr<Quarantine> &quarantine() const { return Quar_; }

  /// The two latency surfaces tracked per tenant (DESIGN.md §12.3):
  /// admission to first streamed unit result, and admission to job
  /// finalization. Histograms merge associatively, so callers may fold
  /// tenants together for a service-wide view.
  struct TenantLatency {
    LatencyHistogram FirstResult;
    LatencyHistogram JobDuration;
  };
  /// Copies of the per-tenant latency histograms.
  std::map<std::string, TenantLatency> latencyStats() const;

  /// Sidecar file name under StateDir (shared with tests).
  static constexpr const char *QuarantineSidecar = "quarantine.sidecar";

private:
  enum Phase : int { Running, Draining, Stopped };

  std::shared_ptr<RegexRuntime> tenantRuntime(const std::string &T);
  size_t tenantUnitCap() const;
  size_t tenantSlotCap() const;
  void dispatchLoop();
  void pump();
  void runUnit(std::shared_ptr<JobState> JS, size_t Unit);
  void finalize(const std::shared_ptr<JobState> &JS);
  void noteDegraded();

  ServiceOptions Opts;
  size_t Workers_ = 1;
  std::shared_ptr<ServiceStats> Stats_;
  std::shared_ptr<ServiceSignals> Sig;
  std::shared_ptr<sched::WorkerBudget> Budget_;
  std::unique_ptr<WorkerPool> Pool;
  std::shared_ptr<Quarantine> Quar_;

  std::atomic<int> Phase_{Running};
  std::atomic<bool> StopDispatch{false};
  std::atomic<size_t> InflightUnits{0};
  std::atomic<int64_t> LastDegradedMs{-1}; ///< steady ms; -1 = never

  /// Service mutex: queue, active set, tenant runtimes, job dispatcher
  /// state. Order: SMu -> TenantQuota/JobState mutexes, never the
  /// reverse; watchdog disarm happens outside SMu.
  mutable std::mutex SMu;
  std::condition_variable DrainCv; ///< waits on Active emptying, on SMu
  JobQueue Queue;
  std::map<uint64_t, std::shared_ptr<JobState>> Active;
  std::map<std::string, std::shared_ptr<RegexRuntime>> Runtimes;
  uint64_t NextJobId = 1;

  TenantQuota Quota;

  /// Latency histograms live under their own mutex: they are touched on
  /// the unit hot path and read by the observability poller; neither
  /// should contend with SMu. Order: independent of SMu and JobState::Mu
  /// (never held together with either).
  mutable std::mutex HistMu;
  std::map<std::string, TenantLatency> Hist_;

  std::mutex LifecycleMu; ///< serializes drain()/shutdown()
  std::thread Dispatcher;
};

} // namespace recap

#endif // RECAP_SERVICE_ANALYSISSERVICE_H
