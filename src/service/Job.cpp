//===- service/Job.cpp - Job handle blocking operations --------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Job.h"

using namespace recap;

const char *recap::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Queued:
    return "queued";
  case JobStatus::Running:
    return "running";
  case JobStatus::Completed:
    return "completed";
  case JobStatus::Cancelled:
    return "cancelled";
  case JobStatus::Deadline:
    return "deadline";
  }
  return "?";
}

const char *recap::serviceHealthName(ServiceHealth H) {
  switch (H) {
  case ServiceHealth::Healthy:
    return "healthy";
  case ServiceHealth::Degraded:
    return "degraded";
  case ServiceHealth::Draining:
    return "draining";
  }
  return "?";
}

bool JobHandle::wait(uint32_t TimeoutMs) const {
  std::unique_lock<std::mutex> Lock(S->Mu);
  auto Finalized = [this] { return S->Done; };
  if (TimeoutMs == 0) {
    S->Cv.wait(Lock, Finalized);
    return true;
  }
  return S->Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                        Finalized);
}

bool JobHandle::nextResult(JobUnitResult &Out, uint32_t TimeoutMs) {
  std::unique_lock<std::mutex> Lock(S->Mu);
  auto Ready = [this] { return !S->Stream.empty() || S->Done; };
  if (TimeoutMs == 0)
    S->Cv.wait(Lock, Ready);
  else if (!S->Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                           Ready))
    return false;
  if (S->Stream.empty())
    return false;
  Out = std::move(S->Stream.front());
  S->Stream.pop_front();
  return true;
}
