//===- service/JobQueue.cpp - Priority job/unit queue ----------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/JobQueue.h"

using namespace recap;

void JobQueue::push(std::shared_ptr<JobState> JS) {
  Q.emplace(keyOf(*JS), std::move(JS));
}

std::shared_ptr<JobState>
JobQueue::claimUnit(const std::function<bool(const JobState &)> &TenantOk,
                    size_t &Unit) {
  for (auto It = Q.begin(); It != Q.end(); ++It) {
    JobState &JS = *It->second;
    if (TenantOk && !TenantOk(JS))
      continue;
    Unit = JS.NextUnit++;
    std::shared_ptr<JobState> Out = It->second;
    if (JS.NextUnit >= JS.Units) {
      JS.Exhausted = true;
      Q.erase(It);
    }
    return Out;
  }
  return nullptr;
}

std::vector<std::shared_ptr<JobState>> JobQueue::sweepCancelled() {
  std::vector<std::shared_ptr<JobState>> Removed;
  for (auto It = Q.begin(); It != Q.end();) {
    JobState &JS = *It->second;
    if (!JS.CancelFlag.load(std::memory_order_relaxed)) {
      ++It;
      continue;
    }
    JS.SkippedUnits += JS.Units - JS.NextUnit;
    JS.NextUnit = JS.Units;
    JS.Exhausted = true;
    Removed.push_back(It->second);
    It = Q.erase(It);
  }
  return Removed;
}

size_t JobQueue::queuedJobs() const {
  size_t N = 0;
  for (const auto &[K, JS] : Q)
    N += JS->NextUnit == 0;
  return N;
}
