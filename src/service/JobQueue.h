//===- service/JobQueue.h - Priority job/unit queue -------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch queue of the analysis service: jobs ordered by
/// (priority desc, admission seq asc), claimed one *unit* at a time so a
/// large job never monopolizes the pool. Externally synchronized — every
/// method runs under the service mutex; the queue itself holds no lock
/// (it sits inside the dispatcher's critical section and must not
/// introduce a second ordering).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SERVICE_JOBQUEUE_H
#define RECAP_SERVICE_JOBQUEUE_H

#include "service/Job.h"

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace recap {

/// Priority queue over admitted, non-exhausted jobs. A job leaves the
/// queue when its last unit is claimed (Exhausted) or when a sweep
/// removes it (cancel/deadline); finished-unit bookkeeping lives in
/// JobState, not here.
class JobQueue {
public:
  /// Admits a job (must have Units > 0 and not be exhausted).
  void push(std::shared_ptr<JobState> JS);

  /// Claims the next unit in priority order whose tenant passes
  /// \p TenantOk, advancing the job's NextUnit. When the claim exhausts
  /// the job it is popped and marked Exhausted. Returns the job and sets
  /// \p Unit; null when nothing is claimable.
  std::shared_ptr<JobState>
  claimUnit(const std::function<bool(const JobState &)> &TenantOk,
            size_t &Unit);

  /// Removes every queued job whose CancelFlag is set, marking its
  /// remaining units skipped and the job exhausted. Returns the removed
  /// jobs so the caller can count them toward finalization.
  std::vector<std::shared_ptr<JobState>> sweepCancelled();

  /// Jobs that have not started (no unit claimed yet).
  size_t queuedJobs() const;

  /// Jobs present in the queue (started or not).
  size_t size() const { return Q.size(); }
  bool empty() const { return Q.empty(); }

private:
  /// Key orders by priority desc then admission seq asc.
  using Key = std::pair<int, uint64_t>;
  static Key keyOf(const JobState &JS) {
    return {-JS.Spec.Priority, JS.Id};
  }

  std::map<Key, std::shared_ptr<JobState>> Q;
};

} // namespace recap

#endif // RECAP_SERVICE_JOBQUEUE_H
