//===- service/LatencyHistogram.h - Log-scale latency histogram -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-bucket log-scale histogram for the service's latency surfaces
/// (DESIGN.md §12.3): admission→first-result and admission→finalization
/// per tenant. Buckets are powers of two in *microseconds* — bucket i
/// counts samples in (2^(i-1), 2^i] µs, bucket 0 counts ≤ 1 µs — so 48
/// buckets span sub-microsecond to ~8.9 years with ~2x relative error,
/// and a bucket index never depends on previously seen data.
///
/// Fixed buckets make merge() associative and commutative (element-wise
/// add, min/max fold): shard windows, tenant windows and multi-boot
/// aggregations combine in any order to the same histogram — the same
/// contract RuntimeStats::merge keeps for counters. quantile() reports
/// the *upper edge* of the bucket where the cumulative count crosses, a
/// conservative (never under-reported) latency estimate.
///
/// The type is a plain value (no atomics): the service updates it under
/// its histogram mutex and hands out copies; the wire layer serializes
/// those copies (docs/PROTOCOL.md `histogram` object).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SERVICE_LATENCYHISTOGRAM_H
#define RECAP_SERVICE_LATENCYHISTOGRAM_H

#include <cmath>
#include <cstdint>

namespace recap {

class LatencyHistogram {
public:
  static constexpr size_t NumBuckets = 48;

  /// Upper edge of bucket \p I in seconds: 2^I microseconds.
  static double bucketUpperSeconds(size_t I) {
    return std::ldexp(1.0, static_cast<int>(I)) * 1e-6;
  }

  void record(double Seconds) {
    if (Seconds < 0 || !std::isfinite(Seconds))
      return; // negative = "never happened" sentinel upstream
    uint64_t Us = static_cast<uint64_t>(Seconds * 1e6);
    size_t Idx = bucketOf(Us);
    ++Counts[Idx];
    ++Count_;
    Sum_ += Seconds;
    if (Count_ == 1 || Seconds < Min_)
      Min_ = Seconds;
    if (Seconds > Max_)
      Max_ = Seconds;
  }

  /// Associative fold: counts add, extrema widen.
  void merge(const LatencyHistogram &O) {
    if (O.Count_ == 0)
      return;
    for (size_t I = 0; I < NumBuckets; ++I)
      Counts[I] += O.Counts[I];
    if (Count_ == 0 || O.Min_ < Min_)
      Min_ = O.Min_;
    if (O.Max_ > Max_)
      Max_ = O.Max_;
    Count_ += O.Count_;
    Sum_ += O.Sum_;
  }

  uint64_t count() const { return Count_; }
  double sumSeconds() const { return Sum_; }
  double minSeconds() const { return Count_ ? Min_ : 0; }
  double maxSeconds() const { return Count_ ? Max_ : 0; }
  double meanSeconds() const {
    return Count_ ? Sum_ / static_cast<double>(Count_) : 0;
  }
  uint64_t bucketCount(size_t I) const {
    return I < NumBuckets ? Counts[I] : 0;
  }

  /// Conservative quantile: the upper edge of the first bucket whose
  /// cumulative count reaches ceil(Q * N). 0 when empty.
  double quantileSeconds(double Q) const {
    if (Count_ == 0)
      return 0;
    if (Q < 0)
      Q = 0;
    if (Q > 1)
      Q = 1;
    uint64_t Rank = static_cast<uint64_t>(
        std::ceil(Q * static_cast<double>(Count_)));
    if (Rank == 0)
      Rank = 1;
    uint64_t Cum = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      Cum += Counts[I];
      if (Cum >= Rank)
        return bucketUpperSeconds(I);
    }
    return bucketUpperSeconds(NumBuckets - 1);
  }

private:
  static size_t bucketOf(uint64_t Us) {
    // Smallest I with Us <= 2^I, i.e. bit_width(Us - 1): 0,1→0, 2→1,
    // 3..4→2, 5..8→3, ...
    if (Us <= 1)
      return 0;
    --Us;
    size_t Idx = 0;
    while (Us > 0 && Idx < NumBuckets - 1) {
      Us >>= 1;
      ++Idx;
    }
    return Idx;
  }

  uint64_t Counts[NumBuckets] = {};
  uint64_t Count_ = 0;
  double Sum_ = 0;
  double Min_ = 0;
  double Max_ = 0;
};

} // namespace recap

#endif // RECAP_SERVICE_LATENCYHISTOGRAM_H
