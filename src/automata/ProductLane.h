//===- automata/ProductLane.h - Anchored product-DFA candidates -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Candidate generation for the anchored-classical solver lane (DESIGN.md
/// §8). A `^…$`-anchored test()-style query pins the match to the whole
/// subject, so the set of inputs satisfying the clause is *exactly* a
/// classical language — no wrapped-model slack, no prefix/suffix
/// variables. All clause languages over one input variable therefore
/// combine into a single product DFA (positive languages intersected,
/// negative ones complemented), and candidate inputs are enumerated
/// straight off that product instead of running the generic bounded
/// search, whose lazy-DNF node budget the anchored membership structure
/// notoriously exhausts.
///
/// The enumeration budget is keyed on the product's transition density:
/// the BFS frontier grows like (density x numClasses)^depth, so sparse
/// products — the common case for anchored intersections — may explore
/// far more nodes for the same cost, while dense products are held near
/// the base budget so a hopeless enumeration fails fast into the general
/// lane.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_AUTOMATA_PRODUCTLANE_H
#define RECAP_AUTOMATA_PRODUCTLANE_H

#include "automata/Automaton.h"

namespace recap {

/// Construction/enumeration bounds for one anchored product. Decoupled
/// from smt/SolverLimits (this layer sits below the solvers); the cegar
/// lane maps its SolverLimits onto this.
struct ProductLimits {
  /// Subset-construction state cap for the product DFA.
  size_t StateLimit = 20000;
  /// Maximum candidate words enumerated off the product.
  size_t MaxCandidates = 64;
  /// Maximum candidate word length.
  size_t MaxWordLength = 16;
  /// Density-1 (fully dense) exploration budget; sparser products scale
  /// up from here (see exploreBudget).
  uint64_t BaseExplore = 20000;
};

/// One input variable's combined anchored language.
struct AnchoredProduct {
  bool Compiled = false;  ///< product construction stayed within limits
  bool Empty = false;     ///< language proven empty (a real Unsat witness)
  bool Cancelled = false; ///< construction/enumeration saw a cancel
  /// Enumeration drained every live path (EnumResult::Complete).
  bool Complete = false;
  double Density = 0;     ///< transition density of the product DFA
  uint64_t Budget = 0;    ///< the density-keyed exploration budget used
  std::shared_ptr<const Automaton> A;
  std::vector<UString> Words; ///< candidates, shortest first
};

/// The density-keyed exploration budget: sparse products get up to ~8x
/// the base (each frontier node has few live successors, so deep words
/// cost little), dense ones are clamped to it.
uint64_t anchoredExploreBudget(double Density, uint64_t BaseExplore);

/// Builds the product DFA of `Pos` intersected languages and `Neg`
/// complemented ones, each additionally intersected with \p Alphabet
/// (the caller's solver alphabet — for the cegar lane: Latin-1 minus the
/// meta markers, mirroring the decoration constraint and the Z3
/// backend's model space so verdicts agree with the general lane), then
/// enumerates candidates under the density-keyed budget.
AnchoredProduct
buildAnchoredProduct(const std::vector<CRegexRef> &Pos,
                     const std::vector<CRegexRef> &Neg,
                     const CRegexRef &Alphabet, const ProductLimits &Limits,
                     const std::atomic<bool> *Cancel = nullptr);

} // namespace recap

#endif // RECAP_AUTOMATA_PRODUCTLANE_H
