//===- automata/ProductLane.cpp - Anchored product-DFA candidates ----------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/ProductLane.h"

#include <algorithm>

using namespace recap;

uint64_t recap::anchoredExploreBudget(double Density, uint64_t BaseExplore) {
  Density = std::clamp(Density, 0.0, 1.0);
  // Linear in sparsity: a fully dense product stays at the base budget,
  // a near-empty transition table earns 8x. The exact shape matters less
  // than the monotonicity — sparse products pay per node what dense ones
  // pay per frontier layer.
  double Scale = 1.0 + (1.0 - Density) * 7.0;
  return static_cast<uint64_t>(static_cast<double>(BaseExplore) * Scale);
}

AnchoredProduct recap::buildAnchoredProduct(const std::vector<CRegexRef> &Pos,
                                            const std::vector<CRegexRef> &Neg,
                                            const CRegexRef &Alphabet,
                                            const ProductLimits &Limits,
                                            const std::atomic<bool> *Cancel) {
  AnchoredProduct Out;
  std::vector<CRegexRef> All;
  All.reserve(Pos.size() + Neg.size() + 1);
  All.push_back(Alphabet);
  for (const CRegexRef &P : Pos)
    All.push_back(P);
  for (const CRegexRef &N : Neg)
    All.push_back(cComplement(N));

  Result<Automaton> A =
      Automaton::compile(cIntersect(std::move(All)), Limits.StateLimit, Cancel);
  if (!A) {
    Out.Cancelled = Cancel && Cancel->load(std::memory_order_relaxed);
    return Out; // Compiled stays false -> caller falls back
  }
  Out.Compiled = true;
  Out.A = std::make_shared<Automaton>(A.take());
  if (Out.A->isEmptyLanguage()) {
    // Every clause language is exact (the lane's applicability
    // precondition), so an empty product is a genuine Unsat certificate.
    Out.Empty = true;
    Out.Complete = true;
    return Out;
  }

  Out.Density = Out.A->transitionDensity();
  Out.Budget = anchoredExploreBudget(Out.Density, Limits.BaseExplore);
  EnumOptions EO;
  EO.MaxCount = Limits.MaxCandidates;
  EO.MaxLen = Limits.MaxWordLength;
  EO.MaxExplored = Out.Budget;
  EO.Cancel = Cancel;
  EnumResult ER = Out.A->enumerateWordsEx(EO);
  Out.Words = std::move(ER.Words);
  Out.Complete = ER.Complete;
  Out.Cancelled = ER.Cancelled;
  return Out;
}
