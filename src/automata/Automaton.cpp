//===- automata/Automaton.cpp - Finite automata over code points ----------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/Automaton.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <set>

using namespace recap;

//===----------------------------------------------------------------------===//
// Alphabet
//===----------------------------------------------------------------------===//

Alphabet Alphabet::fromRegexes(const std::vector<CRegexRef> &Roots) {
  // Collect all interval boundaries.
  std::set<CodePoint> Cuts; // start points of classes
  Cuts.insert(0);
  std::function<void(const CRegexRef &)> Walk = [&](const CRegexRef &R) {
    if (R->K == CRegex::Kind::Class) {
      for (const CharSet::Interval &I : R->Cls.intervals()) {
        Cuts.insert(I.Lo);
        if (I.Hi < MaxCodePoint)
          Cuts.insert(I.Hi + 1);
      }
    }
    for (const CRegexRef &K : R->Kids)
      Walk(K);
  };
  for (const CRegexRef &R : Roots)
    Walk(R);

  Alphabet A;
  std::vector<CodePoint> Sorted(Cuts.begin(), Cuts.end());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    CodePoint Lo = Sorted[I];
    CodePoint Hi = I + 1 < Sorted.size() ? Sorted[I + 1] - 1 : MaxCodePoint;
    A.Classes.push_back(CharSet::range(Lo, Hi));
    A.Bounds.push_back(Lo);
    A.BoundClass.push_back(static_cast<uint32_t>(A.Classes.size() - 1));
  }
  return A;
}

Alphabet Alphabet::fromClassBounds(const std::vector<CodePoint> &Bounds) {
  Alphabet A;
  for (size_t I = 0; I < Bounds.size(); ++I) {
    CodePoint Lo = Bounds[I];
    CodePoint Hi = I + 1 < Bounds.size() ? Bounds[I + 1] - 1 : MaxCodePoint;
    A.Classes.push_back(CharSet::range(Lo, Hi));
    A.Bounds.push_back(Lo);
    A.BoundClass.push_back(static_cast<uint32_t>(A.Classes.size() - 1));
  }
  return A;
}

size_t Alphabet::classOf(CodePoint C) const {
  auto It = std::upper_bound(Bounds.begin(), Bounds.end(), C);
  assert(It != Bounds.begin() && "code point below the first class");
  return BoundClass[(It - Bounds.begin()) - 1];
}

std::vector<uint32_t> Alphabet::classesIn(const CharSet &S) const {
  std::vector<uint32_t> Out;
  for (size_t I = 0; I < Classes.size(); ++I) {
    CodePoint Lo = Classes[I].intervals().front().Lo;
    if (S.contains(Lo))
      Out.push_back(static_cast<uint32_t>(I));
  }
  return Out;
}

CodePoint Alphabet::representative(size_t Class) const {
  const CharSet &S = Classes[Class];
  // Prefer a printable ASCII member for readable generated words.
  static const CodePoint Preferred[] = {'a', 'b', '0', ' ', 'A', 'z', '9'};
  for (CodePoint P : Preferred)
    if (S.contains(P))
      return P;
  for (const CharSet::Interval &I : S.intervals()) {
    for (CodePoint C = std::max<CodePoint>(I.Lo, 0x20);
         C <= I.Hi && C < 0x7F; ++C)
      return C;
  }
  return *S.first();
}

//===----------------------------------------------------------------------===//
// NFA construction (Thompson) with embedded subset construction for
// Intersect/Complement.
//===----------------------------------------------------------------------===//

namespace {

struct NFA {
  // Delta[state][class] = target states; Eps[state] = epsilon targets.
  std::vector<std::vector<std::vector<uint32_t>>> Delta;
  std::vector<std::vector<uint32_t>> Eps;
  uint32_t Start = 0;
  std::vector<uint32_t> Accepts;
  size_t NumClasses = 0;

  uint32_t addState() {
    Delta.emplace_back(NumClasses);
    Eps.emplace_back();
    return static_cast<uint32_t>(Delta.size() - 1);
  }
};

class Builder {
public:
  Builder(const Alphabet &A, size_t StateLimit,
          const std::atomic<bool> *Cancel = nullptr)
      : A(A), StateLimit(StateLimit), Cancel(Cancel) {}

  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }

  /// Returns {start, accept} fragment within N, or nullopt on state blowup.
  struct Frag {
    uint32_t Start;
    uint32_t Accept;
  };

  std::optional<Frag> build(NFA &N, const CRegexRef &R) {
    if (N.Delta.size() > StateLimit || cancelled())
      return std::nullopt;
    switch (R->K) {
    case CRegex::Kind::Empty: {
      Frag F{N.addState(), N.addState()};
      return F; // no transitions: empty language
    }
    case CRegex::Kind::Epsilon: {
      Frag F{N.addState(), N.addState()};
      N.Eps[F.Start].push_back(F.Accept);
      return F;
    }
    case CRegex::Kind::Class: {
      Frag F{N.addState(), N.addState()};
      for (uint32_t C : A.classesIn(R->Cls))
        N.Delta[F.Start][C].push_back(F.Accept);
      return F;
    }
    case CRegex::Kind::Concat: {
      std::optional<Frag> Prev;
      for (const CRegexRef &K : R->Kids) {
        std::optional<Frag> F = build(N, K);
        if (!F)
          return std::nullopt;
        if (Prev)
          N.Eps[Prev->Accept].push_back(F->Start);
        else
          Prev = Frag{F->Start, 0};
        Prev->Accept = F->Accept;
      }
      assert(Prev && "cConcat normalizes empty sequences to Epsilon");
      return Prev;
    }
    case CRegex::Kind::Union: {
      Frag F{N.addState(), N.addState()};
      for (const CRegexRef &K : R->Kids) {
        std::optional<Frag> KF = build(N, K);
        if (!KF)
          return std::nullopt;
        N.Eps[F.Start].push_back(KF->Start);
        N.Eps[KF->Accept].push_back(F.Accept);
      }
      return F;
    }
    case CRegex::Kind::Star: {
      std::optional<Frag> KF = build(N, R->Kids[0]);
      if (!KF)
        return std::nullopt;
      Frag F{N.addState(), N.addState()};
      N.Eps[F.Start].push_back(KF->Start);
      N.Eps[F.Start].push_back(F.Accept);
      N.Eps[KF->Accept].push_back(KF->Start);
      N.Eps[KF->Accept].push_back(F.Accept);
      return F;
    }
    case CRegex::Kind::Intersect:
    case CRegex::Kind::Complement: {
      // Compile operands to DFAs, combine, then splice the result back in
      // as an NFA fragment.
      std::optional<DFA> D = buildDFA(R->Kids[0]);
      if (!D)
        return std::nullopt;
      if (R->K == CRegex::Kind::Complement) {
        for (size_t I = 0; I < D->Accept.size(); ++I)
          D->Accept[I] = !D->Accept[I];
      } else {
        for (size_t I = 1; I < R->Kids.size(); ++I) {
          std::optional<DFA> D2 = buildDFA(R->Kids[I]);
          if (!D2)
            return std::nullopt;
          D = productIntersect(*D, *D2);
          if (!D)
            return std::nullopt;
        }
      }
      return spliceDFA(N, *D);
    }
    }
    return std::nullopt;
  }

  std::optional<DFA> buildDFA(const CRegexRef &R) {
    NFA Sub;
    Sub.NumClasses = A.numClasses();
    std::optional<Frag> F = build(Sub, R);
    if (!F)
      return std::nullopt;
    Sub.Start = F->Start;
    Sub.Accepts = {F->Accept};
    return determinize(Sub);
  }

  std::optional<DFA> determinize(const NFA &N) {
    size_t NC = A.numClasses();
    auto Closure = [&](std::vector<uint32_t> States) {
      std::set<uint32_t> Seen(States.begin(), States.end());
      std::deque<uint32_t> Work(States.begin(), States.end());
      while (!Work.empty()) {
        uint32_t S = Work.front();
        Work.pop_front();
        for (uint32_t T : N.Eps[S])
          if (Seen.insert(T).second)
            Work.push_back(T);
      }
      return std::vector<uint32_t>(Seen.begin(), Seen.end());
    };

    std::set<uint32_t> AcceptSet(N.Accepts.begin(), N.Accepts.end());
    std::map<std::vector<uint32_t>, uint32_t> Ids;
    std::vector<std::vector<uint32_t>> StateSets;
    DFA D;
    D.NumClasses = NC;
    auto GetId = [&](std::vector<uint32_t> Set) {
      auto [It, New] = Ids.try_emplace(Set, StateSets.size());
      if (New) {
        StateSets.push_back(It->first);
        bool Acc = std::any_of(Set.begin(), Set.end(), [&](uint32_t S) {
          return AcceptSet.count(S) != 0;
        });
        D.Accept.push_back(Acc);
        D.Trans.resize(D.Accept.size() * NC, 0);
      }
      return It->second;
    };

    D.Start = GetId(Closure({N.Start}));
    for (uint32_t Cur = 0; Cur < StateSets.size(); ++Cur) {
      if (StateSets.size() > StateLimit || cancelled())
        return std::nullopt;
      std::vector<uint32_t> Set = StateSets[Cur]; // copy: StateSets grows
      for (size_t C = 0; C < NC; ++C) {
        std::set<uint32_t> Next;
        for (uint32_t S : Set)
          for (uint32_t T : N.Delta[S][C])
            Next.insert(T);
        uint32_t Id =
            GetId(Closure(std::vector<uint32_t>(Next.begin(), Next.end())));
        D.Trans[Cur * NC + C] = Id;
      }
    }
    return D;
  }

  std::optional<DFA> productIntersect(const DFA &X, const DFA &Y) {
    size_t NC = A.numClasses();
    DFA D;
    D.NumClasses = NC;
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> Ids;
    std::vector<std::pair<uint32_t, uint32_t>> States;
    auto GetId = [&](std::pair<uint32_t, uint32_t> P) {
      auto [It, New] = Ids.try_emplace(P, States.size());
      if (New) {
        States.push_back(P);
        D.Accept.push_back(X.accept(P.first) && Y.accept(P.second));
        D.Trans.resize(D.Accept.size() * NC, 0);
      }
      return It->second;
    };
    D.Start = GetId({X.Start, Y.Start});
    for (uint32_t Cur = 0; Cur < States.size(); ++Cur) {
      if (States.size() > StateLimit || cancelled())
        return std::nullopt;
      auto P = States[Cur];
      for (size_t C = 0; C < NC; ++C)
        D.Trans[Cur * NC + C] =
            GetId({X.next(P.first, C), Y.next(P.second, C)});
    }
    return D;
  }

  /// Adds the DFA's states to \p N as plain NFA states and returns a
  /// fragment with a single accept state.
  Frag spliceDFA(NFA &N, const DFA &D) {
    uint32_t Base = static_cast<uint32_t>(N.Delta.size());
    for (size_t I = 0; I < D.numStates(); ++I)
      N.addState();
    uint32_t AcceptAll = N.addState();
    for (uint32_t S = 0; S < D.numStates(); ++S) {
      for (size_t C = 0; C < A.numClasses(); ++C)
        N.Delta[Base + S][C].push_back(Base + D.next(S, C));
      if (D.accept(S))
        N.Eps[Base + S].push_back(AcceptAll);
    }
    return {Base + D.Start, AcceptAll};
  }

private:
  const Alphabet &A;
  size_t StateLimit;
  const std::atomic<bool> *Cancel;
};

} // namespace

//===----------------------------------------------------------------------===//
// Automaton
//===----------------------------------------------------------------------===//

Result<Automaton> Automaton::compile(const CRegexRef &R, size_t StateLimit,
                                     const std::atomic<bool> *Cancel) {
  Automaton Out;
  Out.A = Alphabet::fromRegexes({R});
  Builder B(Out.A, StateLimit, Cancel);
  NFA N;
  N.NumClasses = Out.A.numClasses();
  std::optional<Builder::Frag> F = B.build(N, R);
  if (!F)
    return Result<Automaton>::error(B.cancelled()
                                        ? "automaton construction cancelled"
                                        : "automaton state limit exceeded");
  N.Start = F->Start;
  N.Accepts = {F->Accept};
  std::optional<DFA> D = B.determinize(N);
  if (!D)
    return Result<Automaton>::error(B.cancelled()
                                        ? "automaton construction cancelled"
                                        : "automaton state limit exceeded");
  Out.D = std::move(*D);
  return Out;
}

Automaton Automaton::fromParts(Alphabet A, DFA D, double Density,
                               std::vector<bool> Live, size_t LiveCount,
                               std::shared_ptr<const void> Pin) {
  Automaton Out;
  Out.A = std::move(A);
  Out.D = std::move(D);
  Out.Pin = std::move(Pin);
  auto Info = std::make_shared<LiveInfo>();
  Info->Live = std::move(Live);
  Info->Count = LiveCount;
  Info->Density = Density;
  Out.LiveCache = std::move(Info);
  return Out;
}

bool Automaton::accepts(const UString &W) const {
  uint32_t S = D.Start;
  for (CodePoint C : W)
    S = D.next(S, static_cast<uint32_t>(A.classOf(C)));
  return D.accept(S);
}

bool Automaton::isEmptyLanguage() const { return !shortestWord().has_value(); }

std::optional<UString> Automaton::shortestWord() const {
  // BFS from the start state.
  std::vector<int64_t> Pred(D.numStates(), -1);     // predecessor state
  std::vector<uint32_t> PredClass(D.numStates(), 0);
  std::vector<bool> Seen(D.numStates(), false);
  std::deque<uint32_t> Work;
  Work.push_back(D.Start);
  Seen[D.Start] = true;
  while (!Work.empty()) {
    uint32_t S = Work.front();
    Work.pop_front();
    if (D.accept(S)) {
      UString W;
      uint32_t Cur = S;
      while (Pred[Cur] != -1) {
        W.push_back(A.representative(PredClass[Cur]));
        Cur = static_cast<uint32_t>(Pred[Cur]);
      }
      std::reverse(W.begin(), W.end());
      return W;
    }
    for (size_t C = 0; C < D.NumClasses; ++C) {
      uint32_t T = D.next(S, static_cast<uint32_t>(C));
      if (!Seen[T]) {
        Seen[T] = true;
        Pred[T] = S;
        PredClass[T] = static_cast<uint32_t>(C);
        Work.push_back(T);
      }
    }
  }
  return std::nullopt;
}

std::shared_ptr<const Automaton::LiveInfo> Automaton::liveInfo() const {
  if (std::shared_ptr<const LiveInfo> Hit = std::atomic_load(&LiveCache))
    return Hit;

  auto Info = std::make_shared<LiveInfo>();
  // Co-accessible states (those that can still reach an accept state):
  // searches stay out of dead regions.
  std::vector<std::vector<uint32_t>> Rev(D.numStates());
  for (uint32_t S = 0; S < D.numStates(); ++S)
    for (size_t C = 0; C < D.NumClasses; ++C)
      Rev[D.next(S, static_cast<uint32_t>(C))].push_back(S);
  std::vector<bool> Live(D.numStates(), false);
  std::deque<uint32_t> RWork;
  for (uint32_t S = 0; S < D.numStates(); ++S)
    if (D.accept(S)) {
      Live[S] = true;
      RWork.push_back(S);
    }
  while (!RWork.empty()) {
    uint32_t S = RWork.front();
    RWork.pop_front();
    for (uint32_t P : Rev[S])
      if (!Live[P]) {
        Live[P] = true;
        RWork.push_back(P);
      }
  }

  uint64_t LiveStates = 0, LiveTrans = 0;
  for (uint32_t S = 0; S < D.numStates(); ++S) {
    if (!Live[S])
      continue;
    ++LiveStates;
    for (size_t C = 0; C < D.NumClasses; ++C)
      if (Live[D.next(S, static_cast<uint32_t>(C))])
        ++LiveTrans;
  }
  uint64_t Total = LiveStates * D.NumClasses;
  Info->Live = std::move(Live);
  Info->Count = static_cast<size_t>(LiveStates);
  Info->Density = Total == 0 ? 0.0
                             : static_cast<double>(LiveTrans) /
                                   static_cast<double>(Total);
  std::atomic_store(&LiveCache,
                    std::shared_ptr<const LiveInfo>(std::move(Info)));
  return std::atomic_load(&LiveCache);
}

double Automaton::transitionDensity() const { return liveInfo()->Density; }

size_t Automaton::liveStateCount() const { return liveInfo()->Count; }

std::vector<UString> Automaton::enumerateWords(size_t MaxCount,
                                               size_t MaxLen) const {
  EnumOptions O;
  O.MaxCount = MaxCount;
  O.MaxLen = MaxLen;
  return enumerateWordsEx(O).Words;
}

EnumResult Automaton::enumerateWordsEx(const EnumOptions &Opts) const {
  EnumResult Res;
  std::shared_ptr<const LiveInfo> Info = liveInfo();
  const std::vector<bool> &Live = Info->Live;

  // BFS over (state, word) pairs, shortest first, bounded. Complete
  // stays true only if every live path was either fully expanded or
  // ended in a word we emitted — any truncation (count, node budget,
  // length cutoff with live continuations, cancel) clears it.
  struct Item {
    uint32_t State;
    UString Word;
  };
  std::deque<Item> Work;
  if (Live[D.Start])
    Work.push_back({D.Start, {}});
  Res.Complete = true;
  while (!Work.empty()) {
    if (Res.Words.size() >= Opts.MaxCount ||
        Res.Explored >= Opts.MaxExplored) {
      Res.Complete = false;
      break;
    }
    if ((Res.Explored & 0xFF) == 0 && Opts.Cancel &&
        Opts.Cancel->load(std::memory_order_relaxed)) {
      Res.Complete = false;
      Res.Cancelled = true;
      break;
    }
    Item It = std::move(Work.front());
    Work.pop_front();
    ++Res.Explored;
    if (D.accept(It.State))
      Res.Words.push_back(It.Word);
    bool HasLiveNext = false;
    for (size_t C = 0; C < D.NumClasses; ++C)
      if (Live[D.next(It.State, static_cast<uint32_t>(C))]) {
        HasLiveNext = true;
        break;
      }
    if (It.Word.size() >= Opts.MaxLen) {
      if (HasLiveNext)
        Res.Complete = false; // longer words exist beyond the bound
      continue;
    }
    for (size_t C = 0; C < D.NumClasses; ++C) {
      uint32_t T = D.next(It.State, static_cast<uint32_t>(C));
      if (!Live[T])
        continue;
      UString W = It.Word;
      W.push_back(A.representative(C));
      Work.push_back({T, std::move(W)});
    }
  }
  return Res;
}
