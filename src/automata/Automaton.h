//===- automata/Automaton.h - Finite automata over code points -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compilation of ClassicalRegex to finite automata with a mintermized
/// alphabet: all character sets occurring in a regex partition the code
/// point space into equivalence classes, and automata transition on class
/// indices. Intersect/Complement compile via subset construction.
///
/// Used by the local solver backend (word enumeration, membership pruning)
/// and by tests as an independent semantics for the regular fragment.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_AUTOMATA_AUTOMATON_H
#define RECAP_AUTOMATA_AUTOMATON_H

#include "automata/ClassicalRegex.h"
#include "support/Result.h"

#include <atomic>
#include <optional>

namespace recap {

/// A partition of [0, MaxCodePoint] into equivalence classes such that every
/// CharSet used to build it is a union of classes.
class Alphabet {
public:
  /// Builds the minterm partition of all Class sets in \p Roots.
  static Alphabet fromRegexes(const std::vector<CRegexRef> &Roots);

  /// Rebuilds a partition from per-class lower bounds (strictly
  /// increasing, first element 0). Every class fromRegexes() produces is
  /// one contiguous range, so the bounds are the partition's complete
  /// serialization (runtime/ArtifactStore.cpp).
  static Alphabet fromClassBounds(const std::vector<CodePoint> &Bounds);

  size_t numClasses() const { return Classes.size(); }
  const CharSet &charsOf(size_t Class) const { return Classes[Class]; }
  /// Equivalence class of one code point.
  size_t classOf(CodePoint C) const;
  /// Indices of the classes fully contained in \p S (S must be a union of
  /// classes, which holds for any set used during construction).
  std::vector<uint32_t> classesIn(const CharSet &S) const;
  /// A printable representative of the class (used for word generation).
  CodePoint representative(size_t Class) const;

private:
  std::vector<CharSet> Classes;  // indexed by class
  std::vector<CodePoint> Bounds; // sorted lower bounds of each class
  std::vector<uint32_t> BoundClass;
};

/// Deterministic, complete automaton over an Alphabet. Two storage
/// representations behind one accessor surface: construction fills the
/// owning vectors; a snapshot-mapped DFA instead points straight into the
/// mmapped artifact arena (view mode) so N processes share one copy of
/// the transition table. All readers go through accept()/next()/
/// numStates(), which makes match/enumerate/density code
/// representation-agnostic.
class DFA {
public:
  uint32_t Start = 0;
  std::vector<bool> Accept;
  /// Trans[state * numClasses + class] = next state. Complete (has a sink).
  std::vector<uint32_t> Trans;
  size_t NumClasses = 0;

  /// View mode: non-null ViewTrans switches every accessor to the mapped
  /// bytes (one u8 per state for accept, the flat u32 table for Trans).
  /// Lifetime of the pointed-to memory is the owning Automaton's Pin.
  const uint8_t *ViewAccept = nullptr;
  const uint32_t *ViewTrans = nullptr;
  size_t ViewStates = 0;

  bool isView() const { return ViewTrans != nullptr; }
  size_t numStates() const { return isView() ? ViewStates : Accept.size(); }
  bool accept(uint32_t State) const {
    return isView() ? ViewAccept[State] != 0
                    : static_cast<bool>(Accept[State]);
  }
  uint32_t next(uint32_t State, uint32_t Class) const {
    return (isView() ? ViewTrans : Trans.data())[State * NumClasses + Class];
  }
};

/// Bounds and cancellation for enumerateWordsEx.
struct EnumOptions {
  size_t MaxCount = 64;
  size_t MaxLen = 16;
  /// BFS node budget (items taken off the frontier).
  uint64_t MaxExplored = 500000;
  /// Cooperative cancellation; polled every few hundred nodes.
  const std::atomic<bool> *Cancel = nullptr;
};

/// Enumeration outcome with an exhaustiveness certificate: Complete means
/// the BFS drained every live path without hitting MaxCount, MaxExplored,
/// the length bound or a cancel — i.e. Words (one representative per
/// character class along each path) covers the *entire* language shape,
/// which lets callers turn "no candidate survived" into a real Unsat.
struct EnumResult {
  std::vector<UString> Words;
  bool Complete = false;
  bool Cancelled = false;
  uint64_t Explored = 0;
};

/// A compiled regular language: DFA plus its alphabet.
class Automaton {
public:
  /// Compiles \p R; fails if subset construction exceeds \p StateLimit
  /// states, or when \p Cancel is raised mid-construction (the error
  /// message then contains "cancelled").
  static Result<Automaton> compile(const CRegexRef &R,
                                   size_t StateLimit = 100000,
                                   const std::atomic<bool> *Cancel = nullptr);

  /// Reassembles an automaton from deserialized parts. \p Live /
  /// \p Density / \p LiveCount were computed at save time and pre-seed
  /// the co-accessibility cache, so a mapped automaton never re-runs the
  /// reverse BFS. \p Pin keeps the backing storage (a MappedArtifactStore)
  /// alive for view-mode DFAs; owned DFAs pass null.
  static Automaton fromParts(Alphabet A, DFA D, double Density,
                             std::vector<bool> Live, size_t LiveCount,
                             std::shared_ptr<const void> Pin = nullptr);

  bool accepts(const UString &W) const;
  bool isEmptyLanguage() const;
  /// Shortest accepted word (ties broken towards printable characters).
  std::optional<UString> shortestWord() const;
  /// Up to \p MaxCount accepted words of length <= MaxLen, shortest first.
  std::vector<UString> enumerateWords(size_t MaxCount, size_t MaxLen) const;
  /// enumerateWords with an explicit node budget, cooperative
  /// cancellation and an exhaustiveness certificate.
  EnumResult enumerateWordsEx(const EnumOptions &Opts) const;

  /// Fraction of transition-table entries that lead into the live
  /// (co-accessible) part of the DFA, in [0, 1]. This is the branching
  /// pressure word enumeration faces: the BFS frontier grows roughly
  /// like (density x numClasses)^depth, so sparse products (typical for
  /// anchored clause intersections) enumerate deep words cheaply while
  /// dense ones explode. The anchored lane keys its exploration budget
  /// on this number.
  double transitionDensity() const;

  /// Number of live (co-accessible) states. Serialized alongside the
  /// density so EnumOptions sizing on mapped automata skips the reverse
  /// BFS too.
  size_t liveStateCount() const;

  /// Copy of the live-state mask (snapshot writers; one bit per state).
  std::vector<bool> liveMask() const { return liveInfo()->Live; }

  const DFA &dfa() const { return D; }
  const Alphabet &alphabet() const { return A; }

private:
  /// Live set + the numbers derived from it, computed once per automaton
  /// (or adopted from a snapshot record) and shared by density queries
  /// and every enumeration.
  struct LiveInfo {
    std::vector<bool> Live;
    size_t Count = 0;
    double Density = 0;
  };
  /// Build-or-hit on LiveCache. Published with shared_ptr atomic ops:
  /// concurrent first-touchers may both compute (identical, immutable
  /// result; last writer wins) but never tear.
  std::shared_ptr<const LiveInfo> liveInfo() const;

  Alphabet A;
  DFA D;
  /// Keeps a mapped artifact store alive while a view-mode D exists.
  std::shared_ptr<const void> Pin;
  mutable std::shared_ptr<const LiveInfo> LiveCache;
};

} // namespace recap

#endif // RECAP_AUTOMATA_AUTOMATON_H
