//===- automata/ClassicalRegex.h - Pure regular expressions ----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ClassicalRegex (CRegex) is the paper's "classical regular expression":
/// the target language of the model (§4), with no captures, backreferences
/// or assertions. Intersect and Complement nodes are included because the
/// model lowers lookaheads to language intersection (Table 2) — both Z3's
/// re theory and the automata library handle them natively, keeping the
/// regular approximation t̂ total for backreference-free terms.
///
/// CRegex values are immutable and shared (CRegexRef); the builder
/// functions perform light algebraic simplification.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_AUTOMATA_CLASSICALREGEX_H
#define RECAP_AUTOMATA_CLASSICALREGEX_H

#include "support/CharSet.h"

#include <memory>
#include <string>
#include <vector>

namespace recap {

struct CRegex;
using CRegexRef = std::shared_ptr<const CRegex>;

struct CRegex {
  enum class Kind : uint8_t {
    Empty,      ///< the empty language ∅
    Epsilon,    ///< { ε }
    Class,      ///< one character from Cls
    Concat,     ///< Kids in sequence
    Union,      ///< any of Kids
    Star,       ///< Kids[0]*
    Intersect,  ///< all of Kids
    Complement, ///< Σ* minus Kids[0]
  };

  Kind K;
  CharSet Cls;                ///< Class only
  std::vector<CRegexRef> Kids;

  explicit CRegex(Kind K) : K(K) {}

  /// Debug rendering in approximately POSIX syntax.
  std::string str() const;

  /// True if ε is in the language (syntactic nullability; exact for
  /// Empty/Epsilon/Class/Concat/Union/Star, conservative for
  /// Intersect/Complement).
  bool nullable() const;
};

CRegexRef cEmpty();
CRegexRef cEpsilon();
CRegexRef cClass(CharSet S);
CRegexRef cChar(CodePoint C);
/// Concatenation of literal characters.
CRegexRef cLiteral(const UString &S);
CRegexRef cConcat(std::vector<CRegexRef> Kids);
CRegexRef cConcat(CRegexRef A, CRegexRef B);
CRegexRef cUnion(std::vector<CRegexRef> Kids);
CRegexRef cUnion(CRegexRef A, CRegexRef B);
CRegexRef cStar(CRegexRef A);
/// A A* — kept as a helper, not a node kind (Table 1 rewriting).
CRegexRef cPlus(CRegexRef A);
/// A | ε.
CRegexRef cOpt(CRegexRef A);
CRegexRef cIntersect(std::vector<CRegexRef> Kids);
CRegexRef cIntersect(CRegexRef A, CRegexRef B);
CRegexRef cComplement(CRegexRef A);
/// Σ (any single character).
CRegexRef cAnyChar();
/// Σ*.
CRegexRef cAnyStar();
/// R repeated exactly N times.
CRegexRef cRepeat(CRegexRef A, size_t N);

} // namespace recap

#endif // RECAP_AUTOMATA_CLASSICALREGEX_H
