//===- automata/ClassicalRegex.cpp - Pure regular expressions ------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/ClassicalRegex.h"

using namespace recap;

static CRegexRef make(CRegex::Kind K) {
  return std::make_shared<CRegex>(K);
}

CRegexRef recap::cEmpty() {
  static const CRegexRef R = make(CRegex::Kind::Empty);
  return R;
}

CRegexRef recap::cEpsilon() {
  static const CRegexRef R = make(CRegex::Kind::Epsilon);
  return R;
}

CRegexRef recap::cClass(CharSet S) {
  if (S.isEmpty())
    return cEmpty();
  auto R = std::make_shared<CRegex>(CRegex::Kind::Class);
  R->Cls = std::move(S);
  return R;
}

CRegexRef recap::cChar(CodePoint C) { return cClass(CharSet::single(C)); }

CRegexRef recap::cLiteral(const UString &S) {
  std::vector<CRegexRef> Kids;
  Kids.reserve(S.size());
  for (CodePoint C : S)
    Kids.push_back(cChar(C));
  return cConcat(std::move(Kids));
}

CRegexRef recap::cConcat(std::vector<CRegexRef> Kids) {
  std::vector<CRegexRef> Flat;
  for (CRegexRef &K : Kids) {
    if (K->K == CRegex::Kind::Empty)
      return cEmpty();
    if (K->K == CRegex::Kind::Epsilon)
      continue;
    if (K->K == CRegex::Kind::Concat) {
      Flat.insert(Flat.end(), K->Kids.begin(), K->Kids.end());
      continue;
    }
    Flat.push_back(std::move(K));
  }
  if (Flat.empty())
    return cEpsilon();
  if (Flat.size() == 1)
    return Flat[0];
  auto R = std::make_shared<CRegex>(CRegex::Kind::Concat);
  R->Kids = std::move(Flat);
  return R;
}

CRegexRef recap::cConcat(CRegexRef A, CRegexRef B) {
  return cConcat(std::vector<CRegexRef>{std::move(A), std::move(B)});
}

CRegexRef recap::cUnion(std::vector<CRegexRef> Kids) {
  std::vector<CRegexRef> Flat;
  for (CRegexRef &K : Kids) {
    if (K->K == CRegex::Kind::Empty)
      continue;
    if (K->K == CRegex::Kind::Union) {
      Flat.insert(Flat.end(), K->Kids.begin(), K->Kids.end());
      continue;
    }
    Flat.push_back(std::move(K));
  }
  if (Flat.empty())
    return cEmpty();
  if (Flat.size() == 1)
    return Flat[0];
  auto R = std::make_shared<CRegex>(CRegex::Kind::Union);
  R->Kids = std::move(Flat);
  return R;
}

CRegexRef recap::cUnion(CRegexRef A, CRegexRef B) {
  return cUnion(std::vector<CRegexRef>{std::move(A), std::move(B)});
}

CRegexRef recap::cStar(CRegexRef A) {
  if (A->K == CRegex::Kind::Empty || A->K == CRegex::Kind::Epsilon)
    return cEpsilon();
  if (A->K == CRegex::Kind::Star)
    return A;
  auto R = std::make_shared<CRegex>(CRegex::Kind::Star);
  R->Kids.push_back(std::move(A));
  return R;
}

CRegexRef recap::cPlus(CRegexRef A) { return cConcat(A, cStar(A)); }

CRegexRef recap::cOpt(CRegexRef A) { return cUnion(std::move(A), cEpsilon()); }

CRegexRef recap::cIntersect(std::vector<CRegexRef> Kids) {
  std::vector<CRegexRef> Flat;
  for (CRegexRef &K : Kids) {
    if (K->K == CRegex::Kind::Empty)
      return cEmpty();
    if (K->K == CRegex::Kind::Intersect) {
      Flat.insert(Flat.end(), K->Kids.begin(), K->Kids.end());
      continue;
    }
    Flat.push_back(std::move(K));
  }
  if (Flat.empty())
    return cAnyStar();
  if (Flat.size() == 1)
    return Flat[0];
  auto R = std::make_shared<CRegex>(CRegex::Kind::Intersect);
  R->Kids = std::move(Flat);
  return R;
}

CRegexRef recap::cIntersect(CRegexRef A, CRegexRef B) {
  return cIntersect(std::vector<CRegexRef>{std::move(A), std::move(B)});
}

CRegexRef recap::cComplement(CRegexRef A) {
  if (A->K == CRegex::Kind::Complement)
    return A->Kids[0];
  auto R = std::make_shared<CRegex>(CRegex::Kind::Complement);
  R->Kids.push_back(std::move(A));
  return R;
}

CRegexRef recap::cAnyChar() {
  static const CRegexRef R = cClass(CharSet::all());
  return R;
}

CRegexRef recap::cAnyStar() {
  static const CRegexRef R = cStar(cAnyChar());
  return R;
}

CRegexRef recap::cRepeat(CRegexRef A, size_t N) {
  std::vector<CRegexRef> Kids(N, A);
  return cConcat(std::move(Kids));
}

bool CRegex::nullable() const {
  switch (K) {
  case Kind::Empty:
  case Kind::Class:
    return false;
  case Kind::Epsilon:
  case Kind::Star:
    return true;
  case Kind::Concat:
    for (const CRegexRef &C : Kids)
      if (!C->nullable())
        return false;
    return true;
  case Kind::Union:
    for (const CRegexRef &C : Kids)
      if (C->nullable())
        return true;
    return false;
  case Kind::Intersect:
    for (const CRegexRef &C : Kids)
      if (!C->nullable())
        return false;
    return true; // conservative
  case Kind::Complement:
    return !Kids[0]->nullable(); // conservative
  }
  return false;
}

std::string CRegex::str() const {
  switch (K) {
  case Kind::Empty:
    return "∅";
  case Kind::Epsilon:
    return "ε";
  case Kind::Class:
    return Cls.str();
  case Kind::Concat: {
    std::string S;
    for (const CRegexRef &C : Kids)
      S += C->str();
    return S;
  }
  case Kind::Union: {
    std::string S = "(";
    for (size_t I = 0; I < Kids.size(); ++I) {
      if (I)
        S += "|";
      S += Kids[I]->str();
    }
    return S + ")";
  }
  case Kind::Star:
    return "(" + Kids[0]->str() + ")*";
  case Kind::Intersect: {
    std::string S = "(";
    for (size_t I = 0; I < Kids.size(); ++I) {
      if (I)
        S += "&";
      S += Kids[I]->str();
    }
    return S + ")";
  }
  case Kind::Complement:
    return "~(" + Kids[0]->str() + ")";
  }
  return "?";
}
