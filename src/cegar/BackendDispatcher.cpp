//===- cegar/BackendDispatcher.cpp - Feature-routed backend choice ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/BackendDispatcher.h"

#include <algorithm>

using namespace recap;

BackendDispatcher::BackendDispatcher(SolverBackend &Classical,
                                     SolverBackend &General,
                                     std::shared_ptr<RuntimeStats> Stats)
    : Classical(&Classical), General(&General), Stats(std::move(Stats)) {
  if (!this->Stats)
    this->Stats = std::make_shared<RuntimeStats>();
}

BackendDispatcher::BackendDispatcher(SolverBackend &General,
                                     std::shared_ptr<RuntimeStats> Stats)
    : OwnedClassical(makeLocalBackend()), Classical(OwnedClassical.get()),
      General(&General), Stats(std::move(Stats)) {
  if (!this->Stats)
    this->Stats = std::make_shared<RuntimeStats>();
}

bool BackendDispatcher::isClassicalProblem(
    const std::vector<PathClause> &Clauses) {
  bool AnyRegex = false;
  for (const PathClause &C : Clauses) {
    if (!C.Query)
      continue;
    AnyRegex = true;
    const std::shared_ptr<CompiledRegex> &CR = C.Query->Oracle->compiled();
    if (!CR)
      return false;
    // Cached on the CompiledRegex: computed once per distinct pattern.
    const RegexFeatures &F = CR->features();
    if (!F.isClassical())
      return false;
    // Capture-bearing classical patterns stay in the lane for
    // test()-style clauses: the query never validates captures, so the
    // bounded search only has to witness membership — the capture
    // variables are derived from segment equalities and cost it nothing.
    // exec()-style clauses (ValidateCaptures) still need the general
    // lane's exact capture assignments.
    if (F.CaptureGroups != 0 && C.Query->ValidateCaptures)
      return false;
  }
  return AnyRegex;
}

bool BackendDispatcher::isAnchoredProblem(
    const std::vector<PathClause> &Clauses) {
  bool AnyRegex = false;
  for (const PathClause &C : Clauses) {
    if (!C.Query)
      continue;
    AnyRegex = true;
    const RegexQuery &Q = *C.Query;
    // test()-style only: the lane produces words, not capture tuples.
    if (Q.ValidateCaptures)
      return false;
    // A non-trivial position constraint (sticky/global) couples the
    // match to lastIndex; the whole-string equivalence needs match-
    // anywhere semantics.
    if (Q.Position->Kind != TermKind::BoolConst || !Q.Position->BoolVal)
      return false;
    // The product is built per input *variable*; compound input terms
    // would need the general model's decomposition.
    if (Q.Input->Kind != TermKind::StrVar)
      return false;
    const std::shared_ptr<CompiledRegex> &CR = Q.Oracle->compiled();
    if (!CR || !CR->anchoredLanguage())
      return false;
  }
  return AnyRegex;
}

void BackendDispatcher::configureBreakers(CircuitBreaker::Options Opts,
                                          StatCounter *Opens) {
  BreakClassical = std::make_unique<CircuitBreaker>(Opts, Opens);
  BreakGeneral = std::make_unique<CircuitBreaker>(Opts, Opens);
}

CircuitBreaker *BackendDispatcher::breakerFor(SolverBackend *B) {
  if (B == Classical)
    return BreakClassical.get();
  if (B == General)
    return BreakGeneral.get();
  return nullptr;
}

bool BackendDispatcher::laneOpen(SolverBackend *B) {
  CircuitBreaker *Br = breakerFor(B);
  return Br && Br->isOpen();
}

void BackendDispatcher::degradeForBreakers(DispatchDecision &D) {
  if (!BreakClassical && !BreakGeneral)
    return;
  if (D.Lane == DispatchLane::Classical && laneOpen(Classical)) {
    if (!laneOpen(General)) {
      D.Lane = DispatchLane::General;
      D.Backend = General;
      ++Stats->BreakerReroutes;
    } else {
      D.Lane = DispatchLane::Degraded;
      D.Backend = nullptr;
    }
  } else if (D.Lane == DispatchLane::General && laneOpen(General)) {
    if (!laneOpen(Classical)) {
      // Sound detour: the classical lane solves the same term-level
      // problem over the same classical approximations — its Sat models
      // still go through CEGAR validation, its Unsat only comes from an
      // exhaustive proof, and anything else is Unknown.
      D.Lane = DispatchLane::Classical;
      D.Backend = Classical;
      ++Stats->BreakerReroutes;
    } else {
      D.Lane = DispatchLane::Degraded;
      D.Backend = nullptr;
    }
  }
}

SolverBackend &BackendDispatcher::route(
    const std::vector<PathClause> &Clauses) {
  if (isClassicalProblem(Clauses)) {
    ++Stats->DispatchClassical;
    return *Classical;
  }
  ++Stats->DispatchGeneral;
  return *General;
}

std::shared_ptr<const AnchoredProduct>
BackendDispatcher::productFor(const AnchoredVarPlan &V) {
  ProductKey Key;
  Key.reserve(V.Queries.size());
  for (size_t I = 0; I < V.Queries.size(); ++I) {
    const std::optional<CRegexRef> &L =
        V.Queries[I]->Oracle->compiled()->anchoredLanguage();
    Key.emplace_back(*L, V.Polarity[I]);
  }
  std::sort(Key.begin(), Key.end());
  auto It = Products.find(Key);
  if (It != Products.end())
    return It->second;

  // The dominant key shape — one positive anchored pattern — delegates to
  // the CompiledRegex memo, so the product is shared across dispatcher
  // shards and adopted from snapshots (zero-copy across processes). A
  // limits mismatch returns null and we build locally as before.
  if (V.Queries.size() == 1 && V.Polarity[0]) {
    if (std::shared_ptr<const AnchoredProduct> P =
            V.Queries[0]->Oracle->compiled()->anchoredProduct(
                Policy.Product)) {
      Products.emplace(std::move(Key), P);
      return P;
    }
  }

  if (!AnchoredAlphabet)
    AnchoredAlphabet =
        cStar(cClass(CharSet::range(0, 0xFF).minus(CharSet::metas())));
  std::vector<CRegexRef> Pos, Neg;
  for (size_t I = 0; I < V.Queries.size(); ++I) {
    const CRegexRef &L = *V.Queries[I]->Oracle->compiled()->anchoredLanguage();
    (V.Polarity[I] ? Pos : Neg).push_back(L);
  }
  auto P = std::make_shared<const AnchoredProduct>(
      buildAnchoredProduct(Pos, Neg, AnchoredAlphabet, Policy.Product));
  Products.emplace(std::move(Key), P);
  return P;
}

DispatchDecision
BackendDispatcher::decide(const std::vector<PathClause> &Clauses) {
  DispatchDecision D;
  if (Policy.AnchoredLane && isAnchoredProblem(Clauses)) {
    D.Lane = DispatchLane::Anchored;
    // Group the regex clauses by input variable.
    std::map<std::string, size_t> VarIdx;
    size_t NRegex = 0;
    for (const PathClause &C : Clauses) {
      if (!C.Query)
        continue;
      ++NRegex;
      const std::string &Name = C.Query->Input->Name;
      auto [It, New] = VarIdx.emplace(Name, D.Plan.Vars.size());
      if (New)
        D.Plan.Vars.emplace_back().Var = Name;
      AnchoredVarPlan &V = D.Plan.Vars[It->second];
      V.Queries.push_back(C.Query.get());
      V.Polarity.push_back(C.Polarity);
    }
    D.Plan.Viable = true;
    bool Ambiguous = NRegex >= Policy.RaceClauseThreshold;
    for (AnchoredVarPlan &V : D.Plan.Vars) {
      V.Product = productFor(V);
      if (!V.Product->Compiled || V.Product->Cancelled) {
        D.Plan.Viable = false;
      } else if (!V.Product->Empty) {
        if (V.Product->Density >= Policy.RaceDensityThreshold ||
            !V.Product->Complete)
          Ambiguous = true;
        if (V.Product->Words.empty())
          D.Plan.Viable = false;
      }
    }
    // Race only when the anchored lane has something to race with: a
    // non-viable plan (short of an Unsat certificate) answers Unknown
    // immediately, which the plain fallback path handles without the
    // thread fan-out. An open general-lane breaker also suppresses the
    // race — its half of the fan-out would be burning a known-bad lane.
    if (Policy.Race && D.Plan.Viable && Ambiguous && !laneOpen(General))
      D.Lane = DispatchLane::Race;
    return D;
  }
  if (isClassicalProblem(Clauses)) {
    ++Stats->DispatchClassical;
    D.Lane = DispatchLane::Classical;
    D.Backend = Classical;
  } else {
    ++Stats->DispatchGeneral;
    D.Lane = DispatchLane::General;
    D.Backend = General;
  }
  degradeForBreakers(D);
  return D;
}
