//===- cegar/BackendDispatcher.cpp - Feature-routed backend choice ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/BackendDispatcher.h"

using namespace recap;

BackendDispatcher::BackendDispatcher(SolverBackend &Classical,
                                     SolverBackend &General,
                                     std::shared_ptr<RuntimeStats> Stats)
    : Classical(&Classical), General(&General), Stats(std::move(Stats)) {
  if (!this->Stats)
    this->Stats = std::make_shared<RuntimeStats>();
}

BackendDispatcher::BackendDispatcher(SolverBackend &General,
                                     std::shared_ptr<RuntimeStats> Stats)
    : OwnedClassical(makeLocalBackend()), Classical(OwnedClassical.get()),
      General(&General), Stats(std::move(Stats)) {
  if (!this->Stats)
    this->Stats = std::make_shared<RuntimeStats>();
}

bool BackendDispatcher::isClassicalProblem(
    const std::vector<PathClause> &Clauses) {
  bool AnyRegex = false;
  for (const PathClause &C : Clauses) {
    if (!C.Query)
      continue;
    AnyRegex = true;
    const std::shared_ptr<CompiledRegex> &CR = C.Query->Oracle->compiled();
    if (!CR)
      return false;
    // Cached on the CompiledRegex: computed once per distinct pattern.
    const RegexFeatures &F = CR->features();
    if (!F.isClassical())
      return false;
    // Capture-bearing classical patterns stay in the lane for
    // test()-style clauses: the query never validates captures, so the
    // bounded search only has to witness membership — the capture
    // variables are derived from segment equalities and cost it nothing.
    // exec()-style clauses (ValidateCaptures) still need the general
    // lane's exact capture assignments.
    if (F.CaptureGroups != 0 && C.Query->ValidateCaptures)
      return false;
  }
  return AnyRegex;
}

SolverBackend &BackendDispatcher::route(
    const std::vector<PathClause> &Clauses) {
  if (isClassicalProblem(Clauses)) {
    ++Stats->DispatchClassical;
    return *Classical;
  }
  ++Stats->DispatchGeneral;
  return *General;
}
