//===- cegar/AnchoredLane.h - Anchored-classical solver lane ----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The anchored-classical lane (DESIGN.md §8): path conditions whose
/// regex clauses are all `^…$`-anchored test()-style memberships with an
/// anchored-exact language (model/Approx.h anchoredExactLanguage) are
/// answered from product DFAs instead of the CEGAR loop. Per input
/// variable, the clause languages (negatives complemented) intersect into
/// one product automaton over the solver alphabet; an empty product is an
/// Unsat certificate, and enumerated product words — validated against
/// the concrete matcher and the problem's plain clauses — yield Sat
/// models with zero refinement rounds. Everything else returns Unknown
/// and the caller falls back to the general dispatch path, so the lane
/// can only change solve times, never verdicts.
///
/// The lane touches no SMT backend and no shared mutable state: it is
/// safe to run on a worker thread against a read-only AnchoredPlan while
/// the general lane races it (BackendDispatcher's racing mode), with
/// cooperative cancellation through an atomic flag.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_CEGAR_ANCHOREDLANE_H
#define RECAP_CEGAR_ANCHOREDLANE_H

#include "automata/ProductLane.h"
#include "cegar/CegarSolver.h"

#include <atomic>

namespace recap {

/// One input variable's slice of an anchored problem: the regex clauses
/// constraining it and their combined product.
struct AnchoredVarPlan {
  std::string Var; ///< the input StrVar's name
  std::vector<const RegexQuery *> Queries;
  std::vector<bool> Polarity; ///< parallel to Queries
  std::shared_ptr<const AnchoredProduct> Product;
};

/// The dispatcher's prepared plan for one anchored problem
/// (BackendDispatcher::decide). Products are built (and cached) by the
/// dispatcher; the plan itself is immutable input to solveAnchored.
struct AnchoredPlan {
  std::vector<AnchoredVarPlan> Vars;
  /// Every product compiled within limits, uncancelled, and non-empty
  /// products enumerated at least one candidate. A non-viable plan can
  /// still carry an Unsat certificate (an Empty product), which
  /// solveAnchored honours before giving up.
  bool Viable = false;
};

/// Solves an anchored problem from \p Plan: Unsat iff some variable's
/// product language is empty or the plain clauses force a boolean
/// contradiction; Sat when a combination of enumerated product words
/// passes the concrete matcher on every regex clause and evaluates every
/// plain clause true (under Assignment defaults for unmentioned
/// variables — the same defaults backend models carry). Unknown
/// otherwise; the caller falls back. \p Cancel, when set, is polled
/// cooperatively (racing mode).
CegarResult solveAnchored(const std::vector<PathClause> &Clauses,
                          const AnchoredPlan &Plan,
                          const std::atomic<bool> *Cancel = nullptr);

} // namespace recap

#endif // RECAP_CEGAR_ANCHOREDLANE_H
