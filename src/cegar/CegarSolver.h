//===- cegar/CegarSolver.h - Matching-precedence refinement -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: a counterexample-guided abstraction
/// refinement loop that removes model solutions violating ES6 matching
/// precedence (greediness). Candidate assignments from the SMT backend are
/// validated against the concrete ES6 matcher; disagreement refines the
/// problem by either pinning captures for the candidate word (positive
/// constraints) or excluding the word (both polarities).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_CEGAR_CEGARSOLVER_H
#define RECAP_CEGAR_CEGARSOLVER_H

#include "matcher/Matcher.h"
#include "model/ModelBuilder.h"
#include "smt/Solver.h"
#include "support/LruMap.h"

#include <algorithm>
#include <memory>
#include <string>

namespace recap {

/// One capturing-language membership constraint
/// (w, C0..Cn) ⊡ Lc(R) occurring in a path condition, bundled with
/// everything Algorithm 1 needs to validate candidate assignments.
struct RegexQuery {
  /// Concrete ES6 matcher for R (the oracle).
  std::shared_ptr<RegExpObject> Oracle;
  /// The symbolic model of one wrapped match of R.
  SymbolicMatch Model;
  /// The (undecorated) subject term.
  TermRef Input;
  /// lastIndex at query time (Int term; constant 0 for non-global).
  TermRef LastIndex;
  /// Decoration and alphabet constraints: Word = 〈 ++ Input ++ 〉, the
  /// input is meta-free, and position constraints for sticky/global.
  TermRef Decoration;
  /// Position constraint relating MatchStart and LastIndex (or true).
  TermRef Position;
  /// Validate capture assignments (exec) or only match/no-match (test).
  bool ValidateCaptures = true;

  /// Assertion for (w, C...) ∈ Lc(R) at the required position.
  TermRef positiveAssertion() const;
  /// Assertion for the negated constraint (§4.4 / exact fast path).
  TermRef negativeAssertion() const;
};

/// One clause of a path condition: either a plain boolean term or a regex
/// membership with a polarity.
struct PathClause {
  TermRef Plain;                     ///< non-regex clause (may be null)
  std::shared_ptr<RegexQuery> Query; ///< regex clause (may be null)
  bool Polarity = true;

  static PathClause plain(TermRef T, bool Pol = true) {
    PathClause C;
    C.Plain = std::move(T);
    C.Polarity = Pol;
    return C;
  }
  static PathClause regex(std::shared_ptr<RegexQuery> Q, bool Pol = true) {
    PathClause C;
    C.Query = std::move(Q);
    C.Polarity = Pol;
    return C;
  }
  PathClause negated() const {
    PathClause C = *this;
    C.Polarity = !C.Polarity;
    return C;
  }
};

struct CegarOptions {
  /// Maximum refinement rounds before returning Unknown (§5.3; the
  /// evaluation used 20).
  unsigned RefinementLimit = 20;
  /// When false, the first backend answer is returned unvalidated. This is
  /// the "+ Captures & Backreferences" support level of Table 7 (the model
  /// without the refinement scheme) and the ablation baseline.
  bool Validate = true;
  /// Capacity of the query-result cache (0 disables it). Solved problems
  /// are keyed on the α-renaming-canonicalized assertion set plus each
  /// regex clause's source/polarity/validation mode, so repeated
  /// path-condition prefixes — whose models differ only in the fresh
  /// variable names minted per call site — skip the backend and the whole
  /// refinement loop. Only Sat/Unsat results are cached: Unknown stays
  /// retryable (solve times on hard regex queries vary run to run).
  size_t QueryCacheCapacity = 256;
  SolverLimits Limits;
};

/// Min/max/mean accumulation for one query category (Table 8 rows).
struct TimeBucket {
  uint64_t N = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;

  void add(double Seconds) {
    if (N == 0 || Seconds < Min)
      Min = Seconds;
    if (Seconds > Max)
      Max = Seconds;
    Sum += Seconds;
    ++N;
  }
  double mean() const { return N == 0 ? 0 : Sum / N; }
  void merge(const TimeBucket &O) {
    if (O.N == 0)
      return;
    if (N == 0 || O.Min < Min)
      Min = O.Min;
    if (O.Max > Max)
      Max = O.Max;
    Sum += O.Sum;
    N += O.N;
  }
};

struct CegarStats {
  uint64_t Queries = 0;
  uint64_t QueriesWithRegex = 0;
  uint64_t QueriesWithCaptures = 0;
  uint64_t QueriesRefined = 0;
  uint64_t QueriesHitLimit = 0;
  uint64_t TotalRefinements = 0;
  // Query-result cache counters (see CegarOptions::QueryCacheCapacity).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  double SolverSeconds = 0;
  double MaxQuerySeconds = 0;

  // Per-query solve times by category (Table 8's query half).
  TimeBucket AllQueries;
  TimeBucket WithRegex;
  TimeBucket WithCaptures;
  TimeBucket WithRefinement;
  TimeBucket HitLimit;

  void merge(const CegarStats &O) {
    Queries += O.Queries;
    QueriesWithRegex += O.QueriesWithRegex;
    QueriesWithCaptures += O.QueriesWithCaptures;
    QueriesRefined += O.QueriesRefined;
    QueriesHitLimit += O.QueriesHitLimit;
    TotalRefinements += O.TotalRefinements;
    CacheHits += O.CacheHits;
    CacheMisses += O.CacheMisses;
    CacheEvictions += O.CacheEvictions;
    SolverSeconds += O.SolverSeconds;
    MaxQuerySeconds = std::max(MaxQuerySeconds, O.MaxQuerySeconds);
    AllQueries.merge(O.AllQueries);
    WithRegex.merge(O.WithRegex);
    WithCaptures.merge(O.WithCaptures);
    WithRefinement.merge(O.WithRefinement);
    HitLimit.merge(O.HitLimit);
  }
};

struct CegarResult {
  SolveStatus Status = SolveStatus::Unknown;
  Assignment Model;
  unsigned Refinements = 0;
  bool HitRefinementLimit = false;
};

/// Algorithm 1. Satisfiability modulo ES6 matching precedence, with a
/// result cache over canonicalized problems (see CegarOptions).
class CegarSolver {
public:
  explicit CegarSolver(SolverBackend &Backend, CegarOptions Opts = {});

  /// Solves a path condition. On Sat, the assignment is guaranteed to be
  /// consistent with the concrete matcher on every regex clause. A cached
  /// Sat result is α-renamed back onto the current problem's variables;
  /// CegarResult::Refinements then reports the original solve's rounds
  /// (the problem's difficulty) without re-running them.
  CegarResult solve(const std::vector<PathClause> &Clauses);

  const CegarStats &stats() const { return Stats; }
  void resetStats() { Stats = CegarStats(); }
  SolverBackend &backend() { return Backend; }

  /// Drops all cached query results (stats survive).
  void clearCache() { Cache.clear(); }

private:
  struct CacheEntry {
    SolveStatus Status = SolveStatus::Unknown;
    Assignment Model;
    unsigned Refinements = 0;
    /// Variable names of the original problem in canonical (key) order;
    /// positional bijection with any α-equivalent problem's variables.
    std::vector<std::string> VarOrder;
  };

  SolverBackend &Backend;
  CegarOptions Opts;
  CegarStats Stats;
  TermEvaluator Eval;
  LruMap<CacheEntry> Cache;
};

} // namespace recap

#endif // RECAP_CEGAR_CEGARSOLVER_H
