//===- cegar/CegarSolver.h - Matching-precedence refinement -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: a counterexample-guided abstraction
/// refinement loop that removes model solutions violating ES6 matching
/// precedence (greediness). Candidate assignments from the SMT backend are
/// validated against the concrete ES6 matcher; disagreement refines the
/// problem by either pinning captures for the candidate word (positive
/// constraints) or excluding the word (both polarities).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_CEGAR_CEGARSOLVER_H
#define RECAP_CEGAR_CEGARSOLVER_H

#include "matcher/Matcher.h"
#include "model/ModelBuilder.h"
#include "reliability/Reliability.h"
#include "smt/Solver.h"
#include "support/LruMap.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>

namespace recap {

struct AnchoredPlan;

/// One capturing-language membership constraint
/// (w, C0..Cn) ⊡ Lc(R) occurring in a path condition, bundled with
/// everything Algorithm 1 needs to validate candidate assignments.
struct RegexQuery {
  /// Concrete ES6 matcher for R (the oracle).
  std::shared_ptr<RegExpObject> Oracle;
  /// The symbolic model of one wrapped match of R.
  SymbolicMatch Model;
  /// The (undecorated) subject term.
  TermRef Input;
  /// lastIndex at query time (Int term; constant 0 for non-global).
  TermRef LastIndex;
  /// Decoration and alphabet constraints: Word = 〈 ++ Input ++ 〉, the
  /// input is meta-free, and position constraints for sticky/global.
  TermRef Decoration;
  /// Position constraint relating MatchStart and LastIndex (or true).
  TermRef Position;
  /// Validate capture assignments (exec) or only match/no-match (test).
  bool ValidateCaptures = true;

  /// Assertion for (w, C...) ∈ Lc(R) at the required position. Memoized:
  /// the engine re-submits the same clause objects across sibling flips,
  /// and the stable TermRef identity is what lets a prefix-pinned session
  /// recognize the unchanged path prefix (see CegarSolver).
  TermRef positiveAssertion() const;
  /// Assertion for the negated constraint (§4.4 / exact fast path).
  TermRef negativeAssertion() const;

private:
  mutable TermRef PosMemo, NegMemo;
};

/// One clause of a path condition: either a plain boolean term or a regex
/// membership with a polarity.
struct PathClause {
  TermRef Plain;                     ///< non-regex clause (may be null)
  std::shared_ptr<RegexQuery> Query; ///< regex clause (may be null)
  bool Polarity = true;

  static PathClause plain(TermRef T, bool Pol = true) {
    PathClause C;
    C.Plain = std::move(T);
    C.Polarity = Pol;
    return C;
  }
  static PathClause regex(std::shared_ptr<RegexQuery> Q, bool Pol = true) {
    PathClause C;
    C.Query = std::move(Q);
    C.Polarity = Pol;
    return C;
  }
  PathClause negated() const {
    PathClause C = *this;
    C.Polarity = !C.Polarity;
    return C;
  }
};

struct CegarOptions {
  /// Maximum refinement rounds before returning Unknown (§5.3; the
  /// evaluation used 20).
  unsigned RefinementLimit = 20;
  /// When false, the first backend answer is returned unvalidated. This is
  /// the "+ Captures & Backreferences" support level of Table 7 (the model
  /// without the refinement scheme) and the ablation baseline.
  bool Validate = true;
  /// Capacity of the query-result cache (0 disables it). Solved problems
  /// are keyed on the α-renaming-canonicalized assertion set plus each
  /// regex clause's source/polarity/validation mode, so repeated
  /// path-condition prefixes — whose models differ only in the fresh
  /// variable names minted per call site — skip the backend and the whole
  /// refinement loop. Only Sat/Unsat results are cached: Unknown stays
  /// retryable (solve times on hard regex queries vary run to run).
  size_t QueryCacheCapacity = 256;
  /// Incremental backend sessions: one session per problem (refinement
  /// constraints are pushed instead of re-solving the grown conjunction)
  /// and one pinned session per backend across problems (consecutive
  /// problems pop back to the longest common clause prefix instead of
  /// re-asserting it).
  enum class SessionPolicy : uint8_t {
    /// Every round re-solves through SolverBackend::solve — the
    /// pre-sessions baseline bench/micro_incremental compares against.
    Stateless,
    /// Sessions only on backends that profit
    /// (SolverBackend::prefersIncremental): LocalBackend yes, Z3 no —
    /// its incremental core loses more preprocessing than the session
    /// saves (DESIGN.md §5.3).
    Auto,
    /// Sessions on every backend (parity tests, experiments).
    Always,
  };
  SessionPolicy Sessions = SessionPolicy::Auto;
  SolverLimits Limits;
  /// Reliability layer (DESIGN.md §9): when Enabled, every problem runs
  /// through a watchdog-guarded session (which implies sessions on every
  /// backend — a guarded check must be cancellable, and a scratch
  /// Backend::solve is not), lane breakers steer dispatch away from
  /// misbehaving backends, and repeat deadline-burners are quarantined.
  ReliabilityOptions Reliability;
};

/// Min/max/mean accumulation for one query category (Table 8 rows).
struct TimeBucket {
  uint64_t N = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;

  void add(double Seconds) {
    if (N == 0 || Seconds < Min)
      Min = Seconds;
    if (Seconds > Max)
      Max = Seconds;
    Sum += Seconds;
    ++N;
  }
  double mean() const { return N == 0 ? 0 : Sum / N; }
  void merge(const TimeBucket &O) {
    if (O.N == 0)
      return;
    if (N == 0 || O.Min < Min)
      Min = O.Min;
    if (O.Max > Max)
      Max = O.Max;
    Sum += O.Sum;
    N += O.N;
  }
};

struct CegarStats {
  uint64_t Queries = 0;
  uint64_t QueriesWithRegex = 0;
  uint64_t QueriesWithCaptures = 0;
  uint64_t QueriesRefined = 0;
  uint64_t QueriesHitLimit = 0;
  uint64_t TotalRefinements = 0;
  // Query-result cache counters (see CegarOptions::QueryCacheCapacity).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  // Incremental-session counters (CegarOptions::Sessions).
  uint64_t SessionSolves = 0;      ///< problems run through a session
  uint64_t StatelessSolves = 0;    ///< problems run through Backend::solve
  uint64_t PrefixScopesReused = 0; ///< prefix scopes kept at session sync
  uint64_t PrefixScopesPushed = 0; ///< prefix scopes newly asserted
  uint64_t FallbackSolves = 0;     ///< dispatcher re-runs on the general backend
  double SolverSeconds = 0;
  double MaxQuerySeconds = 0;

  // Per-query solve times by category (Table 8's query half).
  TimeBucket AllQueries;
  TimeBucket WithRegex;
  TimeBucket WithCaptures;
  TimeBucket WithRefinement;
  TimeBucket HitLimit;

  // Per-backend-check solve times: the first check of each problem vs the
  // re-checks after a refinement round — incrementally (refinement pushed
  // into the live session) or from scratch (stateless mode re-solves the
  // whole grown conjunction). The incremental-vs-scratch gap is the
  // refinement half of bench/micro_incremental.
  TimeBucket FirstCheck;
  TimeBucket RefineCheckIncremental;
  TimeBucket RefineCheckScratch;

  void merge(const CegarStats &O) {
    Queries += O.Queries;
    QueriesWithRegex += O.QueriesWithRegex;
    QueriesWithCaptures += O.QueriesWithCaptures;
    QueriesRefined += O.QueriesRefined;
    QueriesHitLimit += O.QueriesHitLimit;
    TotalRefinements += O.TotalRefinements;
    CacheHits += O.CacheHits;
    CacheMisses += O.CacheMisses;
    CacheEvictions += O.CacheEvictions;
    SessionSolves += O.SessionSolves;
    StatelessSolves += O.StatelessSolves;
    PrefixScopesReused += O.PrefixScopesReused;
    PrefixScopesPushed += O.PrefixScopesPushed;
    FallbackSolves += O.FallbackSolves;
    SolverSeconds += O.SolverSeconds;
    MaxQuerySeconds = std::max(MaxQuerySeconds, O.MaxQuerySeconds);
    AllQueries.merge(O.AllQueries);
    WithRegex.merge(O.WithRegex);
    WithCaptures.merge(O.WithCaptures);
    WithRefinement.merge(O.WithRefinement);
    HitLimit.merge(O.HitLimit);
    FirstCheck.merge(O.FirstCheck);
    RefineCheckIncremental.merge(O.RefineCheckIncremental);
    RefineCheckScratch.merge(O.RefineCheckScratch);
  }
};

struct CegarResult {
  SolveStatus Status = SolveStatus::Unknown;
  Assignment Model;
  unsigned Refinements = 0;
  bool HitRefinementLimit = false;
  /// Reliability annotations (empty/zero unless the layer is enabled):
  /// why an Unknown was degraded ("quarantined", "all lanes open") and
  /// how many watchdog deadlines this problem burned.
  std::string Reason;
  unsigned GuardBurns = 0;
};

class BackendDispatcher;

/// Algorithm 1. Satisfiability modulo ES6 matching precedence, with a
/// result cache over canonicalized problems (see CegarOptions) and, in
/// incremental mode, one prefix-pinned backend session per backend: the
/// clause list of each problem is compared (by assertion identity) with
/// the session's scope stack, the session pops back to the longest common
/// prefix, asserts only the new clauses, and runs the refinement loop in
/// an ephemeral scope that is popped when the problem finishes — so the
/// engine's sibling flips and enumeration-style growing clause lists
/// reuse all accumulated backend state.
class CegarSolver {
public:
  explicit CegarSolver(SolverBackend &Backend, CegarOptions Opts = {});

  /// Routes each problem through \p Dispatch: classical-fragment problems
  /// to its classical backend, the rest to its general backend, with a
  /// one-shot fallback to the general backend when the classical lane
  /// answers Unknown (so routing never loses answers).
  CegarSolver(BackendDispatcher &Dispatch, CegarOptions Opts = {});

  /// Solves a path condition. On Sat, the assignment is guaranteed to be
  /// consistent with the concrete matcher on every regex clause. A cached
  /// Sat result is α-renamed back onto the current problem's variables;
  /// CegarResult::Refinements then reports the original solve's rounds
  /// (the problem's difficulty) without re-running them.
  CegarResult solve(const std::vector<PathClause> &Clauses);

  const CegarStats &stats() const { return Stats; }
  void resetStats() { Stats = CegarStats(); }
  SolverBackend &backend() { return Backend; }

  /// Drops all cached query results (stats survive).
  void clearCache() { Cache.clear(); }
  /// Drops every pinned backend session (frees solver state; the next
  /// problem re-asserts its prefix from scratch).
  void clearSessions() { Sessions.clear(); }

private:
  struct CacheEntry {
    SolveStatus Status = SolveStatus::Unknown;
    Assignment Model;
    unsigned Refinements = 0;
    /// Variable names of the original problem in canonical (key) order;
    /// positional bijection with any α-equivalent problem's variables.
    std::vector<std::string> VarOrder;
  };

  struct TrackedQuery {
    const RegexQuery *Q;
    bool Positive;
  };

  /// One pinned session: the scope stack mirrors Scopes (one prefix
  /// assertion per scope) plus, transiently, the ephemeral query scope.
  struct Pinned {
    std::unique_ptr<SolverSession> S;
    std::vector<TermRef> Scopes;
  };

  /// Runs the refinement loop for one problem on \p B (session or
  /// stateless per Opts.Sessions). \p P holds one assertion per clause.
  CegarResult runProblem(SolverBackend &B, const std::vector<TermRef> &P,
                         const std::vector<TrackedQuery> &Regexes);

  /// Opens a session on \p B, wrapped in a GuardedSession when the
  /// reliability layer is enabled.
  std::unique_ptr<SolverSession> openGuarded(SolverBackend &B);
  /// The breaker guarding \p B: the dispatcher's lane breaker, or the
  /// solo breaker of a dispatcher-less solver. Null when disabled.
  CircuitBreaker *breakerFor(SolverBackend *B);

  /// One candidate model measured against the concrete matcher.
  struct CandidateValidation {
    bool Failed = false; ///< at least one clause disagreed; refine
    bool Abort = false;  ///< evaluation/oracle gave up; the round is void
    std::vector<TermRef> Refinements;
  };

  /// Algorithm 1's validation step for one backend model: every regex
  /// clause is re-run on the concrete matcher and disagreements become
  /// refinement constraints (capture pinning or word exclusion).
  /// Stateless; \p OracleFor supplies the RegExpObject to consult — the
  /// clause's shared oracle on the main path, a per-thread clone inside
  /// a race worker (RegExpObject carries mutable lastIndex state).
  static CandidateValidation validateCandidate(
      const std::vector<TrackedQuery> &Regexes, const Assignment &M,
      TermEvaluator &Eval,
      const std::function<RegExpObject &(const RegexQuery &)> &OracleFor);

  /// The race's general-lane worker body: asserts \p P on \p Sess and
  /// runs the refinement loop with per-call oracles and evaluator, no
  /// CegarSolver state touched (safe on a worker thread). Returns
  /// Unknown promptly once the session is cancelled.
  static CegarResult refineOnSession(SolverSession &Sess,
                                     const std::vector<TermRef> &P,
                                     const std::vector<TrackedQuery> &Regexes,
                                     const CegarOptions &Opts);

  /// Racing mode (DESIGN.md §8): runs the anchored lane and an ephemeral
  /// general-backend session concurrently, returns the first decisive
  /// answer and cancels the loser. Both-Unknown returns Unknown and the
  /// caller falls back to normal routing.
  CegarResult raceProblem(const std::vector<PathClause> &Clauses,
                          const AnchoredPlan &Plan,
                          const std::vector<TermRef> &P,
                          const std::vector<TrackedQuery> &Regexes);

  SolverBackend &Backend; ///< the general/default backend
  BackendDispatcher *Dispatch = nullptr;
  CegarOptions Opts;
  CegarStats Stats;
  /// Reliability state (all null when the layer is disabled): counter
  /// destination, the quarantine table (shared or private), and the
  /// breaker for the dispatcher-less single-backend configuration (with
  /// a dispatcher the per-lane breakers live there).
  std::shared_ptr<RuntimeStats> RelStats;
  std::shared_ptr<Quarantine> Quar;
  std::unique_ptr<CircuitBreaker> SoloBreaker;
  TermEvaluator Eval;
  LruMap<CacheEntry> Cache;
  std::map<SolverBackend *, Pinned> Sessions;
  /// Memoized negations of plain clauses, keyed by the un-negated term.
  /// mkNot builds a fresh node per call, which would give a
  /// negative-polarity prefix clause a different assertion identity on
  /// every sibling flip and silently defeat the prefix-pinned session
  /// sync. The value's Kids[0] keeps the key term alive, so keys cannot
  /// be recycled addresses.
  std::map<const Term *, TermRef> NegMemo;
};

} // namespace recap

#endif // RECAP_CEGAR_CEGARSOLVER_H
