//===- cegar/BackendDispatcher.h - Feature-routed backend choice -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routes each path-condition problem to the solver lane that is best at
/// it, keyed on the RegexFeatures and anchored-exact language cached on
/// every clause's CompiledRegex (computed once per pattern by the runtime
/// pipeline):
///
///   every regex clause `^…$`-anchored, test()-style,  -> anchored lane
///     trivially positioned, with an anchored-exact       (product DFAs,
///     language                                           no SMT at all)
///   …and cost-ambiguous (many clauses, near-budget    -> racing mode
///     density, incomplete enumeration), when enabled     (both lanes,
///                                                        first decisive
///                                                        answer wins)
///   every regex clause classical, and capture groups  -> classical lane
///     occur only in test()-style clauses that never       (automata-based
///     validate captures                                   LocalBackend)
///   any backreference / lookaround / word boundary,   -> general lane
///     any capture-validating (exec) clause, or no        (Z3)
///     regex clause at all
///
/// Routing is advisory, never semantic: CegarSolver re-runs a problem on
/// the next lane down when a specialised lane answers Unknown, so
/// dispatch can only change solve times, not Sat/Unsat answers
/// (tests/backend_differential_test.cpp holds this line).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_CEGAR_BACKENDDISPATCHER_H
#define RECAP_CEGAR_BACKENDDISPATCHER_H

#include "cegar/AnchoredLane.h"
#include "cegar/CegarSolver.h"
#include "reliability/CircuitBreaker.h"
#include "runtime/CompiledRegex.h"

namespace recap {

/// Which lane a problem was assigned to (see file comment for the table).
/// Degraded only appears when breakers are configured (reliability layer)
/// and every lane's breaker is open: the problem is answered Unknown
/// without touching a backend — sound, since Unknown is always sound —
/// until a cooldown lets a lane probe again.
enum class DispatchLane : uint8_t { Classical, General, Anchored, Race, Degraded };

/// Lane-selection knobs. The product limits feed straight into
/// automata/ProductLane; the race thresholds mark the
/// classically-solvable-but-cost-ambiguous region where launching both
/// lanes and cancelling the loser beats committing to either.
struct DispatchPolicy {
  /// Consider the anchored product-DFA lane at all.
  bool AnchoredLane = true;
  /// Race the anchored lane against the general backend on
  /// cost-ambiguous problems instead of committing to the anchored lane.
  bool Race = false;
  /// A problem with at least this many regex clauses is cost-ambiguous.
  unsigned RaceClauseThreshold = 6;
  /// A product at or above this transition density (its enumeration
  /// budget near the base, see anchoredExploreBudget) is cost-ambiguous.
  double RaceDensityThreshold = 0.5;
  /// Construction/enumeration bounds for the anchored products.
  ProductLimits Product;
};

/// decide()'s verdict: the lane, the backend to run on (classical and
/// general lanes), and the prepared product plan (anchored and race).
struct DispatchDecision {
  DispatchLane Lane = DispatchLane::General;
  SolverBackend *Backend = nullptr;
  AnchoredPlan Plan;
};

class BackendDispatcher {
public:
  /// Routes over externally-owned backends. \p Stats (typically a
  /// RegexRuntime's shared block) receives the dispatch counters; null
  /// allocates a private block.
  BackendDispatcher(SolverBackend &Classical, SolverBackend &General,
                    std::shared_ptr<RuntimeStats> Stats = nullptr);

  /// Convenience: owns a fresh LocalBackend as the classical lane.
  explicit BackendDispatcher(SolverBackend &General,
                             std::shared_ptr<RuntimeStats> Stats = nullptr);

  /// The backend for this problem, per the two-backend half of the
  /// decision table (no anchored-lane consideration). Kept for callers
  /// that only want a backend reference; CegarSolver uses decide().
  SolverBackend &route(const std::vector<PathClause> &Clauses);

  /// Full lane selection: anchored/race when the policy allows and every
  /// regex clause qualifies (products built and cached here), otherwise
  /// the classical/general routing of route(). Not thread-safe — each
  /// engine shard owns its dispatcher (DESIGN.md §6).
  DispatchDecision decide(const std::vector<PathClause> &Clauses);

  /// True when every regex clause of \p Clauses stays inside the
  /// classical fragment (cached features: no backreferences, lookarounds
  /// or word boundaries; capture groups allowed only on clauses that do
  /// not validate captures) and at least one regex clause exists.
  /// Pure-boolean/string problems go to the general lane: they are cheap
  /// there and the classical lane's bounded search adds no automata
  /// leverage.
  static bool isClassicalProblem(const std::vector<PathClause> &Clauses);

  /// True when every regex clause is eligible for the anchored lane:
  /// test()-style (no capture validation), trivial position constraint,
  /// a plain StrVar input, and an anchored-exact language on the cached
  /// CompiledRegex — and at least one regex clause exists.
  static bool isAnchoredProblem(const std::vector<PathClause> &Clauses);

  SolverBackend &classical() { return *Classical; }
  SolverBackend &general() { return *General; }
  const RuntimeStats &stats() const { return *Stats; }
  const std::shared_ptr<RuntimeStats> &statsHandle() const { return Stats; }
  DispatchPolicy &policy() { return Policy; }

  /// Attaches one circuit breaker per lane (reliability layer; DESIGN.md
  /// §9). Once configured, decide() degrades away from an open lane:
  /// classical-open reroutes to the general lane, general-open reroutes
  /// to the classical lane (sound — the classical lane solves the same
  /// term-level problem, worst case Unknown), both-open yields
  /// DispatchLane::Degraded, and racing is suppressed while the general
  /// lane is open. \p Opens (optional) receives breaker-trip counts.
  void configureBreakers(CircuitBreaker::Options Opts,
                         StatCounter *Opens = nullptr);
  /// The breaker guarding \p B's lane, or null when not configured (or
  /// \p B is neither lane's backend).
  CircuitBreaker *breakerFor(SolverBackend *B);
  /// True when \p B's lane has a breaker and it is currently open.
  bool laneOpen(SolverBackend *B);

  /// Records a classical-lane Unknown that was re-run on the general
  /// lane (called by CegarSolver).
  void noteFallback() { ++Stats->DispatchFallbacks; }
  /// Records an anchored-lane problem answered decisively.
  void noteAnchoredHit() { ++Stats->AnchoredLaneHit; }
  /// Records an anchored-lane Unknown that fell back to normal routing.
  void noteAnchoredFallback() { ++Stats->AnchoredFallback; }
  /// Records a resolved race: who won, and whether the loser was still
  /// running and had its check cancelled.
  void noteRace(bool ClassicalWon, bool CancelledLoser) {
    if (ClassicalWon)
      ++Stats->RaceClassicalWon;
    else
      ++Stats->RaceZ3Won;
    if (CancelledLoser)
      ++Stats->RaceCancelled;
  }

private:
  /// Cached product lookup for one variable's clause set. Keyed on the
  /// clause languages' node identities plus polarity (CRegexRef payloads
  /// are interned per CompiledRegex, so pointer identity is pattern
  /// identity) — sibling flips and re-solves reuse the built product.
  /// The key holds strong refs: a cached language node must never be
  /// freed, or a later pattern allocated at the same address would
  /// collide with the stale entry and serve the wrong product.
  std::shared_ptr<const AnchoredProduct>
  productFor(const AnchoredVarPlan &V);

  /// Post-routing breaker pass: reroutes a Classical/General decision off
  /// an open lane (or to Degraded when every lane is open). No-op until
  /// configureBreakers().
  void degradeForBreakers(DispatchDecision &D);

  std::unique_ptr<SolverBackend> OwnedClassical;
  SolverBackend *Classical;
  SolverBackend *General;
  std::shared_ptr<RuntimeStats> Stats;
  DispatchPolicy Policy;
  /// Per-lane breakers (null until configureBreakers). Single-threaded
  /// like the dispatcher itself: each shard owns its own.
  std::unique_ptr<CircuitBreaker> BreakClassical, BreakGeneral;

  using ProductKey = std::vector<std::pair<CRegexRef, bool>>;
  std::map<ProductKey, std::shared_ptr<const AnchoredProduct>> Products;
  CRegexRef AnchoredAlphabet; ///< Latin-1 minus the meta markers, starred
};

} // namespace recap

#endif // RECAP_CEGAR_BACKENDDISPATCHER_H
