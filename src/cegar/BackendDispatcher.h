//===- cegar/BackendDispatcher.h - Feature-routed backend choice -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routes each path-condition problem to the solver backend that is best
/// at it, keyed on the RegexFeatures cached on every clause's
/// CompiledRegex (computed once per pattern by the runtime pipeline):
///
///   every regex clause classical, and capture groups  -> classical lane
///     occur only in test()-style clauses that never       (automata-based
///     validate captures                                   LocalBackend)
///   any backreference / lookaround / word boundary,   -> general lane
///     any capture-validating (exec) clause, or no        (Z3)
///     regex clause at all
///
/// Routing is advisory, never semantic: CegarSolver re-runs a problem on
/// the general lane when the classical lane answers Unknown, so dispatch
/// can only change solve times, not Sat/Unsat answers
/// (tests/backend_differential_test.cpp holds this line).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_CEGAR_BACKENDDISPATCHER_H
#define RECAP_CEGAR_BACKENDDISPATCHER_H

#include "cegar/CegarSolver.h"
#include "runtime/CompiledRegex.h"

namespace recap {

class BackendDispatcher {
public:
  /// Routes over externally-owned backends. \p Stats (typically a
  /// RegexRuntime's shared block) receives the dispatch counters; null
  /// allocates a private block.
  BackendDispatcher(SolverBackend &Classical, SolverBackend &General,
                    std::shared_ptr<RuntimeStats> Stats = nullptr);

  /// Convenience: owns a fresh LocalBackend as the classical lane.
  explicit BackendDispatcher(SolverBackend &General,
                             std::shared_ptr<RuntimeStats> Stats = nullptr);

  /// The backend for this problem, per the decision table above.
  SolverBackend &route(const std::vector<PathClause> &Clauses);

  /// True when every regex clause of \p Clauses stays inside the
  /// classical fragment (cached features: no backreferences, lookarounds
  /// or word boundaries; capture groups allowed only on clauses that do
  /// not validate captures) and at least one regex clause exists.
  /// Pure-boolean/string problems go to the general lane: they are cheap
  /// there and the classical lane's bounded search adds no automata
  /// leverage.
  static bool isClassicalProblem(const std::vector<PathClause> &Clauses);

  SolverBackend &classical() { return *Classical; }
  SolverBackend &general() { return *General; }
  const RuntimeStats &stats() const { return *Stats; }

  /// Records a classical-lane Unknown that was re-run on the general
  /// lane (called by CegarSolver).
  void noteFallback() { ++Stats->DispatchFallbacks; }

private:
  std::unique_ptr<SolverBackend> OwnedClassical;
  SolverBackend *Classical;
  SolverBackend *General;
  std::shared_ptr<RuntimeStats> Stats;
};

} // namespace recap

#endif // RECAP_CEGAR_BACKENDDISPATCHER_H
