//===- cegar/CegarSolver.cpp - Matching-precedence refinement --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/CegarSolver.h"

#include "cegar/AnchoredLane.h"
#include "cegar/BackendDispatcher.h"
#include "reliability/GuardedSession.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <future>
#include <mutex>

using namespace recap;

TermRef RegexQuery::positiveAssertion() const {
  if (!PosMemo)
    PosMemo = mkAnd({Decoration, Position, Model.MatchConstraint});
  return PosMemo;
}

TermRef RegexQuery::negativeAssertion() const {
  if (NegMemo)
    return NegMemo;
  // With a non-trivial position constraint the negation must range over
  // "a match at an allowed position", so the fast path (exact or §4.4
  // schema, baked into NoMatchConstraint) only applies to the trivial
  // position.
  bool TrivialPos =
      Position->Kind == TermKind::BoolConst && Position->BoolVal;
  if (TrivialPos)
    NegMemo = mkAnd(Decoration, Model.NoMatchConstraint);
  else
    NegMemo = mkAnd(Decoration,
                    mkNot(mkAnd(Position, Model.MatchConstraint)));
  return NegMemo;
}

CegarSolver::CegarSolver(SolverBackend &Backend, CegarOptions Opts)
    : Backend(Backend), Opts(Opts), Cache(Opts.QueryCacheCapacity) {
  if (this->Opts.Reliability.Enabled) {
    RelStats = this->Opts.Reliability.Stats;
    if (!RelStats)
      RelStats = std::make_shared<RuntimeStats>();
    Quar = this->Opts.Reliability.SharedQuarantine;
    if (!Quar)
      Quar = std::make_shared<Quarantine>(
          this->Opts.Reliability.QuarantinePolicy);
    SoloBreaker = std::make_unique<CircuitBreaker>(
        this->Opts.Reliability.Breaker, &RelStats->BreakerOpens);
  }
}

CegarSolver::CegarSolver(BackendDispatcher &Dispatch, CegarOptions Opts)
    : Backend(Dispatch.general()), Dispatch(&Dispatch), Opts(Opts),
      Cache(Opts.QueryCacheCapacity) {
  if (this->Opts.Reliability.Enabled) {
    RelStats = this->Opts.Reliability.Stats;
    if (!RelStats)
      RelStats = Dispatch.statsHandle();
    Quar = this->Opts.Reliability.SharedQuarantine;
    if (!Quar)
      Quar = std::make_shared<Quarantine>(
          this->Opts.Reliability.QuarantinePolicy);
    Dispatch.configureBreakers(this->Opts.Reliability.Breaker,
                               &RelStats->BreakerOpens);
  }
}

std::unique_ptr<SolverSession> CegarSolver::openGuarded(SolverBackend &B) {
  std::unique_ptr<SolverSession> S = B.openSession();
  if (!Opts.Reliability.Enabled)
    return S;
  return std::make_unique<GuardedSession>(B, std::move(S), Opts.Reliability,
                                          breakerFor(&B), RelStats);
}

CircuitBreaker *CegarSolver::breakerFor(SolverBackend *B) {
  if (Dispatch)
    return Dispatch->breakerFor(B);
  return SoloBreaker.get();
}

namespace {

/// Validation result for one regex clause under a candidate model.
enum class Validation : uint8_t {
  Consistent,
  WrongCaptures, ///< word matches, capture assignment differs (line 15)
  WrongWord,     ///< membership polarity itself is wrong (lines 18/22)
  OracleBudget,  ///< concrete matcher gave up
};

} // namespace

CegarResult CegarSolver::solve(const std::vector<PathClause> &Clauses) {
  auto T0 = std::chrono::steady_clock::now();
  ++Stats.Queries;

  // A cancelled run (job deadline, service shutdown) drains here without
  // touching a backend: Unknown is always sound, and the reason tells
  // callers this was a stop, not a solver give-up.
  if (Opts.Limits.Cancel &&
      Opts.Limits.Cancel->load(std::memory_order_relaxed)) {
    CegarResult Cancelled;
    Cancelled.Status = SolveStatus::Unknown;
    Cancelled.Reason = "cancelled";
    return Cancelled;
  }

  std::vector<TermRef> P;
  std::vector<TrackedQuery> Regexes;
  for (const PathClause &C : Clauses) {
    if (C.Query) {
      P.push_back(C.Polarity ? C.Query->positiveAssertion()
                             : C.Query->negativeAssertion());
      Regexes.push_back({C.Query.get(), C.Polarity});
    } else {
      assert(C.Plain && "empty path clause");
      if (C.Polarity) {
        P.push_back(C.Plain);
      } else {
        // Stable identity across solves (see NegMemo declaration).
        TermRef &Neg = NegMemo[C.Plain.get()];
        if (!Neg)
          Neg = mkNot(C.Plain);
        P.push_back(Neg);
      }
    }
  }
  if (!Regexes.empty())
    ++Stats.QueriesWithRegex;
  bool HasCaptures = false;
  for (const TrackedQuery &T : Regexes)
    if (T.Q->Oracle->regex().numCaptures() > 0)
      HasCaptures = true;
  if (HasCaptures)
    ++Stats.QueriesWithCaptures;

  // Query-result cache: canonicalize the problem up to variable renaming.
  // The key also pins each regex clause's source, polarity and validation
  // mode, since validation consults the concrete matcher, not the terms.
  // The quarantine shares the key (α-equivalent restatements of a tarpit
  // share a burn count), so it is also built when only that needs it.
  std::string Key;
  std::vector<std::string> VarNames;
  const bool WantKey =
      Opts.QueryCacheCapacity != 0 || (Opts.Reliability.Enabled && Quar);
  if (WantKey) {
    for (const PathClause &C : Clauses)
      if (C.Query) {
        // Length-prefixed so patterns containing the delimiters cannot
        // make two different clause lists serialize identically. The
        // oracle's step budget is part of validation behavior (a
        // budget-limited oracle can give up where the default succeeds),
        // so it is pinned too.
        std::string Src = C.Query->Oracle->regex().str();
        Key += "[" + std::to_string(Src.size()) + ":" + Src +
               (C.Polarity ? "+" : "-") +
               (C.Query->ValidateCaptures ? "v" : "") + "b" +
               std::to_string(C.Query->Oracle->matcher().stepBudget()) +
               "]";
      }
    Key += canonicalTermKey(P, &VarNames);
    // The identical key guarantees a positional variable bijection; a
    // size mismatch would mean a key collision, so treat it as a miss
    // rather than replaying a foreign model.
    CacheEntry *E =
        Opts.QueryCacheCapacity != 0 ? Cache.find(Key) : nullptr;
    if (E && E->VarOrder.size() == VarNames.size()) {
      ++Stats.CacheHits;
      CegarResult Hit;
      Hit.Status = E->Status;
      Hit.Refinements = E->Refinements;
      if (E->Status == SolveStatus::Sat) {
        // α-rename the stored model onto this problem's variables.
        for (size_t I = 0; I < VarNames.size(); ++I) {
          const std::string &SN = E->VarOrder[I];
          const std::string &NN = VarNames[I];
          if (auto B = E->Model.Bools.find(SN); B != E->Model.Bools.end())
            Hit.Model.Bools[NN] = B->second;
          if (auto S = E->Model.Strings.find(SN);
              S != E->Model.Strings.end())
            Hit.Model.Strings[NN] = S->second;
          if (auto N = E->Model.Ints.find(SN); N != E->Model.Ints.end())
            Hit.Model.Ints[NN] = N->second;
        }
      }
      // Hits are visible through CacheHits; the per-query time buckets
      // keep describing real backend solves only, so Table-8 style
      // distributions are not flooded with microsecond replays.
      Stats.SolverSeconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        T0)
              .count();
      return Hit;
    }
    if (Opts.QueryCacheCapacity != 0)
      ++Stats.CacheMisses;
  }

  // Quarantined problems (repeat deadline-burners, see recordBurn below)
  // are skipped outright: Unknown with a reason, no backend touched. A
  // cached decisive result above still wins — it is already validated.
  if (Opts.Reliability.Enabled && Quar && WantKey && Quar->shouldSkip(Key)) {
    if (RelStats)
      ++RelStats->QuarantineHits;
    CegarResult Out;
    Out.Status = SolveStatus::Unknown;
    Out.Reason = "quarantined";
    double Sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    Stats.SolverSeconds += Sec;
    return Out;
  }

  SolverBackend *B = &Backend;
  CegarResult Out;
  bool Done = false;
  if (Dispatch) {
    DispatchDecision Dec = Dispatch->decide(Clauses);
    switch (Dec.Lane) {
    case DispatchLane::Anchored:
      // Product-DFA lane: no SMT check, no refinement rounds. Unknown
      // (lane inapplicable after all, enumeration exhausted, oracle
      // budget) falls through to normal routing below.
      Out = solveAnchored(Clauses, Dec.Plan);
      if (Out.Status != SolveStatus::Unknown) {
        Dispatch->noteAnchoredHit();
        Done = true;
      } else {
        Dispatch->noteAnchoredFallback();
        B = &Dispatch->route(Clauses);
      }
      break;
    case DispatchLane::Race:
      Out = raceProblem(Clauses, Dec.Plan, P, Regexes);
      if (Out.Status != SolveStatus::Unknown)
        Done = true;
      else
        B = &Dispatch->route(Clauses);
      break;
    case DispatchLane::Classical:
    case DispatchLane::General:
      B = Dec.Backend;
      break;
    case DispatchLane::Degraded:
      // Every lane's breaker is open: answer Unknown without burning
      // time on a known-bad backend. Sound — Unknown is always sound —
      // and annotated so callers can tell degradation from a genuine
      // solver Unknown.
      Out.Status = SolveStatus::Unknown;
      Out.Reason = "breaker-degraded";
      if (RelStats)
        ++RelStats->BreakerShortCircuits;
      Done = true;
      break;
    }
  }
  if (!Done) {
    Out = runProblem(*B, P, Regexes);
    if (Dispatch && Out.Status == SolveStatus::Unknown &&
        B != &Dispatch->general() &&
        !Dispatch->laneOpen(&Dispatch->general())) {
      // The classical lane gave up; routing must never lose answers, so
      // re-run the whole problem on the general backend (unless its
      // breaker is open — then Unknown stands until the cooldown).
      ++Stats.FallbackSolves;
      Dispatch->noteFallback();
      unsigned Burns = Out.GuardBurns;
      Out = runProblem(Dispatch->general(), P, Regexes);
      Out.GuardBurns += Burns;
    }
  }

  // Quarantine bookkeeping — before the cache insert below, which moves
  // Key. One burn mark per solve() call that hit a watchdog deadline:
  // the threshold then means "distinct runs burned", not "retries within
  // one run".
  if (Opts.Reliability.Enabled && Quar && WantKey && Out.GuardBurns > 0 &&
      Quar->recordBurn(Key) && RelStats)
    ++RelStats->Quarantined;

  // Memoize decisive results (Unknown stays retryable by design). A key
  // collision (see above) would re-insert an existing key; skip it.
  if (Opts.QueryCacheCapacity != 0 && Out.Status != SolveStatus::Unknown &&
      !Cache.find(Key)) {
    CacheEntry E;
    E.Status = Out.Status;
    E.Model = Out.Model;
    E.Refinements = Out.Refinements;
    E.VarOrder = std::move(VarNames);
    if (Cache.insert(std::move(Key), std::move(E)))
      ++Stats.CacheEvictions;
  }

  if (Out.Refinements > 0)
    ++Stats.QueriesRefined;
  double Sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Stats.SolverSeconds += Sec;
  Stats.MaxQuerySeconds = std::max(Stats.MaxQuerySeconds, Sec);
  Stats.AllQueries.add(Sec);
  if (!Regexes.empty())
    Stats.WithRegex.add(Sec);
  if (HasCaptures)
    Stats.WithCaptures.add(Sec);
  if (Out.Refinements > 0)
    Stats.WithRefinement.add(Sec);
  if (Out.HitRefinementLimit)
    Stats.HitLimit.add(Sec);
  return Out;
}

CegarResult CegarSolver::runProblem(SolverBackend &B,
                                    const std::vector<TermRef> &P,
                                    const std::vector<TrackedQuery> &Regexes) {
  CegarResult Out;

  SolverSession *Sess = nullptr;
  Pinned *PS = nullptr;
  std::vector<TermRef> Work; // stateless mode: the grown conjunction
  // Reliability forces sessions on: a guarded check must be cancellable
  // from the watchdog thread, which a scratch Backend::solve is not.
  bool UseSession =
      Opts.Sessions == CegarOptions::SessionPolicy::Always ||
      (Opts.Sessions == CegarOptions::SessionPolicy::Auto &&
       B.prefersIncremental()) ||
      Opts.Reliability.Enabled;
  if (UseSession) {
    ++Stats.SessionSolves;
    PS = &Sessions[&B];
    if (!PS->S) {
      PS->S = openGuarded(B);
      PS->Scopes.clear();
    }
    // Sync the session to this problem's clause prefix: pop down to the
    // longest common prefix (assertion identity — stable thanks to the
    // RegexQuery assertion memos), then assert only the new clauses, one
    // scope each so any of them can become a future pop point.
    size_t NPrefix = P.empty() ? 0 : P.size() - 1;
    size_t Common = 0;
    while (Common < PS->Scopes.size() && Common < NPrefix &&
           PS->Scopes[Common] == P[Common])
      ++Common;
    PS->S->pop(static_cast<unsigned>(PS->Scopes.size() - Common));
    PS->Scopes.resize(Common);
    Stats.PrefixScopesReused += Common;
    for (size_t I = Common; I < NPrefix; ++I) {
      PS->S->push();
      PS->S->assertTerm(P[I]);
      PS->Scopes.push_back(P[I]);
      ++Stats.PrefixScopesPushed;
    }
    // Ephemeral query scope: the final (for the engine: flipped) clause
    // plus every refinement constraint of this problem; popped when the
    // problem finishes so the pinned prefix state stays clean.
    PS->S->push();
    if (!P.empty())
      PS->S->assertTerm(P.back());
    Sess = PS->S.get();
  } else {
    ++Stats.StatelessSolves;
    Work = P;
  }

  // Watchdog-burn window for this problem (feeds the quarantine): the
  // pinned session is guarded exactly when the layer is enabled.
  GuardedSession *G =
      Opts.Reliability.Enabled && Sess
          ? static_cast<GuardedSession *>(PS->S.get())
          : nullptr;
  uint64_t Burns0 = G ? G->timeouts() : 0;

  // On Unknown the pinned session is dropped afterwards: the engine
  // re-queues Unknown flips, and a retry deserves a fresh solver rather
  // than the exact internal state that just gave up.
  bool DropSession = false;
  for (unsigned Round = 0;; ++Round) {
    // Between refinement rounds is the drain point guarded checks cannot
    // provide: their per-check watchdog bounds one check, this bounds the
    // loop (a cancelled run must not start round N+1).
    if (Opts.Limits.Cancel &&
        Opts.Limits.Cancel->load(std::memory_order_relaxed)) {
      Out.Status = SolveStatus::Unknown;
      Out.Reason = "cancelled";
      DropSession = true;
      break;
    }
    Assignment M;
    auto C0 = std::chrono::steady_clock::now();
    SolveStatus S =
        Sess ? Sess->check(M, Opts.Limits) : B.solve(Work, M, Opts.Limits);
    double CSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - C0)
                      .count();
    if (Round == 0)
      Stats.FirstCheck.add(CSec);
    else if (Sess)
      Stats.RefineCheckIncremental.add(CSec);
    else
      Stats.RefineCheckScratch.add(CSec);

    if (S != SolveStatus::Sat) {
      Out.Status = S;
      DropSession = S == SolveStatus::Unknown;
      break;
    }
    if (!Opts.Validate) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      break;
    }

    CandidateValidation V = validateCandidate(
        Regexes, M, Eval,
        [](const RegexQuery &Q) -> RegExpObject & { return *Q.Oracle; });
    if (V.Abort) {
      Out.Status = SolveStatus::Unknown;
      DropSession = true;
      break;
    }
    if (!V.Failed) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      break;
    }
    ++Stats.TotalRefinements;
    Out.Refinements = Round + 1;
    if (Round + 1 >= Opts.RefinementLimit) {
      Out.Status = SolveStatus::Unknown;
      Out.HitRefinementLimit = true;
      ++Stats.QueriesHitLimit;
      DropSession = true;
      break;
    }
    // Push the refinement constraints instead of re-solving from scratch
    // (incremental), or grow the conjunction (stateless baseline).
    for (TermRef &C : V.Refinements) {
      if (Sess)
        Sess->assertTerm(std::move(C));
      else
        Work.push_back(std::move(C));
    }
  }

  if (Sess) {
    // Read the burn delta before the erase below can destroy the session.
    if (G)
      Out.GuardBurns = static_cast<unsigned>(G->timeouts() - Burns0);
    PS->S->pop(1); // drop the ephemeral query scope
    if (DropSession)
      Sessions.erase(&B);
  }
  return Out;
}

CegarSolver::CandidateValidation CegarSolver::validateCandidate(
    const std::vector<TrackedQuery> &Regexes, const Assignment &M,
    TermEvaluator &Eval,
    const std::function<RegExpObject &(const RegexQuery &)> &OracleFor) {
  CandidateValidation Out;
  for (const TrackedQuery &T : Regexes) {
    const RegexQuery &Q = *T.Q;
    std::optional<UString> Input = Eval.evalString(Q.Input, M);
    std::optional<int64_t> LastIndex = Eval.evalInt(Q.LastIndex, M);
    if (!Input || !LastIndex) {
      Out.Abort = true;
      return Out;
    }
    RegExpObject &Oracle = OracleFor(Q);
    Oracle.LastIndex = *LastIndex;
    RegExpObject::ExecOutcome Exec = Oracle.exec(*Input);
    if (Exec.Status == MatchStatus::Budget) {
      Out.Abort = true;
      return Out;
    }
    bool Matched = Exec.Status == MatchStatus::Match;
    TermRef InputConst = mkStrConst(*Input);
    TermRef Cond = mkAnd(mkEq(Q.Input, InputConst),
                         mkEq(Q.LastIndex, mkIntConst(*LastIndex)));

    if (T.Positive && Matched) {
      if (!Q.ValidateCaptures)
        continue;
      const MatchResult &R = *Exec.Result;
      // Compare the model's captures with the concrete ones.
      bool Mismatch = false;
      std::vector<TermRef> Pin;
      // Match start (decorated coordinates: input index + 1).
      int64_t WantStart = static_cast<int64_t>(R.Index) + 1;
      std::optional<int64_t> GotStart = Eval.evalInt(Q.Model.MatchStart, M);
      Mismatch |= !GotStart || *GotStart != WantStart;
      Pin.push_back(mkEq(Q.Model.MatchStart, mkIntConst(WantStart)));
      // C0.
      std::optional<UString> GotC0 = Eval.evalString(Q.Model.C0.Value, M);
      Mismatch |= !GotC0 || *GotC0 != R.Match;
      Pin.push_back(mkEq(Q.Model.C0.Value, mkStrConst(R.Match)));
      // C1..Cn.
      for (size_t I = 0; I < Q.Model.Captures.size(); ++I) {
        const CaptureVar &CV = Q.Model.Captures[I];
        bool WantDef = I < R.Captures.size() && R.Captures[I].has_value();
        std::optional<bool> GotDef = Eval.evalBool(CV.Defined, M);
        std::optional<UString> GotVal = Eval.evalString(CV.Value, M);
        UString WantVal = WantDef ? *R.Captures[I] : UString();
        bool CapOk = GotDef && *GotDef == WantDef &&
                     (!WantDef || (GotVal && *GotVal == WantVal));
        Mismatch |= !CapOk;
        Pin.push_back(WantDef ? TermRef(CV.Defined) : mkNot(CV.Defined));
        Pin.push_back(mkEq(CV.Value, mkStrConst(WantVal)));
      }
      if (Mismatch) {
        Out.Failed = true;
        Out.Refinements.push_back(mkImplies(Cond, mkAnd(std::move(Pin))));
      }
    } else if (T.Positive != Matched) {
      // Positive constraint but no concrete match, or negative
      // constraint but the word concretely matches: exclude the word.
      Out.Failed = true;
      Out.Refinements.push_back(mkNot(Cond));
    }
  }
  return Out;
}

CegarResult CegarSolver::refineOnSession(
    SolverSession &Sess, const std::vector<TermRef> &P,
    const std::vector<TrackedQuery> &Regexes, const CegarOptions &Opts) {
  CegarResult Out;
  for (const TermRef &T : P)
    Sess.assertTerm(T);
  // Worker-private oracles: the clauses' shared RegExpObjects carry
  // mutable lastIndex state and may be in use by the thread that
  // launched the race. CompiledRegex itself is thread-safe to share.
  TermEvaluator Eval;
  std::map<const RegexQuery *, RegExpObject> Oracles;
  auto OracleFor = [&Oracles](const RegexQuery &Q) -> RegExpObject & {
    auto It = Oracles.find(&Q);
    if (It == Oracles.end())
      It = Oracles
               .emplace(std::piecewise_construct, std::forward_as_tuple(&Q),
                        std::forward_as_tuple(Q.Oracle->compiled(),
                                              Q.Oracle->matcher().stepBudget()))
               .first;
    return It->second;
  };
  for (unsigned Round = 0;; ++Round) {
    Assignment M;
    SolveStatus S = Sess.check(M, Opts.Limits);
    if (S != SolveStatus::Sat) {
      Out.Status = S;
      return Out;
    }
    if (Sess.cancelRequested()) {
      // A cancel that lands right as the check returns Sat: the
      // coordinator already committed to the other lane's answer.
      Out.Status = SolveStatus::Unknown;
      return Out;
    }
    if (!Opts.Validate) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      return Out;
    }
    CandidateValidation V = validateCandidate(Regexes, M, Eval, OracleFor);
    if (V.Abort)
      return Out;
    if (!V.Failed) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      return Out;
    }
    Out.Refinements = Round + 1;
    if (Round + 1 >= Opts.RefinementLimit) {
      Out.HitRefinementLimit = true;
      return Out;
    }
    for (TermRef &C : V.Refinements)
      Sess.assertTerm(std::move(C));
  }
}

CegarResult CegarSolver::raceProblem(const std::vector<PathClause> &Clauses,
                                     const AnchoredPlan &Plan,
                                     const std::vector<TermRef> &P,
                                     const std::vector<TrackedQuery> &Regexes) {
  // Two workers, one problem: the anchored lane (pure automata + oracle,
  // cancelled through an atomic flag) and an ephemeral general-backend
  // session (cancelled through SolverSession::cancel, which interrupts
  // an in-flight Z3 check). The coordinator takes the first decisive
  // answer and cancels the loser. The general session is created *on*
  // its worker thread and published under a mutex, honouring the solver
  // threading contract: the owning thread runs checks, the coordinator
  // only ever calls cancel().
  std::atomic<bool> ClassicalCancel{false};
  std::atomic<bool> GeneralStop{false};
  std::mutex SessMu;
  SolverSession *GeneralSess = nullptr;

  auto ClassicalFut = std::async(std::launch::async, [&] {
    return solveAnchored(Clauses, Plan, &ClassicalCancel);
  });
  auto GeneralFut = std::async(std::launch::async, [&] {
    // Deliberately unguarded even with the reliability layer on: the race
    // coordinator already owns this session's cancellation (the loser is
    // cancelled the moment a winner lands), so a watchdog would only
    // fight it; and decide() suppresses racing while the general lane's
    // breaker is open.
    std::unique_ptr<SolverSession> S = Dispatch->general().openSession();
    {
      std::lock_guard<std::mutex> L(SessMu);
      GeneralSess = S.get();
    }
    // A stop that raced session creation: the coordinator may have seen
    // a null pointer, so self-cancel (the mutex orders the publication
    // against the coordinator's read).
    if (GeneralStop.load(std::memory_order_relaxed))
      S->cancel();
    CegarResult R = refineOnSession(*S, P, Regexes, Opts);
    {
      std::lock_guard<std::mutex> L(SessMu);
      GeneralSess = nullptr;
    }
    return R;
  });

  CegarResult Classical, General;
  bool CDone = false, GDone = false;
  bool ClassicalWon = false, GeneralWon = false;
  const auto Tick = std::chrono::milliseconds(1);
  for (;;) {
    if (!CDone &&
        ClassicalFut.wait_for(Tick) == std::future_status::ready) {
      Classical = ClassicalFut.get();
      CDone = true;
      if (Classical.Status != SolveStatus::Unknown) {
        ClassicalWon = true;
        break;
      }
    }
    if (!GDone && GeneralFut.wait_for(Tick) == std::future_status::ready) {
      General = GeneralFut.get();
      GDone = true;
      if (General.Status != SolveStatus::Unknown) {
        GeneralWon = true;
        break;
      }
    }
    if (CDone && GDone)
      break;
  }

  bool CancelledLoser = false;
  if (ClassicalWon && !GDone) {
    GeneralStop.store(true, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(SessMu);
      if (GeneralSess)
        GeneralSess->cancel();
    }
    General = GeneralFut.get();
    GDone = true;
    CancelledLoser = true;
  } else if (GeneralWon && !CDone) {
    ClassicalCancel.store(true, std::memory_order_relaxed);
    Classical = ClassicalFut.get();
    CDone = true;
    CancelledLoser = true;
  }

  if (ClassicalWon || GeneralWon) {
    Dispatch->noteRace(ClassicalWon, CancelledLoser);
    if (ClassicalWon)
      Dispatch->noteAnchoredHit();
    return ClassicalWon ? std::move(Classical) : std::move(General);
  }
  // Both lanes gave up; return the general side (it carries refinement
  // telemetry) and let the caller fall back to normal routing.
  return General;
}
