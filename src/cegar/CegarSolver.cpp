//===- cegar/CegarSolver.cpp - Matching-precedence refinement --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/CegarSolver.h"

#include <cassert>
#include <chrono>

using namespace recap;

TermRef RegexQuery::positiveAssertion() const {
  return mkAnd({Decoration, Position, Model.MatchConstraint});
}

TermRef RegexQuery::negativeAssertion() const {
  // With a non-trivial position constraint the negation must range over
  // "a match at an allowed position", so the fast path (exact or §4.4
  // schema, baked into NoMatchConstraint) only applies to the trivial
  // position.
  bool TrivialPos =
      Position->Kind == TermKind::BoolConst && Position->BoolVal;
  if (TrivialPos)
    return mkAnd(Decoration, Model.NoMatchConstraint);
  return mkAnd(Decoration,
               mkNot(mkAnd(Position, Model.MatchConstraint)));
}

CegarSolver::CegarSolver(SolverBackend &Backend, CegarOptions Opts)
    : Backend(Backend), Opts(Opts), Cache(Opts.QueryCacheCapacity) {}

namespace {

/// Validation result for one regex clause under a candidate model.
enum class Validation : uint8_t {
  Consistent,
  WrongCaptures, ///< word matches, capture assignment differs (line 15)
  WrongWord,     ///< membership polarity itself is wrong (lines 18/22)
  OracleBudget,  ///< concrete matcher gave up
};

} // namespace

CegarResult CegarSolver::solve(const std::vector<PathClause> &Clauses) {
  auto T0 = std::chrono::steady_clock::now();
  ++Stats.Queries;

  std::vector<TermRef> P;
  struct Tracked {
    const RegexQuery *Q;
    bool Positive;
  };
  std::vector<Tracked> Regexes;
  for (const PathClause &C : Clauses) {
    if (C.Query) {
      P.push_back(C.Polarity ? C.Query->positiveAssertion()
                             : C.Query->negativeAssertion());
      Regexes.push_back({C.Query.get(), C.Polarity});
    } else {
      assert(C.Plain && "empty path clause");
      P.push_back(C.Polarity ? C.Plain : mkNot(C.Plain));
    }
  }
  if (!Regexes.empty())
    ++Stats.QueriesWithRegex;
  bool HasCaptures = false;
  for (const Tracked &T : Regexes)
    if (T.Q->Oracle->regex().numCaptures() > 0)
      HasCaptures = true;
  if (HasCaptures)
    ++Stats.QueriesWithCaptures;

  // Query-result cache: canonicalize the problem up to variable renaming.
  // The key also pins each regex clause's source, polarity and validation
  // mode, since validation consults the concrete matcher, not the terms.
  std::string Key;
  std::vector<std::string> VarNames;
  if (Opts.QueryCacheCapacity != 0) {
    for (const PathClause &C : Clauses)
      if (C.Query) {
        // Length-prefixed so patterns containing the delimiters cannot
        // make two different clause lists serialize identically. The
        // oracle's step budget is part of validation behavior (a
        // budget-limited oracle can give up where the default succeeds),
        // so it is pinned too.
        std::string Src = C.Query->Oracle->regex().str();
        Key += "[" + std::to_string(Src.size()) + ":" + Src +
               (C.Polarity ? "+" : "-") +
               (C.Query->ValidateCaptures ? "v" : "") + "b" +
               std::to_string(C.Query->Oracle->matcher().stepBudget()) +
               "]";
      }
    Key += canonicalTermKey(P, &VarNames);
    // The identical key guarantees a positional variable bijection; a
    // size mismatch would mean a key collision, so treat it as a miss
    // rather than replaying a foreign model.
    CacheEntry *E = Cache.find(Key);
    if (E && E->VarOrder.size() == VarNames.size()) {
      ++Stats.CacheHits;
      CegarResult Hit;
      Hit.Status = E->Status;
      Hit.Refinements = E->Refinements;
      if (E->Status == SolveStatus::Sat) {
        // α-rename the stored model onto this problem's variables.
        for (size_t I = 0; I < VarNames.size(); ++I) {
          const std::string &SN = E->VarOrder[I];
          const std::string &NN = VarNames[I];
          if (auto B = E->Model.Bools.find(SN); B != E->Model.Bools.end())
            Hit.Model.Bools[NN] = B->second;
          if (auto S = E->Model.Strings.find(SN);
              S != E->Model.Strings.end())
            Hit.Model.Strings[NN] = S->second;
          if (auto N = E->Model.Ints.find(SN); N != E->Model.Ints.end())
            Hit.Model.Ints[NN] = N->second;
        }
      }
      // Hits are visible through CacheHits; the per-query time buckets
      // keep describing real backend solves only, so Table-8 style
      // distributions are not flooded with microsecond replays.
      Stats.SolverSeconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        T0)
              .count();
      return Hit;
    }
    ++Stats.CacheMisses;
  }

  CegarResult Out;
  bool Refined = false;
  for (unsigned Round = 0;; ++Round) {
    Assignment M;
    SolveStatus S = Backend.solve(P, M, Opts.Limits);
    if (S != SolveStatus::Sat) {
      Out.Status = S;
      break;
    }
    if (!Opts.Validate) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      break;
    }

    bool Failed = false;
    bool Abort = false;
    for (const Tracked &T : Regexes) {
      const RegexQuery &Q = *T.Q;
      std::optional<UString> Input = Eval.evalString(Q.Input, M);
      std::optional<int64_t> LastIndex = Eval.evalInt(Q.LastIndex, M);
      if (!Input || !LastIndex) {
        Abort = true;
        break;
      }
      Q.Oracle->LastIndex = *LastIndex;
      RegExpObject::ExecOutcome Exec = Q.Oracle->exec(*Input);
      if (Exec.Status == MatchStatus::Budget) {
        Abort = true;
        break;
      }
      bool Matched = Exec.Status == MatchStatus::Match;
      TermRef InputConst = mkStrConst(*Input);
      TermRef Cond = mkAnd(mkEq(Q.Input, InputConst),
                           mkEq(Q.LastIndex, mkIntConst(*LastIndex)));

      if (T.Positive && Matched) {
        if (!Q.ValidateCaptures)
          continue;
        const MatchResult &R = *Exec.Result;
        // Compare the model's captures with the concrete ones.
        bool Mismatch = false;
        std::vector<TermRef> Pin;
        // Match start (decorated coordinates: input index + 1).
        int64_t WantStart = static_cast<int64_t>(R.Index) + 1;
        std::optional<int64_t> GotStart = Eval.evalInt(Q.Model.MatchStart, M);
        Mismatch |= !GotStart || *GotStart != WantStart;
        Pin.push_back(mkEq(Q.Model.MatchStart, mkIntConst(WantStart)));
        // C0.
        std::optional<UString> GotC0 = Eval.evalString(Q.Model.C0.Value, M);
        Mismatch |= !GotC0 || *GotC0 != R.Match;
        Pin.push_back(mkEq(Q.Model.C0.Value, mkStrConst(R.Match)));
        // C1..Cn.
        for (size_t I = 0; I < Q.Model.Captures.size(); ++I) {
          const CaptureVar &CV = Q.Model.Captures[I];
          bool WantDef = I < R.Captures.size() && R.Captures[I].has_value();
          std::optional<bool> GotDef = Eval.evalBool(CV.Defined, M);
          std::optional<UString> GotVal = Eval.evalString(CV.Value, M);
          UString WantVal = WantDef ? *R.Captures[I] : UString();
          bool CapOk = GotDef && *GotDef == WantDef &&
                       (!WantDef || (GotVal && *GotVal == WantVal));
          Mismatch |= !CapOk;
          Pin.push_back(WantDef ? TermRef(CV.Defined)
                                : mkNot(CV.Defined));
          Pin.push_back(mkEq(CV.Value, mkStrConst(WantVal)));
        }
        if (Mismatch) {
          Failed = true;
          P.push_back(mkImplies(Cond, mkAnd(std::move(Pin))));
        }
      } else if (T.Positive != Matched) {
        // Positive constraint but no concrete match, or negative
        // constraint but the word concretely matches: exclude the word.
        Failed = true;
        P.push_back(mkNot(Cond));
      }
    }
    if (Abort) {
      Out.Status = SolveStatus::Unknown;
      break;
    }
    if (!Failed) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      break;
    }
    Refined = true;
    ++Stats.TotalRefinements;
    Out.Refinements = Round + 1;
    if (Round + 1 >= Opts.RefinementLimit) {
      Out.Status = SolveStatus::Unknown;
      Out.HitRefinementLimit = true;
      ++Stats.QueriesHitLimit;
      break;
    }
  }

  // Memoize decisive results (Unknown stays retryable by design). A key
  // collision (see above) would re-insert an existing key; skip it.
  if (Opts.QueryCacheCapacity != 0 && Out.Status != SolveStatus::Unknown &&
      !Cache.find(Key)) {
    CacheEntry E;
    E.Status = Out.Status;
    E.Model = Out.Model;
    E.Refinements = Out.Refinements;
    E.VarOrder = std::move(VarNames);
    if (Cache.insert(std::move(Key), std::move(E)))
      ++Stats.CacheEvictions;
  }

  if (Refined)
    ++Stats.QueriesRefined;
  double Sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Stats.SolverSeconds += Sec;
  Stats.MaxQuerySeconds = std::max(Stats.MaxQuerySeconds, Sec);
  Stats.AllQueries.add(Sec);
  if (!Regexes.empty())
    Stats.WithRegex.add(Sec);
  if (HasCaptures)
    Stats.WithCaptures.add(Sec);
  if (Refined)
    Stats.WithRefinement.add(Sec);
  if (Out.HitRefinementLimit)
    Stats.HitLimit.add(Sec);
  return Out;
}
