//===- cegar/AnchoredLane.cpp - Anchored-classical solver lane -------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/AnchoredLane.h"

#include <map>
#include <tuple>

using namespace recap;

namespace {

inline bool cancelled(const std::atomic<bool> *Cancel) {
  return Cancel && Cancel->load(std::memory_order_relaxed);
}

} // namespace

CegarResult recap::solveAnchored(const std::vector<PathClause> &Clauses,
                                 const AnchoredPlan &Plan,
                                 const std::atomic<bool> *Cancel) {
  CegarResult Out; // Unknown until proven otherwise

  // Unsat certificates first: every clause language is exact and the
  // product ranges over the whole solver alphabet, so an empty product
  // means no assignment of that variable satisfies its clauses — the
  // conjunction is unsatisfiable no matter what the rest says. This
  // fires even when another variable's product failed to build.
  for (const AnchoredVarPlan &V : Plan.Vars)
    if (V.Product && V.Product->Compiled && V.Product->Empty) {
      Out.Status = SolveStatus::Unsat;
      return Out;
    }

  // Boolean-literal pre-pass over the plain clauses: forced literals
  // become part of the model, a literal forced both ways is a sound
  // Unsat, and anything non-literal is kept for per-candidate
  // evaluation.
  std::map<std::string, bool> Forced;
  std::vector<TermRef> Residual;
  for (const PathClause &C : Clauses) {
    if (C.Query)
      continue;
    const Term *T = C.Plain.get();
    bool Pol = C.Polarity;
    while (T->Kind == TermKind::Not) {
      Pol = !Pol;
      T = T->Kids[0].get();
    }
    if (T->Kind == TermKind::BoolConst) {
      if (T->BoolVal != Pol) {
        Out.Status = SolveStatus::Unsat;
        return Out;
      }
      continue;
    }
    if (T->Kind == TermKind::BoolVar) {
      auto [It, New] = Forced.emplace(T->Name, Pol);
      if (!New && It->second != Pol) {
        Out.Status = SolveStatus::Unsat;
        return Out;
      }
      continue;
    }
    Residual.push_back(C.Polarity ? C.Plain : mkNot(C.Plain));
  }

  if (!Plan.Viable || Plan.Vars.empty())
    return Out; // a product failed or found nothing — fall back

  // Per-variable filtering: keep the product words the concrete matcher
  // accepts with every clause's polarity. With exact clause languages
  // the oracle should agree with the product on every word; the check is
  // the lane's parity guard (and what makes a Sat answer a *validated*
  // model, same as a CEGAR round would). Fresh oracles throughout:
  // RegExpObject::LastIndex is mutable state, and in racing mode the
  // clause's shared oracle belongs to the general worker.
  TermEvaluator Eval;
  std::vector<std::vector<const UString *>> Words(Plan.Vars.size());
  for (size_t I = 0; I < Plan.Vars.size(); ++I) {
    const AnchoredVarPlan &V = Plan.Vars[I];
    std::vector<RegExpObject> Oracles;
    Oracles.reserve(V.Queries.size());
    for (const RegexQuery *Q : V.Queries)
      Oracles.emplace_back(Q->Oracle->compiled(),
                           Q->Oracle->matcher().stepBudget());
    for (const UString &W : V.Product->Words) {
      if (cancelled(Cancel))
        return Out;
      bool Ok = true;
      for (size_t QI = 0; QI < V.Queries.size() && Ok; ++QI) {
        Oracles[QI].LastIndex = 0;
        RegExpObject::ExecOutcome E = Oracles[QI].exec(W);
        if (E.Status == MatchStatus::Budget)
          return Out; // oracle gave up; this lane cannot decide
        Ok = (E.Status == MatchStatus::Match) == V.Polarity[QI];
      }
      if (Ok)
        Words[I].push_back(&W);
    }
    if (Words[I].empty())
      return Out; // enumeration found no validated word — fall back
  }

  // Cross-variable combination, bounded: walk the odometer over the
  // filtered word lists and evaluate the residual plain clauses under
  // each combined assignment. Regex clauses are already satisfied by
  // construction of the filtered lists.
  const uint64_t EvalBudget = 4096;
  uint64_t Evals = 0;
  std::vector<size_t> Idx(Plan.Vars.size(), 0);
  for (;;) {
    if (cancelled(Cancel) || Evals++ >= EvalBudget)
      return Out;
    Assignment M;
    for (const auto &[Name, Val] : Forced)
      M.Bools[Name] = Val;
    for (size_t I = 0; I < Plan.Vars.size(); ++I)
      M.Strings[Plan.Vars[I].Var] = *Words[I][Idx[I]];
    bool Ok = true;
    for (const TermRef &R : Residual) {
      std::optional<bool> B = Eval.evalBool(R, M);
      if (!B || !*B) {
        Ok = false;
        break;
      }
    }
    if (Ok) {
      Out.Status = SolveStatus::Sat;
      Out.Model = std::move(M);
      return Out;
    }
    size_t K = 0;
    for (; K < Idx.size(); ++K) {
      if (++Idx[K] < Words[K].size())
        break;
      Idx[K] = 0;
    }
    if (K == Idx.size())
      return Out; // combination space exhausted without a model
  }
}
