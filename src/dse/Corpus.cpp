//===- dse/Corpus.cpp - Corpus-scale DSE over the two-level scheduler ------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/Corpus.h"

#include <cassert>

using namespace recap;

DseCorpusResult recap::runDseCorpus(const std::vector<Program> &Programs,
                                    const DseCorpusOptions &Opts) {
  assert(Opts.Engine.BackendFactory &&
         "runDseCorpus requires EngineOptions::BackendFactory");

  DseCorpusResult Out;
  Out.RuntimeHandle =
      Opts.Runtime ? Opts.Runtime : std::make_shared<RegexRuntime>();
  RuntimeStats Before = Out.RuntimeHandle->stats();
  if (!Opts.CacheSnapshot.empty())
    Out.Snapshot = Out.RuntimeHandle->loadOnce(Opts.CacheSnapshot);
  Out.Results.resize(Programs.size());
  if (!Opts.Engine.BackendFactory) {
    Out.Runtime = Out.RuntimeHandle->stats().since(Before);
    return Out;
  }

  // One quarantine for the whole corpus (reliability layer, DESIGN.md
  // §9): a query that burned its deadline under program A is skipped when
  // program B reaches the same α-canonical key. Persisted like the
  // pattern snapshot so the skip list survives across processes.
  std::shared_ptr<Quarantine> Quar =
      Opts.Engine.Cegar.Reliability.SharedQuarantine;
  if (Opts.Engine.Cegar.Reliability.Enabled && !Quar) {
    Quar =
        std::make_shared<Quarantine>(Opts.Engine.Cegar.Reliability.QuarantinePolicy);
    if (!Opts.QuarantineSnapshot.empty())
      Quar->load(Opts.QuarantineSnapshot); // absent/corrupt = empty
  }

  sched::CorpusSchedulerOptions SchedOpts;
  SchedOpts.Workers = Opts.Workers;
  SchedOpts.ShardsPerTask = Opts.ShardsPerTask; // 0 normalized by ctor
  SchedOpts.ClampToHardware = Opts.ClampWorkers;
  sched::CorpusScheduler Sched(SchedOpts);

  for (size_t I = 0; I < Programs.size(); ++I)
    Sched.add([&, I](size_t, size_t Budget) {
      // The task's whole solver stack is born on this pool thread; the
      // slot grant becomes the run's shard count (1 = the bit-identical
      // serial engine), so threads executing across all tasks never
      // exceed the global budget.
      EngineOptions E = Opts.Engine;
      E.Runtime = Out.RuntimeHandle;
      E.Workers = Budget;
      // The corpus level already applied the clamp policy to the global
      // budget; a grant is never above it.
      E.ClampWorkers = false;
      // Snapshot handling is corpus-level (loaded once above).
      E.CacheSnapshot.clear();
      // Every task's shards burn into (and skip from) the same list.
      if (Quar)
        E.Cegar.Reliability.SharedQuarantine = Quar;
      try {
        std::unique_ptr<SolverBackend> Anchor = E.BackendFactory();
        DseEngine Engine(*Anchor, E);
        Out.Results[I] = Engine.run(Programs[I]);
      } catch (const std::exception &Ex) {
        // A task that cannot even build its anchor backend yields an
        // empty result for its program; the rest of the corpus runs.
        Out.Results[I].Errors.push_back(
            {EngineErrorKind::BackendConstruction, -1, Ex.what()});
      } catch (...) {
        Out.Results[I].Errors.push_back({EngineErrorKind::BackendConstruction,
                                         -1, "non-standard exception"});
      }
    });

  Out.Sched = Sched.run();
  if (!Opts.SaveSnapshot.empty()) {
    // One corpus pass = one snapshot generation: entries this run touched
    // are stamped current; the save then ages out entries idle past
    // SnapshotMaxAgeGenerations (no-op by default).
    Out.RuntimeHandle->bumpGeneration();
    SnapshotSaveOptions SaveOpts;
    SaveOpts.MaxAgeGenerations = Opts.SnapshotMaxAgeGenerations;
    Out.SnapshotSaved = Out.RuntimeHandle->save(Opts.SaveSnapshot, SaveOpts);
  }
  if (Quar) {
    Out.QuarantinedKeys = Quar->quarantined();
    // One corpus pass = one quarantine generation; the sidecar save then
    // evicts entries idle past MaxAgeGenerations (no-op by default).
    Quar->bumpGeneration();
    if (!Opts.QuarantineSnapshot.empty()) {
      uint64_t ExpBefore = Quar->expired();
      Out.QuarantineSaved = Quar->save(Opts.QuarantineSnapshot);
      Out.RuntimeHandle->statsHandle()->QuarantineExpired +=
          Quar->expired() - ExpBefore;
    }
  }
  // The window is cut after the save/eviction tail so QuarantineExpired
  // (and any save-path counters) land in this run's report.
  Out.Runtime = Out.RuntimeHandle->stats().since(Before);
  return Out;
}
