//===- dse/Interpreter.cpp - Concolic MiniJS interpreter -------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/Interpreter.h"

#include "api/StringMethods.h"

#include <cassert>

using namespace recap;

SymbolicRegExp *SymbolicContext::regexFor(const MiniExpr &Site) {
  auto It = Regexes.find(&Site);
  if (It != Regexes.end())
    return It->second.get();
  Result<std::shared_ptr<CompiledRegex>> C =
      Runtime->literal(Site.RegexSource);
  if (!C) {
    Regexes.emplace(&Site, nullptr);
    return nullptr;
  }
  std::string Prefix = "re" + std::to_string(Regexes.size());
  auto Sym =
      std::make_unique<SymbolicRegExp>(C.take(), Prefix, modelOptions());
  SymbolicRegExp *Out = Sym.get();
  Regexes.emplace(&Site, std::move(Sym));
  return Out;
}

std::shared_ptr<CompiledRegex>
SymbolicContext::compiledFor(const MiniExpr &Site) {
  Result<std::shared_ptr<CompiledRegex>> C =
      Runtime->literal(Site.RegexSource);
  return C ? C.take() : nullptr;
}

TermRef SymbolicContext::inputVar(const std::string &Param) {
  auto It = InputVars.find(Param);
  if (It != InputVars.end())
    return It->second;
  TermRef V = mkStrVar("in!" + Param);
  InputVars.emplace(Param, V);
  return V;
}

namespace recap {

namespace {

/// Concrete match state for an exec() result value.
struct MatchInfo {
  bool Matched = false;
  std::optional<MatchResult> Concrete;
  std::shared_ptr<RegexQuery> Query; // null below Captures level
};

/// A concolic value: concrete part plus optional symbolic terms.
struct CValue {
  enum class Kind : uint8_t { Undefined, Bool, Int, Str, Match } K =
      Kind::Undefined;
  bool B = false;
  int64_t I = 0;
  UString S;
  std::shared_ptr<MatchInfo> M;

  TermRef Sym;    ///< Bool/Int/String term for the concrete kind
  TermRef SymDef; ///< for maybe-undefined strings (captures): definedness

  static CValue undef() { return CValue(); }
  static CValue boolean(bool V, TermRef Sym = nullptr) {
    CValue C;
    C.K = Kind::Bool;
    C.B = V;
    C.Sym = std::move(Sym);
    return C;
  }
  static CValue integer(int64_t V, TermRef Sym = nullptr) {
    CValue C;
    C.K = Kind::Int;
    C.I = V;
    C.Sym = std::move(Sym);
    return C;
  }
  static CValue string(UString V, TermRef Sym = nullptr) {
    CValue C;
    C.K = Kind::Str;
    C.S = std::move(V);
    C.Sym = std::move(Sym);
    return C;
  }

  bool truthy() const {
    switch (K) {
    case Kind::Undefined:
      return false;
    case Kind::Bool:
      return B;
    case Kind::Int:
      return I != 0;
    case Kind::Str:
      return !S.empty();
    case Kind::Match:
      return M && M->Matched;
    }
    return false;
  }

  /// Symbolic term for the string value (constant lift if concrete-only).
  TermRef strTerm() const { return Sym ? Sym : mkStrConst(S); }
  TermRef intTerm() const { return Sym ? Sym : mkIntConst(I); }
  bool hasSym() const { return Sym != nullptr || SymDef != nullptr; }
};

} // namespace

/// One execution of a program.
class ExecState {
public:
  ExecState(const Interpreter &I, SymbolicContext &Ctx, const Program &P,
            const InputMap &Inputs)
      : Interp(I), Ctx(Ctx), Prog(P) {
    for (const std::string &Param : P.Params) {
      auto It = Inputs.find(Param);
      UString V = It == Inputs.end() ? UString() : It->second;
      TermRef Sym = Ctx.level() == SupportLevel::Concrete
                        ? nullptr
                        : Ctx.inputVar(Param);
      Env[Param] = CValue::string(std::move(V), std::move(Sym));
    }
  }

  Trace finish() && { return std::move(Out); }

  void exec(const StmtPtr &S) {
    if (!S)
      return;
    Out.Covered.insert(S->Id);
    CurrentSite = S->Id;
    switch (S->K) {
    case StmtKind::Nop:
      return;
    case StmtKind::Block:
      for (const StmtPtr &K : S->Kids)
        exec(K);
      return;
    case StmtKind::Let:
      Env[S->Name] = eval(*S->E);
      return;
    case StmtKind::If: {
      bool Taken = branch(*S->E, S->Id);
      if (Taken)
        exec(S->Kids[0]);
      else if (S->Kids.size() > 1)
        exec(S->Kids[1]);
      return;
    }
    case StmtKind::While: {
      size_t Iter = 0;
      while (branch(*S->E, S->Id)) {
        if (++Iter > Interp.MaxWhileIterations) {
          Out.Truncated = true;
          break;
        }
        exec(S->Kids[0]);
      }
      return;
    }
    case StmtKind::Assert: {
      bool Ok = branch(*S->E, S->Id);
      if (!Ok)
        Out.FailedAsserts.push_back(S->Id);
      return;
    }
    }
  }

private:
  const Interpreter &Interp;
  SymbolicContext &Ctx;
  const Program &Prog;
  std::map<std::string, CValue> Env;
  Trace Out;
  std::map<const MiniExpr *, std::shared_ptr<RegExpObject>> Oracles;

  /// Evaluates \p E as a branch condition, records the path clause, and
  /// returns the concrete outcome.
  bool branch(const MiniExpr &E, int SiteId) {
    CValue V = eval(E);
    bool Taken = V.truthy();
    TermRef Cond = truthCondition(V);
    if (Cond && Out.Path.size() < Interp.MaxPathLength)
      Out.Path.push_back({PathClause::plain(Cond, Taken), SiteId});
    return Taken;
  }

  /// Symbolic truthiness condition, or null if fully concrete.
  TermRef truthCondition(const CValue &V) {
    switch (V.K) {
    case CValue::Kind::Bool:
    case CValue::Kind::Int:
      if (!V.Sym)
        return nullptr;
      return V.K == CValue::Kind::Bool
                 ? V.Sym
                 : mkNot(mkEq(V.Sym, mkIntConst(0)));
    case CValue::Kind::Str:
      if (!V.Sym && !V.SymDef)
        return nullptr;
      if (V.SymDef)
        return mkAnd(V.SymDef,
                     mkNot(mkEq(V.strTerm(), mkStrConst(UString()))));
      return mkNot(mkEq(V.Sym, mkStrConst(UString())));
    case CValue::Kind::Undefined:
      // A maybe-undefined capture that is concretely undefined: truthiness
      // is Def ∧ value ≠ "".
      if (V.SymDef)
        return mkAnd(V.SymDef,
                     mkNot(mkEq(V.strTerm(), mkStrConst(UString()))));
      return nullptr;
    case CValue::Kind::Match:
      // The membership clause was already recorded at the exec site;
      // truthiness adds nothing new.
      return nullptr;
    }
    return nullptr;
  }

  std::shared_ptr<RegExpObject> oracleFor(const MiniExpr &Site) {
    auto It = Oracles.find(&Site);
    if (It != Oracles.end())
      return It->second;
    std::shared_ptr<RegExpObject> O;
    if (std::shared_ptr<CompiledRegex> C = Ctx.compiledFor(Site))
      O = std::make_shared<RegExpObject>(std::move(C));
    Oracles.emplace(&Site, O);
    return O;
  }

  CValue eval(const MiniExpr &E) {
    switch (E.K) {
    case ExprKind::StrConst:
      return CValue::string(E.Str);
    case ExprKind::IntConst:
      return CValue::integer(E.Int);
    case ExprKind::BoolConst:
      return CValue::boolean(E.Bool);
    case ExprKind::UndefinedConst:
      return CValue::undef();
    case ExprKind::Var: {
      auto It = Env.find(E.Name);
      return It == Env.end() ? CValue::undef() : It->second;
    }
    case ExprKind::Eq:
      return evalEq(eval(*E.Kids[0]), eval(*E.Kids[1]));
    case ExprKind::Lt: {
      CValue A = eval(*E.Kids[0]), B = eval(*E.Kids[1]);
      bool C = A.K == CValue::Kind::Int && B.K == CValue::Kind::Int &&
               A.I < B.I;
      TermRef Sym;
      if ((A.Sym || B.Sym) && A.K == CValue::Kind::Int &&
          B.K == CValue::Kind::Int)
        Sym = mkLt(A.intTerm(), B.intTerm());
      return CValue::boolean(C, Sym);
    }
    case ExprKind::Not: {
      CValue A = eval(*E.Kids[0]);
      TermRef Cond = truthCondition(A);
      return CValue::boolean(!A.truthy(), Cond ? mkNot(Cond) : nullptr);
    }
    case ExprKind::And:
    case ExprKind::Or: {
      CValue A = eval(*E.Kids[0]), B = eval(*E.Kids[1]);
      bool C = E.K == ExprKind::And ? (A.truthy() && B.truthy())
                                    : (A.truthy() || B.truthy());
      TermRef CA = truthCondition(A), CB = truthCondition(B);
      TermRef Sym;
      if (CA || CB) {
        TermRef TA = CA ? CA : mkBoolConst(A.truthy());
        TermRef TB = CB ? CB : mkBoolConst(B.truthy());
        Sym = E.K == ExprKind::And ? mkAnd(TA, TB) : mkOr(TA, TB);
      }
      return CValue::boolean(C, Sym);
    }
    case ExprKind::StrConcat: {
      CValue A = eval(*E.Kids[0]), B = eval(*E.Kids[1]);
      UString S = A.S + B.S;
      TermRef Sym;
      if (A.Sym || B.Sym)
        Sym = mkConcat(A.strTerm(), B.strTerm());
      return CValue::string(std::move(S), std::move(Sym));
    }
    case ExprKind::StrLen: {
      CValue A = eval(*E.Kids[0]);
      TermRef Sym = A.Sym ? mkStrLen(A.Sym) : nullptr;
      return CValue::integer(static_cast<int64_t>(A.S.size()),
                             std::move(Sym));
    }
    case ExprKind::CharAt: {
      CValue A = eval(*E.Kids[0]), I = eval(*E.Kids[1]);
      // Concretized (no substring operator in the IR; see DESIGN.md).
      if (I.I < 0 || static_cast<size_t>(I.I) >= A.S.size())
        return CValue::undef();
      return CValue::string(UString(1, A.S[I.I]));
    }
    case ExprKind::Test:
    case ExprKind::Exec:
      return evalRegex(E);
    case ExprKind::Replace:
      return evalReplace(E);
    case ExprKind::Search:
      return evalSearch(E);
    case ExprKind::MatchIndex: {
      CValue A = eval(*E.Kids[0]);
      return evalMatchIndex(A, E.Int);
    }
    case ExprKind::Truthy: {
      CValue A = eval(*E.Kids[0]);
      return CValue::boolean(A.truthy(), truthCondition(A));
    }
    }
    assert(false && "unknown expression kind");
    return CValue::undef();
  }

  CValue evalEq(const CValue &A, const CValue &B) {
    // Concrete ===.
    bool C = false;
    if (A.K == B.K) {
      switch (A.K) {
      case CValue::Kind::Undefined:
        C = true;
        break;
      case CValue::Kind::Bool:
        C = A.B == B.B;
        break;
      case CValue::Kind::Int:
        C = A.I == B.I;
        break;
      case CValue::Kind::Str:
        C = A.S == B.S;
        break;
      case CValue::Kind::Match:
        C = A.M == B.M;
        break;
      }
    }
    if (!A.hasSym() && !B.hasSym())
      return CValue::boolean(C);

    // Symbolic equality for string-ish kinds (including maybe-undefined
    // captures compared against strings or undefined).
    auto IsStrIsh = [](const CValue &V) {
      return V.K == CValue::Kind::Str || V.K == CValue::Kind::Undefined;
    };
    if (IsStrIsh(A) && IsStrIsh(B)) {
      TermRef DefA = A.SymDef ? A.SymDef
                              : mkBoolConst(A.K == CValue::Kind::Str);
      TermRef DefB = B.SymDef ? B.SymDef
                              : mkBoolConst(B.K == CValue::Kind::Str);
      TermRef ValEq = mkEq(A.strTerm(), B.strTerm());
      // Equal iff both undefined, or both defined with equal values.
      TermRef Sym = mkOr(mkAnd(mkNot(DefA), mkNot(DefB)),
                         mkAnd({DefA, DefB, ValEq}));
      return CValue::boolean(C, Sym);
    }
    if (A.K == CValue::Kind::Int && B.K == CValue::Kind::Int)
      return CValue::boolean(C, mkEq(A.intTerm(), B.intTerm()));
    // Other combinations: concretize.
    return CValue::boolean(C);
  }

  CValue evalRegex(const MiniExpr &E) {
    CValue Arg = eval(*E.Kids[0]);
    std::shared_ptr<RegExpObject> Oracle = oracleFor(E);
    if (!Oracle)
      return CValue::undef(); // malformed literal
    UString Subject = Arg.K == CValue::Kind::Str ? Arg.S : UString();
    int64_t LastIndexBefore = Oracle->LastIndex;
    RegExpObject::ExecOutcome Res = Oracle->exec(Subject);
    bool Matched = Res.Status == MatchStatus::Match;

    auto Info = std::make_shared<MatchInfo>();
    Info->Matched = Matched;
    Info->Concrete = Res.Result;

    bool Symbolic = Ctx.level() != SupportLevel::Concrete &&
                    Arg.Sym != nullptr &&
                    Arg.K == CValue::Kind::Str;
    if (Symbolic) {
      SymbolicRegExp *Sym = Ctx.regexFor(E);
      if (Sym) {
        std::shared_ptr<RegexQuery> Q =
            E.K == ExprKind::Test
                ? Sym->test(Arg.Sym, mkIntConst(LastIndexBefore))
                : Sym->exec(Arg.Sym, mkIntConst(LastIndexBefore));
        // The membership clause enters the path condition at the call
        // site with the concrete polarity (paper §3.2).
        if (Out.Path.size() < Interp.MaxPathLength)
          Out.Path.push_back({PathClause::regex(Q, Matched), CurrentSite});
        if (Ctx.level() >= SupportLevel::Captures)
          Info->Query = Q;
      }
    }

    if (E.K == ExprKind::Test)
      return CValue::boolean(Matched);
    CValue V;
    V.K = CValue::Kind::Match;
    V.M = std::move(Info);
    return V;
  }

  /// arg.replace(re, template): concretely exact; symbolically the §6.1
  /// partial model (first occurrence) at capture-aware levels. The
  /// replacement template may reference captures, so below the Captures
  /// level the result concretizes.
  CValue evalReplace(const MiniExpr &E) {
    CValue Arg = eval(*E.Kids[0]);
    std::shared_ptr<RegExpObject> Oracle = oracleFor(E);
    if (!Oracle)
      return Arg;
    UString Subject = Arg.K == CValue::Kind::Str ? Arg.S : UString();
    UString Replaced = concreteReplace(*Oracle, Subject, E.Str);
    MatchResult M;
    bool Matched =
        Oracle->matcher().search(Subject, 0, M) == MatchStatus::Match;

    TermRef Sym;
    if (Ctx.level() >= SupportLevel::Captures && Arg.Sym &&
        Arg.K == CValue::Kind::Str) {
      if (SymbolicRegExp *Re = Ctx.regexFor(E)) {
        SymbolicStringMethods Methods(*Re);
        SymbolicReplace Rep = Methods.replace(Arg.Sym, E.Str);
        if (Out.Path.size() < Interp.MaxPathLength)
          Out.Path.push_back(
              {PathClause::regex(Rep.Query, Matched), CurrentSite});
        Sym = Matched ? Rep.Replaced : Rep.Unchanged;
      }
    }
    return CValue::string(std::move(Replaced), std::move(Sym));
  }

  CValue evalSearch(const MiniExpr &E) {
    CValue Arg = eval(*E.Kids[0]);
    std::shared_ptr<RegExpObject> Oracle = oracleFor(E);
    if (!Oracle)
      return CValue::integer(-1);
    UString Subject = Arg.K == CValue::Kind::Str ? Arg.S : UString();
    int64_t Index = concreteSearch(*Oracle, Subject);

    TermRef Sym;
    if (Ctx.level() != SupportLevel::Concrete && Arg.Sym &&
        Arg.K == CValue::Kind::Str) {
      if (SymbolicRegExp *Re = Ctx.regexFor(E)) {
        SymbolicStringMethods Methods(*Re);
        SymbolicSearch Search = Methods.search(Arg.Sym);
        if (Out.Path.size() < Interp.MaxPathLength)
          Out.Path.push_back(
              {PathClause::regex(Search.Query, Index >= 0), CurrentSite});
        Sym = Index >= 0 ? Search.FoundIndex : Search.NotFound;
      }
    }
    return CValue::integer(Index, std::move(Sym));
  }

  CValue evalMatchIndex(const CValue &A, int64_t Index) {
    if (A.K != CValue::Kind::Match || !A.M || !A.M->Matched ||
        !A.M->Concrete)
      return CValue::undef();
    const MatchResult &R = *A.M->Concrete;
    CValue Out;
    bool Defined;
    UString Val;
    if (Index == 0) {
      Defined = true;
      Val = R.Match;
    } else if (Index >= 1 &&
               static_cast<size_t>(Index) <= R.Captures.size()) {
      Defined = R.Captures[Index - 1].has_value();
      Val = Defined ? *R.Captures[Index - 1] : UString();
    } else {
      return CValue::undef();
    }
    Out.K = Defined ? CValue::Kind::Str : CValue::Kind::Undefined;
    Out.S = Val;
    if (A.M->Query) {
      CaptureVar CV = SymbolicRegExp::capture(*A.M->Query,
                                              static_cast<size_t>(Index));
      Out.Sym = CV.Value;
      Out.SymDef = CV.Defined;
    }
    return Out;
  }

  int CurrentSite = -1;
};

} // namespace recap

Trace Interpreter::run(const Program &P, const InputMap &Inputs) {
  ExecState State(*this, Ctx, P, Inputs);
  State.exec(P.Body);
  return std::move(State).finish();
}
