//===- dse/MiniJS.h - A small JS-like language for DSE ----------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJS is the workload language of the reproduction's DSE substrate: a
/// small dynamically-typed JS-like language with strings, regex test/exec,
/// match arrays, and assertions. It stands in for the Node.js programs
/// ExpoSE instruments (DESIGN.md substitutions): branching driven by regex
/// operations exercises exactly the constraint-generation paths the paper
/// evaluates.
///
/// Programs are built with the mjs:: combinator helpers (see Builders).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_DSE_MINIJS_H
#define RECAP_DSE_MINIJS_H

#include "regex/Regex.h"

#include <memory>
#include <string>
#include <vector>

namespace recap {

enum class ExprKind : uint8_t {
  StrConst,
  IntConst,
  BoolConst,
  UndefinedConst,
  Var,
  Eq,       ///< === (strings, ints, bools, undefined)
  Lt,       ///< < on ints
  Not,
  And,      ///< eager boolean &&
  Or,       ///< eager boolean ||
  StrConcat,
  StrLen,   ///< s.length
  CharAt,   ///< s[i] (one-char string or undefined)
  Test,     ///< regexLiteral.test(arg)
  Exec,     ///< regexLiteral.exec(arg)
  Replace,  ///< arg.replace(regexLiteral, replacementString)
  Search,   ///< arg.search(regexLiteral)
  MatchIndex, ///< m[i] on a match array (string or undefined)
  Truthy,   ///< JS truthiness (used on exec results / strings / bools)
};

struct MiniExpr;
using ExprPtr = std::shared_ptr<const MiniExpr>;

struct MiniExpr {
  ExprKind K;
  // Payloads (by kind):
  UString Str;                ///< StrConst / Replace replacement template
  int64_t Int = 0;            ///< IntConst / MatchIndex index
  bool Bool = false;          ///< BoolConst
  std::string Name;           ///< Var
  std::string RegexSource;    ///< Test/Exec/Replace/Search regex literal
  std::vector<ExprPtr> Kids;

  explicit MiniExpr(ExprKind K) : K(K) {}
};

enum class StmtKind : uint8_t {
  Let,    ///< let Name = Expr (also plain assignment)
  If,     ///< if (Cond) Then else Else
  While,  ///< while (Cond) Body  (iteration-bounded by the interpreter)
  Assert, ///< assert(Expr) — failure is the bug signal
  Block,
  Nop,
};

struct MiniStmt;
using StmtPtr = std::shared_ptr<const MiniStmt>;

struct MiniStmt {
  StmtKind K;
  std::string Name;          ///< Let
  ExprPtr E;                 ///< Let value / If-While cond / Assert expr
  std::vector<StmtPtr> Kids; ///< If: {Then, Else?}; While: {Body}; Block
  /// Unique id assigned by Program::finalize, used for coverage and CUPA
  /// buckets.
  mutable int Id = -1;

  explicit MiniStmt(StmtKind K) : K(K) {}
};

/// A MiniJS program: symbolic string parameters plus a body.
struct Program {
  std::string Name;
  std::vector<std::string> Params; ///< symbolic string inputs
  StmtPtr Body;
  int NumStmts = 0;

  /// Assigns statement ids (call once after construction).
  void finalize();
};

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

namespace mjs {

ExprPtr str(const std::string &Utf8);
ExprPtr integer(int64_t V);
ExprPtr boolean(bool B);
ExprPtr undefined();
ExprPtr var(const std::string &Name);
ExprPtr eq(ExprPtr A, ExprPtr B);
ExprPtr ne(ExprPtr A, ExprPtr B);
ExprPtr lt(ExprPtr A, ExprPtr B);
ExprPtr not_(ExprPtr A);
ExprPtr and_(ExprPtr A, ExprPtr B);
ExprPtr or_(ExprPtr A, ExprPtr B);
ExprPtr concat(ExprPtr A, ExprPtr B);
ExprPtr len(ExprPtr S);
ExprPtr charAt(ExprPtr S, ExprPtr I);
/// \p RegexLiteral is full literal syntax, e.g. "/go+d/i".
ExprPtr test(const std::string &RegexLiteral, ExprPtr Arg);
ExprPtr exec(const std::string &RegexLiteral, ExprPtr Arg);
/// arg.replace(/re/, "replacement") — $&, $1..$9, $$ supported.
ExprPtr replace(const std::string &RegexLiteral, ExprPtr Arg,
                const std::string &ReplacementUtf8);
/// arg.search(/re/) — first match index or -1.
ExprPtr search(const std::string &RegexLiteral, ExprPtr Arg);
ExprPtr matchIndex(ExprPtr Match, int64_t I);
ExprPtr truthy(ExprPtr A);

StmtPtr let_(const std::string &Name, ExprPtr E);
StmtPtr if_(ExprPtr Cond, StmtPtr Then, StmtPtr Else = nullptr);
StmtPtr while_(ExprPtr Cond, StmtPtr Body);
StmtPtr assert_(ExprPtr E);
StmtPtr block(std::vector<StmtPtr> Stmts);
StmtPtr nop();

} // namespace mjs

} // namespace recap

#endif // RECAP_DSE_MINIJS_H
