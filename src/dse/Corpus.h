//===- dse/Corpus.h - Corpus-scale DSE over the two-level scheduler -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// runDseCorpus drives a whole corpus of programs through the DSE engine
/// as ONE scheduling job (DESIGN.md §7): each program is a task on a
/// sched::CorpusScheduler over a single global worker budget, every task
/// shares one RegexRuntime (patterns repeated across programs compile
/// once), and a task granted more than one budget slot runs its engine
/// with that many intra-run shards — two-level parallelism under one
/// worker count, no nested oversubscription. The shared runtime can boot
/// warm from a snapshot (CacheSnapshot) and persist itself afterwards
/// (SaveSnapshot), which is what lets corpus jobs start hot across
/// processes.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_DSE_CORPUS_H
#define RECAP_DSE_CORPUS_H

#include "dse/Engine.h"
#include "sched/CorpusScheduler.h"

namespace recap {

struct DseCorpusOptions {
  /// Per-program engine configuration. BackendFactory is REQUIRED (each
  /// task builds its solver stack on its own pool thread); Workers,
  /// Runtime and CacheSnapshot of this template are overridden by the
  /// corpus runner (the slot grant, the shared runtime, and the
  /// corpus-level snapshot below, respectively).
  EngineOptions Engine;
  /// Global worker budget for the whole corpus. 0 = hardware threads.
  size_t Workers = 0;
  /// Maximum budget slots one program's run may hold (1 = every program
  /// runs the serial engine; N lets a run borrow up to N-1 extra shards
  /// when the budget has slack).
  size_t ShardsPerTask = 1;
  /// Clamp the global budget to hardware_concurrency() (the per-run
  /// equivalent of EngineOptions::ClampWorkers; stress tests turn it
  /// off).
  bool ClampWorkers = true;
  /// Warm-start snapshot loaded into the shared runtime before any task
  /// runs (cold start when empty/absent/corrupt — never an error).
  std::string CacheSnapshot;
  /// When non-empty, the shared runtime is saved here after the corpus
  /// finishes, so the next process starts warm.
  std::string SaveSnapshot;
  /// Snapshot aging: one corpus run = one runtime generation; entries
  /// untouched for more than this many generations are dropped from the
  /// SaveSnapshot write (RuntimeStats::AgedOut), so one-off patterns stop
  /// accumulating across runs. 0 = keep everything.
  uint64_t SnapshotMaxAgeGenerations = 0;
  /// With Engine.Cegar.Reliability.Enabled: quarantine sidecar path.
  /// Loaded into the corpus-wide shared Quarantine before any task runs
  /// (burn counts merge by max; corrupt/absent = empty, never an error)
  /// and saved back afterwards, so queries that repeatedly burned their
  /// deadline are skipped across processes, like the pattern snapshot.
  std::string QuarantineSnapshot;
  /// Shared runtime for the whole corpus; created when null.
  std::shared_ptr<RegexRuntime> Runtime;
};

struct DseCorpusResult {
  /// One EngineResult per program, in input order (task interleaving
  /// never reorders attribution). Caveat: the per-result Runtime stats
  /// windows are cut over the SHARED runtime, so with concurrent tasks
  /// they overlap — counters another program generated during this
  /// one's run land in both windows. Per-program solver/CEGAR/coverage
  /// fields are exact; for pattern-cache accounting use the corpus-wide
  /// Runtime window below.
  std::vector<EngineResult> Results;
  /// Program-level scheduling counters (tasks, borrowed slots, budget
  /// high-water).
  sched::CorpusScheduler::Stats Sched;
  /// The corpus-wide RuntimeStats window (snapshot loads included).
  RuntimeStats Runtime;
  /// Outcome of the CacheSnapshot load (default-constructed when no
  /// snapshot was named).
  SnapshotLoadResult Snapshot;
  /// True when SaveSnapshot was requested and the write succeeded; a
  /// false with SaveSnapshot set means the next process starts cold
  /// (unwritable path, full disk) and the caller should say so.
  bool SnapshotSaved = false;
  /// Keys quarantined by the end of the corpus (0 when the reliability
  /// layer is off).
  size_t QuarantinedKeys = 0;
  /// SnapshotSaved's analogue for QuarantineSnapshot.
  bool QuarantineSaved = false;
  /// The shared runtime, for chaining further phases or saving again.
  std::shared_ptr<RegexRuntime> RuntimeHandle;

  uint64_t totalTests() const {
    uint64_t N = 0;
    for (const EngineResult &R : Results)
      N += R.TestsRun;
    return N;
  }
  uint64_t bugsFound() const {
    uint64_t N = 0;
    for (const EngineResult &R : Results)
      N += R.bugFound() ? 1 : 0;
    return N;
  }
};

/// Runs every program through DSE over one shared worker budget and one
/// shared pattern runtime. Requires Opts.Engine.BackendFactory.
DseCorpusResult runDseCorpus(const std::vector<Program> &Programs,
                             const DseCorpusOptions &Opts);

} // namespace recap

#endif // RECAP_DSE_CORPUS_H
