//===- dse/Workloads.h - Evaluation workloads -------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJS stand-ins for the paper's evaluation subjects (DESIGN.md
/// substitutions): eleven "libraries" mirroring the regex idioms of the
/// NPM packages in Table 6, and a procedural package generator for the
/// 1,131-package breakdown of Tables 7 and 8. Each program's branching is
/// driven by regex test/exec on symbolic inputs, so the DSE support levels
/// differ exactly where the paper's do.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_DSE_WORKLOADS_H
#define RECAP_DSE_WORKLOADS_H

#include "dse/MiniJS.h"

namespace recap {

/// The Table 6 subjects. Names match the paper's library column.
std::vector<Program> table6Libraries();

/// Procedurally generated "NPM package" program for Table 7/8 runs.
/// Deterministic in \p Seed; every program symbolically executes at least
/// one regex operation (the paper's package selection criterion).
Program generateMiniPackage(uint64_t Seed);

/// The Listing 1 program (also used by tests and examples).
Program listing1Program();

} // namespace recap

#endif // RECAP_DSE_WORKLOADS_H
