//===- dse/MiniJS.cpp - A small JS-like language for DSE -------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/MiniJS.h"

using namespace recap;

namespace {

std::shared_ptr<MiniExpr> make(ExprKind K) {
  return std::make_shared<MiniExpr>(K);
}

std::shared_ptr<MiniStmt> makeS(StmtKind K) {
  return std::make_shared<MiniStmt>(K);
}

} // namespace

ExprPtr mjs::str(const std::string &Utf8) {
  auto E = make(ExprKind::StrConst);
  E->Str = fromUTF8(Utf8);
  return E;
}

ExprPtr mjs::integer(int64_t V) {
  auto E = make(ExprKind::IntConst);
  E->Int = V;
  return E;
}

ExprPtr mjs::boolean(bool B) {
  auto E = make(ExprKind::BoolConst);
  E->Bool = B;
  return E;
}

ExprPtr mjs::undefined() { return make(ExprKind::UndefinedConst); }

ExprPtr mjs::var(const std::string &Name) {
  auto E = make(ExprKind::Var);
  E->Name = Name;
  return E;
}

static ExprPtr binary(ExprKind K, ExprPtr A, ExprPtr B) {
  auto E = std::make_shared<MiniExpr>(K);
  E->Kids = {std::move(A), std::move(B)};
  return E;
}

ExprPtr mjs::eq(ExprPtr A, ExprPtr B) {
  return binary(ExprKind::Eq, std::move(A), std::move(B));
}

ExprPtr mjs::ne(ExprPtr A, ExprPtr B) {
  return not_(eq(std::move(A), std::move(B)));
}

ExprPtr mjs::lt(ExprPtr A, ExprPtr B) {
  return binary(ExprKind::Lt, std::move(A), std::move(B));
}

ExprPtr mjs::not_(ExprPtr A) {
  auto E = make(ExprKind::Not);
  E->Kids = {std::move(A)};
  return E;
}

ExprPtr mjs::and_(ExprPtr A, ExprPtr B) {
  return binary(ExprKind::And, std::move(A), std::move(B));
}

ExprPtr mjs::or_(ExprPtr A, ExprPtr B) {
  return binary(ExprKind::Or, std::move(A), std::move(B));
}

ExprPtr mjs::concat(ExprPtr A, ExprPtr B) {
  return binary(ExprKind::StrConcat, std::move(A), std::move(B));
}

ExprPtr mjs::len(ExprPtr S) {
  auto E = make(ExprKind::StrLen);
  E->Kids = {std::move(S)};
  return E;
}

ExprPtr mjs::charAt(ExprPtr S, ExprPtr I) {
  return binary(ExprKind::CharAt, std::move(S), std::move(I));
}

ExprPtr mjs::test(const std::string &RegexLiteral, ExprPtr Arg) {
  auto E = make(ExprKind::Test);
  E->RegexSource = RegexLiteral;
  E->Kids = {std::move(Arg)};
  return E;
}

ExprPtr mjs::exec(const std::string &RegexLiteral, ExprPtr Arg) {
  auto E = make(ExprKind::Exec);
  E->RegexSource = RegexLiteral;
  E->Kids = {std::move(Arg)};
  return E;
}

ExprPtr mjs::replace(const std::string &RegexLiteral, ExprPtr Arg,
                     const std::string &ReplacementUtf8) {
  auto E = make(ExprKind::Replace);
  E->RegexSource = RegexLiteral;
  E->Str = fromUTF8(ReplacementUtf8);
  E->Kids = {std::move(Arg)};
  return E;
}

ExprPtr mjs::search(const std::string &RegexLiteral, ExprPtr Arg) {
  auto E = make(ExprKind::Search);
  E->RegexSource = RegexLiteral;
  E->Kids = {std::move(Arg)};
  return E;
}

ExprPtr mjs::matchIndex(ExprPtr Match, int64_t I) {
  auto E = make(ExprKind::MatchIndex);
  E->Int = I;
  E->Kids = {std::move(Match)};
  return E;
}

ExprPtr mjs::truthy(ExprPtr A) {
  auto E = make(ExprKind::Truthy);
  E->Kids = {std::move(A)};
  return E;
}

StmtPtr mjs::let_(const std::string &Name, ExprPtr E) {
  auto S = makeS(StmtKind::Let);
  S->Name = Name;
  S->E = std::move(E);
  return S;
}

StmtPtr mjs::if_(ExprPtr Cond, StmtPtr Then, StmtPtr Else) {
  auto S = makeS(StmtKind::If);
  S->E = std::move(Cond);
  S->Kids.push_back(std::move(Then));
  if (Else)
    S->Kids.push_back(std::move(Else));
  return S;
}

StmtPtr mjs::while_(ExprPtr Cond, StmtPtr Body) {
  auto S = makeS(StmtKind::While);
  S->E = std::move(Cond);
  S->Kids.push_back(std::move(Body));
  return S;
}

StmtPtr mjs::assert_(ExprPtr E) {
  auto S = makeS(StmtKind::Assert);
  S->E = std::move(E);
  return S;
}

StmtPtr mjs::block(std::vector<StmtPtr> Stmts) {
  auto S = makeS(StmtKind::Block);
  S->Kids = std::move(Stmts);
  return S;
}

StmtPtr mjs::nop() { return makeS(StmtKind::Nop); }

void Program::finalize() {
  int Next = 0;
  std::function<void(const StmtPtr &)> Number = [&](const StmtPtr &S) {
    if (!S)
      return;
    S->Id = Next++;
    for (const StmtPtr &K : S->Kids)
      Number(K);
  };
  Number(Body);
  NumStmts = Next;
}
