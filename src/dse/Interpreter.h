//===- dse/Interpreter.h - Concolic MiniJS interpreter ----------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concolic interpreter for MiniJS: every value carries a concrete part
/// and an optional symbolic term. Regex test/exec sites append a capturing
/// language membership clause to the path condition with the polarity of
/// the concrete outcome, exactly as in the paper's §3.2 walkthrough; match
/// arrays expose symbolic captures (definedness + value).
///
/// The four regex support levels of Table 7 are selected per run:
///   Concrete     — regex calls are fully concretized,
///   Model        — membership modeled, captures concretized,
///   Captures     — full capture/backreference model, no refinement,
///   Refinement   — full model plus the Algorithm-1 CEGAR loop.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_DSE_INTERPRETER_H
#define RECAP_DSE_INTERPRETER_H

#include "api/SymbolicRegExp.h"
#include "dse/MiniJS.h"
#include "runtime/RegexRuntime.h"

#include <map>
#include <set>

namespace recap {

enum class SupportLevel : uint8_t {
  Concrete,
  Model,
  Captures,
  Refinement,
};

/// One recorded branch decision.
struct BranchRecord {
  PathClause Clause;
  int SiteId = -1;
};

/// Result of one concolic execution.
struct Trace {
  std::vector<BranchRecord> Path;
  std::set<int> Covered;
  std::vector<int> FailedAsserts;
  bool Truncated = false;
};

using InputMap = std::map<std::string, UString>;

/// Per-program symbolic state shared across runs (symbolic regexes keyed
/// by call site so variable prefixes stay stable). All regex compilation
/// goes through one RegexRuntime, so distinct call sites naming the same
/// (pattern, flags) pair share a single CompiledRegex — parser, matcher
/// and model template run once per pattern per execution, not per site or
/// per test case.
class SymbolicContext {
public:
  explicit SymbolicContext(SupportLevel Level,
                           std::shared_ptr<RegexRuntime> RT = nullptr)
      : Level(Level),
        Runtime(RT ? std::move(RT) : std::make_shared<RegexRuntime>()) {}

  SupportLevel level() const { return Level; }
  ModelOptions modelOptions() const {
    ModelOptions O;
    O.ModelCaptures = Level >= SupportLevel::Captures;
    return O;
  }

  SymbolicRegExp *regexFor(const MiniExpr &Site);
  /// Shared compiled regex for \p Site's literal (null on parse errors).
  std::shared_ptr<CompiledRegex> compiledFor(const MiniExpr &Site);
  TermRef inputVar(const std::string &Param);

  const std::shared_ptr<RegexRuntime> &runtime() const { return Runtime; }

private:
  SupportLevel Level;
  std::shared_ptr<RegexRuntime> Runtime;
  std::map<const MiniExpr *, std::unique_ptr<SymbolicRegExp>> Regexes;
  std::map<std::string, TermRef> InputVars;
};

/// Executes a program on concrete inputs, recording the path condition.
class Interpreter {
public:
  Interpreter(SymbolicContext &Ctx, size_t MaxWhileIterations = 32,
              size_t MaxPathLength = 512)
      : Ctx(Ctx), MaxWhileIterations(MaxWhileIterations),
        MaxPathLength(MaxPathLength) {}

  Trace run(const Program &P, const InputMap &Inputs);

private:
  SymbolicContext &Ctx;
  size_t MaxWhileIterations;
  size_t MaxPathLength;
  friend class ExecState;
};

} // namespace recap

#endif // RECAP_DSE_INTERPRETER_H
