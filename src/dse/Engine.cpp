//===- dse/Engine.cpp - Generational-search DSE engine ---------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"

#include "cegar/BackendDispatcher.h"

#include <chrono>
#include <map>

using namespace recap;

DseEngine::DseEngine(SolverBackend &Backend, EngineOptions Opts)
    : Backend(Backend), Opts(Opts) {}

namespace {

/// Signature of a flip target: identifies "path prefix + flipped clause"
/// so each candidate is attempted once (generational search).
uint64_t flipSignature(const std::vector<BranchRecord> &Path, size_t Flip) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (size_t I = 0; I <= Flip; ++I) {
    bool Pol = Path[I].Clause.Polarity;
    if (I == Flip)
      Pol = !Pol;
    Mix(static_cast<uint64_t>(Path[I].SiteId) * 2 + (Pol ? 1 : 0));
  }
  Mix(Flip);
  return H;
}

struct QueuedTest {
  InputMap Inputs;
  int Bucket; ///< site id of the flipped clause (CUPA bucket key)
};

} // namespace

EngineResult DseEngine::run(const Program &P) {
  auto T0 = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };

  EngineResult Out;
  Out.TotalStmts = P.NumStmts;

  std::shared_ptr<RegexRuntime> Runtime =
      Opts.Runtime ? Opts.Runtime : std::make_shared<RegexRuntime>();
  // A supplied runtime is cumulative across runs; report this run's
  // window only.
  RuntimeStats RuntimeBefore = Runtime->stats();
  SymbolicContext Ctx(Opts.Level, Runtime);
  Interpreter Interp(Ctx, Opts.MaxWhileIterations);
  // Optional feature-routed dispatch: classical-fragment problems go to
  // an engine-owned automata backend, everything else (and every
  // classical-lane Unknown) to the supplied backend. Counters land in
  // the runtime's shared stats block, i.e. in Out.Runtime's window.
  std::unique_ptr<SolverBackend> LocalLane;
  std::unique_ptr<BackendDispatcher> Dispatcher;
  std::unique_ptr<CegarSolver> SolverPtr;
  if (Opts.Dispatch) {
    LocalLane = makeLocalBackend();
    Dispatcher = std::make_unique<BackendDispatcher>(
        *LocalLane, Backend, Runtime->statsHandle());
    SolverPtr = std::make_unique<CegarSolver>(*Dispatcher, Opts.Cegar);
  } else {
    SolverPtr = std::make_unique<CegarSolver>(Backend, Opts.Cegar);
  }
  CegarSolver &Solver = *SolverPtr;
  std::mt19937_64 Rng(Opts.Seed);

  // CUPA buckets: test cases grouped by the program point whose flipped
  // clause generated them; the least-accessed bucket is served first.
  std::map<int, std::vector<QueuedTest>> Buckets;
  std::map<int, uint64_t> Access;
  std::set<uint64_t> Attempted;
  // Test cases whose path had solver-Unknown flips: retried when the
  // regular queue drains (solve times on hard regex queries vary run to
  // run, so a later attempt often succeeds).
  std::vector<QueuedTest> RetryPool;

  Buckets[-1].push_back({InputMap(), -1});

  while (Out.TestsRun < Opts.MaxTests && Elapsed() < Opts.MaxSeconds) {
    // Pick the least-accessed non-empty bucket.
    int Best = INT_MIN;
    uint64_t BestAccess = UINT64_MAX;
    for (auto &[Site, Tests] : Buckets) {
      if (Tests.empty())
        continue;
      uint64_t A = Access[Site];
      if (A < BestAccess) {
        BestAccess = A;
        Best = Site;
      }
    }
    if (Best == INT_MIN) {
      if (RetryPool.empty())
        break; // queue exhausted
      for (QueuedTest &T : RetryPool)
        Buckets[T.Bucket].push_back(std::move(T));
      RetryPool.clear();
      continue;
    }
    ++Access[Best];
    std::vector<QueuedTest> &Q = Buckets[Best];
    size_t Pick = Rng() % Q.size();
    QueuedTest Test = std::move(Q[Pick]);
    Q.erase(Q.begin() + Pick);

    // Concrete + symbolic execution.
    Trace Tr = Interp.run(P, Test.Inputs);
    ++Out.TestsRun;
    Out.Covered.insert(Tr.Covered.begin(), Tr.Covered.end());
    for (int Id : Tr.FailedAsserts)
      Out.FailedAsserts.push_back(Id);

    if (Opts.Level == SupportLevel::Concrete)
      continue; // nothing symbolic to flip

    // Generational search: flip each clause of the path condition.
    for (size_t Flip = 0; Flip < Tr.Path.size(); ++Flip) {
      if (Out.TestsRun + 0 >= Opts.MaxTests || Elapsed() >= Opts.MaxSeconds)
        break;
      uint64_t Sig = flipSignature(Tr.Path, Flip);
      if (!Attempted.insert(Sig).second)
        continue;

      std::vector<PathClause> Problem;
      for (size_t I = 0; I < Flip; ++I)
        Problem.push_back(Tr.Path[I].Clause);
      Problem.push_back(Tr.Path[Flip].Clause.negated());

      CegarResult R = Solver.solve(Problem);
      if (R.Status == SolveStatus::Unknown) {
        // Solver gave up (timeout / refinement limit); a later attempt
        // often succeeds, so keep the flip target live and queue this
        // test case for a retry round.
        Attempted.erase(Sig);
        RetryPool.push_back({Test.Inputs, Best});
        continue;
      }
      if (R.Status != SolveStatus::Sat)
        continue;

      InputMap NewInputs = Test.Inputs;
      for (const std::string &Param : P.Params) {
        auto It = R.Model.Strings.find("in!" + Param);
        if (It != R.Model.Strings.end())
          NewInputs[Param] = It->second;
      }
      int Site = Tr.Path[Flip].SiteId;
      Buckets[Site].push_back({std::move(NewInputs), Site});
    }
  }

  Out.Seconds = Elapsed();
  Out.Cegar = Solver.stats();
  Out.Solver = Backend.stats();
  if (LocalLane)
    Out.LocalSolver = LocalLane->stats();
  Out.Runtime = Runtime->stats().since(RuntimeBefore);
  return Out;
}
