//===- dse/Engine.cpp - Generational-search DSE engine ---------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"

#include "cegar/BackendDispatcher.h"
#include "parallel/WorkerPool.h"
#include "sched/CupaScheduler.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <thread>

using namespace recap;

DseEngine::DseEngine(SolverBackend &Backend, EngineOptions Opts)
    : Backend(Backend), Opts(Opts) {}

namespace {

/// Signature of a flip target: identifies "path prefix + flipped clause"
/// so each candidate is attempted once (generational search).
uint64_t flipSignature(const std::vector<BranchRecord> &Path, size_t Flip) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (size_t I = 0; I <= Flip; ++I) {
    bool Pol = Path[I].Clause.Polarity;
    if (I == Flip)
      Pol = !Pol;
    Mix(static_cast<uint64_t>(Path[I].SiteId) * 2 + (Pol ? 1 : 0));
  }
  Mix(Flip);
  return H;
}

struct QueuedTest {
  InputMap Inputs;
  int Bucket; ///< site id of the flipped clause (CUPA bucket key)
};

/// Per-run/per-shard cap on recorded EngineErrors — diagnostics, not a
/// log: past this the errors repeat and only the first few matter.
constexpr size_t MaxEngineErrors = 8;

/// A shard that throws this many times in a row is aborted (its
/// partition is served by work-stealing): the stack is likely wedged
/// beyond what clearSessions() repairs.
constexpr unsigned MaxConsecutiveThrows = 8;

} // namespace

EngineResult DseEngine::run(const Program &P) {
  // The runtime, its stats window base, the snapshot warm start and the
  // worker clamp are resolved once here, shared by both paths.
  std::shared_ptr<RegexRuntime> Runtime =
      Opts.Runtime ? Opts.Runtime : std::make_shared<RegexRuntime>();
  // Guarded-check counters (timeouts, retries, breaker trips) belong in
  // the same window as everything else the run reports.
  if (Opts.Cegar.Reliability.Enabled && !Opts.Cegar.Reliability.Stats)
    Opts.Cegar.Reliability.Stats = Runtime->statsHandle();
  // Run-level cancellation reaches in-flight solver work through the
  // existing SolverLimits::Cancel path (unguarded sessions and the CEGAR
  // refinement loop poll it; guarded checks are bounded by their own
  // watchdog deadline instead). Never overrides a caller-owned flag.
  if (Opts.Cancel && !Opts.Cegar.Limits.Cancel)
    Opts.Cegar.Limits.Cancel = Opts.Cancel;
  // A supplied runtime is cumulative across runs; report this run's
  // window only (snapshot loads and clamp events included).
  RuntimeStats Before = Runtime->stats();
  SnapshotLoadResult Snap;
  if (!Opts.CacheSnapshot.empty())
    Snap = Runtime->loadOnce(Opts.CacheSnapshot);

  size_t W = WorkerPool::resolveWorkers(Opts.Workers);
  if (Opts.ClampWorkers) {
    bool Clamped = false;
    W = WorkerPool::clampToHardware(W, &Clamped);
    if (Clamped)
      ++Runtime->statsHandle()->WorkersClamped;
  }
  EngineResult Out =
      W <= 1 ? runSerial(P, Runtime, Before) : runParallel(P, W, Runtime, Before);
  // A cold load is a degradation worth reporting, not an error to die on
  // (the run simply paid full compilation cost).
  if (Snap.Cold)
    Out.Errors.push_back(
        {EngineErrorKind::SnapshotError, -1, Snap.Error});
  return Out;
}

EngineResult DseEngine::runSerial(const Program &P,
                                  const std::shared_ptr<RegexRuntime> &Runtime,
                                  const RuntimeStats &RuntimeBefore) {
  auto T0 = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };

  EngineResult Out;
  Out.TotalStmts = P.NumStmts;

  SymbolicContext Ctx(Opts.Level, Runtime);
  Interpreter Interp(Ctx, Opts.MaxWhileIterations);
  // Optional feature-routed dispatch: classical-fragment problems go to
  // an engine-owned automata backend, everything else (and every
  // classical-lane Unknown) to the supplied backend. Counters land in
  // the runtime's shared stats block, i.e. in Out.Runtime's window.
  std::unique_ptr<SolverBackend> LocalLane;
  std::unique_ptr<BackendDispatcher> Dispatcher;
  std::unique_ptr<CegarSolver> SolverPtr;
  if (Opts.Dispatch) {
    LocalLane = makeLocalBackend();
    Dispatcher = std::make_unique<BackendDispatcher>(
        *LocalLane, Backend, Runtime->statsHandle());
    Dispatcher->policy().AnchoredLane = Opts.DispatchAnchored;
    Dispatcher->policy().Race = Opts.DispatchRacing;
    SolverPtr = std::make_unique<CegarSolver>(*Dispatcher, Opts.Cegar);
  } else {
    SolverPtr = std::make_unique<CegarSolver>(Backend, Opts.Cegar);
  }
  CegarSolver &Solver = *SolverPtr;
  std::mt19937_64 Rng(Opts.Seed);

  // CUPA buckets: test cases grouped by the program point whose flipped
  // clause generated them; the least-accessed bucket is served first.
  std::map<int, std::vector<QueuedTest>> Buckets;
  std::map<int, uint64_t> Access;
  std::set<uint64_t> Attempted;
  // Test cases whose path had solver-Unknown flips: retried when the
  // regular queue drains (solve times on hard regex queries vary run to
  // run, so a later attempt often succeeds).
  std::vector<QueuedTest> RetryPool;

  Buckets[-1].push_back({InputMap(), -1});

  auto Cancelled = [this] {
    return Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed);
  };
  while (Out.TestsRun < Opts.MaxTests && Elapsed() < Opts.MaxSeconds &&
         !Cancelled()) {
    // Pick the least-accessed non-empty bucket.
    int Best = INT_MIN;
    uint64_t BestAccess = UINT64_MAX;
    for (auto &[Site, Tests] : Buckets) {
      if (Tests.empty())
        continue;
      uint64_t A = Access[Site];
      if (A < BestAccess) {
        BestAccess = A;
        Best = Site;
      }
    }
    if (Best == INT_MIN) {
      if (RetryPool.empty())
        break; // queue exhausted
      for (QueuedTest &T : RetryPool)
        Buckets[T.Bucket].push_back(std::move(T));
      RetryPool.clear();
      continue;
    }
    ++Access[Best];
    std::vector<QueuedTest> &Q = Buckets[Best];
    size_t Pick = Rng() % Q.size();
    QueuedTest Test = std::move(Q[Pick]);
    Q.erase(Q.begin() + Pick);

    // Concrete + symbolic execution.
    Trace Tr = Interp.run(P, Test.Inputs);
    ++Out.TestsRun;
    Out.Covered.insert(Tr.Covered.begin(), Tr.Covered.end());
    for (int Id : Tr.FailedAsserts)
      Out.FailedAsserts.push_back(Id);

    if (Opts.Level == SupportLevel::Concrete)
      continue; // nothing symbolic to flip

    // Generational search: flip each clause of the path condition.
    for (size_t Flip = 0; Flip < Tr.Path.size(); ++Flip) {
      if (Out.TestsRun + 0 >= Opts.MaxTests || Elapsed() >= Opts.MaxSeconds ||
          Cancelled())
        break;
      uint64_t Sig = flipSignature(Tr.Path, Flip);
      if (!Attempted.insert(Sig).second)
        continue;

      std::vector<PathClause> Problem;
      for (size_t I = 0; I < Flip; ++I)
        Problem.push_back(Tr.Path[I].Clause);
      Problem.push_back(Tr.Path[Flip].Clause.negated());

      CegarResult R;
      try {
        R = Solver.solve(Problem);
      } catch (const std::exception &E) {
        // A throw past the CEGAR layer (backend bug, injected fault) must
        // not take the whole run down: drop this flip — the result is the
        // same as a non-retryable Unknown — and reset the pinned sessions,
        // whose ephemeral scopes the aborted solve may have left
        // desynchronized from the backend.
        if (Out.Errors.size() < MaxEngineErrors)
          Out.Errors.push_back({EngineErrorKind::SolverThrow, -1, E.what()});
        Solver.clearSessions();
        continue;
      } catch (...) {
        if (Out.Errors.size() < MaxEngineErrors)
          Out.Errors.push_back(
              {EngineErrorKind::SolverThrow, -1, "non-standard exception"});
        Solver.clearSessions();
        continue;
      }
      if (R.Status == SolveStatus::Unknown) {
        // Solver gave up (timeout / refinement limit); a later attempt
        // often succeeds, so keep the flip target live and queue this
        // test case for a retry round.
        Attempted.erase(Sig);
        RetryPool.push_back({Test.Inputs, Best});
        continue;
      }
      if (R.Status != SolveStatus::Sat)
        continue;

      InputMap NewInputs = Test.Inputs;
      for (const std::string &Param : P.Params) {
        auto It = R.Model.Strings.find("in!" + Param);
        if (It != R.Model.Strings.end())
          NewInputs[Param] = It->second;
      }
      int Site = Tr.Path[Flip].SiteId;
      Buckets[Site].push_back({std::move(NewInputs), Site});
    }
  }

  Out.Seconds = Elapsed();
  Out.Cegar = Solver.stats();
  Out.Solver = Backend.stats();
  if (LocalLane)
    Out.LocalSolver = LocalLane->stats();
  Out.Runtime = Runtime->stats().since(RuntimeBefore);
  return Out;
}

namespace {

/// One shard of the parallel search (DESIGN.md §6): it owns a full
/// single-threaded solver stack — interpreter + symbolic context,
/// backend pair, CEGAR solver with its pinned sessions — and nothing
/// shared: the queue state (CUPA buckets, access counts, retry pool,
/// termination protocol) lives in sched::CupaScheduler now.
struct Shard {
  // Thread-private solver stack (created on the shard's own thread —
  // a Z3 context must never be touched from two threads). Declaration
  // order doubles as destruction order: Solver (pinned sessions) dies
  // before the backends it references.
  std::unique_ptr<SolverBackend> Backend;
  std::unique_ptr<SolverBackend> LocalLane;
  std::unique_ptr<BackendDispatcher> Dispatcher;
  std::unique_ptr<CegarSolver> Solver;
  std::unique_ptr<SymbolicContext> Ctx;
  std::unique_ptr<Interpreter> Interp;

  // Thread-private results, merged after the join.
  ShardStats Window;
  std::set<int> Covered;
  std::vector<int> FailedAsserts;
  // Contained failures (DESIGN.md §9): solver throws survived, or the
  // reason this shard aborted. Merged into EngineResult::Errors.
  std::vector<EngineError> Errors;
  unsigned ConsecutiveThrows = 0;
};

} // namespace

EngineResult DseEngine::runParallel(
    const Program &P, size_t W,
    const std::shared_ptr<RegexRuntime> &Runtime,
    const RuntimeStats &RuntimeBefore) {
  // Parallel shards each need their own backend; the single backend
  // handed to the constructor cannot be shared across threads and is
  // never silently substituted. Without a factory the run degrades to
  // the serial path — same solver, same verdicts, WorkersUsed == 1
  // surfaces the misconfiguration.
  assert(Opts.BackendFactory &&
         "EngineOptions::Workers > 1 requires a BackendFactory");
  if (!Opts.BackendFactory)
    return runSerial(P, Runtime, RuntimeBefore);

  auto T0 = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };
  auto Cancelled = [this] {
    return Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed);
  };

  EngineResult Out;
  Out.TotalStmts = P.NumStmts;
  Out.WorkersUsed = W;

  // Queue state — partitioned CUPA buckets, work-stealing, retry pool,
  // the Pending/Active termination protocol — lives in the reusable
  // scheduler; the engine keeps the domain policy: flip dedup, the test
  // budget, the wall clock.
  sched::CupaScheduler<InputMap> Sched(W, Opts.Seed);
  std::atomic<uint64_t> TestsStarted{0};
  std::mutex AttemptMu;
  std::set<uint64_t> Attempted;
  auto MayRetry = [&] { return TestsStarted.load() < Opts.MaxTests; };

  std::vector<std::unique_ptr<Shard>> Shards;
  for (size_t I = 0; I < W; ++I)
    Shards.push_back(std::make_unique<Shard>());

  // One concrete+symbolic execution plus its generational flips; the
  // mirror of the serial loop body with the scheduler swapped in.
  auto RunOne = [&](Shard &Me, InputMap Inputs, int Bucket) {
    Trace Tr = Me.Interp->run(P, Inputs);
    ++Me.Window.TestsRun;
    Me.Covered.insert(Tr.Covered.begin(), Tr.Covered.end());
    for (int Id : Tr.FailedAsserts)
      Me.FailedAsserts.push_back(Id);

    if (Opts.Level == SupportLevel::Concrete)
      return;

    for (size_t Flip = 0; Flip < Tr.Path.size(); ++Flip) {
      if (TestsStarted.load() >= Opts.MaxTests ||
          Elapsed() >= Opts.MaxSeconds || Cancelled())
        break;
      uint64_t Sig = flipSignature(Tr.Path, Flip);
      {
        std::lock_guard<std::mutex> Lock(AttemptMu);
        if (!Attempted.insert(Sig).second)
          continue;
      }

      std::vector<PathClause> Problem;
      for (size_t I = 0; I < Flip; ++I)
        Problem.push_back(Tr.Path[I].Clause);
      Problem.push_back(Tr.Path[Flip].Clause.negated());

      CegarResult R = Me.Solver->solve(Problem);
      if (R.Status == SolveStatus::Unknown) {
        // Solver gave up (timeout / refinement limit); keep the flip
        // target live and park the test for the scheduler's retry round.
        {
          std::lock_guard<std::mutex> Lock(AttemptMu);
          Attempted.erase(Sig);
        }
        Sched.park(Inputs, Bucket);
        continue;
      }
      if (R.Status != SolveStatus::Sat)
        continue;

      InputMap NewInputs = Inputs;
      for (const std::string &Param : P.Params) {
        auto It = R.Model.Strings.find("in!" + Param);
        if (It != R.Model.Strings.end())
          NewInputs[Param] = It->second;
      }
      Sched.enqueue(std::move(NewInputs), Tr.Path[Flip].SiteId);
    }
  };

  Sched.enqueue(InputMap(), -1);

  size_t Fallbacks = WorkerPool::runShards(W, [&](size_t Idx) {
    Shard &Me = *Shards[Idx];
    // The whole stack is built on this thread so thread-affine backend
    // state (Z3 contexts) is born where it is used. Construction failure
    // (factory throw, backend init) costs only this shard — its
    // partition is served by the other shards' work-stealing.
    try {
      Me.Backend = Opts.BackendFactory();
      if (Opts.Dispatch) {
        Me.LocalLane = makeLocalBackend();
        Me.Dispatcher = std::make_unique<BackendDispatcher>(
            *Me.LocalLane, *Me.Backend, Runtime->statsHandle());
        Me.Dispatcher->policy().AnchoredLane = Opts.DispatchAnchored;
        Me.Dispatcher->policy().Race = Opts.DispatchRacing;
        Me.Solver = std::make_unique<CegarSolver>(*Me.Dispatcher, Opts.Cegar);
      } else {
        Me.Solver = std::make_unique<CegarSolver>(*Me.Backend, Opts.Cegar);
      }
      Me.Ctx = std::make_unique<SymbolicContext>(Opts.Level, Runtime);
      Me.Interp =
          std::make_unique<Interpreter>(*Me.Ctx, Opts.MaxWhileIterations);
    } catch (const std::exception &E) {
      Me.Errors.push_back(
          {EngineErrorKind::ShardFailure, static_cast<int>(Idx),
           std::string("shard stack construction failed: ") + E.what()});
      return;
    } catch (...) {
      Me.Errors.push_back(
          {EngineErrorKind::ShardFailure, static_cast<int>(Idx),
           "shard stack construction failed: non-standard exception"});
      return;
    }

    auto RecordThrow = [&](const char *What) {
      if (Me.Errors.size() < MaxEngineErrors)
        Me.Errors.push_back(
            {EngineErrorKind::SolverThrow, static_cast<int>(Idx), What});
      // The aborted solve may have left pinned ephemeral scopes
      // desynchronized from the backend; rebuild them next problem.
      Me.Solver->clearSessions();
      if (++Me.ConsecutiveThrows < MaxConsecutiveThrows)
        return true;
      Me.Errors.push_back(
          {EngineErrorKind::ShardFailure, static_cast<int>(Idx),
           "shard aborted after repeated solver throws"});
      return false;
    };

    for (;;) {
      if (Elapsed() >= Opts.MaxSeconds || Cancelled()) {
        Sched.stop();
        break;
      }
      InputMap Inputs;
      int Bucket = -1;
      auto C = Sched.claim(Idx, Inputs, Bucket, MayRetry);
      if (C == sched::CupaScheduler<InputMap>::Claim::Stopped)
        break;
      if (C == sched::CupaScheduler<InputMap>::Claim::Idle) {
        // Brief sleep, not a hot spin: an idle shard must not steal CPU
        // from the shards inside multi-second solver calls.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      if (TestsStarted.fetch_add(1) >= Opts.MaxTests) {
        Sched.complete();
        Sched.stop();
        break;
      }
      bool Ok = true;
      try {
        RunOne(Me, std::move(Inputs), Bucket);
        Me.ConsecutiveThrows = 0;
      } catch (const std::exception &E) {
        Ok = RecordThrow(E.what());
      } catch (...) {
        Ok = RecordThrow("non-standard exception");
      }
      // Exactly one complete() per claim, throw or not — the
      // Pending/Active termination protocol counts on it.
      Sched.complete();
      if (!Ok)
        break;
    }
  });
  if (Fallbacks > 0) {
    Runtime->statsHandle()->WorkerSpawnFallbacks += Fallbacks;
    Out.Errors.push_back(
        {EngineErrorKind::WorkerSpawn, -1,
         std::to_string(Fallbacks) + " shard(s) ran inline after thread "
                                     "spawn failure"});
  }

  for (size_t Idx = 0; Idx < Shards.size(); ++Idx) {
    Shard &S = *Shards[Idx];
    S.Window.TestsStolen = Sched.stolen(Idx);
    Out.TestsRun += S.Window.TestsRun;
    Out.Covered.insert(S.Covered.begin(), S.Covered.end());
    Out.FailedAsserts.insert(Out.FailedAsserts.end(),
                             S.FailedAsserts.begin(),
                             S.FailedAsserts.end());
    if (S.Solver)
      S.Window.Cegar = S.Solver->stats();
    if (S.Backend)
      S.Window.Solver = S.Backend->stats();
    if (S.LocalLane)
      S.Window.LocalSolver = S.LocalLane->stats();
    Out.Cegar.merge(S.Window.Cegar);
    Out.Solver.merge(S.Window.Solver);
    Out.LocalSolver.merge(S.Window.LocalSolver);
    Out.Errors.insert(Out.Errors.end(), S.Errors.begin(), S.Errors.end());
    Out.Shards.push_back(S.Window);
  }
  Out.Seconds = Elapsed();
  Out.Runtime = Runtime->stats().since(RuntimeBefore);
  return Out;
}
