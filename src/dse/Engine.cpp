//===- dse/Engine.cpp - Generational-search DSE engine ---------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"

#include "cegar/BackendDispatcher.h"
#include "parallel/WorkerPool.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <optional>
#include <thread>

using namespace recap;

DseEngine::DseEngine(SolverBackend &Backend, EngineOptions Opts)
    : Backend(Backend), Opts(Opts) {}

namespace {

/// Signature of a flip target: identifies "path prefix + flipped clause"
/// so each candidate is attempted once (generational search).
uint64_t flipSignature(const std::vector<BranchRecord> &Path, size_t Flip) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (size_t I = 0; I <= Flip; ++I) {
    bool Pol = Path[I].Clause.Polarity;
    if (I == Flip)
      Pol = !Pol;
    Mix(static_cast<uint64_t>(Path[I].SiteId) * 2 + (Pol ? 1 : 0));
  }
  Mix(Flip);
  return H;
}

struct QueuedTest {
  InputMap Inputs;
  int Bucket; ///< site id of the flipped clause (CUPA bucket key)
};

/// Spreads CUPA bucket keys (small site ids, plus the -1 seed bucket)
/// over shards: a finalizer-style mix so consecutive sites do not all
/// land on consecutive shards of a small pool.
size_t shardOf(int Site, size_t Workers) {
  uint64_t H = static_cast<uint64_t>(static_cast<int64_t>(Site));
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  return static_cast<size_t>(H % Workers);
}

} // namespace

EngineResult DseEngine::run(const Program &P) {
  size_t W = WorkerPool::resolveWorkers(Opts.Workers);
  if (W <= 1)
    return runSerial(P);
  return runParallel(P, W);
}

EngineResult DseEngine::runSerial(const Program &P) {
  auto T0 = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };

  EngineResult Out;
  Out.TotalStmts = P.NumStmts;

  std::shared_ptr<RegexRuntime> Runtime =
      Opts.Runtime ? Opts.Runtime : std::make_shared<RegexRuntime>();
  // A supplied runtime is cumulative across runs; report this run's
  // window only.
  RuntimeStats RuntimeBefore = Runtime->stats();
  SymbolicContext Ctx(Opts.Level, Runtime);
  Interpreter Interp(Ctx, Opts.MaxWhileIterations);
  // Optional feature-routed dispatch: classical-fragment problems go to
  // an engine-owned automata backend, everything else (and every
  // classical-lane Unknown) to the supplied backend. Counters land in
  // the runtime's shared stats block, i.e. in Out.Runtime's window.
  std::unique_ptr<SolverBackend> LocalLane;
  std::unique_ptr<BackendDispatcher> Dispatcher;
  std::unique_ptr<CegarSolver> SolverPtr;
  if (Opts.Dispatch) {
    LocalLane = makeLocalBackend();
    Dispatcher = std::make_unique<BackendDispatcher>(
        *LocalLane, Backend, Runtime->statsHandle());
    SolverPtr = std::make_unique<CegarSolver>(*Dispatcher, Opts.Cegar);
  } else {
    SolverPtr = std::make_unique<CegarSolver>(Backend, Opts.Cegar);
  }
  CegarSolver &Solver = *SolverPtr;
  std::mt19937_64 Rng(Opts.Seed);

  // CUPA buckets: test cases grouped by the program point whose flipped
  // clause generated them; the least-accessed bucket is served first.
  std::map<int, std::vector<QueuedTest>> Buckets;
  std::map<int, uint64_t> Access;
  std::set<uint64_t> Attempted;
  // Test cases whose path had solver-Unknown flips: retried when the
  // regular queue drains (solve times on hard regex queries vary run to
  // run, so a later attempt often succeeds).
  std::vector<QueuedTest> RetryPool;

  Buckets[-1].push_back({InputMap(), -1});

  while (Out.TestsRun < Opts.MaxTests && Elapsed() < Opts.MaxSeconds) {
    // Pick the least-accessed non-empty bucket.
    int Best = INT_MIN;
    uint64_t BestAccess = UINT64_MAX;
    for (auto &[Site, Tests] : Buckets) {
      if (Tests.empty())
        continue;
      uint64_t A = Access[Site];
      if (A < BestAccess) {
        BestAccess = A;
        Best = Site;
      }
    }
    if (Best == INT_MIN) {
      if (RetryPool.empty())
        break; // queue exhausted
      for (QueuedTest &T : RetryPool)
        Buckets[T.Bucket].push_back(std::move(T));
      RetryPool.clear();
      continue;
    }
    ++Access[Best];
    std::vector<QueuedTest> &Q = Buckets[Best];
    size_t Pick = Rng() % Q.size();
    QueuedTest Test = std::move(Q[Pick]);
    Q.erase(Q.begin() + Pick);

    // Concrete + symbolic execution.
    Trace Tr = Interp.run(P, Test.Inputs);
    ++Out.TestsRun;
    Out.Covered.insert(Tr.Covered.begin(), Tr.Covered.end());
    for (int Id : Tr.FailedAsserts)
      Out.FailedAsserts.push_back(Id);

    if (Opts.Level == SupportLevel::Concrete)
      continue; // nothing symbolic to flip

    // Generational search: flip each clause of the path condition.
    for (size_t Flip = 0; Flip < Tr.Path.size(); ++Flip) {
      if (Out.TestsRun + 0 >= Opts.MaxTests || Elapsed() >= Opts.MaxSeconds)
        break;
      uint64_t Sig = flipSignature(Tr.Path, Flip);
      if (!Attempted.insert(Sig).second)
        continue;

      std::vector<PathClause> Problem;
      for (size_t I = 0; I < Flip; ++I)
        Problem.push_back(Tr.Path[I].Clause);
      Problem.push_back(Tr.Path[Flip].Clause.negated());

      CegarResult R = Solver.solve(Problem);
      if (R.Status == SolveStatus::Unknown) {
        // Solver gave up (timeout / refinement limit); a later attempt
        // often succeeds, so keep the flip target live and queue this
        // test case for a retry round.
        Attempted.erase(Sig);
        RetryPool.push_back({Test.Inputs, Best});
        continue;
      }
      if (R.Status != SolveStatus::Sat)
        continue;

      InputMap NewInputs = Test.Inputs;
      for (const std::string &Param : P.Params) {
        auto It = R.Model.Strings.find("in!" + Param);
        if (It != R.Model.Strings.end())
          NewInputs[Param] = It->second;
      }
      int Site = Tr.Path[Flip].SiteId;
      Buckets[Site].push_back({std::move(NewInputs), Site});
    }
  }

  Out.Seconds = Elapsed();
  Out.Cegar = Solver.stats();
  Out.Solver = Backend.stats();
  if (LocalLane)
    Out.LocalSolver = LocalLane->stats();
  Out.Runtime = Runtime->stats().since(RuntimeBefore);
  return Out;
}

namespace {

/// One shard of the parallel search (DESIGN.md §6): it owns a full
/// single-threaded solver stack — interpreter + symbolic context,
/// backend pair, CEGAR solver with its pinned sessions — plus the CUPA
/// buckets of the sites hashed onto it. Only Mu-guarded members
/// (Buckets/Access) are touched by other shards (work-stealing); the
/// rest is private to the owning thread.
struct Shard {
  // Queue state, shared with thieves.
  std::mutex Mu;
  std::map<int, std::vector<QueuedTest>> Buckets;
  std::map<int, uint64_t> Access;

  // Thread-private solver stack (created on the shard's own thread —
  // a Z3 context must never be touched from two threads). Declaration
  // order doubles as destruction order: Solver (pinned sessions) dies
  // before the backends it references.
  std::unique_ptr<SolverBackend> Backend;
  std::unique_ptr<SolverBackend> LocalLane;
  std::unique_ptr<BackendDispatcher> Dispatcher;
  std::unique_ptr<CegarSolver> Solver;
  std::unique_ptr<SymbolicContext> Ctx;
  std::unique_ptr<Interpreter> Interp;
  std::mt19937_64 Rng;

  // Thread-private results, merged after the join.
  ShardStats Window;
  std::set<int> Covered;
  std::vector<int> FailedAsserts;
};

/// Scheduler state shared by all shards. Pending/Active/RetryPool form
/// the termination protocol and are guarded by one SchedMu: every
/// transition (claim, enqueue, deactivate, retry flush) and the
/// quiescence check happen under it, so "Pending == 0 && Active == 0"
/// is an exact snapshot, never a racy two-read approximation (a stale
/// Pending read against another shard's enqueue-then-deactivate could
/// otherwise drop queued work). Claims occur once per test execution —
/// seconds of solver work — so the lock is uncontended in practice.
struct Coordinator {
  std::atomic<uint64_t> TestsStarted{0};
  std::atomic<bool> Stop{false};

  std::mutex SchedMu;
  uint64_t Pending = 0;   ///< queued, not yet claimed
  int Active = 0;         ///< shards executing a claimed test
  std::vector<QueuedTest> RetryPool;

  std::mutex AttemptMu;
  std::set<uint64_t> Attempted;
};

} // namespace

EngineResult DseEngine::runParallel(const Program &P, size_t W) {
  // Parallel shards each need their own backend; the single backend
  // handed to the constructor cannot be shared across threads and is
  // never silently substituted. Without a factory the run degrades to
  // the serial path — same solver, same verdicts, WorkersUsed == 1
  // surfaces the misconfiguration.
  assert(Opts.BackendFactory &&
         "EngineOptions::Workers > 1 requires a BackendFactory");
  if (!Opts.BackendFactory)
    return runSerial(P);

  auto T0 = std::chrono::steady_clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         T0)
        .count();
  };

  EngineResult Out;
  Out.TotalStmts = P.NumStmts;
  Out.WorkersUsed = W;

  std::shared_ptr<RegexRuntime> Runtime =
      Opts.Runtime ? Opts.Runtime : std::make_shared<RegexRuntime>();
  RuntimeStats RuntimeBefore = Runtime->stats();

  Coordinator Co;
  std::vector<std::unique_ptr<Shard>> Shards;
  for (size_t I = 0; I < W; ++I)
    Shards.push_back(std::make_unique<Shard>());

  // Route a queued test to the shard owning its CUPA bucket. SchedMu
  // must already be held (lock order: SchedMu, then a shard's Mu).
  auto EnqueueLocked = [&](QueuedTest T) {
    Shard &S = *Shards[shardOf(T.Bucket, W)];
    ++Co.Pending;
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Buckets[T.Bucket].push_back(std::move(T));
  };
  auto Enqueue = [&](QueuedTest T) {
    std::lock_guard<std::mutex> Lock(Co.SchedMu);
    EnqueueLocked(std::move(T));
  };

  // Serial CUPA policy per shard: least-accessed non-empty local bucket,
  // random pick within it. Called with SchedMu held (the claim path);
  // the shard Mu still guards the bucket data against Enqueue.
  auto PopLocal = [&](Shard &Me) -> std::optional<QueuedTest> {
    std::lock_guard<std::mutex> Lock(Me.Mu);
    int Best = INT_MIN;
    uint64_t BestAccess = UINT64_MAX;
    for (auto &[Site, Tests] : Me.Buckets) {
      if (Tests.empty())
        continue;
      uint64_t A = Me.Access[Site];
      if (A < BestAccess) {
        BestAccess = A;
        Best = Site;
      }
    }
    if (Best == INT_MIN)
      return std::nullopt;
    ++Me.Access[Best];
    std::vector<QueuedTest> &Q = Me.Buckets[Best];
    size_t Pick = Me.Rng() % Q.size();
    QueuedTest T = std::move(Q[Pick]);
    Q.erase(Q.begin() + Pick);
    --Co.Pending;
    return T;
  };

  // Work-stealing: when a shard's own buckets drain, it takes the back
  // half of the fullest bucket of the first non-empty victim. The items
  // keep their bucket key, so CUPA fairness is preserved — ownership of
  // the site just migrates temporarily.
  auto Steal = [&](size_t Idx) -> std::optional<QueuedTest> {
    Shard &Me = *Shards[Idx];
    for (size_t K = 1; K < W; ++K) {
      Shard &Victim = *Shards[(Idx + K) % W];
      std::vector<QueuedTest> Loot;
      int Site = INT_MIN;
      {
        std::lock_guard<std::mutex> Lock(Victim.Mu);
        size_t Fullest = 0;
        for (auto &[S, Tests] : Victim.Buckets)
          if (Tests.size() > Fullest) {
            Fullest = Tests.size();
            Site = S;
          }
        if (Site == INT_MIN)
          continue;
        std::vector<QueuedTest> &Q = Victim.Buckets[Site];
        size_t Keep = Q.size() / 2;
        for (size_t I = Keep; I < Q.size(); ++I)
          Loot.push_back(std::move(Q[I]));
        Q.resize(Keep);
      }
      Me.Window.TestsStolen += Loot.size();
      {
        std::lock_guard<std::mutex> Lock(Me.Mu);
        std::vector<QueuedTest> &Q = Me.Buckets[Site];
        for (QueuedTest &T : Loot)
          Q.push_back(std::move(T));
      }
      return PopLocal(Me);
    }
    return std::nullopt;
  };

  // One concrete+symbolic execution plus its generational flips; the
  // mirror of the serial loop body with the shared structures swapped in.
  auto RunOne = [&](Shard &Me, QueuedTest Test) {
    Trace Tr = Me.Interp->run(P, Test.Inputs);
    ++Me.Window.TestsRun;
    Me.Covered.insert(Tr.Covered.begin(), Tr.Covered.end());
    for (int Id : Tr.FailedAsserts)
      Me.FailedAsserts.push_back(Id);

    if (Opts.Level == SupportLevel::Concrete)
      return;

    for (size_t Flip = 0; Flip < Tr.Path.size(); ++Flip) {
      if (Co.TestsStarted.load() >= Opts.MaxTests ||
          Elapsed() >= Opts.MaxSeconds)
        break;
      uint64_t Sig = flipSignature(Tr.Path, Flip);
      {
        std::lock_guard<std::mutex> Lock(Co.AttemptMu);
        if (!Co.Attempted.insert(Sig).second)
          continue;
      }

      std::vector<PathClause> Problem;
      for (size_t I = 0; I < Flip; ++I)
        Problem.push_back(Tr.Path[I].Clause);
      Problem.push_back(Tr.Path[Flip].Clause.negated());

      CegarResult R = Me.Solver->solve(Problem);
      if (R.Status == SolveStatus::Unknown) {
        {
          std::lock_guard<std::mutex> Lock(Co.AttemptMu);
          Co.Attempted.erase(Sig);
        }
        std::lock_guard<std::mutex> Lock(Co.SchedMu);
        Co.RetryPool.push_back({Test.Inputs, Test.Bucket});
        continue;
      }
      if (R.Status != SolveStatus::Sat)
        continue;

      InputMap NewInputs = Test.Inputs;
      for (const std::string &Param : P.Params) {
        auto It = R.Model.Strings.find("in!" + Param);
        if (It != R.Model.Strings.end())
          NewInputs[Param] = It->second;
      }
      int Site = Tr.Path[Flip].SiteId;
      Enqueue({std::move(NewInputs), Site});
    }
  };

  Enqueue({InputMap(), -1});

  WorkerPool::runShards(W, [&](size_t Idx) {
    Shard &Me = *Shards[Idx];
    // The whole stack is built on this thread so thread-affine backend
    // state (Z3 contexts) is born where it is used.
    Me.Backend = Opts.BackendFactory();
    if (Opts.Dispatch) {
      Me.LocalLane = makeLocalBackend();
      Me.Dispatcher = std::make_unique<BackendDispatcher>(
          *Me.LocalLane, *Me.Backend, Runtime->statsHandle());
      Me.Solver = std::make_unique<CegarSolver>(*Me.Dispatcher, Opts.Cegar);
    } else {
      Me.Solver = std::make_unique<CegarSolver>(*Me.Backend, Opts.Cegar);
    }
    Me.Ctx = std::make_unique<SymbolicContext>(Opts.Level, Runtime);
    Me.Interp =
        std::make_unique<Interpreter>(*Me.Ctx, Opts.MaxWhileIterations);
    Me.Rng.seed(Opts.Seed + 0x9e3779b97f4a7c15ull * (Idx + 1));

    while (!Co.Stop.load()) {
      if (Elapsed() >= Opts.MaxSeconds) {
        Co.Stop.store(true);
        break;
      }
      // Claim-or-conclude, atomically under SchedMu: either a test is
      // claimed (Pending--, Active++), or this shard saw an exact
      // quiescent snapshot and flushes the retry pool / stops the run.
      std::optional<QueuedTest> T;
      {
        std::lock_guard<std::mutex> Lock(Co.SchedMu);
        T = PopLocal(Me);
        if (!T)
          T = Steal(Idx);
        if (T) {
          ++Co.Active;
        } else if (Co.Pending == 0 && Co.Active == 0) {
          if (!Co.RetryPool.empty() &&
              Co.TestsStarted.load() < Opts.MaxTests) {
            // Global drain with retryable tests left: requeue them
            // (the serial engine's retry round).
            for (QueuedTest &R : Co.RetryPool)
              EnqueueLocked(std::move(R));
            Co.RetryPool.clear();
          } else {
            Co.Stop.store(true);
            break;
          }
        }
      }
      if (!T) {
        // Brief sleep, not a hot spin: an idle shard must not steal CPU
        // from the shards inside multi-second solver calls.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      auto Deactivate = [&] {
        std::lock_guard<std::mutex> Lock(Co.SchedMu);
        --Co.Active;
      };
      if (Co.TestsStarted.fetch_add(1) >= Opts.MaxTests) {
        Deactivate();
        Co.Stop.store(true);
        break;
      }
      RunOne(Me, std::move(*T));
      Deactivate();
    }
  });

  for (std::unique_ptr<Shard> &SP : Shards) {
    Shard &S = *SP;
    Out.TestsRun += S.Window.TestsRun;
    Out.Covered.insert(S.Covered.begin(), S.Covered.end());
    Out.FailedAsserts.insert(Out.FailedAsserts.end(),
                             S.FailedAsserts.begin(),
                             S.FailedAsserts.end());
    if (S.Solver)
      S.Window.Cegar = S.Solver->stats();
    if (S.Backend)
      S.Window.Solver = S.Backend->stats();
    if (S.LocalLane)
      S.Window.LocalSolver = S.LocalLane->stats();
    Out.Cegar.merge(S.Window.Cegar);
    Out.Solver.merge(S.Window.Solver);
    Out.LocalSolver.merge(S.Window.LocalSolver);
    Out.Shards.push_back(S.Window);
  }
  Out.Seconds = Elapsed();
  Out.Runtime = Runtime->stats().since(RuntimeBefore);
  return Out;
}
