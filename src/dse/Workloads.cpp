//===- dse/Workloads.cpp - Evaluation workloads ----------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dse/Workloads.h"

#include <random>

using namespace recap;
using namespace recap::mjs;

Program recap::listing1Program() {
  Program P;
  P.Name = "listing1";
  P.Params = {"arg"};
  P.Body = block({
      let_("timeout", str("500")),
      let_("parts", exec("/<(\\w+)>([0-9]*)<\\/\\1>/", var("arg"))),
      if_(truthy(var("parts")),
          if_(eq(matchIndex(var("parts"), 1), str("timeout")),
              let_("timeout", matchIndex(var("parts"), 2)))),
      assert_(test("/^[0-9]+$/", var("timeout"))),
  });
  P.finalize();
  return P;
}

namespace {

/// semver: version parsing with three numeric captures.
Program semverLib() {
  Program P;
  P.Name = "semver";
  P.Params = {"v"};
  P.Body = block({
      let_("m", exec("/^v?([0-9]+)\\.([0-9]+)\\.([0-9]+)$/", var("v"))),
      let_("kind", str("invalid")),
      if_(truthy(var("m")),
          block({
              let_("kind", str("release")),
              if_(eq(matchIndex(var("m"), 1), str("0")),
                  let_("kind", str("unstable"))),
              if_(eq(matchIndex(var("m"), 2), str("0")),
                  if_(eq(matchIndex(var("m"), 3), str("0")),
                      let_("kind", str("major")))),
          })),
      if_(test("/^[0-9]+\\.[0-9]+$/", var("v")),
          let_("kind", str("partial"))),
      assert_(ne(var("kind"), str("major"))),
  });
  P.finalize();
  return P;
}

/// url-parse: scheme/host/query splitting.
Program urlParseLib() {
  Program P;
  P.Name = "url-parse";
  P.Params = {"url"};
  P.Body = block({
      let_("m", exec("/^([a-z]+):\\/\\/([a-z0-9.-]+)(\\/[^?#]*)?/",
                     var("url"))),
      let_("secure", boolean(false)),
      if_(truthy(var("m")),
          block({
              if_(eq(matchIndex(var("m"), 1), str("https")),
                  let_("secure", boolean(true))),
              if_(eq(matchIndex(var("m"), 2), str("localhost")),
                  let_("secure", boolean(true))),
              if_(eq(matchIndex(var("m"), 3), undefined()),
                  let_("path", str("/")),
                  let_("path", matchIndex(var("m"), 3))),
          })),
      if_(test("/[?#]/", var("url")), let_("hasQuery", boolean(true))),
      assert_(boolean(true)),
  });
  P.finalize();
  return P;
}

/// query-string: key=value pairs.
Program queryStringLib() {
  Program P;
  P.Name = "query-string";
  P.Params = {"qs"};
  P.Body = block({
      let_("m", exec("/^([a-z]+)=([^&]*)(?:&([a-z]+)=([^&]*))?$/",
                     var("qs"))),
      let_("n", integer(0)),
      if_(truthy(var("m")),
          block({
              let_("n", integer(1)),
              if_(ne(matchIndex(var("m"), 3), undefined()),
                  let_("n", integer(2))),
              if_(eq(matchIndex(var("m"), 1), matchIndex(var("m"), 3)),
                  let_("dup", boolean(true))),
              if_(eq(matchIndex(var("m"), 2), str("")),
                  let_("empty", boolean(true))),
          })),
      assert_(not_(eq(var("n"), integer(2)))),
  });
  P.finalize();
  return P;
}

/// yn: yes/no strings (the paper notes old ExpoSE scored 0% here).
Program ynLib() {
  Program P;
  P.Name = "yn";
  P.Params = {"s"};
  P.Body = block({
      let_("r", str("default")),
      if_(test("/^(?:y|yes|true|1)$/i", var("s")), let_("r", str("yes"))),
      if_(test("/^(?:n|no|false|0)$/i", var("s")), let_("r", str("no"))),
      if_(eq(var("r"), str("default")),
          if_(test("/^\\s+$/", var("s")), let_("r", str("blank")))),
      assert_(ne(var("r"), str("no"))),
  });
  P.finalize();
  return P;
}

/// xml: tag parsing with a backreference (non-regular).
Program xmlLib() {
  Program P;
  P.Name = "xml";
  P.Params = {"doc"};
  P.Body = block({
      let_("m", exec("/<([a-z]+)( [a-z]+=\"[^\"]*\")?>(.*?)<\\/\\1>/",
                     var("doc"))),
      let_("state", str("no-elem")),
      if_(truthy(var("m")),
          block({
              let_("state", str("elem")),
              if_(ne(matchIndex(var("m"), 2), undefined()),
                  let_("state", str("attr"))),
              if_(eq(matchIndex(var("m"), 3), str("")),
                  let_("state", str("empty"))),
              if_(eq(matchIndex(var("m"), 1), str("script")),
                  let_("state", str("script"))),
          })),
      assert_(ne(var("state"), str("script"))),
  });
  P.finalize();
  return P;
}

/// fast-xml-parser: declaration and entity checks.
Program fastXmlParserLib() {
  Program P;
  P.Name = "fast-xml-parser";
  P.Params = {"s"};
  P.Body = block({
      let_("kind", str("text")),
      if_(test("/^<\\?xml/", var("s")), let_("kind", str("decl"))),
      if_(test("/^<!--/", var("s")), let_("kind", str("comment"))),
      if_(test("/&(amp|lt|gt|quot);/", var("s")),
          let_("hasEntity", boolean(true))),
      let_("m", exec("/^<([a-z:]+)/", var("s"))),
      if_(truthy(var("m")),
          if_(eq(matchIndex(var("m"), 1), str("root")),
              let_("kind", str("root")))),
      assert_(ne(var("kind"), str("root"))),
  });
  P.finalize();
  return P;
}

/// js-yaml: scalar type detection.
Program jsYamlLib() {
  Program P;
  P.Name = "js-yaml";
  P.Params = {"v"};
  P.Body = block({
      let_("t", str("str")),
      if_(test("/^-?[0-9]+$/", var("v")), let_("t", str("int"))),
      if_(test("/^-?[0-9]*\\.[0-9]+$/", var("v")), let_("t", str("float"))),
      if_(test("/^(?:true|false)$/", var("v")), let_("t", str("bool"))),
      if_(test("/^(?:null|~)$/", var("v")), let_("t", str("null"))),
      if_(test("/^[\\[{]/", var("v")), let_("t", str("flow"))),
      assert_(ne(var("t"), str("null"))),
  });
  P.finalize();
  return P;
}

/// minimist: CLI flag parsing.
Program minimistLib() {
  Program P;
  P.Name = "minimist";
  P.Params = {"arg"};
  P.Body = block({
      let_("m", exec("/^--([a-z]+)(?:=(.*))?$/", var("arg"))),
      let_("kind", str("positional")),
      if_(truthy(var("m")),
          block({
              let_("kind", str("flag")),
              if_(ne(matchIndex(var("m"), 2), undefined()),
                  let_("kind", str("option"))),
              if_(eq(matchIndex(var("m"), 1), str("no")),
                  let_("kind", str("negation"))),
          })),
      if_(test("/^-[a-z]$/", var("arg")), let_("kind", str("short"))),
      assert_(ne(var("kind"), str("negation"))),
  });
  P.finalize();
  return P;
}

/// moment: date format parsing (old ExpoSE: 0%).
Program momentLib() {
  Program P;
  P.Name = "moment";
  P.Params = {"d"};
  P.Body = block({
      let_("m",
           exec("/^([0-9]{4})-([0-9]{2})-([0-9]{2})(?:T([0-9]{2}):([0-9]{2}))?$/",
                var("d"))),
      let_("valid", boolean(false)),
      if_(truthy(var("m")),
          block({
              let_("valid", boolean(true)),
              if_(eq(matchIndex(var("m"), 2), str("13")),
                  let_("valid", boolean(false))),
              if_(ne(matchIndex(var("m"), 4), undefined()),
                  let_("hasTime", boolean(true))),
          })),
      assert_(or_(not_(var("valid")),
                  ne(matchIndex(var("m"), 1), str("0000")))),
  });
  P.finalize();
  return P;
}

/// validator: email/uuid style checks.
Program validatorLib() {
  Program P;
  P.Name = "validator";
  P.Params = {"s"};
  P.Body = block({
      let_("t", str("none")),
      if_(test("/^[a-z0-9]+@[a-z0-9]+\\.[a-z]{2,3}$/", var("s")),
          let_("t", str("email"))),
      if_(test("/^[0-9a-f]{8}-[0-9a-f]{4}$/", var("s")),
          let_("t", str("uuidish"))),
      if_(test("/^[A-Z]+$/", var("s")), let_("t", str("upper"))),
      if_(test("/^\\s|\\s$/", var("s")), let_("t", str("untrimmed"))),
      assert_(ne(var("t"), str("uuidish"))),
  });
  P.finalize();
  return P;
}

/// babel-eslint: identifier/keyword scanning.
Program babelEslintLib() {
  Program P;
  P.Name = "babel-eslint";
  P.Params = {"tok"};
  P.Body = block({
      let_("kind", str("unknown")),
      if_(test("/^[A-Za-z_$][A-Za-z0-9_$]*$/", var("tok")),
          let_("kind", str("ident"))),
      if_(test("/^(?:if|else|for|while|return)$/", var("tok")),
          let_("kind", str("keyword"))),
      if_(test("/^[0-9]+(?:\\.[0-9]+)?$/", var("tok")),
          let_("kind", str("number"))),
      let_("m", exec("/^\\/\\/(.*)$/", var("tok"))),
      if_(truthy(var("m")),
          block({
              let_("kind", str("comment")),
              if_(eq(matchIndex(var("m"), 1), str("TODO")),
                  let_("kind", str("todo"))),
          })),
      assert_(ne(var("kind"), str("todo"))),
  });
  P.finalize();
  return P;
}

} // namespace

std::vector<Program> recap::table6Libraries() {
  std::vector<Program> Out;
  Out.push_back(babelEslintLib());
  Out.push_back(fastXmlParserLib());
  Out.push_back(jsYamlLib());
  Out.push_back(minimistLib());
  Out.push_back(momentLib());
  Out.push_back(queryStringLib());
  Out.push_back(semverLib());
  Out.push_back(urlParseLib());
  Out.push_back(validatorLib());
  Out.push_back(xmlLib());
  Out.push_back(ynLib());
  return Out;
}

Program recap::generateMiniPackage(uint64_t Seed) {
  std::mt19937_64 Rng(Seed);

  // Regex pool with per-regex capture-value targets: the branch
  // `m[1] === target` is satisfiable (and for the precedence-sensitive
  // entries only reachable with a matching-precedence-aware solver).
  struct PoolEntry {
    const char *Re;
    std::vector<const char *> Targets; ///< interesting values for m[1]
  };
  static const std::vector<PoolEntry> Pool = {
      {"/^[a-z]+$/", {}},
      {"/[0-9]+/", {}},
      {"/^a(b|c)d$/", {"b", "c"}},
      {"/^(x+)(y*)$/", {"x", "xx"}},
      {"/(foo|bar)/", {"foo", "bar"}},
      {"/^([a-z]+)-([0-9]+)$/", {"alpha", "v"}},
      {"/\\bkey\\b/", {}},
      {"/^v([0-9]+)\\.([0-9]+)/", {"1", "42"}},
      {"/(a+)\\1/", {"a", "aa"}},
      {"/<([a-z]+)>.*<\\/\\1>/", {"div", "td"}},
      {"/^(?:on|off)$/i", {}},
      {"/^(\\w+)\\s+(\\w+)$/", {"alpha", "x"}},
      {"/(?=[a-z])[a-z0-9]+/", {}},
      {"/^\\s*([^:]+):(.*)$/", {"key", "a b"}},
      // Precedence-sensitive: the greedy split determines the captures,
      // so the "+ Refinement" level is needed to reach these branches
      // reliably (spurious capture splits fail concrete re-execution).
      {"/^(a*)(a*)$/", {"", "aa"}},
      {"/^(a*?)(a+)$/", {"", "a"}},
      {"/^(.*)=(.*)$/", {"k", ""}},
  };

  Program P;
  P.Name = "pkg-" + std::to_string(Seed);
  P.Params = {"input"};
  std::vector<StmtPtr> Body;
  Body.push_back(let_("state", str("init")));

  size_t NumOps = 1 + Rng() % 3;
  for (size_t I = 0; I < NumOps; ++I) {
    const PoolEntry &E = Pool[Rng() % Pool.size()];
    std::string MVar = "m" + std::to_string(I);
    std::string Tag = "t" + std::to_string(I);
    if (E.Targets.empty() || Rng() % 3 == 0) {
      // test-driven branch
      Body.push_back(if_(test(E.Re, var("input")),
                         let_("state", str(Tag)),
                         if_(eq(var("state"), str("init")),
                             let_("state", str("miss-" + Tag)))));
    } else {
      // exec-driven branches comparing the first capture against the
      // regex's interesting values.
      const char *Target = E.Targets[Rng() % E.Targets.size()];
      Body.push_back(let_(MVar, exec(E.Re, var("input"))));
      Body.push_back(if_(
          truthy(var(MVar)),
          block({
              let_("state", str("hit-" + Tag)),
              if_(eq(matchIndex(var(MVar), 1), str(Target)),
                  let_("state", str("cap-" + Tag))),
              if_(eq(matchIndex(var(MVar), 1), str("")),
                  let_("state", str("empty-" + Tag))),
          })));
    }
  }
  // A final assertion reachable only through specific capture values.
  Body.push_back(assert_(ne(var("state"), str("cap-t0"))));
  P.Body = block(std::move(Body));
  P.finalize();
  return P;
}
