//===- dse/Engine.h - Generational-search DSE engine ------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DSE driver (paper §6.2): concolic execution with generational
/// search, flipping path-condition clauses through the CEGAR solver, and
/// the CUPA-style scheduler — queued test cases are bucketed by the
/// program point that generated them and the engine draws from the least
/// recently served bucket to prioritize unexplored code.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_DSE_ENGINE_H
#define RECAP_DSE_ENGINE_H

#include "dse/Interpreter.h"

#include <random>

namespace recap {

struct EngineOptions {
  SupportLevel Level = SupportLevel::Refinement;
  /// Stop after this many concrete executions.
  uint64_t MaxTests = 64;
  /// Wall-clock budget.
  double MaxSeconds = 30.0;
  CegarOptions Cegar;
  uint64_t Seed = 1;
  size_t MaxWhileIterations = 32;
  /// Shared compiled-regex runtime. When null, each run creates a private
  /// one; supply a runtime to share compilation work across programs
  /// (e.g. a whole survey corpus or bench suite).
  std::shared_ptr<RegexRuntime> Runtime;
  /// Feature-routed multi-backend dispatch: solve classical-fragment
  /// path conditions on an engine-owned automata LocalBackend and only
  /// capture/backreference/lookaround problems on the supplied backend,
  /// falling back to it whenever the classical lane answers Unknown
  /// (see cegar/BackendDispatcher.h). Dispatch counters land in
  /// EngineResult::Runtime.
  bool Dispatch = false;

  EngineOptions() {
    // Backreference queries with pinned capture constants can take Z3
    // several seconds (see bench/micro_model); failed flips additionally
    // stay retryable (see Engine.cpp).
    Cegar.Limits.TimeoutMs = 10000;
  }
};

struct EngineResult {
  uint64_t TestsRun = 0;
  std::set<int> Covered;
  int TotalStmts = 0;
  double Seconds = 0;
  std::vector<int> FailedAsserts; ///< stmt ids of violated assertions
  CegarStats Cegar;
  SolverStats Solver;
  /// Stats of the engine-owned classical lane (all zero unless
  /// EngineOptions::Dispatch).
  SolverStats LocalSolver;
  RuntimeStats Runtime; ///< pipeline cache + backend dispatch counters

  double coveragePercent() const {
    return TotalStmts == 0
               ? 0
               : 100.0 * static_cast<double>(Covered.size()) / TotalStmts;
  }
  double testsPerMinute() const {
    return Seconds <= 0 ? 0 : 60.0 * static_cast<double>(TestsRun) / Seconds;
  }
  bool bugFound() const { return !FailedAsserts.empty(); }
};

/// Dynamic symbolic execution of one MiniJS program.
class DseEngine {
public:
  DseEngine(SolverBackend &Backend, EngineOptions Opts = {});

  EngineResult run(const Program &P);

private:
  SolverBackend &Backend;
  EngineOptions Opts;
};

} // namespace recap

#endif // RECAP_DSE_ENGINE_H
