//===- dse/Engine.h - Generational-search DSE engine ------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DSE driver (paper §6.2): concolic execution with generational
/// search, flipping path-condition clauses through the CEGAR solver, and
/// the CUPA-style scheduler — queued test cases are bucketed by the
/// program point that generated them and the engine draws from the least
/// recently served bucket to prioritize unexplored code.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_DSE_ENGINE_H
#define RECAP_DSE_ENGINE_H

#include "dse/Interpreter.h"

#include <functional>
#include <random>

namespace recap {

struct EngineOptions {
  SupportLevel Level = SupportLevel::Refinement;
  /// Stop after this many concrete executions.
  uint64_t MaxTests = 64;
  /// Wall-clock budget.
  double MaxSeconds = 30.0;
  CegarOptions Cegar;
  uint64_t Seed = 1;
  size_t MaxWhileIterations = 32;
  /// Shared compiled-regex runtime. When null, each run creates a private
  /// one; supply a runtime to share compilation work across programs
  /// (e.g. a whole survey corpus or bench suite).
  std::shared_ptr<RegexRuntime> Runtime;
  /// Feature-routed multi-backend dispatch: solve classical-fragment
  /// path conditions on an engine-owned automata LocalBackend and only
  /// capture/backreference/lookaround problems on the supplied backend,
  /// falling back to it whenever the classical lane answers Unknown
  /// (see cegar/BackendDispatcher.h). Dispatch counters land in
  /// EngineResult::Runtime.
  bool Dispatch = false;
  /// With Dispatch on: answer `^…$`-anchored test()-style path
  /// conditions straight off product DFAs (DESIGN.md §8), falling back
  /// to normal routing when the lane answers Unknown.
  bool DispatchAnchored = true;
  /// With Dispatch on: race the anchored lane against the general
  /// backend on cost-ambiguous anchored problems, taking the first
  /// decisive answer and cancelling the loser. Off by default — each
  /// race spends two extra threads.
  bool DispatchRacing = false;
  /// Shard-per-worker parallel search (DESIGN.md §6). 1 (the default)
  /// runs the single-threaded legacy path bit-identically; 0 = one shard
  /// per hardware thread; N > 1 runs N shards, each owning its own
  /// interpreter, backend pair and pinned solver sessions over the
  /// shared pattern runtime, with the CUPA buckets partitioned by
  /// site-id hash and work-stealing when a shard's buckets drain (the
  /// scheduling substrate lives in sched/CupaScheduler.h).
  size_t Workers = 1;
  /// Cut Workers down to hardware_concurrency() instead of silently
  /// oversubscribing on small containers; each cut bumps
  /// RuntimeStats::WorkersClamped in the run's window. Stress tests that
  /// deliberately oversubscribe to force interleaving turn this off.
  bool ClampWorkers = true;
  /// Path to a RegexRuntime warm-start snapshot (RegexRuntime::save,
  /// DESIGN.md §7.3). Loaded into the run's runtime before execution —
  /// once per runtime, so corpus tasks sharing one runtime pay a single
  /// load. Empty (default) or unreadable/corrupt: cold start, never an
  /// error.
  std::string CacheSnapshot;
  /// Creates one solver backend per shard — required when Workers != 1:
  /// solver state is never shared across threads, so the single Backend
  /// handed to DseEngine cannot serve multiple shards, and it is never
  /// silently substituted either. Left null with Workers > 1, the run
  /// degrades to the serial path (same solver, same verdicts) and
  /// EngineResult::WorkersUsed reports 1 (asserts in debug builds).
  std::function<std::unique_ptr<SolverBackend>()> BackendFactory;
  /// Cooperative run-level cancellation (service tier, DESIGN.md §10).
  /// Polled between concrete tests and between clause flips on every
  /// shard, and threaded into Cegar.Limits.Cancel (when that is unset) so
  /// in-flight LocalBackend searches drain too; tripping it ends the run
  /// with whatever results exist, exactly like MaxSeconds expiring. Null
  /// (the default) costs nothing.
  const std::atomic<bool> *Cancel = nullptr;

  EngineOptions() {
    // Backreference queries with pinned capture constants can take Z3
    // several seconds (see bench/micro_model); failed flips additionally
    // stay retryable (see Engine.cpp).
    Cegar.Limits.TimeoutMs = 10000;
  }
};

/// What went wrong inside a run that the engine contained instead of
/// propagating (DESIGN.md §9). Every kind is a degradation, never a
/// wrong answer: the affected test/shard contributes Unknown/nothing and
/// the rest of the run proceeds.
enum class EngineErrorKind : uint8_t {
  /// A solver call threw past the CEGAR layer; the flip was dropped
  /// (treated as Unknown) and the solver's pinned sessions were reset.
  SolverThrow,
  /// A shard's stack could not be built or the shard aborted after
  /// repeated throws; its partition was served by work-stealing.
  ShardFailure,
  /// std::thread construction failed (or was injected to fail); the
  /// affected shards ran inline on the caller after the spawned ones.
  WorkerSpawn,
  /// The warm-start snapshot failed to load (run went cold) or save.
  SnapshotError,
  /// BackendFactory threw while building a task's anchor backend
  /// (corpus runner); the program's result is empty.
  BackendConstruction,
};

/// One contained failure: the kind, the shard it happened on (-1 for
/// run-level), and a human-readable detail string.
struct EngineError {
  EngineErrorKind Kind;
  int Shard = -1;
  std::string Detail;
};

/// One shard's window of the parallel run: its share of the tests plus
/// the stats of the solver stack it owned. The top-level EngineResult
/// counters are the associative merge of these windows (tested by
/// parallel_engine_test: merged == sum of shards).
struct ShardStats {
  uint64_t TestsRun = 0;
  uint64_t TestsStolen = 0; ///< tests taken from another shard's buckets
  CegarStats Cegar;
  SolverStats Solver;
  SolverStats LocalSolver;
};

struct EngineResult {
  uint64_t TestsRun = 0;
  std::set<int> Covered;
  int TotalStmts = 0;
  double Seconds = 0;
  std::vector<int> FailedAsserts; ///< stmt ids of violated assertions
  CegarStats Cegar;
  SolverStats Solver;
  /// Stats of the engine-owned classical lane (all zero unless
  /// EngineOptions::Dispatch).
  SolverStats LocalSolver;
  RuntimeStats Runtime; ///< pipeline cache + backend dispatch counters
  /// Per-shard windows (empty on the single-threaded path).
  std::vector<ShardStats> Shards;
  /// Actual shard count of this run (1 on the legacy path).
  size_t WorkersUsed = 1;
  /// Failures the engine contained (capped per shard; see
  /// EngineErrorKind). Empty on a healthy run.
  std::vector<EngineError> Errors;

  double coveragePercent() const {
    return TotalStmts == 0
               ? 0
               : 100.0 * static_cast<double>(Covered.size()) / TotalStmts;
  }
  double testsPerMinute() const {
    return Seconds <= 0 ? 0 : 60.0 * static_cast<double>(TestsRun) / Seconds;
  }
  bool bugFound() const { return !FailedAsserts.empty(); }
};

/// Dynamic symbolic execution of one MiniJS program.
class DseEngine {
public:
  DseEngine(SolverBackend &Backend, EngineOptions Opts = {});

  EngineResult run(const Program &P);

private:
  /// The original single-threaded generational search (Workers == 1).
  /// \p Runtime and \p Before (the runtime's stats window base) are
  /// resolved by run(), which also applies the worker clamp and the
  /// snapshot warm start.
  EngineResult runSerial(const Program &P,
                         const std::shared_ptr<RegexRuntime> &Runtime,
                         const RuntimeStats &Before);
  /// Shard-per-worker search: \p Workers shards over the partitioned
  /// CUPA scheduler (sched/CupaScheduler.h, DESIGN.md §6).
  EngineResult runParallel(const Program &P, size_t Workers,
                           const std::shared_ptr<RegexRuntime> &Runtime,
                           const RuntimeStats &Before);

  SolverBackend &Backend;
  EngineOptions Opts;
};

} // namespace recap

#endif // RECAP_DSE_ENGINE_H
