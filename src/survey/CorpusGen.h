//===- survey/CorpusGen.h - Synthetic NPM corpus ----------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-in for the paper's 415,487-package NPM snapshot
/// (DESIGN.md substitutions). Packages are generated with JavaScript
/// sources embedding regex literals drawn from (a) a curated set of
/// real-world idioms and (b) a procedural pool whose per-feature rates are
/// calibrated to Table 5's *unique* column; Zipf-like popularity weights
/// reproduce the heavy duplication that separates the total column from
/// the unique column. The survey pipeline itself (extraction +
/// classification) is the system under test; the corpus only supplies
/// realistic input.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SURVEY_CORPUSGEN_H
#define RECAP_SURVEY_CORPUSGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace recap {

struct CorpusOptions {
  size_t NumPackages = 1500;
  uint64_t Seed = 42;
  /// Size of the procedurally generated pattern pool.
  size_t ProceduralPool = 1200;
  /// Probability that a package ships JavaScript sources (Table 4: 91.9%).
  double SourceRate = 0.919;
  /// Probability that a source package contains a regex (Table 4: ~38% of
  /// packages with sources).
  double RegexRate = 0.38;
  /// Mean number of regex occurrences per regex-using package.
  double MeanRegexesPerPackage = 14.0;
};

struct GeneratedPackage {
  std::string Name;
  std::vector<std::string> Files; ///< JavaScript source contents
};

std::vector<GeneratedPackage> generateCorpus(const CorpusOptions &Opts);

} // namespace recap

#endif // RECAP_SURVEY_CORPUSGEN_H
