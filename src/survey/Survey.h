//===- survey/Survey.h - Regex usage survey ---------------------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §7.1 survey pipeline: a lightweight static analysis that
/// extracts regex literals from JavaScript source (skipping strings and
/// comments, distinguishing division by expression position, and — like
/// the paper — not resolving `new RegExp(...)` construction), classifies
/// each regex's features with the parser, and aggregates the Table 4
/// (per-package) and Table 5 (per-regex, total vs. unique) statistics.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_SURVEY_SURVEY_H
#define RECAP_SURVEY_SURVEY_H

#include "regex/Features.h"
#include "runtime/RegexRuntime.h"

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace recap {

/// Finds regex literals (like "/ab+c/gi") in JavaScript source text.
std::vector<std::string> extractRegexLiterals(const std::string &Source);

/// Feature-row identifiers in Table 5's order.
std::vector<std::string> surveyFeatureNames();

/// Rows for the ES2018+ extension features this library supports beyond
/// the paper's ES6 scope (dotAll, named groups, lookbehind, named
/// backreferences). Reported separately so Table 5 stays comparable to
/// the paper.
std::vector<std::string> surveyExtensionFeatureNames();

/// Streaming aggregation over packages. Regex parsing and feature
/// analysis go through one RegexRuntime: a corpus regex is parsed and
/// analyzed once no matter how many packages or occurrences repeat it
/// (and malformed literals are rejected from the negative cache).
///
/// Corpus-scale runs shard the aggregation: runParallel() cuts the
/// package list into fixed-size slices (boundaries depend only on the
/// corpus, never on the pool size), runs each slice as a task on the
/// program-level corpus scheduler (sched/CorpusScheduler.h) over the
/// *shared* runtime, and merges the slices in slice order — the result
/// is equal to the serial aggregation, field for field (totals are
/// sums; unique counts are recomputed over the union of the per-slice
/// literal sets at merge time).
class Survey {
public:
  /// Uses a private runtime when \p RT is null; pass one to share
  /// compilation with other phases (e.g. a DSE run over the same corpus).
  explicit Survey(std::shared_ptr<RegexRuntime> RT = nullptr)
      : Runtime(RT ? std::move(RT) : std::make_shared<RegexRuntime>()) {}

  /// Adds one package given the contents of its JavaScript files (empty
  /// vector = package without source files).
  void addPackage(const std::vector<std::string> &JsFiles);

  /// Adds packages [\p Begin, \p End) of \p Packages, polling \p Cancel
  /// between packages (service tier: a deadline-expired survey job drains
  /// at package granularity). Returns the number actually added — less
  /// than the range length iff cancelled, leaving a valid partial window
  /// that still merges cleanly.
  size_t addPackages(const std::vector<std::vector<std::string>> &Packages,
                     size_t Begin, size_t End,
                     const std::atomic<bool> *Cancel = nullptr);

  /// Folds another survey window into this one. Totals add; literals
  /// seen by \p O but not by this survey count into the unique rows
  /// (their features resolve through this survey's runtime — a cache
  /// hit when both surveys share it, as runParallel's slices do).
  void merge(const Survey &O);

  /// Sliced aggregation of \p Packages (outer index = package, inner =
  /// its JS file contents) over \p Workers threads (0 = one per
  /// hardware thread). Deterministic: slice boundaries are a function
  /// of the corpus alone (same slice → same shard regardless of pool
  /// size), slices merge in slice order, and the result equals a serial
  /// Survey over the same list.
  static Survey runParallel(
      const std::vector<std::vector<std::string>> &Packages,
      size_t Workers, std::shared_ptr<RegexRuntime> RT = nullptr);

  const RegexRuntime &runtime() const { return *Runtime; }
  const std::shared_ptr<RegexRuntime> &runtimeHandle() const {
    return Runtime;
  }

  // Table 4 rows.
  uint64_t Packages = 0;
  uint64_t WithSource = 0;
  uint64_t WithRegex = 0;
  uint64_t WithCaptures = 0;
  uint64_t WithBackrefs = 0;
  uint64_t WithQuantifiedBackrefs = 0;

  // Table 5 totals.
  uint64_t TotalRegexes = 0;
  uint64_t UniqueRegexes = 0;

  struct FeatureCount {
    uint64_t Total = 0;
    uint64_t Unique = 0;
  };
  /// Keyed by surveyFeatureNames() entries.
  std::map<std::string, FeatureCount> Features;

private:
  void countRegex(const RegexFeatures &F, const RegexFlags &Flags,
                  bool FirstSeen);
  void bumpFeatures(const RegexFeatures &F, const RegexFlags &Flags,
                    bool Total, bool Unique);
  std::shared_ptr<RegexRuntime> Runtime;
  std::set<std::string> Seen;
};

} // namespace recap

#endif // RECAP_SURVEY_SURVEY_H
