//===- survey/Survey.cpp - Regex usage survey ------------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "survey/Survey.h"

#include "parallel/WorkerPool.h"
#include "sched/CorpusScheduler.h"

#include <cctype>

using namespace recap;

namespace {

/// True if a '/' at the current point starts a regex literal rather than a
/// division, judged from the last significant character/token (the
/// lightweight heuristic the paper's static analysis uses).
bool regexPosition(const std::string &Src, size_t SlashPos,
                   const std::string &LastWord) {
  static const std::set<std::string> Keywords = {
      "return", "typeof", "case",  "in",   "of",   "delete",
      "void",   "instanceof",      "new",  "do",   "else",
      "yield",  "throw"};
  if (!LastWord.empty())
    return Keywords.count(LastWord) != 0;
  // Scan backwards for the previous non-space character.
  size_t I = SlashPos;
  while (I > 0) {
    char C = Src[--I];
    if (std::isspace(static_cast<unsigned char>(C)))
      continue;
    static const std::string Openers = "(,=:[!&|?{};+-*%~^<>";
    return Openers.find(C) != std::string::npos;
  }
  return true; // start of file
}

} // namespace

std::vector<std::string> recap::extractRegexLiterals(
    const std::string &Src) {
  std::vector<std::string> Out;
  size_t I = 0, N = Src.size();
  std::string LastWord;
  while (I < N) {
    char C = Src[I];
    // Line comment.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        ++I;
      continue;
    }
    // Block comment.
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/'))
        ++I;
      I += 2;
      continue;
    }
    // String literals.
    if (C == '"' || C == '\'' || C == '`') {
      char Quote = C;
      ++I;
      while (I < N && Src[I] != Quote) {
        if (Src[I] == '\\')
          ++I;
        ++I;
      }
      ++I;
      LastWord.clear();
      continue;
    }
    // Candidate regex literal.
    if (C == '/' && regexPosition(Src, I, LastWord)) {
      size_t Start = I++;
      bool InClass = false;
      bool Ok = false;
      while (I < N) {
        char D = Src[I];
        if (D == '\\') {
          I += 2;
          continue;
        }
        if (D == '\n')
          break;
        if (InClass) {
          if (D == ']')
            InClass = false;
        } else if (D == '[') {
          InClass = true;
        } else if (D == '/') {
          Ok = true;
          break;
        }
        ++I;
      }
      if (Ok) {
        ++I; // closing '/'
        size_t FlagStart = I;
        while (I < N &&
               std::isalpha(static_cast<unsigned char>(Src[I])))
          ++I;
        // An empty pattern "//" is a comment, not a regex; already
        // excluded by the comment case above.
        Out.push_back(Src.substr(Start, I - Start));
        (void)FlagStart;
        LastWord.clear();
        continue;
      }
      I = Start + 1; // not a regex: treat as division
      LastWord.clear();
      continue;
    }
    // Track identifier words for the keyword heuristic.
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
        C == '$') {
      size_t W = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_' || Src[I] == '$'))
        ++I;
      LastWord = Src.substr(W, I - W);
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(C)))
      LastWord.clear();
    ++I;
  }
  return Out;
}

std::vector<std::string> recap::surveyFeatureNames() {
  return {"Capture Groups", "Global Flag",     "Character Class",
          "Kleene+",        "Kleene*",         "Ignore Case Flag",
          "Ranges",         "Non-capturing",   "Repetition",
          "Kleene* (Lazy)", "Multiline Flag",  "Word Boundary",
          "Kleene+ (Lazy)", "Lookaheads",      "Backreferences",
          "Repetition (Lazy)", "Quantified BRefs", "Sticky Flag",
          "Unicode Flag"};
}

std::vector<std::string> recap::surveyExtensionFeatureNames() {
  return {"DotAll Flag", "Named Groups", "Lookbehinds", "Named BRefs"};
}

void Survey::countRegex(const RegexFeatures &F, const RegexFlags &Flags,
                        bool FirstSeen) {
  bumpFeatures(F, Flags, /*Total=*/true, /*Unique=*/FirstSeen);
}

void Survey::bumpFeatures(const RegexFeatures &F, const RegexFlags &Flags,
                          bool Total, bool Unique) {

  auto Bump = [&](const std::string &Name, bool Present) {
    if (!Present)
      return;
    FeatureCount &FC = Features[Name];
    if (Total)
      ++FC.Total;
    if (Unique)
      ++FC.Unique;
  };
  Bump("Capture Groups", F.CaptureGroups > 0);
  Bump("Global Flag", Flags.Global);
  Bump("Character Class", F.CharacterClasses > 0);
  Bump("Kleene+", F.KleenePlus > 0);
  Bump("Kleene*", F.KleeneStar > 0);
  Bump("Ignore Case Flag", Flags.IgnoreCase);
  Bump("Ranges", F.ClassRanges > 0);
  Bump("Non-capturing", F.NonCapturingGroups > 0);
  Bump("Repetition", F.Repetition > 0);
  Bump("Kleene* (Lazy)", F.KleeneStarLazy > 0);
  Bump("Multiline Flag", Flags.Multiline);
  Bump("Word Boundary", F.WordBoundaries > 0);
  Bump("Kleene+ (Lazy)", F.KleenePlusLazy > 0);
  Bump("Lookaheads", F.Lookaheads > 0);
  Bump("Backreferences", F.Backreferences > 0);
  Bump("Repetition (Lazy)", F.RepetitionLazy > 0);
  Bump("Quantified BRefs", F.QuantifiedBackreferences > 0);
  Bump("Sticky Flag", Flags.Sticky);
  Bump("Unicode Flag", Flags.Unicode);
  // Extension rows (reported outside the Table 5 comparison).
  Bump("DotAll Flag", Flags.DotAll);
  Bump("Named Groups", F.NamedGroups > 0);
  Bump("Lookbehinds", F.Lookbehinds > 0);
  Bump("Named BRefs", F.NamedBackreferences > 0);
}

void Survey::addPackage(const std::vector<std::string> &JsFiles) {
  ++Packages;
  if (JsFiles.empty())
    return;
  ++WithSource;

  bool HasRegex = false, HasCaptures = false, HasBackrefs = false,
       HasQBackrefs = false;
  for (const std::string &File : JsFiles) {
    for (const std::string &Lit : extractRegexLiterals(File)) {
      Result<std::shared_ptr<CompiledRegex>> C = Runtime->literal(Lit);
      if (!C)
        continue;
      HasRegex = true;
      const RegexFeatures &F = (*C)->features();
      HasCaptures |= F.CaptureGroups > 0;
      HasBackrefs |= F.Backreferences > 0;
      HasQBackrefs |= F.QuantifiedBackreferences > 0;

      ++TotalRegexes;
      bool FirstSeen = Seen.insert(Lit).second;
      if (FirstSeen)
        ++UniqueRegexes;
      countRegex(F, (*C)->flags(), FirstSeen);
    }
  }
  WithRegex += HasRegex;
  WithCaptures += HasCaptures;
  WithBackrefs += HasBackrefs;
  WithQuantifiedBackrefs += HasQBackrefs;
}

void Survey::merge(const Survey &O) {
  Packages += O.Packages;
  WithSource += O.WithSource;
  WithRegex += O.WithRegex;
  WithCaptures += O.WithCaptures;
  WithBackrefs += O.WithBackrefs;
  WithQuantifiedBackrefs += O.WithQuantifiedBackrefs;
  TotalRegexes += O.TotalRegexes;
  // Totals are plain sums; unique rows cannot be (a literal first seen in
  // two windows would double-count), so they are recomputed from the
  // literal-set union below.
  for (const auto &[Name, FC] : O.Features)
    Features[Name].Total += FC.Total;
  for (const std::string &Lit : O.Seen) {
    if (!Seen.insert(Lit).second)
      continue;
    ++UniqueRegexes;
    Result<std::shared_ptr<CompiledRegex>> C = Runtime->literal(Lit);
    if (C) // always interned already when the runtimes are shared
      bumpFeatures((*C)->features(), (*C)->flags(), /*Total=*/false,
                   /*Unique=*/true);
  }
}

size_t Survey::addPackages(
    const std::vector<std::vector<std::string>> &Packages, size_t Begin,
    size_t End, const std::atomic<bool> *Cancel) {
  if (End > Packages.size())
    End = Packages.size();
  size_t Added = 0;
  for (size_t I = Begin; I < End; ++I) {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      break;
    addPackage(Packages[I]);
    ++Added;
  }
  return Added;
}

Survey Survey::runParallel(
    const std::vector<std::vector<std::string>> &Packages, size_t Workers,
    std::shared_ptr<RegexRuntime> RT) {
  std::shared_ptr<RegexRuntime> Runtime =
      RT ? std::move(RT) : std::make_shared<RegexRuntime>();
  size_t N = Packages.size();
  if (N == 0)
    return Survey(Runtime);

  // Deterministic slice seeding: boundaries depend only on the corpus
  // size, never on the pool size — package I lands in the same slice
  // whether the scheduler runs 1 worker or 16, and slices merge in
  // slice order. The old scheme cut one slice per worker, so the slice
  // a package seeded moved with the pool size. The slice count scales
  // with the corpus rather than using a fixed chunk, so small corpora
  // still fan out to every worker; the cap only bounds slice
  // bookkeeping on huge corpora and sits far above realistic pool
  // sizes, so it never idles cores.
  constexpr size_t MaxSlices = 256;
  size_t NumSlices = N < MaxSlices ? N : MaxSlices;

  // One private Survey per contiguous slice, all over the shared
  // (concurrency-safe) runtime: a pattern repeated across slices is
  // parsed and feature-analyzed once, whichever task touches it first.
  // Slices are program-level tasks on the corpus scheduler (finite batch
  // jobs, each serial — ShardsPerTask stays 1), drawn off the shared
  // pool in slice order.
  std::vector<Survey> Slices;
  Slices.reserve(NumSlices);
  for (size_t I = 0; I < NumSlices; ++I)
    Slices.emplace_back(Runtime);

  sched::CorpusSchedulerOptions SchedOpts;
  SchedOpts.Workers = WorkerPool::resolveWorkers(Workers);
  if (SchedOpts.Workers > NumSlices)
    SchedOpts.Workers = NumSlices;
  SchedOpts.ShardsPerTask = 1;
  // Callers pick worker counts above the core count on purpose in the
  // concurrency stress tests; the engine-level clamp satellite does not
  // apply here.
  SchedOpts.ClampToHardware = false;
  sched::CorpusScheduler Sched(SchedOpts);
  for (size_t Idx = 0; Idx < NumSlices; ++Idx)
    Sched.add([&, Idx, NumSlices](size_t, size_t) {
      size_t Begin = N * Idx / NumSlices;
      size_t End = N * (Idx + 1) / NumSlices;
      Slices[Idx].addPackages(Packages, Begin, End);
    });
  Sched.run();

  // Merging in slice order keeps the aggregation deterministic and equal
  // to the serial result (survey_test.ParallelMatchesSerial).
  Survey Out(Runtime);
  for (const Survey &S : Slices)
    Out.merge(S);
  return Out;
}
