//===- survey/CorpusGen.cpp - Synthetic NPM corpus --------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "survey/CorpusGen.h"

#include <cmath>
#include <random>

using namespace recap;

namespace {

/// Curated real-world idioms (trim, semver, XML tags, emails, ...). These
/// anchor the head of the popularity distribution: the most-duplicated
/// regexes on NPM are simple utility patterns.
struct PoolEntry {
  std::string Literal;
  double Popularity;
};

std::vector<PoolEntry> curatedPool() {
  return {
      {"/^\\s+|\\s+$/g", 40.0},
      {"/\\s+/g", 36.0},
      {"/\\n/g", 28.0},
      {"/[^a-zA-Z0-9]/g", 22.0},
      {"/\\./g", 20.0},
      {"/\\//g", 18.0},
      {"/^\\d+$/", 17.0},
      {"/[A-Z]/g", 15.0},
      {"/\\s/", 14.0},
      {"/-/g", 13.0},
      {"/^[a-z]+$/i", 12.0},
      {"/(\\d+)/", 11.0},
      {"/([A-Z])/g", 10.0},
      {"/^(\\d+)\\.(\\d+)\\.(\\d+)$/", 9.0}, // semver
      {"/\"/g", 9.0},
      {"/%[sdj%]/g", 8.0},
      {"/^https?:\\/\\//", 8.0},
      {"/\\r\\n|\\r|\\n/g", 7.0},
      {"/[\\u0000-\\u001f]/", 2.0},
      {"/^\\w+([.-]?\\w+)*@\\w+([.-]?\\w+)*(\\.\\w{2,3})+$/", 4.0},
      {"/<(\\w+)>(.*?)<\\/\\1>/", 1.5}, // XML tag with backreference
      {"/^(?:\\d{1,3}\\.){3}\\d{1,3}$/", 3.0},
      {"/\\b\\w+\\b/g", 3.5},
      {"/^(-|\\+)?\\d+$/", 3.0},
      {"/(['\"])(?:(?!\\1).)*\\1/", 0.8}, // quoted string w/ lookahead+bref
      {"/^#?([a-f0-9]{6}|[a-f0-9]{3})$/i", 2.0},
      {"/([a-z])([A-Z])/g", 4.0},
      {"/\\{\\{([^}]+)\\}\\}/g", 2.5},
      {"/^\\/|\\/$/g", 2.0},
      {"/\\?.*$/", 2.0},
      {"/^(.*?)=(.*)$/m", 1.2},
      {"/(\\w+)\\s*=\\s*([^;]+)/g", 1.5},
      {"/^v?(\\d+)(\\.\\d+)?(\\.\\d+)?$/", 1.5},
      {"/\\\\/g", 5.0},
      {"/\\t/g", 4.5},
      {"/\\s*,\\s*/", 4.0},
      {"/^$/", 3.0},
      {"/.{1,72}/g", 0.5},
      {"/(\\r?\\n){2,}/g", 0.7},
      {"/^(a+)+$/", 0.05}, // pathological (ReDoS shape)
      // A small share of post-ES6 idioms (named groups, lookbehind,
      // dotAll) as found in modern NPM code; the survey reports them in
      // its extension rows, outside the paper's Table 5 comparison.
      {"/(?<year>\\d{4})-(?<month>\\d{2})-(?<day>\\d{2})/", 0.4},
      {"/(?<=\\$)\\d+(?:\\.\\d{2})?/g", 0.3},
      {"/(?<!\\\\)\"/g", 0.25},
      {"/<script>.*?<\\/script>/s", 0.2},
      {"/(?<quote>['\"]).*?\\k<quote>/", 0.15},
  };
}

/// Feature probabilities for the procedural pool, calibrated to Table 5's
/// unique column.
struct FeaturePlan {
  bool Capture, Global, Class, Plus, Star, ICase, Range, NonCap, Rep;
  bool LazyStar, MFlag, WordB, LazyPlus, Lookahead, Backref, LazyRep;
  bool QBackref, Sticky, Unicode, Anchor;
};

std::string randomWord(std::mt19937_64 &Rng, size_t Lo = 2, size_t Hi = 5) {
  static const char Alpha[] = "abcdefghijklmnopqrstuvwxyz";
  size_t Len = Lo + Rng() % (Hi - Lo + 1);
  std::string S;
  for (size_t I = 0; I < Len; ++I)
    S.push_back(Alpha[Rng() % 26]);
  return S;
}

std::string buildPattern(const FeaturePlan &F, std::mt19937_64 &Rng) {
  std::string P;
  if (F.Anchor)
    P += "^";
  if (F.Lookahead)
    P += "(?=" + randomWord(Rng) + ")";
  if (F.WordB)
    P += "\\b";

  // Leading atom with a quantifier per the plan.
  std::string Atom =
      F.Class ? (F.Range ? "[a-z0-9_]" : "[abc]") : randomWord(Rng, 1, 3);
  P += Atom;
  if (F.Star)
    P += F.LazyStar ? "*?" : "*";
  else if (F.Plus)
    P += F.LazyPlus ? "+?" : "+";
  else if (F.Rep)
    P += F.LazyRep ? "{1,3}?" : "{2,4}";
  else if (F.LazyStar)
    P += "*?";
  else if (F.LazyPlus)
    P += "+?";
  else if (F.LazyRep)
    P += "{1,2}?";

  if (F.QBackref) {
    P += "((" + randomWord(Rng, 1, 2) + "|x)\\2)+";
  } else if (F.Capture) {
    P += "(" + randomWord(Rng) + (F.Plus ? "+" : "") + ")";
    if (F.Backref)
      P += "\\1";
  }
  if (F.NonCap)
    P += "(?:" + randomWord(Rng, 1, 3) + ")?";
  P += randomWord(Rng, 1, 3);
  if (F.Anchor)
    P += "$";

  std::string Flags;
  if (F.Global)
    Flags += 'g';
  if (F.ICase)
    Flags += 'i';
  if (F.MFlag)
    Flags += 'm';
  if (F.Unicode)
    Flags += 'u';
  if (F.Sticky)
    Flags += 'y';
  return "/" + P + "/" + Flags;
}

std::vector<PoolEntry> proceduralPool(size_t Count, std::mt19937_64 &Rng) {
  auto Coin = [&Rng](double P) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < P;
  };
  std::vector<PoolEntry> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    FeaturePlan F;
    F.Capture = Coin(0.37);
    F.Global = Coin(0.296);
    F.Class = Coin(0.232);
    F.Plus = Coin(0.221);
    F.Star = !F.Plus && Coin(0.28);
    F.ICase = Coin(0.193);
    F.Range = F.Class && Coin(0.74);
    F.NonCap = Coin(0.085);
    F.Rep = !F.Plus && !F.Star && Coin(0.09);
    F.LazyStar = F.Star && Coin(0.2);
    F.MFlag = Coin(0.035);
    F.WordB = Coin(0.032);
    F.LazyPlus = F.Plus && Coin(0.09);
    F.Lookahead = Coin(0.01);
    F.Backref = F.Capture && Coin(0.02);
    F.LazyRep = F.Rep && Coin(0.012);
    F.QBackref = Coin(0.0004);
    F.Sticky = Coin(0.0002);
    F.Unicode = Coin(0.0002);
    F.Anchor = Coin(0.35);
    // Popularity: simple patterns dominate the duplicated mass.
    int Complexity = F.Capture + F.Backref + F.Lookahead + F.NonCap +
                     F.QBackref + F.Rep;
    double Pop = 1.0 / (1.0 + I * 0.01) / (1.0 + 2.0 * Complexity);
    Out.push_back({buildPattern(F, Rng), Pop});
  }
  return Out;
}

std::string makeFile(const std::vector<std::string> &Literals,
                     std::mt19937_64 &Rng, size_t FileIdx) {
  std::string S;
  S += "// auto-generated module " + std::to_string(FileIdx) + "\n";
  S += "'use strict';\n";
  S += "var total = 0; /* running /total/ count */\n";
  size_t N = 0;
  for (const std::string &L : Literals) {
    switch (Rng() % 5) {
    case 0:
      S += "var re" + std::to_string(N) + " = " + L + ";\n";
      break;
    case 1:
      S += "if (" + L + ".test(input)) { total += 1; }\n";
      break;
    case 2:
      S += "var m" + std::to_string(N) + " = input.match(" + L + ");\n";
      break;
    case 3:
      S += "out = out.replace(" + L + ", '');\n";
      break;
    default:
      S += "var parts" + std::to_string(N) + " = " + L +
           ".exec(line);\n";
      break;
    }
    // Decoys between uses: division and slash-bearing strings that the
    // extractor must not mistake for regexes.
    if (Rng() % 3 == 0)
      S += "total = total / 2 / 1;\n";
    if (Rng() % 4 == 0)
      S += "var path = 'a/b/c' + \"/d/e\";\n";
    ++N;
  }
  S += "module.exports = { total: total };\n";
  return S;
}

} // namespace

std::vector<GeneratedPackage> recap::generateCorpus(
    const CorpusOptions &Opts) {
  std::mt19937_64 Rng(Opts.Seed);
  std::vector<PoolEntry> Pool = curatedPool();
  std::vector<PoolEntry> Proc = proceduralPool(Opts.ProceduralPool, Rng);
  Pool.insert(Pool.end(), Proc.begin(), Proc.end());

  std::vector<double> Weights;
  Weights.reserve(Pool.size());
  for (const PoolEntry &E : Pool)
    Weights.push_back(E.Popularity);
  std::discrete_distribution<size_t> Draw(Weights.begin(), Weights.end());
  std::uniform_real_distribution<double> Uni(0, 1);

  std::vector<GeneratedPackage> Out;
  Out.reserve(Opts.NumPackages);
  for (size_t P = 0; P < Opts.NumPackages; ++P) {
    GeneratedPackage Pkg;
    Pkg.Name = "pkg-" + std::to_string(P);
    if (Uni(Rng) >= Opts.SourceRate) {
      Out.push_back(std::move(Pkg)); // no source files
      continue;
    }
    bool HasRegex = Uni(Rng) < Opts.RegexRate;
    size_t NumFiles = 1 + Rng() % 3;
    std::vector<std::vector<std::string>> FileLits(NumFiles);
    if (HasRegex) {
      std::geometric_distribution<size_t> Geo(
          1.0 / Opts.MeanRegexesPerPackage);
      size_t NumRegexes = 1 + Geo(Rng);
      for (size_t R = 0; R < NumRegexes; ++R)
        FileLits[Rng() % NumFiles].push_back(Pool[Draw(Rng)].Literal);
    }
    for (size_t F = 0; F < NumFiles; ++F)
      Pkg.Files.push_back(makeFile(FileLits[F], Rng, F));
    Out.push_back(std::move(Pkg));
  }
  return Out;
}
