//===- reliability/Watchdog.h - Shared deadline thread ----------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shared deadline thread for the whole process: callers arm() a
/// callback against a wall-clock deadline around a potentially-hanging
/// operation and disarm() it when the operation returns. If the deadline
/// passes first, the watchdog thread invokes the callback — for
/// GuardedSession that is SolverSession::cancel(), which a backend honours
/// from another thread by contract (Z3 context interrupt, LocalBackend
/// cooperative poll). Callbacks must therefore be cheap and thread-safe;
/// the watchdog is a metronome, not a worker pool.
///
/// disarm() is a synchronization point: it blocks while the callback is
/// mid-flight and reports whether it ran at all, so the caller can both
/// distinguish "deadline burned" from "returned in time" and safely
/// destroy whatever the callback targets immediately afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_WATCHDOG_H
#define RECAP_RELIABILITY_WATCHDOG_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

namespace recap {

class Watchdog {
public:
  /// Handle for one armed deadline (see arm()/disarm()).
  using Token = uint64_t;

  Watchdog() = default;
  /// Joins the deadline thread; every token must be disarmed first.
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Schedules \p Fire to run on the watchdog thread once \p Deadline
  /// elapses, unless disarmed first. The thread is started lazily on the
  /// first arm().
  Token arm(std::chrono::milliseconds Deadline, std::function<void()> Fire);

  /// Retires \p T and returns whether its callback fired. Blocks until a
  /// concurrently-running callback completes, so after disarm() returns
  /// the callback's target can be destroyed safely.
  bool disarm(Token T);

  /// Number of currently armed deadlines (tests/telemetry).
  size_t armed() const;

  /// The process-wide instance every GuardedSession shares: one thread
  /// supervises all shards' checks, however many are in flight.
  static Watchdog &global();

private:
  void loop();

  struct Entry {
    std::chrono::steady_clock::time_point When;
    std::function<void()> Fire;
    bool Fired = false;   ///< callback ran (or is running)
    bool Running = false; ///< callback currently executing
  };

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::map<Token, Entry> Armed; ///< small: one entry per in-flight check
  Token NextToken = 1;
  std::thread Thread;
  bool Started = false;
  bool Stop = false;
};

} // namespace recap

#endif // RECAP_RELIABILITY_WATCHDOG_H
