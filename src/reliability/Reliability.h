//===- reliability/Reliability.h - Reliability layer options ----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One options struct threading the reliability layer (DESIGN.md §9)
/// through CegarOptions → DseEngineOptions → DseCorpusOptions: watchdog
/// deadlines and retry policy for GuardedSession, breaker policy for
/// BackendDispatcher lanes, quarantine policy plus the shared table a
/// corpus run hands every engine.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_RELIABILITY_H
#define RECAP_RELIABILITY_RELIABILITY_H

#include "reliability/CircuitBreaker.h"
#include "reliability/Quarantine.h"

#include <memory>

namespace recap {

struct ReliabilityOptions {
  /// Master switch. Off (the default) costs nothing: sessions are opened
  /// bare, the dispatcher never consults breakers, no quarantine exists.
  bool Enabled = false;

  /// Watchdog deadline per individual check. Distinct from
  /// SolverLimits.TimeoutMs (the budget a backend is *asked* to respect):
  /// the watchdog is the enforcement for backends that wedge past it.
  uint32_t CheckDeadlineMs = 2000;
  /// Total attempts per check (first try + retries on a fresh scratch
  /// session replaying the live assertions).
  unsigned MaxAttempts = 3;
  /// Exponential backoff between attempts: Base, 2*Base, 4*Base, ...
  /// capped at Cap. The wait polls cancellation so a racing lane's
  /// cancel() is not held up by backoff.
  uint32_t BackoffBaseMs = 10;
  uint32_t BackoffCapMs = 1000;

  CircuitBreaker::Options Breaker;
  Quarantine::Options QuarantinePolicy;

  /// Shared across engines of one corpus run (runDseCorpus creates and
  /// persists it); null = each CegarSolver keeps its own private table.
  std::shared_ptr<Quarantine> SharedQuarantine;

  /// Destination for the Guard*/Breaker*/Quarantine counters. DseEngine
  /// points this at its RegexRuntime's shared block; null lets the
  /// CegarSolver fall back to its dispatcher's block (or a private one),
  /// so the counters always land somewhere.
  std::shared_ptr<RuntimeStats> Stats;
};

} // namespace recap

#endif // RECAP_RELIABILITY_RELIABILITY_H
