//===- reliability/GuardedSession.h - Deadline-guarded session --*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SolverSession decorator enforcing per-check deadlines with retry:
/// scope operations forward straight to the wrapped inner session, while
/// check() arms the shared Watchdog to fire the inner session's cancel()
/// if the backend wedges past ReliabilityOptions::CheckDeadlineMs.
///
/// A check that burned its deadline (or threw) is retried — up to
/// MaxAttempts, with cancel-aware exponential backoff — on a *fresh
/// scratch session* replaying the live assertion list, never on the
/// possibly-wedged original: the PR 2 scratch-rescue discipline, which
/// keeps the pinned session's caches unpoisoned whatever the retry does.
/// A genuine Unknown (the backend answered in time) is an answer, not a
/// failure: it is returned as-is without burning retry budget.
///
/// Every outcome is reported to the lane's CircuitBreaker (when one is
/// attached), and the burn count is exposed so CegarSolver can feed the
/// quarantine. Soundness: the guard only ever converts "no answer yet"
/// into Unknown; Sat/Unsat verdicts pass through untouched, so guarded
/// and unguarded runs can only differ where a deadline actually fired.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_GUARDEDSESSION_H
#define RECAP_RELIABILITY_GUARDEDSESSION_H

#include "reliability/Reliability.h"
#include "smt/Solver.h"

#include <mutex>

namespace recap {

class CircuitBreaker;

class GuardedSession : public SolverSession {
public:
  /// Wraps \p Inner (a session of \p Owner) under \p Opts. \p Breaker
  /// (optional) receives per-check success/failure; \p Stats (optional)
  /// receives the GuardTimeouts/GuardRetries/GuardThrows counters.
  GuardedSession(SolverBackend &Owner, std::unique_ptr<SolverSession> Inner,
                 const ReliabilityOptions &Opts,
                 CircuitBreaker *Breaker = nullptr,
                 std::shared_ptr<RuntimeStats> Stats = nullptr);
  ~GuardedSession() override;

  /// Deadline burns / scratch retries this session has seen (CegarSolver
  /// reads the delta per problem to drive the quarantine).
  uint64_t timeouts() const { return Timeouts; }
  uint64_t retries() const { return Retries; }

protected:
  void onAssert(const TermRef &T) override { Inner->assertTerm(T); }
  void onPush() override { Inner->push(); }
  void onPop(unsigned N, size_t NewSize) override {
    (void)NewSize;
    Inner->pop(N);
  }
  SolveStatus checkImpl(Assignment &Model, const SolverLimits &Limits) override;
  /// Forwards an external cancel (race coordinator) to whichever session
  /// is currently executing the check, so the losing lane still stops
  /// promptly even mid-retry.
  void onCancel() override;

private:
  /// One watchdog-supervised attempt on \p S. Returns the status;
  /// \p Fired reports a burned deadline, \p Threw an escaped exception.
  SolveStatus attempt(SolverSession &S, Assignment &Model,
                      const SolverLimits &Limits, bool &Fired, bool &Threw);

  std::unique_ptr<SolverSession> Inner;
  ReliabilityOptions Opts;
  CircuitBreaker *Breaker;
  std::shared_ptr<RuntimeStats> Stats;

  /// The session executing the current attempt, for onCancel() forwarding.
  std::mutex CurMu;
  SolverSession *Current = nullptr;

  uint64_t Timeouts = 0;
  uint64_t Retries = 0;
};

} // namespace recap

#endif // RECAP_RELIABILITY_GUARDEDSESSION_H
