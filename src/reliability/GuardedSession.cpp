//===- reliability/GuardedSession.cpp - Deadline-guarded session -----------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "reliability/GuardedSession.h"

#include "reliability/Watchdog.h"

#include <thread>

using namespace recap;

GuardedSession::GuardedSession(SolverBackend &Owner,
                               std::unique_ptr<SolverSession> Inner,
                               const ReliabilityOptions &Opts,
                               CircuitBreaker *Breaker,
                               std::shared_ptr<RuntimeStats> Stats)
    : SolverSession(Owner, /*Passthrough=*/true), Inner(std::move(Inner)),
      Opts(Opts), Breaker(Breaker), Stats(std::move(Stats)) {}

GuardedSession::~GuardedSession() = default;

void GuardedSession::onCancel() {
  std::lock_guard<std::mutex> Lock(CurMu);
  if (Current)
    Current->cancel();
}

SolveStatus GuardedSession::attempt(SolverSession &S, Assignment &Model,
                                    const SolverLimits &Limits, bool &Fired,
                                    bool &Threw) {
  {
    std::lock_guard<std::mutex> Lock(CurMu);
    Current = &S;
    // An external cancel that landed between attempts (Current was null,
    // nothing to forward to) must reach this attempt before it starts.
    if (cancelRequested())
      S.cancel();
  }
  Watchdog::Token T = Watchdog::global().arm(
      std::chrono::milliseconds(Opts.CheckDeadlineMs), [&S] { S.cancel(); });
  SolveStatus St = SolveStatus::Unknown;
  try {
    St = S.check(Model, Limits);
  } catch (...) {
    // z3::exception, FaultInjected, anything: the attempt failed, the
    // retry loop decides what happens next. Nothing escapes past the
    // guard into the CEGAR loop.
    Threw = true;
  }
  // disarm() blocks out a mid-flight callback, so after this line nothing
  // references S from the watchdog thread and a scratch can be destroyed.
  Fired = Watchdog::global().disarm(T);
  {
    std::lock_guard<std::mutex> Lock(CurMu);
    Current = nullptr;
  }
  return St;
}

SolveStatus GuardedSession::checkImpl(Assignment &Model,
                                      const SolverLimits &Limits) {
  SolverLimits L = Limits;
  // The base check() wired L.Cancel at *our* CancelFlag — a flag no
  // backend run through the inner session would ever poll. Null it so
  // each attempt's session wires its own flag, the one its backend
  // honours and the one the watchdog's cancel() sets. External
  // cancellation reaches the attempt through onCancel() forwarding;
  // guarded checks require cancel(), not a caller-owned Limits.Cancel.
  L.Cancel = nullptr;

  const unsigned MaxAttempts = Opts.MaxAttempts < 1 ? 1 : Opts.MaxAttempts;
  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    // Retries run on a fresh scratch session replaying the live
    // assertions — never on the possibly-wedged original, whose caches
    // stay unpoisoned either way (PR 2 scratch-rescue discipline).
    std::unique_ptr<SolverSession> Scratch;
    SolverSession *S = Inner.get();
    if (Attempt > 0) {
      ++Retries;
      if (Stats)
        ++Stats->GuardRetries;
      Scratch = Owner.openSession();
      for (const TermRef &T : assertions())
        Scratch->assertTerm(T);
      S = Scratch.get();
    }

    bool Fired = false, Threw = false;
    Assignment M;
    SolveStatus St = attempt(*S, M, L, Fired, Threw);
    if (Fired) {
      // Re-arm the session: the sticky cancel belongs to this attempt,
      // not to the session's future (the pinned inner session may serve
      // many more problems).
      S->resetCancel();
      ++Timeouts;
      if (Stats)
        ++Stats->GuardTimeouts;
    }
    if (Threw && Stats)
      ++Stats->GuardThrows;

    // Accept any verdict the backend actually produced: Sat/Unsat always
    // (even at the deadline wire), and Unknown when no deadline fired —
    // a genuine Unknown is an answer, not a malfunction, and retrying it
    // would burn budget on a problem the backend already weighed in on.
    if (!Threw && (St != SolveStatus::Unknown || !Fired)) {
      if (Breaker)
        Breaker->recordSuccess();
      Model = std::move(M);
      return St;
    }

    if (Breaker)
      Breaker->recordFailure();
    if (Attempt + 1 >= MaxAttempts || cancelRequested() ||
        (Breaker && Breaker->isOpen()))
      break;

    // Exponential backoff, polling for an external cancel: a racing
    // lane's loser must not sit out a full backoff before noticing.
    uint64_t Ms = Opts.BackoffBaseMs;
    for (unsigned I = 0; I < Attempt && Ms < Opts.BackoffCapMs; ++I)
      Ms *= 2;
    if (Ms > Opts.BackoffCapMs)
      Ms = Opts.BackoffCapMs;
    auto Until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
    while (std::chrono::steady_clock::now() < Until && !cancelRequested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return SolveStatus::Unknown;
}
