//===- reliability/CircuitBreaker.h - Per-lane failure breaker --*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic three-state circuit breaker, one per solver lane:
///
///            Threshold consecutive failures
///   Closed ---------------------------------> Open
///     ^                                        | CooldownMs elapsed
///     | success                                v
///     +----------------------------------- HalfOpen
///                      failure: back to Open (fresh cooldown)
///
/// A "failure" is a guarded check that burned its watchdog deadline or
/// threw (GuardedSession reports both); a completed check — including a
/// genuine Unknown, which is an answer, not a malfunction — is a success.
/// BackendDispatcher::decide() consults isOpen() to steer problems away
/// from a tripped lane; HalfOpen lets the next problem probe the lane so
/// a recovered backend closes the circuit again.
///
/// Not thread-safe by design: breakers live per shard, next to the
/// dispatcher and sessions they protect (DESIGN.md §6). The optional
/// Opens counter may point into a shared RuntimeStats block — that
/// counter is atomic on its own.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_CIRCUITBREAKER_H
#define RECAP_RELIABILITY_CIRCUITBREAKER_H

#include "runtime/CompiledRegex.h"

#include <chrono>

namespace recap {

class CircuitBreaker {
public:
  enum class State : uint8_t { Closed, Open, HalfOpen };

  struct Options {
    /// Consecutive failures that trip the breaker.
    unsigned Threshold = 3;
    /// How long an open breaker blocks the lane before allowing a probe.
    uint32_t CooldownMs = 5000;
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options Opts, StatCounter *Opens = nullptr)
      : Opts(Opts), Opens(Opens) {
    if (this->Opts.Threshold == 0)
      this->Opts.Threshold = 1;
  }

  /// True while the lane should not be used. An Open breaker whose
  /// cooldown has elapsed transitions to HalfOpen here and answers false:
  /// the caller's very next check is the probe.
  bool isOpen() {
    if (St != State::Open)
      return false;
    if (std::chrono::steady_clock::now() - OpenedAt <
        std::chrono::milliseconds(Opts.CooldownMs))
      return true;
    St = State::HalfOpen;
    return false;
  }

  void recordFailure() {
    if (St == State::HalfOpen) {
      trip(); // the probe failed: straight back to Open, fresh cooldown
      return;
    }
    if (St == State::Open)
      return; // failures while open (late async results) change nothing
    if (++Streak >= Opts.Threshold)
      trip();
  }

  void recordSuccess() {
    Streak = 0;
    St = State::Closed;
  }

  State state() const { return St; }
  unsigned streak() const { return Streak; }
  uint64_t trips() const { return Trips; }

private:
  void trip() {
    St = State::Open;
    Streak = 0;
    OpenedAt = std::chrono::steady_clock::now();
    ++Trips;
    if (Opens)
      ++*Opens;
  }

  Options Opts;
  StatCounter *Opens; ///< optional shared RuntimeStats::BreakerOpens
  State St = State::Closed;
  unsigned Streak = 0;
  uint64_t Trips = 0;
  std::chrono::steady_clock::time_point OpenedAt{};
};

} // namespace recap

#endif // RECAP_RELIABILITY_CIRCUITBREAKER_H
