//===- reliability/Quarantine.cpp - Tarpit problem quarantine --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "reliability/Quarantine.h"

#include "reliability/FaultInjector.h"

#include <cstdio>
#include <fstream>
#include <vector>

using namespace recap;

namespace {

constexpr char Magic[8] = {'R', 'E', 'C', 'A', 'P', 'Q', 'U', 'A'};
// Version 2 adds a per-entry age (generations since last burn) so a
// resident process's aging clock survives shutdown. Version-1 sidecars
// are rejected like any other mismatch: a cold quarantine costs time,
// not soundness.
constexpr uint32_t Version = 2;

uint64_t fnv1a(const char *Data, size_t N, uint64_t H = 0xcbf29ce484222325ull) {
  for (size_t I = 0; I < N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 0x100000001b3ull;
  }
  return H;
}

template <typename T> void put(std::string &Out, T V) {
  char Buf[sizeof(T)];
  for (size_t I = 0; I < sizeof(T); ++I)
    Buf[I] = static_cast<char>((V >> (8 * I)) & 0xff);
  Out.append(Buf, sizeof(T));
}

template <typename T> bool get(const std::string &In, size_t &Pos, T &V) {
  if (Pos + sizeof(T) > In.size())
    return false;
  V = 0;
  for (size_t I = 0; I < sizeof(T); ++I)
    V |= static_cast<T>(static_cast<unsigned char>(In[Pos + I])) << (8 * I);
  Pos += sizeof(T);
  return true;
}

} // namespace

bool Quarantine::shouldSkip(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  return It != Entries.end() && It->second.Burns >= Opts.Threshold;
}

bool Quarantine::recordBurn(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    if (Entries.size() >= Opts.MaxEntries)
      return false; // full: drop on the floor, costs time not soundness
    It = Entries.emplace(Key, Entry{}).first;
  }
  ++It->second.Burns;
  It->second.Gen = CurGen;
  if (It->second.Burns == Opts.Threshold) {
    ++NumQuarantined;
    return true;
  }
  return false;
}

std::vector<Quarantine::EntryView> Quarantine::entries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<EntryView> Out;
  Out.reserve(Entries.size());
  for (const auto &[Key, E] : Entries)
    Out.push_back({Key, E.Burns, E.Gen, E.Burns >= Opts.Threshold});
  return Out;
}

uint64_t Quarantine::currentGeneration() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return CurGen;
}

size_t Quarantine::quarantined() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NumQuarantined;
}

size_t Quarantine::tracked() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

uint64_t Quarantine::expired() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NumExpired;
}

void Quarantine::bumpGeneration() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++CurGen;
}

bool Quarantine::save(const std::string &Path) {
  if (FaultInjector *FI = FaultInjector::active()) {
    try {
      if (FI->fire(FaultSite::SnapshotSave, nullptr))
        return false;
    } catch (const FaultInjected &) {
      return false; // an injected throw mid-save is still just a failed save
    }
  }

  std::string Body;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    // Aging eviction happens here, not on every burn: save() marks the
    // end of a pass/cycle, the natural moment to drop stale entries.
    if (Opts.MaxAgeGenerations > 0) {
      for (auto It = Entries.begin(); It != Entries.end();) {
        if (CurGen - It->second.Gen > Opts.MaxAgeGenerations) {
          if (It->second.Burns >= Opts.Threshold)
            --NumQuarantined;
          ++NumExpired;
          It = Entries.erase(It);
        } else {
          ++It;
        }
      }
    }
    Body.append(Magic, sizeof(Magic));
    put<uint32_t>(Body, Version);
    put<uint64_t>(Body, Entries.size());
    for (const auto &[Key, E] : Entries) {
      put<uint64_t>(Body, Key.size());
      Body.append(Key);
      put<uint32_t>(Body, E.Burns);
      uint64_t Age = CurGen - E.Gen;
      put<uint32_t>(Body, Age > UINT32_MAX ? UINT32_MAX
                                           : static_cast<uint32_t>(Age));
    }
  }
  put<uint64_t>(Body, fnv1a(Body.data(), Body.size()));

  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return false;
    OS.write(Body.data(), static_cast<std::streamsize>(Body.size()));
    OS.flush();
    if (!OS) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool Quarantine::load(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return false;
  std::string In((std::istreambuf_iterator<char>(IS)),
                 std::istreambuf_iterator<char>());
  if (In.size() < sizeof(Magic) + sizeof(uint32_t) + 2 * sizeof(uint64_t))
    return false;

  size_t Pos = In.size() - sizeof(uint64_t);
  uint64_t Want = 0;
  if (!get<uint64_t>(In, Pos, Want))
    return false;
  if (fnv1a(In.data(), In.size() - sizeof(uint64_t)) != Want)
    return false;

  Pos = 0;
  if (In.compare(0, sizeof(Magic), Magic, sizeof(Magic)) != 0)
    return false;
  Pos = sizeof(Magic);
  uint32_t V = 0;
  uint64_t Count = 0;
  if (!get<uint32_t>(In, Pos, V) || V != Version ||
      !get<uint64_t>(In, Pos, Count))
    return false;

  // Decode fully before touching state: a truncated body mid-way through
  // must not leave a half-merged table.
  struct Decoded {
    std::string Key;
    uint32_t Burns;
    uint32_t Age;
  };
  std::vector<Decoded> Loaded;
  Loaded.reserve(Count < 65536 ? static_cast<size_t>(Count) : 65536);
  const size_t BodyEnd = In.size() - sizeof(uint64_t);
  for (uint64_t I = 0; I < Count; ++I) {
    uint64_t Len = 0;
    if (!get<uint64_t>(In, Pos, Len) || Pos + Len > BodyEnd)
      return false;
    std::string Key = In.substr(Pos, static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    uint32_t N = 0, Age = 0;
    if (!get<uint32_t>(In, Pos, N) || !get<uint32_t>(In, Pos, Age))
      return false;
    Loaded.push_back({std::move(Key), N, Age});
  }
  if (Pos != BodyEnd)
    return false;

  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &D : Loaded) {
    // A saved age of K means "last burn K generations before the save";
    // re-anchor it against the loader's clock, clamping at generation 0.
    uint64_t Gen = CurGen > D.Age ? CurGen - D.Age : 0;
    auto It = Entries.find(D.Key);
    if (It == Entries.end()) {
      if (Entries.size() >= Opts.MaxEntries)
        continue;
      It = Entries.emplace(std::move(D.Key), Entry{}).first;
    }
    uint32_t Before = It->second.Burns;
    if (D.Burns > It->second.Burns)
      It->second.Burns = D.Burns;
    if (Gen > It->second.Gen)
      It->second.Gen = Gen;
    if (Before < Opts.Threshold && It->second.Burns >= Opts.Threshold)
      ++NumQuarantined;
  }
  return true;
}
