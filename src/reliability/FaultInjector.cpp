//===- reliability/FaultInjector.cpp - Deterministic chaos harness ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "reliability/FaultInjector.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace recap;

std::atomic<FaultInjector *> FaultInjector::Active{nullptr};

namespace {

/// splitmix64: the draw for (seed, site, ordinal) — stateless, so the
/// fault script is a pure function of the seed and per-site call order.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

FaultKind FaultInjector::sample(FaultSite S) {
  const FaultRates &R = Rates[idx(S)];
  if (R.UnknownRate <= 0 && R.HangRate <= 0 && R.ThrowRate <= 0)
    return FaultKind::None;
  if (injectedAt(S) >= R.MaxFaults)
    return FaultKind::None;
  uint64_t N = Ordinal[idx(S)].fetch_add(1, std::memory_order_relaxed);
  uint64_t H = mix(Seed ^ mix((static_cast<uint64_t>(S) << 56) | N));
  double U = static_cast<double>(H >> 11) * 0x1.0p-53;
  if (U < R.UnknownRate)
    return FaultKind::Unknown;
  if (U < R.UnknownRate + R.HangRate)
    return FaultKind::Hang;
  if (U < R.UnknownRate + R.HangRate + R.ThrowRate)
    return FaultKind::Throw;
  return FaultKind::None;
}

bool FaultInjector::fire(FaultSite S, const std::atomic<bool> *Cancel) {
  FaultKind K = sample(S);
  if (K == FaultKind::None)
    return false;
  ++Counts[idx(S)][static_cast<size_t>(K)];
  switch (K) {
  case FaultKind::Unknown:
    return true;
  case FaultKind::Throw:
    throw FaultInjected("injected fault");
  case FaultKind::Hang: {
    // Cooperative stall: the millisecond poll keeps the hang cancellable
    // the same way LocalBackend's search is, so the watchdog's cancel()
    // is observed promptly rather than at HangMs granularity.
    auto Until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Rates[idx(S)].HangMs);
    while (std::chrono::steady_clock::now() < Until) {
      if (Cancel && Cancel->load(std::memory_order_relaxed)) {
        ++HangsCancelled;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The hang ran its course uncancelled: a transient stall, not a
    // wedge — let the real operation proceed.
    return false;
  }
  case FaultKind::None:
    break;
  }
  return false;
}

uint64_t FaultInjector::injectedAt(FaultSite S) const {
  uint64_t N = 0;
  for (size_t K = 0; K < NumFaultKinds; ++K)
    N += Counts[idx(S)][K].load(std::memory_order_relaxed);
  return N;
}

uint64_t FaultInjector::totalInjected() const {
  uint64_t N = 0;
  for (size_t S = 0; S < NumFaultSites; ++S)
    N += injectedAt(static_cast<FaultSite>(S));
  return N;
}

FaultInjector::ScopedInstall::ScopedInstall(FaultInjector &FI) {
  FaultInjector *Expected = nullptr;
  bool Installed =
      Active.compare_exchange_strong(Expected, &FI, std::memory_order_release);
  assert(Installed && "nested FaultInjector installs");
  (void)Installed;
}

FaultInjector::ScopedInstall::~ScopedInstall() {
  Active.store(nullptr, std::memory_order_release);
}
