//===- reliability/Quarantine.h - Tarpit problem quarantine -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Problems that repeatedly burn their watchdog deadline are tarpits:
/// re-attempting them on every corpus pass wastes the whole budget the
/// scheduler meant for fresh work. The quarantine records burn counts per
/// α-canonical problem key (the same key the CEGAR query cache uses, so
/// α-equivalent restatements of one tarpit share an entry) and, once a
/// key crosses the threshold, answers shouldSkip() — the solver then
/// returns Unknown immediately, which is sound: a quarantined verdict is
/// never anything but "don't know, and stopped paying to find out".
///
/// The table persists through a small checksummed sidecar next to the
/// runtime snapshot, so a corpus re-run skips known tarpits from minute
/// zero. Loads merge (max of burn counts); corrupt or truncated sidecars
/// are rejected wholesale, leaving in-memory state untouched.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_QUARANTINE_H
#define RECAP_RELIABILITY_QUARANTINE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace recap {

class Quarantine {
public:
  struct Options {
    /// Deadline burns before a key is quarantined. A single burn can be
    /// bad luck (machine load, cold solver); two in a row is a pattern.
    unsigned Threshold = 2;
    /// Hard cap on tracked keys; new keys are dropped once full (losing
    /// a tarpit costs time, not soundness).
    size_t MaxEntries = 4096;
  };

  Quarantine() : Quarantine(Options()) {}
  explicit Quarantine(Options Opts) : Opts(Opts) {
    if (this->Opts.Threshold == 0)
      this->Opts.Threshold = 1;
  }

  /// True when \p Key has crossed the burn threshold.
  bool shouldSkip(const std::string &Key) const;

  /// Records one deadline burn against \p Key; returns true when this
  /// burn newly crossed the threshold (the caller counts Quarantined).
  bool recordBurn(const std::string &Key);

  /// Keys currently at or past the threshold.
  size_t quarantined() const;
  /// All tracked keys (telemetry).
  size_t tracked() const;

  /// Sidecar persistence. save() writes atomically (temp + rename);
  /// load() validates magic/version/checksum and merges entries by max
  /// burn count, returning false (state unchanged) on any corruption.
  bool save(const std::string &Path) const;
  bool load(const std::string &Path);

private:
  Options Opts;
  mutable std::mutex Mu;
  std::unordered_map<std::string, uint32_t> Burns;
  size_t NumQuarantined = 0; ///< entries at/past threshold, kept in sync
};

} // namespace recap

#endif // RECAP_RELIABILITY_QUARANTINE_H
