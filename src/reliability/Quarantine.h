//===- reliability/Quarantine.h - Tarpit problem quarantine -----*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Problems that repeatedly burn their watchdog deadline are tarpits:
/// re-attempting them on every corpus pass wastes the whole budget the
/// scheduler meant for fresh work. The quarantine records burn counts per
/// α-canonical problem key (the same key the CEGAR query cache uses, so
/// α-equivalent restatements of one tarpit share an entry) and, once a
/// key crosses the threshold, answers shouldSkip() — the solver then
/// returns Unknown immediately, which is sound: a quarantined verdict is
/// never anything but "don't know, and stopped paying to find out".
///
/// The table persists through a small checksummed sidecar next to the
/// runtime snapshot, so a corpus re-run skips known tarpits from minute
/// zero. Loads merge (max of burn counts); corrupt or truncated sidecars
/// are rejected wholesale, leaving in-memory state untouched.
///
/// Entries age in generations: bumpGeneration() marks one corpus pass or
/// service snapshot cycle, a burn refreshes its entry's stamp, and save()
/// evicts entries idle for more than MaxAgeGenerations — so a resident
/// process re-probes a once-pathological pattern eventually instead of
/// banning it forever. A skip hit deliberately does NOT refresh the
/// stamp: only fresh evidence (a burn) keeps an entry alive.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_QUARANTINE_H
#define RECAP_RELIABILITY_QUARANTINE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace recap {

class Quarantine {
public:
  struct Options {
    /// Deadline burns before a key is quarantined. A single burn can be
    /// bad luck (machine load, cold solver); two in a row is a pattern.
    unsigned Threshold = 2;
    /// Hard cap on tracked keys; new keys are dropped once full (losing
    /// a tarpit costs time, not soundness).
    size_t MaxEntries = 4096;
    /// Entries whose last burn is more than this many generations old
    /// are evicted on save() (0 = aging disabled). Generations advance
    /// only via explicit bumpGeneration() calls, so batch users that
    /// never bump keep today's ban-forever behavior.
    unsigned MaxAgeGenerations = 0;
  };

  Quarantine() : Quarantine(Options()) {}
  explicit Quarantine(Options Opts) : Opts(Opts) {
    if (this->Opts.Threshold == 0)
      this->Opts.Threshold = 1;
  }

  /// True when \p Key has crossed the burn threshold.
  bool shouldSkip(const std::string &Key) const;

  /// Records one deadline burn against \p Key; returns true when this
  /// burn newly crossed the threshold (the caller counts Quarantined).
  bool recordBurn(const std::string &Key);

  /// One tracked entry, as surfaced by the observability layer
  /// (/statsz quarantine section, DESIGN.md §12.3).
  struct EntryView {
    std::string Key;
    uint32_t Burns = 0;
    uint64_t Generation = 0; ///< generation of the most recent burn
    bool Quarantined = false;
  };

  /// Snapshot of every tracked key (telemetry; order unspecified).
  std::vector<EntryView> entries() const;

  /// The configured burn threshold (telemetry).
  unsigned threshold() const { return Opts.Threshold; }

  /// Current aging generation (telemetry).
  uint64_t currentGeneration() const;

  /// Keys currently at or past the threshold.
  size_t quarantined() const;
  /// All tracked keys (telemetry).
  size_t tracked() const;
  /// Entries evicted by aging so far (feeds RuntimeStats::QuarantineExpired).
  uint64_t expired() const;

  /// Advances the aging clock by one generation (one corpus pass / one
  /// service snapshot cycle).
  void bumpGeneration();

  /// Sidecar persistence. save() evicts aged-out entries first, then
  /// writes atomically (temp + rename); load() validates
  /// magic/version/checksum and merges entries by max burn count and
  /// newest stamp, returning false (state unchanged) on any corruption.
  bool save(const std::string &Path);
  bool load(const std::string &Path);

private:
  struct Entry {
    uint32_t Burns = 0;
    uint64_t Gen = 0; ///< generation of the most recent burn
  };

  Options Opts;
  mutable std::mutex Mu;
  std::unordered_map<std::string, Entry> Entries;
  size_t NumQuarantined = 0; ///< entries at/past threshold, kept in sync
  uint64_t CurGen = 0;
  uint64_t NumExpired = 0;
};

} // namespace recap

#endif // RECAP_RELIABILITY_QUARANTINE_H
