//===- reliability/FaultInjector.h - Deterministic chaos harness -*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault-injection harness: instrumented call
/// sites (solver checks, the LocalBackend bounded search, the Z3 scratch
/// solve, snapshot loads and saves, thread spawns, service job admission
/// and dispatch) consult the process-global
/// injector — when one is installed — and receive a scripted fault:
///
///   Unknown  the operation reports failure without running
///            (solver: Unknown verdict; thread spawn: construction fails)
///   Hang     the call site stalls, polling its cancellation flag, until
///            HangMs elapses or it is cancelled — exactly the shape of a
///            wedged SMT query, and exactly what the Watchdog must break
///   Throw    FaultInjected (a std::runtime_error) is thrown, modelling
///            z3::exception escaping an unhardened path
///
/// Faults are decided by hashing (seed, site, per-site call ordinal), so
/// a single-threaded test replays the identical fault script on every
/// run; no real flaky solver is needed to cover the reliability layer in
/// CI. No injector installed (the default) costs one relaxed atomic load
/// per site.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_RELIABILITY_FAULTINJECTOR_H
#define RECAP_RELIABILITY_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace recap {

/// Instrumented call sites (one ordinal stream per site).
enum class FaultSite : uint8_t {
  SessionCheck, ///< SolverSession::check, any backend (smt/Session.cpp)
  LocalSolve,   ///< LocalBackend bounded search entry
  Z3Solve,      ///< Z3Backend scratch solve (fresh-context path)
  SnapshotLoad, ///< RegexRuntime snapshot load
  ThreadSpawn,  ///< WorkerPool thread construction (Unknown = spawn fails)
  JobAdmit,     ///< AnalysisService::submit admission (Unknown = reject)
  JobDispatch,  ///< service unit dispatch onto a pool thread; a Hang here
                ///< is the wedged-job shape the per-job watchdog breaks
  SnapshotSave, ///< runtime snapshot / quarantine sidecar write
  WireRead,     ///< wire frame read (wire/Framing.cpp); Unknown = the read
                ///< reports failure and the connection degrades
  WireWrite,    ///< wire frame write; Unknown = send failure
  JournalAppend, ///< job-journal append (service/JobJournal.cpp); a lost
                 ///< append only loses crash-replay, never a verdict
};
constexpr size_t NumFaultSites = 11;
constexpr size_t NumFaultKinds = 4;

enum class FaultKind : uint8_t { None, Unknown, Hang, Throw };

/// What an injected Throw looks like to the code under test.
struct FaultInjected : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Per-site fault script: rates are evaluated in Unknown/Hang/Throw order
/// against one uniform draw, so they must sum to at most 1.
struct FaultRates {
  double UnknownRate = 0;
  double HangRate = 0;
  double ThrowRate = 0;
  /// Synthetic hang length; a hang ends early when the site's
  /// cancellation flag trips (that is the scenario under test).
  uint32_t HangMs = 1000;
  /// Stop injecting at this site after this many faults (tests script
  /// "first check hangs, retry succeeds" with MaxFaults = 1).
  uint64_t MaxFaults = UINT64_MAX;
};

class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed) : Seed(Seed) {}

  FaultRates &rates(FaultSite S) { return Rates[idx(S)]; }

  /// The call-site entry point: draws this site's next scripted fault and
  /// executes it. Returns true when the operation should report failure
  /// (forced Unknown, or a hang that ended by cancellation), false when
  /// it should proceed normally (no fault, or a hang that ran its course
  /// — a transient stall). Throws FaultInjected for a Throw fault.
  /// \p Cancel is the site's cancellation flag (null = uncancellable).
  bool fire(FaultSite S, const std::atomic<bool> *Cancel);

  /// Faults executed so far, by site and kind (kind None is never
  /// counted).
  uint64_t injected(FaultSite S, FaultKind K) const {
    return Counts[idx(S)][static_cast<size_t>(K)].load(
        std::memory_order_relaxed);
  }
  uint64_t injectedAt(FaultSite S) const;
  uint64_t totalInjected() const;
  /// Hangs that ended by cancellation (the watchdog doing its job).
  uint64_t hangsCancelled() const {
    return HangsCancelled.load(std::memory_order_relaxed);
  }

  /// The installed process-global injector, or null (the default).
  static FaultInjector *active() {
    return Active.load(std::memory_order_acquire);
  }

  /// RAII install/uninstall for tests; nesting is a bug.
  struct ScopedInstall {
    explicit ScopedInstall(FaultInjector &FI);
    ~ScopedInstall();
  };

private:
  static size_t idx(FaultSite S) { return static_cast<size_t>(S); }
  FaultKind sample(FaultSite S);

  uint64_t Seed;
  FaultRates Rates[NumFaultSites];
  std::atomic<uint64_t> Ordinal[NumFaultSites] = {};
  std::atomic<uint64_t> Counts[NumFaultSites][NumFaultKinds] = {};
  std::atomic<uint64_t> HangsCancelled{0};

  static std::atomic<FaultInjector *> Active;
};

} // namespace recap

#endif // RECAP_RELIABILITY_FAULTINJECTOR_H
