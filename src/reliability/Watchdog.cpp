//===- reliability/Watchdog.cpp - Shared deadline thread -------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//

#include "reliability/Watchdog.h"

using namespace recap;

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  Cv.notify_all();
  if (Thread.joinable())
    Thread.join();
}

Watchdog::Token Watchdog::arm(std::chrono::milliseconds Deadline,
                              std::function<void()> Fire) {
  std::lock_guard<std::mutex> Lock(Mu);
  Token T = NextToken++;
  Entry &E = Armed[T];
  E.When = std::chrono::steady_clock::now() + Deadline;
  E.Fire = std::move(Fire);
  if (!Started) {
    Started = true;
    Thread = std::thread([this] { loop(); });
  }
  Cv.notify_all();
  return T;
}

bool Watchdog::disarm(Token T) {
  std::unique_lock<std::mutex> Lock(Mu);
  auto It = Armed.find(T);
  if (It == Armed.end())
    return false;
  // A callback caught mid-flight: wait it out so the caller can destroy
  // the callback's target the moment disarm() returns.
  Cv.wait(Lock, [&] { return !It->second.Running; });
  bool Fired = It->second.Fired;
  Armed.erase(It);
  return Fired;
}

size_t Watchdog::armed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Armed.size();
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Stop)
      return;
    // Earliest un-fired deadline decides the sleep; fired entries wait
    // for their disarm() and need no further attention.
    auto Next = std::chrono::steady_clock::time_point::max();
    Token NextT = 0;
    for (auto &[T, E] : Armed) {
      if (!E.Fired && E.When < Next) {
        Next = E.When;
        NextT = T;
      }
    }
    if (NextT == 0) {
      Cv.wait(Lock);
      continue;
    }
    if (std::chrono::steady_clock::now() < Next) {
      Cv.wait_until(Lock, Next);
      continue; // re-derive: arms/disarms may have changed the picture
    }
    Entry &E = Armed[NextT];
    E.Fired = true;
    E.Running = true;
    // Run outside the lock: the callback (session cancel) is cheap but
    // may take backend-internal locks of its own.
    std::function<void()> Fire = E.Fire;
    Lock.unlock();
    Fire();
    Lock.lock();
    // The entry may not have moved (disarm blocks on Running), but
    // re-find anyway: map iterators are stable, paranoia is free here.
    auto It = Armed.find(NextT);
    if (It != Armed.end())
      It->second.Running = false;
    Cv.notify_all();
  }
}

Watchdog &Watchdog::global() {
  static Watchdog W;
  return W;
}
