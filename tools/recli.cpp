//===- tools/recli.cpp - Wire protocol driver ------------------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The operator CLI for the resident analysis service (docs/OPERATIONS.md):
//
//   recli serve   --socket /tmp/recap.sock [--state DIR] [--workers N]
//                 [--backend local|z3] [--tcp PORT] [--stdio]
//   recli submit  --socket S (--pattern /re/ | --workload NAME |
//                 --package-seed N)... [--tenant T] [--deadline-ms D]
//   recli results --socket S --job N           stream units as JSONL
//   recli poll    --socket S --job N
//   recli cancel  --socket S --job N
//   recli drain   --socket S
//   recli shutdown --socket S [--grace-ms G]
//   recli statsz  --socket S
//   recli healthz --socket S
//
// Every client subcommand also accepts --tcp-host H --tcp-port P instead
// of --socket. Output is the raw response JSON, one frame per line, so
// recli composes with jq and the docs' transcripts are copy-pasteable.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "wire/ServiceClient.h"
#include "wire/ServiceServer.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <cerrno>

#include <sys/stat.h>
#include <unistd.h>

using namespace recap;
using namespace recap::wire;

namespace {

std::atomic<bool> GStop{false};
void onSignal(int) { GStop.store(true); }

int usage() {
  std::fprintf(
      stderr,
      "usage: recli <serve|submit|results|poll|cancel|drain|shutdown|"
      "statsz|healthz> [options]\n"
      "see docs/OPERATIONS.md for the full option reference\n");
  return 2;
}

struct Args {
  std::vector<std::string> V;
  explicit Args(int Argc, char **Argv) {
    for (int I = 2; I < Argc; ++I)
      V.push_back(Argv[I]);
  }
  bool flag(const std::string &Name) const {
    for (const std::string &A : V)
      if (A == Name)
        return true;
    return false;
  }
  std::string value(const std::string &Name,
                    const std::string &Default = "") const {
    for (size_t I = 0; I + 1 < V.size(); ++I)
      if (V[I] == Name)
        return V[I + 1];
    return Default;
  }
  std::vector<std::string> values(const std::string &Name) const {
    std::vector<std::string> Out;
    for (size_t I = 0; I + 1 < V.size(); ++I)
      if (V[I] == Name)
        Out.push_back(V[I + 1]);
    return Out;
  }
  uint64_t number(const std::string &Name, uint64_t Default = 0) const {
    std::string S = value(Name);
    return S.empty() ? Default : std::strtoull(S.c_str(), nullptr, 10);
  }
};

int serveMain(const Args &A) {
  ServiceOptions SO;
  SO.Workers = A.number("--workers", 0);
  SO.StateDir = A.value("--state");
  // The state dir gates every durability feature (journal, job log,
  // snapshots); create it up front rather than letting each of them
  // degrade to disabled on a fresh host.
  if (!SO.StateDir.empty() && ::mkdir(SO.StateDir.c_str(), 0755) != 0 &&
      errno != EEXIST) {
    std::fprintf(stderr, "recli serve: cannot create state dir %s: %s\n",
                 SO.StateDir.c_str(), std::strerror(errno));
    return 1;
  }
  if (A.value("--backend", "z3") == "local")
    SO.Engine.BackendFactory = [] { return makeLocalBackend(); };
  else
    SO.Engine.BackendFactory = [] { return makeZ3Backend(); };
  AnalysisService Svc(SO);

  WireServerOptions WO;
  WO.UnixPath = A.value("--socket");
  WO.StateDir = SO.StateDir;
  if (!A.value("--tcp").empty()) {
    WO.Tcp = true;
    WO.TcpPort = static_cast<uint16_t>(A.number("--tcp"));
  }
  bool Stdio = A.flag("--stdio");
  if (WO.UnixPath.empty() && !WO.Tcp && !Stdio) {
    std::fprintf(stderr,
                 "serve needs --socket PATH, --tcp PORT or --stdio\n");
    return 2;
  }

  ServiceServer Server(Svc, WO);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "recli serve: %s\n", Err.c_str());
    return 1;
  }
  if (WO.Tcp)
    std::fprintf(stderr, "recli serve: listening on 127.0.0.1:%u\n",
                 Server.tcpPort());
  if (!WO.UnixPath.empty())
    std::fprintf(stderr, "recli serve: listening on %s\n",
                 WO.UnixPath.c_str());

  if (Stdio) {
    // One protocol session on stdin/stdout; stderr stays the log side.
    Server.serveStdio(STDIN_FILENO, STDOUT_FILENO);
  } else {
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // Exit on a signal, or once a wire-delivered shutdown verb has
    // stopped the service — supervisors expect the process to go away
    // after a clean remote shutdown.
    while (!GStop.load() && !Svc.stopped())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::fprintf(stderr, Svc.stopped()
                             ? "recli serve: service shut down, exiting\n"
                             : "recli serve: signal received, "
                               "shutting down\n");
  }
  Server.stop();
  Svc.shutdown(2000);
  return 0;
}

bool connectClient(const Args &A, ServiceClient &C) {
  std::string Err;
  std::string Socket = A.value("--socket");
  if (!Socket.empty()) {
    if (C.connectUnixSocket(Socket, Err))
      return true;
  } else if (!A.value("--tcp-port").empty()) {
    if (C.connectTcpSocket(A.value("--tcp-host", "127.0.0.1"),
                           static_cast<uint16_t>(A.number("--tcp-port")),
                           Err))
      return true;
  } else {
    Err = "need --socket PATH or --tcp-port P";
  }
  std::fprintf(stderr, "recli: %s\n", Err.c_str());
  return false;
}

int printResult(const Result<Json> &R) {
  if (!R) {
    std::fprintf(stderr, "recli: %s\n", R.error().c_str());
    return 1;
  }
  std::printf("%s\n", R->dump().c_str());
  return 0;
}

Json specFromArgs(const Args &A) {
  Json Spec = Json::object();
  Json Programs = Json::array();
  for (const std::string &P : A.values("--pattern")) {
    Json PS = Json::object();
    PS.set("pattern", P);
    Programs.push(std::move(PS));
  }
  for (const std::string &W : A.values("--workload")) {
    Json PS = Json::object();
    PS.set("workload", W);
    Programs.push(std::move(PS));
  }
  for (const std::string &S : A.values("--package-seed")) {
    Json PS = Json::object();
    PS.set("package_seed",
           static_cast<uint64_t>(std::strtoull(S.c_str(), nullptr, 10)));
    Programs.push(std::move(PS));
  }
  Spec.set("kind", "dse");
  Spec.set("programs", std::move(Programs));
  if (!A.value("--tenant").empty())
    Spec.set("tenant", A.value("--tenant"));
  if (!A.value("--deadline-ms").empty())
    Spec.set("deadline_ms", A.number("--deadline-ms"));
  Json Engine = Json::object();
  if (!A.value("--max-tests").empty())
    Engine.set("max_tests", A.number("--max-tests"));
  if (!A.value("--max-seconds").empty())
    Engine.set("max_seconds",
               std::strtod(A.value("--max-seconds").c_str(), nullptr));
  if (Engine.size() > 0)
    Spec.set("engine", std::move(Engine));
  return Spec;
}

int submitMain(const Args &A) {
  ServiceClient C;
  if (!connectClient(A, C))
    return 1;
  Json Spec = specFromArgs(A);
  if (Spec.get("programs").size() == 0) {
    std::fprintf(stderr, "recli submit: need --pattern, --workload or "
                         "--package-seed\n");
    return 2;
  }
  Json P = Json::object();
  P.set("spec", std::move(Spec));
  return printResult(C.call("submit", std::move(P)));
}

int resultsMain(const Args &A) {
  ServiceClient C;
  if (!connectClient(A, C))
    return 1;
  uint64_t Job = A.number("--job");
  for (;;) {
    Result<Json> R = C.nextResult(Job, A.number("--timeout-ms", 0));
    if (!R) {
      std::fprintf(stderr, "recli: %s\n", R.error().c_str());
      return 1;
    }
    std::printf("%s\n", R->dump().c_str());
    std::fflush(stdout);
    if (R->get("exhausted").asBool() || R->get("timeout").asBool())
      return 0;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::signal(SIGPIPE, SIG_IGN);
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  Args A(Argc, Argv);

  if (Cmd == "serve")
    return serveMain(A);
  if (Cmd == "submit")
    return submitMain(A);
  if (Cmd == "results")
    return resultsMain(A);

  ServiceClient C;
  if (!connectClient(A, C))
    return 1;
  if (Cmd == "poll")
    return printResult(C.poll(A.number("--job")));
  if (Cmd == "cancel")
    return printResult(C.cancel(A.number("--job")));
  if (Cmd == "drain")
    return printResult(C.drain());
  if (Cmd == "shutdown")
    return printResult(
        C.shutdown(static_cast<uint32_t>(A.number("--grace-ms"))));
  if (Cmd == "statsz")
    return printResult(C.statsz());
  if (Cmd == "healthz")
    return printResult(C.healthz());
  return usage();
}
