#!/usr/bin/env bash
#===- tools/check_doc_links.sh - Relative-link checker for the docs ------===#
#
# Part of recap. MIT license.
#
# Verifies that every relative markdown link target in the repo's *.md
# files exists, so a rename or doc move cannot silently strand
# README.md / DESIGN.md / docs/*.md cross-references. External links
# (http/https/mailto), absolute paths and pure #anchors are skipped;
# a target's #anchor suffix is stripped before the existence check.
#
# Usage: tools/check_doc_links.sh [repo-root]   (default: script's repo)
# Exits 1 listing every broken link, 0 when all resolve.
#
#===----------------------------------------------------------------------===#

set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT" || exit 2

BROKEN=0
CHECKED=0

# Every tracked or untracked-but-not-ignored markdown file (fall back
# to find outside a git checkout). --others catches docs added in the
# working tree before their first commit.
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  FILES=$(git ls-files --cached --others --exclude-standard '*.md')
else
  FILES=$(find . -name '*.md' -not -path './build*' | sed 's|^\./||')
fi

for File in $FILES; do
  Dir=$(dirname "$File")
  # Inline links: [text](target). One match per line is enough for the
  # repo's docs style; multiple links per line are still all extracted.
  while IFS= read -r Target; do
    case "$Target" in
    http://* | https://* | mailto:*) continue ;; # external
    /*) continue ;;                              # absolute: not ours to check
    '#'*) continue ;;                            # same-file anchor
    '') continue ;;
    esac
    Path="${Target%%#*}" # strip anchor suffix
    [ -z "$Path" ] && continue
    CHECKED=$((CHECKED + 1))
    if [ ! -e "$Dir/$Path" ]; then
      echo "BROKEN: $File -> $Target"
      BROKEN=$((BROKEN + 1))
    fi
  done < <(grep -o '](\([^)]*\))' "$File" 2>/dev/null |
    sed 's/^](//; s/)$//')
done

if [ "$BROKEN" -ne 0 ]; then
  echo "check_doc_links: $BROKEN broken link(s) out of $CHECKED checked"
  exit 1
fi
echo "check_doc_links: all $CHECKED relative links resolve"
