//===- examples/extensions_tour.cpp - ES2018 extensions tour ---------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper models ES6 (ES2015) regexes; this library also implements the
// ES2018 additions the paper lists as out of scope — lookbehind
// assertions, named capture groups, and the dotAll flag — end to end:
// parser, spec-faithful matcher (right-to-left inside lookbehind), the
// capturing-language model, and the CEGAR loop.
//
//   $ ./extensions_tour
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

#include <cstdio>

using namespace recap;

static void banner(const char *Title) { std::printf("\n== %s ==\n", Title); }

int main() {
  banner("Lookbehind: concrete right-to-left semantics");
  {
    // The classic RTL capture split: inside (?<= ... ) the engine matches
    // right to left, so the *second* group grabs greedily first.
    Result<Regex> R = Regex::parse("(?<=(\\d+)(\\d+))$", "");
    RegExpObject Obj(R->clone());
    auto M = Obj.exec(fromUTF8("1053"));
    std::printf("/(?<=(\\d+)(\\d+))$/ on \"1053\": C1='%s' C2='%s'\n",
                toUTF8(*M.Result->Captures[0]).c_str(),
                toUTF8(*M.Result->Captures[1]).c_str());
  }

  banner("Lookbehind: symbolic input generation");
  {
    // Ask the solver for an input where a lookbehind-guarded price is 0.
    Result<Regex> R = Regex::parse("(?<=\\$)\\d+", "");
    SymbolicRegExp Sym(R->clone(), "price");
    TermRef Input = mkStrVar("input");
    auto Q = Sym.exec(Input, mkIntConst(0));
    auto Backend = makeZ3Backend();
    CegarSolver Solver(*Backend);
    CegarResult Res = Solver.solve({
        PathClause::regex(Q, true),
        PathClause::plain(
            mkEq(Q->Model.C0.Value, mkStrConst(fromUTF8("0")))),
    });
    std::printf("input with a $0 price: '%s' (%u refinements)\n",
                toUTF8(Res.Model.str("input")).c_str(), Res.Refinements);
  }

  banner("Named groups: exec by name, \\k<name> backreferences");
  {
    Result<Regex> R =
        Regex::parse("(?<y>\\d{4})-(?<m>\\d{2})-(?<d>\\d{2})", "");
    Regex Re = R.take();
    RegExpObject Obj(Re.clone());
    auto M = Obj.exec(fromUTF8("released 2019-06-22 in Phoenix"));
    std::printf("date parts: y=%s m=%s d=%s\n",
                toUTF8(*namedCapture(Re, *M.Result, "y")).c_str(),
                toUTF8(*namedCapture(Re, *M.Result, "m")).c_str(),
                toUTF8(*namedCapture(Re, *M.Result, "d")).c_str());

    Result<Regex> Quote = Regex::parse("(?<q>['\"]).*?\\k<q>", "");
    RegExpObject QObj(Quote->clone());
    std::printf("/(?<q>['\"]).*?\\k<q>/ matches mixed quotes: %s\n",
                QObj.test(fromUTF8("say 'ok' now")) ? "yes" : "no");
  }

  banner("dotAll: '.' crossing line terminators");
  {
    Result<Regex> R = Regex::parse("<!--.*-->", "s");
    RegExpObject Obj(R->clone());
    std::printf("/<!--.*-->/s matches a two-line comment: %s\n",
                Obj.test(fromUTF8("<!-- a\nb -->")) ? "yes" : "no");

    // Symbolically: demand a match that must span a newline.
    SymbolicRegExp Sym(R->clone(), "cmt");
    TermRef Input = mkStrVar("input");
    auto Q = Sym.exec(Input, mkIntConst(0));
    auto Backend = makeZ3Backend();
    CegarSolver Solver(*Backend);
    CegarResult Res = Solver.solve({
        PathClause::regex(Q, true),
        PathClause::plain(
            mkEq(Input, mkStrConst(fromUTF8("<!--x\ny-->")))),
    });
    std::printf("pinned two-line comment is %s\n",
                Res.Status == SolveStatus::Sat ? "satisfiable"
                                               : "NOT satisfiable?!");
  }

  banner("Negative lookbehind through the CEGAR loop");
  {
    // Generate a word containing an unescaped quote: /(?<!\\)"/.
    Result<Regex> R = Regex::parse("(?<!\\\\)\"", "");
    SymbolicRegExp Sym(R->clone(), "uq");
    TermRef Input = mkStrVar("input");
    auto Q = Sym.exec(Input, mkIntConst(0));
    auto Backend = makeZ3Backend();
    CegarSolver Solver(*Backend);
    CegarResult Res = Solver.solve({
        PathClause::regex(Q, true),
        PathClause::plain(mkEq(mkStrLen(Input), mkIntConst(4))),
    });
    if (Res.Status == SolveStatus::Sat) {
      UString In = Res.Model.str("input");
      RegExpObject Oracle(R->clone());
      std::printf("4-char input with unescaped quote: '%s' (oracle: %s)\n",
                  toUTF8(In).c_str(),
                  Oracle.test(In) ? "matches" : "NO MATCH?!");
    }
  }

  std::printf("\ndone.\n");
  return 0;
}
