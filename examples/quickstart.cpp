//===- examples/quickstart.cpp - recap in five minutes ---------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The core workflow: parse an ES6 regex, model a symbolic exec() call
// (Algorithm 2), and ask the CEGAR solver (Algorithm 1) for inputs that
// drive the match the way you want — including capture group contents,
// which is the paper's headline capability.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

#include <cstdio>

using namespace recap;

int main() {
  // 1. Parse a regex with capture groups and a backreference: matching
  //    XML-ish tags (the language is not regular!).
  Result<Regex> R = Regex::parse("<(\\w+)>([0-9]*)<\\/\\1>", "");
  if (!R) {
    std::printf("parse error: %s\n", R.error().c_str());
    return 1;
  }

  // 2. Concrete matching: recap ships a spec-faithful ES6 matcher.
  RegExpObject Concrete(R->clone());
  auto M = Concrete.exec(fromUTF8("see <timeout>500</timeout>!"));
  std::printf("concrete match: '%s' tag='%s' value='%s'\n",
              toUTF8(M.Result->Match).c_str(),
              toUTF8(*M.Result->Captures[0]).c_str(),
              toUTF8(*M.Result->Captures[1]).c_str());

  // 3. Symbolic matching: model exec() against a fresh string variable.
  SymbolicRegExp Sym(R->clone(), "demo");
  TermRef Input = mkStrVar("input");
  std::shared_ptr<RegexQuery> Q = Sym.exec(Input, mkIntConst(0));

  // 4. Constrain the captures: tag must be "timeout", value must be empty
  //    (this is the Listing 1 bug condition from the paper).
  auto Backend = makeZ3Backend();
  CegarSolver Solver(*Backend);
  std::vector<PathClause> Goal = {
      PathClause::regex(Q, /*Polarity=*/true),
      PathClause::plain(Q->Model.Captures[0].Defined),
      PathClause::plain(mkEq(Q->Model.Captures[0].Value,
                             mkStrConst(fromUTF8("timeout")))),
      PathClause::plain(
          mkEq(Q->Model.Captures[1].Value, mkStrConst(UString()))),
  };
  CegarResult Res = Solver.solve(Goal);
  if (Res.Status != SolveStatus::Sat) {
    std::printf("no solution found\n");
    return 1;
  }
  UString Found = Res.Model.str("input");
  std::printf("solver found input: '%s' (after %u refinement rounds)\n",
              toUTF8(Found).c_str(), Res.Refinements);

  // 5. Every CEGAR answer is validated against the concrete matcher —
  //    check it ourselves.
  auto Check = Concrete.exec(Found);
  std::printf("validation: matches=%s tag='%s' value='%s'\n",
              Check.Result ? "yes" : "NO",
              toUTF8(*Check.Result->Captures[0]).c_str(),
              toUTF8(*Check.Result->Captures[1]).c_str());

  // 6. Non-membership works too: a word that does NOT contain a match.
  auto Q2 = Sym.test(Input, mkIntConst(0));
  CegarResult None = Solver.solve({
      PathClause::regex(Q2, /*Polarity=*/false),
      PathClause::plain(mkEq(mkStrLen(Input), mkIntConst(12))),
  });
  if (None.Status == SolveStatus::Sat)
    std::printf("a 12-char non-matching input: '%s'\n",
                toUTF8(None.Model.str("input")).c_str());
  return 0;
}
