//===- examples/matcher_demo.cpp - The ES6 matcher as a library ------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Using the concrete matcher on its own: exec/test with flags, lastIndex
// statefulness (the paper's §2.1 sticky example), capture groups,
// backreferences, and lookaheads.
//
//   $ ./matcher_demo
//
//===----------------------------------------------------------------------===//

#include "matcher/Matcher.h"
#include "regex/Features.h"

#include <cstdio>

using namespace recap;

static void show(const char *Label, const RegExpObject::ExecOutcome &M) {
  if (!M.Result) {
    std::printf("%-28s no match\n", Label);
    return;
  }
  std::printf("%-28s '%s' at %zu", Label, toUTF8(M.Result->Match).c_str(),
              M.Result->Index);
  for (size_t I = 0; I < M.Result->Captures.size(); ++I) {
    const auto &C = M.Result->Captures[I];
    std::printf("  C%zu=%s", I + 1,
                C ? ("'" + toUTF8(*C) + "'").c_str() : "undefined");
  }
  std::printf("\n");
}

int main() {
  // Greedy vs lazy matching precedence.
  {
    RegExpObject Greedy(Regex::parse("<(.*)>", "").take());
    RegExpObject Lazy(Regex::parse("<(.*?)>", "").take());
    UString In = fromUTF8("<a><b>");
    show("greedy <(.*)>", Greedy.exec(In));
    show("lazy <(.*?)>", Lazy.exec(In));
  }

  // The paper's sticky-flag example (§2.1).
  {
    RegExpObject R(Regex::parse("goo+d", "y").take());
    UString In = fromUTF8("goood");
    bool First = R.test(In);
    long long Li1 = R.LastIndex;
    bool Second = R.test(In);
    long long Li2 = R.LastIndex;
    std::printf("sticky /goo+d/y on 'goood': %d (lastIndex=%lld), "
                "again: %d (lastIndex=%lld)\n",
                First, Li1, Second, Li2);
  }

  // Backreferences make languages non-regular (§2.3).
  {
    RegExpObject R(Regex::parse("((a|b)\\2)+", "").take());
    show("mutable backref on 'aabb'", R.exec(fromUTF8("aabb")));
    show("mutable backref on 'aabaa'", R.exec(fromUTF8("aabaa")));
  }

  // Lookaheads keep captures (ES6 semantics).
  {
    RegExpObject R(Regex::parse("a(?=(b+))b", "").take());
    show("lookahead captures", R.exec(fromUTF8("abbb")));
  }

  // Global flag iteration.
  {
    RegExpObject R(Regex::parse("\\d+", "g").take());
    UString In = fromUTF8("a1 b22 c333");
    std::printf("global /\\d+/g over 'a1 b22 c333':");
    while (auto M = R.exec(In).Result)
      std::printf(" '%s'", toUTF8(M->Match).c_str());
    std::printf("\n");
  }

  // Feature analysis (the survey's classifier).
  {
    auto R = Regex::parse("(?:(a)|b)+(?=c)\\1", "i");
    RegexFeatures F = analyzeFeatures(*R);
    std::printf("features of /(?:(a)|b)+(?=c)\\1/i: captures=%u "
                "lookaheads=%u backrefs=%u quantified-backrefs=%u\n",
                F.CaptureGroups, F.Lookaheads, F.Backreferences,
                F.QuantifiedBackreferences);
  }
  return 0;
}
