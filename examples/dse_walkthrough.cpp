//===- examples/dse_walkthrough.cpp - Inside one DSE generation ------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// A transparent walk through what the engine does per generation (§3.2 of
// the paper): run a program concolically, show the recorded path
// condition, flip one clause, solve, and re-execute — until the
// assertion-violating input appears.
//
//   $ ./dse_walkthrough
//
//===----------------------------------------------------------------------===//

#include "dse/Interpreter.h"
#include "dse/Workloads.h"

#include <cstdio>

using namespace recap;

int main() {
  Program P = listing1Program();
  SymbolicContext Ctx(SupportLevel::Refinement);
  Interpreter Interp(Ctx);
  auto Backend = makeZ3Backend();
  CegarSolver Solver(*Backend);

  InputMap Inputs;
  for (int Gen = 0; Gen < 8; ++Gen) {
    UString Arg = Inputs.count("arg") ? Inputs["arg"] : UString();
    Trace T = Interp.run(P, Inputs);
    std::printf("generation %d: arg='%s'\n", Gen, toUTF8(Arg).c_str());
    std::printf("  path condition: %zu clause(s)\n", T.Path.size());
    for (size_t I = 0; I < T.Path.size(); ++I) {
      const PathClause &C = T.Path[I].Clause;
      if (C.Query)
        std::printf("    [%zu] (arg, C0..Cn) %s Lc(%s)\n", I,
                    C.Polarity ? "∈" : "∉",
                    C.Query->Oracle->regex().str().c_str());
      else
        std::printf("    [%zu] %s%s\n", I, C.Polarity ? "" : "not ",
                    C.Plain->str().substr(0, 60).c_str());
    }
    if (!T.FailedAsserts.empty()) {
      std::printf("  => assertion VIOLATED: '%s' is the bug input "
                  "(paper §3.2 predicts \"<timeout></timeout>\")\n",
                  toUTF8(Arg).c_str());
      return 0;
    }

    // Flip the deepest clause whose negation is satisfiable.
    bool Advanced = false;
    for (size_t F = T.Path.size(); F-- > 0 && !Advanced;) {
      std::vector<PathClause> Problem;
      for (size_t I = 0; I < F; ++I)
        Problem.push_back(T.Path[I].Clause);
      Problem.push_back(T.Path[F].Clause.negated());
      CegarResult R = Solver.solve(Problem);
      if (R.Status != SolveStatus::Sat)
        continue;
      Inputs["arg"] = R.Model.str("in!arg");
      std::printf("  flip clause [%zu] -> new arg='%s' (%u refinements)\n",
                  F, toUTF8(Inputs["arg"]).c_str(), R.Refinements);
      Advanced = true;
    }
    if (!Advanced) {
      std::printf("  no flippable clause left\n");
      break;
    }
  }
  return 1;
}
