//===- examples/survey_corpus.cpp - Running the regex survey ---------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The §7.1 survey pipeline on a small corpus: extract regex literals from
// JavaScript sources (skipping comments, strings, and division), classify
// their features, and aggregate package-level statistics.
//
//   $ ./survey_corpus
//
//===----------------------------------------------------------------------===//

#include "survey/CorpusGen.h"
#include "survey/Survey.h"

#include <cstdio>

using namespace recap;

int main() {
  // Extraction on a hand-written file first.
  const char *Js = R"js(
// This comment mentions /not-a-regex/.
'use strict';
var trimmed = input.replace(/^\s+|\s+$/g, '');
var ratio = total / count / 2;             // division, not regex
var tag = /<(\w+)>(.*?)<\/\1>/.exec(line); // backreference!
if (/^(?:y|yes)$/i.test(answer)) { accepted += 1; }
var path = "a/b/c";                        // string, not regex
)js";

  std::printf("extracted from the demo file:\n");
  for (const std::string &L : extractRegexLiterals(Js))
    std::printf("  %s\n", L.c_str());

  // A generated mini-corpus through the full pipeline.
  CorpusOptions Opts;
  Opts.NumPackages = 300;
  Survey S;
  for (const GeneratedPackage &P : generateCorpus(Opts))
    S.addPackage(P.Files);

  std::printf("\ncorpus of %llu packages:\n",
              static_cast<unsigned long long>(S.Packages));
  std::printf("  with sources:        %llu\n",
              static_cast<unsigned long long>(S.WithSource));
  std::printf("  with regexes:        %llu\n",
              static_cast<unsigned long long>(S.WithRegex));
  std::printf("  with captures:       %llu\n",
              static_cast<unsigned long long>(S.WithCaptures));
  std::printf("  with backreferences: %llu\n",
              static_cast<unsigned long long>(S.WithBackrefs));
  std::printf("  regex instances:     %llu (%llu unique)\n",
              static_cast<unsigned long long>(S.TotalRegexes),
              static_cast<unsigned long long>(S.UniqueRegexes));

  std::printf("\ntop features by unique patterns:\n");
  for (const char *Name :
       {"Capture Groups", "Global Flag", "Character Class", "Kleene+",
        "Backreferences"})
    std::printf("  %-18s total=%5llu unique=%4llu\n", Name,
                static_cast<unsigned long long>(S.Features[Name].Total),
                static_cast<unsigned long long>(S.Features[Name].Unique));
  return 0;
}
