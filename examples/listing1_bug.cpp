//===- examples/listing1_bug.cpp - The paper's motivating bug --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Listing 1 of the paper: a program that parses numeric arguments between
// XML tags and asserts the timeout is numeric. The regex admits an empty
// number, so "<timeout></timeout>" violates the assertion. Dynamic
// symbolic execution with full regex support finds it automatically;
// concretizing regexes (the no-support baseline) cannot.
//
//   $ ./listing1_bug
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"
#include "dse/Workloads.h"

#include <cstdio>

using namespace recap;

static const char *levelName(SupportLevel L) {
  switch (L) {
  case SupportLevel::Concrete:
    return "concrete (no regex support)";
  case SupportLevel::Model:
    return "+ membership modeling";
  case SupportLevel::Captures:
    return "+ captures & backreferences";
  case SupportLevel::Refinement:
    return "+ CEGAR refinement (full)";
  }
  return "?";
}

int main() {
  Program P = listing1Program();
  std::printf("Listing 1 (%d statements), searching for the assertion "
              "violation...\n\n",
              P.NumStmts);

  for (SupportLevel L : {SupportLevel::Concrete, SupportLevel::Refinement}) {
    auto Backend = makeZ3Backend();
    EngineOptions Opts;
    Opts.Level = L;
    Opts.MaxTests = 48;
    Opts.MaxSeconds = 90;
    DseEngine Engine(*Backend, Opts);
    EngineResult R = Engine.run(P);
    std::printf("%-32s tests=%3llu coverage=%5.1f%% bug=%s\n",
                levelName(L),
                static_cast<unsigned long long>(R.TestsRun),
                R.coveragePercent(), R.bugFound() ? "FOUND" : "not found");
  }
  std::printf("\nThe full-support engine derives the bug input by solving\n"
              "(arg, C0, C1, C2) ∈ Lc(/<(\\w+)>([0-9]*)<\\/\\1>/) with\n"
              "C1 = \"timeout\" and C2 ∉ L(^[0-9]+$) — paper §3.2.\n");
  return 0;
}
