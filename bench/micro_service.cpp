//===- bench/micro_service.cpp - Resident analysis service benches ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the ISSUE-8 resident service (DESIGN.md §10):
//
//  1. BM_ServiceSubmitToFirstResult: submit -> first streamed unit of a
//     survey job on a warm resident service — the interactive-latency
//     number the admission path and dispatcher add on top of the work
//     itself. Counters: first_result_ms (service-measured), units.
//  2. BM_ServiceThroughput/S: S submitter threads each pushing a stream
//     of small survey jobs through one shared 2-worker service;
//     items_per_second is jobs/s. Counters: submitters, jobs.
//  3. BM_ServiceDseJob: one mini-program DSE job end to end, the
//     service-tax companion to micro_corpus's BM_CorpusDse (same local
//     backend, one unit). Counters: tests, results_streamed.
//  4. BM_ServiceAdmissionChurn: a 3-tenant burst against a deliberately
//     tiny queue with immediate cancels and 1ms deadlines — the
//     reject/cancel/deadline bookkeeping path, not the analysis itself.
//     Counters: rejected, cancelled, deadline, completed.
//  5. BM_ServiceDrain: drain() over a freshly submitted batch — how long
//     "finish what was promised" takes at shutdown (service build and
//     job submission run untimed). Counter: drained_jobs.
//
// The post-run summary derives jobs/s scaling across submitter counts
// (contention on the single service mutex + dispatcher, not worker
// scaling — the pool stays at 2 workers throughout).
//
//===----------------------------------------------------------------------===//

#include "dse/Workloads.h"
#include "parallel/WorkerPool.h"
#include "service/AnalysisService.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

using namespace recap;

namespace {

/// Service policy shared by every bench: local (Z3-free) backend, fixed
/// 2-worker pool with clamping off so the numbers mean the same thing on
/// any runner shape.
ServiceOptions benchService(size_t Workers = 2) {
  ServiceOptions O;
  O.Workers = Workers;
  O.ClampWorkers = false;
  O.Engine.BackendFactory = [] { return makeLocalBackend(); };
  O.Engine.MaxTests = 4;
  O.Engine.MaxSeconds = 20;
  return O;
}

std::vector<std::vector<std::string>> surveyPackages(size_t N) {
  std::vector<std::vector<std::string>> Out;
  for (size_t I = 0; I < N; ++I) {
    std::string Src = "var a = /ab+c/g; var b = 'no /regex/ here';\n"
                      "if (x) { var c = /p" +
                      std::to_string(I) + "[0-9]+/i; }\n";
    Out.push_back({Src});
  }
  return Out;
}

JobSpec surveyJob(size_t Packages, std::string Tenant = "bench") {
  JobSpec S;
  S.Kind = JobKind::Survey;
  S.Tenant = std::move(Tenant);
  S.Packages = surveyPackages(Packages);
  return S;
}

// --- 1. Submit -> first streamed unit --------------------------------------

void BM_ServiceSubmitToFirstResult(benchmark::State &State) {
  AnalysisService Svc(benchService());
  size_t Packages = static_cast<size_t>(8 * recap::bench::scale());
  if (Packages < 2)
    Packages = 2;
  double FirstMs = 0;
  uint64_t Units = 0;
  for (auto _ : State) {
    Result<JobHandle> H = Svc.submit(surveyJob(Packages));
    JobUnitResult U;
    bool Got = (*H).nextResult(U);
    benchmark::DoNotOptimize(Got);
    // Let the rest of the job drain untimed so the next iteration starts
    // from an idle service.
    State.PauseTiming();
    (*H).wait();
    JobResult R = (*H).result();
    FirstMs = R.FirstResultSeconds * 1e3;
    Units = R.Results.size() + (R.SurveyOut ? 1 : 0);
    State.ResumeTiming();
  }
  State.counters["first_result_ms"] = FirstMs;
  State.counters["units"] = static_cast<double>(Units);
}
BENCHMARK(BM_ServiceSubmitToFirstResult)->Unit(benchmark::kMillisecond);

// --- 2. Throughput at 1/2/4 submitter threads ------------------------------

void BM_ServiceThroughput(benchmark::State &State) {
  size_t Submitters = static_cast<size_t>(State.range(0));
  AnalysisService Svc(benchService());
  size_t JobsPer = static_cast<size_t>(6 * recap::bench::scale());
  if (JobsPer < 2)
    JobsPer = 2;
  uint64_t Jobs = 0;
  for (auto _ : State) {
    std::vector<std::thread> Threads;
    for (size_t T = 0; T < Submitters; ++T)
      Threads.emplace_back([&Svc, T, JobsPer] {
        for (size_t J = 0; J < JobsPer; ++J) {
          Result<JobHandle> H =
              Svc.submit(surveyJob(3, "t" + std::to_string(T)));
          if (H)
            (*H).wait();
        }
      });
    for (std::thread &T : Threads)
      T.join();
    Jobs += Submitters * JobsPer;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Jobs));
  State.counters["submitters"] = static_cast<double>(Submitters);
  State.counters["jobs"] = static_cast<double>(Jobs);
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- 3. One DSE job end to end ---------------------------------------------

void BM_ServiceDseJob(benchmark::State &State) {
  AnalysisService Svc(benchService());
  uint64_t Tests = 0, Streamed = 0;
  for (auto _ : State) {
    JobSpec S;
    S.Kind = JobKind::Dse;
    S.Tenant = "bench";
    S.Programs = {generateMiniPackage(1)};
    // Per-job knobs (only BackendFactory is merged from the service
    // template); keep the unit small — this row prices the service path,
    // not the search.
    S.Engine.MaxTests = 2;
    S.Engine.MaxSeconds = 5;
    Result<JobHandle> H = Svc.submit(std::move(S));
    (*H).wait();
    JobResult R = (*H).result();
    Tests = 0;
    for (const EngineResult &ER : R.Results)
      Tests += ER.TestsRun;
    benchmark::DoNotOptimize(R.Status);
  }
  Streamed = Svc.stats().ResultsStreamed.load();
  State.counters["tests"] = static_cast<double>(Tests);
  State.counters["results_streamed"] = static_cast<double>(Streamed);
}
BENCHMARK(BM_ServiceDseJob)->Unit(benchmark::kMillisecond);

// --- 4. Admission/cancel/deadline churn ------------------------------------

void BM_ServiceAdmissionChurn(benchmark::State &State) {
  ServiceOptions O = benchService(1);
  O.MaxQueuedJobs = 4;
  O.TenantMaxQueued = 2;
  AnalysisService Svc(O);
  uint64_t Rejected = 0, Cancelled = 0, Deadline = 0, Completed = 0;
  for (auto _ : State) {
    const ServiceStats &St = Svc.stats();
    uint64_t Rej0 = St.RejectedQueueFull.load() +
                    St.RejectedTenantQueue.load();
    uint64_t Can0 = St.JobsCancelled.load();
    uint64_t Dl0 = St.JobsDeadline.load();
    uint64_t Cmp0 = St.JobsCompleted.load();
    std::vector<JobHandle> Handles;
    for (size_t J = 0; J < 12; ++J) {
      JobSpec S = surveyJob(2, "churn" + std::to_string(J % 3));
      if (J % 4 == 3)
        S.DeadlineMs = 1; // expires before the single worker reaches it
      Result<JobHandle> H = Svc.submit(std::move(S));
      if (!H)
        continue;
      if (J % 4 == 2)
        (*H).cancel();
      Handles.push_back(*H);
    }
    for (JobHandle &H : Handles)
      H.wait();
    Rejected = St.RejectedQueueFull.load() +
               St.RejectedTenantQueue.load() - Rej0;
    Cancelled = St.JobsCancelled.load() - Can0;
    Deadline = St.JobsDeadline.load() - Dl0;
    Completed = St.JobsCompleted.load() - Cmp0;
  }
  State.counters["rejected"] = static_cast<double>(Rejected);
  State.counters["cancelled"] = static_cast<double>(Cancelled);
  State.counters["deadline"] = static_cast<double>(Deadline);
  State.counters["completed"] = static_cast<double>(Completed);
}
BENCHMARK(BM_ServiceAdmissionChurn)->Unit(benchmark::kMillisecond);

// --- 5. Drain over in-flight work ------------------------------------------

void BM_ServiceDrain(benchmark::State &State) {
  size_t Batch = static_cast<size_t>(4 * recap::bench::scale());
  if (Batch < 2)
    Batch = 2;
  uint64_t Drained = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto Svc = std::make_unique<AnalysisService>(benchService());
    std::vector<JobHandle> Handles;
    for (size_t J = 0; J < Batch; ++J) {
      Result<JobHandle> H = Svc->submit(surveyJob(4));
      if (H)
        Handles.push_back(*H);
    }
    State.ResumeTiming();
    Svc->drain();
    State.PauseTiming();
    Drained = Svc->stats().JobsCompleted.load();
    Svc->shutdown();
    Svc.reset();
    State.ResumeTiming();
  }
  State.counters["drained_jobs"] = static_cast<double>(Drained);
}
BENCHMARK(BM_ServiceDrain)->Unit(benchmark::kMillisecond);

void attachDerived(recap::bench::JsonReporter &R) {
  std::printf("\n=== resident service (median) ===\n");
  std::printf("hardware_threads: %zu\n", WorkerPool::hardwareWorkers());
  double T1 = R.medianNs("BM_ServiceThroughput/1");
  for (int S : {1, 2, 4}) {
    std::string Name = "BM_ServiceThroughput/" + std::to_string(S);
    double TS = R.medianNs(Name);
    double Speedup = TS > 0 && T1 > 0 ? T1 / TS : 0;
    R.setCounter(Name, "speedup_vs_1s", Speedup);
    if (TS > 0)
      std::printf("  %-28s %8.1f ms   %.2fx\n", Name.c_str(), TS / 1e6,
                  Speedup);
  }
  double First = R.medianNs("BM_ServiceSubmitToFirstResult");
  if (First > 0)
    std::printf("  submit -> first result: %.2f ms\n", First / 1e6);
  double Drain = R.medianNs("BM_ServiceDrain");
  if (Drain > 0)
    std::printf("  drain over a batch: %.2f ms\n", Drain / 1e6);
}

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_service", argc, argv,
                                     attachDerived);
}
