//===- bench/table7_breakdown.cpp - Table 7: contribution breakdown --------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 7: how each support level contributes to coverage over
// a package suite — concrete regexes, + membership modeling, + captures &
// backreferences, + refinement. Reports the number of packages improved
// over the previous level, the geometric mean coverage increase, and the
// test execution rate.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"
#include "dse/Workloads.h"

#include "BenchUtil.h"

#include <cmath>
#include <future>

using namespace recap;

int main() {
  bench::header("Table 7: Contribution breakdown by support level");

  size_t NumPackages = static_cast<size_t>(24 * bench::scale());
  double Budget = 6.0 * bench::scale();

  const SupportLevel Levels[] = {
      SupportLevel::Concrete, SupportLevel::Model, SupportLevel::Captures,
      SupportLevel::Refinement};
  const char *Names[] = {"Concrete Regular Expressions", "+ Modeling RegEx",
                         "+ Captures & Backreferences", "+ Refinement"};

  // coverage[level][package]; packages run in parallel per level,
  // mirroring the paper's per-test-case parallel execution (§6.2).
  std::vector<std::vector<double>> Coverage(4);
  std::vector<double> TestRate(4, 0);

  for (int L = 0; L < 4; ++L) {
    std::vector<std::future<EngineResult>> Futures;
    for (size_t Pkg = 0; Pkg < NumPackages; ++Pkg) {
      Futures.push_back(std::async(std::launch::async, [=] {
        Program P = generateMiniPackage(1000 + Pkg);
        auto Backend = makeZ3Backend();
        EngineOptions Opts;
        Opts.Level = Levels[L];
        Opts.MaxTests = 24;
        Opts.MaxSeconds = Budget;
        Opts.Seed = Pkg;
        DseEngine Engine(*Backend, Opts);
        return Engine.run(P);
      }));
    }
    double Tests = 0, Seconds = 0;
    for (auto &F : Futures) {
      EngineResult R = F.get();
      Coverage[L].push_back(R.coveragePercent());
      Tests += static_cast<double>(R.TestsRun);
      Seconds += R.Seconds;
    }
    TestRate[L] = Seconds > 0 ? 60.0 * Tests / Seconds : 0;
  }

  struct PaperRow {
    double ImprovedPct, CovInc, Tests;
  };
  const PaperRow Paper[] = {{0, 0, 11.46},
                            {46.68, 6.16, 10.14},
                            {17.15, 4.18, 9.42},
                            {5.57, 4.17, 8.70}};

  std::printf("%-30s %9s %9s %8s %10s | %7s %7s %7s\n", "Support level",
              "improved", "%", "+cov", "tests/min", "p-imp%", "p-cov+",
              "p-t/min");
  bench::rule(100);
  for (int L = 0; L < 4; ++L) {
    int Improved = 0;
    double GeoAcc = 0;
    int GeoN = 0;
    if (L > 0) {
      for (size_t Pkg = 0; Pkg < NumPackages; ++Pkg) {
        double Prev = Coverage[L - 1][Pkg], Cur = Coverage[L][Pkg];
        if (Cur > Prev + 1e-9)
          ++Improved;
        if (Prev > 0 && Cur > 0) {
          GeoAcc += std::log(Cur / Prev);
          ++GeoN;
        }
      }
    }
    double GeoMean = GeoN ? (std::exp(GeoAcc / GeoN) - 1.0) * 100.0 : 0;
    // The concrete level runs a single test in microseconds: a tests/min
    // rate is meaningless there.
    char Rate[32];
    if (L == 0)
      std::snprintf(Rate, sizeof(Rate), "%10s", "-");
    else
      std::snprintf(Rate, sizeof(Rate), "%10.1f", TestRate[L]);
    std::printf("%-30s %9d %9s %7.2f%% %s | %6.2f%% %6.2f%% %7.2f\n",
                Names[L], Improved,
                bench::pct(Improved, double(NumPackages)).c_str(), GeoMean,
                Rate, Paper[L].ImprovedPct, Paper[L].CovInc,
                Paper[L].Tests);
  }
  bench::rule(100);

  // The paper's bottom row: all features vs concrete.
  int Improved = 0;
  double GeoAcc = 0;
  int GeoN = 0;
  for (size_t Pkg = 0; Pkg < NumPackages; ++Pkg) {
    double Base = Coverage[0][Pkg], Full = Coverage[3][Pkg];
    if (Full > Base + 1e-9)
      ++Improved;
    if (Base > 0 && Full > 0) {
      GeoAcc += std::log(Full / Base);
      ++GeoN;
    }
  }
  std::printf("%-30s %9d %9s %7.2f%% %10s | %6.2f%% %6.2f%%\n",
              "All Features vs Concrete", Improved,
              bench::pct(Improved, double(NumPackages)).c_str(),
              GeoN ? (std::exp(GeoAcc / GeoN) - 1.0) * 100.0 : 0.0, "",
              54.55, 6.74);
  return 0;
}
