//===- bench/micro_wire.cpp - Wire protocol tax benches --------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Prices the ISSUE-10 wire layer (DESIGN.md §12) against the in-process
// service it fronts:
//
//  1. BM_WireHealthz: one request/response round trip over a Unix socket
//     — the protocol floor (framing + JSON + router, no analysis).
//  2. BM_InProcessSubmitToFirstResult: submit -> first streamed unit of a
//     small survey job, calling AnalysisService directly. The reference.
//  3. BM_WireSubmitToFirstResult: the identical job driven by a second
//     connection through ServiceServer — what a remote client actually
//     observes.
//  4. BM_WireSubmitJournaled: same again with a StateDir, so the
//     journal-before-admission fsync-free append is priced separately.
//
// The post-run summary derives protocol_tax_ms = (3) - (2): the cost of
// crossing the wire for a real job, attached as a counter on the wire
// bench so BENCH_micro_wire.json tracks it across PRs.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "wire/ServiceClient.h"
#include "wire/ServiceServer.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

using namespace recap;
using namespace recap::wire;

namespace {

ServiceOptions benchService() {
  ServiceOptions O;
  O.Workers = 2;
  O.ClampWorkers = false;
  O.Engine.BackendFactory = [] { return makeLocalBackend(); };
  O.Engine.MaxTests = 4;
  O.Engine.MaxSeconds = 20;
  return O;
}

std::string benchDir(const std::string &Name) {
  std::string Dir = "/tmp/recap_bench_wire_" + std::to_string(::getpid()) +
                    "_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// The shared workload: a small survey job, identical whether submitted
/// in-process or over the wire.
constexpr size_t NumPackages = 8;

JobSpec surveyJobSpec() {
  JobSpec S;
  S.Kind = JobKind::Survey;
  S.Tenant = "bench";
  for (size_t I = 0; I < NumPackages; ++I)
    S.Packages.push_back({"var a = /ab+c/g; var b = 'no /regex/ here';\n"
                          "if (x) { var c = /p" +
                          std::to_string(I) + "[0-9]+/i; }\n"});
  return S;
}

Json surveyJobJson() {
  JobSpec S = surveyJobSpec();
  Json Spec = Json::object();
  Spec.set("kind", "survey");
  Spec.set("tenant", "bench");
  Json Pkgs = Json::array();
  for (const auto &Files : S.Packages) {
    Json P = Json::array();
    for (const std::string &Src : Files)
      P.push(Src);
    Pkgs.push(std::move(P));
  }
  Spec.set("packages", std::move(Pkgs));
  return Spec;
}

/// A resident server + connected client, built untimed.
struct WireRig {
  std::string Dir;
  AnalysisService Svc;
  ServiceServer Server;
  ServiceClient Client;

  explicit WireRig(const std::string &Name, bool Journal)
      : Dir(benchDir(Name)), Svc(benchService()), Server(Svc, [&] {
          WireServerOptions WO;
          WO.UnixPath = Dir + "/s.sock";
          if (Journal)
            WO.StateDir = Dir;
          return WO;
        }()) {
    std::string Err;
    if (!Server.start(Err)) {
      std::fprintf(stderr, "micro_wire: %s\n", Err.c_str());
      std::abort();
    }
    if (!Client.connectUnixSocket(Dir + "/s.sock", Err)) {
      std::fprintf(stderr, "micro_wire: %s\n", Err.c_str());
      std::abort();
    }
  }
  ~WireRig() {
    Client.close();
    Server.stop();
    Svc.shutdown(0);
    std::filesystem::remove_all(Dir);
  }
};

// --- 1. Protocol floor -------------------------------------------------------

void BM_WireHealthz(benchmark::State &State) {
  WireRig Rig("healthz", /*Journal=*/false);
  uint64_t Frames = 0;
  for (auto _ : State) {
    Result<Json> R = Rig.Client.healthz();
    if (!R)
      State.SkipWithError(R.error().c_str());
    benchmark::DoNotOptimize(R);
    ++Frames;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Frames));
  State.counters["frames"] =
      static_cast<double>(Rig.Server.stats().FramesRead.load());
}
BENCHMARK(BM_WireHealthz)->Unit(benchmark::kMicrosecond);

// --- 2. In-process reference -------------------------------------------------

void BM_InProcessSubmitToFirstResult(benchmark::State &State) {
  AnalysisService Svc(benchService());
  for (auto _ : State) {
    Result<JobHandle> H = Svc.submit(surveyJobSpec());
    JobUnitResult U;
    bool Got = H && (*H).nextResult(U);
    benchmark::DoNotOptimize(Got);
    State.PauseTiming();
    if (H)
      (*H).wait(); // drain untimed: next iteration starts idle
    State.ResumeTiming();
  }
  Svc.shutdown(0);
}
BENCHMARK(BM_InProcessSubmitToFirstResult)->Unit(benchmark::kMillisecond);

// --- 3./4. The same first-result path over the wire --------------------------

void wireSubmitBench(benchmark::State &State, bool Journal) {
  WireRig Rig(Journal ? "journaled" : "plain", Journal);
  Json Spec = surveyJobJson();
  std::vector<uint64_t> Done;
  for (auto _ : State) {
    Result<uint64_t> Job = Rig.Client.submit(Spec);
    if (!Job) {
      State.SkipWithError(Job.error().c_str());
      break;
    }
    Result<Json> R = Rig.Client.nextResult(*Job, 60000);
    if (!R) {
      State.SkipWithError(R.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(R);
    State.PauseTiming();
    Done.push_back(*Job);
    for (;;) { // drain the unit stream untimed
      Result<Json> N = Rig.Client.nextResult(*Job, 60000);
      if (!N || N->get("exhausted").asBool() || N->get("timeout").asBool())
        break;
    }
    State.ResumeTiming();
  }
  State.counters["jobs"] = static_cast<double>(Done.size());
  State.counters["frames"] =
      static_cast<double>(Rig.Server.stats().FramesRead.load());
}

void BM_WireSubmitToFirstResult(benchmark::State &State) {
  wireSubmitBench(State, /*Journal=*/false);
}
BENCHMARK(BM_WireSubmitToFirstResult)->Unit(benchmark::kMillisecond);

void BM_WireSubmitJournaled(benchmark::State &State) {
  wireSubmitBench(State, /*Journal=*/true);
}
BENCHMARK(BM_WireSubmitJournaled)->Unit(benchmark::kMillisecond);

void attachDerived(recap::bench::JsonReporter &R) {
  std::printf("\n=== wire protocol tax (median) ===\n");
  double Floor = R.medianNs("BM_WireHealthz");
  if (Floor > 0)
    std::printf("  healthz round trip: %.1f us\n", Floor / 1e3);
  double InProc = R.medianNs("BM_InProcessSubmitToFirstResult");
  double Wire = R.medianNs("BM_WireSubmitToFirstResult");
  double Journaled = R.medianNs("BM_WireSubmitJournaled");
  if (InProc > 0 && Wire > 0) {
    double TaxMs = (Wire - InProc) / 1e6;
    R.setCounter("BM_WireSubmitToFirstResult", "protocol_tax_ms", TaxMs);
    std::printf("  submit -> first result: in-process %.2f ms, "
                "wire %.2f ms, protocol tax %.2f ms\n",
                InProc / 1e6, Wire / 1e6, TaxMs);
  }
  if (Wire > 0 && Journaled > 0) {
    double JTaxMs = (Journaled - Wire) / 1e6;
    R.setCounter("BM_WireSubmitJournaled", "journal_tax_ms", JTaxMs);
    std::printf("  journal tax on top of the wire: %.2f ms\n", JTaxMs);
  }
}

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_wire", argc, argv,
                                     attachDerived);
}
