//===- bench/ablation_mutable_backref.cpp - Mutable backref rules ----------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for Table 3's mutable-backreference treatment. The paper ships
// an "all iterations equal" rule (unsound, last row of Table 3) because
// the sound per-iteration model seemed infeasible for solvers; our default
// realizes the *sound* rule through bounded unrolling. This bench compares
// both on patterns where they differ: the paper's rule cannot produce
// words whose iterations capture different values (e.g. "aabb" for
// /((a|b)\2)+/, §4.3).
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

#include "BenchUtil.h"

using namespace recap;

namespace {

struct Outcome {
  SolveStatus Status;
  UString Input;
  unsigned Refinements;
};

Outcome solveFor(const char *Pattern, const char *ForcedInput,
                 bool PaperRule) {
  auto R = Regex::parse(Pattern, "");
  ModelOptions MO;
  MO.PaperMutableBackrefRule = PaperRule;
  auto Backend = makeZ3Backend();
  CegarOptions CO;
  CO.Limits.TimeoutMs = 8000;
  CegarSolver Solver(*Backend, CO);
  SymbolicRegExp Sym(R->clone(), PaperRule ? "pr" : "br", MO);
  TermRef In = mkStrVar("in");
  auto Q = Sym.exec(In, mkIntConst(0));
  std::vector<PathClause> PC = {PathClause::regex(Q, true)};
  if (ForcedInput)
    PC.push_back(
        PathClause::plain(mkEq(In, mkStrConst(fromUTF8(ForcedInput)))));
  CegarResult Res = Solver.solve(PC);
  return {Res.Status, Res.Model.str("in"), Res.Refinements};
}

const char *statusName(SolveStatus S) {
  switch (S) {
  case SolveStatus::Sat:
    return "sat";
  case SolveStatus::Unsat:
    return "unsat";
  case SolveStatus::Unknown:
    return "unknown";
  }
  return "?";
}

} // namespace

int main() {
  bench::header("Ablation: mutable backreference rule "
                "(bounded-sound vs paper's all-iterations-equal)");

  struct Case {
    const char *Pattern;
    const char *ForcedInput; // null = any matching word
    const char *Note;
  };
  const Case Cases[] = {
      {"^((a|b)\\2)+$", nullptr, "free word"},
      {"^((a|b)\\2)+$", "aabb", "paper §4.3: iterations differ"},
      {"^((a|b)\\2)+$", "aaaa", "iterations equal"},
      {"^((a|b)\\2)+$", "aabaa", "paper §4.3: not in language"},
      {"^(?:(\\w)\\1)+$", "aabb", "doubled letters"},
  };

  std::printf("%-14s %-28s | %-22s | %-22s\n", "pattern", "input",
              "bounded-sound (default)", "paper rule (Table 3)");
  bench::rule(96);
  for (const Case &C : Cases) {
    Outcome Sound = solveFor(C.Pattern, C.ForcedInput, false);
    Outcome PaperR = solveFor(C.Pattern, C.ForcedInput, true);
    std::printf("%-14s %-28s | %-7s %-14s | %-7s %-14s  (%s)\n",
                C.Pattern, C.ForcedInput ? C.ForcedInput : "(free)",
                statusName(Sound.Status),
                Sound.Status == SolveStatus::Sat
                    ? toUTF8(Sound.Input).c_str()
                    : "",
                statusName(PaperR.Status),
                PaperR.Status == SolveStatus::Sat
                    ? toUTF8(PaperR.Input).c_str()
                    : "",
                C.Note);
  }
  bench::rule(96);
  std::printf("expected: the paper rule misses 'aabb' (underapproximate, "
              "§5.4); the bounded-sound rule accepts it;\n"
              "both reject 'aabaa' (CEGAR-validated against the concrete "
              "matcher)\n");
  return 0;
}
