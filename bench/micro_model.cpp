//===- bench/micro_model.cpp - Model construction & solving micro ----------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings for model construction (pure CPU) and
// end-to-end CEGAR queries (dominated by Z3), the per-query cost the DSE
// engine pays for each path-condition flip.
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"
#include "runtime/RegexRuntime.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace recap;

namespace {

void BM_BuildModelSimple(benchmark::State &State) {
  auto R = Regex::parse("(a+)(b*)c", "");
  unsigned I = 0;
  for (auto _ : State) {
    ModelBuilder MB(*R, "m" + std::to_string(I++));
    benchmark::DoNotOptimize(MB.build(mkStrVar("in")));
  }
}
BENCHMARK(BM_BuildModelSimple);

void BM_BuildModelComplex(benchmark::State &State) {
  auto R = Regex::parse("^(?=[a-z])(\\w+)-(\\d{2,4})(?:\\.(\\w+)\\3)?$",
                        "i");
  unsigned I = 0;
  for (auto _ : State) {
    ModelBuilder MB(*R, "m" + std::to_string(I++));
    benchmark::DoNotOptimize(MB.build(mkStrVar("in")));
  }
}
BENCHMARK(BM_BuildModelComplex);

void BM_BuildModelComplexWarm(benchmark::State &State) {
  // Same model as BM_BuildModelComplex, instantiated from the cached
  // template instead of rebuilt: no re-analysis, shared classical-regex
  // payloads, fresh variables only.
  CompiledRegex C(
      Regex::parse("^(?=[a-z])(\\w+)-(\\d{2,4})(?:\\.(\\w+)\\3)?$", "i")
          .take());
  TermRef In = mkStrVar("in");
  (void)C.instantiate(In, "m#0"); // build the template outside the loop
  unsigned I = 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        C.instantiate(In, "m#" + std::to_string(I++)));
  State.counters["template_hits"] =
      static_cast<double>(C.stats().TemplateHits);
}
BENCHMARK(BM_BuildModelComplexWarm);

void BM_SolveMembership(benchmark::State &State) {
  auto R = Regex::parse("(a+)(b+)", "");
  auto Backend = makeZ3Backend();
  unsigned I = 0;
  for (auto _ : State) {
    CegarSolver Solver(*Backend);
    SymbolicRegExp Sym(R->clone(), "s" + std::to_string(I++));
    auto Q = Sym.exec(mkStrVar("in"), mkIntConst(0));
    benchmark::DoNotOptimize(Solver.solve({PathClause::regex(Q, true)}));
  }
}
BENCHMARK(BM_SolveMembership)->Unit(benchmark::kMillisecond);

void BM_SolveMembershipWarmCache(benchmark::State &State) {
  // Repeated-pattern workload over one solver: every iteration issues a
  // fresh query (fresh model variables), but the α-invariant query cache
  // recognizes the problem and skips the backend entirely.
  auto R = Regex::parse("(a+)(b+)", "");
  auto Backend = makeZ3Backend();
  CegarSolver Solver(*Backend);
  SymbolicRegExp Sym(std::make_shared<CompiledRegex>(R->clone()), "s");
  for (auto _ : State) {
    auto Q = Sym.exec(mkStrVar("in"), mkIntConst(0));
    benchmark::DoNotOptimize(Solver.solve({PathClause::regex(Q, true)}));
  }
  State.counters["query_hits"] =
      static_cast<double>(Solver.stats().CacheHits);
  State.counters["query_misses"] =
      static_cast<double>(Solver.stats().CacheMisses);
  State.counters["template_hits"] = static_cast<double>(
      Sym.compiled()->stats().TemplateHits);
}
BENCHMARK(BM_SolveMembershipWarmCache)->Unit(benchmark::kMillisecond);

void BM_SolveWithRefinement(benchmark::State &State) {
  // The paper's §3.4 example: needs one refinement round.
  auto R = Regex::parse("^a*(a)?$", "");
  auto Backend = makeZ3Backend();
  unsigned I = 0;
  for (auto _ : State) {
    CegarSolver Solver(*Backend);
    SymbolicRegExp Sym(R->clone(), "r" + std::to_string(I++));
    TermRef In = mkStrVar("in");
    auto Q = Sym.exec(In, mkIntConst(0));
    benchmark::DoNotOptimize(Solver.solve(
        {PathClause::regex(Q, true),
         PathClause::plain(mkEq(In, mkStrConst(fromUTF8("aa"))))}));
  }
}
BENCHMARK(BM_SolveWithRefinement)->Unit(benchmark::kMillisecond);

void BM_SolveNegationExact(benchmark::State &State) {
  auto R = Regex::parse("(a|b)+c", "");
  auto Backend = makeZ3Backend();
  unsigned I = 0;
  for (auto _ : State) {
    CegarSolver Solver(*Backend);
    SymbolicRegExp Sym(R->clone(), "n" + std::to_string(I++));
    auto Q = Sym.test(mkStrVar("in"), mkIntConst(0));
    benchmark::DoNotOptimize(Solver.solve({PathClause::regex(Q, false)}));
  }
}
BENCHMARK(BM_SolveNegationExact)->Unit(benchmark::kMillisecond);

void BM_SolveLookbehind(benchmark::State &State) {
  // ES2018 extension through the prefix-side model rule + CEGAR.
  auto R = Regex::parse("(?<=\\$)(\\d+)", "");
  auto Backend = makeZ3Backend();
  unsigned I = 0;
  for (auto _ : State) {
    CegarSolver Solver(*Backend);
    SymbolicRegExp Sym(R->clone(), "lb" + std::to_string(I++));
    auto Q = Sym.exec(mkStrVar("in"), mkIntConst(0));
    benchmark::DoNotOptimize(Solver.solve({PathClause::regex(Q, true)}));
  }
}
BENCHMARK(BM_SolveLookbehind)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_model", argc, argv);
}
