//===- bench/micro_anchored.cpp - Anchored-classical lane microbenches -----===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the anchored product-DFA lane against the Z3-scratch baseline
// on the query shape it exists for: test()-style memberships of
// ^…$-anchored patterns — the dominant shape in validator-style traces
// (PAPER.md §2; every `if (!re.test(s)) throw` guard). Three phases:
//
//  1. BM_AnchoredLane / BM_Z3Scratch: the same anchored probe set solved
//     through the anchored-enabled dispatcher vs a scratch Z3 CegarSolver.
//     The ISSUE acceptance line — anchored median >= 100x faster, 0%
//     fallback — is computed in PostRun and attached as JSON counters
//     (speedup_vs_z3, fallback_rate).
//
//  2. BM_AnchoredNegative: the same probes with negated polarity —
//     complement products stress the density-keyed budget.
//
//  3. BM_Race: thresholds forced so every probe races both lanes; the
//     dispatcher's win/loss/cancel counters land in the JSON.
//
// The CEGAR query cache is disabled and every iteration builds a fresh
// SymbolicRegExp (fresh clause identity) so repeated iterations measure
// the lane, not a cache. Counters surface lane hits, fallbacks and race
// outcomes; runBenchSuite() emits BENCH_micro_anchored.json.
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"
#include "cegar/BackendDispatcher.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace recap;

namespace {

// Validator-style anchored probes: each is ^…$-anchored-exact, so the
// dispatcher must claim every one for the anchored lane (fallback-rate
// counter asserts 0 in the JSON).
const char *AnchoredPatterns[] = {
    "^[a-z]{3,8}$",
    "^(foo|bar|baz)+$",
    "^[0-9]{4}-[0-9]{2}$",
    "^a[ab]*b$",
    "^(ab|cd)*$",
};
constexpr size_t NPatterns =
    sizeof(AnchoredPatterns) / sizeof(AnchoredPatterns[0]);

CegarOptions benchOptions(uint32_t TimeoutMs) {
  CegarOptions Opts;
  Opts.QueryCacheCapacity = 0; // measure the lane, not the query cache
  Opts.Limits.TimeoutMs = TimeoutMs;
  return Opts;
}

/// One pass over the probe set: fresh SymbolicRegExp per probe (fresh
/// clause identity — no session or cache can short-circuit), test()-
/// style query, one solve. Returns how many probes were decisive.
int runProbes(CegarSolver &Solver, bool Positive, int Round) {
  int Decisive = 0;
  for (size_t I = 0; I < NPatterns; ++I) {
    auto R = Regex::parse(AnchoredPatterns[I], "");
    SymbolicRegExp Sym(R->clone(),
                       "p" + std::to_string(I) + "r" + std::to_string(Round));
    auto Q = Sym.test(mkStrVar("in" + std::to_string(I)), mkIntConst(0));
    CegarResult Res = Solver.solve({PathClause::regex(Q, Positive)});
    benchmark::DoNotOptimize(Res.Status);
    if (Res.Status != SolveStatus::Unknown)
      ++Decisive;
  }
  return Decisive;
}

// --- 1. Anchored lane vs Z3 scratch ---------------------------------------

void BM_AnchoredLane(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  auto Local = makeLocalBackend();
  BackendDispatcher D(*Local, *Z3);
  int Round = 0, Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(D, benchOptions(20000));
    Decisive = runProbes(Solver, /*Positive=*/true, Round++);
  }
  double Hits = static_cast<double>(D.stats().AnchoredLaneHit.load());
  double Falls = static_cast<double>(D.stats().AnchoredFallback.load());
  State.counters["decisive"] = static_cast<double>(Decisive);
  State.counters["lane_hits"] = Hits;
  State.counters["fallbacks"] = Falls;
  // ISSUE acceptance: 0 on this all-test() anchored probe set.
  State.counters["fallback_rate"] =
      Hits + Falls > 0 ? Falls / (Hits + Falls) : 0;
}
BENCHMARK(BM_AnchoredLane)->Unit(benchmark::kMillisecond);

void BM_Z3Scratch(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  int Round = 0, Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(*Z3, benchOptions(20000));
    Decisive = runProbes(Solver, /*Positive=*/true, Round++);
  }
  State.counters["decisive"] = static_cast<double>(Decisive);
}
BENCHMARK(BM_Z3Scratch)->Unit(benchmark::kMillisecond);

// --- 2. Negated memberships (complement products) -------------------------

void BM_AnchoredNegative(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  auto Local = makeLocalBackend();
  BackendDispatcher D(*Local, *Z3);
  int Round = 0, Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(D, benchOptions(20000));
    Decisive = runProbes(Solver, /*Positive=*/false, Round++);
  }
  State.counters["decisive"] = static_cast<double>(Decisive);
  State.counters["lane_hits"] =
      static_cast<double>(D.stats().AnchoredLaneHit.load());
  State.counters["fallbacks"] =
      static_cast<double>(D.stats().AnchoredFallback.load());
}
BENCHMARK(BM_AnchoredNegative)->Unit(benchmark::kMillisecond);

// --- 3. Racing dispatcher --------------------------------------------------

void BM_Race(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  auto Local = makeLocalBackend();
  BackendDispatcher D(*Local, *Z3);
  // Thresholds forced so every anchored-eligible probe launches both
  // lanes — the win/loss/cancel split is the point of this bench.
  D.policy().Race = true;
  D.policy().RaceClauseThreshold = 0;
  D.policy().RaceDensityThreshold = 0.0;
  int Round = 0, Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(D, benchOptions(20000));
    Decisive = runProbes(Solver, /*Positive=*/true, Round++);
  }
  State.counters["decisive"] = static_cast<double>(Decisive);
  State.counters["race_classical_won"] =
      static_cast<double>(D.stats().RaceClassicalWon.load());
  State.counters["race_z3_won"] =
      static_cast<double>(D.stats().RaceZ3Won.load());
  State.counters["race_cancelled"] =
      static_cast<double>(D.stats().RaceCancelled.load());
}
BENCHMARK(BM_Race)->Unit(benchmark::kMillisecond);

// --- 4. Reliability layer overhead -----------------------------------------

// The same anchored probe set with the DESIGN.md §9 guard enabled and no
// fault injected: guarded sessions, breakers and quarantine on the hot
// path must be near-free (the ISSUE acceptance bounds the healthy-path
// overhead), and every reliability counter must read zero — a nonzero
// guard_timeouts on this bench means deadlines are misconfigured, not
// that the machine is slow.
void BM_GuardedAnchoredLane(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  auto Local = makeLocalBackend();
  BackendDispatcher D(*Local, *Z3);
  auto Stats = std::make_shared<RuntimeStats>();
  CegarOptions Opts = benchOptions(20000);
  Opts.Reliability.Enabled = true;
  Opts.Reliability.CheckDeadlineMs = 20000;
  Opts.Reliability.Stats = Stats;
  int Round = 0, Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(D, Opts);
    Decisive = runProbes(Solver, /*Positive=*/true, Round++);
  }
  State.counters["decisive"] = static_cast<double>(Decisive);
  State.counters["guard_timeouts"] =
      static_cast<double>(Stats->GuardTimeouts.load());
  State.counters["guard_retries"] =
      static_cast<double>(Stats->GuardRetries.load());
  State.counters["breaker_opens"] =
      static_cast<double>(Stats->BreakerOpens.load());
  State.counters["breaker_reroutes"] =
      static_cast<double>(D.stats().BreakerReroutes.load());
  State.counters["quarantined"] =
      static_cast<double>(Stats->Quarantined.load());
}
BENCHMARK(BM_GuardedAnchoredLane)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite(
      "micro_anchored", argc, argv, [](recap::bench::JsonReporter &R) {
        double Lane = R.medianNs("BM_AnchoredLane");
        double Z3 = R.medianNs("BM_Z3Scratch");
        if (Lane > 0 && Z3 > 0) {
          double Speedup = Z3 / Lane;
          R.setCounter("BM_AnchoredLane", "speedup_vs_z3", Speedup);
          std::printf("anchored lane vs Z3 scratch: %.1fx\n", Speedup);
        }
        double Guarded = R.medianNs("BM_GuardedAnchoredLane");
        if (Lane > 0 && Guarded > 0) {
          double Overhead = Guarded / Lane - 1.0;
          R.setCounter("BM_GuardedAnchoredLane", "guard_overhead", Overhead);
          std::printf("reliability guard overhead on anchored lane: %.1f%%\n",
                      Overhead * 100.0);
        }
      });
}
