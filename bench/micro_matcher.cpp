//===- bench/micro_matcher.cpp - Matcher microbenchmarks --------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings for the concrete ES6 matcher — the CEGAR
// oracle's cost floor (it runs once per refinement round).
//
//===----------------------------------------------------------------------===//

#include "matcher/Matcher.h"
#include "runtime/RegexRuntime.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace recap;

namespace {

void BM_MatchLiteral(benchmark::State &State) {
  auto R = Regex::parse("hello", "");
  RegExpObject Obj(R.take());
  UString In = fromUTF8("say hello to the world");
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.test(In));
}
BENCHMARK(BM_MatchLiteral);

void BM_MatchCaptures(benchmark::State &State) {
  auto R = Regex::parse("<(\\w+)>([0-9]*)<\\/\\1>", "");
  RegExpObject Obj(R.take());
  UString In = fromUTF8("prefix <timeout>500</timeout> suffix");
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.exec(In).Result.has_value());
}
BENCHMARK(BM_MatchCaptures);

void BM_MatchBacktrackHeavy(benchmark::State &State) {
  auto R = Regex::parse("(a+)+b", "");
  RegExpObject Obj(R.take());
  UString In = fromUTF8(std::string(18, 'a') + "b");
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.test(In));
}
BENCHMARK(BM_MatchBacktrackHeavy);

void BM_MatchIgnoreCaseClass(benchmark::State &State) {
  auto R = Regex::parse("[a-z]+[0-9]{2,4}", "i");
  RegExpObject Obj(R.take());
  UString In = fromUTF8("___ABCdef1234___");
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.test(In));
}
BENCHMARK(BM_MatchIgnoreCaseClass);

void BM_MatchLongInput(benchmark::State &State) {
  auto R = Regex::parse("needle[0-9]+", "");
  RegExpObject Obj(R.take());
  std::string Hay(4096, 'x');
  Hay += "needle42";
  UString In = fromUTF8(Hay);
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.test(In));
}
BENCHMARK(BM_MatchLongInput);

void BM_ParseRegex(benchmark::State &State) {
  for (auto _ : State) {
    auto R = Regex::parse("^(?:([a-z]+)|\\d{2,3})(?=x)\\1?$", "im");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ParseRegex);

// Compile-once pipeline: cold = parse + wrap every time (what every call
// site paid before the runtime existed), warm = interned lookup. The warm
// run must report >0 cache hits and beat the cold run.

void BM_RuntimeCompileCold(benchmark::State &State) {
  for (auto _ : State) {
    RegexRuntime RT;
    benchmark::DoNotOptimize(
        RT.get("^(?:([a-z]+)|\\d{2,3})(?=x)\\1?$", "im"));
  }
}
BENCHMARK(BM_RuntimeCompileCold);

void BM_RuntimeCompileWarm(benchmark::State &State) {
  RegexRuntime RT;
  (void)RT.get("^(?:([a-z]+)|\\d{2,3})(?=x)\\1?$", "im");
  for (auto _ : State)
    benchmark::DoNotOptimize(
        RT.get("^(?:([a-z]+)|\\d{2,3})(?=x)\\1?$", "im"));
  State.counters["intern_hits"] =
      static_cast<double>(RT.stats().InternHits);
  State.counters["intern_misses"] =
      static_cast<double>(RT.stats().InternMisses);
}
BENCHMARK(BM_RuntimeCompileWarm);

void BM_ExecColdCompile(benchmark::State &State) {
  // Fresh parse + object per exec: the repeated-pattern worst case.
  UString In = fromUTF8("prefix <timeout>500</timeout> suffix");
  for (auto _ : State) {
    RegExpObject Obj(Regex::parse("<(\\w+)>([0-9]*)<\\/\\1>", "").take());
    benchmark::DoNotOptimize(Obj.exec(In).Result.has_value());
  }
}
BENCHMARK(BM_ExecColdCompile);

void BM_ExecSharedCompiled(benchmark::State &State) {
  // Object per exec as above, but over one interned CompiledRegex: the
  // matcher's per-class set resolution runs once, not per object.
  RegexRuntime RT;
  auto C = RT.get("<(\\w+)>([0-9]*)<\\/\\1>", "");
  UString In = fromUTF8("prefix <timeout>500</timeout> suffix");
  for (auto _ : State) {
    RegExpObject Obj(*C);
    benchmark::DoNotOptimize(Obj.exec(In).Result.has_value());
  }
  State.counters["matcher_hits"] =
      static_cast<double>(RT.stats().MatcherHits);
}
BENCHMARK(BM_ExecSharedCompiled);

void BM_MatchLookbehind(benchmark::State &State) {
  // ES2018 extension: right-to-left matching inside the assertion.
  auto R = Regex::parse("(?<=\\$)\\d+(?:\\.\\d{2})?", "");
  RegExpObject Obj(R.take());
  UString In = fromUTF8("total due: $1299.99 (incl. tax)");
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.exec(In).Result.has_value());
}
BENCHMARK(BM_MatchLookbehind);

void BM_MatchNamedGroups(benchmark::State &State) {
  auto R = Regex::parse(
      "(?<y>\\d{4})-(?<m>\\d{2})-(?<d>\\d{2})T(?<h>\\d{2})", "");
  RegExpObject Obj(R.take());
  UString In = fromUTF8("timestamp 2019-06-22T14 logged");
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.exec(In).Result.has_value());
}
BENCHMARK(BM_MatchNamedGroups);

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_matcher", argc, argv);
}
