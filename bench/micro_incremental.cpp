//===- bench/micro_incremental.cpp - Incremental-session microbenches ------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the two solver-interaction patterns this repo's incremental
// rework (sessions + feature-routed dispatch) exists for, against the
// *stateless baseline* — CegarSolver(Z3, SessionPolicy::Stateless),
// which is exactly the pre-sessions configuration of this repository:
//
//  1. Refinement (BM_Refine*): a CEGAR problem whose repetition model is
//     clamped below the pattern's minimum (RepetitionUnrollLimit), so
//     the solver proposes a deterministic shortest-first stream of
//     spurious words that validation excludes one by one — refinement
//     rounds >= 2, ending Sat. The dispatcher routes the classical
//     problem to the automata lane where each round is microseconds;
//     the baseline re-solves the grown conjunction through Z3.
//
//  2. Sibling flips (BM_SiblingFlips*): the engine's generational
//     search — problems `C0..C(k-1), ¬Ck` over one trace share
//     ever-longer prefixes. Dispatch + prefix-pinned sessions solve all
//     flips on the classical lane reusing cached product automata; the
//     baseline re-translates and re-solves everything per flip, and
//     times out on several negated heavy-DFA memberships.
//
//  3. BM_LocalFlips* isolates the session-vs-rebuild effect on the
//     classical lane alone (same backend both sides).
//
// Direct Z3-session-vs-Z3-scratch pairs are deliberately absent: probing
// showed Z3's incremental core is a wash or slower on these seq/re
// models (DESIGN.md §5.3) — sessions there are kept answer-neutral by
// the scratch rescue, and the measurable wins come from routing.
//
// The CEGAR query cache is disabled throughout (it would replay repeated
// problems and measure the cache, not the sessions). Counters surface
// refinement rounds, dispatch fallbacks and prefix reuse; the JSON
// emitted via runBenchSuite() keeps the trajectory comparable across
// PRs.
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"
#include "cegar/BackendDispatcher.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace recap;

namespace {

CegarOptions benchOptions(bool Incremental, uint32_t TimeoutMs) {
  CegarOptions Opts;
  // Auto = the PR configuration (sessions where the backend profits);
  // Stateless = the pre-sessions baseline.
  Opts.Sessions = Incremental ? CegarOptions::SessionPolicy::Auto
                              : CegarOptions::SessionPolicy::Stateless;
  Opts.QueryCacheCapacity = 0; // measure sessions, not the query cache
  Opts.Limits.TimeoutMs = TimeoutMs;
  return Opts;
}

/// a^{Lo..Hi} — the length-window language for the refinement stream.
CRegexRef windowLang(unsigned Lo, unsigned Hi) {
  return cConcat(cRepeat(cChar('a'), Lo),
                 cRepeat(cOpt(cChar('a')), Hi - Lo));
}

// --- 1. Refinement rounds -------------------------------------------------
//
// Pattern a{9,12} with RepetitionUnrollLimit = 2 approximates to a^2 a*,
// so every word a^4..a^8 of the window a^{4..10} is spurious: validation
// excludes them shortest-first (deterministic on the automata lane)
// until a^9 — five refinement rounds, then Sat.

void runRefinement(CegarSolver &Solver, CegarStats *StatsOut) {
  auto R = Regex::parse("a{9,12}", "");
  ModelOptions MO;
  MO.RepetitionUnrollLimit = 2;
  SymbolicRegExp Sym(R->clone(), "ref", MO);
  TermRef In = mkStrVar("in");
  std::vector<PathClause> PC = {
      PathClause::plain(mkInRe(In, windowLang(4, 10))),
      PathClause::regex(Sym.test(In, mkIntConst(0)), true)};
  CegarResult Res = Solver.solve(PC);
  benchmark::DoNotOptimize(Res.Status);
  if (StatsOut)
    StatsOut->merge(Solver.stats());
}

void BM_RefineIncremental(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  auto Local = makeLocalBackend();
  BackendDispatcher D(*Local, *Z3);
  CegarStats S;
  for (auto _ : State) {
    CegarSolver Solver(D, benchOptions(true, 20000));
    runRefinement(Solver, &S);
  }
  State.counters["rounds"] =
      State.iterations()
          ? static_cast<double>(S.TotalRefinements) /
                static_cast<double>(State.iterations())
          : 0;
  State.counters["fallbacks"] = static_cast<double>(S.FallbackSolves);
}
BENCHMARK(BM_RefineIncremental)->Unit(benchmark::kMillisecond);

void BM_RefineScratch(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  CegarStats S;
  for (auto _ : State) {
    CegarSolver Solver(*Z3, benchOptions(false, 20000));
    runRefinement(Solver, &S);
  }
  State.counters["rounds"] =
      State.iterations()
          ? static_cast<double>(S.TotalRefinements) /
                static_cast<double>(State.iterations())
          : 0;
  State.counters["refine_check_ms"] = S.RefineCheckScratch.mean() * 1e3;
}
BENCHMARK(BM_RefineScratch)->Unit(benchmark::kMillisecond);

// --- 2. Sibling-flip sequences --------------------------------------------
//
// Classical memberships with heavy DFAs (subset construction on
// (?:a|b)*x(?:a|b)^k suffix automata) on distinct inputs. Clause objects
// — and their memoized assertions — are reused across flips exactly
// like dse/Engine reuses Trace clauses; that identity is what lets the
// pinned session pop to the common prefix. The negated memberships are
// where the Z3 baseline times out (3s cap per query here) while the
// automata lane answers all flips.

struct FlipChain {
  std::vector<std::unique_ptr<SymbolicRegExp>> Syms;
  std::vector<PathClause> Clauses;

  explicit FlipChain(size_t N) {
    static const char *Patterns[] = {
        "(?:a|b)*a(?:a|b){10}", "(?:a|b)*b(?:a|b){9}",
        "[ab]*a[ab]{8}b",       "(?:a|b)*ab(?:a|b){8}",
        "[ab]*ba[ab]{7}",       "(?:a|b)*aa(?:a|b){8}",
    };
    for (size_t I = 0; I < N; ++I) {
      auto R = Regex::parse(Patterns[I % (sizeof(Patterns) /
                                          sizeof(Patterns[0]))],
                            "");
      Syms.push_back(std::make_unique<SymbolicRegExp>(
          R->clone(), "f" + std::to_string(I)));
      auto Q = Syms.back()->test(mkStrVar("s" + std::to_string(I)),
                                 mkIntConst(0));
      Clauses.push_back(PathClause::regex(Q, true));
    }
  }

  /// Runs the whole flip sequence; returns how many flips were decisive.
  int runFlips(CegarSolver &Solver) const {
    int Decisive = 0;
    for (size_t Flip = 0; Flip < Clauses.size(); ++Flip) {
      std::vector<PathClause> Problem(Clauses.begin(),
                                      Clauses.begin() + Flip);
      Problem.push_back(Clauses[Flip].negated());
      if (Solver.solve(Problem).Status != SolveStatus::Unknown)
        ++Decisive;
    }
    return Decisive;
  }
};

/// Counters are per flip-sequence (divided by iteration count) so the
/// JSON stays comparable across machines and runs.
void reportFlipCounters(benchmark::State &State, const CegarStats &S,
                        int Decisive) {
  double N = State.iterations() ? static_cast<double>(State.iterations())
                                : 1;
  State.counters["decisive"] = static_cast<double>(Decisive);
  State.counters["prefix_reused"] =
      static_cast<double>(S.PrefixScopesReused) / N;
  State.counters["first_check_ms"] = S.FirstCheck.mean() * 1e3;
}

void BM_SiblingFlipsIncremental(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  auto Local = makeLocalBackend();
  BackendDispatcher D(*Local, *Z3);
  FlipChain Chain(static_cast<size_t>(State.range(0)));
  CegarStats S;
  int Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(D, benchOptions(true, 3000));
    Decisive = Chain.runFlips(Solver);
    S.merge(Solver.stats());
  }
  reportFlipCounters(State, S, Decisive);
  State.counters["fallbacks"] =
      static_cast<double>(S.FallbackSolves) /
      (State.iterations() ? static_cast<double>(State.iterations()) : 1);
}
BENCHMARK(BM_SiblingFlipsIncremental)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_SiblingFlipsScratch(benchmark::State &State) {
  auto Z3 = makeZ3Backend();
  FlipChain Chain(static_cast<size_t>(State.range(0)));
  CegarStats S;
  int Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(*Z3, benchOptions(false, 3000));
    Decisive = Chain.runFlips(Solver);
    S.merge(Solver.stats());
  }
  reportFlipCounters(State, S, Decisive);
}
BENCHMARK(BM_SiblingFlipsScratch)->Arg(6)->Unit(benchmark::kMillisecond);

// --- 3. Classical lane in isolation ---------------------------------------

void BM_LocalFlipsIncremental(benchmark::State &State) {
  auto B = makeLocalBackend();
  FlipChain Chain(static_cast<size_t>(State.range(0)));
  CegarStats S;
  int Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(*B, benchOptions(true, 10000));
    Decisive = Chain.runFlips(Solver);
    S.merge(Solver.stats());
  }
  reportFlipCounters(State, S, Decisive);
  State.counters["candidate_hits"] =
      static_cast<double>(B->stats().SessionCandidateHits) /
      (State.iterations() ? static_cast<double>(State.iterations()) : 1);
}
BENCHMARK(BM_LocalFlipsIncremental)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_LocalFlipsScratch(benchmark::State &State) {
  auto B = makeLocalBackend();
  FlipChain Chain(static_cast<size_t>(State.range(0)));
  CegarStats S;
  int Decisive = 0;
  for (auto _ : State) {
    CegarSolver Solver(*B, benchOptions(false, 10000));
    Decisive = Chain.runFlips(Solver);
    S.merge(Solver.stats());
  }
  reportFlipCounters(State, S, Decisive);
}
BENCHMARK(BM_LocalFlipsScratch)->Arg(6)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_incremental", argc, argv);
}
