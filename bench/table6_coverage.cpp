//===- bench/table6_coverage.cpp - Table 6: coverage new vs old ------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 6: statement coverage of full ES6 regex support
// ("New", model + captures + CEGAR) against the original ExpoSE's partial
// support ("Old", membership modeling with concretized captures) on eleven
// MiniJS libraries mirroring the paper's subjects. Absolute numbers differ
// from the paper (simulated substrate, smaller budgets); the comparison
// column should show New >= Old nearly everywhere, with the largest gains
// where capture groups and backreferences drive control flow.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"
#include "dse/Workloads.h"

#include "BenchUtil.h"

#include <future>
#include <map>

using namespace recap;

namespace {

EngineResult runLevel(const Program &P, SupportLevel L, double Budget) {
  auto Backend = makeZ3Backend();
  EngineOptions Opts;
  Opts.Level = L;
  Opts.MaxTests = static_cast<uint64_t>(48 * bench::scale());
  Opts.MaxSeconds = Budget;
  Opts.Seed = 7;
  DseEngine Engine(*Backend, Opts);
  return Engine.run(P);
}

struct PaperRow {
  double Old, New;
};

} // namespace

int main() {
  bench::header("Table 6: Statement coverage, full support (New) vs "
                "partial support (Old)");

  // Paper's coverage columns for the same library names.
  const std::map<std::string, PaperRow> Paper = {
      {"babel-eslint", {21.0, 26.8}}, {"fast-xml-parser", {3.1, 44.6}},
      {"js-yaml", {4.4, 23.7}},       {"minimist", {65.9, 66.4}},
      {"moment", {0.0, 52.6}},        {"query-string", {0.0, 42.6}},
      {"semver", {51.7, 46.2}},       {"url-parse", {60.9, 71.8}},
      {"validator", {67.5, 72.2}},    {"xml", {60.2, 77.5}},
      {"yn", {0.0, 54.0}},
  };

  double Budget = 20.0 * bench::scale();
  std::printf("%-18s %8s %8s %8s | %8s %8s %8s\n", "Library", "Old(%)",
              "New(%)", "+(%)", "pOld(%)", "pNew(%)", "p+(%)");
  bench::rule(80);

  int NewWins = 0, Total = 0;
  std::vector<Program> Libs = table6Libraries();
  // Old/New runs execute in parallel across libraries (§6.2).
  std::vector<std::future<std::pair<EngineResult, EngineResult>>> Futures;
  for (const Program &P : Libs)
    Futures.push_back(std::async(std::launch::async, [&P, Budget] {
      return std::make_pair(runLevel(P, SupportLevel::Model, Budget),
                            runLevel(P, SupportLevel::Refinement, Budget));
    }));
  for (size_t I = 0; I < Libs.size(); ++I) {
    const Program &P = Libs[I];
    auto [Old, New] = Futures[I].get();
    double OldPct = Old.coveragePercent();
    double NewPct = New.coveragePercent();
    double Inc = OldPct > 0 ? 100.0 * (NewPct - OldPct) / OldPct
                            : (NewPct > 0 ? 999.0 : 0.0);
    const PaperRow &PR = Paper.at(P.Name);
    double PInc = PR.Old > 0 ? 100.0 * (PR.New - PR.Old) / PR.Old : 999.0;
    std::printf("%-18s %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f\n",
                P.Name.c_str(), OldPct, NewPct, Inc, PR.Old, PR.New,
                PInc);
    NewWins += NewPct >= OldPct;
    ++Total;
  }
  bench::rule(80);
  std::printf("New >= Old on %d/%d libraries (paper: 10/11; '+' of 999 "
              "denotes the paper's infinite increase from 0%%)\n",
              NewWins, Total);
  return 0;
}
