//===- bench/ablation_refinement_limit.cpp - Refinement limit sweep --------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for §7.4's observation that "refinement limits of five or
// fewer are feasible": sweeps the limit over precedence-heavy queries and
// reports the success rate and refinement counts at each setting.
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

#include "BenchUtil.h"

using namespace recap;

int main() {
  bench::header("Ablation: refinement limit sweep (paper §7.4)");

  // Queries whose models admit spurious capture assignments that only the
  // refinement scheme can repair (greedy/lazy precedence).
  struct Probe {
    const char *Pattern;
    const char *Input;
    size_t CaptureIdx; // constrained to be defined
  };
  const Probe Probes[] = {
      {"^a*(a)?(a)?$", "aaa", 1},
      {"^(a*)(a*)$", "aaaa", 1},
      {"<(.*?)>(.*)", "<x><y>", 0},
      {"^(a+)(a+)$", "aaaa", 0},
      {"(a*)(b*)(a*)", "aabaa", 2},
      {"^(?:(x)|(y)|xy)+$", "xyxy", 0},
  };

  const unsigned Limits[] = {1, 2, 5, 10, 20};
  std::printf("%-8s %10s %12s %14s\n", "limit", "solved", "unknown",
              "mean refines");
  bench::rule(52);
  for (unsigned Limit : Limits) {
    auto Backend = makeZ3Backend();
    unsigned Solved = 0, Unknowns = 0;
    double Refines = 0;
    for (const Probe &Pr : Probes) {
      auto R = Regex::parse(Pr.Pattern, "");
      if (!R)
        continue;
      CegarOptions Opts;
      Opts.RefinementLimit = Limit;
      CegarSolver Solver(*Backend, Opts);
      SymbolicRegExp Sym(R->clone(), "q");
      TermRef In = mkStrVar("in");
      auto Q = Sym.exec(In, mkIntConst(0));
      std::vector<PathClause> PC = {
          PathClause::regex(Q, true),
          PathClause::plain(mkEq(In, mkStrConst(fromUTF8(Pr.Input)))),
          PathClause::plain(Q->Model.Captures[Pr.CaptureIdx].Defined),
      };
      CegarResult Res = Solver.solve(PC);
      Refines += Res.Refinements;
      if (Res.Status == SolveStatus::Unknown)
        ++Unknowns;
      else
        ++Solved; // Sat or (correctly) Unsat
    }
    std::printf("%-8u %10u %12u %14.2f\n", Limit, Solved, Unknowns,
                Refines / std::size(Probes));
  }
  bench::rule(52);
  std::printf("expected shape: solved saturates at small limits (paper: "
              "majority of refined queries need 1, mean 2.9)\n");
  return 0;
}
