//===- bench/table4_survey.cpp - Table 4: regex usage by NPM package -------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 4 (regex usage by package) over the synthetic
// feature-calibrated corpus (DESIGN.md substitution for the 415k-package
// NPM snapshot). The survey pipeline — literal extraction, parsing,
// feature classification, aggregation — is the paper's; only the corpus is
// synthetic.
//
//===----------------------------------------------------------------------===//

#include "survey/CorpusGen.h"
#include "survey/Survey.h"

#include "BenchUtil.h"

using namespace recap;

int main() {
  bench::header("Table 4: Regex usage by NPM package");

  CorpusOptions Opts;
  Opts.NumPackages = static_cast<size_t>(4000 * bench::scale());
  std::vector<GeneratedPackage> Pkgs = generateCorpus(Opts);

  Survey S;
  for (const GeneratedPackage &P : Pkgs)
    S.addPackage(P.Files);

  struct Row {
    const char *Feature;
    uint64_t Count;
    double PaperPct;
  };
  const Row Rows[] = {
      {"Packages on NPM", S.Packages, 100.0},
      {"... with source files", S.WithSource, 91.9},
      {"... with regular expressions", S.WithRegex, 34.9},
      {"... with capture groups", S.WithCaptures, 20.5},
      {"... with backreferences", S.WithBackrefs, 3.8},
      {"... with quantified backreferences", S.WithQuantifiedBackrefs, 0.1},
  };

  std::printf("%-38s %10s %8s %12s\n", "Feature", "Count", "%",
              "paper %");
  bench::rule();
  for (const Row &R : Rows)
    std::printf("%-38s %10llu %8s %11.1f%%\n", R.Feature,
                static_cast<unsigned long long>(R.Count),
                bench::pct(double(R.Count), double(S.Packages)).c_str(),
                R.PaperPct);
  bench::rule();
  std::printf("shape check: source > regex > captures > backrefs > "
              "quantified: %s\n",
              (S.WithSource > S.WithRegex &&
               S.WithRegex > S.WithCaptures &&
               S.WithCaptures > S.WithBackrefs &&
               S.WithBackrefs >= S.WithQuantifiedBackrefs)
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
