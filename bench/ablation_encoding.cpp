//===- bench/ablation_encoding.cpp - Model encoding choices ----------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation for the two solver-performance encoding choices DESIGN.md
// calls out ("Solver-performance design"): the redundant |w| = Σ|wᵢ|
// length equations beside every word equation, and folding literal
// characters into word equations as constants. Both are semantics-
// preserving (every configuration must reach the same Sat/Unsat verdicts,
// CEGAR-validated); the measurement is Z3 wall-clock on a probe set that
// includes the backreference-with-pinned-capture queries the DSE engine
// actually issues.
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

#include "BenchUtil.h"

#include <chrono>

using namespace recap;

namespace {

struct Probe {
  const char *Pattern;
  const char *PinnedInput; ///< nullptr = leave the input free
  const char *PinnedC1;    ///< nullptr = leave C1 free
};

const Probe Probes[] = {
    {"<(\\w+)>([0-9]*)<\\/\\1>", nullptr, "timeout"}, // Listing 1 shape
    {"(a+)b\\1", nullptr, "aaa"},
    {"^(\\d+)\\.(\\d+)\\.(\\d+)$", "10.21.32", nullptr},
    {"(foo|bar)=([a-z]+);\\1", nullptr, "bar"},
    {"^a*(a)?$", "aaaa", nullptr},
    {"(['\"])(?:(?!\\1).)*\\1", nullptr, "'"},
    {"host=(\\w+) port=(\\d+)", "host=db port=5432", nullptr},
    {"([ab]{2,4})c\\1", nullptr, "ab"},
};

struct Config {
  const char *Name;
  bool LengthEqs;
  bool FoldLits;
};

const Config Configs[] = {
    {"both on (default)", true, true},
    {"no length eqs", false, true},
    {"no literal fold", true, false},
    {"both off", false, false},
};

} // namespace

int main() {
  bench::header(
      "Ablation: model encoding (length equations / literal folding)");
  std::printf("%-22s %5s %7s %9s %10s\n", "Config", "sat", "unsat",
              "unknown", "time");
  bench::rule(60);

  std::vector<std::string> Verdicts; // per-config verdict signature
  for (const Config &C : Configs) {
    auto Backend = makeZ3Backend();
    unsigned Sat = 0, Unsat = 0, Unknown = 0;
    std::string Sig;
    auto T0 = std::chrono::steady_clock::now();
    for (const Probe &P : Probes) {
      auto R = Regex::parse(P.Pattern, "");
      if (!R)
        continue;
      ModelOptions MOpts;
      MOpts.EmitLengthEquations = C.LengthEqs;
      MOpts.FoldLiteralChars = C.FoldLits;
      CegarOptions Opts;
      Opts.Limits.TimeoutMs = 10000;
      CegarSolver Solver(*Backend, Opts);
      SymbolicRegExp Sym(R->clone(), std::string("e") + C.Name, MOpts);
      TermRef In = mkStrVar("in");
      auto Q = Sym.exec(In, mkIntConst(0));
      std::vector<PathClause> PC = {PathClause::regex(Q, true)};
      if (P.PinnedInput)
        PC.push_back(PathClause::plain(
            mkEq(In, mkStrConst(fromUTF8(P.PinnedInput)))));
      if (P.PinnedC1 && !Q->Model.Captures.empty()) {
        PC.push_back(PathClause::plain(Q->Model.Captures[0].Defined));
        PC.push_back(PathClause::plain(mkEq(
            Q->Model.Captures[0].Value, mkStrConst(fromUTF8(P.PinnedC1)))));
      }
      CegarResult Res = Solver.solve(PC);
      switch (Res.Status) {
      case SolveStatus::Sat:
        ++Sat;
        Sig += 's';
        break;
      case SolveStatus::Unsat:
        ++Unsat;
        Sig += 'u';
        break;
      case SolveStatus::Unknown:
        ++Unknown;
        Sig += '?';
        break;
      }
    }
    double Sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    std::printf("%-22s %5u %7u %9u %9.2fs\n", C.Name, Sat, Unsat, Unknown,
                Sec);
    Verdicts.push_back(Sig);
  }
  bench::rule(60);

  bool Agree = true;
  for (const std::string &V : Verdicts)
    if (V != Verdicts.front() && V.find('?') == std::string::npos &&
        Verdicts.front().find('?') == std::string::npos)
      Agree = false;
  std::printf("verdicts agree across configs (modulo Unknown): %s\n",
              Agree ? "yes" : "NO — encoding changed semantics!");
  std::printf("expected shape: 'both on' fastest; dropping length\n"
              "equations hurts backreference probes the most.\n");
  return 0;
}
