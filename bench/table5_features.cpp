//===- bench/table5_features.cpp - Table 5: feature usage per regex --------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 5 (feature usage by unique regex): total occurrences
// vs unique patterns for each feature over the synthetic corpus.
//
//===----------------------------------------------------------------------===//

#include "survey/CorpusGen.h"
#include "survey/Survey.h"

#include "BenchUtil.h"

#include <map>

using namespace recap;

int main() {
  bench::header("Table 5: Feature usage by unique regex");

  CorpusOptions Opts;
  Opts.NumPackages = static_cast<size_t>(4000 * bench::scale());
  std::vector<GeneratedPackage> Pkgs = generateCorpus(Opts);

  Survey S;
  for (const GeneratedPackage &P : Pkgs)
    S.addPackage(P.Files);

  // Paper's unique-column percentages for reference.
  const std::map<std::string, std::pair<double, double>> Paper = {
      {"Capture Groups", {24.71, 38.94}},
      {"Global Flag", {27.44, 29.56}},
      {"Character Class", {27.97, 23.24}},
      {"Kleene+", {16.14, 22.08}},
      {"Kleene*", {17.94, 21.76}},
      {"Ignore Case Flag", {14.28, 19.25}},
      {"Ranges", {13.33, 17.06}},
      {"Non-capturing", {12.94, 8.49}},
      {"Repetition", {3.7, 5.58}},
      {"Kleene* (Lazy)", {2.41, 4.33}},
      {"Multiline Flag", {1.44, 3.47}},
      {"Word Boundary", {3.53, 3.17}},
      {"Kleene+ (Lazy)", {1.56, 1.99}},
      {"Lookaheads", {1.85, 1.02}},
      {"Backreferences", {0.67, 0.80}},
      {"Repetition (Lazy)", {0.03, 0.07}},
      {"Quantified BRefs", {0.01, 0.04}},
      {"Sticky Flag", {0.001, 0.02}},
      {"Unicode Flag", {0.001, 0.02}},
  };

  std::printf("Total regexes: %llu   unique: %llu\n\n",
              static_cast<unsigned long long>(S.TotalRegexes),
              static_cast<unsigned long long>(S.UniqueRegexes));
  std::printf("%-20s %9s %8s %9s %8s | %9s %9s\n", "Feature", "Total",
              "%", "Unique", "%", "paper T%", "paper U%");
  bench::rule(86);
  for (const std::string &Name : surveyFeatureNames()) {
    const Survey::FeatureCount &FC = S.Features[Name];
    auto It = Paper.find(Name);
    std::printf("%-20s %9llu %8s %9llu %8s | %8.2f%% %8.2f%%\n",
                Name.c_str(), static_cast<unsigned long long>(FC.Total),
                bench::pct(double(FC.Total), double(S.TotalRegexes)).c_str(),
                static_cast<unsigned long long>(FC.Unique),
                bench::pct(double(FC.Unique), double(S.UniqueRegexes)).c_str(),
                It->second.first, It->second.second);
  }
  bench::rule(86);

  // ES2018+ extension features (beyond the paper's Table 5; the corpus
  // mixes a small share of modern patterns in, and the classifier must
  // pick them up).
  std::printf("\nExtension features (not in the paper's table):\n");
  std::printf("%-20s %9s %8s %9s %8s\n", "Feature", "Total", "%", "Unique",
              "%");
  bench::rule(60);
  for (const std::string &Name : surveyExtensionFeatureNames()) {
    const Survey::FeatureCount &FC = S.Features[Name];
    std::printf(
        "%-20s %9llu %8s %9llu %8s\n", Name.c_str(),
        static_cast<unsigned long long>(FC.Total),
        bench::pct(double(FC.Total), double(S.TotalRegexes)).c_str(),
        static_cast<unsigned long long>(FC.Unique),
        bench::pct(double(FC.Unique), double(S.UniqueRegexes)).c_str());
  }
  bench::rule(60);
  return 0;
}
