//===- bench/micro_mmap.cpp - Zero-copy artifact store benches -------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the ISSUE-9 mmap artifact store (DESIGN.md §11): what the
// first query pays for its automata under three boot modes, over an
// automaton-heavy corpus of anchored patterns (bounded counting over
// alternations — exactly the shapes whose determinization dominates
// compile cost).
//
//  1. BM_MmapFirstQueryCold: fresh runtime, the sweep pays parse +
//     features + approximation + determinization + live-set BFS.
//  2. BM_MmapFirstQueryMetadataWarm: runtime warm-booted from the
//     snapshot with artifact adoption OFF (the v1 behaviour): metadata
//     stages are memoized, but every automaton is still determinized on
//     first touch.
//  3. BM_MmapFirstQueryMappedWarm: the same snapshot with the artifact
//     arena mmapped and adopted: automata are served as zero-copy views,
//     densities and live counts ride along precomputed — the sweep
//     touches no determinization at all (automaton_computes stays 0).
//
// Both warm lanes warm the same metadata stages at load (untimed), so
// the mapped-vs-metadata delta is purely what the artifact section
// saves. The post-run summary derives mapped_vs_metadata_speedup and
// cold_vs_mapped_speedup; the ISSUE acceptance gates the former at 3x.
//
//===----------------------------------------------------------------------===//

#include "runtime/RegexRuntime.h"
#include "runtime/RuntimeSnapshot.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace recap;

namespace {

// --- The automaton-heavy corpus --------------------------------------------

/// ~24 anchored patterns built around bounded repetition of small
/// alternations: each one determinizes to hundreds-to-thousands of
/// states, so the automaton stage dominates the cold first query.
const std::vector<std::string> &heavyPatterns() {
  static const std::vector<std::string> Pats = [] {
    std::vector<std::string> Out;
    const char *Cores[] = {"ab|ba", "ab|bc|ca", "a|bb|ccc",
                           "ab|abb|bab", "aa|ab|ba", "abc|cba|bac"};
    size_t N = static_cast<size_t>(24 * recap::bench::scale());
    for (size_t I = 0; I < N; ++I) {
      const char *Core = Cores[I % 6];
      unsigned Lo = 3 + static_cast<unsigned>(I % 4);
      unsigned Hi = Lo + 4 + static_cast<unsigned>(I % 3);
      // The tail bound grows with I so every pattern is distinct (the
      // core/lo/hi combination alone cycles with period 12).
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "^(%s){%u,%u}[a-f]{2,%u}$", Core, Lo,
                    Hi, 2 + static_cast<unsigned>(I));
      Out.push_back(Buf);
    }
    return Out;
  }();
  return Pats;
}

/// The first-query path an anchored-lane consumer takes: intern, then
/// touch the automaton and its density (the lane's budget key).
uint64_t querySweep(RegexRuntime &RT) {
  uint64_t Ok = 0;
  for (const std::string &P : heavyPatterns()) {
    Result<std::shared_ptr<CompiledRegex>> C = RT.get(P, "");
    if (!C)
      continue;
    std::shared_ptr<const Automaton> A = (*C)->automaton();
    if (!A)
      continue;
    ++Ok;
    benchmark::DoNotOptimize(A->transitionDensity());
    benchmark::DoNotOptimize(A->liveStateCount());
  }
  return Ok;
}

/// Snapshot (with artifact arena) of a runtime that compiled the whole
/// corpus, written once to a real file so the mapped lane can mmap it.
const std::string &snapshotPath() {
  static const std::string Path = [] {
    std::string P = "micro_mmap_corpus.snap";
    RegexRuntime RT;
    querySweep(RT);
    if (!RT.save(P))
      std::fprintf(stderr, "micro_mmap: cannot write %s\n", P.c_str());
    return P;
  }();
  return Path;
}

/// Metadata stages both warm lanes pre-warm at load; the automaton stage
/// is deliberately NOT in the set — it is what the lanes differ on.
constexpr unsigned MetadataStages = RegexRuntime::WarmFeatures |
                                    RegexRuntime::WarmApprox |
                                    RegexRuntime::WarmMatcher;

// --- 1. Cold ----------------------------------------------------------------

void BM_MmapFirstQueryCold(benchmark::State &State) {
  (void)snapshotPath(); // build the corpus once, outside the timing loop
  uint64_t Patterns = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto RT = std::make_unique<RegexRuntime>();
    State.ResumeTiming();
    Patterns = querySweep(*RT);
  }
  State.counters["patterns"] = static_cast<double>(Patterns);
}
BENCHMARK(BM_MmapFirstQueryCold)->Unit(benchmark::kMillisecond);

// --- 2. Metadata-warm (v1 behaviour) ----------------------------------------

void BM_MmapFirstQueryMetadataWarm(benchmark::State &State) {
  uint64_t Patterns = 0, Loaded = 0, Determinized = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto RT = std::make_unique<RegexRuntime>();
    SnapshotLoadResult L =
        RT->load(snapshotPath(), MetadataStages, /*AdoptArtifacts=*/false);
    RuntimeStats Before = RT->stats();
    State.ResumeTiming();
    Patterns = querySweep(*RT);
    Loaded = L.Loaded;
    Determinized = RT->stats().since(Before).AutomatonComputes.load();
  }
  State.counters["patterns"] = static_cast<double>(Patterns);
  State.counters["snapshot_loaded"] = static_cast<double>(Loaded);
  State.counters["automaton_computes"] = static_cast<double>(Determinized);
}
BENCHMARK(BM_MmapFirstQueryMetadataWarm)->Unit(benchmark::kMillisecond);

// --- 3. Mapped-warm (zero-copy views) ----------------------------------------

void BM_MmapFirstQueryMappedWarm(benchmark::State &State) {
  uint64_t Patterns = 0, Mapped = 0, BytesShared = 0, Determinized = 0;
  bool ZeroCopy = false;
  for (auto _ : State) {
    State.PauseTiming();
    auto RT = std::make_unique<RegexRuntime>();
    SnapshotLoadResult L =
        RT->load(snapshotPath(), MetadataStages, /*AdoptArtifacts=*/true);
    RuntimeStats Before = RT->stats();
    State.ResumeTiming();
    Patterns = querySweep(*RT);
    Mapped = L.ArtifactsMapped;
    BytesShared = L.BytesShared;
    ZeroCopy = L.ZeroCopy;
    Determinized = RT->stats().since(Before).AutomatonComputes.load();
  }
  State.counters["patterns"] = static_cast<double>(Patterns);
  State.counters["artifacts_mapped"] = static_cast<double>(Mapped);
  State.counters["bytes_shared"] = static_cast<double>(BytesShared);
  State.counters["zero_copy"] = ZeroCopy ? 1 : 0;
  State.counters["automaton_computes"] = static_cast<double>(Determinized);
}
BENCHMARK(BM_MmapFirstQueryMappedWarm)->Unit(benchmark::kMillisecond);

// --- Derived summary --------------------------------------------------------

void attachDerived(recap::bench::JsonReporter &R) {
  double Cold = R.medianNs("BM_MmapFirstQueryCold");
  double Meta = R.medianNs("BM_MmapFirstQueryMetadataWarm");
  double Mapped = R.medianNs("BM_MmapFirstQueryMappedWarm");
  double MappedVsMeta = Mapped > 0 && Meta > 0 ? Meta / Mapped : 0;
  double ColdVsMapped = Mapped > 0 && Cold > 0 ? Cold / Mapped : 0;
  R.setCounter("BM_MmapFirstQueryMappedWarm", "mapped_vs_metadata_speedup",
               MappedVsMeta);
  R.setCounter("BM_MmapFirstQueryMappedWarm", "cold_vs_mapped_speedup",
               ColdVsMapped);

  recap::bench::header("mmap artifact store (median first-query sweep)");
  std::printf("cold:          %10.2f ms\n", Cold / 1e6);
  std::printf("metadata-warm: %10.2f ms\n", Meta / 1e6);
  std::printf("mapped-warm:   %10.2f ms\n", Mapped / 1e6);
  std::printf("mapped vs metadata speedup: %.1fx  (acceptance gate: 3x)\n",
              MappedVsMeta);
  std::printf("cold vs mapped speedup:     %.1fx\n", ColdVsMapped);
  std::remove(snapshotPath().c_str());
}

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_mmap", argc, argv,
                                     attachDerived);
}
