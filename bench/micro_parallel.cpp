//===- bench/micro_parallel.cpp - Shard-per-worker speedup benches ---------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the two shard-per-worker workloads of DESIGN.md §6 at 1/2/4
// workers:
//
//  1. BM_SurveyShards/W: corpus survey aggregation — embarrassingly
//     parallel package slices over the shared interned pattern table.
//  2. BM_DseShards/W: generational-search DSE over a batch of generated
//     mini packages — partitioned CUPA buckets, per-shard LocalBackend
//     solver stacks (self-contained: the speedup measures the engine,
//     not Z3 context setup).
//
// After the run, the speedup of each W against its own 1-worker baseline
// is attached to the JSON entries as the "speedup_vs_1w" counter and
// printed as a summary table. On a multi-core machine the survey shard
// scaling is near-linear (the ISSUE-3 acceptance gate: >= 2.5x at 4
// workers); on a single-core machine both degenerate to ~1x — the
// printed hardware_threads counter says which regime produced the
// numbers.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"
#include "dse/Workloads.h"
#include "parallel/WorkerPool.h"
#include "survey/CorpusGen.h"
#include "survey/Survey.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace recap;

namespace {

// --- 1. Survey slices ------------------------------------------------------

const std::vector<std::vector<std::string>> &corpusFiles() {
  static const std::vector<std::vector<std::string>> Files = [] {
    CorpusOptions Opts;
    Opts.NumPackages =
        static_cast<size_t>(400 * recap::bench::scale());
    Opts.Seed = 1234;
    std::vector<std::vector<std::string>> Out;
    for (GeneratedPackage &P : generateCorpus(Opts))
      Out.push_back(std::move(P.Files));
    return Out;
  }();
  return Files;
}

void BM_SurveyShards(benchmark::State &State) {
  size_t Workers = static_cast<size_t>(State.range(0));
  const auto &Files = corpusFiles();
  uint64_t Unique = 0;
  for (auto _ : State) {
    // Fresh runtime per iteration: the measured work is the full
    // parse+classify pipeline, not a warm cache replay.
    Survey S = Survey::runParallel(Files, Workers,
                                   std::make_shared<RegexRuntime>());
    benchmark::DoNotOptimize(S.TotalRegexes);
    Unique = S.UniqueRegexes;
  }
  State.counters["workers"] = static_cast<double>(Workers);
  State.counters["unique_regexes"] = static_cast<double>(Unique);
}
BENCHMARK(BM_SurveyShards)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- 2. Generational-search DSE -------------------------------------------

void BM_DseShards(benchmark::State &State) {
  size_t Workers = static_cast<size_t>(State.range(0));
  std::vector<Program> Programs;
  size_t NumPrograms =
      static_cast<size_t>(6 * recap::bench::scale());
  for (uint64_t Seed = 0; Seed < NumPrograms; ++Seed)
    Programs.push_back(generateMiniPackage(Seed));

  uint64_t Tests = 0, Stolen = 0;
  for (auto _ : State) {
    // One shared pattern runtime across the whole batch, like a survey
    // job; per-program engine runs reuse it.
    auto Runtime = std::make_shared<RegexRuntime>();
    auto Anchor = makeLocalBackend(); // serial path / ctor requirement
    for (const Program &P : Programs) {
      EngineOptions Opts;
      Opts.MaxTests = 24;
      Opts.MaxSeconds = 20;
      Opts.Workers = Workers;
      // An honest 1/2/4 comparison on any machine shape; the production
      // default clamps to hardware_concurrency() instead.
      Opts.ClampWorkers = false;
      Opts.Runtime = Runtime;
      Opts.BackendFactory = [] { return makeLocalBackend(); };
      DseEngine Engine(*Anchor, Opts);
      EngineResult R = Engine.run(P);
      Tests += R.TestsRun;
      for (const ShardStats &S : R.Shards)
        Stolen += S.TestsStolen;
      benchmark::DoNotOptimize(R.TestsRun);
    }
  }
  double N = State.iterations() ? static_cast<double>(State.iterations())
                                : 1;
  State.counters["workers"] = static_cast<double>(Workers);
  State.counters["tests"] = static_cast<double>(Tests) / N;
  State.counters["stolen"] = static_cast<double>(Stolen) / N;
}
BENCHMARK(BM_DseShards)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void attachSpeedups(recap::bench::JsonReporter &R) {
  std::printf("\n=== shard speedups (median, vs 1 worker) ===\n");
  std::printf("hardware_threads: %zu\n", WorkerPool::hardwareWorkers());
  for (const char *Base : {"BM_SurveyShards", "BM_DseShards"}) {
    double T1 = R.medianNs(std::string(Base) + "/1");
    for (int W : {1, 2, 4}) {
      std::string Name = std::string(Base) + "/" + std::to_string(W);
      double TW = R.medianNs(Name);
      double Speedup = TW > 0 && T1 > 0 ? T1 / TW : 0;
      R.setCounter(Name, "speedup_vs_1w", Speedup);
      R.setCounter(Name, "hardware_threads",
                   static_cast<double>(WorkerPool::hardwareWorkers()));
      if (TW > 0)
        std::printf("  %-22s %8.1f ms   %.2fx\n", Name.c_str(), TW / 1e6,
                    Speedup);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_parallel", argc, argv,
                                     attachSpeedups);
}
