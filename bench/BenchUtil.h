//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting and scaling helpers for the table-reproduction benches.
/// Every bench prints its measured table followed by the paper's reported
/// values for side-by-side comparison; RECAP_BENCH_SCALE (default 1)
/// multiplies workload sizes.
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_BENCH_BENCHUTIL_H
#define RECAP_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace recap::bench {

inline double scale() {
  const char *S = std::getenv("RECAP_BENCH_SCALE");
  if (!S)
    return 1.0;
  double V = std::atof(S);
  return V > 0 ? V : 1.0;
}

inline void header(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline void rule(int Width = 72) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

inline std::string pct(double Num, double Den) {
  if (Den <= 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Num / Den);
  return Buf;
}

} // namespace recap::bench

#endif // RECAP_BENCH_BENCHUTIL_H
