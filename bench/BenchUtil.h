//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting and scaling helpers for the table-reproduction benches.
/// Every bench prints its measured table followed by the paper's reported
/// values for side-by-side comparison; RECAP_BENCH_SCALE (default 1)
/// multiplies workload sizes.
///
/// The google-benchmark micro benches additionally emit machine-readable
/// per-bench timing summaries (median/p90 across repetitions, plus user
/// counters) to BENCH_<suite>.json via runBenchSuite(), so the perf
/// trajectory is comparable across PRs and archivable from CI.
/// RECAP_BENCH_JSON_DIR overrides the output directory (default: cwd).
///
//===----------------------------------------------------------------------===//

#ifndef RECAP_BENCH_BENCHUTIL_H
#define RECAP_BENCH_BENCHUTIL_H

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace recap::bench {

inline double scale() {
  const char *S = std::getenv("RECAP_BENCH_SCALE");
  if (!S)
    return 1.0;
  double V = std::atof(S);
  return V > 0 ? V : 1.0;
}

inline void header(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline void rule(int Width = 72) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

inline std::string pct(double Num, double Den) {
  if (Den <= 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Num / Den);
  return Buf;
}

/// Console reporter that additionally collects per-repetition real times
/// (ns/iteration) and user counters per benchmark, then writes
/// BENCH_<suite>.json. Median and p90 are computed over the collected
/// samples — run with --benchmark_repetitions=N for meaningful
/// percentiles; a single repetition degenerates to median == p90.
class JsonReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonReporter(std::string Suite) : Suite(std::move(Suite)) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      // Only raw repetition runs carry samples (aggregates are derived;
      // none of the recap benches use SkipWithError).
      if (R.run_type == Run::RT_Aggregate)
        continue;
      Bench &B = Benches[R.benchmark_name()];
      if (R.iterations > 0)
        B.SamplesNs.push_back(R.real_accumulated_time /
                              static_cast<double>(R.iterations) * 1e9);
      for (const auto &[Name, Counter] : R.counters)
        B.Counters[Name] = Counter.value;
    }
    ConsoleReporter::ReportRuns(Runs);
  }

  /// Writes BENCH_<suite>.json into RECAP_BENCH_JSON_DIR (default cwd).
  /// Returns false when the file cannot be opened.
  bool writeJson() const {
    std::string Dir = ".";
    if (const char *D = std::getenv("RECAP_BENCH_JSON_DIR"))
      Dir = D;
    std::string Path = Dir + "/BENCH_" + Suite + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    std::fprintf(F, "{\n  \"suite\": \"%s\",\n  \"benchmarks\": [",
                 Suite.c_str());
    bool FirstBench = true;
    for (const auto &[Name, B] : Benches) {
      std::vector<double> S = B.SamplesNs;
      if (S.empty())
        continue;
      std::sort(S.begin(), S.end());
      double Median = S[S.size() / 2];
      // Nearest-rank p90: ceil(0.9 * N) as a 1-based rank.
      size_t Rank90 = (S.size() * 9 + 9) / 10; // ceil(N * 0.9)
      double P90 = S[std::min(S.size() - 1, Rank90 - 1)];
      double Mean = 0;
      for (double V : S)
        Mean += V;
      Mean /= static_cast<double>(S.size());
      std::fprintf(F,
                   "%s\n    {\"name\": \"%s\", \"samples\": %zu, "
                   "\"median_ns\": %.1f, \"p90_ns\": %.1f, "
                   "\"mean_ns\": %.1f",
                   FirstBench ? "" : ",", jsonEscape(Name).c_str(),
                   S.size(), Median, P90, Mean);
      FirstBench = false;
      if (!B.Counters.empty()) {
        std::fprintf(F, ", \"counters\": {");
        bool FirstCtr = true;
        for (const auto &[CName, V] : B.Counters) {
          std::fprintf(F, "%s\"%s\": %.3f", FirstCtr ? "" : ", ",
                       jsonEscape(CName).c_str(), V);
          FirstCtr = false;
        }
        std::fprintf(F, "}");
      }
      std::fprintf(F, "}");
    }
    std::fprintf(F, "\n  ]\n}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }

  /// Collected per-iteration samples (ns) for one benchmark, e.g. for
  /// in-process speedup summaries.
  const std::vector<double> *samples(const std::string &Name) const {
    auto It = Benches.find(Name);
    return It == Benches.end() ? nullptr : &It->second.SamplesNs;
  }

  /// Median of a benchmark's samples (ns), or 0 when absent.
  double medianNs(const std::string &Name) const {
    const std::vector<double> *S = samples(Name);
    if (!S || S->empty())
      return 0;
    std::vector<double> Sorted = *S;
    std::sort(Sorted.begin(), Sorted.end());
    return Sorted[Sorted.size() / 2];
  }

  /// Attaches a derived counter to \p BenchName's JSON entry — e.g. a
  /// cross-bench speedup computed after the run (bench/micro_parallel).
  /// No-op when the benchmark was never run.
  void setCounter(const std::string &BenchName, const std::string &Counter,
                  double V) {
    auto It = Benches.find(BenchName);
    if (It != Benches.end())
      It->second.Counters[Counter] = V;
  }

private:
  struct Bench {
    std::vector<double> SamplesNs;
    std::map<std::string, double> Counters;
  };

  static std::string jsonEscape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      Out.push_back(C);
    }
    return Out;
  }

  std::string Suite;
  std::map<std::string, Bench> Benches;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: runs the registered
/// benchmarks through a JsonReporter and writes BENCH_<suite>.json.
/// \p PostRun (optional) sees the reporter after the benchmarks finish
/// and before the JSON is written — for derived counters such as
/// cross-bench speedups.
inline int runBenchSuite(
    const std::string &Suite, int argc, char **argv,
    const std::function<void(JsonReporter &)> &PostRun = nullptr) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonReporter Reporter(Suite);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  if (PostRun)
    PostRun(Reporter);
  Reporter.writeJson();
  benchmark::Shutdown();
  return 0;
}

} // namespace recap::bench

#endif // RECAP_BENCH_BENCHUTIL_H
