//===- bench/table8_solver.cpp - Table 8: solver times ----------------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 8 (solver times per package and per query) and the
// §7.4 refinement statistics: fraction of queries with regexes, captures,
// refinement, refinement-limit hits, and mean refinements per refined
// query. Run over the Table-7 package suite at the full support level.
//
//===----------------------------------------------------------------------===//

#include "dse/Engine.h"
#include "dse/Workloads.h"

#include "BenchUtil.h"

#include <future>

using namespace recap;

namespace {

void printBucket(const char *Name, const TimeBucket &B,
                 const char *PaperMin, const char *PaperMax,
                 const char *PaperMean) {
  std::printf("%-34s %9.3fs %9.3fs %9.3fs | %8s %8s %8s\n", Name,
              B.N ? B.Min : 0.0, B.Max, B.mean(), PaperMin, PaperMax,
              PaperMean);
}

} // namespace

int main() {
  bench::header("Table 8: Solver times per package and per query");

  size_t NumPackages = static_cast<size_t>(24 * bench::scale());
  double Budget = 6.0 * bench::scale();

  CegarStats Total;
  TimeBucket PerPackageAll, PerPackageCaptures, PerPackageRefined,
      PerPackageLimit;

  std::vector<std::future<EngineResult>> Futures;
  for (size_t Pkg = 0; Pkg < NumPackages; ++Pkg) {
    Futures.push_back(std::async(std::launch::async, [=] {
      Program P = generateMiniPackage(1000 + Pkg);
      auto Backend = makeZ3Backend();
      EngineOptions Opts;
      Opts.Level = SupportLevel::Refinement;
      Opts.MaxTests = 24;
      Opts.MaxSeconds = Budget;
      Opts.Seed = Pkg;
      DseEngine Engine(*Backend, Opts);
      return Engine.run(P);
    }));
  }
  for (auto &Fut : Futures) {
    EngineResult R = Fut.get();
    Total.merge(R.Cegar);
    PerPackageAll.add(R.Cegar.SolverSeconds);
    if (R.Cegar.QueriesWithCaptures)
      PerPackageCaptures.add(R.Cegar.SolverSeconds);
    if (R.Cegar.QueriesRefined)
      PerPackageRefined.add(R.Cegar.SolverSeconds);
    if (R.Cegar.QueriesHitLimit)
      PerPackageLimit.add(R.Cegar.SolverSeconds);
  }

  std::printf("(paper columns are from 1h runs on 32-core machines; the\n"
              " shape to compare is the ordering across categories)\n\n");
  std::printf("%-34s %10s %10s %10s | %8s %8s %8s\n",
              "Constraint solver time", "min", "max", "mean", "p-min",
              "p-max", "p-mean");
  bench::rule(100);
  printBucket("All packages", PerPackageAll, "0.04s", "12h15m", "2h34m");
  printBucket("  with capture groups", PerPackageCaptures, "0.20s",
              "12h15m", "2h40m");
  printBucket("  with refinement", PerPackageRefined, "0.46s", "12h15m",
              "2h48m");
  printBucket("  where refinement limit hit", PerPackageLimit, "3.49s",
              "11h07m", "3h17m");
  bench::rule(100);
  printBucket("All queries", Total.AllQueries, "0.001s", "22m26s",
              "0.15s");
  printBucket("  with capture groups", Total.WithCaptures, "0.001s",
              "22m26s", "5.53s");
  printBucket("  with refinement", Total.WithRefinement, "0.005s",
              "18m51s", "22.69s");
  printBucket("  where refinement limit hit", Total.HitLimit, "0.120s",
              "18m51s", "58.85s");
  bench::rule(100);

  std::printf("\n§7.4 refinement statistics (paper values in parens):\n");
  std::printf("  queries total:                 %llu\n",
              static_cast<unsigned long long>(Total.Queries));
  std::printf("  modeled a regex:               %s  (7.6%%)\n",
              bench::pct(double(Total.QueriesWithRegex),
                         double(Total.Queries))
                  .c_str());
  std::printf("  modeled captures/backrefs:     %s  (1.1%%)\n",
              bench::pct(double(Total.QueriesWithCaptures),
                         double(Total.Queries))
                  .c_str());
  std::printf("  required refinement:           %s  (0.1%%)\n",
              bench::pct(double(Total.QueriesRefined),
                         double(Total.Queries))
                  .c_str());
  std::printf("  hit the refinement limit:      %s  (0.003%%)\n",
              bench::pct(double(Total.QueriesHitLimit),
                         double(Total.Queries))
                  .c_str());
  if (Total.QueriesRefined)
    std::printf("  mean refinements when refined: %.2f  (2.9)\n",
                double(Total.TotalRefinements) /
                    double(Total.QueriesRefined));
  std::printf("  refined-and-solved rate:       %s  (97.2%%)\n",
              Total.QueriesRefined
                  ? bench::pct(double(Total.QueriesRefined -
                                      Total.QueriesHitLimit),
                               double(Total.QueriesRefined))
                        .c_str()
                  : "-");
  return 0;
}
