//===- bench/micro_corpus.cpp - Two-level corpus scheduling benches --------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the ISSUE-4 corpus machinery (DESIGN.md §7):
//
//  1. BM_CorpusDse/W: an N-program corpus through runDseCorpus at 1/2/4
//     global workers — program-level tasks over one shared WorkerPool
//     and pattern runtime, each task allowed to borrow one intra-run
//     shard (ShardsPerTask = 2). Counters: scheduler_tasks,
//     slots_borrowed, tests.
//  2. BM_CorpusFirstQueryCold / BM_CorpusFirstQueryWarm: the first query
//     sweep over a survey corpus's distinct literals, on a cold runtime
//     vs one warm-started from a RegexRuntime snapshot (the load runs
//     untimed in setup — the snapshot's job is to move compile cost out
//     of the query path). Counters: patterns, warm_hits,
//     snapshot_loaded, snapshot_bytes.
//
// The post-run summary derives speedup_vs_1w for the DSE corpus rows and
// cold_to_warm_speedup for the first-query pair; on a single-core
// machine the worker scaling degenerates to ~1x (hardware_threads says
// which regime produced the numbers) while the warm-start win is
// machine-shape independent.
//
//===----------------------------------------------------------------------===//

#include "dse/Corpus.h"
#include "dse/Workloads.h"
#include "parallel/WorkerPool.h"
#include "survey/CorpusGen.h"
#include "survey/Survey.h"

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <sstream>

using namespace recap;

namespace {

// --- 1. Corpus DSE over the two-level scheduler ----------------------------

const std::vector<Program> &corpusPrograms() {
  static const std::vector<Program> Programs = [] {
    std::vector<Program> Out;
    size_t N = static_cast<size_t>(6 * recap::bench::scale());
    for (uint64_t Seed = 0; Seed < N; ++Seed)
      Out.push_back(generateMiniPackage(Seed));
    return Out;
  }();
  return Programs;
}

void BM_CorpusDse(benchmark::State &State) {
  size_t Workers = static_cast<size_t>(State.range(0));
  const std::vector<Program> &Programs = corpusPrograms();

  uint64_t Tasks = 0, Borrowed = 0, Tests = 0;
  for (auto _ : State) {
    DseCorpusOptions Opts;
    Opts.Engine.MaxTests = 16;
    Opts.Engine.MaxSeconds = 20;
    Opts.Engine.BackendFactory = [] { return makeLocalBackend(); };
    Opts.Workers = Workers;
    Opts.ShardsPerTask = 2;
    // An honest 1/2/4 comparison on any machine shape; the production
    // default clamps instead.
    Opts.ClampWorkers = false;
    DseCorpusResult R = runDseCorpus(Programs, Opts);
    Tasks = R.Sched.Tasks;
    Borrowed = R.Sched.SlotsBorrowed;
    Tests = R.totalTests();
    benchmark::DoNotOptimize(R.Results.data());
  }
  State.counters["workers"] = static_cast<double>(Workers);
  State.counters["scheduler_tasks"] = static_cast<double>(Tasks);
  State.counters["slots_borrowed"] = static_cast<double>(Borrowed);
  State.counters["tests"] = static_cast<double>(Tests);
}
BENCHMARK(BM_CorpusDse)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- 1b. Corpus DSE with the reliability layer on --------------------------

// The BM_CorpusDse/2 configuration plus DESIGN.md §9 guards (watchdog
// deadlines, breakers, quarantine), no fault injected: the healthy-path
// cost of the layer at corpus scale, with the corpus-wide reliability
// counters in the JSON. All of them should read zero here; the derived
// guard_overhead against the unguarded 2-worker row is the number the
// ISSUE acceptance bounds.
void BM_CorpusDseGuarded(benchmark::State &State) {
  const std::vector<Program> &Programs = corpusPrograms();
  uint64_t Tests = 0;
  RuntimeStats Window;
  for (auto _ : State) {
    DseCorpusOptions Opts;
    Opts.Engine.MaxTests = 16;
    Opts.Engine.MaxSeconds = 20;
    Opts.Engine.BackendFactory = [] { return makeLocalBackend(); };
    Opts.Engine.Cegar.Reliability.Enabled = true;
    Opts.Engine.Cegar.Reliability.CheckDeadlineMs = 20000;
    Opts.Workers = 2;
    Opts.ShardsPerTask = 2;
    Opts.ClampWorkers = false;
    DseCorpusResult R = runDseCorpus(Programs, Opts);
    Tests = R.totalTests();
    Window = R.Runtime;
    benchmark::DoNotOptimize(R.Results.data());
  }
  State.counters["tests"] = static_cast<double>(Tests);
  State.counters["guard_timeouts"] =
      static_cast<double>(Window.GuardTimeouts.load());
  State.counters["guard_retries"] =
      static_cast<double>(Window.GuardRetries.load());
  State.counters["breaker_opens"] =
      static_cast<double>(Window.BreakerOpens.load());
  State.counters["quarantined"] =
      static_cast<double>(Window.Quarantined.load());
  State.counters["worker_spawn_fallbacks"] =
      static_cast<double>(Window.WorkerSpawnFallbacks.load());
}
BENCHMARK(BM_CorpusDseGuarded)->Unit(benchmark::kMillisecond);

// --- 2. Snapshot warm start vs cold start ----------------------------------

const std::vector<std::string> &corpusLiterals() {
  static const std::vector<std::string> Lits = [] {
    CorpusOptions Opts;
    Opts.NumPackages = static_cast<size_t>(200 * recap::bench::scale());
    Opts.Seed = 77;
    std::set<std::string> Distinct;
    for (const GeneratedPackage &P : generateCorpus(Opts))
      for (const std::string &F : P.Files)
        for (const std::string &L : extractRegexLiterals(F))
          Distinct.insert(L);
    return std::vector<std::string>(Distinct.begin(), Distinct.end());
  }();
  return Lits;
}

/// The first-query path of a corpus job: intern every literal and touch
/// the stages the survey/DSE layers need right away.
uint64_t querySweep(RegexRuntime &RT) {
  uint64_t Ok = 0;
  for (const std::string &Lit : corpusLiterals()) {
    Result<std::shared_ptr<CompiledRegex>> C = RT.literal(Lit);
    if (!C)
      continue;
    ++Ok;
    (*C)->features();
    (*C)->classicalApprox();
    (*C)->automaton();
    (*C)->sharedMatcher();
  }
  return Ok;
}

/// Snapshot of a runtime that has seen the whole literal set, built once.
const std::string &snapshotBytes() {
  static const std::string Bytes = [] {
    RegexRuntime RT;
    querySweep(RT);
    std::ostringstream OS;
    RT.save(OS);
    return OS.str();
  }();
  return Bytes;
}

void BM_CorpusFirstQueryCold(benchmark::State &State) {
  uint64_t Patterns = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto RT = std::make_unique<RegexRuntime>();
    State.ResumeTiming();
    Patterns = querySweep(*RT);
  }
  State.counters["patterns"] = static_cast<double>(Patterns);
}
BENCHMARK(BM_CorpusFirstQueryCold)->Unit(benchmark::kMillisecond);

void BM_CorpusFirstQueryWarm(benchmark::State &State) {
  uint64_t Patterns = 0, WarmHits = 0, Loaded = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto RT = std::make_unique<RegexRuntime>();
    std::istringstream IS(snapshotBytes());
    SnapshotLoadResult L = RT->load(IS);
    RuntimeStats Before = RT->stats();
    State.ResumeTiming();
    Patterns = querySweep(*RT);
    Loaded = L.Loaded;
    WarmHits = RT->stats().since(Before).hits();
  }
  State.counters["patterns"] = static_cast<double>(Patterns);
  State.counters["warm_hits"] = static_cast<double>(WarmHits);
  State.counters["snapshot_loaded"] = static_cast<double>(Loaded);
  State.counters["snapshot_bytes"] =
      static_cast<double>(snapshotBytes().size());
}
BENCHMARK(BM_CorpusFirstQueryWarm)->Unit(benchmark::kMillisecond);

void attachDerived(recap::bench::JsonReporter &R) {
  std::printf("\n=== corpus scheduling (median) ===\n");
  std::printf("hardware_threads: %zu\n", WorkerPool::hardwareWorkers());
  double T1 = R.medianNs("BM_CorpusDse/1");
  for (int W : {1, 2, 4}) {
    std::string Name = "BM_CorpusDse/" + std::to_string(W);
    double TW = R.medianNs(Name);
    double Speedup = TW > 0 && T1 > 0 ? T1 / TW : 0;
    R.setCounter(Name, "speedup_vs_1w", Speedup);
    R.setCounter(Name, "hardware_threads",
                 static_cast<double>(WorkerPool::hardwareWorkers()));
    if (TW > 0)
      std::printf("  %-24s %8.1f ms   %.2fx\n", Name.c_str(), TW / 1e6,
                  Speedup);
  }
  double T2 = R.medianNs("BM_CorpusDse/2");
  double Guarded = R.medianNs("BM_CorpusDseGuarded");
  if (T2 > 0 && Guarded > 0) {
    double Overhead = Guarded / T2 - 1.0;
    R.setCounter("BM_CorpusDseGuarded", "guard_overhead", Overhead);
    std::printf("  reliability guard overhead at 2 workers: %.1f%%\n",
                Overhead * 100.0);
  }
  double Cold = R.medianNs("BM_CorpusFirstQueryCold");
  double Warm = R.medianNs("BM_CorpusFirstQueryWarm");
  double Speedup = Cold > 0 && Warm > 0 ? Cold / Warm : 0;
  R.setCounter("BM_CorpusFirstQueryWarm", "cold_to_warm_speedup", Speedup);
  if (Cold > 0 && Warm > 0)
    std::printf("  first query: cold %.2f ms -> warm %.2f ms   %.1fx\n",
                Cold / 1e6, Warm / 1e6, Speedup);
}

} // namespace

int main(int argc, char **argv) {
  return recap::bench::runBenchSuite("micro_corpus", argc, argv,
                                     attachDerived);
}
