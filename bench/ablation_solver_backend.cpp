//===- bench/ablation_solver_backend.cpp - Z3 vs local solver --------------===//
//
// Part of recap. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation: the model is solver-agnostic. Runs a fixed query set through
// the Z3 backend (the paper's setup) and the self-contained bounded
// LocalBackend, comparing solved counts and time. The local solver is
// expected to solve the small-alphabet queries and give up (Unknown) on
// the harder ones — never to return a wrong model (every Sat answer is
// validated by the CEGAR loop's matcher check).
//
//===----------------------------------------------------------------------===//

#include "api/SymbolicRegExp.h"

#include "BenchUtil.h"

#include <chrono>

using namespace recap;

int main() {
  bench::header("Ablation: solver backend (Z3 vs local bounded search)");

  const char *Patterns[] = {
      "abc",        "a+b*",      "(a|b)+",     "^[ab]{2,4}$",
      "(a)(b)?",    "a*?b",      "^a*(a)?$",   "(a+)\\1",
      "\\bab\\b",   "a(?=b)b",   "x|y|z",      "(ab)+c",
  };

  for (const char *BackendName : {"z3", "local"}) {
    std::unique_ptr<SolverBackend> Backend =
        std::string(BackendName) == "z3" ? makeZ3Backend()
                                         : makeLocalBackend();
    unsigned Sat = 0, Unsat = 0, Unknown = 0, Validated = 0;
    auto T0 = std::chrono::steady_clock::now();
    for (const char *Pat : Patterns) {
      auto R = Regex::parse(Pat, "");
      if (!R)
        continue;
      CegarOptions Opts;
      Opts.Limits.TimeoutMs = 5000;
      CegarSolver Solver(*Backend, Opts);
      SymbolicRegExp Sym(R->clone(), std::string("b") + BackendName);
      TermRef In = mkStrVar("in");
      auto Q = Sym.exec(In, mkIntConst(0));
      CegarResult Res = Solver.solve({PathClause::regex(Q, true)});
      switch (Res.Status) {
      case SolveStatus::Sat: {
        ++Sat;
        RegExpObject Oracle(R->clone());
        if (Oracle.test(Res.Model.str("in")))
          ++Validated;
        break;
      }
      case SolveStatus::Unsat:
        ++Unsat;
        break;
      case SolveStatus::Unknown:
        ++Unknown;
        break;
      }
    }
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    std::printf("%-8s sat=%2u unsat=%2u unknown=%2u validated=%2u/%2u "
                "time=%.2fs\n",
                BackendName, Sat, Unsat, Unknown, Validated, Sat, Sec);
  }
  std::printf("\nsoundness check: validated == sat for both backends\n");
  return 0;
}
